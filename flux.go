// Package flux is a Go implementation of the Flux coordination language
// for building high-performance servers, reproducing Burns, Grimaldi,
// Kostadinov, Berger, and Corner, "Flux: A Language for Programming
// High-Performance Servers" (USENIX ATC 2006).
//
// A Flux program composes sequential functions ("concrete nodes") into
// concurrent server data flows. The program declares:
//
//   - typed node signatures and source nodes (§2.1),
//   - abstract nodes — chains of nodes joined by "->" (§2.2),
//   - predicate types routing flows by runtime tests (§2.3),
//   - error handlers (§2.4), and
//   - atomicity constraints guarding shared state, with reader/writer
//     modes and per-session scope (§2.5).
//
// Compile type-checks the composition, rejects cyclic flows, assigns
// locks in a canonical deadlock-free order (hoisting out-of-order
// constraints with warnings, §3.1.1), flattens each source's flow into
// an executable graph, and numbers every path with the Ball-Larus
// algorithm for profiling (§5.2).
//
// The compiled program runs unchanged on interchangeable runtime
// engines (§3.2): goroutine-per-flow, a fixed pool with FIFO admission,
// an event-driven engine whose dispatcher never blocks, and a
// work-stealing engine that shards the event loop across one
// deque-owning dispatcher per core — all behind the runtime's Engine
// interface, so further engines plug in without touching the server. It
// can also be fed to the discrete-event simulator to predict server
// performance on hypothetical hardware before deployment (§5.1).
//
// # Quick start
//
// A server is configured with functional options and driven through an
// explicit lifecycle — Start launches the engine, Shutdown stops
// admission and drains in-flight flows under a deadline, Wait blocks
// until the run ends:
//
//	prog, err := flux.Compile("hello.flux", src)
//	b := flux.NewBindings().
//	        BindSource("Listen", listen).
//	        BindNode("Handle", handle)
//	srv, err := flux.New(prog, b, flux.WithEngine(flux.ThreadPool))
//	if err := srv.Start(ctx); err != nil { ... }
//	// ... serve traffic; srv.Inject can admit records from outside ...
//	shCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
//	defer cancel()
//	if err := srv.Shutdown(shCtx); err != nil { ... } // deadline hit, flows still draining
//	err = srv.Wait()
//
// Bounded workloads (and tests) can use srv.Run(ctx), which is Start
// followed by Wait: it returns once every source reports ErrStop and
// the last flow drains.
//
// Observability is one plane: the always-on Stats counters, and an
// optional Observer (flow terminals including drops and errors, node
// completions, engine queue-depth samples) attached with WithObserver;
// the §5.2 path profiler joins the same plane through WithProfiler.
//
// See examples/ for complete servers: the paper's image-compression
// server (Figure 2), an HTTP/1.1 web server, a BitTorrent peer
// (Figure 7), and a multiplayer game server.
package flux

import (
	"time"

	"github.com/flux-lang/flux/internal/codegen"
	"github.com/flux-lang/flux/internal/core"
	"github.com/flux-lang/flux/internal/lang/parser"
	"github.com/flux-lang/flux/internal/profile"
	"github.com/flux-lang/flux/internal/runtime"
	"github.com/flux-lang/flux/internal/sim"
	"github.com/flux-lang/flux/internal/telemetry"
)

// Program is a compiled Flux program: the analyzed graph, lock
// assignment, flattened per-source flows, and Ball-Larus numbering.
type Program = core.Program

// Warning is a non-fatal compiler diagnostic (early lock acquisition,
// reader-to-writer promotion, missing catch-all case).
type Warning = core.Warning

// FlatGraph is one source's flattened, path-numbered executable flow.
type FlatGraph = core.FlatGraph

// FlatNode is one vertex of a flattened flow, as seen by Observer and
// Profiler callbacks.
type FlatNode = core.FlatNode

// Compile parses and analyzes a Flux program. The name appears in
// diagnostics. Compilation warnings are available on the returned
// program's Warnings field.
func Compile(name, src string) (*Program, error) {
	astProg, err := parser.Parse(name, src)
	if err != nil {
		return nil, err
	}
	return core.Build(astProg)
}

// Runtime types, re-exported.
type (
	// Record is the value tuple flowing between nodes.
	Record = runtime.Record
	// Flow is the per-request execution context.
	Flow = runtime.Flow
	// NodeFunc implements a concrete node.
	NodeFunc = runtime.NodeFunc
	// SourceFunc implements a source node.
	SourceFunc = runtime.SourceFunc
	// PredicateFunc implements a predicate type.
	PredicateFunc = runtime.PredicateFunc
	// SessionFunc maps a source record to a session id.
	SessionFunc = runtime.SessionFunc
	// Bindings associates Flux names with Go implementations.
	Bindings = runtime.Bindings
	// Server executes a compiled program on an engine; it is driven
	// through Start, Shutdown, Wait, Inject — or Run for bounded work.
	Server = runtime.Server
	// Option configures a Server (see the With* constructors).
	Option = runtime.Option
	// Engine is the pluggable execution strategy behind a Server; new
	// engines register with RegisterEngine.
	Engine = runtime.Engine
	// EngineKind selects a registered engine.
	EngineKind = runtime.EngineKind
	// Stats holds a server's always-on flow counters.
	Stats = runtime.Stats
	// StatsSnapshot is a point-in-time copy of Stats.
	StatsSnapshot = runtime.StatsSnapshot
	// Observer is the unified observability plane: flow terminals
	// (including drops and errors), node completions, queue depths.
	Observer = runtime.Observer
	// ShedObserver is the optional Observer extension receiving
	// connection-plane admission drops (overload sheds, refused
	// admissions); MultiObserver forwards to members implementing it.
	ShedObserver = runtime.ShedObserver
	// SourceHandle is a pre-resolved external-admission handle for one
	// source (Server.Source): per-event injection without the
	// source-name lookup — the hot path for connection planes that
	// inject every request.
	SourceHandle = runtime.SourceHandle
	// FlowOutcome classifies how a flow ended.
	FlowOutcome = runtime.FlowOutcome
)

// Engine kinds: the three runtimes of §3.2 plus the multicore
// work-stealing evolution of the event engine.
const (
	// ThreadPerFlow starts a goroutine per data flow.
	ThreadPerFlow = runtime.ThreadPerFlow
	// ThreadPool services flows with a fixed worker pool, FIFO admission.
	ThreadPool = runtime.ThreadPool
	// EventDriven runs node activations as events on a non-blocking
	// dispatcher with an async-I/O offload pool.
	EventDriven = runtime.EventDriven
	// WorkStealing runs one event dispatcher per core (default
	// GOMAXPROCS, tune with WithDispatchers), each owning a local run
	// deque with idle-core work stealing — the event engine's design
	// scaled across cores.
	WorkStealing = runtime.WorkStealing
)

// Flow outcomes, as reported to Observer.FlowDone.
const (
	// FlowCompleted reached the exit terminal.
	FlowCompleted = runtime.FlowCompleted
	// FlowErrored reached the error terminal.
	FlowErrored = runtime.FlowErrored
	// FlowDropped matched no dispatch case.
	FlowDropped = runtime.FlowDropped
)

// Sentinel errors.
var (
	// ErrStop tells the engine a source is exhausted.
	ErrStop = runtime.ErrStop
	// ErrNoData tells the engine a polling source found nothing before
	// its deadline.
	ErrNoData = runtime.ErrNoData
	// ErrServerClosed is returned by Inject once the server stops
	// admitting flows.
	ErrServerClosed = runtime.ErrServerClosed
)

// NewBindings returns an empty binding set.
func NewBindings() *Bindings { return runtime.NewBindings() }

// New validates the bindings against the program and prepares a server
// configured by functional options; the server is inert until Start (or
// Run). With no options it is a thread-per-flow server with no observer.
func New(p *Program, b *Bindings, opts ...Option) (*Server, error) {
	return runtime.New(p, b, opts...)
}

// Server options.
var (
	// WithEngine selects the runtime system (§3.2) — any registered
	// kind; default ThreadPerFlow.
	WithEngine = runtime.WithEngine
	// WithPoolSize sets the thread-pool worker count (default
	// 4×GOMAXPROCS).
	WithPoolSize = runtime.WithPoolSize
	// WithDispatchers sets the event-loop count (default 1 for
	// EventDriven, GOMAXPROCS for WorkStealing).
	WithDispatchers = runtime.WithDispatchers
	// WithAsyncWorkers sizes the event engine's blocking-call offload
	// pool (default 16).
	WithAsyncWorkers = runtime.WithAsyncWorkers
	// WithSourceTimeout sets the event engine's source polling deadline
	// (default 20ms).
	WithSourceTimeout = runtime.WithSourceTimeout
	// WithProfiler attaches a §5.2 path/node profiler.
	WithProfiler = runtime.WithProfiler
	// WithObserver attaches an observer to the unified plane.
	WithObserver = runtime.WithObserver
	// WithKeepAlive keeps the server admitting Inject flows after its
	// sources are exhausted, until Shutdown.
	WithKeepAlive = runtime.WithKeepAlive
	// WithQueueSampleInterval sets the queue-depth sampling period
	// (default 100ms; active only with an observer).
	WithQueueSampleInterval = runtime.WithQueueSampleInterval
	// WithAddedObserver composes an observer with the one already
	// configured instead of replacing it.
	WithAddedObserver = runtime.WithAddedObserver
)

// Live telemetry plane: always-on, allocation-free aggregation behind
// the Observer interface, served over HTTP by ServeOps.
type (
	// Telemetry is the zero-alloc aggregation plane: per-graph flow
	// latency histograms, per-node latency histograms, windowed
	// queue-depth and ctrl/* series, shed counters, sampled flow
	// traces. Attach with WithTelemetry; serve with ServeOps.
	Telemetry = telemetry.Telemetry
	// TelemetrySnapshot is a point-in-time copy of the whole plane.
	TelemetrySnapshot = telemetry.Snapshot
	// Ops is a running ops HTTP endpoint (/metrics, /debug/pprof/*,
	// /debug/flux/*).
	Ops = telemetry.Ops
	// ServeOption configures ServeOps.
	ServeOption = telemetry.ServeOption
)

// NewTelemetry returns a telemetry plane with default 1-in-128 flow
// trace sampling.
func NewTelemetry() *Telemetry { return telemetry.New() }

// WithTelemetry attaches the telemetry plane to a server alongside any
// other configured observer (it composes, never replaces).
func WithTelemetry(t *Telemetry) Option { return runtime.WithAddedObserver(t) }

// ServeOps starts the ops HTTP listener on addr ("" or ":0" pick a
// port) serving /metrics, /debug/pprof/*, and the /debug/flux/* JSON
// views of t.
func ServeOps(addr string, t *Telemetry, opts ...ServeOption) (*Ops, error) {
	return telemetry.Serve(addr, t, opts...)
}

// WithOpsProfiler attaches a path profiler to an ops endpoint so
// /debug/flux/paths serves its ranked hot paths.
func WithOpsProfiler(p *Profiler) ServeOption { return telemetry.WithProfiler(p) }

// RegisterEngine makes a new engine selectable through WithEngine —
// the extension point behind the three built-in runtimes.
func RegisterEngine(kind EngineKind, name string, factory runtime.EngineFactory) {
	runtime.RegisterEngine(kind, name, factory)
}

// ParseEngineKind resolves an engine name ("thread", "threadpool",
// "event", ...) to its kind — the inverse of EngineKind.String.
func ParseEngineKind(name string) (EngineKind, bool) { return runtime.ParseEngineKind(name) }

// MultiObserver combines observers into one, skipping nils.
func MultiObserver(obs ...Observer) Observer { return runtime.MultiObserver(obs...) }

// IntervalSource builds a source firing every interval — deadline-aware
// so timer flows never wedge the event engine's dispatcher.
func IntervalSource(d time.Duration) SourceFunc { return runtime.IntervalSource(d) }

// Profiling (§5.2).
type (
	// Profiler aggregates Ball-Larus path counts/times and per-node
	// statistics from a running server.
	Profiler = profile.Profiler
	// PathReport is one ranked hot-path row.
	PathReport = profile.PathReport
	// SortBy selects the hot-path ranking criterion.
	SortBy = profile.SortBy
)

// Hot-path rankings.
const (
	// ByCount ranks by execution frequency.
	ByCount = profile.ByCount
	// ByTotalTime ranks by cumulative time.
	ByTotalTime = profile.ByTotalTime
	// ByMeanTime ranks by per-execution cost.
	ByMeanTime = profile.ByMeanTime
)

// NewProfiler returns an empty path profiler; attach it with
// WithProfiler.
func NewProfiler() *Profiler { return profile.New() }

// Simulation (§5.1).
type (
	// SimParams parameterizes a discrete-event simulation.
	SimParams = sim.Params
	// SimSourceParams describes one source's arrival process.
	SimSourceParams = sim.SourceParams
	// SimResult reports simulated throughput, latency, utilization.
	SimResult = sim.Result
)

// Simulate runs the discrete-event simulator over a compiled program,
// predicting performance under the given parameters (CPU count, arrival
// rates, per-node service times, branch probabilities).
func Simulate(p *Program, params SimParams) SimResult {
	return sim.New(p, params).Run()
}

// ParamsFromProfile derives simulator parameters (node means, branch
// probabilities, error rates) from a profiling run — the observed-
// parameter workflow of §5.1. The caller supplies arrival rates and the
// CPU count.
func ParamsFromProfile(p *Program, prof *Profiler) SimParams {
	return sim.FromProfile(p, prof)
}

// Code generation (§3.1).

// GenerateStubs renders Go binding stubs for every concrete node,
// predicate, and session function of the program.
func GenerateStubs(p *Program, pkg string) string { return codegen.Stubs(p, pkg) }

// GenerateDOT renders the flattened program graphs in Graphviz format.
func GenerateDOT(p *Program) string { return codegen.DOT(p) }

// GenerateSimulatorSource renders per-node discrete-event-simulation
// code in the style of the paper's Figure 5.
func GenerateSimulatorSource(p *Program) string { return codegen.SimulatorSource(p) }
