// Package flux is a Go implementation of the Flux coordination language
// for building high-performance servers, reproducing Burns, Grimaldi,
// Kostadinov, Berger, and Corner, "Flux: A Language for Programming
// High-Performance Servers" (USENIX ATC 2006).
//
// A Flux program composes sequential functions ("concrete nodes") into
// concurrent server data flows. The program declares:
//
//   - typed node signatures and source nodes (§2.1),
//   - abstract nodes — chains of nodes joined by "->" (§2.2),
//   - predicate types routing flows by runtime tests (§2.3),
//   - error handlers (§2.4), and
//   - atomicity constraints guarding shared state, with reader/writer
//     modes and per-session scope (§2.5).
//
// Compile type-checks the composition, rejects cyclic flows, assigns
// locks in a canonical deadlock-free order (hoisting out-of-order
// constraints with warnings, §3.1.1), flattens each source's flow into
// an executable graph, and numbers every path with the Ball-Larus
// algorithm for profiling (§5.2).
//
// The compiled program runs unchanged on three runtimes (§3.2):
// goroutine-per-flow, a fixed pool with FIFO admission, and an
// event-driven engine whose dispatcher never blocks. It can also be fed
// to the discrete-event simulator to predict server performance on
// hypothetical hardware before deployment (§5.1).
//
// # Quick start
//
//	prog, err := flux.Compile("hello.flux", src)
//	b := flux.NewBindings().
//	        BindSource("Listen", listen).
//	        BindNode("Handle", handle)
//	srv, err := flux.NewServer(prog, b, flux.Config{Kind: flux.ThreadPool})
//	err = srv.Run(ctx)
//
// See examples/ for complete servers: the paper's image-compression
// server (Figure 2), an HTTP/1.1 web server, a BitTorrent peer
// (Figure 7), and a multiplayer game server.
package flux

import (
	"time"

	"github.com/flux-lang/flux/internal/codegen"
	"github.com/flux-lang/flux/internal/core"
	"github.com/flux-lang/flux/internal/lang/parser"
	"github.com/flux-lang/flux/internal/profile"
	"github.com/flux-lang/flux/internal/runtime"
	"github.com/flux-lang/flux/internal/sim"
)

// Program is a compiled Flux program: the analyzed graph, lock
// assignment, flattened per-source flows, and Ball-Larus numbering.
type Program = core.Program

// Warning is a non-fatal compiler diagnostic (early lock acquisition,
// reader-to-writer promotion, missing catch-all case).
type Warning = core.Warning

// FlatGraph is one source's flattened, path-numbered executable flow.
type FlatGraph = core.FlatGraph

// Compile parses and analyzes a Flux program. The name appears in
// diagnostics. Compilation warnings are available on the returned
// program's Warnings field.
func Compile(name, src string) (*Program, error) {
	astProg, err := parser.Parse(name, src)
	if err != nil {
		return nil, err
	}
	return core.Build(astProg)
}

// Runtime types, re-exported.
type (
	// Record is the value tuple flowing between nodes.
	Record = runtime.Record
	// Flow is the per-request execution context.
	Flow = runtime.Flow
	// NodeFunc implements a concrete node.
	NodeFunc = runtime.NodeFunc
	// SourceFunc implements a source node.
	SourceFunc = runtime.SourceFunc
	// PredicateFunc implements a predicate type.
	PredicateFunc = runtime.PredicateFunc
	// SessionFunc maps a source record to a session id.
	SessionFunc = runtime.SessionFunc
	// Bindings associates Flux names with Go implementations.
	Bindings = runtime.Bindings
	// Config selects and tunes a runtime engine.
	Config = runtime.Config
	// Server executes a compiled program on an engine.
	Server = runtime.Server
	// Stats holds a server's flow counters.
	Stats = runtime.Stats
	// EngineKind selects one of the three runtime systems of §3.2.
	EngineKind = runtime.EngineKind
)

// Engine kinds (§3.2).
const (
	// ThreadPerFlow starts a goroutine per data flow.
	ThreadPerFlow = runtime.ThreadPerFlow
	// ThreadPool services flows with a fixed worker pool, FIFO admission.
	ThreadPool = runtime.ThreadPool
	// EventDriven runs node activations as events on a non-blocking
	// dispatcher with an async-I/O offload pool.
	EventDriven = runtime.EventDriven
)

// Sentinel errors for source functions.
var (
	// ErrStop tells the engine a source is exhausted.
	ErrStop = runtime.ErrStop
	// ErrNoData tells the engine a polling source found nothing before
	// its deadline.
	ErrNoData = runtime.ErrNoData
)

// NewBindings returns an empty binding set.
func NewBindings() *Bindings { return runtime.NewBindings() }

// NewServer validates the bindings against the program and prepares a
// server; Run starts it.
func NewServer(p *Program, b *Bindings, cfg Config) (*Server, error) {
	return runtime.NewServer(p, b, cfg)
}

// IntervalSource builds a source firing every interval — deadline-aware
// so timer flows never wedge the event engine's dispatcher.
func IntervalSource(d time.Duration) SourceFunc { return runtime.IntervalSource(d) }

// Profiling (§5.2).
type (
	// Profiler aggregates Ball-Larus path counts/times and per-node
	// statistics from a running server.
	Profiler = profile.Profiler
	// PathReport is one ranked hot-path row.
	PathReport = profile.PathReport
	// SortBy selects the hot-path ranking criterion.
	SortBy = profile.SortBy
)

// Hot-path rankings.
const (
	// ByCount ranks by execution frequency.
	ByCount = profile.ByCount
	// ByTotalTime ranks by cumulative time.
	ByTotalTime = profile.ByTotalTime
	// ByMeanTime ranks by per-execution cost.
	ByMeanTime = profile.ByMeanTime
)

// NewProfiler returns an empty path profiler; pass it in Config.Profiler.
func NewProfiler() *Profiler { return profile.New() }

// Simulation (§5.1).
type (
	// SimParams parameterizes a discrete-event simulation.
	SimParams = sim.Params
	// SimSourceParams describes one source's arrival process.
	SimSourceParams = sim.SourceParams
	// SimResult reports simulated throughput, latency, utilization.
	SimResult = sim.Result
)

// Simulate runs the discrete-event simulator over a compiled program,
// predicting performance under the given parameters (CPU count, arrival
// rates, per-node service times, branch probabilities).
func Simulate(p *Program, params SimParams) SimResult {
	return sim.New(p, params).Run()
}

// ParamsFromProfile derives simulator parameters (node means, branch
// probabilities, error rates) from a profiling run — the observed-
// parameter workflow of §5.1. The caller supplies arrival rates and the
// CPU count.
func ParamsFromProfile(p *Program, prof *Profiler) SimParams {
	return sim.FromProfile(p, prof)
}

// Code generation (§3.1).

// GenerateStubs renders Go binding stubs for every concrete node,
// predicate, and session function of the program.
func GenerateStubs(p *Program, pkg string) string { return codegen.Stubs(p, pkg) }

// GenerateDOT renders the flattened program graphs in Graphviz format.
func GenerateDOT(p *Program) string { return codegen.DOT(p) }

// GenerateSimulatorSource renders per-node discrete-event-simulation
// code in the style of the paper's Figure 5.
func GenerateSimulatorSource(p *Program) string { return codegen.SimulatorSource(p) }
