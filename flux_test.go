package flux_test

import (
	"context"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	flux "github.com/flux-lang/flux"
)

const apiProgram = `
Gen () => (int v);
Double (int v) => (int v);
Route (int v) => (int v);
Big (int v) => (int v);
Sink (int v) => ();
source Gen => Flow;
Flow = Double -> Split -> Sink;
typedef big IsBig;
Split:[big] = Big;
Split:[_] = Route;
atomic Sink:{out};
`

func TestCompileAndRunPublicAPI(t *testing.T) {
	prog, err := flux.Compile("api.flux", apiProgram)
	if err != nil {
		t.Fatal(err)
	}
	if len(prog.Sources) != 1 || prog.Sources[0].Node.Name != "Gen" {
		t.Fatalf("sources = %v", prog.Sources)
	}

	var n atomic.Int64
	var sunk atomic.Int64
	b := flux.NewBindings().
		BindSource("Gen", func(fl *flux.Flow) (flux.Record, error) {
			v := n.Add(1)
			if v > 20 {
				return nil, flux.ErrStop
			}
			return flux.Record{int(v)}, nil
		}).
		BindPredicate("IsBig", func(v any) bool { return v.(any).(int) > 20 }).
		BindNode("Double", func(fl *flux.Flow, in flux.Record) (flux.Record, error) {
			return flux.Record{in[0].(int) * 2}, nil
		}).
		BindNode("Big", passthrough).
		BindNode("Route", passthrough).
		BindNode("Sink", func(fl *flux.Flow, in flux.Record) (flux.Record, error) {
			sunk.Add(1)
			return nil, nil
		})
	srv, err := flux.New(prog, b, flux.WithEngine(flux.ThreadPool), flux.WithPoolSize(4))
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Start(context.Background()); err != nil {
		t.Fatal(err)
	}
	if err := srv.Wait(); err != nil {
		t.Fatal(err)
	}
	if sunk.Load() != 20 {
		t.Errorf("sink executions = %d", sunk.Load())
	}
}

func passthrough(fl *flux.Flow, in flux.Record) (flux.Record, error) { return in, nil }

func TestCompileErrorsSurface(t *testing.T) {
	_, err := flux.Compile("bad.flux", `source X => Y;`)
	if err == nil || !strings.Contains(err.Error(), "undefined node") {
		t.Errorf("error = %v", err)
	}
}

func TestProfilerThroughPublicAPI(t *testing.T) {
	prog, err := flux.Compile("p.flux", `
Gen () => (int v);
Sink (int v) => ();
source Gen => Flow;
Flow = Sink;
`)
	if err != nil {
		t.Fatal(err)
	}
	prof := flux.NewProfiler()
	var n atomic.Int64
	b := flux.NewBindings().
		BindSource("Gen", func(fl *flux.Flow) (flux.Record, error) {
			if n.Add(1) > 5 {
				return nil, flux.ErrStop
			}
			return flux.Record{1}, nil
		}).
		BindNode("Sink", func(fl *flux.Flow, in flux.Record) (flux.Record, error) { return nil, nil })
	srv, err := flux.New(prog, b, flux.WithEngine(flux.ThreadPerFlow), flux.WithProfiler(prof))
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	g := prog.Graphs["Gen"]
	rows := prof.HotPaths(g, flux.ByCount, 0)
	if len(rows) != 1 || rows[0].Count != 5 {
		t.Errorf("hot paths = %+v", rows)
	}
	if rows[0].Label != "Gen -> Sink" {
		t.Errorf("label = %q", rows[0].Label)
	}
}

func TestSimulateThroughPublicAPI(t *testing.T) {
	prog, err := flux.Compile("s.flux", `
Arrive () => (int v);
Serve (int v) => ();
source Arrive => Flow;
Flow = Serve;
`)
	if err != nil {
		t.Fatal(err)
	}
	res := flux.Simulate(prog, flux.SimParams{
		CPUs: 1, Duration: 50, Warmup: 5, Seed: 1,
		Sources:  map[string]flux.SimSourceParams{"Arrive": {Rate: 100, Exponential: true}},
		NodeTime: map[string]float64{"Serve": 0.001},
	})
	if res.Throughput < 80 || res.Throughput > 120 {
		t.Errorf("throughput = %.1f, want ~100", res.Throughput)
	}
}

func TestCodegenThroughPublicAPI(t *testing.T) {
	prog, err := flux.Compile("g.flux", apiProgram)
	if err != nil {
		t.Fatal(err)
	}
	if out := flux.GenerateStubs(prog, "pkg"); !strings.Contains(out, "package pkg") {
		t.Error("stubs missing package clause")
	}
	if out := flux.GenerateDOT(prog); !strings.Contains(out, "digraph flux") {
		t.Error("dot missing digraph")
	}
	if out := flux.GenerateSimulatorSource(prog); !strings.Contains(out, "processor->reserve()") {
		t.Error("simulator source missing reserve")
	}
}

func TestIntervalSourcePublicAPI(t *testing.T) {
	src := flux.IntervalSource(10 * time.Millisecond)
	fl := &flux.Flow{Ctx: context.Background()}
	start := time.Now()
	rec, err := src(fl)
	if err != nil || len(rec) != 1 {
		t.Fatalf("rec=%v err=%v", rec, err)
	}
	if time.Since(start) < 8*time.Millisecond {
		t.Error("interval source fired early")
	}
}

// TestLifecycleAndObserverPublicAPI drives the full redesigned surface:
// options, Start, Inject with KeepAlive, graceful Shutdown, Wait, and
// the unified observer plane.
func TestLifecycleAndObserverPublicAPI(t *testing.T) {
	prog, err := flux.Compile("l.flux", `
Gen () => (int v);
Sink (int v) => ();
source Gen => Flow;
Flow = Sink;
`)
	if err != nil {
		t.Fatal(err)
	}
	var outcomes atomic.Int64
	obs := countingObserver{n: &outcomes}
	var sunk atomic.Int64
	b := flux.NewBindings().
		BindSource("Gen", func(fl *flux.Flow) (flux.Record, error) {
			return nil, flux.ErrStop
		}).
		BindNode("Sink", func(fl *flux.Flow, in flux.Record) (flux.Record, error) {
			sunk.Add(1)
			return nil, nil
		})
	srv, err := flux.New(prog, b,
		flux.WithEngine(flux.EventDriven),
		flux.WithSourceTimeout(time.Millisecond),
		flux.WithKeepAlive(),
		flux.WithObserver(obs),
	)
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Start(context.Background()); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if err := srv.Inject("Gen", flux.Record{i}); err != nil {
			t.Fatalf("Inject: %v", err)
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	if err := srv.Wait(); err != nil {
		t.Fatalf("Wait: %v", err)
	}
	if sunk.Load() != 10 {
		t.Errorf("sink executions = %d, want 10", sunk.Load())
	}
	if outcomes.Load() != 10 {
		t.Errorf("observer FlowDone count = %d, want 10", outcomes.Load())
	}
	if err := srv.Inject("Gen", flux.Record{1}); err != flux.ErrServerClosed {
		t.Errorf("Inject after Shutdown = %v, want ErrServerClosed", err)
	}
	k, ok := flux.ParseEngineKind("event")
	if !ok || k != flux.EventDriven {
		t.Errorf("ParseEngineKind(event) = %v, %v", k, ok)
	}
	k, ok = flux.ParseEngineKind("steal")
	if !ok || k != flux.WorkStealing {
		t.Errorf("ParseEngineKind(steal) = %v, %v", k, ok)
	}
}

// countingObserver counts FlowDone events through the public Observer
// type.
type countingObserver struct{ n *atomic.Int64 }

func (c countingObserver) FlowDone(*flux.FlatGraph, uint64, flux.FlowOutcome, time.Duration) {
	c.n.Add(1)
}
func (c countingObserver) NodeDone(*flux.FlatGraph, *flux.FlatNode, time.Duration) {}
func (c countingObserver) QueueDepth(flux.EngineKind, string, int)                 {}
