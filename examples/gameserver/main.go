// The paper's heartbeat client/server application (§4.4): the
// multiplayer Tag server with a swarm of simulated players, reporting
// the 10 Hz heartbeat's health as the player count grows.
//
//	go run ./examples/gameserver [-players n] [-seconds s]
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"time"

	flux "github.com/flux-lang/flux"
	"github.com/flux-lang/flux/internal/loadgen"
	"github.com/flux-lang/flux/internal/servers/gameserver"
)

func main() {
	players := flag.Int("players", 32, "simulated players")
	seconds := flag.Int("seconds", 3, "run duration")
	flag.Parse()

	srv, err := gameserver.New(gameserver.Config{
		Heartbeat: 100 * time.Millisecond, // the paper's 10 Hz
		Engine:    flux.ThreadPool,
		PoolSize:  8,
	})
	if err != nil {
		log.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	if err := srv.Start(ctx); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("tag server on udp://%s, %d players joining...\n", srv.Addr(), *players)

	res := loadgen.RunGameLoad(ctx, loadgen.GameClientConfig{
		Addr:     srv.Addr(),
		Players:  *players,
		MoveHz:   10,
		Duration: time.Duration(*seconds) * time.Second,
		Warmup:   500 * time.Millisecond,
		Seed:     11,
	})
	fmt.Printf("\nclients: %s\n", res)
	turns, meanTurn := srv.TickStats()
	fmt.Printf("server: %d turns, mean state computation %v (heartbeat budget 100ms)\n", turns, meanTurn)
	if res.InterArrival.Count > 0 {
		fmt.Printf("heartbeat p95 inter-arrival at clients: %v\n", res.InterArrival.P95)
	}
	shCtx, shCancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer shCancel()
	if err := srv.Shutdown(shCtx); err != nil {
		log.Printf("shutdown: %v", err)
	}
}
