// The paper's peer-to-peer application (§4.3): a BitTorrent swarm built
// from Flux peers — a tracker, a seeder with a complete copy, and a
// leecher that discovers the seeder through the tracker and downloads
// the file, all in one process.
//
//	go run ./examples/bittorrent [-size bytes]
package main

import (
	"bytes"
	"context"
	"flag"
	"fmt"
	"log"
	"math/rand"
	"time"

	flux "github.com/flux-lang/flux"
	"github.com/flux-lang/flux/internal/servers/bittorrent"
	"github.com/flux-lang/flux/internal/torrent"
)

func main() {
	size := flag.Int("size", 2<<20, "shared file size in bytes")
	flag.Parse()

	// Make the shared file and its metainfo.
	data := make([]byte, *size)
	rand.New(rand.NewSource(42)).Read(data)
	meta, err := torrent.New("example.bin", "", data, 256*1024)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("torrent: %d bytes, %d pieces, infohash %x\n", meta.Length, meta.NumPieces(), meta.InfoHash[:6])

	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	// Tracker.
	tracker, err := bittorrent.NewTracker("")
	if err != nil {
		log.Fatal(err)
	}
	go tracker.Serve(ctx)
	fmt.Println("tracker:", tracker.AnnounceURL())

	// Seeder: a Flux peer with the complete file.
	seeder, err := bittorrent.New(bittorrent.Config{
		Meta: meta, Content: data,
		AnnounceURL:     tracker.AnnounceURL(),
		TrackerInterval: 200 * time.Millisecond,
		Engine:          flux.ThreadPool, PoolSize: 8,
	})
	if err != nil {
		log.Fatal(err)
	}
	if err := seeder.Start(ctx); err != nil {
		log.Fatal(err)
	}
	fmt.Println("seeder: ", seeder.Addr())

	// Leecher: an empty Flux peer that finds the seeder via the tracker.
	leecher, err := bittorrent.New(bittorrent.Config{
		Meta:            meta,
		AnnounceURL:     tracker.AnnounceURL(),
		TrackerInterval: 200 * time.Millisecond,
		Engine:          flux.ThreadPool, PoolSize: 8,
	})
	if err != nil {
		log.Fatal(err)
	}
	if err := leecher.Start(ctx); err != nil {
		log.Fatal(err)
	}
	fmt.Println("leecher:", leecher.Addr())

	start := time.Now()
	for !leecher.Store().Complete() {
		if ctx.Err() != nil {
			log.Fatal("download did not complete in time")
		}
		time.Sleep(50 * time.Millisecond)
	}
	elapsed := time.Since(start)
	if !bytes.Equal(leecher.Store().Bytes(), data) {
		log.Fatal("content mismatch after download")
	}
	mbps := float64(*size) * 8 / 1e6 / elapsed.Seconds()
	fmt.Printf("\ndownload complete and verified in %v (%.0f Mb/s); seeder served %d bytes\n",
		elapsed.Round(time.Millisecond), mbps, seeder.BytesServed())

	// Tear the swarm down gracefully: leecher first, then seeder.
	shCtx, shCancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer shCancel()
	if err := leecher.Shutdown(shCtx); err != nil {
		log.Printf("leecher shutdown: %v", err)
	}
	if err := seeder.Shutdown(shCtx); err != nil {
		log.Printf("seeder shutdown: %v", err)
	}
}
