// The paper's running example (§2, Figure 2): the image-compression
// server, plus the §5.1 workflow — profile a run, derive simulator
// parameters, and predict throughput on more CPUs.
//
//	go run ./examples/imageserver [-addr host:port] [-engine thread|pool|event|steal] [-demo]
//
// With -demo (the default when no flags are given) the example starts
// the server, drives a short load against it, prints the hot-path
// profile, and compares measured throughput with the discrete-event
// simulator's prediction for 1, 2, and 4 CPUs.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"time"

	flux "github.com/flux-lang/flux"
	"github.com/flux-lang/flux/internal/loadgen"
	"github.com/flux-lang/flux/internal/servers/imageserver"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:0", "listen address")
	engine := flag.String("engine", "pool", "runtime engine: thread, pool, event, or steal")
	demo := flag.Bool("demo", true, "run the built-in load + prediction demo, then exit")
	flag.Parse()

	prof := flux.NewProfiler()
	srv, err := imageserver.New(imageserver.Config{
		Addr:          *addr,
		Engine:        engineKind(*engine),
		SourceTimeout: 5 * time.Millisecond,
		CompressWork:  2 * time.Millisecond, // calibrated compression cost
		Profiler:      prof,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("image server (%s engine) listening on http://%s/img0/8\n", *engine, srv.Addr())

	ctx, cancel := signal.NotifyContext(context.Background(), os.Interrupt)
	defer cancel()
	if err := srv.Start(ctx); err != nil {
		log.Fatal(err)
	}

	if !*demo {
		log.Println("serving until interrupted; GET /img<0-4>/<1-8>")
		// Interrupt cancels the context; that is the clean exit here.
		if err := srv.Wait(); err != nil && !errors.Is(err, context.Canceled) {
			log.Fatal(err)
		}
		return
	}

	// Drive a short fixed-rate load (the §5.1 load tester).
	res := loadgen.RunImageLoad(ctx, loadgen.ImageClientConfig{
		Addr:     srv.Addr(),
		Rate:     60,
		Duration: 3 * time.Second,
		Warmup:   500 * time.Millisecond,
		Seed:     1,
	})
	fmt.Printf("\nmeasured under load: %s\n", res)

	// Hot paths (§5.2).
	g := srv.Program().Graphs["Listen"]
	fmt.Printf("\n%s\n", prof.Report(g, flux.ByTotalTime, 5))

	// Predict performance on more CPUs from the observed parameters
	// (§5.1, Figure 6 workflow).
	params := flux.ParamsFromProfile(srv.Program(), prof)
	params.Duration, params.Warmup, params.Seed = 20, 2, 1
	params.Sources = map[string]flux.SimSourceParams{"Listen": {Rate: 200}}
	fmt.Println("predicted throughput at offered load 200 req/s:")
	for _, cpus := range []int{1, 2, 4} {
		params.CPUs = cpus
		r := flux.Simulate(srv.Program(), params)
		fmt.Printf("  %d CPU(s): %6.1f req/s  (mean latency %.1fms, utilization %.0f%%)\n",
			cpus, r.Throughput, 1000*r.MeanLatency, 100*r.Utilization)
	}

	shCtx, shCancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer shCancel()
	if err := srv.Shutdown(shCtx); err != nil {
		log.Printf("shutdown: %v", err)
	}
}

// engineKind resolves the flag through the engine registry, so any
// registered engine ("steal", ...) is selectable; "pool" stays as the
// short alias for threadpool.
func engineKind(s string) flux.EngineKind {
	if s == "pool" {
		return flux.ThreadPool
	}
	if k, ok := flux.ParseEngineKind(s); ok {
		return k
	}
	log.Fatalf("unknown engine %q (want thread, pool, event, or steal)", s)
	return flux.ThreadPool
}
