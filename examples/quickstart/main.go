// Quickstart: a complete Flux program in one file.
//
// The program greets a bounded stream of requests, routing VIP names
// through a different node than regular ones, with a shared counter
// guarded by an atomicity constraint — no mutex in sight. Run it with:
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"
	"strings"

	flux "github.com/flux-lang/flux"
)

// The Flux program: one source, a three-node flow with a predicate
// dispatch, and a writer constraint serializing the counter.
const program = `
NextName () => (string name);
Classify (string name) => (string name, string greeting);
Count (string name, string greeting) => (string name, string greeting);
Print (string name, string greeting) => ();
VIPGreet (string name) => (string name, string greeting);

source NextName => Greet;
Greet = Router -> Count -> Print;

typedef vip IsVIP;
Router:[vip] = VIPGreet;
Router:[_] = Classify;

atomic Count:{total};
`

func main() {
	prog, err := flux.Compile("quickstart.flux", program)
	if err != nil {
		log.Fatal(err)
	}
	for _, w := range prog.Warnings {
		log.Println(w)
	}

	names := []string{"ada", "grace", "ADMIRAL", "linus", "ken", "DENNIS"}
	next := 0
	total := 0 // guarded by the "total" constraint, not a mutex

	b := flux.NewBindings().
		BindSource("NextName", func(fl *flux.Flow) (flux.Record, error) {
			if next >= len(names) {
				return nil, flux.ErrStop
			}
			name := names[next]
			next++
			return flux.Record{name}, nil
		}).
		BindPredicate("IsVIP", func(v any) bool {
			name := v.(string)
			return name == strings.ToUpper(name)
		}).
		BindNode("Classify", func(fl *flux.Flow, in flux.Record) (flux.Record, error) {
			return flux.Record{in[0], "hello, " + in[0].(string)}, nil
		}).
		BindNode("VIPGreet", func(fl *flux.Flow, in flux.Record) (flux.Record, error) {
			return flux.Record{in[0], "WELCOME ABOARD, " + in[0].(string)}, nil
		}).
		BindNode("Count", func(fl *flux.Flow, in flux.Record) (flux.Record, error) {
			total++ // safe: the atomicity constraint serializes this node
			return in, nil
		}).
		BindNode("Print", func(fl *flux.Flow, in flux.Record) (flux.Record, error) {
			fmt.Println(in[1].(string))
			return nil, nil
		})

	// The same program runs on any engine; try flux.EventDriven,
	// flux.ThreadPerFlow, or flux.WorkStealing.
	srv, err := flux.New(prog, b, flux.WithEngine(flux.ThreadPool), flux.WithPoolSize(4))
	if err != nil {
		log.Fatal(err)
	}
	// Start/Wait is the server lifecycle; a bounded workload like this
	// one ends on its own when the source reports ErrStop.
	if err := srv.Start(context.Background()); err != nil {
		log.Fatal(err)
	}
	if err := srv.Wait(); err != nil {
		log.Fatal(err)
	}
	st := srv.Stats().Snapshot()
	fmt.Printf("\n%d greetings delivered (%d flows, %d errors)\n", total, st.Completed, st.Errored)
}
