// The paper's HTTP/1.1 web server (§4.2): SPECweb99-like static corpus
// plus dynamic FScript pages, on any of the Flux runtimes.
//
//	go run ./examples/webserver [-addr host:port] [-engine thread|pool|event|steal] [-dirs n] [-demo]
//
// With -demo the example drives its own SPECweb-like client swarm and
// prints throughput/latency, then exits.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"time"

	flux "github.com/flux-lang/flux"
	"github.com/flux-lang/flux/internal/loadgen"
	"github.com/flux-lang/flux/internal/servers/webserver"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:0", "listen address")
	engine := flag.String("engine", "pool", "runtime engine: thread, pool, event, or steal")
	dirs := flag.Int("dirs", 1, "SPECweb-like corpus directories (~5 MB each)")
	demo := flag.Bool("demo", true, "drive a built-in load test, then exit")
	flag.Parse()

	files := loadgen.NewFileSet(*dirs)
	srv, err := webserver.New(webserver.Config{
		Addr:          *addr,
		Files:         files,
		Engine:        engineKind(*engine),
		SourceTimeout: 5 * time.Millisecond,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("web server (%s engine) on http://%s%s  (corpus: %d MB; dynamic: /dynamic?n=5000, /adrotate?u=1; POST /post)\n",
		*engine, srv.Addr(), files.Path(0, 1, 1), files.TotalBytes()>>20)

	ctx, cancel := signal.NotifyContext(context.Background(), os.Interrupt)
	defer cancel()
	if err := srv.Start(ctx); err != nil {
		log.Fatal(err)
	}

	if !*demo {
		// Interrupt cancels the context; that is the clean exit here.
		if err := srv.Wait(); err != nil && !errors.Is(err, context.Canceled) {
			log.Fatal(err)
		}
		return
	}

	res := loadgen.RunWebLoad(ctx, loadgen.WebClientConfig{
		Addr:            srv.Addr(),
		Clients:         16,
		Files:           files,
		KeepAlive:       true,
		Duration:        3 * time.Second,
		Warmup:          500 * time.Millisecond,
		DynamicFraction: loadgen.DefaultDynamicFraction,
		PostFraction:    loadgen.DefaultPostFraction,
		Seed:            7,
	})
	fmt.Printf("\n16-client SPECweb99-like keep-alive mixed load: %s\n", res)
	fmt.Printf("per-class latency: %s\n", res.ClassBreakdown())
	hits, misses, evictions := srv.CacheStats()
	fmt.Printf("cache: %d hits, %d misses, %d evictions\n", hits, misses, evictions)

	// Graceful teardown: stop admission, drain in-flight requests.
	shCtx, shCancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer shCancel()
	if err := srv.Shutdown(shCtx); err != nil {
		log.Printf("shutdown: %v", err)
	}
}

// engineKind resolves the flag through the engine registry, so any
// registered engine ("steal", ...) is selectable; "pool" stays as the
// short alias for threadpool.
func engineKind(s string) flux.EngineKind {
	if s == "pool" {
		return flux.ThreadPool
	}
	if k, ok := flux.ParseEngineKind(s); ok {
		return k
	}
	log.Fatalf("unknown engine %q (want thread, pool, event, or steal)", s)
	return flux.ThreadPool
}
