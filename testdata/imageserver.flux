// concrete node signatures
Listen () => (conn socket);
ReadRequest (conn socket) => (conn socket, bool close, image_tag *request);
CheckCache (conn socket, bool close, image_tag *request)
  => (conn socket, bool close, image_tag *request);
ReadInFromDisk (conn socket, bool close, image_tag *request)
  => (conn socket, bool close, image_tag *request, rgb *rgb_data);
Compress (conn socket, bool close, image_tag *request, rgb *rgb_data)
  => (conn socket, bool close, image_tag *request);
StoreInCache (conn socket, bool close, image_tag *request)
  => (conn socket, bool close, image_tag *request);
Write (conn socket, bool close, image_tag *request)
  => (conn socket, bool close, image_tag *request);
Complete (conn socket, bool close, image_tag *request) => ();
FourOhFour (conn socket, bool close, image_tag *request) => ();

// source node
source Listen => Image;

// abstract node
Image = ReadRequest -> CheckCache -> Handler -> Write -> Complete;

// predicate type & dispatch
typedef hit TestInCache;
Handler:[_, _, hit] = ;
Handler:[_, _, _] = ReadInFromDisk -> Compress -> StoreInCache;

// error handler
handle error ReadInFromDisk => FourOhFour;

// atomicity constraints
atomic CheckCache:{cache};
atomic StoreInCache:{cache};
atomic Complete:{cache};
