// Package bencode implements the BitTorrent bencoding format: byte
// strings, integers, lists, and dictionaries. The BitTorrent peer and its
// tracker use it for metainfo files and tracker responses.
//
// Values map to Go types as:
//
//	byte string -> string
//	integer     -> int64
//	list        -> []any
//	dictionary  -> map[string]any (keys encoded in sorted order)
package bencode

import (
	"bytes"
	"errors"
	"fmt"
	"sort"
	"strconv"
)

// ErrTrailingData reports extra bytes after a complete value.
var ErrTrailingData = errors.New("bencode: trailing data after value")

// MaxDepth bounds container nesting while decoding. Real metainfo files
// and tracker responses nest a handful of levels; without a cap, a
// hostile input of a few hundred kilobytes of "l" bytes drives the
// recursive decoder arbitrarily deep and exhausts the stack.
const MaxDepth = 1000

// Encode renders a value. Supported types: string, []byte, int, int64,
// uint32, []any, map[string]any.
func Encode(v any) ([]byte, error) {
	var buf bytes.Buffer
	if err := encodeTo(&buf, v); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

func encodeTo(buf *bytes.Buffer, v any) error {
	switch v := v.(type) {
	case string:
		buf.WriteString(strconv.Itoa(len(v)))
		buf.WriteByte(':')
		buf.WriteString(v)
	case []byte:
		buf.WriteString(strconv.Itoa(len(v)))
		buf.WriteByte(':')
		buf.Write(v)
	case int:
		return encodeTo(buf, int64(v))
	case uint32:
		return encodeTo(buf, int64(v))
	case int64:
		buf.WriteByte('i')
		buf.WriteString(strconv.FormatInt(v, 10))
		buf.WriteByte('e')
	case []any:
		buf.WriteByte('l')
		for _, e := range v {
			if err := encodeTo(buf, e); err != nil {
				return err
			}
		}
		buf.WriteByte('e')
	case map[string]any:
		buf.WriteByte('d')
		keys := make([]string, 0, len(v))
		for k := range v {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			if err := encodeTo(buf, k); err != nil {
				return err
			}
			if err := encodeTo(buf, v[k]); err != nil {
				return err
			}
		}
		buf.WriteByte('e')
	default:
		return fmt.Errorf("bencode: unsupported type %T", v)
	}
	return nil
}

// Decode parses a single bencoded value and requires the input to be
// fully consumed.
func Decode(data []byte) (any, error) {
	d := &decoder{data: data}
	v, err := d.value()
	if err != nil {
		return nil, err
	}
	if d.pos != len(data) {
		return nil, ErrTrailingData
	}
	return v, nil
}

// DecodePrefix parses one value and returns it with the number of bytes
// consumed, allowing values embedded in streams.
func DecodePrefix(data []byte) (v any, n int, err error) {
	d := &decoder{data: data}
	v, err = d.value()
	if err != nil {
		return nil, 0, err
	}
	return v, d.pos, nil
}

type decoder struct {
	data  []byte
	pos   int
	depth int
}

func (d *decoder) errf(format string, args ...any) error {
	return fmt.Errorf("bencode: offset %d: %s", d.pos, fmt.Sprintf(format, args...))
}

func (d *decoder) peek() (byte, error) {
	if d.pos >= len(d.data) {
		return 0, d.errf("unexpected end of input")
	}
	return d.data[d.pos], nil
}

func (d *decoder) value() (any, error) {
	c, err := d.peek()
	if err != nil {
		return nil, err
	}
	switch {
	case c == 'i':
		return d.integer()
	case c == 'l':
		return d.list()
	case c == 'd':
		return d.dict()
	case c >= '0' && c <= '9':
		return d.str()
	default:
		return nil, d.errf("invalid type byte %q", c)
	}
}

// enter tracks container nesting; exceeding MaxDepth is malformed input.
func (d *decoder) enter() error {
	d.depth++
	if d.depth > MaxDepth {
		return d.errf("nesting deeper than %d", MaxDepth)
	}
	return nil
}

func (d *decoder) integer() (int64, error) {
	d.pos++ // 'i'
	start := d.pos
	for d.pos < len(d.data) && d.data[d.pos] != 'e' {
		d.pos++
	}
	if d.pos >= len(d.data) {
		return 0, d.errf("unterminated integer")
	}
	lit := string(d.data[start:d.pos])
	d.pos++ // 'e'
	if lit == "" {
		return 0, d.errf("empty integer")
	}
	if lit != "0" && (lit[0] == '0' || (lit[0] == '-' && (len(lit) < 2 || lit[1] == '0'))) {
		return 0, d.errf("invalid integer %q (leading zero or negative zero)", lit)
	}
	v, err := strconv.ParseInt(lit, 10, 64)
	if err != nil {
		return 0, d.errf("invalid integer %q", lit)
	}
	return v, nil
}

func (d *decoder) str() (string, error) {
	start := d.pos
	for d.pos < len(d.data) && d.data[d.pos] != ':' {
		d.pos++
	}
	if d.pos >= len(d.data) {
		return "", d.errf("unterminated string length")
	}
	n, err := strconv.Atoi(string(d.data[start:d.pos]))
	if err != nil || n < 0 {
		return "", d.errf("invalid string length %q", d.data[start:d.pos])
	}
	d.pos++ // ':'
	if d.pos+n > len(d.data) {
		return "", d.errf("string extends past end of input")
	}
	s := string(d.data[d.pos : d.pos+n])
	d.pos += n
	return s, nil
}

func (d *decoder) list() ([]any, error) {
	if err := d.enter(); err != nil {
		return nil, err
	}
	defer func() { d.depth-- }()
	d.pos++ // 'l'
	out := []any{}
	for {
		c, err := d.peek()
		if err != nil {
			return nil, err
		}
		if c == 'e' {
			d.pos++
			return out, nil
		}
		v, err := d.value()
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
}

func (d *decoder) dict() (map[string]any, error) {
	if err := d.enter(); err != nil {
		return nil, err
	}
	defer func() { d.depth-- }()
	d.pos++ // 'd'
	out := map[string]any{}
	var prevKey string
	first := true
	for {
		c, err := d.peek()
		if err != nil {
			return nil, err
		}
		if c == 'e' {
			d.pos++
			return out, nil
		}
		k, err := d.str()
		if err != nil {
			return nil, err
		}
		if !first && k <= prevKey {
			return nil, d.errf("dictionary keys out of order: %q after %q", k, prevKey)
		}
		first, prevKey = false, k
		v, err := d.value()
		if err != nil {
			return nil, err
		}
		out[k] = v
	}
}
