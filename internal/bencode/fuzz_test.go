package bencode

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzDecode feeds arbitrary bytes to the decoder. It must never panic;
// when it accepts an input, the decoded value must survive the
// encode/decode round trip, and re-encoding must be a fixed point (the
// canonical form: dictionary keys sorted, integers minimal).
//
// Seed corpus: testdata/fuzz/FuzzDecode. Run `go test -fuzz=FuzzDecode
// ./internal/bencode/` to explore beyond it.
func FuzzDecode(f *testing.F) {
	seeds := []string{
		"i42e",
		"i-7e",
		"4:spam",
		"0:",
		"le",
		"de",
		"l4:spami2ee",
		"d3:cow3:moo4:spam4:eggse",
		"d8:announce20:http://tracker/announce4:infod6:lengthi1024e4:name8:file.bin12:piece lengthi256eee",
		"lllleeee",
		"i042e",     // leading zero: rejected
		"i-0e",      // negative zero: rejected
		"1:",        // string shorter than declared
		"d1:a",      // truncated dict
		"li1ee2:xy", // trailing data
		strings.Repeat("l", 40) + strings.Repeat("e", 40),
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		v, err := Decode(data)
		if err != nil {
			return
		}
		enc, err := Encode(v)
		if err != nil {
			t.Fatalf("Encode(Decode(%q)) failed: %v", data, err)
		}
		v2, err := Decode(enc)
		if err != nil {
			t.Fatalf("Decode(Encode(Decode(%q))) failed on %q: %v", data, enc, err)
		}
		enc2, err := Encode(v2)
		if err != nil {
			t.Fatalf("second Encode failed: %v", err)
		}
		if !bytes.Equal(enc, enc2) {
			t.Fatalf("canonical form not a fixed point: %q vs %q (input %q)", enc, enc2, data)
		}
	})
}
