package bencode

import (
	"bytes"
	"reflect"
	"testing"
	"testing/quick"
)

func TestEncodeBasics(t *testing.T) {
	cases := []struct {
		in   any
		want string
	}{
		{"spam", "4:spam"},
		{"", "0:"},
		{[]byte{0x01, 0x02}, "2:\x01\x02"},
		{42, "i42e"},
		{int64(-7), "i-7e"},
		{uint32(8), "i8e"},
		{[]any{"a", 1}, "l1:ai1ee"},
		{map[string]any{"b": 2, "a": "x"}, "d1:a1:x1:bi2ee"}, // sorted keys
		{[]any{}, "le"},
		{map[string]any{}, "de"},
	}
	for _, tc := range cases {
		got, err := Encode(tc.in)
		if err != nil {
			t.Errorf("Encode(%v): %v", tc.in, err)
			continue
		}
		if string(got) != tc.want {
			t.Errorf("Encode(%v) = %q, want %q", tc.in, got, tc.want)
		}
	}
}

func TestEncodeUnsupported(t *testing.T) {
	if _, err := Encode(3.14); err == nil {
		t.Error("expected error for float")
	}
}

func TestDecodeBasics(t *testing.T) {
	cases := []struct {
		in   string
		want any
	}{
		{"4:spam", "spam"},
		{"i42e", int64(42)},
		{"i-7e", int64(-7)},
		{"i0e", int64(0)},
		{"l1:ai1ee", []any{"a", int64(1)}},
		{"d1:a1:x1:bi2ee", map[string]any{"a": "x", "b": int64(2)}},
		{"le", []any{}},
		{"de", map[string]any{}},
	}
	for _, tc := range cases {
		got, err := Decode([]byte(tc.in))
		if err != nil {
			t.Errorf("Decode(%q): %v", tc.in, err)
			continue
		}
		if !reflect.DeepEqual(got, tc.want) {
			t.Errorf("Decode(%q) = %#v, want %#v", tc.in, got, tc.want)
		}
	}
}

func TestDecodeErrors(t *testing.T) {
	bad := []string{
		"", "x", "i42", "ie", "i--1e", "i01e", "i-0e", "5:abc", "l1:a",
		"d1:a", "d1:bi1e1:ai2ee" /* out of order keys */, "4:spamX",
		"-1:x", "i42ee",
	}
	for _, in := range bad {
		if _, err := Decode([]byte(in)); err == nil {
			t.Errorf("Decode(%q) should fail", in)
		}
	}
}

func TestDecodePrefix(t *testing.T) {
	v, n, err := DecodePrefix([]byte("i42eXYZ"))
	if err != nil || v != int64(42) || n != 4 {
		t.Errorf("DecodePrefix = %v, %d, %v", v, n, err)
	}
}

func TestRoundTripNested(t *testing.T) {
	in := map[string]any{
		"announce": "http://tracker/announce",
		"info": map[string]any{
			"length":       int64(54 << 20),
			"name":         "test.bin",
			"piece length": int64(262144),
			"pieces":       "aaaaaaaaaaaaaaaaaaaa",
		},
		"list": []any{int64(1), "two", []any{"three"}},
	}
	enc, err := Encode(in)
	if err != nil {
		t.Fatal(err)
	}
	out, err := Decode(enc)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(in, out) {
		t.Errorf("round trip mismatch:\nin  %#v\nout %#v", in, out)
	}
}

// TestQuickRoundTripStrings: any byte string round-trips.
func TestQuickRoundTripStrings(t *testing.T) {
	f := func(s string) bool {
		enc, err := Encode(s)
		if err != nil {
			return false
		}
		v, err := Decode(enc)
		return err == nil && v == s
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestQuickRoundTripInts: any int64 round-trips.
func TestQuickRoundTripInts(t *testing.T) {
	f := func(i int64) bool {
		enc, err := Encode(i)
		if err != nil {
			return false
		}
		v, err := Decode(enc)
		return err == nil && v == i
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestQuickDecodeNeverPanics feeds arbitrary bytes to the decoder.
func TestQuickDecodeNeverPanics(t *testing.T) {
	f := func(data []byte) bool {
		_, _ = Decode(data) // must not panic
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// TestQuickEncodeDecodeDicts round-trips random flat dictionaries.
func TestQuickRoundTripDicts(t *testing.T) {
	f := func(keys []string, vals []int64) bool {
		m := map[string]any{}
		for i, k := range keys {
			if i < len(vals) {
				m[k] = vals[i]
			}
		}
		enc, err := Encode(m)
		if err != nil {
			return false
		}
		v, err := Decode(enc)
		if err != nil {
			return false
		}
		return reflect.DeepEqual(v, m)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestBinaryStringsPreserved(t *testing.T) {
	raw := make([]byte, 256)
	for i := range raw {
		raw[i] = byte(i)
	}
	enc, err := Encode(raw)
	if err != nil {
		t.Fatal(err)
	}
	v, err := Decode(enc)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal([]byte(v.(string)), raw) {
		t.Error("binary data corrupted")
	}
}
