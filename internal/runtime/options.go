package runtime

import (
	"time"

	"github.com/flux-lang/flux/internal/core"
)

// Option configures a Server at construction. Options are the public
// configuration surface; the Config struct they populate remains for
// direct in-package use.
type Option func(*Config)

// WithEngine selects the runtime system executing the program (§3.2).
// Any kind registered through RegisterEngine is accepted; the default
// is ThreadPerFlow.
func WithEngine(kind EngineKind) Option {
	return func(c *Config) { c.Kind = kind }
}

// WithPoolSize sets the worker count for the thread-pool engine
// (default 4×GOMAXPROCS).
func WithPoolSize(n int) Option {
	return func(c *Config) { c.PoolSize = n }
}

// WithDispatchers sets the event-loop count for the event-driven engine
// (default 1, the paper's single-threaded event server) and the
// dispatcher count for the work-stealing engine (default GOMAXPROCS,
// one per core).
func WithDispatchers(n int) Option {
	return func(c *Config) { c.Dispatchers = n }
}

// WithAsyncWorkers sizes the event engine's blocking-call offload pool
// (default 16).
func WithAsyncWorkers(n int) Option {
	return func(c *Config) { c.AsyncWorkers = n }
}

// WithSourceTimeout sets the polling deadline handed to sources by the
// event engine (default 20ms).
func WithSourceTimeout(d time.Duration) Option {
	return func(c *Config) { c.SourceTimeout = d }
}

// WithProfiler attaches a path/node profiler (§5.2). It joins the
// observer plane through the ObserveProfiler adapter; WithObserver and
// WithProfiler compose.
func WithProfiler(p Profiler) Option {
	return func(c *Config) { c.Profiler = p }
}

// WithObserver attaches an observer to the server's unified
// observability plane: flow terminals (including errors and drops),
// node completions, and queue-depth samples.
func WithObserver(o Observer) Option {
	return func(c *Config) { c.Observer = o }
}

// WithAddedObserver composes an observer with whatever observer the
// config already carries (from WithObserver or an earlier
// WithAddedObserver) instead of replacing it — the way an always-on
// telemetry plane rides alongside a caller's own observer. A nil
// observer is a no-op.
func WithAddedObserver(o Observer) Option {
	return func(c *Config) {
		if o == nil {
			return
		}
		if c.Observer == nil {
			c.Observer = o
			return
		}
		c.Observer = MultiObserver(c.Observer, o)
	}
}

// WithKeepAlive keeps the server running after every source reports
// ErrStop, so flows can still be admitted with Inject until Shutdown.
// Without it a server retires once its sources are exhausted.
func WithKeepAlive() Option {
	return func(c *Config) { c.KeepAlive = true }
}

// WithQueueSampleInterval sets how often engines sample their queue
// depths for the observer (default 100ms). Sampling only runs when an
// observer is attached.
func WithQueueSampleInterval(d time.Duration) Option {
	return func(c *Config) { c.QueueSample = d }
}

// New validates the bindings against the program and prepares a server
// configured by functional options. The returned server is inert until
// Start (or Run).
func New(p *core.Program, b *Bindings, opts ...Option) (*Server, error) {
	var cfg Config
	for _, opt := range opts {
		opt(&cfg)
	}
	return NewServer(p, b, cfg)
}
