package runtime

// Tests for the server lifecycle introduced with the Engine interface:
// Start/Shutdown/Wait, graceful in-flight drain on every registered
// engine, external admission with Inject, and the engine registry.

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/flux-lang/flux/internal/core"
)

// allEngines lists the registered engines so lifecycle tests cover any
// future fourth engine automatically.
func allEngines() []EngineKind { return EngineKinds() }

// TestShutdownDrainsInFlight: on every engine, Shutdown must stop
// admission but let flows that already started run to their terminals —
// no accepted record may be lost.
func TestShutdownDrainsInFlight(t *testing.T) {
	for _, kind := range allEngines() {
		t.Run(kind.String(), func(t *testing.T) {
			p := compileSrc(t, pipelineSrc)
			release := make(chan struct{})
			var entered atomic.Int64
			var sunk atomic.Int64
			b := NewBindings().
				BindSource("Gen", func(fl *Flow) (Record, error) {
					// Throttled so the wedge window admits tens of flows,
					// not an unbounded flood of goroutines/backlog.
					select {
					case <-fl.Ctx.Done():
						return nil, fl.Ctx.Err()
					case <-time.After(500 * time.Microsecond):
						return Record{1}, nil
					}
				}).
				BindNode("Double", func(fl *Flow, in Record) (Record, error) {
					entered.Add(1)
					<-release
					return in, nil
				}).
				BindNode("Sink", func(fl *Flow, in Record) (Record, error) {
					sunk.Add(1)
					return nil, nil
				}).
				MarkBlocking("Double") // lets the event dispatcher admit several
			s, err := NewServer(p, b, Config{Kind: kind, PoolSize: 4, AsyncWorkers: 4,
				SourceTimeout: time.Millisecond})
			if err != nil {
				t.Fatal(err)
			}
			if err := s.Start(context.Background()); err != nil {
				t.Fatalf("Start: %v", err)
			}
			// Wait until flows are genuinely in flight, wedged in Double.
			for entered.Load() == 0 {
				time.Sleep(time.Millisecond)
			}
			done := make(chan error, 1)
			go func() {
				ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
				defer cancel()
				done <- s.Shutdown(ctx)
			}()
			// Shutdown must block on the wedged flows, not return early.
			select {
			case err := <-done:
				t.Fatalf("Shutdown returned %v with flows still wedged", err)
			case <-time.After(20 * time.Millisecond):
			}
			close(release)
			if err := <-done; err != nil {
				t.Fatalf("Shutdown: %v", err)
			}
			if err := s.Wait(); err != nil {
				t.Fatalf("Wait after clean Shutdown: %v", err)
			}
			st := s.Stats().Snapshot()
			if st.Completed != st.Started {
				t.Errorf("drain lost flows: started=%d completed=%d", st.Started, st.Completed)
			}
			if sunk.Load() != int64(st.Completed) {
				t.Errorf("sink saw %d, stats say %d", sunk.Load(), st.Completed)
			}
		})
	}
}

// TestShutdownDeadline: a flow wedged past the Shutdown deadline makes
// Shutdown return the context error while the run finishes later.
func TestShutdownDeadline(t *testing.T) {
	for _, kind := range allEngines() {
		t.Run(kind.String(), func(t *testing.T) {
			p := compileSrc(t, pipelineSrc)
			release := make(chan struct{})
			var entered atomic.Int64
			b := NewBindings().
				BindSource("Gen", counterSource(1)).
				BindNode("Double", func(fl *Flow, in Record) (Record, error) {
					entered.Add(1)
					<-release
					return in, nil
				}).
				BindNode("Sink", nopNode).
				MarkBlocking("Double")
			s, err := NewServer(p, b, Config{Kind: kind, PoolSize: 2, SourceTimeout: time.Millisecond})
			if err != nil {
				t.Fatal(err)
			}
			if err := s.Start(context.Background()); err != nil {
				t.Fatal(err)
			}
			for entered.Load() == 0 {
				time.Sleep(time.Millisecond)
			}
			ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
			defer cancel()
			if err := s.Shutdown(ctx); !errors.Is(err, context.DeadlineExceeded) {
				t.Fatalf("Shutdown = %v, want DeadlineExceeded", err)
			}
			close(release)
			if err := s.Wait(); err != nil {
				t.Fatalf("Wait: %v", err)
			}
			if got := s.Stats().Snapshot().Completed; got != 1 {
				t.Errorf("completed = %d after late drain", got)
			}
		})
	}
}

// TestInjectRunsFlows: with KeepAlive, a server whose sources are
// exhausted still executes externally admitted records, and Inject is
// refused after Shutdown.
func TestInjectRunsFlows(t *testing.T) {
	for _, kind := range allEngines() {
		t.Run(kind.String(), func(t *testing.T) {
			p := compileSrc(t, pipelineSrc)
			var mu sync.Mutex
			var got []int
			b := NewBindings().
				BindSource("Gen", counterSource(0)). // immediately exhausted
				BindNode("Double", func(fl *Flow, in Record) (Record, error) {
					return Record{in[0].(int) * 2}, nil
				}).
				BindNode("Sink", func(fl *Flow, in Record) (Record, error) {
					mu.Lock()
					got = append(got, in[0].(int))
					mu.Unlock()
					return nil, nil
				})
			s, err := NewServer(p, b, Config{Kind: kind, PoolSize: 2,
				SourceTimeout: time.Millisecond, KeepAlive: true})
			if err != nil {
				t.Fatal(err)
			}
			if err := s.Inject("Gen", Record{1}); !errors.Is(err, ErrNotStarted) {
				t.Fatalf("Inject before Start = %v, want ErrNotStarted", err)
			}
			if err := s.Start(context.Background()); err != nil {
				t.Fatal(err)
			}
			if err := s.Inject("NoSuchSource", Record{1}); err == nil {
				t.Fatal("Inject on unknown source succeeded")
			}
			for i := 1; i <= 25; i++ {
				if err := s.Inject("Gen", Record{i}); err != nil {
					t.Fatalf("Inject(%d): %v", i, err)
				}
			}
			ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
			defer cancel()
			if err := s.Shutdown(ctx); err != nil {
				t.Fatalf("Shutdown: %v", err)
			}
			mu.Lock()
			n, sum := len(got), 0
			for _, v := range got {
				sum += v
			}
			mu.Unlock()
			if n != 25 {
				t.Fatalf("sink saw %d records, want 25", n)
			}
			if want := 2 * 25 * 26 / 2; sum != want {
				t.Errorf("sum = %d, want %d", sum, want)
			}
			if st := s.Stats().Snapshot(); st.Started != 25 || st.Completed != 25 {
				t.Errorf("stats = %+v", st)
			}
			// Admission after Shutdown must fail, not wedge or panic.
			if err := s.Inject("Gen", Record{99}); !errors.Is(err, ErrServerClosed) {
				t.Errorf("Inject after Shutdown = %v, want ErrServerClosed", err)
			}
		})
	}
}

// TestInjectAppliesSessionFunc: injected records go through the source's
// session function, so session-scoped constraints hold for them too.
func TestInjectAppliesSessionFunc(t *testing.T) {
	p := compileSrc(t, `
Gen () => (int v);
Touch (int v) => (int v);
Sink (int v) => ();
source Gen => Flow;
Flow = Touch -> Sink;
atomic Touch:{state(session)};
session Gen SessOf;
`)
	perSession := map[uint64]*int{0: new(int), 1: new(int)}
	b := NewBindings().
		BindSource("Gen", counterSource(0)).
		BindSession("SessOf", func(rec Record) uint64 { return uint64(rec[0].(int) % 2) }).
		BindNode("Touch", func(fl *Flow, in Record) (Record, error) {
			*perSession[fl.Session]++ // serialized per session by the constraint
			return in, nil
		}).
		BindNode("Sink", nopNode)
	s, err := NewServer(p, b, Config{Kind: ThreadPerFlow, KeepAlive: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Start(context.Background()); err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 100; i++ {
		if err := s.Inject("Gen", Record{i}); err != nil {
			t.Fatal(err)
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	if *perSession[0] != 50 || *perSession[1] != 50 {
		t.Errorf("per-session counts = %d/%d, want 50/50", *perSession[0], *perSession[1])
	}
}

// TestStartTwiceFails: servers are single-run.
func TestStartTwiceFails(t *testing.T) {
	s, _, _ := buildPipeline(t, ThreadPool, 1)
	if err := s.Start(context.Background()); err != nil {
		t.Fatal(err)
	}
	if err := s.Start(context.Background()); err == nil {
		t.Error("second Start succeeded")
	}
	if err := s.Wait(); err != nil {
		t.Fatal(err)
	}
}

// TestWaitBeforeStart returns ErrNotStarted instead of blocking forever.
func TestWaitBeforeStart(t *testing.T) {
	s, _, _ := buildPipeline(t, ThreadPool, 1)
	if err := s.Wait(); !errors.Is(err, ErrNotStarted) {
		t.Errorf("Wait = %v, want ErrNotStarted", err)
	}
	if err := s.Shutdown(context.Background()); !errors.Is(err, ErrNotStarted) {
		t.Errorf("Shutdown = %v, want ErrNotStarted", err)
	}
}

// TestRunIsStartPlusWait: the legacy blocking entry point still
// completes bounded workloads and reports natural exhaustion as nil.
func TestRunIsStartPlusWait(t *testing.T) {
	s, got, mu := buildPipeline(t, ThreadPool, 10)
	if err := s.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(*got) != 10 {
		t.Fatalf("sink saw %d records", len(*got))
	}
}

// TestShutdownIdempotent: concurrent and repeated Shutdown calls all
// drain and return.
func TestShutdownIdempotent(t *testing.T) {
	s, _, _ := buildPipeline(t, EventDriven, 20)
	if err := s.Start(context.Background()); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
			defer cancel()
			if err := s.Shutdown(ctx); err != nil {
				t.Errorf("Shutdown: %v", err)
			}
		}()
	}
	wg.Wait()
	if err := s.Wait(); err != nil {
		t.Fatal(err)
	}
}

// --- engine registry ------------------------------------------------------

// TestEngineKindStringRoundTrip: every registered kind's String form
// parses back to the kind, and unregistered kinds format distinctly.
func TestEngineKindStringRoundTrip(t *testing.T) {
	kinds := EngineKinds()
	if len(kinds) < 3 {
		t.Fatalf("registered engines = %d, want >= 3", len(kinds))
	}
	for _, k := range kinds {
		name := k.String()
		back, ok := ParseEngineKind(name)
		if !ok || back != k {
			t.Errorf("round trip %v -> %q -> (%v, %v)", k, name, back, ok)
		}
	}
	if got := EngineKind(97).String(); got != "engine(97)" {
		t.Errorf("unregistered kind formats as %q", got)
	}
	if _, ok := ParseEngineKind("no-such-engine"); ok {
		t.Error("ParseEngineKind accepted an unknown name")
	}
}

// TestStealEngineRegistered pins the work-stealing engine's registry
// contract: "steal" resolves to WorkStealing and round-trips, so it is
// selectable everywhere ParseEngineKind is (flux options, fluxbench,
// example flags).
func TestStealEngineRegistered(t *testing.T) {
	k, ok := ParseEngineKind("steal")
	if !ok || k != WorkStealing {
		t.Fatalf(`ParseEngineKind("steal") = %v, %v; want WorkStealing`, k, ok)
	}
	if got := WorkStealing.String(); got != "steal" {
		t.Fatalf("WorkStealing.String() = %q", got)
	}
	// And the full lifecycle runs through it like any other engine.
	s, got, mu := buildPipeline(t, WorkStealing, 40)
	if err := s.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(*got) != 40 {
		t.Fatalf("sink saw %d records, want 40", len(*got))
	}
}

// TestRegisteredEngineRunsViaServer: a fourth engine plugged into the
// registry is selectable and driven entirely through the Server
// lifecycle — Server itself needs no change.
func TestRegisteredEngineRunsViaServer(t *testing.T) {
	registerInlineOnce.Do(func() {
		RegisterEngine(testKind, "inline-test", func(s *Server) Engine {
			return &inlineEngine{s: s, done: make(chan struct{})}
		})
	})
	s, got, mu := buildPipeline(t, testKind, 30)
	if s.cfg.Kind.String() != "inline-test" {
		t.Fatalf("kind name = %q", s.cfg.Kind)
	}
	if err := s.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(*got) != 30 {
		t.Fatalf("sink saw %d records, want 30", len(*got))
	}
	if st := s.Stats().Snapshot(); st.Completed != 30 {
		t.Errorf("stats = %+v", st)
	}
}

const testKind EngineKind = 1000

var registerInlineOnce sync.Once

// inlineEngine is the simplest possible Engine: one goroutine per
// source, flows run inline on the source goroutine; Submit runs the
// flow on the caller's goroutine.
type inlineEngine struct {
	s    *Server
	ctx  context.Context
	done chan struct{}
}

func (e *inlineEngine) Start(ctx context.Context) error {
	e.ctx = ctx
	var wg sync.WaitGroup
	for _, st := range e.s.srcs {
		wg.Add(1)
		go func(st *sourceState) {
			defer wg.Done()
			poll := e.s.newFlow(ctx, 0)
			defer e.s.freeFlow(poll)
			for ctx.Err() == nil {
				rec, err := st.fn(poll)
				switch {
				case err == nil:
					e.s.stats.Started.Add(1)
					fl := e.s.newFlow(ctx, st.sessionOf(rec))
					e.s.runFlow(fl, st.tbl, rec)
				case errors.Is(err, ErrNoData):
				default:
					return
				}
			}
		}(st)
	}
	go func() {
		wg.Wait()
		close(e.done)
	}()
	return nil
}

func (e *inlineEngine) Submit(fl *Flow, rec Record) error {
	if e.ctx.Err() != nil {
		e.s.freeFlow(fl)
		return ErrServerClosed
	}
	e.s.runFlow(fl, fl.src.tbl, rec)
	return nil
}

func (e *inlineEngine) Drain(ctx context.Context) error { return awaitDone(e.done, ctx) }

// --- observer plane -------------------------------------------------------

// recordingObserver captures the full observer event stream.
type recordingObserver struct {
	mu       sync.Mutex
	outcomes map[FlowOutcome]int
	paths    map[uint64]int
	nodes    map[string]int
	samples  int
}

func (r *recordingObserver) FlowDone(g *core.FlatGraph, pathID uint64, outcome FlowOutcome, _ time.Duration) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.outcomes == nil {
		r.outcomes = make(map[FlowOutcome]int)
		r.paths = make(map[uint64]int)
	}
	r.outcomes[outcome]++
	r.paths[pathID]++
}

func (r *recordingObserver) NodeDone(g *core.FlatGraph, v *core.FlatNode, _ time.Duration) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.nodes == nil {
		r.nodes = make(map[string]int)
	}
	r.nodes[v.Node.Name]++
}

func (r *recordingObserver) QueueDepth(EngineKind, string, int) {
	r.mu.Lock()
	r.samples++
	r.mu.Unlock()
}

// TestObserverSeesDroppedFlows: flows terminated at an unmatched
// dispatch case must reach FlowDone with FlowDropped — the §5.2 blind
// spot this plane closes — and a configured Profiler must see them too.
func TestObserverSeesDroppedFlows(t *testing.T) {
	src := `
Gen () => (int v);
Big (int v) => (int v);
Sink (int v) => ();
source Gen => Flow;
Flow = Route -> Sink;
typedef big IsBig;
Route:[big] = Big;
`
	p := compileSrc(t, src)
	obs := &recordingObserver{}
	prof := &profileRecorder{}
	b := NewBindings().
		BindSource("Gen", counterSource(10)).
		BindPredicate("IsBig", func(v any) bool { return v.(int) > 5 }).
		BindNode("Big", nopNode).
		BindNode("Sink", nopNode)
	s, err := NewServer(p, b, Config{Kind: ThreadPool, PoolSize: 2, Observer: obs, Profiler: prof})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	obs.mu.Lock()
	defer obs.mu.Unlock()
	if obs.outcomes[FlowDropped] != 5 || obs.outcomes[FlowCompleted] != 5 {
		t.Errorf("outcomes = %v, want 5 dropped / 5 completed", obs.outcomes)
	}
	prof.mu.Lock()
	defer prof.mu.Unlock()
	total := 0
	for _, n := range prof.flows {
		total += n
	}
	if total != 10 {
		t.Errorf("profiler FlowDone saw %d flows, want 10 (drops included)", total)
	}
}

// TestObserverQueueDepthSampling: engines with queues deliver depth
// samples while running.
func TestObserverQueueDepthSampling(t *testing.T) {
	for _, kind := range []EngineKind{ThreadPool, EventDriven, WorkStealing} {
		t.Run(kind.String(), func(t *testing.T) {
			p := compileSrc(t, pipelineSrc)
			obs := &recordingObserver{}
			b := NewBindings().
				BindSource("Gen", func(fl *Flow) (Record, error) {
					select {
					case <-fl.Ctx.Done():
						return nil, fl.Ctx.Err()
					case <-time.After(time.Millisecond):
						return Record{1}, nil
					}
				}).
				BindNode("Double", nopNode).
				BindNode("Sink", nopNode)
			s, err := NewServer(p, b, Config{Kind: kind, PoolSize: 2,
				SourceTimeout: time.Millisecond, Observer: obs, QueueSample: time.Millisecond})
			if err != nil {
				t.Fatal(err)
			}
			ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
			defer cancel()
			if err := s.Run(ctx); !errors.Is(err, context.DeadlineExceeded) {
				t.Fatalf("Run = %v", err)
			}
			obs.mu.Lock()
			defer obs.mu.Unlock()
			if obs.samples == 0 {
				t.Error("no queue-depth samples delivered")
			}
		})
	}
}

// TestFlowOutcomeString covers the outcome labels.
func TestFlowOutcomeString(t *testing.T) {
	want := map[FlowOutcome]string{
		FlowCompleted:  "completed",
		FlowErrored:    "errored",
		FlowDropped:    "dropped",
		FlowOutcome(9): "unknown",
	}
	for o, s := range want {
		if o.String() != s {
			t.Errorf("%d.String() = %q, want %q", o, o.String(), s)
		}
	}
}

// dropAwareProfiler implements both Profiler and DropProfiler, so the
// adapter must route drops to the drop bucket only.
type dropAwareProfiler struct {
	profileRecorder
	drops atomic.Int64
}

func (d *dropAwareProfiler) FlowDropped(*core.FlatGraph, uint64, time.Duration) {
	d.drops.Add(1)
}

// TestDropProfilerRouting: with a DropProfiler attached, dropped flows
// reach FlowDropped and never FlowDone — complete-path stats stay
// honest even when a drop's partial register aliases a real path ID.
func TestDropProfilerRouting(t *testing.T) {
	p := compileSrc(t, `
Gen () => (int v);
Big (int v) => (int v);
Sink (int v) => ();
source Gen => Flow;
Flow = Route -> Sink;
typedef big IsBig;
Route:[big] = Big;
`)
	prof := &dropAwareProfiler{}
	b := NewBindings().
		BindSource("Gen", counterSource(10)).
		BindPredicate("IsBig", func(v any) bool { return v.(int) > 5 }).
		BindNode("Big", nopNode).
		BindNode("Sink", nopNode)
	s, err := NewServer(p, b, Config{Kind: ThreadPool, PoolSize: 2, Profiler: prof})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	if got := prof.drops.Load(); got != 5 {
		t.Errorf("FlowDropped saw %d, want 5", got)
	}
	prof.mu.Lock()
	defer prof.mu.Unlock()
	total := 0
	for _, n := range prof.flows {
		total += n
	}
	if total != 5 {
		t.Errorf("FlowDone saw %d flows, want 5 (completions only)", total)
	}
}
