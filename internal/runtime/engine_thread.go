package runtime

import (
	"context"
	"errors"
	"sync"
)

// runThreaded implements the one-to-one thread server (§3.2.1): every
// data flow gets its own goroutine, created on demand and destroyed when
// the flow completes. The paper measures this engine's per-flow creation
// cost as its weakness (Figure 3); it is the simplest possible runtime.
func (s *Server) runThreaded(ctx context.Context) error {
	var flows sync.WaitGroup
	var sources sync.WaitGroup

	// Hoisted so spawning a flow copies plain arguments instead of
	// allocating a fresh closure per request.
	runOne := func(flow *Flow, tbl *graphTable, rec Record) {
		defer flows.Done()
		s.runFlow(flow, tbl, rec)
	}

	for _, st := range s.srcs {
		sources.Add(1)
		go func(st *sourceState) {
			defer sources.Done()
			// One poll context serves every iteration of this source
			// loop; only accepted records get a flow of their own.
			fl := s.newFlow(ctx, 0)
			defer s.freeFlow(fl)
			for {
				if ctx.Err() != nil {
					return
				}
				rec, err := st.fn(fl)
				switch {
				case err == nil:
					s.stats.Started.Add(1)
					flow := s.newFlow(ctx, st.sessionOf(rec))
					flows.Add(1)
					go runOne(flow, st.tbl, rec)
				case errors.Is(err, ErrNoData):
					continue
				case errors.Is(err, ErrStop):
					return
				case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
					return
				default:
					// A source error terminates that source, as an
					// accept-loop failure would (§2.4 covers node
					// errors; source errors have nowhere to flow).
					s.stats.NodeErrors.Add(1)
					return
				}
			}
		}(st)
	}

	sources.Wait()
	flows.Wait()
	return ctx.Err()
}
