package runtime

import (
	"context"
	"errors"
	"sync"
)

// threadEngine implements the one-to-one thread server (§3.2.1): every
// data flow gets its own goroutine, created on demand and destroyed when
// the flow completes. The paper measures this engine's per-flow creation
// cost as its weakness (Figure 3); it is the simplest possible runtime.
type threadEngine struct {
	s   *Server
	ctx context.Context

	// flows tracks in-flight flow goroutines. Source loops Add before
	// their own WaitGroup entry resolves, so those Adds are ordered
	// before the monitor's Wait; Submit's Adds are ordered by admitMu
	// against the monitor setting draining.
	flows sync.WaitGroup

	admitMu  sync.Mutex
	draining bool

	done chan struct{}
}

func newThreadEngine(s *Server) Engine {
	return &threadEngine{s: s, done: make(chan struct{})}
}

func (e *threadEngine) Start(ctx context.Context) error {
	e.ctx = ctx
	var sources sync.WaitGroup
	for _, st := range e.s.srcs {
		sources.Add(1)
		go e.sourceLoop(&sources, st)
	}
	if e.s.cfg.KeepAlive {
		// A virtual source that only retires on cancellation keeps the
		// engine admitting Inject flows after real sources exhaust.
		sources.Add(1)
		go func() {
			defer sources.Done()
			<-ctx.Done()
		}()
	}
	go func() {
		sources.Wait()
		e.admitMu.Lock()
		e.draining = true
		e.admitMu.Unlock()
		e.flows.Wait()
		close(e.done)
	}()
	return nil
}

// runOne is hoisted so spawning a flow copies plain arguments instead of
// allocating a fresh closure per request.
func (e *threadEngine) runOne(fl *Flow, tbl *graphTable, rec Record) {
	defer e.flows.Done()
	e.s.runFlow(fl, tbl, rec)
}

func (e *threadEngine) sourceLoop(sources *sync.WaitGroup, st *sourceState) {
	defer sources.Done()
	s, ctx := e.s, e.ctx
	// Hoisted: the per-record cancellation check is a non-blocking
	// receive, not a ctx.Err() call (an atomic load per admitted record
	// on a cancellable context).
	done := ctx.Done()
	// One poll context serves every iteration of this source loop; only
	// accepted records get a flow of their own.
	fl := s.newFlow(ctx, 0)
	fl.src = st // lets the source draw from its record pool (NewRecord)
	defer s.freeFlow(fl)
	for {
		select {
		case <-done:
			return
		default:
		}
		rec, err := st.fn(fl)
		switch {
		case err == nil:
			s.stats.Started.Add(1)
			flow := s.newFlow(ctx, st.sessionOf(rec))
			flow.adoptRecord(fl)
			e.flows.Add(1)
			go e.runOne(flow, st.tbl, rec)
		case errors.Is(err, ErrNoData):
			fl.releaseRecord()
			continue
		case errors.Is(err, ErrStop):
			return
		case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
			return
		default:
			// A source error terminates that source, as an accept-loop
			// failure would (§2.4 covers node errors; source errors have
			// nowhere to flow).
			s.stats.NodeErrors.Add(1)
			return
		}
	}
}

func (e *threadEngine) Submit(fl *Flow, rec Record) error {
	// Admission ends at cancellation; the draining flag below flips only
	// after every source retires, and injections must not win that race.
	if e.ctx.Err() != nil {
		e.s.freeFlow(fl)
		return ErrServerClosed
	}
	e.admitMu.Lock()
	if e.draining {
		e.admitMu.Unlock()
		e.s.freeFlow(fl)
		return ErrServerClosed
	}
	e.flows.Add(1)
	e.admitMu.Unlock()
	go e.runOne(fl, fl.src.tbl, rec)
	return nil
}

func (e *threadEngine) Drain(ctx context.Context) error {
	return awaitDone(e.done, ctx)
}
