package runtime

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestFIFOOrder(t *testing.T) {
	q := newFIFO[int]()
	for i := 0; i < 100; i++ {
		q.push(i)
	}
	for i := 0; i < 100; i++ {
		v, ok := q.pop()
		if !ok || v != i {
			t.Fatalf("pop %d = %d, %v", i, v, ok)
		}
	}
}

func TestFIFOBlockingPop(t *testing.T) {
	q := newFIFO[string]()
	got := make(chan string, 1)
	go func() {
		v, _ := q.pop()
		got <- v
	}()
	select {
	case v := <-got:
		t.Fatalf("pop returned %q on empty queue", v)
	case <-time.After(10 * time.Millisecond):
	}
	q.push("hello")
	select {
	case v := <-got:
		if v != "hello" {
			t.Errorf("got %q", v)
		}
	case <-time.After(time.Second):
		t.Fatal("pop never woke")
	}
}

func TestFIFOCloseDrains(t *testing.T) {
	q := newFIFO[int]()
	q.push(1)
	q.push(2)
	q.close()
	if v, ok := q.pop(); !ok || v != 1 {
		t.Fatalf("pop after close = %d, %v", v, ok)
	}
	if v, ok := q.pop(); !ok || v != 2 {
		t.Fatalf("pop after close = %d, %v", v, ok)
	}
	if _, ok := q.pop(); ok {
		t.Fatal("pop on drained closed queue reported ok")
	}
	// Pushing to a closed queue is a no-op.
	q.push(3)
	if _, ok := q.tryPop(); ok {
		t.Fatal("push after close stored an item")
	}
}

func TestFIFOCloseWakesWaiters(t *testing.T) {
	q := newFIFO[int]()
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			q.pop()
		}()
	}
	time.Sleep(5 * time.Millisecond)
	q.close()
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(time.Second):
		t.Fatal("close did not wake blocked poppers")
	}
}

func TestFIFOTryPopAndLen(t *testing.T) {
	q := newFIFO[int]()
	if _, ok := q.tryPop(); ok {
		t.Fatal("tryPop on empty queue")
	}
	q.push(7)
	if q.len() != 1 {
		t.Errorf("len = %d", q.len())
	}
	if v, ok := q.tryPop(); !ok || v != 7 {
		t.Fatalf("tryPop = %d, %v", v, ok)
	}
	if q.len() != 0 {
		t.Errorf("len = %d", q.len())
	}
}

func TestFIFOCompaction(t *testing.T) {
	q := newFIFO[int]()
	// Push and pop enough to trigger the compaction path repeatedly.
	for round := 0; round < 5; round++ {
		for i := 0; i < 2000; i++ {
			q.push(i)
		}
		for i := 0; i < 2000; i++ {
			v, ok := q.pop()
			if !ok || v != i {
				t.Fatalf("round %d: pop %d = %d, %v", round, i, v, ok)
			}
		}
	}
	if q.len() != 0 {
		t.Errorf("len = %d after full drain", q.len())
	}
}

func TestFIFOConcurrentProducersConsumers(t *testing.T) {
	q := newFIFO[int]()
	const producers, items = 8, 500
	var consumed atomic.Int64
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < items; i++ {
				q.push(i)
			}
		}()
	}
	var cg sync.WaitGroup
	for c := 0; c < 4; c++ {
		cg.Add(1)
		go func() {
			defer cg.Done()
			for {
				if _, ok := q.pop(); !ok {
					return
				}
				consumed.Add(1)
			}
		}()
	}
	wg.Wait()
	for q.len() > 0 {
		time.Sleep(time.Millisecond)
	}
	q.close()
	cg.Wait()
	if consumed.Load() != producers*items {
		t.Errorf("consumed = %d, want %d", consumed.Load(), producers*items)
	}
}

func TestIntervalSourceCadence(t *testing.T) {
	src := IntervalSource(20 * time.Millisecond)
	fl := &Flow{Ctx: t.Context()}
	start := time.Now()
	for i := 1; i <= 3; i++ {
		rec, err := src(fl)
		if err != nil {
			t.Fatal(err)
		}
		if rec[0].(int) != i {
			t.Errorf("tick %d = %v", i, rec[0])
		}
	}
	if elapsed := time.Since(start); elapsed < 55*time.Millisecond {
		t.Errorf("3 ticks in %v, want >= 60ms", elapsed)
	}
}

func TestIntervalSourceHonorsPollDeadline(t *testing.T) {
	src := IntervalSource(time.Hour)
	fl := &Flow{Ctx: t.Context(), SourceTimeout: 5 * time.Millisecond}
	start := time.Now()
	_, err := src(fl)
	if err != ErrNoData {
		t.Fatalf("err = %v, want ErrNoData", err)
	}
	if elapsed := time.Since(start); elapsed > 100*time.Millisecond {
		t.Errorf("poll held for %v, want ~5ms", elapsed)
	}
}

func TestIntervalSourceResyncAfterStall(t *testing.T) {
	src := IntervalSource(10 * time.Millisecond)
	fl := &Flow{Ctx: t.Context()}
	if _, err := src(fl); err != nil {
		t.Fatal(err)
	}
	// Miss several intervals, then expect a single immediate fire (no
	// burst) and subsequent normal pacing.
	time.Sleep(50 * time.Millisecond)
	start := time.Now()
	if _, err := src(fl); err != nil {
		t.Fatal(err)
	}
	if time.Since(start) > 5*time.Millisecond {
		t.Error("late tick should fire immediately")
	}
	start = time.Now()
	if _, err := src(fl); err != nil {
		t.Fatal(err)
	}
	if time.Since(start) < 8*time.Millisecond {
		t.Error("post-resync tick fired in a burst")
	}
}
