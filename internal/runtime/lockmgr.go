package runtime

import (
	"fmt"
	"sync"

	"github.com/flux-lang/flux/internal/core"
	"github.com/flux-lang/flux/internal/lang/ast"
)

// LockManager implements atomicity constraints as reentrant reader-writer
// locks keyed by constraint name — plus the flow's session id for
// session-scoped constraints (§2.5.1). Flows acquire constraint sets in
// the canonical order computed by the compiler and release them in
// reverse (two-phase locking, §2.5); combined with acyclic flows this
// makes deadlock impossible (§3.1.1).
//
// The table is sharded so concurrent flows resolving unrelated
// constraints do not serialize on one mutex, and global (non-session)
// constraints can be resolved once at server construction (Resolve) so
// the hot path skips the table entirely.
type LockManager struct {
	shards [lockShardCount]lockShard
}

// lockShardCount must be a power of two.
const lockShardCount = 32

type lockShard struct {
	mu    sync.Mutex
	locks map[lockKey]*rwReentrant
}

type lockKey struct {
	name    string
	session uint64 // 0 for global constraints
}

// hash spreads keys across shards (FNV-1a over the name, session mixed
// in).
func (k lockKey) hash() uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(k.name); i++ {
		h ^= uint64(k.name[i])
		h *= 1099511628211
	}
	h ^= k.session
	h *= 1099511628211
	return h
}

// NewLockManager returns an empty lock table; locks are created on first
// acquisition.
func NewLockManager() *LockManager {
	m := &LockManager{}
	for i := range m.shards {
		m.shards[i].locks = make(map[lockKey]*rwReentrant)
	}
	return m
}

func (m *LockManager) lock(key lockKey) *rwReentrant {
	sh := &m.shards[key.hash()&(lockShardCount-1)]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	l, ok := sh.locks[key]
	if !ok {
		l = newRWReentrant(key.name)
		sh.locks[key] = l
	}
	return l
}

// resolvedCon is a constraint prepared for repeated acquisition: the
// writer-mode test is precomputed and, for global constraints, the lock
// pointer is resolved once so acquisition skips the table lookup.
// Session-scoped constraints keep lock == nil — their identity depends
// on the acquiring flow's session id.
type resolvedCon struct {
	c     ast.Constraint
	write bool
	lock  *rwReentrant
}

// Resolve prepares a constraint for repeated acquisition. Servers call
// it once per acquire/release vertex at construction time.
func (m *LockManager) Resolve(c ast.Constraint) resolvedCon {
	rc := resolvedCon{c: c, write: c.Mode == ast.Writer}
	if !c.Session {
		rc.lock = m.lock(lockKey{name: c.Name})
	}
	return rc
}

// resolveFor returns the lock for a resolved constraint in the context
// of a flow (session-scoped constraints shard by the flow's session id).
func (m *LockManager) resolveFor(rc resolvedCon, fl *Flow) *rwReentrant {
	if rc.lock != nil {
		return rc.lock
	}
	return m.lock(lockKey{name: rc.c.Name, session: fl.Session})
}

// acquireResolved blocks until the flow holds the constraint (the
// pre-resolved fast path of Acquire).
func (m *LockManager) acquireResolved(fl *Flow, rc resolvedCon) {
	l := m.resolveFor(rc, fl)
	l.acquire(fl, rc.write)
	fl.held = append(fl.held, heldToken{lock: l, c: rc.c})
}

// tryAcquireResolved is the uncontended fast path of an asynchronous
// acquisition: it grants immediately — without constructing a resume
// closure — exactly when AcquireAsync would have (fairness included: it
// refuses to overtake parked waiters). On false the caller builds its
// continuation and parks with parkResolved.
func (m *LockManager) tryAcquireResolved(fl *Flow, rc resolvedCon) bool {
	l := m.resolveFor(rc, fl)
	if !l.tryAcquireFair(fl, rc.write) {
		return false
	}
	fl.held = append(fl.held, heldToken{lock: l, c: rc.c})
	return true
}

// lockResumer is implemented by engines that park flows with parkWaiter:
// resumeGranted is called — with the constraint already held by the
// waiter's flow — when the lock is granted. The `by` flow is the one
// whose release triggered the grant, running on whichever goroutine
// called release; the work-stealing engine uses it to land the
// continuation on the resuming dispatcher's local deque.
type lockResumer interface {
	resumeGranted(n *lockWaiterNode, by *Flow)
}

// lockWaiterNode is one parked asynchronous acquisition. The node is
// embedded in the Flow (a flow blocks on at most one constraint at a
// time), so the contended path allocates nothing: the engine fills the
// continuation fields, and the grant hands the same node back through
// resumeGranted. The legacy AcquireAsync closure API allocates a
// standalone node instead; both kinds share the lock's FIFO list.
type lockWaiterNode struct {
	next  *lockWaiterNode
	fl    *Flow
	write bool
	c     ast.Constraint

	// Exactly one of target and grant is set: target for engines using
	// the embedded-node path, grant for the AcquireAsync closure path.
	target lockResumer
	grant  func()

	// Continuation state for the engine's resumeGranted. The lock
	// manager never reads these; they ride on the node so parking a flow
	// needs no event copy and no closure.
	tbl      *graphTable
	v        *core.FlatNode
	rec      Record
	acquired int
}

// parkWaiter completes an asynchronous acquisition after
// tryAcquireResolved failed, using the flow's embedded waiter node:
// it re-attempts (the lock may have been released in between) and
// otherwise parks the flow FIFO. True means acquired now; false means
// target.resumeGranted will run — with the constraint held — when the
// lock is granted. The caller must fill fl.lw's continuation fields
// (tbl, v, rec, acquired) before calling: on false the grant can fire
// from another goroutine the instant the lock's mutex is released.
func (m *LockManager) parkWaiter(fl *Flow, rc resolvedCon, target lockResumer) bool {
	l := m.resolveFor(rc, fl)
	n := &fl.lw
	n.fl, n.write, n.c, n.target, n.grant = fl, rc.write, rc.c, target, nil
	if l.parkNode(n) {
		fl.held = append(fl.held, heldToken{lock: l, c: rc.c})
		n.rec = nil
		return true
	}
	return false
}

// key resolves the lock identity for a constraint in the context of a
// flow: session-scoped constraints use the flow's session id.
func (m *LockManager) key(c ast.Constraint, fl *Flow) lockKey {
	k := lockKey{name: c.Name}
	if c.Session {
		k.session = fl.Session
	}
	return k
}

// Acquire blocks until the flow holds the constraint. Reacquiring a
// constraint the flow already holds is cheap and never blocks (locks are
// reentrant, §3.1.1).
func (m *LockManager) Acquire(fl *Flow, c ast.Constraint) {
	l := m.lock(m.key(c, fl))
	l.acquire(fl, c.Mode == ast.Writer)
	fl.held = append(fl.held, heldToken{lock: l, c: c})
}

// TryAcquire is the non-blocking variant. It reports whether the
// constraint was acquired.
func (m *LockManager) TryAcquire(fl *Flow, c ast.Constraint) bool {
	l := m.lock(m.key(c, fl))
	if !l.tryAcquire(fl, c.Mode == ast.Writer) {
		return false
	}
	fl.held = append(fl.held, heldToken{lock: l, c: c})
	return true
}

// AcquireAsync acquires without blocking, or parks the flow on the
// lock's FIFO wait queue. It returns true when the constraint was
// acquired immediately; otherwise resume will be called — with the
// constraint already held by the flow — when the lock is granted. The
// engines' own contended path uses the allocation-free parkWaiter
// instead; AcquireAsync remains the general closure API, and no flow
// can be starved by retry races either way: grants happen in arrival
// order.
func (m *LockManager) AcquireAsync(fl *Flow, c ast.Constraint, resume func()) bool {
	l := m.lock(m.key(c, fl))
	n := &lockWaiterNode{fl: fl, write: c.Mode == ast.Writer, c: c, grant: resume}
	if l.parkNode(n) {
		fl.held = append(fl.held, heldToken{lock: l, c: c})
		return true
	}
	return false
}

// ReleaseSet releases the most recent len(cs) acquisitions, in reverse
// order. The compiler guarantees acquire/release bracketing, so the tail
// of the flow's held stack is exactly the set being released.
func (m *LockManager) ReleaseSet(fl *Flow, cs []ast.Constraint) {
	m.releaseN(fl, len(cs))
}

// releaseN pops the flow's n most recent acquisitions.
func (m *LockManager) releaseN(fl *Flow, n int) {
	for i := 0; i < n; i++ {
		fl.releaseTop()
	}
}

// ReleaseAll unwinds every lock the flow still holds, used on the error
// path: the failing flow abandons its bracket structure and the handler
// runs lock-free (acquiring its own constraints if it has any).
func (m *LockManager) ReleaseAll(fl *Flow) {
	for len(fl.held) > 0 {
		fl.releaseTop()
	}
}

// heldToken records one acquisition on a flow's lock stack.
type heldToken struct {
	lock *rwReentrant
	c    ast.Constraint
}

// rwReentrant is a reader-writer lock with per-flow reentrancy:
//
//   - a flow holding the write lock may reacquire it (and may "reacquire"
//     it as a reader) without blocking;
//   - a flow holding a read lock may reacquire it as a reader;
//   - read-to-write upgrades are forbidden — the compiler's promotion
//     pass (§3.1.1) rewrites programs so the first acquisition on any
//     path is already a writer, making upgrades impossible at runtime.
type rwReentrant struct {
	name    string
	mu      sync.Mutex
	cond    *sync.Cond
	writer  *Flow
	wdepth  int
	readers map[*Flow]int
	// wqHead/wqTail hold parked asynchronous acquirers as an intrusive
	// FIFO list of waiter nodes; release grants to them in arrival order
	// (never starving a flow behind later arrivals). An intrusive list —
	// not a slice — so parking a flow whose node is embedded in the Flow
	// touches no allocator at all.
	wqHead, wqTail *lockWaiterNode
}

func newRWReentrant(name string) *rwReentrant {
	l := &rwReentrant{name: name, readers: make(map[*Flow]int)}
	l.cond = sync.NewCond(&l.mu)
	return l
}

// acquire blocks until the lock is held in the requested mode.
func (l *rwReentrant) acquire(fl *Flow, write bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	for !l.grantLocked(fl, write) {
		l.cond.Wait()
	}
}

// tryAcquire acquires without blocking, reporting success.
func (l *rwReentrant) tryAcquire(fl *Flow, write bool) bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.grantLocked(fl, write)
}

// grantFairLocked is the immediate-grant policy shared by acquireAsync
// and tryAcquireFair; callers hold l.mu. Reentrant reacquisition always
// grants (the flow already holds the lock); any other grant must not
// overtake parked waiters.
func (l *rwReentrant) grantFairLocked(fl *Flow, write bool) bool {
	if l.writer == fl || (!write && l.readers[fl] > 0) {
		return l.grantLocked(fl, write)
	}
	if l.wqHead == nil {
		return l.grantLocked(fl, write)
	}
	return false
}

// tryAcquireFair is tryAcquire with asynchronous-waiter fairness: it
// grants exactly when acquireAsync's immediate path would. This lets
// callers probe for the common uncontended grant without building a
// continuation first.
func (l *rwReentrant) tryAcquireFair(fl *Flow, write bool) bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.grantFairLocked(fl, write)
}

// parkNode acquires immediately (returning true without consuming the
// node) or appends the node to the FIFO wait list (returning false).
// Arrivals behind parked waiters queue rather than overtaking, keeping
// grants fair. The caller appends the held token on true; on false the
// node belongs to the lock until release grants it.
func (l *rwReentrant) parkNode(n *lockWaiterNode) bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.grantFairLocked(n.fl, n.write) {
		return true
	}
	if n.write && l.readers[n.fl] > 0 {
		panic(fmt.Sprintf("flux/runtime: read-to-write upgrade on constraint %q; "+
			"the compiler promotes first acquisitions to writers, so this is a misuse of LockManager", l.name))
	}
	n.next = nil
	if l.wqTail == nil {
		l.wqHead = n
	} else {
		l.wqTail.next = n
	}
	l.wqTail = n
	return false
}

// wakeAsyncLocked grants to the head of the async wait queue while the
// lock state allows: one writer, or a maximal batch of readers. It
// detaches and returns the granted chain (linked through next) for the
// caller to resume after the mutex is released.
func (l *rwReentrant) wakeAsyncLocked() *lockWaiterNode {
	var head, tail *lockWaiterNode
	for l.wqHead != nil {
		n := l.wqHead
		if n.write {
			if l.writer != nil || len(l.readers) != 0 {
				break
			}
			l.writer = n.fl
			l.wdepth = 1
		} else {
			if l.writer != nil {
				break
			}
			l.readers[n.fl]++
		}
		l.wqHead = n.next
		if l.wqHead == nil {
			l.wqTail = nil
		}
		n.next = nil
		if head == nil {
			head = n
		} else {
			tail.next = n
		}
		tail = n
		if n.write {
			break
		}
	}
	return head
}

// grantLocked attempts the state transition; callers hold l.mu.
func (l *rwReentrant) grantLocked(fl *Flow, write bool) bool {
	// Reentrant while writing: both read and write reacquisitions just
	// deepen the write hold.
	if l.writer == fl {
		l.wdepth++
		return true
	}
	if !write {
		if l.readers[fl] > 0 {
			l.readers[fl]++
			return true
		}
		if l.writer == nil {
			l.readers[fl] = 1
			return true
		}
		return false
	}
	// Write request.
	if l.readers[fl] > 0 {
		// Read-to-write upgrade would deadlock against another
		// upgrader; the compiler's promotion pass makes this
		// unreachable for compiled programs, so reaching it means the
		// lock manager was driven by hand, out of contract.
		panic(fmt.Sprintf("flux/runtime: read-to-write upgrade on constraint %q; "+
			"the compiler promotes first acquisitions to writers, so this is a misuse of LockManager", l.name))
	}
	if l.writer == nil && len(l.readers) == 0 {
		l.writer = fl
		l.wdepth = 1
		return true
	}
	return false
}

// release undoes one acquisition by fl, handing the lock to parked
// asynchronous waiters first (FIFO) and then waking blocking waiters.
func (l *rwReentrant) release(fl *Flow) {
	l.mu.Lock()
	var granted *lockWaiterNode
	switch {
	case l.writer == fl:
		l.wdepth--
		if l.wdepth == 0 {
			l.writer = nil
			granted = l.wakeAsyncLocked()
			l.cond.Broadcast()
		}
	default:
		n, ok := l.readers[fl]
		if !ok {
			l.mu.Unlock()
			panic(fmt.Sprintf("flux/runtime: release of constraint %q not held by this flow", l.name))
		}
		if n == 1 {
			delete(l.readers, fl)
			if len(l.readers) == 0 {
				granted = l.wakeAsyncLocked()
				l.cond.Broadcast()
			}
		} else {
			l.readers[fl] = n - 1
		}
	}
	l.mu.Unlock()
	// Grant resumptions enqueue continuation events; they must run
	// outside the lock's mutex. The next pointer is consumed before the
	// resume runs: a resumed flow may park again — on another dispatcher
	// — and reuse its embedded node immediately.
	for n := granted; n != nil; {
		next := n.next
		n.next = nil
		n.fl.held = append(n.fl.held, heldToken{lock: l, c: n.c})
		if n.target != nil {
			n.target.resumeGranted(n, fl)
		} else {
			n.grant()
		}
		n = next
	}
}
