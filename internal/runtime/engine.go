package runtime

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
)

// Engine is the execution strategy behind a Server: one of the paper's
// three runtime systems (§3.2), or any registered alternative. The
// Server owns program compilation, binding resolution, and the dense
// vertex tables; the engine owns scheduling — how source polls, node
// activations, and lock waits map onto goroutines.
//
// The contract:
//
//   - Start launches the engine's source loops and workers and returns
//     without blocking. The context governs admission: when it is
//     cancelled, sources stop originating flows, but flows already in
//     flight run to their terminals (graceful drain).
//   - Submit admits one externally-originated flow (Server.Inject). The
//     flow carries its source binding; Submit returns ErrServerClosed
//     once the engine has begun draining. Submit takes ownership of the
//     flow whether or not it returns an error.
//   - Drain blocks until the engine is quiescent — every source loop
//     retired, every in-flight flow at a terminal, every worker exited —
//     or the context expires, returning ctx.Err() in that case. Drain
//     is safe to call from several goroutines and at any time relative
//     to Start's context being cancelled; it does not itself stop
//     admission.
type Engine interface {
	Start(ctx context.Context) error
	Submit(fl *Flow, rec Record) error
	Drain(ctx context.Context) error
}

// EngineFactory builds an engine bound to a server. The factory is
// invoked once per Server.Start; the engine reads its tuning (pool
// size, dispatcher count, ...) from the server's Config.
type EngineFactory func(s *Server) Engine

// recordSubmitter is the optional admission fast path an engine
// implements when it defers flow construction to its own workers (the
// thread pool builds flows worker-side). Inject prefers it over Submit:
// no throwaway Flow is built and the source's session function runs
// exactly once, at the point the engine actually creates the flow.
type recordSubmitter interface {
	submitRecord(st *sourceState, rec Record) error
}

// ErrServerClosed is returned by Submit and Inject once the server (or
// its engine) has stopped admitting new flows.
var ErrServerClosed = errors.New("flux/runtime: server closed")

// ErrNotStarted is returned by lifecycle methods that require Start to
// have been called first.
var ErrNotStarted = errors.New("flux/runtime: server not started")

// The engine registry. The three paper engines register themselves in
// init; additional engines (a work-stealing event engine, a NUMA-aware
// pool, ...) register with RegisterEngine and become selectable through
// WithEngine without any change to Server.
var (
	engineMu  sync.RWMutex
	engineReg = map[EngineKind]engineEntry{}
)

type engineEntry struct {
	name    string
	factory EngineFactory
}

// RegisterEngine makes an engine selectable by kind. The name is the
// kind's String form and must be unique, as must the kind itself;
// duplicate registrations panic, mirroring database/sql.Register.
func RegisterEngine(kind EngineKind, name string, factory EngineFactory) {
	if factory == nil {
		panic("flux/runtime: RegisterEngine with nil factory")
	}
	engineMu.Lock()
	defer engineMu.Unlock()
	if _, dup := engineReg[kind]; dup {
		panic(fmt.Sprintf("flux/runtime: engine kind %d registered twice", int(kind)))
	}
	for k, e := range engineReg {
		if e.name == name {
			panic(fmt.Sprintf("flux/runtime: engine name %q already taken by kind %d", name, int(k)))
		}
	}
	engineReg[kind] = engineEntry{name: name, factory: factory}
}

// ParseEngineKind resolves a registered engine's name ("thread",
// "threadpool", "event", ...) back to its kind — the inverse of
// EngineKind.String for every registered engine.
func ParseEngineKind(name string) (EngineKind, bool) {
	engineMu.RLock()
	defer engineMu.RUnlock()
	for k, e := range engineReg {
		if e.name == name {
			return k, true
		}
	}
	return 0, false
}

// EngineKinds lists the registered kinds in ascending order.
func EngineKinds() []EngineKind {
	engineMu.RLock()
	kinds := make([]EngineKind, 0, len(engineReg))
	for k := range engineReg {
		kinds = append(kinds, k)
	}
	engineMu.RUnlock()
	sort.Slice(kinds, func(i, j int) bool { return kinds[i] < kinds[j] })
	return kinds
}

func lookupEngine(kind EngineKind) (engineEntry, bool) {
	engineMu.RLock()
	e, ok := engineReg[kind]
	engineMu.RUnlock()
	return e, ok
}

func init() {
	RegisterEngine(ThreadPerFlow, "thread", newThreadEngine)
	RegisterEngine(ThreadPool, "threadpool", newPoolEngine)
	RegisterEngine(EventDriven, "event", newEventEngine)
	RegisterEngine(WorkStealing, "steal", newStealEngine)
}

// awaitDone is the shared Drain implementation: wait for the engine's
// quiescence signal or the caller's deadline.
func awaitDone(done <-chan struct{}, ctx context.Context) error {
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		// A quiescence signal racing the deadline counts as drained.
		select {
		case <-done:
			return nil
		default:
		}
		return ctx.Err()
	}
}
