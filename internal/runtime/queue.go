package runtime

import "sync"

// fifo is an unbounded FIFO queue with blocking pop, used for thread-pool
// admission (flows queue when all workers are busy, §3.2.1) and for the
// event engine's event queue (§3.2.2). A channel would impose a fixed
// capacity; the paper's queues are unbounded.
//
// Storage is a linked list of fixed-size chunks. Compared with a
// compact-by-copy slice, a chunk ring never copies queued items to
// reclaim space, steady-state operation recycles one spare chunk instead
// of reallocating, and memory returns to the allocator as the queue
// drains instead of pinning the high-water mark.
const fifoChunkSize = 64

type fifoChunk[T any] struct {
	buf  [fifoChunkSize]T
	next *fifoChunk[T]
}

type fifo[T any] struct {
	mu   sync.Mutex
	cond *sync.Cond
	// head is the chunk being popped from (read cursor hi), tail the
	// chunk being pushed to (write cursor ti). head == tail when the
	// queue fits in one chunk.
	head, tail *fifoChunk[T]
	hi, ti     int
	size       int
	closed     bool
	// spare recycles the most recently drained chunk so a steady
	// producer/consumer pair allocates nothing.
	spare *fifoChunk[T]
}

func newFIFO[T any]() *fifo[T] {
	q := &fifo[T]{}
	c := &fifoChunk[T]{}
	q.head, q.tail = c, c
	q.cond = sync.NewCond(&q.mu)
	return q
}

// push appends an item; pushing to a closed queue is a no-op.
func (q *fifo[T]) push(v T) {
	q.mu.Lock()
	if !q.closed {
		if q.ti == fifoChunkSize {
			c := q.spare
			if c != nil {
				q.spare = nil
			} else {
				c = &fifoChunk[T]{}
			}
			q.tail.next = c
			q.tail = c
			q.ti = 0
		}
		q.tail.buf[q.ti] = v
		q.ti++
		q.size++
		q.cond.Signal()
	}
	q.mu.Unlock()
}

// offer appends an item unless the queue is closed, reporting whether it
// was accepted — the admission-side primitive external submitters use to
// distinguish "queued" from "engine already draining". Kept separate
// from push so the engines' per-flow push stays a single call.
func (q *fifo[T]) offer(v T) bool {
	q.mu.Lock()
	if q.closed {
		q.mu.Unlock()
		return false
	}
	if q.ti == fifoChunkSize {
		c := q.spare
		if c != nil {
			q.spare = nil
		} else {
			c = &fifoChunk[T]{}
		}
		q.tail.next = c
		q.tail = c
		q.ti = 0
	}
	q.tail.buf[q.ti] = v
	q.ti++
	q.size++
	q.cond.Signal()
	q.mu.Unlock()
	return true
}

// popOneLocked removes and returns the head item; the caller holds q.mu
// and guarantees size > 0.
func (q *fifo[T]) popOneLocked() T {
	if q.hi == fifoChunkSize {
		old := q.head
		q.head = old.next
		old.next = nil
		q.spare = old // keep one drained chunk for reuse; extras are GC'd
		q.hi = 0
	}
	v := q.head.buf[q.hi]
	var zero T
	q.head.buf[q.hi] = zero // release for GC
	q.hi++
	q.size--
	return v
}

// pop blocks until an item is available or the queue is closed and
// drained; ok is false in the latter case.
func (q *fifo[T]) pop() (v T, ok bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for q.size == 0 && !q.closed {
		q.cond.Wait()
	}
	if q.size == 0 {
		return v, false
	}
	return q.popOneLocked(), true
}

// popBatch fills buf with up to len(buf) items in FIFO order, blocking
// until at least one is available. It returns n == 0, ok == false only
// when the queue is closed and drained. Batch popping amortizes the
// queue's mutex over several items for pool workers draining a backlog;
// with a short queue it degenerates to pop (n == 1), so idle workers are
// not starved by one worker grabbing everything.
func (q *fifo[T]) popBatch(buf []T) (n int, ok bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for q.size == 0 && !q.closed {
		q.cond.Wait()
	}
	if q.size == 0 {
		return 0, false
	}
	for n < len(buf) && q.size > 0 {
		buf[n] = q.popOneLocked()
		n++
	}
	return n, true
}

// tryPopBatch is the non-blocking variant of popBatch: it fills buf with
// up to len(buf) items in FIFO order and returns immediately, with n == 0
// when the queue is empty. The work-stealing dispatchers use it to drain
// the overflow/injection queue in one mutex round trip before parking.
func (q *fifo[T]) tryPopBatch(buf []T) (n int) {
	q.mu.Lock()
	for n < len(buf) && q.size > 0 {
		buf[n] = q.popOneLocked()
		n++
	}
	q.mu.Unlock()
	return n
}

// tryPop is the non-blocking variant.
func (q *fifo[T]) tryPop() (v T, ok bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.size == 0 {
		return v, false
	}
	return q.popOneLocked(), true
}

// len reports the current queue length.
func (q *fifo[T]) len() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.size
}

// close wakes all waiters; pending items remain poppable.
func (q *fifo[T]) close() {
	q.mu.Lock()
	q.closed = true
	q.cond.Broadcast()
	q.mu.Unlock()
}
