package runtime

import "sync"

// fifo is an unbounded FIFO queue with blocking pop, used for thread-pool
// admission (flows queue when all workers are busy, §3.2.1) and for the
// event engine's event queue (§3.2.2). A channel would impose a fixed
// capacity; the paper's queues are unbounded.
type fifo[T any] struct {
	mu     sync.Mutex
	cond   *sync.Cond
	items  []T
	head   int
	closed bool
}

func newFIFO[T any]() *fifo[T] {
	q := &fifo[T]{}
	q.cond = sync.NewCond(&q.mu)
	return q
}

// push appends an item; pushing to a closed queue is a no-op.
func (q *fifo[T]) push(v T) {
	q.mu.Lock()
	if !q.closed {
		q.items = append(q.items, v)
		q.cond.Signal()
	}
	q.mu.Unlock()
}

// pop blocks until an item is available or the queue is closed and
// drained; ok is false in the latter case.
func (q *fifo[T]) pop() (v T, ok bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for q.head >= len(q.items) && !q.closed {
		q.cond.Wait()
	}
	if q.head >= len(q.items) {
		return v, false
	}
	v = q.items[q.head]
	var zero T
	q.items[q.head] = zero // release for GC
	q.head++
	// Compact occasionally so the backing array does not grow without
	// bound on long-running servers.
	if q.head > 1024 && q.head*2 >= len(q.items) {
		n := copy(q.items, q.items[q.head:])
		q.items = q.items[:n]
		q.head = 0
	}
	return v, true
}

// tryPop is the non-blocking variant.
func (q *fifo[T]) tryPop() (v T, ok bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.head >= len(q.items) {
		return v, false
	}
	v = q.items[q.head]
	var zero T
	q.items[q.head] = zero
	q.head++
	return v, true
}

// len reports the current queue length.
func (q *fifo[T]) len() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return len(q.items) - q.head
}

// close wakes all waiters; pending items remain poppable.
func (q *fifo[T]) close() {
	q.mu.Lock()
	q.closed = true
	q.cond.Broadcast()
	q.mu.Unlock()
}
