package runtime

import (
	"context"
	"errors"
	"sync"
)

// pooledFlow is one queued admission: a record waiting for a worker.
type pooledFlow struct {
	st  *sourceState
	rec Record
}

// poolBatch is how many queued admissions a worker claims per queue
// round trip. Batching amortizes the queue mutex under backlog; under
// light load popBatch returns what is available (usually one), so idle
// workers still pick up new arrivals immediately.
const poolBatch = 8

// runPool implements the thread-pool runtime (§3.2.1): a fixed number of
// workers service flows; a flow created while every worker is busy queues
// and is handled in first-in first-out order.
func (s *Server) runPool(ctx context.Context) error {
	queue := newFIFO[pooledFlow]()
	var workers sync.WaitGroup
	for i := 0; i < s.cfg.PoolSize; i++ {
		workers.Add(1)
		go func() {
			defer workers.Done()
			buf := make([]pooledFlow, poolBatch)
			for {
				n, ok := queue.popBatch(buf)
				if !ok {
					return
				}
				for i := 0; i < n; i++ {
					pf := buf[i]
					buf[i] = pooledFlow{} // release the record for GC
					fl := s.newFlow(ctx, pf.st.sessionOf(pf.rec))
					s.runFlow(fl, pf.st.tbl, pf.rec)
				}
			}
		}()
	}

	var sources sync.WaitGroup
	for _, st := range s.srcs {
		sources.Add(1)
		go func(st *sourceState) {
			defer sources.Done()
			// One poll context serves every iteration of this source
			// loop; admitted records are handed flows by the workers.
			fl := s.newFlow(ctx, 0)
			defer s.freeFlow(fl)
			for {
				if ctx.Err() != nil {
					return
				}
				rec, err := st.fn(fl)
				switch {
				case err == nil:
					s.stats.Started.Add(1)
					queue.push(pooledFlow{st: st, rec: rec})
				case errors.Is(err, ErrNoData):
					continue
				case errors.Is(err, ErrStop):
					return
				case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
					return
				default:
					s.stats.NodeErrors.Add(1)
					return
				}
			}
		}(st)
	}

	sources.Wait()
	queue.close()
	workers.Wait()
	return ctx.Err()
}
