package runtime

import (
	"context"
	"errors"
	"sync"
)

// pooledFlow is one queued admission: a record waiting for a worker.
type pooledFlow struct {
	st  *sourceState
	rec Record
}

// runPool implements the thread-pool runtime (§3.2.1): a fixed number of
// workers service flows; a flow created while every worker is busy queues
// and is handled in first-in first-out order.
func (s *Server) runPool(ctx context.Context) error {
	queue := newFIFO[pooledFlow]()
	var workers sync.WaitGroup
	for i := 0; i < s.cfg.PoolSize; i++ {
		workers.Add(1)
		go func() {
			defer workers.Done()
			for {
				pf, ok := queue.pop()
				if !ok {
					return
				}
				fl := s.newFlow(ctx, pf.st.sessionOf(pf.rec))
				s.runFlow(fl, pf.st.graph, pf.rec)
			}
		}()
	}

	var sources sync.WaitGroup
	for _, st := range s.srcs {
		sources.Add(1)
		go func(st *sourceState) {
			defer sources.Done()
			for {
				if ctx.Err() != nil {
					return
				}
				fl := s.newFlow(ctx, 0)
				rec, err := st.fn(fl)
				switch {
				case err == nil:
					s.stats.Started.Add(1)
					queue.push(pooledFlow{st: st, rec: rec})
				case errors.Is(err, ErrNoData):
					continue
				case errors.Is(err, ErrStop):
					return
				case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
					return
				default:
					s.stats.NodeErrors.Add(1)
					return
				}
			}
		}(st)
	}

	sources.Wait()
	queue.close()
	workers.Wait()
	return ctx.Err()
}
