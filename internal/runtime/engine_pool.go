package runtime

import (
	"context"
	"errors"
	"sync"
	"time"
)

// pooledFlow is one queued admission: a record waiting for a worker.
// Kept to three words + record so the FIFO's chunk copies stay cheap;
// injected flows are recycled at Submit and rebuilt by the worker. box
// carries the record's pool slot (when the source drew it from the
// per-source record pool) to the worker-built flow, which frees it at
// the flow's terminal.
type pooledFlow struct {
	st  *sourceState
	rec Record
	box *pooledRec
}

// poolBatch is how many queued admissions a worker claims per queue
// round trip. Batching amortizes the queue mutex under backlog; under
// light load popBatch returns what is available (usually one), so idle
// workers still pick up new arrivals immediately.
const poolBatch = 8

// poolEngine implements the thread-pool runtime (§3.2.1): a fixed number
// of workers service flows; a flow created while every worker is busy
// queues and is handled in first-in first-out order.
//
// Graceful drain is inherent to the structure: cancelling the start
// context stops the source loops, the admission queue closes once they
// retire, and workers drain the remaining backlog before exiting.
type poolEngine struct {
	s     *Server
	ctx   context.Context
	queue *fifo[pooledFlow]
	done  chan struct{}
}

func newPoolEngine(s *Server) Engine {
	return &poolEngine{s: s, queue: newFIFO[pooledFlow](), done: make(chan struct{})}
}

func (e *poolEngine) Start(ctx context.Context) error {
	e.ctx = ctx
	s := e.s
	var workers sync.WaitGroup
	for i := 0; i < s.cfg.PoolSize; i++ {
		workers.Add(1)
		go e.worker(&workers)
	}

	var sources sync.WaitGroup
	for _, st := range s.srcs {
		sources.Add(1)
		go e.sourceLoop(&sources, st)
	}
	if s.cfg.KeepAlive {
		sources.Add(1)
		go func() {
			defer sources.Done()
			<-ctx.Done()
		}()
	}
	if s.obs != nil {
		go e.sampleQueues()
	}
	go func() {
		sources.Wait()
		e.queue.close()
		workers.Wait()
		close(e.done)
	}()
	return nil
}

func (e *poolEngine) worker(workers *sync.WaitGroup) {
	defer workers.Done()
	// Hoisted: the steady-state loop must not chase engine fields.
	s, queue, ctx := e.s, e.queue, e.ctx
	buf := make([]pooledFlow, poolBatch)
	for {
		n, ok := queue.popBatch(buf)
		if !ok {
			return
		}
		for i := 0; i < n; i++ {
			pf := buf[i]
			buf[i] = pooledFlow{} // release the record for GC
			fl := s.newFlow(ctx, pf.st.sessionOf(pf.rec))
			fl.recBox = pf.box
			s.runFlow(fl, pf.st.tbl, pf.rec)
		}
	}
}

func (e *poolEngine) sourceLoop(sources *sync.WaitGroup, st *sourceState) {
	defer sources.Done()
	s, queue, ctx := e.s, e.queue, e.ctx
	// Hoisted: ctx is a cancellable run context, so the per-record
	// cancellation check is a non-blocking receive on its done channel,
	// not a ctx.Err() call (an atomic load per admitted record).
	done := ctx.Done()
	// One poll context serves every iteration of this source loop;
	// admitted records are handed flows by the workers.
	fl := s.newFlow(ctx, 0)
	fl.src = st // lets the source draw from its record pool (NewRecord)
	defer s.freeFlow(fl)
	for {
		select {
		case <-done:
			return
		default:
		}
		rec, err := st.fn(fl)
		switch {
		case err == nil:
			s.stats.Started.Add(1)
			queue.push(pooledFlow{st: st, rec: rec, box: fl.takeRecBox()})
		case errors.Is(err, ErrNoData):
			fl.releaseRecord()
			continue
		case errors.Is(err, ErrStop):
			return
		case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
			return
		default:
			s.stats.NodeErrors.Add(1)
			return
		}
	}
}

// sampleQueues feeds the observer plane the admission backlog depth —
// the saturation signal of a fixed pool (§3.2.1's FIFO admission).
func (e *poolEngine) sampleQueues() {
	t := time.NewTicker(e.s.cfg.QueueSample)
	defer t.Stop()
	for {
		select {
		case <-e.done:
			return
		case <-t.C:
			e.s.obs.QueueDepth(ThreadPool, "admission", e.queue.len())
		}
	}
}

// submitRecord admits an injected record through the same FIFO as
// source admissions; the claiming worker builds the flow (and runs the
// session function) exactly as it does for source records. Admission
// ends at cancellation — the queue also closes shortly after, but the
// explicit check removes the window where injections race the source
// loops' retirement.
func (e *poolEngine) submitRecord(st *sourceState, rec Record) error {
	if e.ctx.Err() != nil {
		return ErrServerClosed
	}
	if !e.queue.offer(pooledFlow{st: st, rec: rec}) {
		return ErrServerClosed
	}
	return nil
}

// Submit satisfies the Engine interface for callers holding a prebuilt
// flow; the pool recycles it and admits the bare record (Inject uses
// submitRecord directly and never builds one).
func (e *poolEngine) Submit(fl *Flow, rec Record) error {
	st := fl.src
	e.s.freeFlow(fl)
	return e.submitRecord(st, rec)
}

func (e *poolEngine) Drain(ctx context.Context) error {
	return awaitDone(e.done, ctx)
}
