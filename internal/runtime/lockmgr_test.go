package runtime

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/flux-lang/flux/internal/lang/ast"
)

func writer(name string) ast.Constraint { return ast.Constraint{Name: name, Mode: ast.Writer} }
func reader(name string) ast.Constraint { return ast.Constraint{Name: name, Mode: ast.Reader} }

func TestWriterExcludesWriter(t *testing.T) {
	m := NewLockManager()
	f1, f2 := &Flow{}, &Flow{}
	m.Acquire(f1, writer("x"))
	if m.TryAcquire(f2, writer("x")) {
		t.Fatal("second writer acquired a held lock")
	}
	m.ReleaseAll(f1)
	if !m.TryAcquire(f2, writer("x")) {
		t.Fatal("writer could not acquire a free lock")
	}
}

func TestReadersShare(t *testing.T) {
	m := NewLockManager()
	f1, f2 := &Flow{}, &Flow{}
	m.Acquire(f1, reader("x"))
	if !m.TryAcquire(f2, reader("x")) {
		t.Fatal("readers failed to share")
	}
	f3 := &Flow{}
	if m.TryAcquire(f3, writer("x")) {
		t.Fatal("writer acquired while readers hold")
	}
	m.ReleaseAll(f1)
	m.ReleaseAll(f2)
	if !m.TryAcquire(f3, writer("x")) {
		t.Fatal("writer blocked on a free lock")
	}
}

func TestReentrantWriter(t *testing.T) {
	m := NewLockManager()
	f := &Flow{}
	m.Acquire(f, writer("x"))
	m.Acquire(f, writer("x")) // reentrant
	m.Acquire(f, reader("x")) // read-while-writing is allowed (§3.1.1)
	if len(f.held) != 3 {
		t.Fatalf("held = %d", len(f.held))
	}
	// Releasing twice must keep the lock held.
	m.ReleaseSet(f, []ast.Constraint{writer("x"), writer("x")})
	f2 := &Flow{}
	if m.TryAcquire(f2, writer("x")) {
		t.Fatal("lock freed while still reentrantly held")
	}
	m.ReleaseAll(f)
	if !m.TryAcquire(f2, writer("x")) {
		t.Fatal("lock not freed after full release")
	}
}

func TestUpgradePanics(t *testing.T) {
	m := NewLockManager()
	f := &Flow{}
	m.Acquire(f, reader("x"))
	defer func() {
		if recover() == nil {
			t.Error("read-to-write upgrade should panic")
		}
	}()
	m.Acquire(f, writer("x"))
}

func TestSessionScopedLocksIndependent(t *testing.T) {
	m := NewLockManager()
	f1 := &Flow{Session: 1}
	f2 := &Flow{Session: 2}
	c := ast.Constraint{Name: "state", Mode: ast.Writer, Session: true}
	m.Acquire(f1, c)
	if !m.TryAcquire(f2, c) {
		t.Fatal("different sessions contended on a session-scoped constraint")
	}
	f3 := &Flow{Session: 1}
	if m.TryAcquire(f3, c) {
		t.Fatal("same session did not contend")
	}
}

func TestAcquireBlocksUntilRelease(t *testing.T) {
	m := NewLockManager()
	f1, f2 := &Flow{}, &Flow{}
	m.Acquire(f1, writer("x"))
	acquired := make(chan struct{})
	go func() {
		m.Acquire(f2, writer("x"))
		close(acquired)
	}()
	select {
	case <-acquired:
		t.Fatal("acquire returned while lock held")
	case <-time.After(20 * time.Millisecond):
	}
	m.ReleaseAll(f1)
	select {
	case <-acquired:
	case <-time.After(time.Second):
		t.Fatal("blocked acquirer never woke")
	}
}

func TestAcquireAsyncImmediate(t *testing.T) {
	m := NewLockManager()
	f := &Flow{}
	called := false
	if !m.AcquireAsync(f, writer("x"), func() { called = true }) {
		t.Fatal("free lock not granted immediately")
	}
	if called {
		t.Error("resume called on immediate grant")
	}
	if len(f.held) != 1 {
		t.Errorf("held = %d", len(f.held))
	}
}

func TestAcquireAsyncGrantsInFIFOOrder(t *testing.T) {
	m := NewLockManager()
	holder := &Flow{}
	m.Acquire(holder, writer("x"))

	var order []int
	var mu sync.Mutex
	flows := make([]*Flow, 5)
	for i := range flows {
		flows[i] = &Flow{}
		i := i
		if m.AcquireAsync(flows[i], writer("x"), func() {
			mu.Lock()
			order = append(order, i)
			mu.Unlock()
		}) {
			t.Fatalf("waiter %d acquired a held lock", i)
		}
	}
	// Release the chain: each release grants the next waiter.
	m.ReleaseAll(holder)
	for i := range flows {
		m.ReleaseAll(flows[i])
	}
	mu.Lock()
	defer mu.Unlock()
	if len(order) != 5 {
		t.Fatalf("grants = %v", order)
	}
	for i, got := range order {
		if got != i {
			t.Fatalf("grant order = %v, want FIFO", order)
		}
	}
}

// fakeResumer records parkWaiter grants in order.
type fakeResumer struct {
	mu    sync.Mutex
	order []*Flow
}

func (r *fakeResumer) resumeGranted(n *lockWaiterNode, by *Flow) {
	r.mu.Lock()
	r.order = append(r.order, n.fl)
	r.mu.Unlock()
}

// TestParkWaiterFIFOMixedWithClosures: embedded-node waiters
// (parkWaiter, the engines' allocation-free contended path) and closure
// waiters (AcquireAsync) share one FIFO — grants interleave strictly in
// arrival order, and both kinds get the constraint appended to their
// held stack before resuming.
func TestParkWaiterFIFOMixedWithClosures(t *testing.T) {
	m := NewLockManager()
	holder := &Flow{}
	m.Acquire(holder, writer("x"))
	rc := m.Resolve(writer("x"))

	r := &fakeResumer{}
	var order []int
	var mu sync.Mutex
	nodeFlows := []*Flow{{}, {}}
	closureFlow := &Flow{}

	if m.parkWaiter(nodeFlows[0], rc, r) {
		t.Fatal("node waiter acquired a held lock")
	}
	if m.AcquireAsync(closureFlow, writer("x"), func() {
		mu.Lock()
		order = append(order, 1)
		mu.Unlock()
	}) {
		t.Fatal("closure waiter acquired a held lock")
	}
	if m.parkWaiter(nodeFlows[1], rc, r) {
		t.Fatal("second node waiter acquired a held lock")
	}

	// Release the chain: holder -> node0 -> closure -> node1.
	m.ReleaseAll(holder)
	r.mu.Lock()
	if len(r.order) != 1 || r.order[0] != nodeFlows[0] {
		t.Fatalf("first grant = %v, want node waiter 0", r.order)
	}
	r.mu.Unlock()
	if len(nodeFlows[0].held) != 1 {
		t.Fatalf("granted node waiter holds %d locks, want 1", len(nodeFlows[0].held))
	}
	m.ReleaseAll(nodeFlows[0])
	mu.Lock()
	if len(order) != 1 {
		t.Fatalf("closure waiter not granted second: %v", order)
	}
	mu.Unlock()
	if len(closureFlow.held) != 1 {
		t.Fatalf("granted closure waiter holds %d locks, want 1", len(closureFlow.held))
	}
	m.ReleaseAll(closureFlow)
	r.mu.Lock()
	if len(r.order) != 2 || r.order[1] != nodeFlows[1] {
		t.Fatalf("grant order = %v, want node waiter 1 last", r.order)
	}
	r.mu.Unlock()
	m.ReleaseAll(nodeFlows[1])

	// The lock ends free.
	free := &Flow{}
	if !m.tryAcquireResolved(free, rc) {
		t.Fatal("lock not free after all grants released")
	}
	m.ReleaseAll(free)
}

// TestParkWaiterImmediateGrant: parkWaiter on a free lock grants without
// queueing and appends the held token, like the closure API's immediate
// path.
func TestParkWaiterImmediateGrant(t *testing.T) {
	m := NewLockManager()
	rc := m.Resolve(writer("x"))
	fl := &Flow{}
	r := &fakeResumer{}
	if !m.parkWaiter(fl, rc, r) {
		t.Fatal("free lock not granted immediately")
	}
	if len(r.order) != 0 {
		t.Error("resumeGranted called on immediate grant")
	}
	if len(fl.held) != 1 {
		t.Errorf("held = %d, want 1", len(fl.held))
	}
	m.ReleaseAll(fl)
}

// TestAcquireAsyncNoStarvation is the regression test for the event
// engine's heartbeat starvation: a stream of new acquirers must not
// overtake a parked waiter.
func TestAcquireAsyncNoStarvation(t *testing.T) {
	m := NewLockManager()
	first := &Flow{}
	m.Acquire(first, writer("x"))

	// Park the victim.
	victim := &Flow{}
	granted := make(chan struct{})
	if m.AcquireAsync(victim, writer("x"), func() { close(granted) }) {
		t.Fatal("victim acquired held lock")
	}

	// A later arrival must queue behind the victim, not overtake.
	late := &Flow{}
	lateGranted := atomic.Bool{}
	if m.AcquireAsync(late, writer("x"), func() { lateGranted.Store(true) }) {
		t.Fatal("late acquirer overtook a parked waiter")
	}

	m.ReleaseAll(first)
	select {
	case <-granted:
	case <-time.After(time.Second):
		t.Fatal("victim never granted")
	}
	if lateGranted.Load() {
		t.Fatal("late acquirer granted before the earlier waiter released")
	}
	m.ReleaseAll(victim)
	if !lateGranted.Load() {
		t.Fatal("late acquirer not granted after victim released")
	}
}

func TestAsyncReaderBatchGrant(t *testing.T) {
	m := NewLockManager()
	w := &Flow{}
	m.Acquire(w, writer("x"))

	var grantedCount atomic.Int32
	readers := make([]*Flow, 3)
	for i := range readers {
		readers[i] = &Flow{}
		if m.AcquireAsync(readers[i], reader("x"), func() { grantedCount.Add(1) }) {
			t.Fatal("reader acquired while writer holds")
		}
	}
	m.ReleaseAll(w)
	if grantedCount.Load() != 3 {
		t.Fatalf("granted %d readers, want batch of 3", grantedCount.Load())
	}
}

func TestReleaseUnheldPanics(t *testing.T) {
	m := NewLockManager()
	f1, f2 := &Flow{}, &Flow{}
	m.Acquire(f1, reader("x"))
	defer func() {
		if recover() == nil {
			t.Error("releasing an unheld lock should panic")
		}
	}()
	f2.held = append(f2.held, heldToken{lock: m.lock(lockKey{name: "x"}), c: reader("x")})
	f2.releaseTop()
}
