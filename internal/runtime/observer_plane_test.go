package runtime

import (
	"testing"
)

// shedCounter is an observer that also implements ShedObserver.
type shedCounter struct {
	recordingObserver
	sheds []string
}

func (s *shedCounter) ConnShed(server, reason string) {
	s.sheds = append(s.sheds, server+"/"+reason)
}

// TestWithAddedObserver: composing onto an empty config installs
// directly; composing onto an occupied config fans out; nil is a no-op.
func TestWithAddedObserver(t *testing.T) {
	var c Config
	WithAddedObserver(nil)(&c)
	if c.Observer != nil {
		t.Error("nil observer installed")
	}

	a := &recordingObserver{}
	WithAddedObserver(a)(&c)
	if c.Observer != Observer(a) {
		t.Error("first observer not installed directly")
	}

	b := &recordingObserver{}
	WithAddedObserver(b)(&c)
	c.Observer.QueueDepth(ThreadPool, "admission", 1)
	if a.samples != 1 || b.samples != 1 {
		t.Errorf("fan-out samples = %d/%d, want 1/1", a.samples, b.samples)
	}
}

// TestMultiObserverConnShedNested: ConnShed must reach shed-aware
// members through arbitrarily nested compositions — the shape servers
// build when layering telemetry over a profiler over a gate observer —
// while shed-blind members are skipped, not crashed into.
func TestMultiObserverConnShedNested(t *testing.T) {
	inner := &shedCounter{}
	outer := &shedCounter{}
	blind := &recordingObserver{}

	// telemetry ∘ (profiler ∘ gate) style nesting.
	nested := MultiObserver(MultiObserver(blind, inner), outer)
	ConnShed(nested, "webserver", "overload")
	ConnShed(nested, "webserver", "conn-limit")

	if len(inner.sheds) != 2 || inner.sheds[0] != "webserver/overload" {
		t.Errorf("inner sheds = %v", inner.sheds)
	}
	if len(outer.sheds) != 2 || outer.sheds[1] != "webserver/conn-limit" {
		t.Errorf("outer sheds = %v", outer.sheds)
	}

	// A composition with no shed-aware member ignores the event.
	ConnShed(MultiObserver(blind, &recordingObserver{}), "x", "y")

	// And a nil observer is a no-op, not a panic.
	ConnShed(nil, "x", "y")
}

// TestCounterQueue pins the stream-name classification the admission
// gate depends on: counters and controller gauges must never be summed
// into backlog depth.
func TestCounterQueue(t *testing.T) {
	counters := []string{
		QueueSteals,
		CtrlWatermark, CtrlConnCap, CtrlWindowP95, CtrlShedRate,
		CtrlStreamPrefix + "anything",
		MsgStreamPrefix + "piece",
	}
	for _, q := range counters {
		if !CounterQueue(q) {
			t.Errorf("CounterQueue(%q) = false, want true", q)
		}
	}
	depths := []string{"admission", "pool", "events", "steal/0", ""}
	for _, q := range depths {
		if CounterQueue(q) {
			t.Errorf("CounterQueue(%q) = true, want false", q)
		}
	}
}
