package runtime

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"time"

	"github.com/flux-lang/flux/internal/core"
)

// The event-driven runtime (§3.2.2). Every input to a node is an event on
// a queue handled by a dispatcher that must never block:
//
//   - source nodes are repeatedly re-queued to originate new flows; they
//     poll with a deadline (the select-with-timeout pattern the paper's
//     web server uses), so an idle source holds the dispatcher for at
//     most Config.SourceTimeout — which reproduces the low-concurrency
//     latency hiccup of Figure 3;
//   - nodes marked blocking are offloaded to an asynchronous-I/O worker
//     pool, the Go analogue of the paper's LD_PRELOAD interception: the
//     node's state (its continuation vertex and record) is captured, the
//     dispatcher moves to the next event, and completion re-queues the
//     flow;
//   - lock acquisition never blocks the dispatcher: a contended
//     constraint parks the flow on the lock's FIFO wait queue and the
//     grant re-queues its continuation, so later acquirers cannot starve
//     earlier ones;
//   - async completions signal Flow.Wake, so a source poll in progress
//     yields immediately instead of holding the dispatcher for its full
//     timeout (the paper's single select sees all activity at once).

type eventKind int

const (
	evSource eventKind = iota // poll a source for the next record
	evStep                    // execute one vertex of a flow
	evResult                  // apply the result of an offloaded node
)

type event struct {
	kind eventKind
	st   *sourceState

	fl  *Flow
	g   *core.FlatGraph
	v   *core.FlatNode
	rec Record

	// acquired tracks progress through an acquire vertex's constraint
	// set across TryAcquire retries.
	acquired int
	retries  int

	// out and err carry an offloaded node's results.
	out Record
	err error
}

type eventEngine struct {
	s        *Server
	ctx      context.Context
	queue    *fifo[event]
	asyncq   *fifo[event]
	inflight atomic.Int64
	sources  atomic.Int64
	// wake interrupts a source poll when other work arrives, so async
	// completions never wait out a source timeout (the paper's single
	// select sees all activity at once).
	wake chan struct{}
}

// pushEvent enqueues an event and nudges any polling source.
func (e *eventEngine) pushEvent(ev event) {
	e.queue.push(ev)
	e.signalWake()
}

func (e *eventEngine) signalWake() {
	select {
	case e.wake <- struct{}{}:
	default:
	}
}

func (e *eventEngine) drainWake() {
	select {
	case <-e.wake:
	default:
	}
}

func (s *Server) runEvent(ctx context.Context) error {
	e := &eventEngine{
		s:      s,
		ctx:    ctx,
		queue:  newFIFO[event](),
		asyncq: newFIFO[event](),
		wake:   make(chan struct{}, 1),
	}

	var asyncWG sync.WaitGroup
	for i := 0; i < s.cfg.AsyncWorkers; i++ {
		asyncWG.Add(1)
		go func() {
			defer asyncWG.Done()
			e.asyncWorker()
		}()
	}

	for _, st := range s.srcs {
		e.sources.Add(1)
		e.queue.push(event{kind: evSource, st: st})
	}

	var dispWG sync.WaitGroup
	for i := 0; i < s.cfg.Dispatchers; i++ {
		dispWG.Add(1)
		go func() {
			defer dispWG.Done()
			e.dispatch()
		}()
	}
	dispWG.Wait()
	e.asyncq.close()
	asyncWG.Wait()
	return ctx.Err()
}

// dispatch is the event loop: it pops one event, handles it without
// blocking (beyond a source's bounded poll), and checks for termination.
func (e *eventEngine) dispatch() {
	for {
		ev, ok := e.queue.pop()
		if !ok {
			return
		}
		switch ev.kind {
		case evSource:
			e.handleSource(ev)
		case evStep:
			e.step(ev)
		case evResult:
			r := e.s.afterExec(ev.fl, ev.g, ev.v, ev.rec, ev.out, ev.err)
			e.advance(ev.fl, ev.g, r)
		}
		e.maybeFinish()
	}
}

// maybeFinish closes the queue once no source is active, no flow is in
// flight, and no event is pending.
func (e *eventEngine) maybeFinish() {
	if e.sources.Load() == 0 && e.inflight.Load() == 0 && e.queue.len() == 0 {
		e.queue.close()
	}
}

// handleSource polls a source once and re-queues it.
func (e *eventEngine) handleSource(ev event) {
	if e.ctx.Err() != nil {
		e.sources.Add(-1)
		return
	}
	fl := e.s.newFlow(e.ctx, 0)
	fl.SourceTimeout = e.s.cfg.SourceTimeout
	fl.Wake = e.wake
	// A poll must return promptly when the engine already has work;
	// pre-arm the wake signal so a well-behaved source's select fires
	// immediately.
	e.drainWake()
	if e.queue.len() > 0 {
		e.signalWake()
	}
	t0 := time.Now()
	rec, err := ev.st.fn(fl)
	switch {
	case err == nil:
		e.s.stats.Started.Add(1)
		flow := e.s.newFlow(e.ctx, ev.st.sessionOf(rec))
		flow.SourceTimeout = e.s.cfg.SourceTimeout
		e.inflight.Add(1)
		e.queue.push(event{kind: evStep, fl: flow, g: ev.st.graph, v: ev.st.graph.Entry, rec: rec})
		e.queue.push(ev)
	case errors.Is(err, ErrNoData):
		// Guard against sources that return early instead of waiting
		// out their deadline: an idle queue would otherwise hot-spin.
		// The guard sleep is interrupted by new work arriving.
		if e.queue.len() == 0 {
			if rest := e.s.cfg.SourceTimeout - time.Since(t0); rest > 0 {
				e.sleepWakeable(rest)
			}
		}
		e.queue.push(ev)
	case errors.Is(err, ErrStop),
		errors.Is(err, context.Canceled),
		errors.Is(err, context.DeadlineExceeded):
		e.sources.Add(-1)
	default:
		e.s.stats.NodeErrors.Add(1)
		e.sources.Add(-1)
	}
}

// sleepWakeable waits without outliving the run context, returning early
// when new work arrives.
func (e *eventEngine) sleepWakeable(d time.Duration) {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
	case <-e.wake:
	case <-e.ctx.Done():
	}
}

// step executes one vertex on the dispatcher.
func (e *eventEngine) step(ev event) {
	s := e.s
	fl, g, v := ev.fl, ev.g, ev.v
	switch v.Kind {
	case core.FlatExec:
		info := s.execs[v]
		if info.blocking {
			// Capture the node's state and move on; an async worker
			// will run it and queue the continuation (§3.2.2).
			e.asyncq.push(ev)
			return
		}
		out, err := s.callNode(fl, g, v, ev.rec)
		e.advance(fl, g, s.afterExec(fl, g, v, ev.rec, out, err))

	case core.FlatBranch:
		e.advance(fl, g, s.branchVertex(fl, g, v, ev.rec))

	case core.FlatAcquire:
		i := ev.acquired
		for i < len(v.Cons) {
			next := i + 1
			cont := ev
			cont.acquired = next
			// Park the flow on the lock's FIFO queue when the
			// constraint is contended: the grant callback re-queues the
			// continuation. Arrival-order grants keep timer flows from
			// being starved by a stream of later acquirers.
			if !s.locks.AcquireAsync(fl, v.Cons[i], func() { e.pushEvent(cont) }) {
				return
			}
			i++
		}
		fl.path += v.Out[0].Inc
		e.advance(fl, g, stepResult{next: v.Out[0].To, rec: ev.rec})

	case core.FlatRelease:
		s.locks.ReleaseSet(fl, v.Cons)
		fl.path += v.Out[0].Inc
		e.advance(fl, g, stepResult{next: v.Out[0].To, rec: ev.rec})

	case core.FlatExit, core.FlatError:
		s.finishFlow(fl, g, v)
		e.inflight.Add(-1)
	}
}

// advance queues the next vertex of a flow, or retires it.
func (e *eventEngine) advance(fl *Flow, g *core.FlatGraph, r stepResult) {
	if r.terminal {
		e.inflight.Add(-1)
		return
	}
	switch r.next.Kind {
	case core.FlatExit, core.FlatError:
		// Finish inline rather than paying another queue round-trip.
		e.s.finishFlow(fl, g, r.next)
		e.inflight.Add(-1)
	default:
		e.queue.push(event{kind: evStep, fl: fl, g: g, v: r.next, rec: r.rec})
	}
}

// asyncWorker runs offloaded blocking nodes and queues their results.
func (e *eventEngine) asyncWorker() {
	for {
		ev, ok := e.asyncq.pop()
		if !ok {
			return
		}
		out, err := e.s.callNode(ev.fl, ev.g, ev.v, ev.rec)
		ev.kind = evResult
		ev.out, ev.err = out, err
		e.pushEvent(ev)
	}
}
