package runtime

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"time"

	"github.com/flux-lang/flux/internal/core"
)

// The event-driven runtime (§3.2.2). Flows advance on a dispatcher that
// must never block, in run-to-block segments: consecutive non-blocking
// vertices execute inline in one dispatch, and a flow yields to the
// queue only when it must —
//
//   - source nodes are repeatedly re-queued to originate new flows; they
//     poll with a deadline (the select-with-timeout pattern the paper's
//     web server uses), so an idle source holds the dispatcher for at
//     most Config.SourceTimeout — which reproduces the low-concurrency
//     latency hiccup of Figure 3;
//   - nodes marked blocking are offloaded to an asynchronous-I/O worker
//     pool, the Go analogue of the paper's LD_PRELOAD interception: the
//     node's state (its continuation vertex and record) is captured, the
//     dispatcher moves to the next event, and completion re-queues the
//     flow;
//   - lock acquisition never blocks the dispatcher: a contended
//     constraint parks the flow on the lock's FIFO wait queue and the
//     grant re-queues its continuation, so later acquirers cannot starve
//     earlier ones;
//   - async completions signal Flow.Wake, so a source poll in progress
//     yields immediately instead of holding the dispatcher for its full
//     timeout (the paper's single select sees all activity at once).
//
// Run-to-block dispatch removes one queue round trip per vertex: an
// N-node non-blocking flow costs one queue trip total, not N.

type eventKind int

const (
	evSource eventKind = iota // poll a source for the next record
	evStep                    // resume a flow at a vertex
	evResult                  // apply the result of an offloaded node
	evNudge                   // wake a dispatcher to re-check termination
)

type event struct {
	kind eventKind
	st   *sourceState

	// fl doubles as the flow being advanced (evStep/evResult) and the
	// reusable poll context of an evSource event, so idle polling does
	// not allocate a fresh Flow per ErrNoData round.
	fl  *Flow
	tbl *graphTable
	v   *core.FlatNode
	rec Record

	// acquired tracks progress through an acquire vertex's constraint
	// set across parked-grant resumptions.
	acquired int

	// out and err carry an offloaded node's results.
	out Record
	err error
}

type eventEngine struct {
	s        *Server
	ctx      context.Context
	queue    *fifo[event]
	asyncq   *fifo[event]
	inflight atomic.Int64
	sources  atomic.Int64
	// wake interrupts a source poll when other work arrives, so async
	// completions never wait out a source timeout (the paper's single
	// select sees all activity at once).
	wake chan struct{}
	done chan struct{}
	// ctxDone is ctx.Done(), hoisted so the per-poll cancellation check
	// is a non-blocking receive rather than a cancelCtx.Err() call.
	ctxDone <-chan struct{}
}

func newEventEngine(s *Server) Engine {
	return &eventEngine{
		s:      s,
		queue:  newFIFO[event](),
		asyncq: newFIFO[event](),
		wake:   make(chan struct{}, 1),
		done:   make(chan struct{}),
	}
}

// pushEvent enqueues an event and nudges any polling source.
func (e *eventEngine) pushEvent(ev event) {
	e.queue.push(ev)
	e.signalWake()
}

func (e *eventEngine) signalWake() {
	select {
	case e.wake <- struct{}{}:
	default:
	}
}

func (e *eventEngine) drainWake() {
	select {
	case <-e.wake:
	default:
	}
}

func (e *eventEngine) Start(ctx context.Context) error {
	e.ctx = ctx
	e.ctxDone = ctx.Done()
	s := e.s

	var asyncWG sync.WaitGroup
	for i := 0; i < s.cfg.AsyncWorkers; i++ {
		asyncWG.Add(1)
		go func() {
			defer asyncWG.Done()
			e.asyncWorker()
		}()
	}

	for _, st := range s.srcs {
		e.sources.Add(1)
		e.queue.push(event{kind: evSource, st: st})
	}
	if s.cfg.KeepAlive {
		// A virtual source holds the engine open for Inject admissions;
		// cancellation retires it and nudges a dispatcher so the
		// termination check runs even on an idle queue.
		e.sources.Add(1)
		go func() {
			<-ctx.Done()
			e.sources.Add(-1)
			e.pushEvent(event{kind: evNudge})
		}()
	}
	if s.obs != nil {
		go e.sampleQueues()
	}

	var dispWG sync.WaitGroup
	for i := 0; i < s.cfg.Dispatchers; i++ {
		dispWG.Add(1)
		go func() {
			defer dispWG.Done()
			e.dispatch()
		}()
	}
	go func() {
		dispWG.Wait()
		e.asyncq.close()
		asyncWG.Wait()
		close(e.done)
	}()
	return nil
}

// Submit admits an externally-originated flow as an evStep event at its
// graph entry, interleaving with source-originated flows at flow
// granularity. Admission ends at cancellation, not at quiescence:
// without the context check, a steady stream of successful injections
// could hold inflight above zero forever and livelock the drain.
func (e *eventEngine) Submit(fl *Flow, rec Record) error {
	select {
	case <-e.ctxDone:
		e.s.freeFlow(fl)
		return ErrServerClosed
	default:
	}
	fl.SourceTimeout = e.s.cfg.SourceTimeout
	e.inflight.Add(1)
	tbl := fl.src.tbl
	if !e.queue.offer(event{kind: evStep, fl: fl, tbl: tbl, v: tbl.g.Entry, rec: rec}) {
		e.inflight.Add(-1)
		e.s.freeFlow(fl)
		return ErrServerClosed
	}
	e.signalWake()
	return nil
}

func (e *eventEngine) Drain(ctx context.Context) error {
	return awaitDone(e.done, ctx)
}

// sampleQueues feeds the observer plane the dispatcher and async-offload
// queue depths — the event server's overload signals.
func (e *eventEngine) sampleQueues() {
	t := time.NewTicker(e.s.cfg.QueueSample)
	defer t.Stop()
	for {
		select {
		case <-e.done:
			return
		case <-t.C:
			obs := e.s.obs
			obs.QueueDepth(EventDriven, "events", e.queue.len())
			obs.QueueDepth(EventDriven, "async", e.asyncq.len())
		}
	}
}

// eventBatch is how many queued events a dispatcher claims per queue
// round trip. Under backlog the queue mutex amortizes over the batch;
// with a short queue popBatch returns what is available (usually one),
// so sibling dispatchers are not starved by one grabbing everything.
const eventBatch = 8

// dispatch is the event loop: it drains a batch of events per mutex
// round trip, handles each without blocking (beyond a source's bounded
// poll), and checks for termination after every event.
//
// The local buffer is termination-check-safe: maybeFinish closes the
// queue only when no source is live and no flow is in flight, and every
// buffered event except a nudge keeps one of those counters nonzero
// (evSource holds sources > 0 until retired, evStep/evResult hold
// inflight > 0), so events parked in a dispatcher's buffer can never be
// stranded by the queue closing under them.
func (e *eventEngine) dispatch() {
	var buf [eventBatch]event
	for {
		n, ok := e.queue.popBatch(buf[:])
		if !ok {
			return
		}
		for i := 0; i < n; i++ {
			ev := buf[i]
			buf[i] = event{} // release the record/flow for GC
			switch ev.kind {
			case evSource:
				e.handleSource(ev, i+1 < n)
			case evStep:
				e.run(ev.fl, ev.tbl, ev.v, ev.rec, ev.acquired)
			case evResult:
				r := e.s.afterExec(ev.fl, ev.v, ev.rec, ev.out, ev.err)
				e.run(ev.fl, ev.tbl, r.next, r.rec, 0)
			case evNudge:
				// No work; exists to force the termination check below.
			}
			e.maybeFinish()
		}
	}
}

// maybeFinish closes the queue once no source is active, no flow is in
// flight, and no event is pending.
func (e *eventEngine) maybeFinish() {
	if e.sources.Load() == 0 && e.inflight.Load() == 0 && e.queue.len() == 0 {
		e.queue.close()
	}
}

// retireSource ends a source's polling loop, releasing its poll context.
func (e *eventEngine) retireSource(ev event) {
	if ev.fl != nil {
		e.s.freeFlow(ev.fl)
	}
	e.sources.Add(-1)
}

// handleSource polls a source once and re-queues it. The evSource event
// owns a reusable poll Flow, so an idle source cycling through ErrNoData
// allocates nothing. morePending reports events still buffered by this
// dispatcher's batch, which count as ready work for poll-shortening.
func (e *eventEngine) handleSource(ev event, morePending bool) {
	select {
	case <-e.ctxDone:
		e.retireSource(ev)
		return
	default:
	}
	if ev.fl == nil {
		ev.fl = e.s.newFlow(e.ctx, 0)
		ev.fl.SourceTimeout = e.s.cfg.SourceTimeout
		ev.fl.Wake = e.wake
		ev.fl.src = ev.st
	}
	// A poll must return promptly when the engine already has work;
	// pre-arm the wake signal so a well-behaved source's select fires
	// immediately.
	e.drainWake()
	if morePending || e.queue.len() > 0 {
		e.signalWake()
	}
	t0 := time.Now()
	rec, err := ev.st.fn(ev.fl)
	switch {
	case err == nil:
		e.s.stats.Started.Add(1)
		flow := e.s.newFlow(e.ctx, ev.st.sessionOf(rec))
		flow.SourceTimeout = e.s.cfg.SourceTimeout
		flow.adoptRecord(ev.fl)
		e.inflight.Add(1)
		// Re-queue the source first, then run the new flow inline until
		// it blocks: the next dispatch iteration polls the source again,
		// so flow execution and admission interleave at flow granularity.
		e.queue.push(ev)
		e.run(flow, ev.st.tbl, ev.st.tbl.g.Entry, rec, 0)
	case errors.Is(err, ErrNoData):
		ev.fl.releaseRecord() // a drawn-but-unused record goes back now
		// Guard against sources that return early instead of waiting
		// out their deadline: an idle queue would otherwise hot-spin.
		// The guard sleep is interrupted by new work arriving.
		if !morePending && e.queue.len() == 0 {
			if rest := e.s.cfg.SourceTimeout - time.Since(t0); rest > 0 {
				e.sleepWakeable(rest)
			}
		}
		e.queue.push(ev)
	case errors.Is(err, ErrStop),
		errors.Is(err, context.Canceled),
		errors.Is(err, context.DeadlineExceeded):
		e.retireSource(ev)
	default:
		e.s.stats.NodeErrors.Add(1)
		e.retireSource(ev)
	}
}

// sleepWakeable waits without outliving the run context, returning early
// when new work arrives.
func (e *eventEngine) sleepWakeable(d time.Duration) {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
	case <-e.wake:
	case <-e.ctx.Done():
	}
}

// run executes consecutive vertices of one flow inline — run-to-block —
// returning only when the flow offloads a blocking node, parks on a
// contended constraint, or terminates. acquired carries a parked acquire
// vertex's progress through its constraint set.
func (e *eventEngine) run(fl *Flow, tbl *graphTable, v *core.FlatNode, rec Record, acquired int) {
	s := e.s
	for {
		switch v.Kind {
		case core.FlatExec:
			info := &tbl.info[v.ID]
			if info.blocking {
				// Capture the node's state and move on; an async worker
				// will run it and queue the continuation (§3.2.2).
				e.asyncq.push(event{kind: evStep, fl: fl, tbl: tbl, v: v, rec: rec})
				return
			}
			out, err := s.callNode(fl, tbl, v, rec)
			r := s.afterExec(fl, v, rec, out, err)
			v, rec = r.next, r.rec

		case core.FlatBranch:
			r := s.branchVertex(fl, tbl, v, rec)
			if r.terminal {
				e.inflight.Add(-1)
				s.freeFlow(fl)
				return
			}
			v, rec = r.next, r.rec

		case core.FlatAcquire:
			info := &tbl.info[v.ID]
			for acquired < len(info.cons) {
				rc := info.cons[acquired]
				// Uncontended grants take the closure-free fast path;
				// otherwise park the flow on the lock's FIFO queue via
				// its embedded waiter node — the grant re-queues the
				// continuation, and neither side allocates. Arrival-
				// order grants keep timer flows from being starved by a
				// stream of later acquirers.
				if s.locks.tryAcquireResolved(fl, rc) {
					acquired++
					continue
				}
				fl.lw.tbl, fl.lw.v, fl.lw.rec, fl.lw.acquired = tbl, v, rec, acquired+1
				if !s.locks.parkWaiter(fl, rc, e) {
					return
				}
				acquired++
			}
			acquired = 0
			fl.path += v.Out[0].Inc
			v = v.Out[0].To

		case core.FlatRelease:
			s.locks.releaseN(fl, len(v.Cons))
			fl.path += v.Out[0].Inc
			v = v.Out[0].To

		case core.FlatExit, core.FlatError:
			s.finishFlow(fl, tbl.g, v)
			e.inflight.Add(-1)
			s.freeFlow(fl)
			return
		}
	}
}

// resumeGranted re-queues a lock-granted flow's continuation: the
// engine's side of the allocation-free contended acquire (parkWaiter).
func (e *eventEngine) resumeGranted(n *lockWaiterNode, by *Flow) {
	ev := event{kind: evStep, fl: n.fl, tbl: n.tbl, v: n.v, rec: n.rec, acquired: n.acquired}
	n.rec = nil // the event owns the record now; drop the node's pin
	e.pushEvent(ev)
}

// asyncWorker runs offloaded blocking nodes and queues their results.
func (e *eventEngine) asyncWorker() {
	for {
		ev, ok := e.asyncq.pop()
		if !ok {
			return
		}
		out, err := e.s.callNode(ev.fl, ev.tbl, ev.v, ev.rec)
		ev.kind = evResult
		ev.out, ev.err = out, err
		e.pushEvent(ev)
	}
}
