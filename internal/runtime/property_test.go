package runtime

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync/atomic"
	"testing"
	"testing/quick"
	"time"
)

// TestFlowConservationProperty: for randomized programs (branch fan-out,
// failure rates, constraints) on every engine, flows are conserved:
// Started == Completed + Errored + Dropped, and all locks end free.
func TestFlowConservationProperty(t *testing.T) {
	f := func(nCases uint8, failMod uint8, engine uint8, withConstraint bool) bool {
		cases := int(nCases%3) + 2
		kind := EngineKind(engine % 3)

		var sb strings.Builder
		sb.WriteString("Gen () => (int v);\nPre (int v) => (int v);\nPost (int v) => ();\n")
		for i := 0; i < cases; i++ {
			fmt.Fprintf(&sb, "Work%c (int v) => (int v);\n", 'A'+i)
		}
		sb.WriteString("source Gen => F;\nF = Pre -> Disp -> Post;\n")
		for i := 0; i < cases; i++ {
			fmt.Fprintf(&sb, "typedef t%d P%d;\n", i, i)
		}
		for i := 0; i < cases; i++ {
			if i == cases-1 {
				fmt.Fprintf(&sb, "Disp:[_] = Work%c;\n", 'A'+i)
			} else {
				fmt.Fprintf(&sb, "Disp:[t%d] = Work%c;\n", i, 'A'+i)
			}
		}
		if withConstraint {
			sb.WriteString("atomic Pre:{shared};\natomic Post:{shared?};\n")
		}

		p := compileSrc(t, sb.String())
		const total = 60
		var produced atomic.Int64
		b := NewBindings().
			BindSource("Gen", func(fl *Flow) (Record, error) {
				v := produced.Add(1)
				if v > total {
					return nil, ErrStop
				}
				return Record{int(v)}, nil
			}).
			BindNode("Pre", func(fl *Flow, in Record) (Record, error) {
				if failMod > 0 && in[0].(int)%int(failMod%7+2) == 0 {
					return nil, errors.New("injected failure")
				}
				return in, nil
			}).
			BindNode("Post", func(fl *Flow, in Record) (Record, error) { return nil, nil })
		for i := 0; i < cases; i++ {
			i := i
			b.BindNode(fmt.Sprintf("Work%c", 'A'+i), func(fl *Flow, in Record) (Record, error) {
				return in, nil
			})
			b.BindPredicate(fmt.Sprintf("P%d", i), func(v any) bool {
				return v.(int)%cases == i
			})
		}

		s, err := NewServer(p, b, Config{Kind: kind, PoolSize: 4, SourceTimeout: time.Millisecond})
		if err != nil {
			t.Logf("NewServer: %v", err)
			return false
		}
		if err := s.Run(context.Background()); err != nil {
			t.Logf("Run: %v", err)
			return false
		}
		st := s.Stats().Snapshot()
		if st.Started != total {
			t.Logf("started = %d", st.Started)
			return false
		}
		if st.Completed+st.Errored+st.Dropped != st.Started {
			t.Logf("conservation violated: %+v", st)
			return false
		}
		// Locks must end free.
		if withConstraint {
			fl := s.newFlow(context.Background(), 0)
			l := s.locks.lock(lockKey{name: "shared"})
			if !l.tryAcquire(fl, true) {
				t.Log("lock leaked")
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
