package runtime

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"github.com/flux-lang/flux/internal/core"
)

// EngineKind selects one of the three runtime systems of §3.2, or any
// engine registered through RegisterEngine.
type EngineKind int

const (
	// ThreadPerFlow starts a goroutine for every data flow (the paper's
	// one-to-one thread server).
	ThreadPerFlow EngineKind = iota
	// ThreadPool services flows with a fixed pool of goroutines; flows
	// arriving when all workers are busy queue in FIFO order.
	ThreadPool
	// EventDriven runs every node activation as an event on a dispatcher
	// that never blocks: blocking nodes are offloaded to an async-I/O
	// pool and their continuations re-queued on completion (§3.2.2).
	EventDriven
	// WorkStealing is the multicore evolution of EventDriven: one
	// dispatcher per core (default GOMAXPROCS), each owning a local run
	// deque — LIFO for the owner, stolen FIFO by idle peers — so
	// throughput scales with dispatcher count instead of collapsing on
	// the shared event queue's mutex.
	WorkStealing
)

// String returns the engine's registered name; ParseEngineKind inverts
// it. Unregistered kinds format as "engine(N)".
func (k EngineKind) String() string {
	if e, ok := lookupEngine(k); ok {
		return e.name
	}
	return fmt.Sprintf("engine(%d)", int(k))
}

// Profiler observes flow and node completions. The profile package
// provides the standard implementation; the zero cost of a nil Profiler
// keeps uninstrumented servers fast.
//
// Profiler predates the Observer plane and remains as the §5.2-shaped
// subset of it: a configured Profiler joins the plane through the
// ObserveProfiler adapter and also sees dropped flows.
type Profiler interface {
	// FlowDone records a completed flow: its graph, Ball-Larus path ID,
	// and elapsed wall time. Flows that end at the error terminal are
	// recorded too — error paths are paths (§5.2).
	FlowDone(g *core.FlatGraph, pathID uint64, elapsed time.Duration)
	// NodeDone records one node execution and its duration.
	NodeDone(g *core.FlatGraph, v *core.FlatNode, elapsed time.Duration)
}

// Config tunes a Server. The zero value is usable: thread-per-flow with
// no observer. The functional options (WithEngine, WithPoolSize, ...)
// are the public way to populate one.
type Config struct {
	Kind EngineKind

	// PoolSize is the worker count for ThreadPool (default
	// 4×GOMAXPROCS).
	PoolSize int

	// Dispatchers is the event-loop count for EventDriven (default 1,
	// the paper's single-threaded event server) and the dispatcher count
	// for WorkStealing (default GOMAXPROCS, one per core).
	Dispatchers int

	// AsyncWorkers sizes the event engine's blocking-call offload pool
	// (default 16).
	AsyncWorkers int

	// SourceTimeout is the polling deadline handed to sources by the
	// event engine (default 20ms). Larger values reproduce the
	// low-concurrency latency "hiccup" of Figure 3 more visibly.
	SourceTimeout time.Duration

	// Profiler, when non-nil, receives flow and node completions. It is
	// folded into the observer plane at construction.
	Profiler Profiler

	// Observer, when non-nil, receives flow terminals (including drops
	// and errors), node completions, and queue-depth samples.
	Observer Observer

	// KeepAlive keeps the server admitting Inject flows after all
	// sources report ErrStop; the server then runs until Shutdown.
	KeepAlive bool

	// QueueSample is the engines' queue-depth sampling period for the
	// observer (default 100ms; sampling runs only with an observer).
	QueueSample time.Duration
}

func (c Config) withDefaults() Config {
	if c.PoolSize <= 0 {
		c.PoolSize = 4 * runtime.GOMAXPROCS(0)
	}
	if c.Dispatchers <= 0 {
		if c.Kind == WorkStealing {
			c.Dispatchers = runtime.GOMAXPROCS(0)
		} else {
			c.Dispatchers = 1
		}
	}
	if c.AsyncWorkers <= 0 {
		c.AsyncWorkers = 16
	}
	if c.SourceTimeout <= 0 {
		c.SourceTimeout = 20 * time.Millisecond
	}
	if c.QueueSample <= 0 {
		c.QueueSample = 100 * time.Millisecond
	}
	return c
}

// Stats counts flow outcomes; all fields are updated atomically while the
// server runs and may be read at any time. Stats is the always-on core
// of the observer plane: the server maintains these counters itself at
// zero allocation, and anything richer attaches as an Observer.
type Stats struct {
	Started     atomic.Uint64 // flows initiated by sources or Inject
	Completed   atomic.Uint64 // flows reaching the exit terminal
	Errored     atomic.Uint64 // flows reaching the error terminal
	Dropped     atomic.Uint64 // flows with no matching dispatch case
	NodeErrors  atomic.Uint64 // node invocations returning an error
	ArityErrors atomic.Uint64 // node outputs with the wrong arity
}

// Snapshot returns a plain-struct copy for reporting.
func (s *Stats) Snapshot() StatsSnapshot {
	return StatsSnapshot{
		Started:     s.Started.Load(),
		Completed:   s.Completed.Load(),
		Errored:     s.Errored.Load(),
		Dropped:     s.Dropped.Load(),
		NodeErrors:  s.NodeErrors.Load(),
		ArityErrors: s.ArityErrors.Load(),
	}
}

// StatsSnapshot is a point-in-time copy of Stats.
type StatsSnapshot struct {
	Started, Completed, Errored, Dropped, NodeErrors, ArityErrors uint64
}

// compiledCase is a dispatch case with resolved predicate functions.
type compiledCase struct {
	checks []predCheck
	edge   *core.FlatEdge
}

type predCheck struct {
	arg int
	fn  PredicateFunc
}

// vertexInfo is the pre-resolved execution state for one flat-graph
// vertex, stored in a per-graph slice indexed by core.FlatNode.ID. The
// hot path indexes this table instead of chasing map buckets keyed by
// vertex pointer.
type vertexInfo struct {
	// exec vertices
	fn       NodeFunc
	blocking bool
	outArity int
	isSink   bool
	// branch vertices
	cases []compiledCase
	// acquire/release vertices: constraints with global locks resolved
	// to their *rwReentrant once, at server construction.
	cons []resolvedCon
}

// graphTable pairs a flat graph with its dense vertex-info table.
type graphTable struct {
	g    *core.FlatGraph
	info []vertexInfo
}

// Server executes one compiled Flux program on a chosen engine.
//
// A server is inert after construction. Start launches its engine and
// returns; Wait blocks until the run ends (sources exhausted, context
// cancelled, or Shutdown); Shutdown stops admission and drains in-flight
// flows under a deadline; Inject admits a record from outside the
// program's own sources. Run is Start followed by Wait.
type Server struct {
	prog  *core.Program
	b     *Bindings
	cfg   Config
	locks *LockManager
	stats Stats

	// obs is the observer plane, resolved once at construction (nil
	// when neither Observer nor Profiler is configured) so the hot path
	// pays a single nil check.
	obs Observer

	// srcs lists the per-source execution state in declaration order.
	srcs []*sourceState

	// srcByName indexes srcs for Inject.
	srcByName map[string]*sourceState

	// tables holds one dense vertex table per flat graph.
	tables map[*core.FlatGraph]*graphTable

	// live is the running engine and admission context, published
	// atomically at Start so the Inject hot path reads both with one
	// lock-free load instead of taking the lifecycle mutex.
	live atomic.Pointer[liveEngine]

	// Lifecycle state, guarded by mu.
	mu     sync.Mutex
	engine Engine
	runCtx context.Context
	cancel context.CancelFunc
	done   chan struct{}
	runErr error
}

// liveEngine snapshots what external admission needs from a started
// server: the engine, its record-submission fast path (pre-asserted, so
// the per-event path performs no interface type switch), and the run
// context injected flows inherit.
type liveEngine struct {
	eng Engine
	rs  recordSubmitter // non-nil when eng defers flow construction
	ctx context.Context
}

type sourceState struct {
	tbl     *graphTable
	name    string
	fn      SourceFunc
	session SessionFunc // nil when the source has no session function

	// recPool recycles the source's records across flows (Flow.NewRecord
	// draws from it; the terminal free returns to it), so a steady-state
	// source produces records without allocating.
	recPool sync.Pool
}

// NewServer validates bindings against the program and prepares the
// dispatch tables. The returned server is inert until Start or Run.
func NewServer(prog *core.Program, b *Bindings, cfg Config) (*Server, error) {
	if err := b.Validate(prog); err != nil {
		return nil, err
	}
	s := &Server{
		prog:      prog,
		b:         b,
		cfg:       cfg.withDefaults(),
		locks:     NewLockManager(),
		obs:       MultiObserver(cfg.Observer, ObserveProfiler(cfg.Profiler)),
		srcByName: make(map[string]*sourceState),
		tables:    make(map[*core.FlatGraph]*graphTable),
	}
	for _, src := range prog.Sources {
		g := prog.Graphs[src.Node.Name]
		tbl, err := s.buildTable(g)
		if err != nil {
			return nil, err
		}
		st := &sourceState{tbl: tbl, name: src.Node.Name, fn: b.sources[src.Node.Name]}
		st.recPool.New = func() any { return &pooledRec{pool: &st.recPool} }
		if fname, ok := prog.Sessions[src.Node.Name]; ok {
			st.session = b.sessions[fname]
		}
		s.srcs = append(s.srcs, st)
		s.srcByName[st.name] = st
	}
	return s, nil
}

// buildTable resolves every vertex of a graph into its dense info slot.
// Graph flattening assigns IDs densely (Nodes[v.ID] == v), so the table
// is exactly len(g.Nodes) entries.
func (s *Server) buildTable(g *core.FlatGraph) (*graphTable, error) {
	if tbl, ok := s.tables[g]; ok {
		return tbl, nil
	}
	tbl := &graphTable{g: g, info: make([]vertexInfo, len(g.Nodes))}
	for _, v := range g.Nodes {
		vi := &tbl.info[v.ID]
		switch v.Kind {
		case core.FlatExec:
			vi.fn = s.b.nodes[v.Node.Name]
			vi.blocking = s.b.blocking[v.Node.Name]
			vi.outArity = len(v.Node.Out)
			vi.isSink = v.Node.IsSink()
		case core.FlatBranch:
			cc, err := s.compileBranch(v)
			if err != nil {
				return nil, err
			}
			vi.cases = cc
		case core.FlatAcquire:
			// Release vertices need only the constraint count (the held
			// stack's tail is the set being released), so resolution is
			// acquire-side only.
			vi.cons = make([]resolvedCon, len(v.Cons))
			for i, c := range v.Cons {
				vi.cons[i] = s.locks.Resolve(c)
			}
		}
	}
	s.tables[g] = tbl
	return tbl, nil
}

func (s *Server) compileBranch(v *core.FlatNode) ([]compiledCase, error) {
	n := v.Node
	out := make([]compiledCase, 0, len(n.Cases))
	for i, cs := range n.Cases {
		c := compiledCase{edge: v.Out[i]}
		for arg, elem := range cs.Pattern {
			if elem.Wildcard {
				continue
			}
			td := s.prog.Typedefs[elem.Type]
			fn := s.b.preds[td.Func]
			if fn == nil {
				return nil, &BindingError{What: "predicate", Name: td.Func, Msg: "not bound"}
			}
			c.checks = append(c.checks, predCheck{arg: arg, fn: fn})
		}
		out = append(out, c)
	}
	return out, nil
}

// Stats exposes the server's live counters.
func (s *Server) Stats() *Stats { return &s.stats }

// Program returns the compiled program the server executes.
func (s *Server) Program() *core.Program { return s.prog }

// --- lifecycle -----------------------------------------------------------

// Start launches the configured engine and returns once its source
// loops and workers are running. The context governs admission: when it
// is cancelled sources stop, in-flight flows drain, and Wait returns.
// Starting a started (or finished) server is an error; servers are
// single-run.
func (s *Server) Start(ctx context.Context) error {
	entry, ok := lookupEngine(s.cfg.Kind)
	if !ok {
		return fmt.Errorf("flux/runtime: unknown engine %v", s.cfg.Kind)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.engine != nil {
		return fmt.Errorf("flux/runtime: server already started")
	}
	runCtx, cancel := context.WithCancel(ctx)
	eng := entry.factory(s)
	if err := eng.Start(runCtx); err != nil {
		cancel()
		return err
	}
	s.engine = eng
	s.runCtx = runCtx
	s.cancel = cancel
	le := &liveEngine{eng: eng, ctx: runCtx}
	le.rs, _ = eng.(recordSubmitter)
	s.live.Store(le)
	s.done = make(chan struct{})
	done := s.done
	go func() {
		// Natural completion (every source ErrStop, no keep-alive) and
		// cancellation both land here: wait for full quiescence, then
		// publish the run error — the caller context's error, so a
		// deliberate Shutdown reads as a clean (nil) run.
		_ = eng.Drain(context.Background())
		s.mu.Lock()
		s.runErr = ctx.Err()
		s.mu.Unlock()
		cancel()
		close(done)
	}()
	return nil
}

// Wait blocks until the run ends — every source exhausted and in-flight
// flows drained, the Start context cancelled, or Shutdown complete —
// and returns the run's error: the Start context's error, or nil after
// a clean finish or deliberate Shutdown.
func (s *Server) Wait() error {
	s.mu.Lock()
	done := s.done
	s.mu.Unlock()
	if done == nil {
		return ErrNotStarted
	}
	<-done
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.runErr
}

// Shutdown gracefully stops the server: sources stop originating flows,
// Inject stops admitting, and in-flight flows run to their terminals.
// It blocks until the drain completes or ctx expires, returning
// ctx.Err() in the latter case (flows keep draining in the background;
// Wait still reports the final outcome). Shutdown is safe to call
// concurrently and more than once.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	eng, cancel := s.engine, s.cancel
	s.mu.Unlock()
	if eng == nil {
		return ErrNotStarted
	}
	cancel()
	return eng.Drain(ctx)
}

// Inject admits one record on the named source's flow graph, as if that
// source had produced it — the external-admission path for keep-alive
// re-registration, macro benchmark harnesses, or any caller outside the
// program's own sources. The source's session function, if any, applies.
// It returns ErrServerClosed once the server no longer admits flows and
// ErrNotStarted before Start. Callers injecting per event should resolve
// a SourceHandle once instead, skipping the name lookup.
func (s *Server) Inject(source string, rec Record) error {
	st, ok := s.srcByName[source]
	if !ok {
		return fmt.Errorf("flux/runtime: no source %q to inject into", source)
	}
	return s.injectRecord(st, rec)
}

// SourceHandle is a pre-resolved admission handle for one source: the
// per-event external-admission fast path. Resolving once hoists the
// source-name map lookup out of the per-record Inject, and the engine
// snapshot behind it is a single atomic load, so a connection plane
// injecting every request pays no lock and no allocation here.
type SourceHandle struct {
	s  *Server
	st *sourceState
}

// Source resolves a source by name for repeated injection. The handle
// is valid for the server's lifetime and safe for concurrent use; it
// can be resolved before Start (Inject then reports ErrNotStarted until
// the server runs).
func (s *Server) Source(name string) (*SourceHandle, error) {
	st, ok := s.srcByName[name]
	if !ok {
		return nil, fmt.Errorf("flux/runtime: no source %q to inject into", name)
	}
	return &SourceHandle{s: s, st: st}, nil
}

// Name returns the handle's source name.
func (h *SourceHandle) Name() string { return h.st.name }

// Inject admits one record on the handle's source graph, exactly as
// Server.Inject does for the same source.
func (h *SourceHandle) Inject(rec Record) error {
	return h.s.injectRecord(h.st, rec)
}

// injectRecord is the engine-facing admission path shared by Inject and
// SourceHandle.Inject.
func (s *Server) injectRecord(st *sourceState, rec Record) error {
	le := s.live.Load()
	if le == nil {
		return ErrNotStarted
	}
	if le.rs != nil {
		// The engine builds the flow itself (worker-side); hand it the
		// bare record so the session function runs exactly once, there.
		if err := le.rs.submitRecord(st, rec); err != nil {
			return err
		}
	} else {
		fl := s.newFlow(le.ctx, st.sessionOf(rec))
		fl.src = st
		// Submit takes ownership of the flow, success or failure.
		if err := le.eng.Submit(fl, rec); err != nil {
			return err
		}
	}
	s.stats.Started.Add(1)
	return nil
}

// Run executes the program until the context is cancelled or every
// source reports ErrStop, then drains in-flight flows: Start followed
// by Wait.
func (s *Server) Run(ctx context.Context) error {
	if err := s.Start(ctx); err != nil {
		return err
	}
	return s.Wait()
}

// flowPool recycles Flow objects across requests; each pooled flow keeps
// its held-lock stack's backing array, so a steady-state server runs
// request flows without a single heap allocation in the coordination
// layer.
var flowPool = sync.Pool{
	New: func() any { return &Flow{held: make([]heldToken, 0, 4)} },
}

// newFlow creates (or recycles) the per-request context.
func (s *Server) newFlow(ctx context.Context, session uint64) *Flow {
	fl := flowPool.Get().(*Flow)
	fl.Ctx = ctx
	fl.Session = session
	fl.srv = s
	if s.obs != nil {
		fl.start = time.Now()
	}
	return fl
}

// freeFlow returns a retired flow to the pool. Callers guarantee no
// reference survives: the flow has reached a terminal (all locks
// released) or was a source poll context that is no longer in use.
func (s *Server) freeFlow(fl *Flow) {
	// The flow's terminal reclaims its pooled source record; the values
	// are released for GC, the backing array is reused.
	fl.releaseRecord()
	fl.Ctx = nil
	fl.Session = 0
	fl.SourceTimeout = 0
	fl.Wake = nil
	fl.path = 0
	fl.srv = nil
	fl.src = nil
	fl.disp = nil
	// The embedded waiter node is dirty only if the flow ever parked on
	// a contended constraint; most flows never do, so test one field
	// instead of unconditionally zeroing the whole node.
	if fl.lw.fl != nil {
		fl.lw = lockWaiterNode{}
	}
	fl.held = fl.held[:0]
	flowPool.Put(fl)
}

// sessionOf computes the session id for a fresh source record.
func (st *sourceState) sessionOf(rec Record) uint64 {
	if st.session == nil {
		return 0
	}
	return st.session(rec)
}

// --- shared per-vertex execution -----------------------------------------

// stepResult describes the outcome of executing one vertex.
type stepResult struct {
	next     *core.FlatNode
	rec      Record
	terminal bool
}

// callNode invokes an exec vertex's node function with observation and
// arity validation. It performs no flow-state transition, so the event
// engine can run it on an async worker while the dispatcher continues.
func (s *Server) callNode(fl *Flow, tbl *graphTable, v *core.FlatNode, rec Record) (Record, error) {
	info := &tbl.info[v.ID]
	var t0 time.Time
	obs := s.obs
	if obs != nil {
		t0 = time.Now()
	}
	out, err := info.fn(fl, rec)
	if obs != nil {
		obs.NodeDone(tbl.g, v, time.Since(t0))
	}
	if err == nil && !info.isSink && len(out) != info.outArity {
		s.stats.ArityErrors.Add(1)
		err = fmt.Errorf("flux/runtime: node %q returned %d values, signature declares %d",
			v.Node.Name, len(out), info.outArity)
	}
	return out, err
}

// afterExec performs the post-execution transition for an exec vertex:
// the normal edge on success, the error edge (with lock unwind) on
// failure, or the folded handler edge when both coincide.
func (s *Server) afterExec(fl *Flow, v *core.FlatNode, in, out Record, err error) stepResult {
	if err != nil {
		s.stats.NodeErrors.Add(1)
		if v.ErrEdge != nil {
			// The flow abandons its bracket structure: release every
			// held lock, then continue at the handler (or the error
			// terminal) with the failing node's input record.
			fl.path += v.ErrEdge.Inc
			s.locks.ReleaseAll(fl)
			return stepResult{next: v.ErrEdge.To, rec: in}
		}
		// Folded edge: success and failure continue identically.
		fl.path += v.Out[0].Inc
		return stepResult{next: v.Out[0].To, rec: in}
	}
	fl.path += v.Out[0].Inc
	return stepResult{next: v.Out[0].To, rec: out}
}

// execVertex is the blocking engines' combined call-and-transition.
func (s *Server) execVertex(fl *Flow, tbl *graphTable, v *core.FlatNode, rec Record) stepResult {
	out, err := s.callNode(fl, tbl, v, rec)
	return s.afterExec(fl, v, rec, out, err)
}

// branchVertex evaluates dispatch cases in order and follows the first
// match (§2.3). A record matching no case terminates the flow ("dropped");
// the drop is observed like an error path, with the partial Ball-Larus
// register identifying the route to the unmatched dispatch.
func (s *Server) branchVertex(fl *Flow, tbl *graphTable, v *core.FlatNode, rec Record) stepResult {
	for _, c := range tbl.info[v.ID].cases {
		matched := true
		for _, chk := range c.checks {
			if chk.arg >= len(rec) || !chk.fn(rec[chk.arg]) {
				matched = false
				break
			}
		}
		if matched {
			fl.path += c.edge.Inc
			return stepResult{next: c.edge.To, rec: rec}
		}
	}
	s.stats.Dropped.Add(1)
	s.locks.ReleaseAll(fl)
	if obs := s.obs; obs != nil {
		obs.FlowDone(tbl.g, fl.path, FlowDropped, time.Since(fl.start))
	}
	return stepResult{terminal: true}
}

// finishFlow handles the exit and error terminals.
func (s *Server) finishFlow(fl *Flow, g *core.FlatGraph, v *core.FlatNode) {
	// Defensive: a well-formed graph releases everything on the normal
	// path and the error transition releases the rest, but a dropped or
	// malformed flow must never leak locks.
	s.locks.ReleaseAll(fl)
	outcome := FlowCompleted
	switch v.Kind {
	case core.FlatExit:
		s.stats.Completed.Add(1)
	case core.FlatError:
		s.stats.Errored.Add(1)
		outcome = FlowErrored
	}
	if obs := s.obs; obs != nil {
		obs.FlowDone(g, fl.path, outcome, time.Since(fl.start))
	}
}

// runFlow walks a flow to completion, blocking on locks as needed, and
// retires the flow (returning it to the pool). Used by the threaded and
// pool engines.
func (s *Server) runFlow(fl *Flow, tbl *graphTable, rec Record) {
	v := tbl.g.Entry
	for {
		switch v.Kind {
		case core.FlatExec:
			r := s.execVertex(fl, tbl, v, rec)
			v, rec = r.next, r.rec
		case core.FlatBranch:
			r := s.branchVertex(fl, tbl, v, rec)
			if r.terminal {
				s.freeFlow(fl)
				return
			}
			v, rec = r.next, r.rec
		case core.FlatAcquire:
			for _, rc := range tbl.info[v.ID].cons {
				s.locks.acquireResolved(fl, rc)
			}
			fl.path += v.Out[0].Inc
			v = v.Out[0].To
		case core.FlatRelease:
			s.locks.releaseN(fl, len(v.Cons))
			fl.path += v.Out[0].Inc
			v = v.Out[0].To
		case core.FlatExit, core.FlatError:
			s.finishFlow(fl, tbl.g, v)
			s.freeFlow(fl)
			return
		}
	}
}
