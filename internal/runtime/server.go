package runtime

import (
	"context"
	"fmt"
	"runtime"
	"sync/atomic"
	"time"

	"github.com/flux-lang/flux/internal/core"
)

// EngineKind selects one of the three runtime systems of §3.2.
type EngineKind int

const (
	// ThreadPerFlow starts a goroutine for every data flow (the paper's
	// one-to-one thread server).
	ThreadPerFlow EngineKind = iota
	// ThreadPool services flows with a fixed pool of goroutines; flows
	// arriving when all workers are busy queue in FIFO order.
	ThreadPool
	// EventDriven runs every node activation as an event on a dispatcher
	// that never blocks: blocking nodes are offloaded to an async-I/O
	// pool and their continuations re-queued on completion (§3.2.2).
	EventDriven
)

func (k EngineKind) String() string {
	switch k {
	case ThreadPerFlow:
		return "thread"
	case ThreadPool:
		return "threadpool"
	case EventDriven:
		return "event"
	default:
		return fmt.Sprintf("engine(%d)", int(k))
	}
}

// Profiler observes flow and node completions. The profile package
// provides the standard implementation; the zero cost of a nil Profiler
// keeps uninstrumented servers fast.
type Profiler interface {
	// FlowDone records a completed flow: its graph, Ball-Larus path ID,
	// and elapsed wall time. Flows that end at the error terminal are
	// recorded too — error paths are paths (§5.2).
	FlowDone(g *core.FlatGraph, pathID uint64, elapsed time.Duration)
	// NodeDone records one node execution and its duration.
	NodeDone(g *core.FlatGraph, v *core.FlatNode, elapsed time.Duration)
}

// Config tunes a Server. The zero value is usable: thread-per-flow with
// no profiler.
type Config struct {
	Kind EngineKind

	// PoolSize is the worker count for ThreadPool (default
	// 4×GOMAXPROCS).
	PoolSize int

	// Dispatchers is the event-loop count for EventDriven (default 1,
	// the paper's single-threaded event server).
	Dispatchers int

	// AsyncWorkers sizes the event engine's blocking-call offload pool
	// (default 16).
	AsyncWorkers int

	// SourceTimeout is the polling deadline handed to sources by the
	// event engine (default 20ms). Larger values reproduce the
	// low-concurrency latency "hiccup" of Figure 3 more visibly.
	SourceTimeout time.Duration

	// Profiler, when non-nil, receives flow and node completions.
	Profiler Profiler
}

func (c Config) withDefaults() Config {
	if c.PoolSize <= 0 {
		c.PoolSize = 4 * runtime.GOMAXPROCS(0)
	}
	if c.Dispatchers <= 0 {
		c.Dispatchers = 1
	}
	if c.AsyncWorkers <= 0 {
		c.AsyncWorkers = 16
	}
	if c.SourceTimeout <= 0 {
		c.SourceTimeout = 20 * time.Millisecond
	}
	return c
}

// Stats counts flow outcomes; all fields are updated atomically while the
// server runs and may be read at any time.
type Stats struct {
	Started     atomic.Uint64 // flows initiated by sources
	Completed   atomic.Uint64 // flows reaching the exit terminal
	Errored     atomic.Uint64 // flows reaching the error terminal
	Dropped     atomic.Uint64 // flows with no matching dispatch case
	NodeErrors  atomic.Uint64 // node invocations returning an error
	ArityErrors atomic.Uint64 // node outputs with the wrong arity
}

// Snapshot returns a plain-struct copy for reporting.
func (s *Stats) Snapshot() StatsSnapshot {
	return StatsSnapshot{
		Started:     s.Started.Load(),
		Completed:   s.Completed.Load(),
		Errored:     s.Errored.Load(),
		Dropped:     s.Dropped.Load(),
		NodeErrors:  s.NodeErrors.Load(),
		ArityErrors: s.ArityErrors.Load(),
	}
}

// StatsSnapshot is a point-in-time copy of Stats.
type StatsSnapshot struct {
	Started, Completed, Errored, Dropped, NodeErrors, ArityErrors uint64
}

// compiledCase is a dispatch case with resolved predicate functions.
type compiledCase struct {
	checks []predCheck
	edge   *core.FlatEdge
}

type predCheck struct {
	arg int
	fn  PredicateFunc
}

// execInfo caches the lookup for one exec vertex.
type execInfo struct {
	fn       NodeFunc
	blocking bool
	outArity int
	isSink   bool
}

// Server executes one compiled Flux program on a chosen engine.
type Server struct {
	prog  *core.Program
	b     *Bindings
	cfg   Config
	locks *LockManager
	stats Stats

	// srcs lists the per-source execution state in declaration order.
	srcs []*sourceState

	execs    map[*core.FlatNode]*execInfo
	branches map[*core.FlatNode][]compiledCase
}

type sourceState struct {
	graph   *core.FlatGraph
	name    string
	fn      SourceFunc
	session SessionFunc // nil when the source has no session function
}

// NewServer validates bindings against the program and prepares the
// dispatch tables. The returned server is inert until Run.
func NewServer(prog *core.Program, b *Bindings, cfg Config) (*Server, error) {
	if err := b.Validate(prog); err != nil {
		return nil, err
	}
	s := &Server{
		prog:     prog,
		b:        b,
		cfg:      cfg.withDefaults(),
		locks:    NewLockManager(),
		execs:    make(map[*core.FlatNode]*execInfo),
		branches: make(map[*core.FlatNode][]compiledCase),
	}
	for _, src := range prog.Sources {
		g := prog.Graphs[src.Node.Name]
		st := &sourceState{graph: g, name: src.Node.Name, fn: b.sources[src.Node.Name]}
		if fname, ok := prog.Sessions[src.Node.Name]; ok {
			st.session = b.sessions[fname]
		}
		s.srcs = append(s.srcs, st)
		for _, v := range g.Nodes {
			switch v.Kind {
			case core.FlatExec:
				s.execs[v] = &execInfo{
					fn:       b.nodes[v.Node.Name],
					blocking: b.blocking[v.Node.Name],
					outArity: len(v.Node.Out),
					isSink:   v.Node.IsSink(),
				}
			case core.FlatBranch:
				cc, err := s.compileBranch(v)
				if err != nil {
					return nil, err
				}
				s.branches[v] = cc
			}
		}
	}
	return s, nil
}

func (s *Server) compileBranch(v *core.FlatNode) ([]compiledCase, error) {
	n := v.Node
	out := make([]compiledCase, 0, len(n.Cases))
	for i, cs := range n.Cases {
		c := compiledCase{edge: v.Out[i]}
		for arg, elem := range cs.Pattern {
			if elem.Wildcard {
				continue
			}
			td := s.prog.Typedefs[elem.Type]
			fn := s.b.preds[td.Func]
			if fn == nil {
				return nil, &BindingError{What: "predicate", Name: td.Func, Msg: "not bound"}
			}
			c.checks = append(c.checks, predCheck{arg: arg, fn: fn})
		}
		out = append(out, c)
	}
	return out, nil
}

// Stats exposes the server's live counters.
func (s *Server) Stats() *Stats { return &s.stats }

// Program returns the compiled program the server executes.
func (s *Server) Program() *core.Program { return s.prog }

// Run executes the program on the configured engine until the context is
// cancelled and in-flight flows drain, or every source reports ErrStop.
func (s *Server) Run(ctx context.Context) error {
	switch s.cfg.Kind {
	case ThreadPerFlow:
		return s.runThreaded(ctx)
	case ThreadPool:
		return s.runPool(ctx)
	case EventDriven:
		return s.runEvent(ctx)
	default:
		return fmt.Errorf("flux/runtime: unknown engine %v", s.cfg.Kind)
	}
}

// newFlow creates the per-request context.
func (s *Server) newFlow(ctx context.Context, session uint64) *Flow {
	return &Flow{Ctx: ctx, Session: session, start: time.Now(), srv: s}
}

// sessionOf computes the session id for a fresh source record.
func (st *sourceState) sessionOf(rec Record) uint64 {
	if st.session == nil {
		return 0
	}
	return st.session(rec)
}

// --- shared per-vertex execution -----------------------------------------

// stepResult describes the outcome of executing one vertex.
type stepResult struct {
	next     *core.FlatNode
	rec      Record
	terminal bool
}

// callNode invokes an exec vertex's node function with profiling and
// arity validation. It performs no flow-state transition, so the event
// engine can run it on an async worker while the dispatcher continues.
func (s *Server) callNode(fl *Flow, g *core.FlatGraph, v *core.FlatNode, rec Record) (Record, error) {
	info := s.execs[v]
	var t0 time.Time
	prof := s.cfg.Profiler
	if prof != nil {
		t0 = time.Now()
	}
	out, err := info.fn(fl, rec)
	if prof != nil {
		prof.NodeDone(g, v, time.Since(t0))
	}
	if err == nil && !info.isSink && len(out) != info.outArity {
		s.stats.ArityErrors.Add(1)
		err = fmt.Errorf("flux/runtime: node %q returned %d values, signature declares %d",
			v.Node.Name, len(out), info.outArity)
	}
	return out, err
}

// afterExec performs the post-execution transition for an exec vertex:
// the normal edge on success, the error edge (with lock unwind) on
// failure, or the folded handler edge when both coincide.
func (s *Server) afterExec(fl *Flow, g *core.FlatGraph, v *core.FlatNode, in, out Record, err error) stepResult {
	_ = g
	if err != nil {
		s.stats.NodeErrors.Add(1)
		if v.ErrEdge != nil {
			// The flow abandons its bracket structure: release every
			// held lock, then continue at the handler (or the error
			// terminal) with the failing node's input record.
			fl.path += v.ErrEdge.Inc
			s.locks.ReleaseAll(fl)
			return stepResult{next: v.ErrEdge.To, rec: in}
		}
		// Folded edge: success and failure continue identically.
		fl.path += v.Out[0].Inc
		return stepResult{next: v.Out[0].To, rec: in}
	}
	fl.path += v.Out[0].Inc
	return stepResult{next: v.Out[0].To, rec: out}
}

// execVertex is the blocking engines' combined call-and-transition.
func (s *Server) execVertex(fl *Flow, g *core.FlatGraph, v *core.FlatNode, rec Record) stepResult {
	out, err := s.callNode(fl, g, v, rec)
	return s.afterExec(fl, g, v, rec, out, err)
}

// branchVertex evaluates dispatch cases in order and follows the first
// match (§2.3). A record matching no case terminates the flow ("dropped").
func (s *Server) branchVertex(fl *Flow, g *core.FlatGraph, v *core.FlatNode, rec Record) stepResult {
	for _, c := range s.branches[v] {
		matched := true
		for _, chk := range c.checks {
			if chk.arg >= len(rec) || !chk.fn(rec[chk.arg]) {
				matched = false
				break
			}
		}
		if matched {
			fl.path += c.edge.Inc
			return stepResult{next: c.edge.To, rec: rec}
		}
	}
	s.stats.Dropped.Add(1)
	s.locks.ReleaseAll(fl)
	return stepResult{terminal: true}
}

// finishFlow handles the exit and error terminals.
func (s *Server) finishFlow(fl *Flow, g *core.FlatGraph, v *core.FlatNode) {
	// Defensive: a well-formed graph releases everything on the normal
	// path and the error transition releases the rest, but a dropped or
	// malformed flow must never leak locks.
	s.locks.ReleaseAll(fl)
	switch v.Kind {
	case core.FlatExit:
		s.stats.Completed.Add(1)
	case core.FlatError:
		s.stats.Errored.Add(1)
	}
	if prof := s.cfg.Profiler; prof != nil {
		prof.FlowDone(g, fl.path, time.Since(fl.start))
	}
}

// runFlow walks a flow to completion, blocking on locks as needed. Used
// by the threaded and pool engines.
func (s *Server) runFlow(fl *Flow, g *core.FlatGraph, rec Record) {
	v := g.Entry
	for {
		switch v.Kind {
		case core.FlatExec:
			r := s.execVertex(fl, g, v, rec)
			v, rec = r.next, r.rec
		case core.FlatBranch:
			r := s.branchVertex(fl, g, v, rec)
			if r.terminal {
				return
			}
			v, rec = r.next, r.rec
		case core.FlatAcquire:
			for _, c := range v.Cons {
				s.locks.Acquire(fl, c)
			}
			fl.path += v.Out[0].Inc
			v = v.Out[0].To
		case core.FlatRelease:
			s.locks.ReleaseSet(fl, v.Cons)
			fl.path += v.Out[0].Inc
			v = v.Out[0].To
		case core.FlatExit, core.FlatError:
			s.finishFlow(fl, g, v)
			return
		}
	}
}
