package runtime

import (
	"strings"
	"time"

	"github.com/flux-lang/flux/internal/core"
)

// FlowOutcome classifies how a flow ended.
type FlowOutcome uint8

const (
	// FlowCompleted means the flow reached the exit terminal.
	FlowCompleted FlowOutcome = iota
	// FlowErrored means the flow reached the error terminal (§2.4).
	FlowErrored
	// FlowDropped means a dispatch vertex matched no case (§2.3) and the
	// flow terminated mid-graph.
	FlowDropped
)

func (o FlowOutcome) String() string {
	switch o {
	case FlowCompleted:
		return "completed"
	case FlowErrored:
		return "errored"
	case FlowDropped:
		return "dropped"
	default:
		return "unknown"
	}
}

// Observer is the server's unified observability plane. It subsumes the
// three observation paths that used to exist separately — the Stats
// counters, the Profiler interface, and ad-hoc metrics plumbing — behind
// one event surface:
//
//   - FlowDone fires at every flow terminal, including error terminals
//     and drops at an unmatched dispatch, with the Ball-Larus path
//     register at the point of termination (§5.2: error paths are
//     paths, and so are dropped ones).
//   - NodeDone fires after every node execution.
//   - QueueDepth delivers periodic samples of an engine's internal
//     queues (thread-pool admission backlog, event queue, async-I/O
//     offload queue), the quantity SEDA-style servers monitor for
//     overload control.
//
// The observer is resolved once at server construction and consulted
// through one nil check on the hot path, so an unobserved server pays
// nothing — the PR 1 zero-allocation path is preserved. Implementations
// must be safe for concurrent use. The Stats counters remain the
// always-on, allocation-free core the server maintains itself;
// ObserveProfiler adapts a Profiler to this interface, and
// MultiObserver fans events out to several observers.
type Observer interface {
	// FlowDone records a terminated flow: its graph, Ball-Larus path ID,
	// outcome, and elapsed wall time.
	FlowDone(g *core.FlatGraph, pathID uint64, outcome FlowOutcome, elapsed time.Duration)
	// NodeDone records one node execution and its duration.
	NodeDone(g *core.FlatGraph, v *core.FlatNode, elapsed time.Duration)
	// QueueDepth records one sample of a named engine queue.
	QueueDepth(kind EngineKind, queue string, depth int)
}

// DropProfiler is the optional extension a Profiler implements to
// record dropped flows separately. A flow dropped at an unmatched
// dispatch carries a partial Ball-Larus register, which can equal the ID
// of a legitimate complete path (the zero-increment suffix reaches a
// terminal), so folding drops into FlowDone would silently corrupt that
// path's §5.2 statistics. The profile package implements this.
type DropProfiler interface {
	// FlowDropped records a flow terminated at an unmatched dispatch
	// case, keyed by its partial path register.
	FlowDropped(g *core.FlatGraph, pathID uint64, elapsed time.Duration)
}

// QueueSteals is the work-stealing engine's cumulative steal count,
// reported through the QueueDepth surface as a monotonic sample. It is
// a counter, not a backlog: admission controllers aggregating queue
// depths must exclude it (CounterQueue reports which names to skip).
const QueueSteals = "steals"

// CtrlStreamPrefix marks the admission controller's decision streams,
// reported through the QueueDepth surface so harnesses can record the
// control trajectory alongside the engine backlogs it reacts to. They
// are gauges of the controller's own state, not backlogs: CounterQueue
// excludes the whole prefix.
const CtrlStreamPrefix = "ctrl/"

// The SLO controller's decision streams (netkit.Controller emits one
// sample of each per control step).
const (
	// CtrlWatermark is the admission gate watermark after the step.
	CtrlWatermark = CtrlStreamPrefix + "watermark"
	// CtrlConnCap is the connection plane's live-conn cap after the step.
	CtrlConnCap = CtrlStreamPrefix + "conncap"
	// CtrlWindowP95 is the window's served p95 in microseconds.
	CtrlWindowP95 = CtrlStreamPrefix + "p95us"
	// CtrlShedRate is the observed shed rate, sheds/sec, over the window.
	CtrlShedRate = CtrlStreamPrefix + "sheds-per-sec"
)

// MsgStreamPrefix marks per-message-type protocol streams (the
// bittorrent server publishes one cumulative counter per wire-message
// kind, plus piece-latency gauges, under this prefix). They ride the
// QueueDepth surface so harnesses record them alongside backlogs and
// ctrl/* trajectories, but they are counters/gauges, not backlogs:
// CounterQueue excludes the whole prefix.
const MsgStreamPrefix = "msg/"

// CounterQueue reports whether a QueueDepth stream name carries a
// monotonic counter or controller gauge rather than a backlog depth.
// Engines adding counter streams to the queue-depth surface must
// register the name here, or every depth-watching admission controller
// would sum them as backlog and trip permanently into overload.
func CounterQueue(queue string) bool {
	return queue == QueueSteals ||
		strings.HasPrefix(queue, CtrlStreamPrefix) ||
		strings.HasPrefix(queue, MsgStreamPrefix)
}

// ShedObserver is the optional Observer extension through which the
// connection plane reports admission drops: connections shed by
// overload control, refused by a bounded queue, or dropped because the
// server stopped admitting. Every shed that used to vanish in a
// `select { ...; default: close() }` is routed here, so overload
// behavior is observable alongside flow terminals and queue depths.
// MultiObserver forwards ConnShed to every member that implements it.
type ShedObserver interface {
	Observer
	// ConnShed records one connection shed by the named server, with a
	// short reason ("overload", "conn-limit", "refused", "closed", ...).
	ConnShed(server, reason string)
}

// ConnShed delivers a shed event to obs if it implements ShedObserver;
// a nil or shed-blind observer ignores it. The connection plane calls
// this so callers need no type assertions of their own.
func ConnShed(obs Observer, server, reason string) {
	if so, ok := obs.(ShedObserver); ok {
		so.ConnShed(server, reason)
	}
}

// profilerObserver adapts the legacy Profiler interface to the Observer
// plane. Dropped flows are recorded like error paths — the partial path
// register identifies the route up to the unmatched dispatch — closing
// the blind spot where drops never reached the profiler. Profilers
// implementing DropProfiler get drops in their own bucket; plain
// Profilers get them through FlowDone.
type profilerObserver struct {
	p Profiler
}

func (po profilerObserver) FlowDone(g *core.FlatGraph, pathID uint64, outcome FlowOutcome, elapsed time.Duration) {
	if outcome == FlowDropped {
		if dp, ok := po.p.(DropProfiler); ok {
			dp.FlowDropped(g, pathID, elapsed)
			return
		}
	}
	po.p.FlowDone(g, pathID, elapsed)
}

func (po profilerObserver) NodeDone(g *core.FlatGraph, v *core.FlatNode, elapsed time.Duration) {
	po.p.NodeDone(g, v, elapsed)
}

func (po profilerObserver) QueueDepth(EngineKind, string, int) {}

// ObserveProfiler adapts a Profiler to the Observer plane. A nil
// profiler yields a nil observer.
func ObserveProfiler(p Profiler) Observer {
	if p == nil {
		return nil
	}
	return profilerObserver{p: p}
}

// multiObserver fans each event out to every member.
type multiObserver []Observer

func (m multiObserver) FlowDone(g *core.FlatGraph, pathID uint64, outcome FlowOutcome, elapsed time.Duration) {
	for _, o := range m {
		o.FlowDone(g, pathID, outcome, elapsed)
	}
}

func (m multiObserver) NodeDone(g *core.FlatGraph, v *core.FlatNode, elapsed time.Duration) {
	for _, o := range m {
		o.NodeDone(g, v, elapsed)
	}
}

func (m multiObserver) QueueDepth(kind EngineKind, queue string, depth int) {
	for _, o := range m {
		o.QueueDepth(kind, queue, depth)
	}
}

// ConnShed fans a shed event out to every member implementing the
// ShedObserver extension, so composition does not hide shed counters.
func (m multiObserver) ConnShed(server, reason string) {
	for _, o := range m {
		ConnShed(o, server, reason)
	}
}

// MultiObserver combines observers into one, skipping nils. It returns
// nil when every argument is nil, preserving the nil-cost fast path.
func MultiObserver(obs ...Observer) Observer {
	var out multiObserver
	for _, o := range obs {
		if o != nil {
			out = append(out, o)
		}
	}
	switch len(out) {
	case 0:
		return nil
	case 1:
		return out[0]
	default:
		return out
	}
}
