package runtime

// Tests for the external-admission fast path: pre-resolved
// SourceHandles, the lock-free Inject hot path, and admission behavior
// around shutdown — the runtime contract the connection plane
// (internal/netkit) is built on.

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// stoppedSourceServer builds a keep-alive server whose only source
// retires immediately, so every flow must enter through Inject — the
// connection-plane shape.
func stoppedSourceServer(t *testing.T, kind EngineKind, sink NodeFunc) *Server {
	t.Helper()
	p := compileSrc(t, pipelineSrc)
	b := NewBindings().
		BindSource("Gen", func(fl *Flow) (Record, error) { return nil, ErrStop }).
		BindNode("Double", nopNode).
		BindNode("Sink", sink)
	s, err := NewServer(p, b, Config{Kind: kind, PoolSize: 4, Dispatchers: 2,
		SourceTimeout: time.Millisecond, KeepAlive: true})
	if err != nil {
		t.Fatalf("NewServer: %v", err)
	}
	return s
}

// TestSourceHandleInjectAllEngines: a pre-resolved handle admits flows
// on every engine exactly as Server.Inject does, with the source
// exhausted and the server held open by keep-alive.
func TestSourceHandleInjectAllEngines(t *testing.T) {
	for _, kind := range []EngineKind{ThreadPerFlow, ThreadPool, EventDriven, WorkStealing} {
		t.Run(kind.String(), func(t *testing.T) {
			var sum atomic.Int64
			s := stoppedSourceServer(t, kind, func(fl *Flow, in Record) (Record, error) {
				sum.Add(int64(in[0].(int)))
				return nil, nil
			})
			h, err := s.Source("Gen")
			if err != nil {
				t.Fatal(err)
			}
			if err := h.Inject(Record{1}); !errors.Is(err, ErrNotStarted) {
				t.Fatalf("Inject before Start = %v, want ErrNotStarted", err)
			}
			ctx, cancel := context.WithCancel(context.Background())
			if err := s.Start(ctx); err != nil {
				t.Fatal(err)
			}
			const total = 200
			for i := 1; i <= total; i++ {
				if err := h.Inject(Record{i}); err != nil {
					t.Fatalf("Inject %d: %v", i, err)
				}
			}
			cancel()
			_ = s.Wait()
			if want := int64(total * (total + 1) / 2); sum.Load() != want {
				t.Errorf("sum = %d, want %d", sum.Load(), want)
			}
			st := s.Stats().Snapshot()
			if st.Started != total || st.Completed != total {
				t.Errorf("stats = %+v, want %d started and completed", st, total)
			}
		})
	}
}

// TestSourceHandleUnknownSource: resolving a nonexistent source fails at
// resolution time, not per event.
func TestSourceHandleUnknownSource(t *testing.T) {
	s := stoppedSourceServer(t, ThreadPerFlow, nopNode)
	if _, err := s.Source("NoSuch"); err == nil {
		t.Fatal("Source on unknown name succeeded")
	}
}

// TestInjectDuringShutdown: injectors hammering a server through its
// shutdown must see clean ErrServerClosed refusals — no panics, no
// hangs — and every accepted flow must drain to a terminal.
func TestInjectDuringShutdown(t *testing.T) {
	for _, kind := range []EngineKind{ThreadPerFlow, ThreadPool, EventDriven, WorkStealing} {
		t.Run(kind.String(), func(t *testing.T) {
			var done atomic.Int64
			s := stoppedSourceServer(t, kind, func(fl *Flow, in Record) (Record, error) {
				done.Add(1)
				return nil, nil
			})
			h, err := s.Source("Gen")
			if err != nil {
				t.Fatal(err)
			}
			if err := s.Start(context.Background()); err != nil {
				t.Fatal(err)
			}

			const injectors = 4
			var wg sync.WaitGroup
			var accepted atomic.Int64
			stop := make(chan struct{})
			for i := 0; i < injectors; i++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					for {
						select {
						case <-stop:
							return
						default:
						}
						err := h.Inject(Record{1})
						switch {
						case err == nil:
							accepted.Add(1)
						case errors.Is(err, ErrServerClosed):
							return
						default:
							t.Errorf("Inject: %v", err)
							return
						}
					}
				}()
			}
			time.Sleep(5 * time.Millisecond) // let injection ramp up
			shCtx, shCancel := context.WithTimeout(context.Background(), 10*time.Second)
			if err := s.Shutdown(shCtx); err != nil {
				t.Errorf("Shutdown: %v", err)
			}
			shCancel()
			close(stop)
			wg.Wait()
			if err := s.Wait(); err != nil {
				t.Errorf("Wait: %v", err)
			}
			st := s.Stats().Snapshot()
			if st.Started != uint64(accepted.Load()) {
				t.Errorf("started = %d, want %d (accepted injects)", st.Started, accepted.Load())
			}
			if got := st.Completed + st.Errored + st.Dropped; got != st.Started {
				t.Errorf("terminals = %d, started = %d: accepted flows lost in shutdown", got, st.Started)
			}
			if done.Load() != int64(st.Completed) {
				t.Errorf("sink ran %d times, completed = %d", done.Load(), st.Completed)
			}
		})
	}
}

// TestInjectSteadyStateAllocFree: the per-event admission path — a
// resolved handle injecting into a running engine — must not allocate
// in steady state on the event and steal engines (the acceptance bar
// BenchmarkInject tracks; the thread engine's per-flow goroutine and
// the pool's FIFO buffering are exempt by design). The assertion allows
// strictly-less-than-one alloc per op: pool warm-up and queue-chunk
// growth amortize to ~0, while a real per-op allocation (a closure, a
// flow build) shows up as >= 1.
func TestInjectSteadyStateAllocFree(t *testing.T) {
	if raceEnabled {
		t.Skip("sync.Pool randomizes under -race; allocation behavior is asserted in the normal build")
	}
	for _, kind := range []EngineKind{EventDriven, WorkStealing} {
		t.Run(kind.String(), func(t *testing.T) {
			s := stoppedSourceServer(t, kind, nopNode)
			h, err := s.Source("Gen")
			if err != nil {
				t.Fatal(err)
			}
			ctx, cancel := context.WithCancel(context.Background())
			if err := s.Start(ctx); err != nil {
				t.Fatal(err)
			}
			defer func() {
				cancel()
				_ = s.Wait()
			}()
			rec := Record{1}
			for i := 0; i < 1000; i++ { // warm the pools
				if err := h.Inject(rec); err != nil {
					t.Fatal(err)
				}
			}
			avg := testing.AllocsPerRun(2000, func() {
				if err := h.Inject(rec); err != nil {
					t.Fatal(err)
				}
			})
			if avg >= 1 {
				t.Errorf("Inject allocates %.2f/op in steady state, want < 1 (hot path regression)", avg)
			}
		})
	}
}
