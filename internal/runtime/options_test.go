package runtime

// Tests for the functional options, Config defaults, and binding
// validation introduced with the lifecycle redesign.

import (
	"errors"
	"runtime"
	"testing"
	"time"
)

// TestConfigDefaults pins the withDefaults contract the options rely on.
func TestConfigDefaults(t *testing.T) {
	c := Config{}.withDefaults()
	if want := 4 * runtime.GOMAXPROCS(0); c.PoolSize != want {
		t.Errorf("PoolSize default = %d, want %d", c.PoolSize, want)
	}
	if c.Dispatchers != 1 {
		t.Errorf("Dispatchers default = %d, want 1", c.Dispatchers)
	}
	if c.AsyncWorkers != 16 {
		t.Errorf("AsyncWorkers default = %d, want 16", c.AsyncWorkers)
	}
	if c.SourceTimeout != 20*time.Millisecond {
		t.Errorf("SourceTimeout default = %v, want 20ms", c.SourceTimeout)
	}
	if c.QueueSample != 100*time.Millisecond {
		t.Errorf("QueueSample default = %v, want 100ms", c.QueueSample)
	}
	if c.Kind != ThreadPerFlow {
		t.Errorf("Kind default = %v, want thread", c.Kind)
	}
	if c.KeepAlive {
		t.Error("KeepAlive defaults on")
	}
	// The work-stealing engine defaults to one dispatcher per core.
	if cs := (Config{Kind: WorkStealing}).withDefaults(); cs.Dispatchers != runtime.GOMAXPROCS(0) {
		t.Errorf("steal Dispatchers default = %d, want GOMAXPROCS (%d)",
			cs.Dispatchers, runtime.GOMAXPROCS(0))
	}
	// Explicit settings survive withDefaults.
	c2 := Config{PoolSize: 3, Dispatchers: 2, AsyncWorkers: 5,
		SourceTimeout: time.Second, QueueSample: time.Minute}.withDefaults()
	if c2.PoolSize != 3 || c2.Dispatchers != 2 || c2.AsyncWorkers != 5 ||
		c2.SourceTimeout != time.Second || c2.QueueSample != time.Minute {
		t.Errorf("explicit values clobbered: %+v", c2)
	}
	if cs := (Config{Kind: WorkStealing, Dispatchers: 3}).withDefaults(); cs.Dispatchers != 3 {
		t.Errorf("explicit steal Dispatchers clobbered: %d", cs.Dispatchers)
	}
}

// TestOptionsPopulateConfig: each With* option lands on its Config field
// through New, observable on the constructed server.
func TestOptionsPopulateConfig(t *testing.T) {
	p := compileSrc(t, pipelineSrc)
	prof := &profileRecorder{}
	obs := &recordingObserver{}
	b := NewBindings().
		BindSource("Gen", counterSource(1)).
		BindNode("Double", nopNode).
		BindNode("Sink", nopNode)
	s, err := New(p, b,
		WithEngine(EventDriven),
		WithPoolSize(7),
		WithDispatchers(2),
		WithAsyncWorkers(3),
		WithSourceTimeout(5*time.Millisecond),
		WithProfiler(prof),
		WithObserver(obs),
		WithKeepAlive(),
		WithQueueSampleInterval(time.Second),
	)
	if err != nil {
		t.Fatal(err)
	}
	c := s.cfg
	if c.Kind != EventDriven || c.PoolSize != 7 || c.Dispatchers != 2 ||
		c.AsyncWorkers != 3 || c.SourceTimeout != 5*time.Millisecond ||
		!c.KeepAlive || c.QueueSample != time.Second {
		t.Errorf("options not applied: %+v", c)
	}
	if c.Profiler == nil || c.Observer == nil {
		t.Error("profiler/observer options not applied")
	}
	// Both observation paths resolve into one plane.
	if s.obs == nil {
		t.Error("observer plane not resolved")
	}
}

// TestNewAppliesDefaults: New with no options equals the zero Config
// plus defaults — the "withDefaults equivalence" the options promise.
func TestNewAppliesDefaults(t *testing.T) {
	p := compileSrc(t, pipelineSrc)
	b := NewBindings().
		BindSource("Gen", counterSource(1)).
		BindNode("Double", nopNode).
		BindNode("Sink", nopNode)
	s, err := New(p, b)
	if err != nil {
		t.Fatal(err)
	}
	if want := (Config{}).withDefaults(); s.cfg != want {
		t.Errorf("New() config = %+v, want %+v", s.cfg, want)
	}
	if s.obs != nil {
		t.Error("unobserved server resolved a non-nil observer plane")
	}
}

// TestValidateBindingErrors covers every BindingError class, including
// the MarkBlocking validation: a misspelled blocking name used to be
// silently ignored, leaving the event dispatcher to block on real I/O.
func TestValidateBindingErrors(t *testing.T) {
	p := compileSrc(t, `
Gen () => (int v);
Work (int v) => (int v);
Sink (int v) => ();
source Gen => Flow;
Flow = Route -> Sink;
typedef big IsBig;
Route:[big] = Work;
Route:[_] = ;
session Gen SessOf;
`)
	complete := func() *Bindings {
		return NewBindings().
			BindSource("Gen", counterSource(1)).
			BindNode("Work", nopNode).
			BindNode("Sink", nopNode).
			BindPredicate("IsBig", func(any) bool { return true }).
			BindSession("SessOf", func(Record) uint64 { return 0 })
	}
	if _, err := NewServer(p, complete(), Config{}); err != nil {
		t.Fatalf("complete bindings rejected: %v", err)
	}
	cases := []struct {
		name       string
		b          *Bindings
		what, frag string
	}{
		{"missing predicate",
			NewBindings().
				BindSource("Gen", counterSource(1)).
				BindNode("Work", nopNode).BindNode("Sink", nopNode).
				BindSession("SessOf", func(Record) uint64 { return 0 }),
			"predicate", `"IsBig"`},
		{"missing session",
			NewBindings().
				BindSource("Gen", counterSource(1)).
				BindNode("Work", nopNode).BindNode("Sink", nopNode).
				BindPredicate("IsBig", func(any) bool { return true }),
			"session", `"SessOf"`},
		{"misspelled blocking node",
			complete().MarkBlocking("Wrok"),
			"blocking", `"Wrok"`},
		{"blocking mark on source",
			complete().MarkBlocking("Gen"),
			"blocking", `"Gen"`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := NewServer(p, tc.b, Config{})
			if err == nil {
				t.Fatal("expected binding error")
			}
			var be *BindingError
			if !errors.As(err, &be) {
				t.Fatalf("error type = %T (%v)", err, err)
			}
			if be.What != tc.what {
				t.Errorf("What = %q, want %q", be.What, tc.what)
			}
			if got := err.Error(); !contains(got, tc.frag) {
				t.Errorf("error = %q, want substring %q", got, tc.frag)
			}
		})
	}
}

// TestMarkBlockingValidNamesAccepted: correctly spelled blocking marks
// on non-source nodes pass validation.
func TestMarkBlockingValidNamesAccepted(t *testing.T) {
	p := compileSrc(t, pipelineSrc)
	b := NewBindings().
		BindSource("Gen", counterSource(1)).
		BindNode("Double", nopNode).
		BindNode("Sink", nopNode).
		MarkBlocking("Double", "Sink")
	if _, err := NewServer(p, b, Config{}); err != nil {
		t.Fatalf("valid blocking marks rejected: %v", err)
	}
}

// TestMultiObserverComposition: nil folding and fan-out.
func TestMultiObserver(t *testing.T) {
	if MultiObserver(nil, nil) != nil {
		t.Error("MultiObserver(nil, nil) != nil")
	}
	if ObserveProfiler(nil) != nil {
		t.Error("ObserveProfiler(nil) != nil")
	}
	a, b := &recordingObserver{}, &recordingObserver{}
	m := MultiObserver(a, nil, b)
	m.QueueDepth(ThreadPool, "admission", 3)
	if a.samples != 1 || b.samples != 1 {
		t.Errorf("fan-out samples = %d/%d, want 1/1", a.samples, b.samples)
	}
	single := MultiObserver(nil, a)
	if single != Observer(a) {
		t.Error("single observer not unwrapped")
	}
}
