package runtime

// Tests for the allocation-free hot path: chunked-queue batch pop, the
// closure-free fair lock fast path, flow pooling hygiene, and the dense
// vertex table the engines index by FlatNode.ID.

import (
	"context"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/flux-lang/flux/internal/core"
	"github.com/flux-lang/flux/internal/lang/ast"
)

func TestFIFOPopBatchOrderAndBlocking(t *testing.T) {
	q := newFIFO[int]()
	for i := 0; i < 100; i++ {
		q.push(i)
	}
	buf := make([]int, 8)
	next := 0
	for next < 100 {
		n, ok := q.popBatch(buf)
		if !ok {
			t.Fatal("popBatch reported closed on a live queue")
		}
		for i := 0; i < n; i++ {
			if buf[i] != next {
				t.Fatalf("batch item = %d, want %d (FIFO violated)", buf[i], next)
			}
			next++
		}
	}
	// Batch pop must block until an item arrives…
	got := make(chan int, 1)
	go func() {
		n, _ := q.popBatch(buf)
		got <- n
	}()
	select {
	case n := <-got:
		t.Fatalf("popBatch returned %d items on an empty queue", n)
	case <-time.After(10 * time.Millisecond):
	}
	q.push(7)
	select {
	case n := <-got:
		if n != 1 {
			t.Fatalf("popBatch = %d items, want 1", n)
		}
	case <-time.After(time.Second):
		t.Fatal("popBatch never woke")
	}
	// …and report closed-and-drained like pop.
	q.close()
	if n, ok := q.popBatch(buf); ok || n != 0 {
		t.Fatalf("popBatch on closed+drained = %d, %v", n, ok)
	}
}

func TestFIFOPopBatchSpansChunks(t *testing.T) {
	q := newFIFO[int]()
	total := 3*fifoChunkSize + 5
	for i := 0; i < total; i++ {
		q.push(i)
	}
	buf := make([]int, total)
	n, ok := q.popBatch(buf)
	if !ok || n != total {
		t.Fatalf("popBatch = %d, %v, want %d", n, ok, total)
	}
	for i := 0; i < total; i++ {
		if buf[i] != i {
			t.Fatalf("item %d = %d (chunk boundary corruption)", i, buf[i])
		}
	}
	if q.len() != 0 {
		t.Errorf("len = %d after full drain", q.len())
	}
}

// TestTryAcquireFairRefusesOvertake: the closure-free fast path must not
// barge past parked asynchronous waiters — that would reintroduce the
// starvation AcquireAsync exists to prevent.
func TestTryAcquireFairRefusesOvertake(t *testing.T) {
	m := NewLockManager()
	holder := &Flow{}
	m.Acquire(holder, writer("x"))

	victim := &Flow{}
	granted := make(chan struct{})
	if m.AcquireAsync(victim, writer("x"), func() { close(granted) }) {
		t.Fatal("victim acquired a held lock")
	}

	// Release: the victim is granted. A fair try by a latecomer while
	// the grant is pending must fail even at the instant the lock state
	// itself would allow it.
	late := &Flow{}
	rc := m.Resolve(writer("x"))
	if m.tryAcquireResolved(late, rc) {
		t.Fatal("fast path overtook a parked waiter")
	}
	m.ReleaseAll(holder)
	<-granted
	if m.tryAcquireResolved(late, rc) {
		t.Fatal("fast path acquired while the granted victim holds")
	}
	m.ReleaseAll(victim)
	if !m.tryAcquireResolved(late, rc) {
		t.Fatal("fast path failed on a free lock with no waiters")
	}
	// Reentrant reacquisition through the fast path.
	if !m.tryAcquireResolved(late, rc) {
		t.Fatal("fast path refused reentrant reacquisition")
	}
	m.ReleaseAll(late)
}

// TestResolvedSessionConstraintsScope: pre-resolved session constraints
// must still shard by the acquiring flow's session id.
func TestResolvedSessionConstraintsScope(t *testing.T) {
	m := NewLockManager()
	rc := m.Resolve(ast.Constraint{Name: "state", Mode: ast.Writer, Session: true})
	if rc.lock != nil {
		t.Fatal("session constraint pre-resolved to a single lock")
	}
	f1 := &Flow{Session: 1}
	f2 := &Flow{Session: 2}
	m.acquireResolved(f1, rc)
	if !m.tryAcquireResolved(f2, rc) {
		t.Fatal("different sessions contended on a session-scoped constraint")
	}
	f3 := &Flow{Session: 1}
	if m.tryAcquireResolved(f3, rc) {
		t.Fatal("same session did not contend")
	}
	m.ReleaseAll(f1)
	m.ReleaseAll(f2)
}

// TestServerReRunAfterPooling: flows recycled through the pool must not
// leak state (path register, session, held stack) between requests —
// two consecutive runs over one pool must both see clean flows.
func TestServerReRunAfterPooling(t *testing.T) {
	for _, kind := range []EngineKind{ThreadPerFlow, ThreadPool, EventDriven, WorkStealing} {
		t.Run(kind.String(), func(t *testing.T) {
			for round := 0; round < 2; round++ {
				s, got, mu := buildPipeline(t, kind, 40)
				if err := s.Run(context.Background()); err != nil {
					t.Fatalf("round %d: %v", round, err)
				}
				mu.Lock()
				if len(*got) != 40 {
					t.Fatalf("round %d: sink saw %d records", round, len(*got))
				}
				mu.Unlock()
				st := s.Stats().Snapshot()
				if st.Completed != 40 || st.Errored != 0 || st.Dropped != 0 {
					t.Fatalf("round %d: stats = %+v", round, st)
				}
			}
		})
	}
}

// TestVertexTableDense verifies the invariant the engines rely on:
// flattening assigns IDs densely, so Nodes[v.ID] == v and the per-graph
// info table covers every vertex.
func TestVertexTableDense(t *testing.T) {
	p := compileSrc(t, dispatchSrc)
	for name, g := range p.Graphs {
		for i, v := range g.Nodes {
			if v.ID != i {
				t.Fatalf("graph %q: Nodes[%d].ID = %d", name, i, v.ID)
			}
		}
	}
	b := NewBindings().
		BindSource("Gen", counterSource(1)).
		BindPredicate("IsEven", func(v any) bool { return true }).
		BindNode("Evens", nopNode).
		BindNode("Odds", nopNode).
		BindNode("Sink", func(fl *Flow, in Record) (Record, error) { return nil, nil })
	s, err := NewServer(p, b, Config{})
	if err != nil {
		t.Fatal(err)
	}
	for g, tbl := range s.tables {
		if len(tbl.info) != len(g.Nodes) {
			t.Fatalf("table covers %d of %d vertices", len(tbl.info), len(g.Nodes))
		}
		for _, v := range g.Nodes {
			vi := tbl.info[v.ID]
			switch v.Kind {
			case core.FlatExec:
				if vi.fn == nil {
					t.Fatalf("exec vertex %q has no bound function", v.Label())
				}
			case core.FlatBranch:
				if len(vi.cases) == 0 {
					t.Fatalf("branch vertex %q has no compiled cases", v.Label())
				}
			}
		}
	}
}

// TestPoolEngineBatchedAdmissionKeepsFIFO: with one worker, batched
// admission must preserve strict arrival order end to end.
func TestPoolEngineBatchedAdmissionKeepsFIFO(t *testing.T) {
	p := compileSrc(t, pipelineSrc)
	var mu sync.Mutex
	var got []int
	b := NewBindings().
		BindSource("Gen", counterSource(100)).
		BindNode("Double", nopNode).
		BindNode("Sink", func(fl *Flow, in Record) (Record, error) {
			mu.Lock()
			got = append(got, in[0].(int))
			mu.Unlock()
			return nil, nil
		})
	s, err := NewServer(p, b, Config{Kind: ThreadPool, PoolSize: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(got) != 100 {
		t.Fatalf("sink saw %d records", len(got))
	}
	for i, v := range got {
		if v != i+1 {
			t.Fatalf("admission order violated at %d: got %d", i, v)
		}
	}
}

// TestSourceRecordPoolCorrectness: sources drawing their records from
// the per-source pool (Flow.NewRecord) must deliver every value intact
// on every engine — no premature recycling, no cross-flow corruption —
// including through the thread pool's admission FIFO, where the record
// is queued before its flow exists.
func TestSourceRecordPoolCorrectness(t *testing.T) {
	for _, kind := range []EngineKind{ThreadPerFlow, ThreadPool, EventDriven, WorkStealing} {
		t.Run(kind.String(), func(t *testing.T) {
			p := compileSrc(t, pipelineSrc)
			const total = 300
			var produced atomic.Int64
			var sum atomic.Int64
			b := NewBindings().
				BindSource("Gen", func(fl *Flow) (Record, error) {
					v := produced.Add(1)
					if v > total {
						return nil, ErrStop
					}
					rec := fl.NewRecord(1)
					rec[0] = int(v)
					return rec, nil
				}).
				BindNode("Double", func(fl *Flow, in Record) (Record, error) {
					return Record{in[0].(int) * 2}, nil
				}).
				BindNode("Sink", func(fl *Flow, in Record) (Record, error) {
					sum.Add(int64(in[0].(int)))
					return nil, nil
				})
			s, err := NewServer(p, b, Config{Kind: kind, PoolSize: 4,
				Dispatchers: 2, SourceTimeout: time.Millisecond})
			if err != nil {
				t.Fatal(err)
			}
			if err := s.Run(context.Background()); err != nil {
				t.Fatal(err)
			}
			if want := int64(2 * total * (total + 1) / 2); sum.Load() != want {
				t.Errorf("sum = %d, want %d (pooled record corrupted or lost)", sum.Load(), want)
			}
			if got := s.Stats().Snapshot().Completed; got != total {
				t.Errorf("completed = %d, want %d", got, total)
			}
		})
	}
}

// TestSourceRecordPoolRecyclesAtTerminal: on a single dispatcher the
// flow runs inline to its terminal before the source polls again, so
// every NewRecord must get back the record the previous flow just
// freed — the per-source pool closes the last allocation in the
// request path. GC is disabled so sync.Pool cannot empty mid-test.
func TestSourceRecordPoolRecyclesAtTerminal(t *testing.T) {
	if raceEnabled {
		t.Skip("sync.Pool randomizes under -race; recycling is asserted in the normal build")
	}
	defer debug.SetGCPercent(debug.SetGCPercent(-1))
	for _, kind := range []EngineKind{EventDriven, WorkStealing} {
		t.Run(kind.String(), func(t *testing.T) {
			p := compileSrc(t, pipelineSrc)
			const total = 200
			var produced atomic.Int64
			backing := make(map[*any]int)
			b := NewBindings().
				BindSource("Gen", func(fl *Flow) (Record, error) {
					v := produced.Add(1)
					if v > total {
						return nil, ErrStop
					}
					rec := fl.NewRecord(1)
					backing[&rec[0]]++ // single dispatcher: no lock needed
					rec[0] = int(v)
					return rec, nil
				}).
				BindNode("Double", nopNode).
				BindNode("Sink", nopNode)
			s, err := NewServer(p, b, Config{Kind: kind, Dispatchers: 1,
				SourceTimeout: time.Millisecond})
			if err != nil {
				t.Fatal(err)
			}
			if err := s.Run(context.Background()); err != nil {
				t.Fatal(err)
			}
			// Inline run-to-block means the previous record is freed
			// before the next poll; allow a little slack for the first
			// allocation and scheduling jitter, but 200 records must not
			// mean 200 arrays.
			if len(backing) > 8 {
				t.Errorf("%d distinct backing arrays for %d records; pool not recycling", len(backing), total)
			}
		})
	}
}

// TestEventEngineRunToBlockSingleTrip: a non-blocking flow must execute
// in one dispatcher activation — every node of a flow runs on the same
// goroutine with no interleaved queue trips.
func TestEventEngineRunToBlockSingleTrip(t *testing.T) {
	p := compileSrc(t, pipelineSrc)
	var active, maxActive atomic.Int64
	var violations atomic.Int64
	b := NewBindings().
		BindSource("Gen", counterSource(200)).
		BindNode("Double", func(fl *Flow, in Record) (Record, error) {
			if active.Add(1) > 1 {
				violations.Add(1)
			}
			return in, nil
		}).
		BindNode("Sink", func(fl *Flow, in Record) (Record, error) {
			n := active.Add(-1)
			if n > maxActive.Load() {
				maxActive.Store(n)
			}
			return nil, nil
		})
	// A single dispatcher running flows to completion inline can never
	// have two flows inside node code at once.
	s, err := NewServer(p, b, Config{Kind: EventDriven, Dispatchers: 1, SourceTimeout: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	if violations.Load() != 0 {
		t.Errorf("flow interleaved with another between its own nodes %d times", violations.Load())
	}
	if got := s.Stats().Snapshot().Completed; got != 200 {
		t.Errorf("completed = %d", got)
	}
}
