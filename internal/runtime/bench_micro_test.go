package runtime

// Microbenchmarks for the per-flow hot path: end-to-end flow overhead on
// all three engines, lock acquire/release, and queue push/pop. Every
// benchmark reports allocations so an allocation regression on the hot
// path fails visibly in review (run with -benchmem).
//
// The source hands out a shared pre-allocated record, so the numbers
// measure runtime coordination cost only — not the user code's record
// construction.

import (
	"context"
	"fmt"
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"github.com/flux-lang/flux/internal/core"
	"github.com/flux-lang/flux/internal/lang/ast"
	"github.com/flux-lang/flux/internal/lang/parser"
)

func compileBench(b *testing.B, src string) *core.Program {
	b.Helper()
	astProg, err := parser.Parse("bench.flux", src)
	if err != nil {
		b.Fatalf("parse: %v", err)
	}
	p, err := core.Build(astProg)
	if err != nil {
		b.Fatalf("build: %v", err)
	}
	return p
}

// microSrc is a trivial straight-line program: four non-blocking nodes
// and no constraints, so every cost measured is engine overhead.
const microSrc = `
Gen () => (int v);
A (int v) => (int v);
B (int v) => (int v);
C (int v) => (int v);
Sink (int v) => ();
source Gen => F;
F = A -> B -> C -> Sink;
`

// microLockedSrc adds a writer constraint around the middle node, so the
// per-flow cost includes one acquire/release bracket.
const microLockedSrc = `
Gen () => (int v);
A (int v) => (int v);
B (int v) => (int v);
C (int v) => (int v);
Sink (int v) => ();
source Gen => F;
F = A -> B -> C -> Sink;
atomic B:{state};
`

func benchFlows(b *testing.B, kind EngineKind, src string) {
	p := compileBench(b, src)
	rec := Record{1} // shared: measure engine overhead, not record allocation
	n := 0
	pass := func(fl *Flow, in Record) (Record, error) { return in, nil }
	bnd := NewBindings().
		BindSource("Gen", func(fl *Flow) (Record, error) {
			if n >= b.N {
				return nil, ErrStop
			}
			n++
			return rec, nil
		}).
		BindNode("A", pass).
		BindNode("B", pass).
		BindNode("C", pass).
		BindNode("Sink", func(fl *Flow, in Record) (Record, error) { return nil, nil })
	s, err := NewServer(p, bnd, Config{Kind: kind, PoolSize: 8, SourceTimeout: time.Millisecond})
	if err != nil {
		b.Fatalf("NewServer: %v", err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	if err := s.Run(context.Background()); err != nil {
		b.Fatalf("Run: %v", err)
	}
	b.StopTimer()
	if got := s.Stats().Snapshot().Completed; got != uint64(b.N) {
		b.Fatalf("completed = %d, want %d", got, b.N)
	}
}

// BenchmarkFlowOverhead is the per-flow end-to-end coordination cost of a
// lock-free straight-line flow on each engine.
func BenchmarkFlowOverhead(b *testing.B) {
	for _, kind := range []EngineKind{ThreadPerFlow, ThreadPool, EventDriven, WorkStealing} {
		b.Run(kind.String(), func(b *testing.B) { benchFlows(b, kind, microSrc) })
	}
}

// BenchmarkFlowOverheadLocked adds one acquire/release bracket per flow.
func BenchmarkFlowOverheadLocked(b *testing.B) {
	for _, kind := range []EngineKind{ThreadPerFlow, ThreadPool, EventDriven, WorkStealing} {
		b.Run(kind.String(), func(b *testing.B) { benchFlows(b, kind, microLockedSrc) })
	}
}

// BenchmarkFlowOverheadPooledRecord is BenchmarkFlowOverhead with the
// source drawing a fresh record per flow from its pool (Flow.NewRecord)
// instead of sharing one preallocated record: the realistic admission
// shape, which must still run at 0 allocs/flow — the record pool closes
// the last allocation in the request path. Only the inline-admission
// engines are measured: the thread pool's FIFO keeps its whole backlog
// of records live at once when the source outruns the workers, which is
// real buffering, not recyclable garbage.
func BenchmarkFlowOverheadPooledRecord(b *testing.B) {
	val := any(1) // payload boxed once; the record slice is what's measured
	for _, kind := range []EngineKind{EventDriven, WorkStealing} {
		b.Run(kind.String(), func(b *testing.B) {
			p := compileBench(b, microSrc)
			n := 0
			pass := func(fl *Flow, in Record) (Record, error) { return in, nil }
			bnd := NewBindings().
				BindSource("Gen", func(fl *Flow) (Record, error) {
					if n >= b.N {
						return nil, ErrStop
					}
					n++
					rec := fl.NewRecord(1)
					rec[0] = val
					return rec, nil
				}).
				BindNode("A", pass).
				BindNode("B", pass).
				BindNode("C", pass).
				BindNode("Sink", func(fl *Flow, in Record) (Record, error) { return nil, nil })
			s, err := NewServer(p, bnd, Config{Kind: kind, PoolSize: 8,
				Dispatchers: 1, SourceTimeout: time.Millisecond})
			if err != nil {
				b.Fatalf("NewServer: %v", err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			if err := s.Run(context.Background()); err != nil {
				b.Fatalf("Run: %v", err)
			}
			b.StopTimer()
			if got := s.Stats().Snapshot().Completed; got != uint64(b.N) {
				b.Fatalf("completed = %d, want %d", got, b.N)
			}
		})
	}
}

// multiSourceSrc builds a program with n independent sources, each
// feeding its own straight-line flow over shared nodes — the shape that
// separates per-dispatcher run queues from a single shared event queue.
func multiSourceSrc(n int) string {
	src := "A (int v) => (int v);\nB (int v) => (int v);\nSink (int v) => ();\n"
	for i := 0; i < n; i++ {
		src += fmt.Sprintf("Gen%d () => (int v);\nsource Gen%d => F%d;\nF%d = A -> B -> Sink;\n", i, i, i, i)
	}
	return src
}

// BenchmarkEngineScaling measures aggregate flow throughput of the event
// and work-stealing engines at 1/2/4/8 dispatchers with 8 concurrent
// sources. ns/op is per flow across all sources: the event engine's
// shared queue mutex makes it rise with dispatcher count, while the
// steal engine's sharded deques hold or improve it — the scaling curve
// recorded in EXPERIMENTS.md.
func BenchmarkEngineScaling(b *testing.B) {
	const nSources = 8
	for _, kind := range []EngineKind{EventDriven, WorkStealing} {
		for _, disp := range []int{1, 2, 4, 8} {
			b.Run(fmt.Sprintf("%s-d%d", kind, disp), func(b *testing.B) {
				p := compileBench(b, multiSourceSrc(nSources))
				rec := Record{1}
				var left atomic.Int64
				left.Store(int64(b.N))
				pass := func(fl *Flow, in Record) (Record, error) { return in, nil }
				bnd := NewBindings().
					BindNode("A", pass).
					BindNode("B", pass).
					BindNode("Sink", func(fl *Flow, in Record) (Record, error) { return nil, nil })
				for i := 0; i < nSources; i++ {
					bnd.BindSource(fmt.Sprintf("Gen%d", i), func(fl *Flow) (Record, error) {
						if left.Add(-1) < 0 {
							return nil, ErrStop
						}
						return rec, nil
					})
				}
				s, err := NewServer(p, bnd, Config{Kind: kind, Dispatchers: disp,
					SourceTimeout: time.Millisecond})
				if err != nil {
					b.Fatalf("NewServer: %v", err)
				}
				b.ReportAllocs()
				b.ResetTimer()
				if err := s.Run(context.Background()); err != nil {
					b.Fatalf("Run: %v", err)
				}
				b.StopTimer()
				if got := s.Stats().Snapshot().Completed; got != uint64(b.N) {
					b.Fatalf("completed = %d, want %d", got, b.N)
				}
			})
		}
	}
}

// BenchmarkLockAcquireRelease measures one uncontended acquire+release
// round trip through the lock manager.
func BenchmarkLockAcquireRelease(b *testing.B) {
	b.Run("global", func(b *testing.B) {
		m := NewLockManager()
		fl := &Flow{}
		c := writer("x")
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			m.Acquire(fl, c)
			m.ReleaseAll(fl)
		}
	})
	b.Run("session", func(b *testing.B) {
		m := NewLockManager()
		fl := &Flow{Session: 7}
		c := ast.Constraint{Name: "state", Mode: ast.Writer, Session: true}
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			m.Acquire(fl, c)
			m.ReleaseAll(fl)
		}
	})
	// Distinct constraints from parallel goroutines: measures lock-table
	// lookup scalability (the paper's servers hold many unrelated
	// constraints at once).
	b.Run("global-parallel", func(b *testing.B) {
		m := NewLockManager()
		names := []string{"a", "b", "c", "d", "e", "f", "g", "h"}
		var idx atomic.Int64
		b.ReportAllocs()
		b.RunParallel(func(pb *testing.PB) {
			fl := &Flow{}
			i := int(idx.Add(1))
			c := writer(names[i%len(names)])
			for pb.Next() {
				m.Acquire(fl, c)
				m.ReleaseAll(fl)
			}
		})
	})
}

// BenchmarkQueuePushPop measures the event/admission queue.
func BenchmarkQueuePushPop(b *testing.B) {
	b.Run("pingpong", func(b *testing.B) {
		q := newFIFO[int]()
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			q.push(i)
			q.pop()
		}
	})
	b.Run("burst64", func(b *testing.B) {
		q := newFIFO[int]()
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			for j := 0; j < 64; j++ {
				q.push(j)
			}
			for j := 0; j < 64; j++ {
				q.pop()
			}
		}
	})
	b.Run("burst64-batch", func(b *testing.B) {
		q := newFIFO[int]()
		buf := make([]int, poolBatch)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			for j := 0; j < 64; j++ {
				q.push(j)
			}
			drained := 0
			for drained < 64 {
				n, _ := q.popBatch(buf)
				drained += n
			}
		}
	})
}

// BenchmarkInject measures the external-admission hot path: a
// pre-resolved SourceHandle injecting one record per op into a running
// keep-alive server whose only source has retired — the connection
// plane's per-request shape. The record is shared so the number is
// admission cost, not record construction. Gated by CI: the event and
// steal engines must stay at 0 allocs/op (the thread engine's per-flow
// goroutine and the pool's FIFO buffering are the engines' own designs).
func BenchmarkInject(b *testing.B) {
	for _, kind := range []EngineKind{ThreadPerFlow, ThreadPool, EventDriven, WorkStealing} {
		b.Run(kind.String(), func(b *testing.B) {
			p := compileBench(b, microSrc)
			pass := func(fl *Flow, in Record) (Record, error) { return in, nil }
			bnd := NewBindings().
				BindSource("Gen", func(fl *Flow) (Record, error) { return nil, ErrStop }).
				BindNode("A", pass).
				BindNode("B", pass).
				BindNode("C", pass).
				BindNode("Sink", func(fl *Flow, in Record) (Record, error) { return nil, nil })
			s, err := NewServer(p, bnd, Config{Kind: kind, PoolSize: 8,
				SourceTimeout: time.Millisecond, KeepAlive: true})
			if err != nil {
				b.Fatalf("NewServer: %v", err)
			}
			ctx, cancel := context.WithCancel(context.Background())
			if err := s.Start(ctx); err != nil {
				b.Fatalf("Start: %v", err)
			}
			h, err := s.Source("Gen")
			if err != nil {
				b.Fatalf("Source: %v", err)
			}
			rec := Record{1}
			completed := &s.stats.Completed
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				// Steady state, not unbounded backlog: a real admission
				// plane runs against a server that keeps up, so cap the
				// in-flight count and let the engine drain. Without this
				// the benchmark measures queue growth (flows parked in
				// the FIFO cannot recycle), not the admission path.
				for i-int(completed.Load()) > 4*eventBatch {
					runtime.Gosched()
				}
				if err := h.Inject(rec); err != nil {
					b.Fatalf("Inject: %v", err)
				}
			}
			b.StopTimer()
			cancel()
			_ = s.Wait()
			if got := s.Stats().Snapshot().Completed; got != uint64(b.N) {
				b.Fatalf("completed = %d, want %d", got, b.N)
			}
		})
	}
}

// BenchmarkDequeOwnerPop measures the steal deque's owner end: the
// one-mutex-trip-per-event baseline against the owner-side batch pop
// that amortizes the mutex across stealBatch events (the ROADMAP
// multicore item). Both pop in LIFO order; only the locking differs.
func BenchmarkDequeOwnerPop(b *testing.B) {
	b.Run("single", func(b *testing.B) {
		var d deque[int]
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			for j := 0; j < stealBatch; j++ {
				d.push(j)
			}
			for j := 0; j < stealBatch; j++ {
				d.pop()
			}
		}
	})
	b.Run("batch", func(b *testing.B) {
		var d deque[int]
		buf := make([]int, stealBatch)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			for j := 0; j < stealBatch; j++ {
				d.push(j)
			}
			drained := 0
			for drained < stealBatch {
				n := d.popBatch(buf)
				if n == 0 {
					b.Fatal("deque drained early")
				}
				drained += n
			}
		}
	})
}
