//go:build !race

package runtime

// raceEnabled reports that the race detector is active; see the race
// build's twin for why pool-recycling tests consult it.
const raceEnabled = false
