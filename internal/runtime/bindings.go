package runtime

import (
	"github.com/flux-lang/flux/internal/core"
)

// Bindings associates the names in a Flux program with Go implementations:
// node functions, source functions, predicate functions, and session-id
// functions. There is no "Flux API" a component must adhere to beyond the
// declared signature — any function of the right shape can be bound,
// mirroring the paper's use of unmodified off-the-shelf code.
type Bindings struct {
	nodes    map[string]NodeFunc
	sources  map[string]SourceFunc
	preds    map[string]PredicateFunc
	sessions map[string]SessionFunc
	blocking map[string]bool
}

// NewBindings returns an empty binding set.
func NewBindings() *Bindings {
	return &Bindings{
		nodes:    make(map[string]NodeFunc),
		sources:  make(map[string]SourceFunc),
		preds:    make(map[string]PredicateFunc),
		sessions: make(map[string]SessionFunc),
		blocking: make(map[string]bool),
	}
}

// BindNode implements a concrete node.
func (b *Bindings) BindNode(name string, fn NodeFunc) *Bindings {
	b.nodes[name] = fn
	return b
}

// BindSource implements a source node.
func (b *Bindings) BindSource(name string, fn SourceFunc) *Bindings {
	b.sources[name] = fn
	return b
}

// BindPredicate implements the boolean function behind a predicate
// typedef. The name is the function name from the typedef declaration
// (e.g. "TestInCache"), not the type name.
func (b *Bindings) BindPredicate(name string, fn PredicateFunc) *Bindings {
	b.preds[name] = fn
	return b
}

// BindSession implements a session-id function named in a session
// declaration.
func (b *Bindings) BindSession(name string, fn SessionFunc) *Bindings {
	b.sessions[name] = fn
	return b
}

// MarkBlocking tags a node as performing blocking calls (network or disk
// I/O). The event engine offloads blocking nodes to its asynchronous-I/O
// pool instead of running them on the dispatcher — the analogue of the
// paper's LD_PRELOAD interception of blocking functions (§3.2.2). Other
// engines ignore the mark.
func (b *Bindings) MarkBlocking(names ...string) *Bindings {
	for _, n := range names {
		b.blocking[n] = true
	}
	return b
}

// Validate checks that every name the program needs is bound: each
// concrete node (source nodes as sources, others as nodes), each
// predicate function, and each session function. The node stubs that the
// code generator emits keep these aligned in generated projects; Validate
// is the safety net for hand-assembled ones.
func (b *Bindings) Validate(p *core.Program) error {
	sourceNames := make(map[string]bool)
	for _, s := range p.Sources {
		sourceNames[s.Node.Name] = true
	}
	for _, n := range p.ConcreteNodes() {
		if sourceNames[n.Name] {
			if _, ok := b.sources[n.Name]; !ok {
				return &BindingError{What: "source", Name: n.Name, Msg: "not bound (use BindSource)"}
			}
			continue
		}
		if _, ok := b.nodes[n.Name]; !ok {
			return &BindingError{What: "node", Name: n.Name, Msg: "not bound (use BindNode)"}
		}
	}
	for _, td := range p.Typedefs {
		if _, ok := b.preds[td.Func]; !ok {
			return &BindingError{What: "predicate", Name: td.Func, Msg: "not bound (use BindPredicate)"}
		}
	}
	for src, fn := range p.Sessions {
		if _, ok := b.sessions[fn]; !ok {
			return &BindingError{What: "session", Name: fn,
				Msg: "not bound for source " + src + " (use BindSession)"}
		}
	}
	// Blocking marks must name declared non-source concrete nodes: a
	// misspelled MarkBlocking would otherwise be silently ignored and the
	// event engine's dispatcher would block on the node's real I/O.
	nodeNames := make(map[string]bool)
	for _, n := range p.ConcreteNodes() {
		nodeNames[n.Name] = true
	}
	for name := range b.blocking {
		switch {
		case sourceNames[name]:
			return &BindingError{What: "blocking", Name: name,
				Msg: "is a source; sources poll with a deadline instead of being offloaded"}
		case !nodeNames[name]:
			return &BindingError{What: "blocking", Name: name,
				Msg: "does not name a concrete node (misspelled MarkBlocking?)"}
		}
	}
	return nil
}
