package runtime

import (
	"sync"
	"sync/atomic"
)

// deque is the per-dispatcher run queue of the work-stealing engine: a
// growable ring with a LIFO owner end and a FIFO steal end. The owner
// pushes and pops at the bottom (newest first, so a continuation runs
// while its flow's state is still cache-hot); thieves take from the top
// (oldest first), preserving rough admission order for work that does
// migrate.
//
// A deque is guarded by one mutex rather than implemented lock-free
// (Chase-Lev): the mutex is private to one dispatcher plus occasional
// thieves, so it is almost always uncontended — the scaling win over the
// engine-wide event queue comes from sharding, not from removing the
// last uncontended lock. The mutex also makes cross-dispatcher pushes
// (lock grants, async completions, injection overflow) trivially safe.
//
// stealHalf deliberately copies into a caller-owned scratch buffer and
// never touches the thief's deque, so no operation holds two deque
// mutexes at once — two dispatchers stealing from each other cannot
// deadlock.
const dequeMinCap = 64

type deque[T any] struct {
	mu   sync.Mutex
	buf  []T
	head int // index of the oldest element (steal end)
	size int
	// asize mirrors size with sequentially-consistent atomics, so the
	// hot probes — a dispatcher's poll pre-arm, the pre-park
	// verification scan, observer sampling — read the length without
	// taking the mutex. Writers update it while holding mu.
	asize atomic.Int32
}

// push appends v at the bottom (newest, owner end).
func (d *deque[T]) push(v T) {
	d.mu.Lock()
	if d.size == len(d.buf) {
		d.growLocked()
	}
	d.buf[(d.head+d.size)&(len(d.buf)-1)] = v
	d.size++
	d.asize.Store(int32(d.size))
	d.mu.Unlock()
}

// pushTop prepends v at the top (oldest, steal end). Source re-queues
// use it so a dispatcher owning several sources polls them round-robin:
// a bottom re-queue would be popped straight back, starving the rest of
// the deque behind one busy source.
func (d *deque[T]) pushTop(v T) {
	d.mu.Lock()
	if d.size == len(d.buf) {
		d.growLocked()
	}
	d.head = (d.head - 1 + len(d.buf)) & (len(d.buf) - 1)
	d.buf[d.head] = v
	d.size++
	d.asize.Store(int32(d.size))
	d.mu.Unlock()
}

// pop removes and returns the bottom (newest) element — the owner's
// LIFO end.
func (d *deque[T]) pop() (v T, ok bool) {
	d.mu.Lock()
	if d.size == 0 {
		d.mu.Unlock()
		return v, false
	}
	d.size--
	i := (d.head + d.size) & (len(d.buf) - 1)
	v = d.buf[i]
	var zero T
	d.buf[i] = zero // release for GC
	d.asize.Store(int32(d.size))
	d.mu.Unlock()
	return v, true
}

// popBatch removes up to len(buf) elements from the bottom — newest
// first, preserving the owner's LIFO order exactly as repeated pop
// calls would — in one mutex round trip, and reports how many were
// taken. Under backlog the owner's mutex amortizes over the batch (the
// deque analogue of the event engine's FIFO popBatch); with a short
// deque it degenerates to pop, so thieves are not starved by the owner
// claiming everything.
func (d *deque[T]) popBatch(buf []T) int {
	d.mu.Lock()
	n := len(buf)
	if n > d.size {
		n = d.size
	}
	var zero T
	for i := 0; i < n; i++ {
		d.size--
		j := (d.head + d.size) & (len(d.buf) - 1)
		buf[i] = d.buf[j]
		d.buf[j] = zero // release for GC
	}
	if n > 0 {
		d.asize.Store(int32(d.size))
	}
	d.mu.Unlock()
	return n
}

// stealHalf moves the oldest ceil(n/2) elements into *scratch (reset to
// length zero first, grown as needed) in FIFO order, and reports how
// many were taken. The scratch buffer is reused across calls by the
// stealing dispatcher, so steady-state stealing does not allocate.
func (d *deque[T]) stealHalf(scratch *[]T) int {
	d.mu.Lock()
	n := d.size - d.size/2 // ceil: a single queued item is worth taking
	if n == 0 {
		d.mu.Unlock()
		return 0
	}
	*scratch = (*scratch)[:0]
	var zero T
	for i := 0; i < n; i++ {
		*scratch = append(*scratch, d.buf[d.head])
		d.buf[d.head] = zero
		d.head = (d.head + 1) & (len(d.buf) - 1)
	}
	d.size -= n
	d.asize.Store(int32(d.size))
	d.mu.Unlock()
	return n
}

// len reports the current element count without taking the mutex — the
// value is exact at some recent instant, which is all the heuristic
// probes (pre-arm, park verification, sampling) need; the
// sequentially-consistent store/load pairing with the parked flag is
// what makes the parking protocol sound.
func (d *deque[T]) len() int {
	return int(d.asize.Load())
}

// growLocked doubles the ring (or allocates the initial one),
// linearizing the elements to the front. Capacity stays a power of two
// so indexing is a mask, not a modulo.
func (d *deque[T]) growLocked() {
	newCap := dequeMinCap
	if len(d.buf) > 0 {
		newCap = 2 * len(d.buf)
	}
	nb := make([]T, newCap)
	for i := 0; i < d.size; i++ {
		nb[i] = d.buf[(d.head+i)&(len(d.buf)-1)]
	}
	d.buf = nb
	d.head = 0
}
