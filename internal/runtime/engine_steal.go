package runtime

import (
	"context"
	"errors"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"github.com/flux-lang/flux/internal/core"
)

// The work-stealing engine: the event-driven runtime (§3.2.2) decomposed
// into one dispatcher per core, each owning a local run deque, so event
// throughput scales with dispatcher count instead of collapsing on a
// single shared queue's mutex — the multicore design the paper's
// single-threaded event server predates.
//
// Scheduling follows the shape of multicore runtime schedulers (Go's own
// P-local run queues, Cilk-style deques):
//
//   - each dispatcher owns a deque of events: it pushes and pops at the
//     LIFO end, so a flow's continuation runs while its state is still
//     cache-hot, and sources re-queue locally, keeping a flow's whole
//     life on one core in the common case;
//   - admissions are sharded: sources are distributed round-robin across
//     the dispatchers at start, and each source's flows originate on its
//     home dispatcher;
//   - a dispatcher that runs dry batch-drains the overflow/injection
//     queue (external Submit admissions and any work without a home),
//     then steals the oldest half of a random victim's deque — oldest
//     first, so migrated work preserves rough admission order;
//   - lock grants resume the waiter on the *releasing* flow's dispatcher
//     (the lock handoff already moved the protected state to that core),
//     via the lock manager's intrusive waiter nodes — no closures, no
//     global queue trip;
//   - idle dispatchers park on a per-dispatcher token channel. The
//     parking protocol is announce-then-verify: a dispatcher publishes
//     its parked flag, then re-scans every queue before sleeping, while
//     producers publish work before reading parked flags — whichever
//     side loses the race still observes the other's write, so no wakeup
//     is missed and Drain cannot deadlock on a sleeping core.
//
// Run-to-block dispatch, the async-I/O offload pool, the poll-shortening
// wake signal, and the zero-allocation flow path carry over from the
// event engine unchanged.

// stealBatch is how many injection-queue events an idle dispatcher
// claims per mutex round trip.
const stealBatch = 8

type stealEngine struct {
	s        *Server
	ctx      context.Context
	ctxDone  <-chan struct{}
	disp     []*stealDispatcher
	injectq  *fifo[event]
	asyncq   *fifo[event]
	inflight atomic.Int64
	sources  atomic.Int64
	// nparked counts dispatchers currently in (or entering) the parked
	// state, so the admission path skips the per-dispatcher wake scan —
	// the common all-busy case costs one atomic load.
	nparked atomic.Int32
	// ninject mirrors the injection queue's length (incremented after a
	// successful offer, decremented by drainInject), so every dispatcher
	// iteration can probe for external admissions with one atomic load
	// instead of the queue mutex — an injected flow is picked up on the
	// next event boundary, not after a poll-timeout backlog. Transiently
	// negative under racing drains; only > 0 is meaningful.
	ninject atomic.Int64
	// closing elects the single closer; closed is what dispatchers gate
	// on, stored only after the injection queue is closed. The ordering
	// is what makes a Submit racing the close safe: an offer that
	// succeeded happened before injectq.close(), hence before closed
	// became visible, hence before any dispatcher's first closing-drain
	// pass — the straggler is always found.
	closing atomic.Bool
	closed  atomic.Bool
	done    chan struct{}
}

type stealDispatcher struct {
	e  *stealEngine
	id int
	dq deque[event]
	// wake is the dispatcher's parking token and poll interrupt: parking
	// blocks on it, and pushes to this dispatcher's deque signal it so a
	// source poll in progress yields immediately.
	wake   chan struct{}
	parked atomic.Bool
	steals atomic.Uint64
	// scratch is the reusable steal buffer, so migrating half a victim's
	// deque allocates nothing in steady state.
	scratch []event
	rng     uint64
	// depthName is the observer label ("disp0", ...), precomputed so
	// sampling does not format strings.
	depthName string
}

func newStealEngine(s *Server) Engine {
	e := &stealEngine{
		s:       s,
		injectq: newFIFO[event](),
		asyncq:  newFIFO[event](),
		done:    make(chan struct{}),
	}
	n := s.cfg.Dispatchers
	e.disp = make([]*stealDispatcher, n)
	for i := range e.disp {
		e.disp[i] = &stealDispatcher{
			e:         e,
			id:        i,
			wake:      make(chan struct{}, 1),
			rng:       uint64(i)*0x9E3779B97F4A7C15 + 1,
			depthName: "disp" + strconv.Itoa(i),
		}
	}
	return e
}

func (e *stealEngine) Start(ctx context.Context) error {
	e.ctx = ctx
	e.ctxDone = ctx.Done()
	s := e.s

	var asyncWG sync.WaitGroup
	for i := 0; i < s.cfg.AsyncWorkers; i++ {
		asyncWG.Add(1)
		go func() {
			defer asyncWG.Done()
			e.asyncWorker()
		}()
	}

	// Shard sources round-robin across dispatchers: each source's flows
	// originate — and usually complete — on its home core.
	for i, st := range s.srcs {
		e.sources.Add(1)
		e.disp[i%len(e.disp)].dq.push(event{kind: evSource, st: st})
	}
	if s.cfg.KeepAlive {
		// A virtual source holds the engine open for Inject admissions;
		// cancellation retires it and re-checks termination directly (a
		// parked engine has no dispatcher to do it).
		e.sources.Add(1)
		go func() {
			<-ctx.Done()
			e.sources.Add(-1)
			e.maybeFinish()
		}()
	}
	if s.obs != nil {
		go e.sampleQueues()
	}

	var dispWG sync.WaitGroup
	for _, d := range e.disp {
		dispWG.Add(1)
		go func(d *stealDispatcher) {
			defer dispWG.Done()
			d.loop()
		}(d)
	}
	go func() {
		dispWG.Wait()
		e.asyncq.close()
		asyncWG.Wait()
		close(e.done)
	}()
	return nil
}

// Submit admits an externally-originated flow through the injection
// queue; the next idle dispatcher batch-drains it. Admission ends at
// cancellation, not at quiescence: without the context check, a steady
// stream of successful injections could hold inflight above zero
// forever and livelock the drain.
func (e *stealEngine) Submit(fl *Flow, rec Record) error {
	select {
	case <-e.ctxDone:
		e.s.freeFlow(fl)
		return ErrServerClosed
	default:
	}
	fl.SourceTimeout = e.s.cfg.SourceTimeout
	e.inflight.Add(1)
	tbl := fl.src.tbl
	if !e.injectq.offer(event{kind: evStep, fl: fl, tbl: tbl, v: tbl.g.Entry, rec: rec}) {
		e.inflight.Add(-1)
		// The transient inflight bump may have been the last thing
		// holding a closing dispatcher in its drain loop; re-announce
		// quiescence so it re-checks and exits (a lost wake here would
		// hang Drain).
		e.maybeFinish()
		e.s.freeFlow(fl)
		return ErrServerClosed
	}
	e.ninject.Add(1)
	e.wakeOne()
	return nil
}

func (e *stealEngine) Drain(ctx context.Context) error {
	return awaitDone(e.done, ctx)
}

// maybeFinish begins shutdown once no source is live and no flow is in
// flight: evSource events hold sources > 0 until retired and
// evStep/evResult events hold inflight > 0, so no settled work can be
// stranded by closing. A Submit can still race the close — its flow
// accepted by the injection queue an instant after the counters read
// zero — which is why dispatchers keep draining after closed flips
// (nextClosing) and why the wake fan-out below runs on every quiescence
// observation, not just the closing one: the dispatcher that retires
// such a straggler re-wakes the others so they can re-check and exit.
func (e *stealEngine) maybeFinish() {
	if e.sources.Load() != 0 || e.inflight.Load() != 0 {
		return
	}
	if e.closing.CompareAndSwap(false, true) {
		e.injectq.close()
		e.closed.Store(true)
	}
	for _, d := range e.disp {
		d.signalWake()
	}
}

// nextClosing is the dispatcher loop's tail once the engine has closed:
// drain any straggler events — a Submit that won its race against the
// close has its flow sitting in the injection queue (fifo pendings
// survive close), and its async completions land on deques — and exit
// only when no flow is left in flight. Parking here needs no flag
// protocol: async completions signal the owning dispatcher's buffered
// wake token directly, and maybeFinish wakes everyone whenever the
// engine is observed quiescent.
func (d *stealDispatcher) nextClosing(buf []event) (event, bool) {
	e := d.e
	for {
		if ev, ok := d.dq.pop(); ok {
			return ev, true
		}
		if ev, ok := d.drainInject(buf); ok {
			return ev, true
		}
		if e.inflight.Load() == 0 {
			return event{}, false
		}
		<-d.wake
	}
}

// sampleQueues feeds the observer plane each dispatcher's deque depth,
// the injection and async-offload backlogs, and the cumulative steal
// count (reported through the queue-depth surface as the monotonic
// QueueSteals sample — a counter, not a backlog, which CounterQueue
// lets depth-aggregating consumers exclude).
func (e *stealEngine) sampleQueues() {
	t := time.NewTicker(e.s.cfg.QueueSample)
	defer t.Stop()
	for {
		select {
		case <-e.done:
			return
		case <-t.C:
			obs := e.s.obs
			var steals uint64
			for _, d := range e.disp {
				obs.QueueDepth(WorkStealing, d.depthName, d.dq.len())
				steals += d.steals.Load()
			}
			obs.QueueDepth(WorkStealing, "inject", e.injectq.len())
			obs.QueueDepth(WorkStealing, "async", e.asyncq.len())
			obs.QueueDepth(WorkStealing, QueueSteals, int(steals))
		}
	}
}

// wakeOne unparks one parked dispatcher, or failing that interrupts one
// dispatcher's source poll, so externally-pushed work is picked up
// promptly.
func (e *stealEngine) wakeOne() {
	for _, d := range e.disp {
		if d.parked.Load() {
			d.signalWake()
			return
		}
	}
	e.disp[0].signalWake()
}

func (d *stealDispatcher) signalWake() {
	select {
	case d.wake <- struct{}{}:
	default:
	}
}

func (d *stealDispatcher) drainWake() {
	select {
	case <-d.wake:
	default:
	}
}

// pushTo lands an event on a specific dispatcher's deque and signals it,
// cutting short a poll or unparking it if necessary.
func (e *stealEngine) pushTo(d *stealDispatcher, ev event) {
	d.dq.push(ev)
	d.signalWake()
}

// loop is the dispatcher body. With at most one dispatcher per core
// (the default), each is pinned to an OS thread, approximating the
// per-core event loops of multicore event designs and keeping a deque's
// cache lines home; oversubscribed configurations stay unpinned so
// dispatcher switches remain cheap goroutine switches.
//
// Local work is claimed in owner-side batches (nextBatch), one deque
// mutex round trip per stealBatch events instead of one per event. The
// buffer is termination-check-safe by the event engine's argument:
// every buffered event except a nudge holds sources > 0 (evSource) or
// inflight > 0 (evStep/evResult), so maybeFinish cannot observe
// quiescence while events sit in a dispatcher's buffer. Buffered events
// are invisible to thieves, but a batch is at most stealBatch long —
// the same bound the event engine accepts.
func (d *stealDispatcher) loop() {
	e := d.e
	if len(e.disp) <= runtime.GOMAXPROCS(0) {
		runtime.LockOSThread()
		defer runtime.UnlockOSThread()
	}
	var buf [stealBatch]event
	for {
		n, ok := d.nextBatch(buf[:])
		if !ok {
			return
		}
		for i := 0; i < n; i++ {
			ev := buf[i]
			buf[i] = event{} // release the record/flow for GC
			d.handle(ev, i+1 < n)
			e.maybeFinish()
			// External admissions must not wait out the rest of an owner
			// batch: spill them onto the deque between buffered events,
			// where this dispatcher (or a woken thief) reaches them next.
			if i+1 < n && e.ninject.Load() > 0 {
				d.spillInject()
			}
		}
	}
}

// spillInject drains pending external admissions onto the local deque
// mid-batch; the surplus is stealable, so a parked peer is invited.
func (d *stealDispatcher) spillInject() {
	var buf [stealBatch]event
	n := d.e.injectq.tryPopBatch(buf[:])
	if n == 0 {
		return
	}
	d.e.ninject.Add(-int64(n))
	for i := 0; i < n; i++ {
		d.dq.push(buf[i])
		buf[i] = event{}
	}
	d.e.wakeOneParked()
}

// nextBatch fills buf with the dispatcher's next events: pending
// external admissions first (one atomic probe — a never-empty local
// deque must not starve the injection queue), then an owner-side batch
// from the local deque (LIFO, one mutex trip), then half of a random
// victim's deque, and otherwise parks until a producer signals. The
// injection, steal, and closing paths yield one event per call; only
// the local deque fills a whole batch.
func (d *stealDispatcher) nextBatch(buf []event) (int, bool) {
	e := d.e
	for {
		if e.closed.Load() {
			ev, ok := d.nextClosing(buf)
			if !ok {
				return 0, false
			}
			buf[0] = ev
			return 1, true
		}
		if e.ninject.Load() > 0 {
			if ev, ok := d.drainInject(buf); ok {
				buf[0] = ev
				return 1, true
			}
		}
		if n := d.dq.popBatch(buf); n > 0 {
			return n, true
		}
		if ev, ok := d.drainInject(buf); ok {
			buf[0] = ev
			return 1, true
		}
		if ev, ok := d.steal(); ok {
			buf[0] = ev
			return 1, true
		}
		// Announce-then-verify parking: publish the parked flag, then
		// re-scan every queue. A producer publishes work before reading
		// parked flags, so one of the two sides always sees the other.
		e.nparked.Add(1)
		d.parked.Store(true)
		if e.closed.Load() || d.dq.len() > 0 || e.injectq.len() > 0 || e.anyDequeued(d) {
			d.parked.Store(false)
			e.nparked.Add(-1)
			continue
		}
		<-d.wake
		d.parked.Store(false)
		e.nparked.Add(-1)
	}
}

// drainInject claims a batch from the overflow/injection queue: the
// first event is returned to run now, the rest spill onto the local
// deque where parked peers can steal them.
func (d *stealDispatcher) drainInject(buf []event) (event, bool) {
	n := d.e.injectq.tryPopBatch(buf)
	if n == 0 {
		return event{}, false
	}
	d.e.ninject.Add(-int64(n))
	for i := 1; i < n; i++ {
		d.dq.push(buf[i])
		buf[i] = event{}
	}
	ev := buf[0]
	buf[0] = event{}
	if n > 1 {
		// The surplus is stealable; invite a parked peer.
		d.e.wakeOneParked()
	}
	return ev, true
}

// anyDequeued reports whether any other dispatcher's deque holds work —
// the pre-park verification scan.
func (e *stealEngine) anyDequeued(self *stealDispatcher) bool {
	for _, d := range e.disp {
		if d != self && d.dq.len() > 0 {
			return true
		}
	}
	return false
}

// wakeOneParked unparks one parked dispatcher if there is one; unlike
// wakeOne it never interrupts a busy dispatcher's poll. The all-busy
// fast path is a single atomic load.
func (e *stealEngine) wakeOneParked() {
	if e.nparked.Load() == 0 {
		return
	}
	for _, d := range e.disp {
		if d.parked.Load() {
			d.signalWake()
			return
		}
	}
}

// nextRand is a xorshift step for victim selection; deterministic seeds
// per dispatcher, no shared state.
func (d *stealDispatcher) nextRand() uint64 {
	x := d.rng
	x ^= x << 13
	x ^= x >> 7
	x ^= x << 17
	d.rng = x
	return x
}

// steal takes the oldest half of a random victim's deque: the first
// stolen event is returned to run now, the rest land on the thief's
// deque. The victim's mutex is released before the thief's is taken
// (stealHalf copies into the scratch buffer), so mutual steals cannot
// deadlock.
func (d *stealDispatcher) steal() (event, bool) {
	e := d.e
	n := len(e.disp)
	if n < 2 {
		return event{}, false
	}
	off := int(d.nextRand() % uint64(n))
	for i := 0; i < n; i++ {
		v := e.disp[(off+i)%n]
		if v == d {
			continue
		}
		if k := v.dq.stealHalf(&d.scratch); k > 0 {
			d.steals.Add(1)
			for j := 1; j < k; j++ {
				d.dq.push(d.scratch[j])
				d.scratch[j] = event{}
			}
			ev := d.scratch[0]
			d.scratch[0] = event{}
			return ev, true
		}
	}
	return event{}, false
}

// handle runs one event. The flow's dispatcher affinity is updated
// first: lock releases performed while it runs resume their waiters
// onto this dispatcher's deque. morePending reports events still
// buffered by this dispatcher's owner batch, which count as ready work
// for source poll-shortening.
func (d *stealDispatcher) handle(ev event, morePending bool) {
	switch ev.kind {
	case evSource:
		d.handleSource(ev, morePending)
	case evStep:
		ev.fl.disp = d
		d.run(ev.fl, ev.tbl, ev.v, ev.rec, ev.acquired)
	case evResult:
		ev.fl.disp = d
		r := d.e.s.afterExec(ev.fl, ev.v, ev.rec, ev.out, ev.err)
		d.run(ev.fl, ev.tbl, r.next, r.rec, 0)
	case evNudge:
		// No work; exists to force the termination check in loop.
	}
}

// retireSource ends a source's polling loop, releasing its poll context.
func (d *stealDispatcher) retireSource(ev event) {
	if ev.fl != nil {
		d.e.s.freeFlow(ev.fl)
	}
	d.e.sources.Add(-1)
}

// handleSource polls a source once and re-queues it on this dispatcher's
// deque; its flows originate here and stay here unless stolen.
// morePending (events buffered by the caller's owner batch) shortens the
// poll and suppresses the idle guard sleep, exactly as deque or
// injection backlog does.
func (d *stealDispatcher) handleSource(ev event, morePending bool) {
	e := d.e
	select {
	case <-e.ctxDone:
		d.retireSource(ev)
		return
	default:
	}
	if ev.fl == nil {
		ev.fl = e.s.newFlow(e.ctx, 0)
		ev.fl.SourceTimeout = e.s.cfg.SourceTimeout
		ev.fl.src = ev.st
	}
	// The poll context's wake follows the source to its current
	// dispatcher (the event may have been stolen).
	ev.fl.Wake = d.wake
	// Pre-arm the wake signal when work is already waiting — buffered by
	// the owner batch, locally queued, or in the injection queue — so a
	// well-behaved source's select fires immediately. The queue probes
	// are atomic loads.
	d.drainWake()
	if morePending || d.dq.len() > 0 || e.ninject.Load() > 0 {
		d.signalWake()
	}
	t0 := time.Now()
	rec, err := ev.st.fn(ev.fl)
	switch {
	case err == nil:
		e.s.stats.Started.Add(1)
		flow := e.s.newFlow(e.ctx, ev.st.sessionOf(rec))
		flow.SourceTimeout = e.s.cfg.SourceTimeout
		flow.adoptRecord(ev.fl)
		flow.disp = d
		e.inflight.Add(1)
		// Re-queue the source first — at the FIFO end, so a dispatcher
		// owning several sources rotates through them — then run the new
		// flow inline until it blocks. The queued source event sits at
		// the steal end, so a parked peer can take over admission while
		// this core runs the flow.
		d.dq.pushTop(ev)
		e.wakeOneParked()
		d.run(flow, ev.st.tbl, ev.st.tbl.g.Entry, rec, 0)
	case errors.Is(err, ErrNoData):
		ev.fl.releaseRecord() // a drawn-but-unused record goes back now
		// Guard against sources that return early instead of waiting out
		// their deadline: an idle engine would otherwise hot-spin. The
		// guard sleep is interrupted by new work arriving (deque pushes
		// and Submit both signal wake tokens) and skipped while the owner
		// batch still buffers runnable events.
		if !morePending && d.dq.len() == 0 && e.ninject.Load() <= 0 {
			if rest := e.s.cfg.SourceTimeout - time.Since(t0); rest > 0 {
				d.sleepWakeable(rest)
			}
		}
		d.dq.pushTop(ev)
	case errors.Is(err, ErrStop),
		errors.Is(err, context.Canceled),
		errors.Is(err, context.DeadlineExceeded):
		d.retireSource(ev)
	default:
		e.s.stats.NodeErrors.Add(1)
		d.retireSource(ev)
	}
}

// sleepWakeable waits without outliving the run context, returning early
// when new work arrives.
func (d *stealDispatcher) sleepWakeable(dur time.Duration) {
	t := time.NewTimer(dur)
	defer t.Stop()
	select {
	case <-t.C:
	case <-d.wake:
	case <-d.e.ctx.Done():
	}
}

// run executes consecutive vertices of one flow inline — run-to-block —
// identical in structure to the event engine's dispatch, with blocking
// nodes offloaded to the shared async pool and contended constraints
// parked through the flow's intrusive waiter node.
func (d *stealDispatcher) run(fl *Flow, tbl *graphTable, v *core.FlatNode, rec Record, acquired int) {
	e := d.e
	s := e.s
	for {
		switch v.Kind {
		case core.FlatExec:
			info := &tbl.info[v.ID]
			if info.blocking {
				e.asyncq.push(event{kind: evStep, fl: fl, tbl: tbl, v: v, rec: rec})
				return
			}
			out, err := s.callNode(fl, tbl, v, rec)
			r := s.afterExec(fl, v, rec, out, err)
			v, rec = r.next, r.rec

		case core.FlatBranch:
			r := s.branchVertex(fl, tbl, v, rec)
			if r.terminal {
				e.inflight.Add(-1)
				s.freeFlow(fl)
				return
			}
			v, rec = r.next, r.rec

		case core.FlatAcquire:
			info := &tbl.info[v.ID]
			for acquired < len(info.cons) {
				rc := info.cons[acquired]
				if s.locks.tryAcquireResolved(fl, rc) {
					acquired++
					continue
				}
				fl.lw.tbl, fl.lw.v, fl.lw.rec, fl.lw.acquired = tbl, v, rec, acquired+1
				if !s.locks.parkWaiter(fl, rc, e) {
					return
				}
				acquired++
			}
			acquired = 0
			fl.path += v.Out[0].Inc
			v = v.Out[0].To

		case core.FlatRelease:
			s.locks.releaseN(fl, len(v.Cons))
			fl.path += v.Out[0].Inc
			v = v.Out[0].To

		case core.FlatExit, core.FlatError:
			s.finishFlow(fl, tbl.g, v)
			e.inflight.Add(-1)
			s.freeFlow(fl)
			return
		}
	}
}

// resumeGranted lands a lock-granted continuation on the resuming
// dispatcher's deque — the one whose release performed the handoff, so
// the protected state is already in its cache — falling back to the
// injection queue for grants triggered off-dispatcher.
func (e *stealEngine) resumeGranted(n *lockWaiterNode, by *Flow) {
	ev := event{kind: evStep, fl: n.fl, tbl: n.tbl, v: n.v, rec: n.rec, acquired: n.acquired}
	n.rec = nil // the event owns the record now; drop the node's pin
	if d := by.disp; d != nil && d.e == e {
		e.pushTo(d, ev)
		return
	}
	if e.injectq.offer(ev) {
		e.ninject.Add(1)
		e.wakeOne()
		return
	}
	// The injection queue only closes once inflight == 0, and a granted
	// continuation keeps inflight > 0 — so this push cannot be refused
	// while the flow it carries is alive. Land it on dispatcher 0 as a
	// belt-and-braces fallback.
	e.pushTo(e.disp[0], ev)
}

// asyncWorker runs offloaded blocking nodes and re-queues their results
// on the owning flow's last dispatcher, preserving locality.
func (e *stealEngine) asyncWorker() {
	for {
		ev, ok := e.asyncq.pop()
		if !ok {
			return
		}
		out, err := e.s.callNode(ev.fl, ev.tbl, ev.v, ev.rec)
		ev.kind = evResult
		ev.out, ev.err = out, err
		if d := ev.fl.disp; d != nil {
			e.pushTo(d, ev)
		} else {
			e.pushTo(e.disp[0], ev)
		}
	}
}
