package runtime

// Tests for the work-stealing deque: LIFO owner end, FIFO steal end,
// steal-half sizing, and conservation under concurrent owner/thief
// traffic (run with -race).

import (
	"sync"
	"testing"
	"testing/quick"
)

func TestDequeOwnerLIFO(t *testing.T) {
	var d deque[int]
	for i := 1; i <= 5; i++ {
		d.push(i)
	}
	for want := 5; want >= 1; want-- {
		v, ok := d.pop()
		if !ok || v != want {
			t.Fatalf("pop = %d, %v; want %d (owner end must be LIFO)", v, ok, want)
		}
	}
	if _, ok := d.pop(); ok {
		t.Fatal("pop on empty deque reported ok")
	}
}

func TestDequeStealHalfTakesOldestInOrder(t *testing.T) {
	var d deque[int]
	for i := 1; i <= 7; i++ {
		d.push(i)
	}
	var scratch []int
	n := d.stealHalf(&scratch)
	if n != 4 { // ceil(7/2)
		t.Fatalf("stole %d of 7, want 4 (ceil half)", n)
	}
	for i := 0; i < n; i++ {
		if scratch[i] != i+1 {
			t.Fatalf("stolen[%d] = %d, want %d (steal end must be FIFO, oldest first)", i, scratch[i], i+1)
		}
	}
	if d.len() != 3 {
		t.Fatalf("victim left with %d, want 3", d.len())
	}
	// The owner keeps its LIFO view of the remainder.
	if v, _ := d.pop(); v != 7 {
		t.Fatalf("owner pop after steal = %d, want 7", v)
	}
}

func TestDequeStealHalfSizing(t *testing.T) {
	// k = n - n/2 for every n: a single queued item is worth taking.
	f := func(n uint8) bool {
		var d deque[int]
		for i := 0; i < int(n); i++ {
			d.push(i)
		}
		var scratch []int
		got := d.stealHalf(&scratch)
		want := int(n) - int(n)/2
		if got != want || d.len() != int(n)-want {
			t.Logf("n=%d: stole %d (want %d), left %d", n, got, want, d.len())
			return false
		}
		for i := 0; i < got; i++ {
			if scratch[i] != i {
				t.Logf("n=%d: stolen[%d] = %d", n, i, scratch[i])
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDequeGrowthAcrossWrap(t *testing.T) {
	var d deque[int]
	// Interleave pushes and pops so head walks around the ring, then
	// force growth with the ring in a wrapped state.
	for i := 0; i < 40; i++ {
		d.push(i)
	}
	var scratch []int
	d.stealHalf(&scratch) // advance head
	for i := 40; i < 400; i++ {
		d.push(i) // forces at least two growths
	}
	// Everything must come back exactly once: steal FIFO returns the
	// oldest prefix, owner pops return the rest newest-first.
	seen := make(map[int]bool)
	for _, v := range scratch {
		seen[v] = true
	}
	for {
		v, ok := d.pop()
		if !ok {
			break
		}
		if seen[v] {
			t.Fatalf("duplicate element %d after growth", v)
		}
		seen[v] = true
	}
	if len(seen) != 400 {
		t.Fatalf("recovered %d of 400 elements", len(seen))
	}
}

// TestDequeConcurrentStealConservation: one owner pushing and popping,
// several thieves stealing halves — every pushed value must surface
// exactly once across owner pops and steals. Run under -race this also
// proves the locking discipline.
func TestDequeConcurrentStealConservation(t *testing.T) {
	var d deque[int]
	const total = 20000
	const thieves = 3

	var mu sync.Mutex
	counts := make(map[int]int, total)
	record := func(vals ...int) {
		mu.Lock()
		for _, v := range vals {
			counts[v]++
		}
		mu.Unlock()
	}

	done := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < thieves; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var scratch []int
			for {
				if n := d.stealHalf(&scratch); n > 0 {
					record(scratch[:n]...)
					continue
				}
				select {
				case <-done:
					// One final sweep: the owner may have pushed between
					// our last steal and its exit.
					if n := d.stealHalf(&scratch); n > 0 {
						record(scratch[:n]...)
						continue
					}
					return
				default:
				}
			}
		}()
	}

	// Owner: push everything, popping a few along the way.
	for i := 0; i < total; i++ {
		d.push(i)
		if i%3 == 0 {
			if v, ok := d.pop(); ok {
				record(v)
			}
		}
	}
	for {
		v, ok := d.pop()
		if !ok {
			break
		}
		record(v)
	}
	close(done)
	wg.Wait()
	// Drain anything left after the thieves exited.
	for {
		v, ok := d.pop()
		if !ok {
			break
		}
		record(v)
	}

	if len(counts) != total {
		t.Fatalf("recovered %d of %d distinct values", len(counts), total)
	}
	for v, n := range counts {
		if n != 1 {
			t.Fatalf("value %d surfaced %d times", v, n)
		}
	}
}

// TestDequeOwnerPopBatchOrder: popBatch must yield exactly what repeated
// pop calls would — newest first — and leave the steal end intact.
func TestDequeOwnerPopBatchOrder(t *testing.T) {
	var d deque[int]
	for i := 0; i < 10; i++ {
		d.push(i)
	}
	buf := make([]int, 4)
	if n := d.popBatch(buf); n != 4 {
		t.Fatalf("popBatch = %d, want 4", n)
	}
	for i, want := range []int{9, 8, 7, 6} {
		if buf[i] != want {
			t.Fatalf("batch[%d] = %d, want %d (LIFO violated)", i, buf[i], want)
		}
	}
	if d.len() != 6 {
		t.Fatalf("len = %d after batch, want 6", d.len())
	}
	// The oldest elements are still at the steal end.
	var scratch []int
	if k := d.stealHalf(&scratch); k != 3 || scratch[0] != 0 || scratch[1] != 1 || scratch[2] != 2 {
		t.Fatalf("stealHalf after popBatch = %d %v, want oldest 3", k, scratch)
	}
	// Draining an empty deque reports zero, and a short deque yields what
	// is there.
	if n := d.popBatch(make([]int, 8)); n != 3 {
		t.Fatalf("popBatch on 3-element deque = %d", n)
	}
	if n := d.popBatch(buf); n != 0 {
		t.Fatalf("popBatch on empty deque = %d", n)
	}
}

// TestDequeOwnerPopBatchVsThieves: concurrent batch pops and steals must
// surface every element exactly once.
func TestDequeOwnerPopBatchVsThieves(t *testing.T) {
	var d deque[int]
	const total = 20000
	counts := make(map[int]int, total)
	var mu sync.Mutex
	record := func(vs ...int) {
		mu.Lock()
		for _, v := range vs {
			counts[v]++
		}
		mu.Unlock()
	}

	done := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 2; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var scratch []int
			for {
				select {
				case <-done:
					return
				default:
				}
				if k := d.stealHalf(&scratch); k > 0 {
					record(scratch[:k]...)
				}
			}
		}()
	}

	buf := make([]int, 8)
	for i := 0; i < total; i++ {
		d.push(i)
		if i%5 == 0 {
			record(buf[:d.popBatch(buf)]...)
		}
	}
	for {
		n := d.popBatch(buf)
		if n == 0 {
			break
		}
		record(buf[:n]...)
	}
	close(done)
	wg.Wait()
	for {
		n := d.popBatch(buf)
		if n == 0 {
			break
		}
		record(buf[:n]...)
	}

	if len(counts) != total {
		t.Fatalf("recovered %d of %d distinct values", len(counts), total)
	}
	for v, n := range counts {
		if n != 1 {
			t.Fatalf("value %d surfaced %d times", v, n)
		}
	}
}
