//go:build race

package runtime

// raceEnabled reports that the race detector is active: sync.Pool
// deliberately randomizes its behavior under -race, so tests asserting
// strict pool recycling relax themselves.
const raceEnabled = true
