package runtime

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/flux-lang/flux/internal/core"
	"github.com/flux-lang/flux/internal/lang/parser"
)

func compileSrc(t *testing.T, src string) *core.Program {
	t.Helper()
	astProg, err := parser.Parse("test.flux", src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	p, err := core.Build(astProg)
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	return p
}

// counterSource produces n records then stops.
func counterSource(n int) SourceFunc {
	var i atomic.Int64
	return func(fl *Flow) (Record, error) {
		v := i.Add(1)
		if v > int64(n) {
			return nil, ErrStop
		}
		return Record{int(v)}, nil
	}
}

const pipelineSrc = `
Gen () => (int v);
Double (int v) => (int v);
Sink (int v) => ();
source Gen => Flow;
Flow = Double -> Sink;
`

// buildPipeline returns a server running Gen -> Double -> Sink over the
// given engine, with results collected into got.
func buildPipeline(t *testing.T, kind EngineKind, n int) (*Server, *[]int, *sync.Mutex) {
	t.Helper()
	p := compileSrc(t, pipelineSrc)
	var mu sync.Mutex
	got := &[]int{}
	b := NewBindings().
		BindSource("Gen", counterSource(n)).
		BindNode("Double", func(fl *Flow, in Record) (Record, error) {
			return Record{in[0].(int) * 2}, nil
		}).
		BindNode("Sink", func(fl *Flow, in Record) (Record, error) {
			mu.Lock()
			*got = append(*got, in[0].(int))
			mu.Unlock()
			return nil, nil
		})
	s, err := NewServer(p, b, Config{Kind: kind, PoolSize: 4, SourceTimeout: time.Millisecond})
	if err != nil {
		t.Fatalf("NewServer: %v", err)
	}
	return s, got, &mu
}

func TestPipelineAllEngines(t *testing.T) {
	for _, kind := range []EngineKind{ThreadPerFlow, ThreadPool, EventDriven} {
		t.Run(kind.String(), func(t *testing.T) {
			s, got, mu := buildPipeline(t, kind, 50)
			if err := s.Run(context.Background()); err != nil {
				t.Fatalf("Run: %v", err)
			}
			mu.Lock()
			defer mu.Unlock()
			if len(*got) != 50 {
				t.Fatalf("sink saw %d records, want 50", len(*got))
			}
			sum := 0
			for _, v := range *got {
				sum += v
			}
			if want := 2 * 50 * 51 / 2; sum != want {
				t.Errorf("sum = %d, want %d", sum, want)
			}
			st := s.Stats().Snapshot()
			if st.Started != 50 || st.Completed != 50 || st.Errored != 0 {
				t.Errorf("stats = %+v", st)
			}
		})
	}
}

const dispatchSrc = `
Gen () => (int v);
Evens (int v) => (int v);
Odds (int v) => (int v);
Sink (int v) => ();
source Gen => Flow;
Flow = Route -> Sink;
typedef even IsEven;
Route:[even] = Evens;
Route:[_] = Odds;
`

func TestPredicateDispatch(t *testing.T) {
	p := compileSrc(t, dispatchSrc)
	var evens, odds atomic.Int64
	b := NewBindings().
		BindSource("Gen", counterSource(100)).
		BindPredicate("IsEven", func(v any) bool { return v.(int)%2 == 0 }).
		BindNode("Evens", func(fl *Flow, in Record) (Record, error) {
			evens.Add(1)
			return in, nil
		}).
		BindNode("Odds", func(fl *Flow, in Record) (Record, error) {
			odds.Add(1)
			return in, nil
		}).
		BindNode("Sink", func(fl *Flow, in Record) (Record, error) { return nil, nil })
	s, err := NewServer(p, b, Config{Kind: ThreadPool, PoolSize: 8})
	if err != nil {
		t.Fatalf("NewServer: %v", err)
	}
	if err := s.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	if evens.Load() != 50 || odds.Load() != 50 {
		t.Errorf("evens=%d odds=%d, want 50/50", evens.Load(), odds.Load())
	}
}

const errorSrc = `
Gen () => (int v);
Risky (int v) => (int v);
Sink (int v) => ();
Handler (int v) => ();
source Gen => Flow;
Flow = Risky -> Sink;
handle error Risky => Handler;
`

func TestErrorHandlerInvoked(t *testing.T) {
	for _, kind := range []EngineKind{ThreadPerFlow, ThreadPool, EventDriven} {
		t.Run(kind.String(), func(t *testing.T) {
			p := compileSrc(t, errorSrc)
			var handled, sunk atomic.Int64
			b := NewBindings().
				BindSource("Gen", counterSource(20)).
				BindNode("Risky", func(fl *Flow, in Record) (Record, error) {
					if in[0].(int)%4 == 0 {
						return nil, errors.New("boom")
					}
					return in, nil
				}).
				BindNode("Sink", func(fl *Flow, in Record) (Record, error) {
					sunk.Add(1)
					return nil, nil
				}).
				BindNode("Handler", func(fl *Flow, in Record) (Record, error) {
					handled.Add(1)
					return nil, nil
				})
			s, err := NewServer(p, b, Config{Kind: kind, PoolSize: 4, SourceTimeout: time.Millisecond})
			if err != nil {
				t.Fatal(err)
			}
			if err := s.Run(context.Background()); err != nil {
				t.Fatal(err)
			}
			// Multiples of 4 in 1..20: 4, 8, 12, 16, 20 -> 5 failures.
			if handled.Load() != 5 {
				t.Errorf("handled = %d, want 5", handled.Load())
			}
			if sunk.Load() != 15 {
				t.Errorf("sunk = %d, want 15", sunk.Load())
			}
			st := s.Stats().Snapshot()
			if st.Errored != 5 || st.Completed != 15 {
				t.Errorf("stats = %+v", st)
			}
		})
	}
}

func TestUnhandledErrorTerminatesFlow(t *testing.T) {
	p := compileSrc(t, pipelineSrc)
	b := NewBindings().
		BindSource("Gen", counterSource(10)).
		BindNode("Double", func(fl *Flow, in Record) (Record, error) {
			return nil, errors.New("always fails")
		}).
		BindNode("Sink", func(fl *Flow, in Record) (Record, error) {
			t.Error("sink should never run")
			return nil, nil
		})
	s, err := NewServer(p, b, Config{Kind: ThreadPool, PoolSize: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	st := s.Stats().Snapshot()
	if st.Errored != 10 || st.Completed != 0 {
		t.Errorf("stats = %+v", st)
	}
}

const atomicSrc = `
Gen () => (int v);
Bump (int v) => (int v);
Sink (int v) => ();
source Gen => Flow;
Flow = Bump -> Sink;
atomic Bump:{counter};
`

// TestAtomicityConstraintSerializes drives many concurrent flows through
// a node that increments an unsynchronized counter under a writer
// constraint. Run with -race this fails loudly if the lock manager does
// not serialize; without constraints the final count would also be lost
// to races.
func TestAtomicityConstraintSerializes(t *testing.T) {
	for _, kind := range []EngineKind{ThreadPerFlow, ThreadPool, EventDriven} {
		t.Run(kind.String(), func(t *testing.T) {
			p := compileSrc(t, atomicSrc)
			counter := 0 // deliberately unsynchronized
			b := NewBindings().
				BindSource("Gen", counterSource(500)).
				BindNode("Bump", func(fl *Flow, in Record) (Record, error) {
					counter++
					return in, nil
				}).
				BindNode("Sink", func(fl *Flow, in Record) (Record, error) { return nil, nil })
			s, err := NewServer(p, b, Config{Kind: kind, PoolSize: 16, SourceTimeout: time.Millisecond})
			if err != nil {
				t.Fatal(err)
			}
			if err := s.Run(context.Background()); err != nil {
				t.Fatal(err)
			}
			if counter != 500 {
				t.Errorf("counter = %d, want 500 (constraint failed to serialize)", counter)
			}
		})
	}
}

// TestReaderConstraintAllowsConcurrency verifies that reader-constrained
// nodes overlap: with 8 flows each holding the read lock for 10ms, total
// wall time far below 8x10ms proves concurrent readers.
func TestReaderConstraintAllowsConcurrency(t *testing.T) {
	p := compileSrc(t, `
Gen () => (int v);
Read (int v) => (int v);
Sink (int v) => ();
source Gen => Flow;
Flow = Read -> Sink;
atomic Read:{state?};
`)
	var inside, maxInside atomic.Int64
	b := NewBindings().
		BindSource("Gen", counterSource(8)).
		BindNode("Read", func(fl *Flow, in Record) (Record, error) {
			n := inside.Add(1)
			for {
				m := maxInside.Load()
				if n <= m || maxInside.CompareAndSwap(m, n) {
					break
				}
			}
			time.Sleep(10 * time.Millisecond)
			inside.Add(-1)
			return in, nil
		}).
		BindNode("Sink", func(fl *Flow, in Record) (Record, error) { return nil, nil })
	s, err := NewServer(p, b, Config{Kind: ThreadPerFlow})
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	if err := s.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	if maxInside.Load() < 2 {
		t.Errorf("max concurrent readers = %d, want >= 2", maxInside.Load())
	}
	if elapsed := time.Since(start); elapsed > 60*time.Millisecond {
		t.Errorf("elapsed = %v; readers apparently serialized", elapsed)
	}
}

// TestSessionConstraintScopesLocks: flows in different sessions must not
// contend on a session-scoped constraint, flows in the same session must.
func TestSessionConstraintScopesLocks(t *testing.T) {
	p := compileSrc(t, `
Gen () => (int v);
Touch (int v) => (int v);
Sink (int v) => ();
source Gen => Flow;
Flow = Touch -> Sink;
atomic Touch:{state(session)};
session Gen SessOf;
`)
	perSession := map[uint64]*int{0: new(int), 1: new(int)}
	b := NewBindings().
		BindSource("Gen", counterSource(200)).
		BindSession("SessOf", func(rec Record) uint64 {
			return uint64(rec[0].(int) % 2)
		}).
		BindNode("Touch", func(fl *Flow, in Record) (Record, error) {
			*perSession[fl.Session]++ // serialized per session by the constraint
			return in, nil
		}).
		BindNode("Sink", func(fl *Flow, in Record) (Record, error) { return nil, nil })
	s, err := NewServer(p, b, Config{Kind: ThreadPerFlow})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	if *perSession[0] != 100 || *perSession[1] != 100 {
		t.Errorf("per-session counts = %d/%d, want 100/100", *perSession[0], *perSession[1])
	}
}

func TestDroppedFlowWhenNoCaseMatches(t *testing.T) {
	p := compileSrc(t, `
Gen () => (int v);
Big (int v) => (int v);
Sink (int v) => ();
source Gen => Flow;
Flow = Route -> Sink;
typedef big IsBig;
Route:[big] = Big;
`)
	b := NewBindings().
		BindSource("Gen", counterSource(10)).
		BindPredicate("IsBig", func(v any) bool { return v.(int) > 5 }).
		BindNode("Big", func(fl *Flow, in Record) (Record, error) { return in, nil }).
		BindNode("Sink", func(fl *Flow, in Record) (Record, error) { return nil, nil })
	s, err := NewServer(p, b, Config{Kind: ThreadPool, PoolSize: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	st := s.Stats().Snapshot()
	if st.Dropped != 5 || st.Completed != 5 {
		t.Errorf("stats = %+v, want 5 dropped / 5 completed", st)
	}
}

func TestArityErrorCountsAndTerminates(t *testing.T) {
	p := compileSrc(t, pipelineSrc)
	b := NewBindings().
		BindSource("Gen", counterSource(3)).
		BindNode("Double", func(fl *Flow, in Record) (Record, error) {
			return Record{1, 2, 3}, nil // wrong arity: signature says 1
		}).
		BindNode("Sink", func(fl *Flow, in Record) (Record, error) {
			t.Error("sink must not run after arity error")
			return nil, nil
		})
	s, err := NewServer(p, b, Config{Kind: ThreadPool, PoolSize: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	st := s.Stats().Snapshot()
	if st.ArityErrors != 3 || st.Errored != 3 {
		t.Errorf("stats = %+v", st)
	}
}

func TestValidateMissingBindings(t *testing.T) {
	p := compileSrc(t, pipelineSrc)
	cases := []struct {
		name string
		b    *Bindings
		want string
	}{
		{"missing source", NewBindings().
			BindNode("Double", nopNode).BindNode("Sink", nopNode), `source "Gen"`},
		{"missing node", NewBindings().
			BindSource("Gen", counterSource(1)).BindNode("Sink", nopNode), `node "Double"`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := NewServer(p, tc.b, Config{})
			if err == nil {
				t.Fatal("expected binding error")
			}
			var be *BindingError
			if !errors.As(err, &be) {
				t.Fatalf("error type = %T", err)
			}
			if got := err.Error(); !contains(got, tc.want) {
				t.Errorf("error = %q, want substring %q", got, tc.want)
			}
		})
	}
}

func nopNode(fl *Flow, in Record) (Record, error) { return in, nil }

func contains(s, sub string) bool {
	return len(s) >= len(sub) && (s == sub || len(sub) == 0 ||
		(func() bool {
			for i := 0; i+len(sub) <= len(s); i++ {
				if s[i:i+len(sub)] == sub {
					return true
				}
			}
			return false
		})())
}

func TestContextCancelStopsSources(t *testing.T) {
	for _, kind := range []EngineKind{ThreadPerFlow, ThreadPool, EventDriven} {
		t.Run(kind.String(), func(t *testing.T) {
			p := compileSrc(t, pipelineSrc)
			b := NewBindings().
				BindSource("Gen", func(fl *Flow) (Record, error) {
					select {
					case <-fl.Ctx.Done():
						return nil, fl.Ctx.Err()
					case <-time.After(time.Millisecond):
						return Record{1}, nil
					}
				}).
				BindNode("Double", nopNode).
				BindNode("Sink", func(fl *Flow, in Record) (Record, error) { return nil, nil })
			s, err := NewServer(p, b, Config{Kind: kind, PoolSize: 2, SourceTimeout: time.Millisecond})
			if err != nil {
				t.Fatal(err)
			}
			ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
			defer cancel()
			done := make(chan error, 1)
			go func() { done <- s.Run(ctx) }()
			select {
			case err := <-done:
				if !errors.Is(err, context.DeadlineExceeded) {
					t.Errorf("Run returned %v", err)
				}
			case <-time.After(5 * time.Second):
				t.Fatal("server did not stop after context cancellation")
			}
			if s.Stats().Snapshot().Completed == 0 {
				t.Error("no flows completed before cancellation")
			}
		})
	}
}

// TestEventEngineOffloadsBlockingNodes: a blocking node sleeping 20ms x 8
// flows completes in far less than 160ms when offloaded concurrently.
func TestEventEngineOffloadsBlockingNodes(t *testing.T) {
	p := compileSrc(t, pipelineSrc)
	b := NewBindings().
		BindSource("Gen", counterSource(8)).
		BindNode("Double", func(fl *Flow, in Record) (Record, error) {
			time.Sleep(20 * time.Millisecond)
			return in, nil
		}).
		BindNode("Sink", func(fl *Flow, in Record) (Record, error) { return nil, nil }).
		MarkBlocking("Double")
	s, err := NewServer(p, b, Config{Kind: EventDriven, AsyncWorkers: 8, SourceTimeout: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	if err := s.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	elapsed := time.Since(start)
	if elapsed > 120*time.Millisecond {
		t.Errorf("elapsed = %v; blocking nodes apparently serialized on the dispatcher", elapsed)
	}
	if got := s.Stats().Snapshot().Completed; got != 8 {
		t.Errorf("completed = %d", got)
	}
}

// TestMultipleSources runs two sources feeding the same flow.
func TestMultipleSources(t *testing.T) {
	p := compileSrc(t, `
GenA () => (int v);
GenB () => (int v);
Sink (int v) => ();
source GenA => Flow;
source GenB => Flow;
Flow = Sink;
`)
	var n atomic.Int64
	b := NewBindings().
		BindSource("GenA", counterSource(30)).
		BindSource("GenB", counterSource(20)).
		BindNode("Sink", func(fl *Flow, in Record) (Record, error) {
			n.Add(1)
			return nil, nil
		})
	s, err := NewServer(p, b, Config{Kind: ThreadPool, PoolSize: 4})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	if n.Load() != 50 {
		t.Errorf("sink executions = %d, want 50", n.Load())
	}
}

// profileRecorder collects FlowDone/NodeDone callbacks for tests.
type profileRecorder struct {
	mu    sync.Mutex
	flows map[uint64]int
	nodes map[string]int
}

func (r *profileRecorder) FlowDone(g *core.FlatGraph, pathID uint64, d time.Duration) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.flows == nil {
		r.flows = make(map[uint64]int)
	}
	r.flows[pathID]++
}

func (r *profileRecorder) NodeDone(g *core.FlatGraph, v *core.FlatNode, d time.Duration) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.nodes == nil {
		r.nodes = make(map[string]int)
	}
	r.nodes[v.Node.Name]++
}

// TestPathProfiling verifies Ball-Larus IDs reported by the runtime
// decode to the expected node sequences.
func TestPathProfiling(t *testing.T) {
	p := compileSrc(t, dispatchSrc)
	rec := &profileRecorder{}
	b := NewBindings().
		BindSource("Gen", counterSource(10)).
		BindPredicate("IsEven", func(v any) bool { return v.(int)%2 == 0 }).
		BindNode("Evens", nopNode).
		BindNode("Odds", nopNode).
		BindNode("Sink", func(fl *Flow, in Record) (Record, error) { return nil, nil })
	s, err := NewServer(p, b, Config{Kind: ThreadPool, PoolSize: 1, Profiler: rec})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	g := p.Graphs["Gen"]
	rec.mu.Lock()
	defer rec.mu.Unlock()
	if len(rec.flows) != 2 {
		t.Fatalf("distinct paths = %d (%v), want 2", len(rec.flows), rec.flows)
	}
	for id, count := range rec.flows {
		label := g.PathLabel(id)
		if count != 5 {
			t.Errorf("path %q count = %d, want 5", label, count)
		}
		if label != "Gen -> Evens -> Sink" && label != "Gen -> Odds -> Sink" {
			t.Errorf("unexpected path %q", label)
		}
	}
	if rec.nodes["Sink"] != 10 {
		t.Errorf("Sink executions = %d", rec.nodes["Sink"])
	}
}

// TestNoLockLeaks: after a run with errors and branches, every lock in the
// manager must be free (acquirable immediately by a fresh flow).
func TestNoLockLeaks(t *testing.T) {
	p := compileSrc(t, `
Gen () => (int v);
A (int v) => (int v);
B (int v) => (int v);
Sink (int v) => ();
source Gen => F;
F = A -> B -> Sink;
atomic F:{outer};
atomic A:{a};
atomic B:{b};
`)
	b := NewBindings().
		BindSource("Gen", counterSource(50)).
		BindNode("A", nopNode).
		BindNode("B", func(fl *Flow, in Record) (Record, error) {
			if in[0].(int)%3 == 0 {
				return nil, fmt.Errorf("fail %d", in[0])
			}
			return in, nil
		}).
		BindNode("Sink", func(fl *Flow, in Record) (Record, error) { return nil, nil })
	s, err := NewServer(p, b, Config{Kind: ThreadPerFlow})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	// All locks must be immediately acquirable.
	fl := s.newFlow(context.Background(), 0)
	for _, name := range []string{"outer", "a", "b"} {
		l := s.locks.lock(lockKey{name: name})
		if !l.tryAcquire(fl, true) {
			t.Errorf("lock %q still held after run", name)
		}
	}
}
