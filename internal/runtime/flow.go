package runtime

import (
	"context"
	"time"
)

// Flow is the per-request execution context: one flow exists for each
// record a source produces, for the duration of its trip through the
// program graph (Figure 1's "dynamic view": one flow per client request).
type Flow struct {
	// Ctx is the server's run context; node functions performing long
	// blocking operations should honor its cancellation.
	Ctx context.Context

	// Session is the session identifier computed by the source's
	// session-id function, or 0 (§2.5.1).
	Session uint64

	// SourceTimeout, when nonzero, asks the source function to poll with
	// a deadline and return ErrNoData on expiry. The event engine sets
	// it so the dispatcher is never blocked indefinitely inside a source
	// (the select-with-timeout pattern of §4.2).
	SourceTimeout time.Duration

	// Wake, when non-nil, is signaled by the event engine when other
	// work arrives while a source is polling. Channel-based sources
	// should include it in their select and return ErrNoData — the
	// paper's server blocks in one select watching all activity, so any
	// completion wakes it; Wake is that "other activity" signal for
	// sources that only watch their own readiness. Sources that ignore
	// it still work, at the cost of holding the dispatcher for up to
	// SourceTimeout per poll.
	Wake <-chan struct{}

	// path accumulates the Ball-Larus path register: one addition per
	// traversed edge (§5.2).
	path uint64

	// start is the flow's start time for path-time attribution.
	start time.Time

	// held is the flow's lock stack, outermost first.
	held []heldToken

	// src is set on externally-injected flows (Server.Inject) so the
	// engine's Submit knows which graph to run.
	src *sourceState

	srv *Server
}

// PathID returns the current Ball-Larus path register value.
func (fl *Flow) PathID() uint64 { return fl.path }

func (fl *Flow) releaseTop() {
	t := fl.held[len(fl.held)-1]
	fl.held = fl.held[:len(fl.held)-1]
	t.lock.release(fl)
}
