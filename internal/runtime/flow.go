package runtime

import (
	"context"
	"sync"
	"time"
)

// Flow is the per-request execution context: one flow exists for each
// record a source produces, for the duration of its trip through the
// program graph (Figure 1's "dynamic view": one flow per client request).
type Flow struct {
	// Ctx is the server's run context; node functions performing long
	// blocking operations should honor its cancellation.
	Ctx context.Context

	// Session is the session identifier computed by the source's
	// session-id function, or 0 (§2.5.1).
	Session uint64

	// SourceTimeout, when nonzero, asks the source function to poll with
	// a deadline and return ErrNoData on expiry. The event engine sets
	// it so the dispatcher is never blocked indefinitely inside a source
	// (the select-with-timeout pattern of §4.2).
	SourceTimeout time.Duration

	// Wake, when non-nil, is signaled by the event engine when other
	// work arrives while a source is polling. Channel-based sources
	// should include it in their select and return ErrNoData — the
	// paper's server blocks in one select watching all activity, so any
	// completion wakes it; Wake is that "other activity" signal for
	// sources that only watch their own readiness. Sources that ignore
	// it still work, at the cost of holding the dispatcher for up to
	// SourceTimeout per poll.
	Wake <-chan struct{}

	// path accumulates the Ball-Larus path register: one addition per
	// traversed edge (§5.2).
	path uint64

	// start is the flow's start time for path-time attribution.
	start time.Time

	// held is the flow's lock stack, outermost first.
	held []heldToken

	// src is set on externally-injected flows (Server.Inject) so the
	// engine's Submit knows which graph to run, and on the engines' poll
	// contexts so NewRecord can reach the source's record pool.
	src *sourceState

	// lw is the flow's embedded lock-waiter node: a flow blocks on at
	// most one constraint at a time, so parking on a contended lock
	// reuses this node instead of allocating a continuation closure.
	lw lockWaiterNode

	// disp is the work-stealing dispatcher currently running the flow;
	// lock grants triggered by this flow's releases resume waiters onto
	// that dispatcher's local deque. Nil on every other engine.
	disp *stealDispatcher

	// recBox holds the flow's pooled source record, if the source drew
	// one with NewRecord; it returns to the source's pool when the flow
	// is retired.
	recBox *pooledRec

	srv *Server
}

// pooledRec is one recyclable source record and the pool it returns to.
type pooledRec struct {
	pool *sync.Pool
	buf  Record
}

// NewRecord returns a record of length n drawn from the flow's source
// record pool, closing the last per-request allocation: the runtime
// reclaims the record when the flow reaches a terminal. Sources call it
// once per produced record in place of make(Record, n); the values
// stored in it are the caller's business, but neither the record nor
// its backing array may be retained past the flow's terminal — a node
// that stashes its input record away must copy it (Record.Clone).
// Outside a source poll (or if called more than once per poll) it
// degrades to a plain allocation.
func (fl *Flow) NewRecord(n int) Record {
	if fl.src == nil || fl.recBox != nil {
		return make(Record, n)
	}
	b := fl.src.recPool.Get().(*pooledRec)
	if cap(b.buf) < n {
		b.buf = make(Record, n)
	}
	b.buf = b.buf[:n]
	fl.recBox = b
	return b.buf
}

// adoptRecord moves the poll context's pooled record to the flow that
// will run it, so the record is reclaimed exactly once — at that flow's
// terminal — and the poll context is free to draw a fresh record on its
// next iteration.
func (fl *Flow) adoptRecord(from *Flow) {
	fl.recBox, from.recBox = from.recBox, nil
}

// takeRecBox detaches the poll context's pooled record for engines that
// queue admissions before building the flow (the thread pool's FIFO).
func (fl *Flow) takeRecBox() *pooledRec {
	b := fl.recBox
	fl.recBox = nil
	return b
}

// releaseRecord reclaims an attached pooled record immediately: the
// flow terminal's free for retired flows, and the engines' cleanup when
// a source draws a record but then produces no flow (ErrNoData), so the
// long-lived poll context keeps pooling.
func (fl *Flow) releaseRecord() {
	if b := fl.recBox; b != nil {
		fl.recBox = nil
		clear(b.buf)
		b.pool.Put(b)
	}
}

// PathID returns the current Ball-Larus path register value.
func (fl *Flow) PathID() uint64 { return fl.path }

func (fl *Flow) releaseTop() {
	t := fl.held[len(fl.held)-1]
	fl.held = fl.held[:len(fl.held)-1]
	t.lock.release(fl)
}
