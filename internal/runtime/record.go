// Package runtime executes compiled Flux programs. It provides the three
// runtime systems of §3.2 — one thread (goroutine) per flow, a fixed
// thread pool with FIFO admission, and an event-driven engine with an
// explicit event queue and asynchronous-I/O offload — behind a single
// Server API, plus the reentrant reader-writer lock manager that
// implements atomicity constraints with two-phase, canonically ordered
// acquisition (§2.5, §3.1.1).
package runtime

import (
	"errors"
	"fmt"
)

// Record is the tuple of values flowing between nodes. Positions
// correspond to the parameters of the declared Flux signatures; the
// static types are checked by the compiler and the dynamic values are the
// bound Go functions' business (as in the paper, where nodes exchange C
// structs the coordination layer does not interpret).
type Record []any

// Clone returns a shallow copy. Node functions may retain their input
// record, so engines clone when a record fans out.
func (r Record) Clone() Record {
	out := make(Record, len(r))
	copy(out, r)
	return out
}

// Sentinel errors a SourceFunc can return to steer its engine.
var (
	// ErrStop tells the engine the source is exhausted; its loop exits.
	// Long-running servers never return it; bounded workloads and tests
	// do.
	ErrStop = errors.New("flux/runtime: source stopped")

	// ErrNoData tells the engine the source found nothing before its
	// polling deadline; the engine re-issues the source later. Sources
	// used with the event engine must poll with a deadline (the paper's
	// select-with-timeout pattern, §4.2) and return ErrNoData on expiry
	// so they never wedge the dispatcher.
	ErrNoData = errors.New("flux/runtime: no data before deadline")
)

// NodeFunc implements a concrete node: it consumes the input record and
// produces the output record. Returning a non-nil error routes the flow
// to the node's error handler, or terminates it (§2.4).
type NodeFunc func(fl *Flow, in Record) (Record, error)

// SourceFunc produces one record per call to initiate a flow (§2.1).
type SourceFunc func(fl *Flow) (Record, error)

// PredicateFunc implements a predicate type (§2.3): an arbitrary boolean
// function applied to one output argument.
type PredicateFunc func(v any) bool

// SessionFunc maps a source record to a session identifier for
// session-scoped constraints (§2.5.1).
type SessionFunc func(rec Record) uint64

// BindingError reports a missing or malformed binding discovered when a
// server is constructed.
type BindingError struct {
	What string // "node", "source", "predicate", "session"
	Name string
	Msg  string
}

func (e *BindingError) Error() string {
	return fmt.Sprintf("flux/runtime: %s %q: %s", e.What, e.Name, e.Msg)
}
