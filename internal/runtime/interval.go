package runtime

import (
	"sync"
	"time"
)

// IntervalSource builds a source that fires every interval, emitting the
// tick count. Unlike a naive timer loop it honors Flow.SourceTimeout: on
// the event engine the dispatcher is held for at most the polling
// deadline, returning ErrNoData until the interval elapses — a timer
// flow must never wedge the event queue (§3.2.2).
func IntervalSource(interval time.Duration) SourceFunc {
	var mu sync.Mutex
	var next time.Time
	var ticks int

	return func(fl *Flow) (Record, error) {
		mu.Lock()
		if next.IsZero() {
			next = time.Now().Add(interval)
		}
		target := next
		mu.Unlock()

		wait := time.Until(target)
		if fl.SourceTimeout > 0 && wait > fl.SourceTimeout {
			t := time.NewTimer(fl.SourceTimeout)
			defer t.Stop()
			if fl.Wake != nil {
				select {
				case <-t.C:
					return nil, ErrNoData
				case <-fl.Wake:
					return nil, ErrNoData
				case <-fl.Ctx.Done():
					return nil, fl.Ctx.Err()
				}
			}
			select {
			case <-t.C:
				return nil, ErrNoData
			case <-fl.Ctx.Done():
				return nil, fl.Ctx.Err()
			}
		}
		if wait > 0 {
			t := time.NewTimer(wait)
			defer t.Stop()
			select {
			case <-t.C:
			case <-fl.Ctx.Done():
				return nil, fl.Ctx.Err()
			}
		}
		mu.Lock()
		// Another concurrent call may have claimed this tick.
		if time.Now().Before(next) {
			mu.Unlock()
			return nil, ErrNoData
		}
		next = next.Add(interval)
		if until := time.Until(next); until < 0 {
			// The source fell behind (long pause); resynchronize
			// rather than firing a burst.
			next = time.Now().Add(interval)
		}
		ticks++
		n := ticks
		mu.Unlock()
		return Record{n}, nil
	}
}
