package runtime

import (
	"context"
	"net"
	"sync/atomic"
	"testing"
	"time"
)

// TestEventEngineTimerNotStarvedByBusySource reproduces the game
// server's shape: a busy source producing flows that contend on a
// constraint, plus a 100ms interval source. The interval flow must keep
// firing at roughly its rate; a fair dispatcher cannot let the busy
// source starve it.
func TestEventEngineTimerNotStarvedByBusySource(t *testing.T) {
	p := compileSrc(t, `
Busy () => (int v);
Apply (int v) => ();
Tick () => (int v);
Turn (int v) => ();
source Busy => Input;
Input = Apply;
source Tick => Beat;
Beat = Turn;
atomic Apply:{state};
atomic Turn:{state};
`)
	var turns, applies, polls atomic.Int64
	interval := IntervalSource(50 * time.Millisecond)
	b := NewBindings().
		BindSource("Busy", func(fl *Flow) (Record, error) {
			// A datagram is "always available": the source never
			// blocks, like a UDP socket under continuous load.
			if fl.Ctx.Err() != nil {
				return nil, fl.Ctx.Err()
			}
			return Record{1}, nil
		}).
		BindSource("Tick", func(fl *Flow) (Record, error) {
			polls.Add(1)
			return interval(fl)
		}).
		BindNode("Apply", func(fl *Flow, in Record) (Record, error) {
			applies.Add(1)
			return nil, nil
		}).
		BindNode("Turn", func(fl *Flow, in Record) (Record, error) {
			turns.Add(1)
			return nil, nil
		})
	s, err := NewServer(p, b, Config{Kind: EventDriven, SourceTimeout: 5 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	_ = s.Run(ctx)

	t.Logf("turns=%d applies=%d timer polls=%d", turns.Load(), applies.Load(), polls.Load())
	// One second at 50ms per turn is ~20 turns; demand at least half.
	if turns.Load() < 10 {
		t.Errorf("interval flow starved: %d turns in 1s, want ~20", turns.Load())
	}
	if applies.Load() == 0 {
		t.Error("busy source made no progress")
	}
}

// TestEventEngineTimerWithUDPSource replicates the game server's exact
// structure: a UDP read-with-deadline source plus an interval source,
// under a packet stream. This is the integration shape where heartbeat
// starvation was observed.
func TestEventEngineTimerWithUDPSource(t *testing.T) {
	conn, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	p := compileSrc(t, `
Recv () => (int v);
Apply (int v) => ();
Tick () => (int v);
Turn (int v) => ();
source Recv => Input;
Input = Apply;
source Tick => Beat;
Beat = Turn;
atomic Apply:{state};
atomic Turn:{state};
`)
	var turns, applies atomic.Int64
	interval := IntervalSource(50 * time.Millisecond)
	b := NewBindings().
		BindSource("Recv", func(fl *Flow) (Record, error) {
			buf := make([]byte, 64)
			deadline := time.Time{}
			if fl.SourceTimeout > 0 {
				deadline = time.Now().Add(fl.SourceTimeout)
			}
			if err := conn.SetReadDeadline(deadline); err != nil {
				return nil, ErrStop
			}
			n, _, err := conn.ReadFromUDP(buf)
			if err != nil {
				if fl.Ctx.Err() != nil {
					return nil, fl.Ctx.Err()
				}
				if ne, ok := err.(net.Error); ok && ne.Timeout() {
					return nil, ErrNoData
				}
				return nil, ErrStop
			}
			return Record{n}, nil
		}).
		BindSource("Tick", interval).
		BindNode("Apply", func(fl *Flow, in Record) (Record, error) {
			applies.Add(1)
			return nil, nil
		}).
		BindNode("Turn", func(fl *Flow, in Record) (Record, error) {
			turns.Add(1)
			return nil, nil
		})
	s, err := NewServer(p, b, Config{Kind: EventDriven, SourceTimeout: 5 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()

	// Client: 80 packets/sec at the server.
	go func() {
		cl, err := net.DialUDP("udp", nil, conn.LocalAddr().(*net.UDPAddr))
		if err != nil {
			return
		}
		defer cl.Close()
		tick := time.NewTicker(12 * time.Millisecond)
		defer tick.Stop()
		for {
			select {
			case <-ctx.Done():
				return
			case <-tick.C:
				cl.Write([]byte{2, 0, 0, 0, 0, 1, 1})
			}
		}
	}()

	_ = s.Run(ctx)
	t.Logf("turns=%d applies=%d", turns.Load(), applies.Load())
	if turns.Load() < 10 {
		t.Errorf("interval flow starved: %d turns in 1s, want ~20", turns.Load())
	}
	if applies.Load() < 40 {
		t.Errorf("udp flows = %d, want ~80", applies.Load())
	}
}
