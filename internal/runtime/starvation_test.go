package runtime

import (
	"context"
	"net"
	"sync/atomic"
	"testing"
	"time"
)

// TestStealEngineNoStrandedFlows: flows contending on one writer
// constraint across several dispatchers. Lock grants resume onto the
// releasing dispatcher's deque while the other dispatchers park; if the
// parker/wakeup protocol loses a wakeup — or a continuation lands in a
// deque nobody ever drains — the run wedges instead of completing.
func TestStealEngineNoStrandedFlows(t *testing.T) {
	p := compileSrc(t, `
Gen () => (int v);
Crit (int v) => (int v);
Sink (int v) => ();
source Gen => F;
F = Crit -> Sink;
atomic Crit:{state};
`)
	const total = 400
	var sunk atomic.Int64
	b := NewBindings().
		BindSource("Gen", counterSource(total)).
		BindNode("Crit", func(fl *Flow, in Record) (Record, error) { return in, nil }).
		BindNode("Sink", func(fl *Flow, in Record) (Record, error) {
			sunk.Add(1)
			return nil, nil
		})
	s, err := NewServer(p, b, Config{Kind: WorkStealing, Dispatchers: 4,
		SourceTimeout: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	errc := make(chan error, 1)
	go func() { errc <- s.Run(context.Background()) }()
	select {
	case err := <-errc:
		if err != nil {
			t.Fatalf("Run: %v", err)
		}
	case <-time.After(20 * time.Second):
		t.Fatalf("run wedged: %d/%d flows completed (stranded work or lost wakeup)",
			sunk.Load(), total)
	}
	if got := s.Stats().Snapshot().Completed; got != total {
		t.Fatalf("completed = %d, want %d", got, total)
	}
}

// TestStealEngineInjectWhileParked: bursts of external admissions with
// idle gaps long enough for every dispatcher to park. Each burst must
// be drained from the injection queue by an unparked dispatcher; a lost
// wakeup would strand the burst until Shutdown's nudge, failing the
// count below.
func TestStealEngineInjectWhileParked(t *testing.T) {
	p := compileSrc(t, `
Gen () => (int v);
Double (int v) => (int v);
Sink (int v) => ();
source Gen => Flow;
Flow = Double -> Sink;
`)
	var sunk atomic.Int64
	got := make(chan int, 64)
	b := NewBindings().
		BindSource("Gen", counterSource(0)). // immediately exhausted
		BindNode("Double", func(fl *Flow, in Record) (Record, error) { return in, nil }).
		BindNode("Sink", func(fl *Flow, in Record) (Record, error) {
			sunk.Add(1)
			got <- in[0].(int)
			return nil, nil
		})
	s, err := NewServer(p, b, Config{Kind: WorkStealing, Dispatchers: 4,
		SourceTimeout: time.Millisecond, KeepAlive: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Start(context.Background()); err != nil {
		t.Fatal(err)
	}
	next := 0
	for burst := 0; burst < 5; burst++ {
		// Give every dispatcher time to go idle and park.
		time.Sleep(20 * time.Millisecond)
		for i := 0; i < 10; i++ {
			next++
			if err := s.Inject("Gen", Record{next}); err != nil {
				t.Fatalf("Inject(%d): %v", next, err)
			}
		}
		// The burst must complete promptly — unparked by the injection,
		// not rescued later by Shutdown.
		deadline := time.After(5 * time.Second)
		for drained := 0; drained < 10; drained++ {
			select {
			case <-got:
			case <-deadline:
				t.Fatalf("burst %d stranded: %d/%d flows done", burst, drained, 10)
			}
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	if sunk.Load() != int64(next) {
		t.Fatalf("sink saw %d of %d injected flows", sunk.Load(), next)
	}
}

// TestStealEngineSourcesShareOneDispatcher: two always-ready sources
// homed on a single dispatcher must both make progress. Re-queueing a
// polled source at the deque's LIFO end would pop it straight back and
// starve its sibling forever; the FIFO-end re-queue rotates them.
func TestStealEngineSourcesShareOneDispatcher(t *testing.T) {
	p := compileSrc(t, `
GenA () => (int v);
GenB () => (int v);
Apply (int v) => ();
Turn (int v) => ();
source GenA => FA;
FA = Apply;
source GenB => FB;
FB = Turn;
`)
	var a, bn atomic.Int64
	busy := func(counter *atomic.Int64) SourceFunc {
		return func(fl *Flow) (Record, error) {
			if fl.Ctx.Err() != nil {
				return nil, fl.Ctx.Err()
			}
			counter.Add(1)
			return Record{1}, nil
		}
	}
	b := NewBindings().
		BindSource("GenA", busy(&a)).
		BindSource("GenB", busy(&bn)).
		BindNode("Apply", nopNode).
		BindNode("Turn", nopNode)
	s, err := NewServer(p, b, Config{Kind: WorkStealing, Dispatchers: 1,
		SourceTimeout: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 300*time.Millisecond)
	defer cancel()
	_ = s.Run(ctx)
	t.Logf("polls: GenA=%d GenB=%d", a.Load(), bn.Load())
	if a.Load() == 0 || bn.Load() == 0 {
		t.Errorf("source starved on shared dispatcher: GenA=%d GenB=%d", a.Load(), bn.Load())
	}
}

// TestStealEngineInjectNotStarvedByBusyDeques: with every dispatcher's
// local deque continuously non-empty (saturating sources), injected
// flows must still complete promptly — the periodic injection-queue
// check is what keeps external admissions from starving behind local
// work.
func TestStealEngineInjectNotStarvedByBusyDeques(t *testing.T) {
	p := compileSrc(t, `
Busy () => (int v);
Apply (int v) => ();
source Busy => Input;
Input = Apply;
`)
	var injected atomic.Int64
	b := NewBindings().
		BindSource("Busy", func(fl *Flow) (Record, error) {
			// Always has data: the dispatcher's deque never drains.
			if fl.Ctx.Err() != nil {
				return nil, fl.Ctx.Err()
			}
			return Record{0}, nil
		}).
		BindNode("Apply", func(fl *Flow, in Record) (Record, error) {
			if in[0].(int) != 0 {
				injected.Add(1)
			}
			return nil, nil
		})
	s, err := NewServer(p, b, Config{Kind: WorkStealing, Dispatchers: 2,
		SourceTimeout: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Start(context.Background()); err != nil {
		t.Fatal(err)
	}
	const n = 30
	for i := 1; i <= n; i++ {
		if err := s.Inject("Busy", Record{i}); err != nil {
			t.Fatalf("Inject(%d): %v", i, err)
		}
	}
	deadline := time.Now().Add(5 * time.Second)
	for injected.Load() < n && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	got := injected.Load()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	if got < n {
		t.Errorf("only %d/%d injected flows ran while sources stayed busy", got, n)
	}
}

// TestStealEngineTimerNotStarvedByBusySource: the event engine's
// fairness property must survive the move to per-dispatcher deques — a
// saturating source on one dispatcher cannot starve an interval source
// homed on another.
func TestStealEngineTimerNotStarvedByBusySource(t *testing.T) {
	p := compileSrc(t, `
Busy () => (int v);
Apply (int v) => ();
Tick () => (int v);
Turn (int v) => ();
source Busy => Input;
Input = Apply;
source Tick => Beat;
Beat = Turn;
atomic Apply:{state};
atomic Turn:{state};
`)
	var turns, applies atomic.Int64
	interval := IntervalSource(50 * time.Millisecond)
	b := NewBindings().
		BindSource("Busy", func(fl *Flow) (Record, error) {
			if fl.Ctx.Err() != nil {
				return nil, fl.Ctx.Err()
			}
			return Record{1}, nil
		}).
		BindSource("Tick", interval).
		BindNode("Apply", func(fl *Flow, in Record) (Record, error) {
			applies.Add(1)
			return nil, nil
		}).
		BindNode("Turn", func(fl *Flow, in Record) (Record, error) {
			turns.Add(1)
			return nil, nil
		})
	s, err := NewServer(p, b, Config{Kind: WorkStealing, Dispatchers: 2,
		SourceTimeout: 5 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	_ = s.Run(ctx)

	t.Logf("turns=%d applies=%d", turns.Load(), applies.Load())
	if turns.Load() < 10 {
		t.Errorf("interval flow starved: %d turns in 1s, want ~20", turns.Load())
	}
	if applies.Load() == 0 {
		t.Error("busy source made no progress")
	}
}

// TestEventEngineTimerNotStarvedByBusySource reproduces the game
// server's shape: a busy source producing flows that contend on a
// constraint, plus a 100ms interval source. The interval flow must keep
// firing at roughly its rate; a fair dispatcher cannot let the busy
// source starve it.
func TestEventEngineTimerNotStarvedByBusySource(t *testing.T) {
	p := compileSrc(t, `
Busy () => (int v);
Apply (int v) => ();
Tick () => (int v);
Turn (int v) => ();
source Busy => Input;
Input = Apply;
source Tick => Beat;
Beat = Turn;
atomic Apply:{state};
atomic Turn:{state};
`)
	var turns, applies, polls atomic.Int64
	interval := IntervalSource(50 * time.Millisecond)
	b := NewBindings().
		BindSource("Busy", func(fl *Flow) (Record, error) {
			// A datagram is "always available": the source never
			// blocks, like a UDP socket under continuous load.
			if fl.Ctx.Err() != nil {
				return nil, fl.Ctx.Err()
			}
			return Record{1}, nil
		}).
		BindSource("Tick", func(fl *Flow) (Record, error) {
			polls.Add(1)
			return interval(fl)
		}).
		BindNode("Apply", func(fl *Flow, in Record) (Record, error) {
			applies.Add(1)
			return nil, nil
		}).
		BindNode("Turn", func(fl *Flow, in Record) (Record, error) {
			turns.Add(1)
			return nil, nil
		})
	s, err := NewServer(p, b, Config{Kind: EventDriven, SourceTimeout: 5 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	_ = s.Run(ctx)

	t.Logf("turns=%d applies=%d timer polls=%d", turns.Load(), applies.Load(), polls.Load())
	// One second at 50ms per turn is ~20 turns; demand at least half.
	if turns.Load() < 10 {
		t.Errorf("interval flow starved: %d turns in 1s, want ~20", turns.Load())
	}
	if applies.Load() == 0 {
		t.Error("busy source made no progress")
	}
}

// TestEventEngineTimerWithUDPSource replicates the game server's exact
// structure: a UDP read-with-deadline source plus an interval source,
// under a packet stream. This is the integration shape where heartbeat
// starvation was observed.
func TestEventEngineTimerWithUDPSource(t *testing.T) {
	conn, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	p := compileSrc(t, `
Recv () => (int v);
Apply (int v) => ();
Tick () => (int v);
Turn (int v) => ();
source Recv => Input;
Input = Apply;
source Tick => Beat;
Beat = Turn;
atomic Apply:{state};
atomic Turn:{state};
`)
	var turns, applies atomic.Int64
	interval := IntervalSource(50 * time.Millisecond)
	b := NewBindings().
		BindSource("Recv", func(fl *Flow) (Record, error) {
			buf := make([]byte, 64)
			deadline := time.Time{}
			if fl.SourceTimeout > 0 {
				deadline = time.Now().Add(fl.SourceTimeout)
			}
			if err := conn.SetReadDeadline(deadline); err != nil {
				return nil, ErrStop
			}
			n, _, err := conn.ReadFromUDP(buf)
			if err != nil {
				if fl.Ctx.Err() != nil {
					return nil, fl.Ctx.Err()
				}
				if ne, ok := err.(net.Error); ok && ne.Timeout() {
					return nil, ErrNoData
				}
				return nil, ErrStop
			}
			return Record{n}, nil
		}).
		BindSource("Tick", interval).
		BindNode("Apply", func(fl *Flow, in Record) (Record, error) {
			applies.Add(1)
			return nil, nil
		}).
		BindNode("Turn", func(fl *Flow, in Record) (Record, error) {
			turns.Add(1)
			return nil, nil
		})
	s, err := NewServer(p, b, Config{Kind: EventDriven, SourceTimeout: 5 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()

	// Client: 80 packets/sec at the server.
	go func() {
		cl, err := net.DialUDP("udp", nil, conn.LocalAddr().(*net.UDPAddr))
		if err != nil {
			return
		}
		defer cl.Close()
		tick := time.NewTicker(12 * time.Millisecond)
		defer tick.Stop()
		for {
			select {
			case <-ctx.Done():
				return
			case <-tick.C:
				cl.Write([]byte{2, 0, 0, 0, 0, 1, 1})
			}
		}
	}()

	_ = s.Run(ctx)
	t.Logf("turns=%d applies=%d", turns.Load(), applies.Load())
	if turns.Load() < 10 {
		t.Errorf("interval flow starved: %d turns in 1s, want ~20", turns.Load())
	}
	if applies.Load() < 40 {
		t.Errorf("udp flows = %d, want ~80", applies.Load())
	}
}
