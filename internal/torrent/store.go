package torrent

import (
	"errors"
	"fmt"
	"sync"
)

// Store holds a torrent's content with block-granular writes and SHA-1
// verification on piece completion. A seeder's store starts complete; a
// leecher's fills as pieces arrive.
type Store struct {
	meta *MetaInfo

	mu   sync.RWMutex
	data []byte
	have Bitfield
	// pending tracks received blocks of incomplete pieces.
	pending map[int]*pieceProgress
}

type pieceProgress struct {
	blocks   []bool
	received int
}

// NewSeeder returns a complete store over the content.
func NewSeeder(meta *MetaInfo, data []byte) (*Store, error) {
	if int64(len(data)) != meta.Length {
		return nil, fmt.Errorf("torrent: content is %d bytes, metainfo says %d", len(data), meta.Length)
	}
	s := &Store{meta: meta, data: data, have: NewBitfield(meta.NumPieces()), pending: map[int]*pieceProgress{}}
	for i := 0; i < meta.NumPieces(); i++ {
		s.have.Set(i)
	}
	return s, nil
}

// NewLeecher returns an empty store to be filled by WriteBlock.
func NewLeecher(meta *MetaInfo) *Store {
	return &Store{
		meta:    meta,
		data:    make([]byte, meta.Length),
		have:    NewBitfield(meta.NumPieces()),
		pending: map[int]*pieceProgress{},
	}
}

// Meta returns the store's metainfo.
func (s *Store) Meta() *MetaInfo { return s.meta }

// Bitfield returns a copy of the possession set.
func (s *Store) Bitfield() Bitfield {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.have.Clone()
}

// Has reports possession of a verified piece.
func (s *Store) Has(piece int) bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.have.Has(piece)
}

// Complete reports whether every piece is verified.
func (s *Store) Complete() bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.have.Complete(s.meta.NumPieces())
}

// ReadBlock serves a verified block (the "piece" wire message payload).
func (s *Store) ReadBlock(piece int, begin, length int64) ([]byte, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if !s.have.Has(piece) {
		return nil, fmt.Errorf("torrent: piece %d not available", piece)
	}
	psize := s.meta.PieceSize(piece)
	if begin < 0 || length <= 0 || begin+length > psize {
		return nil, fmt.Errorf("torrent: block [%d,+%d) outside piece %d (size %d)", begin, length, piece, psize)
	}
	off := int64(piece)*s.meta.PieceLength + begin
	out := make([]byte, length)
	copy(out, s.data[off:off+length])
	return out, nil
}

// ErrBadPiece reports a completed piece whose hash did not verify; the
// piece's blocks are discarded so they can be re-requested.
var ErrBadPiece = errors.New("torrent: piece failed hash verification")

// WriteBlock stores a received block. When the block completes its piece,
// the piece is verified: on success completed=true and the piece becomes
// readable; on hash mismatch the piece resets and ErrBadPiece returns.
func (s *Store) WriteBlock(piece int, begin int64, blk []byte) (completed bool, err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	psize := s.meta.PieceSize(piece)
	if psize == 0 {
		return false, fmt.Errorf("torrent: no such piece %d", piece)
	}
	if begin < 0 || begin%BlockSize != 0 || begin+int64(len(blk)) > psize {
		return false, fmt.Errorf("torrent: block [%d,+%d) outside piece %d (size %d)", begin, len(blk), piece, psize)
	}
	if s.have.Has(piece) {
		return false, nil // duplicate of a verified piece; ignore
	}
	prog, ok := s.pending[piece]
	if !ok {
		nblocks := int((psize + BlockSize - 1) / BlockSize)
		prog = &pieceProgress{blocks: make([]bool, nblocks)}
		s.pending[piece] = prog
	}
	bi := int(begin / BlockSize)
	off := int64(piece)*s.meta.PieceLength + begin
	copy(s.data[off:], blk)
	if !prog.blocks[bi] {
		prog.blocks[bi] = true
		prog.received++
	}
	if prog.received < len(prog.blocks) {
		return false, nil
	}
	// Piece complete: verify.
	start := int64(piece) * s.meta.PieceLength
	if !s.meta.VerifyPiece(piece, s.data[start:start+psize]) {
		delete(s.pending, piece)
		return false, ErrBadPiece
	}
	delete(s.pending, piece)
	s.have.Set(piece)
	return true, nil
}

// Bytes returns the content; call only when Complete.
func (s *Store) Bytes() []byte {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]byte, len(s.data))
	copy(out, s.data)
	return out
}

// NumBlocks returns the number of wire blocks in piece i.
func (s *Store) NumBlocks(piece int) int {
	psize := s.meta.PieceSize(piece)
	return int((psize + BlockSize - 1) / BlockSize)
}

// BlockSpec returns the (begin, length) of block b within piece i.
func (s *Store) BlockSpec(piece, b int) (begin, length int64) {
	psize := s.meta.PieceSize(piece)
	begin = int64(b) * BlockSize
	length = BlockSize
	if begin+length > psize {
		length = psize - begin
	}
	return begin, length
}
