package torrent

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

func testContent(n int, seed int64) []byte {
	rng := rand.New(rand.NewSource(seed))
	data := make([]byte, n)
	rng.Read(data)
	return data
}

func TestMetaInfoRoundTrip(t *testing.T) {
	data := testContent(100_000, 1)
	m, err := New("test.bin", "http://tracker/announce", data, 16384)
	if err != nil {
		t.Fatal(err)
	}
	if m.NumPieces() != 7 { // ceil(100000/16384)
		t.Errorf("pieces = %d", m.NumPieces())
	}
	enc := m.Encode()
	m2, err := Parse(enc)
	if err != nil {
		t.Fatal(err)
	}
	if m2.Name != m.Name || m2.Length != m.Length || m2.PieceLength != m.PieceLength {
		t.Errorf("round trip mismatch: %+v vs %+v", m2, m)
	}
	if m2.InfoHash != m.InfoHash {
		t.Error("info hash changed across round trip")
	}
	if len(m2.Pieces) != len(m.Pieces) {
		t.Fatalf("piece count mismatch")
	}
	for i := range m.Pieces {
		if m.Pieces[i] != m2.Pieces[i] {
			t.Errorf("piece hash %d differs", i)
		}
	}
}

func TestPieceSize(t *testing.T) {
	data := testContent(100_000, 2)
	m, _ := New("x", "", data, 16384)
	if got := m.PieceSize(0); got != 16384 {
		t.Errorf("piece 0 size = %d", got)
	}
	if got := m.PieceSize(6); got != 100_000-6*16384 {
		t.Errorf("last piece size = %d", got)
	}
	if got := m.PieceSize(7); got != 0 {
		t.Errorf("out of range piece size = %d", got)
	}
	// Exact multiple: last piece is full-size.
	m2, _ := New("y", "", testContent(32768, 3), 16384)
	if got := m2.PieceSize(1); got != 16384 {
		t.Errorf("exact multiple last piece = %d", got)
	}
}

func TestVerifyPiece(t *testing.T) {
	data := testContent(50_000, 4)
	m, _ := New("x", "", data, 16384)
	if !m.VerifyPiece(0, data[:16384]) {
		t.Error("valid piece rejected")
	}
	bad := append([]byte(nil), data[:16384]...)
	bad[0] ^= 0xFF
	if m.VerifyPiece(0, bad) {
		t.Error("corrupt piece accepted")
	}
	if m.VerifyPiece(-1, nil) || m.VerifyPiece(99, nil) {
		t.Error("out-of-range piece accepted")
	}
}

func TestParseErrors(t *testing.T) {
	bad := [][]byte{
		nil,
		[]byte("i42e"),
		[]byte("de"),
		[]byte("d4:infodee"),
		[]byte("d4:infod6:lengthi10e4:name1:x12:piece lengthi0e6:pieces0:ee"),
		[]byte("d4:infod6:lengthi10e4:name1:x12:piece lengthi4e6:pieces3:abcee"),
	}
	for _, in := range bad {
		if _, err := Parse(in); err == nil {
			t.Errorf("Parse(%q) should fail", in)
		}
	}
}

func TestBitfield(t *testing.T) {
	b := NewBitfield(10)
	if len(b) != 2 {
		t.Fatalf("bitfield bytes = %d", len(b))
	}
	b.Set(0)
	b.Set(9)
	if !b.Has(0) || !b.Has(9) || b.Has(1) {
		t.Errorf("bitfield contents wrong: %08b", b)
	}
	// MSB-first wire format: piece 0 is bit 7 of byte 0.
	if b[0] != 0x80 {
		t.Errorf("byte 0 = %02x, want 80", b[0])
	}
	if b.Count() != 2 {
		t.Errorf("count = %d", b.Count())
	}
	if b.Complete(10) {
		t.Error("incomplete bitfield reported complete")
	}
	for i := 0; i < 10; i++ {
		b.Set(i)
	}
	if !b.Complete(10) {
		t.Error("complete bitfield reported incomplete")
	}
	b.Clear(5)
	if b.Has(5) {
		t.Error("clear failed")
	}
	if got := b.Missing(10); len(got) != 1 || got[0] != 5 {
		t.Errorf("missing = %v", got)
	}
	// Out-of-range operations are no-ops.
	b.Set(-1)
	b.Set(1000)
	if b.Has(-1) || b.Has(1000) {
		t.Error("out-of-range Has true")
	}
}

func TestSeederServesBlocks(t *testing.T) {
	data := testContent(70_000, 5)
	m, _ := New("x", "", data, 16384)
	s, err := NewSeeder(m, data)
	if err != nil {
		t.Fatal(err)
	}
	if !s.Complete() {
		t.Fatal("seeder not complete")
	}
	blk, err := s.ReadBlock(1, 0, BlockSize)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(blk, data[16384:2*16384]) {
		t.Error("block content wrong")
	}
	if _, err := s.ReadBlock(0, 0, BlockSize+1); err == nil {
		t.Error("over-long block read should fail")
	}
	if _, err := s.ReadBlock(99, 0, 1); err == nil {
		t.Error("missing piece read should fail")
	}
}

func TestSeederLengthMismatch(t *testing.T) {
	data := testContent(1000, 6)
	m, _ := New("x", "", data, 256)
	if _, err := NewSeeder(m, data[:999]); err == nil {
		t.Error("length mismatch accepted")
	}
}

func TestLeecherAssemblesAndVerifies(t *testing.T) {
	data := testContent(70_000, 7)
	m, _ := New("x", "", data, 32768) // 3 pieces: 32768, 32768, 4464
	l := NewLeecher(m)
	if l.Complete() {
		t.Fatal("fresh leecher complete")
	}
	// Transfer every block of every piece (out of order within pieces).
	for piece := m.NumPieces() - 1; piece >= 0; piece-- {
		n := l.NumBlocks(piece)
		for b := n - 1; b >= 0; b-- {
			begin, length := l.BlockSpec(piece, b)
			off := int64(piece)*m.PieceLength + begin
			done, err := l.WriteBlock(piece, begin, data[off:off+length])
			if err != nil {
				t.Fatalf("WriteBlock(%d,%d): %v", piece, begin, err)
			}
			if done != (b == 0) { // last written block completes the piece
				t.Errorf("piece %d block %d: completed=%v", piece, b, done)
			}
		}
	}
	if !l.Complete() {
		t.Fatal("leecher incomplete after all blocks")
	}
	if !bytes.Equal(l.Bytes(), data) {
		t.Error("assembled content differs from original")
	}
}

func TestLeecherRejectsCorruptPiece(t *testing.T) {
	data := testContent(32768, 8)
	m, _ := New("x", "", data, 16384)
	l := NewLeecher(m)
	bad := append([]byte(nil), data[:16384]...)
	bad[100] ^= 1
	if _, err := l.WriteBlock(0, 0, bad); err != ErrBadPiece {
		t.Errorf("corrupt piece error = %v, want ErrBadPiece", err)
	}
	if l.Has(0) {
		t.Error("corrupt piece marked present")
	}
	// The piece can be re-downloaded correctly afterwards.
	done, err := l.WriteBlock(0, 0, data[:16384])
	if err != nil || !done {
		t.Errorf("retry = %v, %v", done, err)
	}
	if !l.Has(0) {
		t.Error("retried piece not present")
	}
}

func TestWriteBlockValidation(t *testing.T) {
	data := testContent(32768, 9)
	m, _ := New("x", "", data, 16384)
	l := NewLeecher(m)
	if _, err := l.WriteBlock(5, 0, data[:10]); err == nil {
		t.Error("bad piece index accepted")
	}
	if _, err := l.WriteBlock(0, 3, data[:10]); err == nil {
		t.Error("misaligned begin accepted")
	}
	if _, err := l.WriteBlock(0, 0, data); err == nil {
		t.Error("oversized block accepted")
	}
	// Duplicate write of a verified piece is ignored.
	if _, err := l.WriteBlock(0, 0, data[:16384]); err != nil {
		t.Fatal(err)
	}
	done, err := l.WriteBlock(0, 0, data[:16384])
	if err != nil || done {
		t.Errorf("duplicate verified write = %v, %v", done, err)
	}
}

// TestQuickBitfield: Set/Has agree for arbitrary indices.
func TestQuickBitfield(t *testing.T) {
	f := func(idxs []uint16) bool {
		b := NewBitfield(4096)
		set := map[int]bool{}
		for _, i := range idxs {
			idx := int(i) % 4096
			b.Set(idx)
			set[idx] = true
		}
		if b.Count() != len(set) {
			return false
		}
		for i := range set {
			if !b.Has(i) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestQuickStoreRoundTrip: random content, random piece length, block
// transfer in random order reassembles exactly.
func TestQuickStoreRoundTrip(t *testing.T) {
	f := func(seed int64, sz uint16, plShift uint8) bool {
		n := int(sz)%50000 + 1
		pl := int64(1024 << (plShift % 5)) // 1K..16K
		data := testContent(n, seed)
		m, err := New("q", "", data, pl)
		if err != nil {
			return false
		}
		l := NewLeecher(m)
		rng := rand.New(rand.NewSource(seed))
		type blockRef struct{ piece, block int }
		var blocks []blockRef
		for p := 0; p < m.NumPieces(); p++ {
			for b := 0; b < l.NumBlocks(p); b++ {
				blocks = append(blocks, blockRef{p, b})
			}
		}
		rng.Shuffle(len(blocks), func(i, j int) { blocks[i], blocks[j] = blocks[j], blocks[i] })
		for _, br := range blocks {
			begin, length := l.BlockSpec(br.piece, br.block)
			off := int64(br.piece)*m.PieceLength + begin
			if _, err := l.WriteBlock(br.piece, begin, data[off:off+length]); err != nil {
				return false
			}
		}
		return l.Complete() && bytes.Equal(l.Bytes(), data)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
