package torrent

// Bitfield is the wire-format piece possession set: one bit per piece,
// most significant bit first, as exchanged in BitTorrent bitfield
// messages.
type Bitfield []byte

// NewBitfield returns an empty bitfield sized for n pieces.
func NewBitfield(n int) Bitfield {
	return make(Bitfield, (n+7)/8)
}

// Has reports whether piece i is set.
func (b Bitfield) Has(i int) bool {
	if i < 0 || i/8 >= len(b) {
		return false
	}
	return b[i/8]&(1<<(7-uint(i%8))) != 0
}

// Set marks piece i present.
func (b Bitfield) Set(i int) {
	if i < 0 || i/8 >= len(b) {
		return
	}
	b[i/8] |= 1 << (7 - uint(i%8))
}

// Clear marks piece i absent.
func (b Bitfield) Clear(i int) {
	if i < 0 || i/8 >= len(b) {
		return
	}
	b[i/8] &^= 1 << (7 - uint(i%8))
}

// Count returns the number of set pieces.
func (b Bitfield) Count() int {
	n := 0
	for _, x := range b {
		for ; x != 0; x &= x - 1 {
			n++
		}
	}
	return n
}

// Complete reports whether all of the first n pieces are set.
func (b Bitfield) Complete(n int) bool {
	for i := 0; i < n; i++ {
		if !b.Has(i) {
			return false
		}
	}
	return true
}

// Clone copies the bitfield.
func (b Bitfield) Clone() Bitfield {
	out := make(Bitfield, len(b))
	copy(out, b)
	return out
}

// Missing returns the indices of unset pieces among the first n.
func (b Bitfield) Missing(n int) []int {
	var out []int
	for i := 0; i < n; i++ {
		if !b.Has(i) {
			out = append(out, i)
		}
	}
	return out
}
