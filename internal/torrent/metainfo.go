// Package torrent implements the BitTorrent substrate the Flux peer is
// built on: metainfo files, SHA-1 piece verification, bitfields, and a
// block-granular piece store shared by seeders and leechers.
package torrent

import (
	"crypto/sha1"
	"errors"
	"fmt"

	"github.com/flux-lang/flux/internal/bencode"
)

// HashSize is the size of a SHA-1 piece hash.
const HashSize = sha1.Size

// BlockSize is the canonical request granularity of the wire protocol
// (16 KiB).
const BlockSize = 16384

// MetaInfo is a parsed .torrent file (single-file mode).
type MetaInfo struct {
	Announce    string
	Name        string
	Length      int64
	PieceLength int64
	Pieces      [][HashSize]byte
	InfoHash    [HashSize]byte
}

// New computes a MetaInfo over in-memory content, hashing each piece.
func New(name, announce string, data []byte, pieceLength int64) (*MetaInfo, error) {
	if pieceLength <= 0 {
		return nil, errors.New("torrent: piece length must be positive")
	}
	m := &MetaInfo{
		Announce:    announce,
		Name:        name,
		Length:      int64(len(data)),
		PieceLength: pieceLength,
	}
	for off := int64(0); off < m.Length; off += pieceLength {
		end := off + pieceLength
		if end > m.Length {
			end = m.Length
		}
		m.Pieces = append(m.Pieces, sha1.Sum(data[off:end]))
	}
	m.InfoHash = sha1.Sum(m.infoBytes())
	return m, nil
}

// infoBytes renders the bencoded info dictionary (the hash pre-image).
func (m *MetaInfo) infoBytes() []byte {
	var pieces []byte
	for _, h := range m.Pieces {
		pieces = append(pieces, h[:]...)
	}
	enc, err := bencode.Encode(map[string]any{
		"length":       m.Length,
		"name":         m.Name,
		"piece length": m.PieceLength,
		"pieces":       string(pieces),
	})
	if err != nil {
		// The value is built from plain types; Encode cannot fail.
		panic("torrent: internal encode error: " + err.Error())
	}
	return enc
}

// Encode renders the complete .torrent file.
func (m *MetaInfo) Encode() []byte {
	var pieces []byte
	for _, h := range m.Pieces {
		pieces = append(pieces, h[:]...)
	}
	enc, err := bencode.Encode(map[string]any{
		"announce": m.Announce,
		"info": map[string]any{
			"length":       m.Length,
			"name":         m.Name,
			"piece length": m.PieceLength,
			"pieces":       string(pieces),
		},
	})
	if err != nil {
		panic("torrent: internal encode error: " + err.Error())
	}
	return enc
}

// Parse reads a .torrent file.
func Parse(data []byte) (*MetaInfo, error) {
	v, err := bencode.Decode(data)
	if err != nil {
		return nil, fmt.Errorf("torrent: %w", err)
	}
	top, ok := v.(map[string]any)
	if !ok {
		return nil, errors.New("torrent: top-level value is not a dictionary")
	}
	info, ok := top["info"].(map[string]any)
	if !ok {
		return nil, errors.New("torrent: missing info dictionary")
	}
	m := &MetaInfo{}
	m.Announce, _ = top["announce"].(string)
	m.Name, _ = info["name"].(string)
	m.Length, ok = info["length"].(int64)
	if !ok {
		return nil, errors.New("torrent: missing length")
	}
	m.PieceLength, ok = info["piece length"].(int64)
	if !ok || m.PieceLength <= 0 {
		return nil, errors.New("torrent: missing or invalid piece length")
	}
	pieces, ok := info["pieces"].(string)
	if !ok || len(pieces)%HashSize != 0 {
		return nil, errors.New("torrent: malformed pieces string")
	}
	for off := 0; off < len(pieces); off += HashSize {
		var h [HashSize]byte
		copy(h[:], pieces[off:off+HashSize])
		m.Pieces = append(m.Pieces, h)
	}
	want := (m.Length + m.PieceLength - 1) / m.PieceLength
	if int64(len(m.Pieces)) != want {
		return nil, fmt.Errorf("torrent: %d piece hashes for %d pieces", len(m.Pieces), want)
	}
	m.InfoHash = sha1.Sum(m.infoBytes())
	return m, nil
}

// NumPieces returns the piece count.
func (m *MetaInfo) NumPieces() int { return len(m.Pieces) }

// PieceSize returns the byte length of piece i (the last piece may be
// short).
func (m *MetaInfo) PieceSize(i int) int64 {
	if i < 0 || i >= len(m.Pieces) {
		return 0
	}
	if i == len(m.Pieces)-1 {
		if rem := m.Length % m.PieceLength; rem != 0 {
			return rem
		}
	}
	return m.PieceLength
}

// VerifyPiece checks data against piece i's hash.
func (m *MetaInfo) VerifyPiece(i int, data []byte) bool {
	if i < 0 || i >= len(m.Pieces) {
		return false
	}
	return sha1.Sum(data) == m.Pieces[i]
}
