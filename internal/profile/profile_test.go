package profile

import (
	"strings"
	"testing"
	"time"

	"github.com/flux-lang/flux/internal/core"
	"github.com/flux-lang/flux/internal/lang/parser"
)

const src = `
Gen () => (int v);
Evens (int v) => (int v);
Odds (int v) => (int v);
Sink (int v) => ();
source Gen => Flow;
Flow = Route -> Sink;
typedef even IsEven;
Route:[even] = Evens;
Route:[_] = Odds;
`

func graph(t *testing.T) *core.FlatGraph {
	t.Helper()
	astProg, err := parser.Parse("p.flux", src)
	if err != nil {
		t.Fatal(err)
	}
	p, err := core.Build(astProg)
	if err != nil {
		t.Fatal(err)
	}
	return p.Graphs["Gen"]
}

// pathIDFor finds the Ball-Larus ID whose label matches.
func pathIDFor(t *testing.T, g *core.FlatGraph, label string) uint64 {
	t.Helper()
	for id := uint64(0); id < g.NumPaths; id++ {
		if g.PathLabel(id) == label {
			return id
		}
	}
	t.Fatalf("no path labeled %q", label)
	return 0
}

func TestHotPathsByCount(t *testing.T) {
	g := graph(t)
	p := New()
	even := pathIDFor(t, g, "Gen -> Evens -> Sink")
	odd := pathIDFor(t, g, "Gen -> Odds -> Sink")
	for i := 0; i < 10; i++ {
		p.FlowDone(g, even, time.Millisecond)
	}
	for i := 0; i < 3; i++ {
		p.FlowDone(g, odd, 10*time.Millisecond)
	}
	rows := p.HotPaths(g, ByCount, 0)
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	if rows[0].Label != "Gen -> Evens -> Sink" || rows[0].Count != 10 {
		t.Errorf("top by count = %+v", rows[0])
	}

	rows = p.HotPaths(g, ByTotalTime, 0)
	if rows[0].Label != "Gen -> Odds -> Sink" {
		t.Errorf("top by total time = %+v", rows[0])
	}
	if rows[0].Total != 30*time.Millisecond {
		t.Errorf("total = %v", rows[0].Total)
	}

	rows = p.HotPaths(g, ByMeanTime, 1)
	if len(rows) != 1 || rows[0].Mean() != 10*time.Millisecond {
		t.Errorf("by mean = %+v", rows)
	}
}

func TestNodeStats(t *testing.T) {
	g := graph(t)
	p := New()
	var sink, evens *core.FlatNode
	for _, v := range g.Nodes {
		if v.Kind == core.FlatExec {
			switch v.Node.Name {
			case "Sink":
				sink = v
			case "Evens":
				evens = v
			}
		}
	}
	p.NodeDone(g, sink, 2*time.Millisecond)
	p.NodeDone(g, sink, 4*time.Millisecond)
	p.NodeDone(g, evens, 20*time.Millisecond)

	nodes := p.Nodes(g)
	if len(nodes) != 2 {
		t.Fatalf("nodes = %+v", nodes)
	}
	if nodes[0].Name != "Evens" {
		t.Errorf("bottleneck order wrong: %+v", nodes)
	}
	if nodes[1].Count != 2 || nodes[1].Mean() != 3*time.Millisecond {
		t.Errorf("sink stats = %+v", nodes[1])
	}
}

func TestEdgeFrequencies(t *testing.T) {
	g := graph(t)
	p := New()
	even := pathIDFor(t, g, "Gen -> Evens -> Sink")
	odd := pathIDFor(t, g, "Gen -> Odds -> Sink")
	for i := 0; i < 7; i++ {
		p.FlowDone(g, even, time.Millisecond)
	}
	for i := 0; i < 3; i++ {
		p.FlowDone(g, odd, time.Millisecond)
	}
	freq := p.EdgeFrequencies(g)

	var br *core.FlatNode
	for _, v := range g.Nodes {
		if v.Kind == core.FlatBranch {
			br = v
		}
	}
	if br == nil {
		t.Fatal("no branch")
	}
	if freq[br.Out[0]] != 7 || freq[br.Out[1]] != 3 {
		t.Errorf("branch frequencies = %d/%d, want 7/3", freq[br.Out[0]], freq[br.Out[1]])
	}
}

func TestReportRendering(t *testing.T) {
	g := graph(t)
	p := New()
	even := pathIDFor(t, g, "Gen -> Evens -> Sink")
	p.FlowDone(g, even, 250*time.Microsecond)
	rep := p.Report(g, ByCount, 10)
	for _, want := range []string{"source Gen", "1 flows", "Gen -> Evens -> Sink"} {
		if !strings.Contains(rep, want) {
			t.Errorf("report missing %q:\n%s", want, rep)
		}
	}
	var sink *core.FlatNode
	for _, v := range g.Nodes {
		if v.Kind == core.FlatExec && v.Node.Name == "Sink" {
			sink = v
		}
	}
	p.NodeDone(g, sink, time.Millisecond)
	nrep := p.NodeReport(g)
	if !strings.Contains(nrep, "Sink") {
		t.Errorf("node report missing Sink:\n%s", nrep)
	}
}

func TestTotalFlowsAndReset(t *testing.T) {
	g := graph(t)
	p := New()
	if p.TotalFlows(g) != 0 {
		t.Error("fresh profiler has flows")
	}
	p.FlowDone(g, 0, time.Millisecond)
	p.FlowDone(g, 0, time.Millisecond)
	if p.TotalFlows(g) != 2 {
		t.Errorf("TotalFlows = %d", p.TotalFlows(g))
	}
	p.Reset()
	if p.TotalFlows(g) != 0 {
		t.Error("Reset did not clear flows")
	}
}

func TestEmptyProfilerReports(t *testing.T) {
	g := graph(t)
	p := New()
	if rows := p.HotPaths(g, ByCount, 5); len(rows) != 0 {
		t.Errorf("rows on empty profiler: %v", rows)
	}
	if nodes := p.Nodes(g); len(nodes) != 0 {
		t.Errorf("nodes on empty profiler: %v", nodes)
	}
	if !strings.Contains(p.Report(g, ByCount, 5), "0 flows") {
		t.Error("empty report should render")
	}
}

// TestFlowDroppedBucketsSeparately: drops recorded through the runtime's
// DropProfiler extension must not inflate a complete path's statistics,
// even when the partial register collides with that path's ID.
func TestFlowDroppedBucketsSeparately(t *testing.T) {
	g := graph(t)
	p := New()
	id := pathIDFor(t, g, "Gen -> Evens -> Sink")
	p.FlowDone(g, id, 2*time.Millisecond)
	p.FlowDone(g, id, 2*time.Millisecond)
	// A drop whose partial register aliases the same ID.
	p.FlowDropped(g, id, time.Millisecond)
	p.FlowDropped(g, id, time.Millisecond)
	p.FlowDropped(g, id, time.Millisecond)

	rows := p.HotPaths(g, ByCount, 0)
	if len(rows) != 1 || rows[0].Count != 2 {
		t.Fatalf("hot paths = %+v, want one path with count 2 (drops excluded)", rows)
	}
	if got := p.TotalFlows(g); got != 2 {
		t.Errorf("TotalFlows = %d, want 2", got)
	}
	dc, dt := p.DroppedFlows(g)
	if dc != 3 || dt != 3*time.Millisecond {
		t.Errorf("DroppedFlows = %d, %v, want 3, 3ms", dc, dt)
	}
	if rep := p.Report(g, ByCount, 0); !strings.Contains(rep, "3 flows dropped at dispatch") {
		t.Errorf("report missing drop line:\n%s", rep)
	}
	p.Reset()
	if dc, _ := p.DroppedFlows(g); dc != 0 {
		t.Errorf("Reset left %d drops", dc)
	}
}

// TestSnapshotStructured: the structured report carries everything the
// text renderers show, sorted by source name, and Render round-trips
// through the same data Report() prints.
func TestSnapshotStructured(t *testing.T) {
	g := graph(t)
	p := New()
	even := pathIDFor(t, g, "Gen -> Evens -> Sink")
	for i := 0; i < 4; i++ {
		p.FlowDone(g, even, 2*time.Millisecond)
	}
	for _, v := range g.Nodes {
		if v.Kind == core.FlatExec {
			p.NodeDone(g, v, time.Millisecond)
			break
		}
	}
	p.FlowDropped(g, 1, time.Millisecond)

	rep := p.Snapshot(ByCount, 0)
	if len(rep.Graphs) != 1 {
		t.Fatalf("graphs = %d, want 1", len(rep.Graphs))
	}
	gr := rep.Graphs[0]
	if gr.Source != "Gen" || gr.Flows != 4 || gr.DistinctPaths != 1 {
		t.Errorf("report header = %+v", gr)
	}
	if len(gr.Paths) != 1 || gr.Paths[0].Count != 4 {
		t.Errorf("paths = %+v", gr.Paths)
	}
	if len(gr.Nodes) == 0 {
		t.Error("no node stats in snapshot")
	}
	if gr.DroppedFlows != 1 || gr.DroppedTotal != time.Millisecond {
		t.Errorf("drops = %d/%v", gr.DroppedFlows, gr.DroppedTotal)
	}

	// The text report is the rendered snapshot — same rows, same drops.
	text := p.Report(g, ByCount, 0)
	if text != gr.Render() {
		t.Error("Report() and GraphReport.Render() diverge")
	}
	if !strings.Contains(text, "Gen -> Evens -> Sink") || !strings.Contains(text, "dropped at dispatch") {
		t.Errorf("render missing rows:\n%s", text)
	}
	if !strings.Contains(gr.RenderNodes(), "Gen") {
		t.Errorf("node render missing source:\n%s", gr.RenderNodes())
	}
}
