// Package profile implements Flux path profiling (§5.2).
//
// The runtime adds one Ball-Larus increment per traversed edge and two
// timestamps per node; this package aggregates those observations into
// per-path counts and times ("hot paths") and per-node statistics, and
// renders the reports a performance analyst reads. Because Flux graphs
// are acyclic, a path ID uniquely identifies one route through the
// server, including routes that end at the ERROR terminal — in the
// paper's BitTorrent peer the most frequently executed path is an error
// path (the no-outstanding-requests poll).
//
// A Profiler attaches to a server with WithProfiler (or through the
// ObserveProfiler adapter when composing observers). The runtime's
// observer plane reports every flow terminal, so flows dropped at an
// unmatched dispatch case are recorded like error paths: their partial
// path register identifies the route up to the drop point.
package profile

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"github.com/flux-lang/flux/internal/core"
)

// PathStat aggregates one Ball-Larus path.
type PathStat struct {
	ID    uint64
	Count uint64
	Total time.Duration
}

// Mean returns the average flow time on this path.
func (p PathStat) Mean() time.Duration {
	if p.Count == 0 {
		return 0
	}
	return p.Total / time.Duration(p.Count)
}

// NodeStat aggregates one node's executions.
type NodeStat struct {
	Name  string
	Count uint64
	Total time.Duration
}

// Mean returns the average node execution time.
func (n NodeStat) Mean() time.Duration {
	if n.Count == 0 {
		return 0
	}
	return n.Total / time.Duration(n.Count)
}

type graphStats struct {
	paths map[uint64]*PathStat
	nodes map[string]*NodeStat
	// drops buckets flows terminated at an unmatched dispatch case,
	// keyed by their partial path register. Kept apart from paths: a
	// partial register can collide with a complete path's ID, and
	// folding the two would corrupt that path's statistics.
	drops map[uint64]*PathStat
}

// Profiler collects flow and node completions from a running server. It
// satisfies the runtime's Profiler interface. One Profiler may observe
// any number of graphs (sources) concurrently.
type Profiler struct {
	mu     sync.Mutex
	graphs map[*core.FlatGraph]*graphStats
}

// New returns an empty profiler.
func New() *Profiler {
	return &Profiler{graphs: make(map[*core.FlatGraph]*graphStats)}
}

func (p *Profiler) stats(g *core.FlatGraph) *graphStats {
	gs, ok := p.graphs[g]
	if !ok {
		gs = &graphStats{
			paths: make(map[uint64]*PathStat),
			nodes: make(map[string]*NodeStat),
			drops: make(map[uint64]*PathStat),
		}
		p.graphs[g] = gs
	}
	return gs
}

// FlowDone records a completed flow.
func (p *Profiler) FlowDone(g *core.FlatGraph, pathID uint64, elapsed time.Duration) {
	p.mu.Lock()
	defer p.mu.Unlock()
	gs := p.stats(g)
	ps, ok := gs.paths[pathID]
	if !ok {
		ps = &PathStat{ID: pathID}
		gs.paths[pathID] = ps
	}
	ps.Count++
	ps.Total += elapsed
}

// FlowDropped records a flow terminated at an unmatched dispatch case
// (the runtime's DropProfiler extension). The ID is the flow's partial
// path register — it identifies the route up to the drop point but is
// bucketed apart from complete paths, whose IDs it can collide with.
func (p *Profiler) FlowDropped(g *core.FlatGraph, pathID uint64, elapsed time.Duration) {
	p.mu.Lock()
	defer p.mu.Unlock()
	gs := p.stats(g)
	ps, ok := gs.drops[pathID]
	if !ok {
		ps = &PathStat{ID: pathID}
		gs.drops[pathID] = ps
	}
	ps.Count++
	ps.Total += elapsed
}

// DroppedFlows returns the number of recorded dropped flows for a graph
// and their cumulative time.
func (p *Profiler) DroppedFlows(g *core.FlatGraph) (count uint64, total time.Duration) {
	p.mu.Lock()
	defer p.mu.Unlock()
	gs := p.graphs[g]
	if gs == nil {
		return 0, 0
	}
	for _, ps := range gs.drops {
		count += ps.Count
		total += ps.Total
	}
	return count, total
}

// NodeDone records one node execution.
func (p *Profiler) NodeDone(g *core.FlatGraph, v *core.FlatNode, elapsed time.Duration) {
	p.mu.Lock()
	defer p.mu.Unlock()
	gs := p.stats(g)
	name := v.Node.Name
	ns, ok := gs.nodes[name]
	if !ok {
		ns = &NodeStat{Name: name}
		gs.nodes[name] = ns
	}
	ns.Count++
	ns.Total += elapsed
}

// SortBy selects the hot-path ranking criterion.
type SortBy int

const (
	// ByCount ranks paths by execution frequency.
	ByCount SortBy = iota
	// ByTotalTime ranks paths by cumulative time — the paper's "most
	// expensive" ranking.
	ByTotalTime
	// ByMeanTime ranks paths by per-execution cost.
	ByMeanTime
)

// PathReport is one ranked row of a hot-path report.
type PathReport struct {
	PathStat
	Label string
}

// HotPaths returns the ranked paths for a graph. A zero limit returns all.
func (p *Profiler) HotPaths(g *core.FlatGraph, by SortBy, limit int) []PathReport {
	p.mu.Lock()
	gs := p.graphs[g]
	var stats []PathStat
	if gs != nil {
		stats = make([]PathStat, 0, len(gs.paths))
		for _, ps := range gs.paths {
			stats = append(stats, *ps)
		}
	}
	p.mu.Unlock()

	sort.Slice(stats, func(i, j int) bool {
		switch by {
		case ByTotalTime:
			if stats[i].Total != stats[j].Total {
				return stats[i].Total > stats[j].Total
			}
		case ByMeanTime:
			if stats[i].Mean() != stats[j].Mean() {
				return stats[i].Mean() > stats[j].Mean()
			}
		default:
			if stats[i].Count != stats[j].Count {
				return stats[i].Count > stats[j].Count
			}
		}
		return stats[i].ID < stats[j].ID
	})
	if limit > 0 && len(stats) > limit {
		stats = stats[:limit]
	}
	out := make([]PathReport, len(stats))
	for i, ps := range stats {
		out[i] = PathReport{PathStat: ps, Label: g.PathLabel(ps.ID)}
	}
	return out
}

// Nodes returns per-node statistics sorted by total time (bottleneck
// order).
func (p *Profiler) Nodes(g *core.FlatGraph) []NodeStat {
	p.mu.Lock()
	gs := p.graphs[g]
	var stats []NodeStat
	if gs != nil {
		stats = make([]NodeStat, 0, len(gs.nodes))
		for _, ns := range gs.nodes {
			stats = append(stats, *ns)
		}
	}
	p.mu.Unlock()
	sort.Slice(stats, func(i, j int) bool {
		if stats[i].Total != stats[j].Total {
			return stats[i].Total > stats[j].Total
		}
		return stats[i].Name < stats[j].Name
	})
	return stats
}

// TotalFlows returns the number of recorded flows for a graph.
func (p *Profiler) TotalFlows(g *core.FlatGraph) uint64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	gs := p.graphs[g]
	if gs == nil {
		return 0
	}
	var n uint64
	for _, ps := range gs.paths {
		n += ps.Count
	}
	return n
}

// EdgeFrequencies reconstructs how often each edge of the graph was
// traversed from the recorded path counts. The simulator generator uses
// this to derive branch probabilities from a profiling run (§5.1:
// "observed branching probabilities").
func (p *Profiler) EdgeFrequencies(g *core.FlatGraph) map[*core.FlatEdge]uint64 {
	p.mu.Lock()
	paths := make(map[uint64]uint64)
	if gs := p.graphs[g]; gs != nil {
		for id, ps := range gs.paths {
			paths[id] = ps.Count
		}
	}
	p.mu.Unlock()

	freq := make(map[*core.FlatEdge]uint64)
	for id, count := range paths {
		nodes := g.DecodePath(id)
		for i := 0; i+1 < len(nodes); i++ {
			for _, e := range nodes[i].Edges() {
				if e.To == nodes[i+1] {
					freq[e] += count
					break
				}
			}
		}
	}
	return freq
}

// GraphReport is one graph's structured profile: the ranked hot paths,
// per-node statistics, and the dropped-flow bucket. It is the §5.2
// report as data — the text renderers format it, and the telemetry ops
// endpoint (/debug/flux/paths) serializes it as JSON.
type GraphReport struct {
	// Source names the graph (its source node).
	Source string `json:"source"`
	// Flows is the number of recorded complete flows.
	Flows uint64 `json:"flows"`
	// DistinctPaths counts the distinct Ball-Larus IDs observed.
	DistinctPaths int `json:"distinctPaths"`
	// Paths lists the ranked hot paths.
	Paths []PathReport `json:"paths"`
	// Nodes lists per-node statistics in bottleneck (total time) order.
	Nodes []NodeStat `json:"nodes"`
	// DroppedFlows / DroppedTotal aggregate flows terminated at an
	// unmatched dispatch case (bucketed apart from complete paths).
	DroppedFlows uint64        `json:"droppedFlows"`
	DroppedTotal time.Duration `json:"droppedTotalNanos"`
}

// Report is the profiler's full structured snapshot: one GraphReport
// per observed graph, sorted by source name.
type Report struct {
	Graphs []GraphReport `json:"graphs"`
}

// GraphSnapshot assembles one graph's structured report. A zero limit
// returns every path.
func (p *Profiler) GraphSnapshot(g *core.FlatGraph, by SortBy, limit int) GraphReport {
	rep := GraphReport{
		Source: g.Source.Name,
		Flows:  p.TotalFlows(g),
		Paths:  p.HotPaths(g, by, limit),
		Nodes:  p.Nodes(g),
	}
	p.mu.Lock()
	if gs := p.graphs[g]; gs != nil {
		rep.DistinctPaths = len(gs.paths)
	}
	p.mu.Unlock()
	rep.DroppedFlows, rep.DroppedTotal = p.DroppedFlows(g)
	return rep
}

// Snapshot assembles the full structured report over every graph this
// profiler has observed, sorted by source name. Both the text
// renderers and the ops endpoint consume this one view.
func (p *Profiler) Snapshot(by SortBy, limit int) Report {
	p.mu.Lock()
	graphs := make([]*core.FlatGraph, 0, len(p.graphs))
	for g := range p.graphs {
		graphs = append(graphs, g)
	}
	p.mu.Unlock()
	sort.Slice(graphs, func(i, j int) bool { return graphs[i].Source.Name < graphs[j].Source.Name })
	var rep Report
	for _, g := range graphs {
		rep.Graphs = append(rep.Graphs, p.GraphSnapshot(g, by, limit))
	}
	return rep
}

// Render formats the hot-path table for reading, in the spirit of the
// §5.2 presentation.
func (r GraphReport) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Path profile for source %s (%d distinct paths, %d flows):\n",
		r.Source, len(r.Paths), r.Flows)
	fmt.Fprintf(&b, "%4s  %10s  %12s  %12s  %s\n", "#", "count", "total", "mean", "path")
	for i, row := range r.Paths {
		fmt.Fprintf(&b, "%4d  %10d  %12s  %12s  %s\n",
			i+1, row.Count, row.Total.Round(time.Microsecond), row.Mean().Round(time.Nanosecond), row.Label)
	}
	if r.DroppedFlows > 0 {
		fmt.Fprintf(&b, "plus %d flows dropped at dispatch (no matching case), %s total\n",
			r.DroppedFlows, r.DroppedTotal.Round(time.Microsecond))
	}
	return b.String()
}

// RenderNodes formats the per-node bottleneck table.
func (r GraphReport) RenderNodes() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Node profile for source %s:\n", r.Source)
	fmt.Fprintf(&b, "%-24s  %10s  %12s  %12s\n", "node", "count", "total", "mean")
	for _, row := range r.Nodes {
		fmt.Fprintf(&b, "%-24s  %10d  %12s  %12s\n",
			row.Name, row.Count, row.Total.Round(time.Microsecond), row.Mean().Round(time.Nanosecond))
	}
	return b.String()
}

// Report renders the hot-path table for a graph — the text view of the
// same GraphSnapshot the ops endpoint serves.
func (p *Profiler) Report(g *core.FlatGraph, by SortBy, limit int) string {
	return p.GraphSnapshot(g, by, limit).Render()
}

// NodeReport renders the per-node bottleneck table.
func (p *Profiler) NodeReport(g *core.FlatGraph) string {
	return p.GraphSnapshot(g, ByCount, 0).RenderNodes()
}

// Reset clears all recorded data (e.g. after a warm-up period, matching
// the paper's methodology of ignoring the first twenty seconds).
func (p *Profiler) Reset() {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.graphs = make(map[*core.FlatGraph]*graphStats)
}
