// Package lfu implements the image server's cache (§2, §2.5): a
// least-frequently-used replacement cache with reference counts.
//
// The paper's protocol is three operations under one atomicity
// constraint: CheckCache looks an item up and increments its reference
// count on a hit; StoreInCache inserts a new item, evicting the
// least-frequently-used entry whose reference count is zero; Complete
// decrements the reference count when the flow finishes with the item.
// The cache itself is deliberately unsynchronized — mutual exclusion is
// the Flux program's job, which is exactly what the paper's cache
// constraint demonstrates. A Locked wrapper is provided for non-Flux use.
package lfu

import (
	"container/heap"
	"sync"
	"sync/atomic"
)

// Entry is one cached item.
type entry struct {
	key   string
	value []byte
	freq  uint64 // access count for LFU ranking
	refs  int    // in-flight flows using the value
	seq   uint64 // insertion tiebreak: older evicts first
	index int    // heap index, -1 when not in heap
}

// Cache is an LFU cache with reference counts, bounded by total byte
// size. Not safe for concurrent use; see Locked.
type Cache struct {
	capacity int64
	used     int64
	items    map[string]*entry
	evict    evictHeap
	seq      uint64

	// Counters are atomic so Stats can be sampled from a monitoring
	// goroutine while flows mutate the cache under the Flux constraint.
	hits, misses, evictions atomic.Uint64
}

// New returns a cache bounded to capacity bytes of values.
func New(capacity int64) *Cache {
	return &Cache{capacity: capacity, items: make(map[string]*entry)}
}

// Get looks up a key; on a hit it bumps the frequency and takes a
// reference that the caller must release with Release.
func (c *Cache) Get(key string) (value []byte, ok bool) {
	e, ok := c.items[key]
	if !ok {
		c.misses.Add(1)
		return nil, false
	}
	c.hits.Add(1)
	e.freq++
	e.refs++
	if e.index >= 0 {
		heap.Fix(&c.evict, e.index)
	}
	return e.value, true
}

// Contains reports presence without touching frequency or references.
func (c *Cache) Contains(key string) bool {
	_, ok := c.items[key]
	return ok
}

// Put inserts a value with one reference already held by the caller
// (the inserting flow is about to use it). It evicts least-frequently
// used zero-reference entries as needed. If the value cannot fit even
// after evicting everything evictable, it is still stored (the cache
// temporarily overcommits rather than thrash); inserted reports whether
// the key was newly added.
func (c *Cache) Put(key string, value []byte) (inserted bool) {
	if e, ok := c.items[key]; ok {
		// Concurrent flows can race to fill the same slot between
		// CheckCache and StoreInCache; keep the first value, count a
		// use of it.
		e.freq++
		e.refs++
		return false
	}
	need := int64(len(value))
	for c.used+need > c.capacity {
		if !c.evictOne() {
			break
		}
	}
	c.seq++
	e := &entry{key: key, value: value, freq: 1, refs: 1, seq: c.seq, index: -1}
	c.items[key] = e
	c.used += need
	heap.Push(&c.evict, e)
	return true
}

// Release decrements a key's reference count (the image server's
// Complete node). Releasing an absent key is a no-op; releasing below
// zero clamps, so a buggy caller cannot wedge eviction.
func (c *Cache) Release(key string) {
	if e, ok := c.items[key]; ok && e.refs > 0 {
		e.refs--
	}
}

// evictOne removes the least-frequently-used zero-reference entry,
// reporting false when every entry is referenced.
func (c *Cache) evictOne() bool {
	// Pop entries until one is evictable; re-push the referenced ones.
	var skipped []*entry
	defer func() {
		for _, e := range skipped {
			heap.Push(&c.evict, e)
		}
	}()
	for c.evict.Len() > 0 {
		e := heap.Pop(&c.evict).(*entry)
		if e.refs > 0 {
			skipped = append(skipped, e)
			continue
		}
		delete(c.items, e.key)
		c.used -= int64(len(e.value))
		c.evictions.Add(1)
		return true
	}
	return false
}

// Len returns the number of cached entries.
func (c *Cache) Len() int { return len(c.items) }

// Used returns the total bytes of cached values.
func (c *Cache) Used() int64 { return c.used }

// Stats returns hit/miss/eviction counters. Unlike the structural
// operations it is safe to call concurrently with them.
func (c *Cache) Stats() (hits, misses, evictions uint64) {
	return c.hits.Load(), c.misses.Load(), c.evictions.Load()
}

// evictHeap orders entries by (freq, seq) ascending: least frequently
// used first, oldest first on ties.
type evictHeap []*entry

func (h evictHeap) Len() int { return len(h) }
func (h evictHeap) Less(i, j int) bool {
	if h[i].freq != h[j].freq {
		return h[i].freq < h[j].freq
	}
	return h[i].seq < h[j].seq
}
func (h evictHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *evictHeap) Push(x any) {
	e := x.(*entry)
	e.index = len(*h)
	*h = append(*h, e)
}
func (h *evictHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.index = -1
	*h = old[:n-1]
	return e
}

// Locked wraps a Cache with a mutex for callers outside a Flux atomicity
// constraint (the baseline servers use it).
type Locked struct {
	mu sync.Mutex
	c  *Cache
}

// NewLocked returns a mutex-guarded LFU cache.
func NewLocked(capacity int64) *Locked {
	return &Locked{c: New(capacity)}
}

// Get is the locked Cache.Get.
func (l *Locked) Get(key string) ([]byte, bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.c.Get(key)
}

// Put is the locked Cache.Put.
func (l *Locked) Put(key string, value []byte) bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.c.Put(key, value)
}

// Release is the locked Cache.Release.
func (l *Locked) Release(key string) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.c.Release(key)
}

// Stats is the locked Cache.Stats.
func (l *Locked) Stats() (hits, misses, evictions uint64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.c.Stats()
}
