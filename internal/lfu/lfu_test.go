package lfu

import (
	"fmt"
	"sync"
	"testing"
	"testing/quick"
)

func TestGetMissThenHit(t *testing.T) {
	c := New(1000)
	if _, ok := c.Get("a"); ok {
		t.Fatal("hit on empty cache")
	}
	c.Put("a", []byte("value"))
	v, ok := c.Get("a")
	if !ok || string(v) != "value" {
		t.Fatalf("get = %q, %v", v, ok)
	}
	hits, misses, _ := c.Stats()
	if hits != 1 || misses != 1 {
		t.Errorf("hits=%d misses=%d", hits, misses)
	}
}

func TestLFUEvictionOrder(t *testing.T) {
	c := New(30) // room for 3 ten-byte values
	pad := func(s string) []byte { return []byte(s + "123456789") }
	c.Put("a", pad("a"))
	c.Put("b", pad("b"))
	c.Put("c", pad("c"))
	// Release the Put references so everything is evictable.
	for _, k := range []string{"a", "b", "c"} {
		c.Release(k)
	}
	// Make "a" hot, "b" warm, "c" cold.
	for i := 0; i < 5; i++ {
		c.Get("a")
		c.Release("a")
	}
	c.Get("b")
	c.Release("b")
	// Insert "d": evicts "c" (lowest frequency).
	c.Put("d", pad("d"))
	c.Release("d")
	if c.Contains("c") {
		t.Error("least-frequently-used entry not evicted")
	}
	for _, k := range []string{"a", "b", "d"} {
		if !c.Contains(k) {
			t.Errorf("%q evicted out of order", k)
		}
	}
}

func TestReferencedEntriesNotEvicted(t *testing.T) {
	c := New(20) // room for 2
	pad := func(s string) []byte { return []byte(s + "123456789") }
	c.Put("a", pad("a")) // ref held (not released)
	c.Put("b", pad("b"))
	c.Release("b")
	// Inserting c can only evict b; a is referenced (the §2.5 zero
	// reference count eviction rule).
	c.Put("c", pad("c"))
	if !c.Contains("a") {
		t.Error("referenced entry was evicted")
	}
	if c.Contains("b") {
		t.Error("zero-ref entry should have been evicted")
	}
}

func TestAllReferencedOvercommits(t *testing.T) {
	c := New(20)
	pad := func(s string) []byte { return []byte(s + "123456789") }
	c.Put("a", pad("a"))
	c.Put("b", pad("b"))
	// Nothing evictable; Put still succeeds (overcommit) so the flow
	// can proceed.
	if !c.Put("c", pad("c")) {
		t.Error("insert with all entries referenced failed")
	}
	if c.Used() != 30 {
		t.Errorf("used = %d", c.Used())
	}
}

func TestDuplicatePutKeepsFirstValue(t *testing.T) {
	c := New(100)
	c.Put("k", []byte("first"))
	if c.Put("k", []byte("second")) {
		t.Error("duplicate put reported insert")
	}
	v, _ := c.Get("k")
	if string(v) != "first" {
		t.Errorf("value = %q", v)
	}
}

func TestReleaseClampsAtZero(t *testing.T) {
	c := New(100)
	c.Put("k", []byte("v"))
	c.Release("k")
	c.Release("k") // extra release must not underflow
	c.Release("missing")
	// Entry should still be evictable exactly once.
	c.Put("big", make([]byte, 100))
	if c.Contains("k") {
		t.Error("k should have been evicted")
	}
}

func TestInsertionOrderTiebreak(t *testing.T) {
	c := New(20)
	pad := func(s string) []byte { return []byte(s + "123456789") }
	c.Put("old", pad("o"))
	c.Release("old")
	c.Put("new", pad("n"))
	c.Release("new")
	// Equal frequency: evict the older insertion.
	c.Put("x", pad("x"))
	if c.Contains("old") {
		t.Error("tie should evict the older entry")
	}
	if !c.Contains("new") {
		t.Error("newer entry evicted on tie")
	}
}

func TestStatsAndLen(t *testing.T) {
	c := New(1000)
	c.Put("a", []byte("1"))
	c.Put("b", []byte("2"))
	if c.Len() != 2 {
		t.Errorf("len = %d", c.Len())
	}
	if c.Used() != 2 {
		t.Errorf("used = %d", c.Used())
	}
	_, _, ev := c.Stats()
	if ev != 0 {
		t.Errorf("evictions = %d", ev)
	}
}

// TestQuickUsedMatchesContents: after arbitrary operations, Used equals
// the sum of stored value lengths.
func TestQuickUsedMatchesContents(t *testing.T) {
	f := func(ops []uint16) bool {
		c := New(500)
		live := map[string]int{}
		for _, op := range ops {
			key := fmt.Sprintf("k%d", op%23)
			switch op % 3 {
			case 0:
				size := int(op%64) + 1
				if c.Put(key, make([]byte, size)) {
					live[key] = size
				}
				c.Release(key)
			case 1:
				if _, ok := c.Get(key); ok {
					c.Release(key)
				}
			case 2:
				c.Release(key)
			}
			// Rebuild live from Contains to account for evictions.
			for k := range live {
				if !c.Contains(k) {
					delete(live, k)
				}
			}
		}
		var want int64
		for _, sz := range live {
			want += int64(sz)
		}
		return c.Used() == want && c.Len() == len(live)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestLockedCacheConcurrent(t *testing.T) {
	l := NewLocked(10000)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				key := fmt.Sprintf("k%d", i%17)
				if _, ok := l.Get(key); ok {
					l.Release(key)
				} else {
					l.Put(key, []byte(key))
					l.Release(key)
				}
			}
		}(g)
	}
	wg.Wait()
	hits, misses, _ := l.Stats()
	if hits+misses != 8*200 {
		t.Errorf("hits+misses = %d, want 1600", hits+misses)
	}
}
