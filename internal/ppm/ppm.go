// Package ppm implements the PPM image format (P6 binary and P3 ASCII,
// 8-bit) and box down-scaling — the input side of the paper's image
// server, which stores images in PPM and compresses them to JPEG on
// demand (§2).
package ppm

import (
	"bufio"
	"bytes"
	"errors"
	"fmt"
	"image"
	"image/color"
	"io"
	"strconv"
)

// Image is an 8-bit RGB raster.
type Image struct {
	Width, Height int
	// Pix holds packed RGB triples, row-major: 3*(y*Width+x).
	Pix []byte
}

// NewImage allocates a black image.
func NewImage(w, h int) *Image {
	return &Image{Width: w, Height: h, Pix: make([]byte, 3*w*h)}
}

// At returns the pixel at (x, y).
func (m *Image) At(x, y int) (r, g, b byte) {
	i := 3 * (y*m.Width + x)
	return m.Pix[i], m.Pix[i+1], m.Pix[i+2]
}

// Set writes the pixel at (x, y).
func (m *Image) Set(x, y int, r, g, b byte) {
	i := 3 * (y*m.Width + x)
	m.Pix[i], m.Pix[i+1], m.Pix[i+2] = r, g, b
}

// EncodeP6 renders the binary PPM format.
func (m *Image) EncodeP6() []byte {
	var buf bytes.Buffer
	fmt.Fprintf(&buf, "P6\n%d %d\n255\n", m.Width, m.Height)
	buf.Write(m.Pix)
	return buf.Bytes()
}

// EncodeP3 renders the ASCII PPM format.
func (m *Image) EncodeP3() []byte {
	var buf bytes.Buffer
	fmt.Fprintf(&buf, "P3\n%d %d\n255\n", m.Width, m.Height)
	for i := 0; i < len(m.Pix); i += 3 {
		fmt.Fprintf(&buf, "%d %d %d\n", m.Pix[i], m.Pix[i+1], m.Pix[i+2])
	}
	return buf.Bytes()
}

// Decode parses a P6 or P3 PPM image with 8-bit samples.
func Decode(data []byte) (*Image, error) {
	r := bufio.NewReader(bytes.NewReader(data))
	magic, err := token(r)
	if err != nil {
		return nil, fmt.Errorf("ppm: missing magic: %w", err)
	}
	if magic != "P6" && magic != "P3" {
		return nil, fmt.Errorf("ppm: unsupported format %q", magic)
	}
	w, err := intToken(r)
	if err != nil {
		return nil, fmt.Errorf("ppm: width: %w", err)
	}
	h, err := intToken(r)
	if err != nil {
		return nil, fmt.Errorf("ppm: height: %w", err)
	}
	maxval, err := intToken(r)
	if err != nil {
		return nil, fmt.Errorf("ppm: maxval: %w", err)
	}
	if w <= 0 || h <= 0 || w*h > 1<<26 {
		return nil, fmt.Errorf("ppm: unreasonable dimensions %dx%d", w, h)
	}
	if maxval != 255 {
		return nil, fmt.Errorf("ppm: only maxval 255 supported, got %d", maxval)
	}
	img := NewImage(w, h)
	if magic == "P6" {
		// Exactly one whitespace byte separates the header from raster
		// data; token() has already consumed it.
		if _, err := io.ReadFull(r, img.Pix); err != nil {
			return nil, fmt.Errorf("ppm: raster: %w", err)
		}
		return img, nil
	}
	for i := range img.Pix {
		v, err := intToken(r)
		if err != nil {
			return nil, fmt.Errorf("ppm: sample %d: %w", i, err)
		}
		if v < 0 || v > 255 {
			return nil, fmt.Errorf("ppm: sample %d out of range: %d", i, v)
		}
		img.Pix[i] = byte(v)
	}
	return img, nil
}

// token reads the next whitespace-delimited token, skipping '#' comments.
func token(r *bufio.Reader) (string, error) {
	var b []byte
	for {
		c, err := r.ReadByte()
		if err != nil {
			if len(b) > 0 && errors.Is(err, io.EOF) {
				return string(b), nil
			}
			return "", err
		}
		switch {
		case c == '#' && len(b) == 0:
			if _, err := r.ReadString('\n'); err != nil && !errors.Is(err, io.EOF) {
				return "", err
			}
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			if len(b) > 0 {
				return string(b), nil
			}
		default:
			b = append(b, c)
		}
	}
}

func intToken(r *bufio.Reader) (int, error) {
	s, err := token(r)
	if err != nil {
		return 0, err
	}
	return strconv.Atoi(s)
}

// Scale produces a box-filtered resize to w x h. The image server's eight
// request sizes (1/8th through full scale, §5.1) all route through here.
func (m *Image) Scale(w, h int) *Image {
	if w <= 0 || h <= 0 {
		return NewImage(1, 1)
	}
	out := NewImage(w, h)
	for y := 0; y < h; y++ {
		sy0 := y * m.Height / h
		sy1 := (y + 1) * m.Height / h
		if sy1 <= sy0 {
			sy1 = sy0 + 1
		}
		for x := 0; x < w; x++ {
			sx0 := x * m.Width / w
			sx1 := (x + 1) * m.Width / w
			if sx1 <= sx0 {
				sx1 = sx0 + 1
			}
			var r, g, b, n int
			for sy := sy0; sy < sy1 && sy < m.Height; sy++ {
				for sx := sx0; sx < sx1 && sx < m.Width; sx++ {
					pr, pg, pb := m.At(sx, sy)
					r += int(pr)
					g += int(pg)
					b += int(pb)
					n++
				}
			}
			if n > 0 {
				out.Set(x, y, byte(r/n), byte(g/n), byte(b/n))
			}
		}
	}
	return out
}

// ToRGBA converts to the stdlib image type for JPEG encoding.
func (m *Image) ToRGBA() *image.RGBA {
	out := image.NewRGBA(image.Rect(0, 0, m.Width, m.Height))
	for y := 0; y < m.Height; y++ {
		for x := 0; x < m.Width; x++ {
			r, g, b := m.At(x, y)
			out.SetRGBA(x, y, color.RGBA{R: r, G: g, B: b, A: 255})
		}
	}
	return out
}

// Synthetic generates a deterministic test-pattern image (gradients plus
// structure so JPEG compression does real work), standing in for the
// paper's five stock photographs.
func Synthetic(w, h int, seed int64) *Image {
	img := NewImage(w, h)
	s := uint64(seed)*2654435761 + 1
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			r := byte((x*255/max(w-1, 1) + int(s%61)) & 0xFF)
			g := byte((y*255/max(h-1, 1) + int(s%83)) & 0xFF)
			b := byte(((x ^ y) + int(s%97)) & 0xFF)
			img.Set(x, y, r, g, b)
		}
	}
	return img
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
