package ppm

import (
	"bytes"
	"image/jpeg"
	"testing"
	"testing/quick"
)

func TestEncodeDecodeP6(t *testing.T) {
	img := Synthetic(64, 48, 1)
	data := img.EncodeP6()
	got, err := Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	if got.Width != 64 || got.Height != 48 {
		t.Fatalf("dims = %dx%d", got.Width, got.Height)
	}
	if !bytes.Equal(got.Pix, img.Pix) {
		t.Error("pixel data corrupted in P6 round trip")
	}
}

func TestEncodeDecodeP3(t *testing.T) {
	img := Synthetic(8, 8, 2)
	got, err := Decode(img.EncodeP3())
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.Pix, img.Pix) {
		t.Error("pixel data corrupted in P3 round trip")
	}
}

func TestDecodeComments(t *testing.T) {
	src := "P3\n# a comment\n2 1\n# another\n255\n1 2 3 4 5 6\n"
	img, err := Decode([]byte(src))
	if err != nil {
		t.Fatal(err)
	}
	r, g, b := img.At(1, 0)
	if r != 4 || g != 5 || b != 6 {
		t.Errorf("pixel = %d,%d,%d", r, g, b)
	}
}

func TestDecodeErrors(t *testing.T) {
	bad := []string{
		"",
		"P5\n1 1\n255\n\x00",      // unsupported format
		"P6\n0 5\n255\n",          // zero width
		"P6\n2 2\n65535\n",        // 16-bit samples
		"P6\n2 2\n255\n\x00\x00",  // truncated raster
		"P3\n1 1\n255\n300 0 0\n", // sample out of range
		"P3\n1 1\n255\n1 2\n",     // missing sample
	}
	for _, in := range bad {
		if _, err := Decode([]byte(in)); err == nil {
			t.Errorf("Decode(%q) should fail", in)
		}
	}
}

func TestScaleDimensions(t *testing.T) {
	img := Synthetic(256, 192, 3)
	for _, f := range []int{1, 2, 4, 8} {
		out := img.Scale(256/f, 192/f)
		if out.Width != 256/f || out.Height != 192/f {
			t.Errorf("scale 1/%d: %dx%d", f, out.Width, out.Height)
		}
	}
	// Degenerate sizes do not panic.
	if got := img.Scale(0, 0); got.Width != 1 || got.Height != 1 {
		t.Errorf("degenerate scale = %dx%d", got.Width, got.Height)
	}
}

func TestScaleIdentityPreservesPixels(t *testing.T) {
	img := Synthetic(32, 32, 4)
	out := img.Scale(32, 32)
	if !bytes.Equal(out.Pix, img.Pix) {
		t.Error("identity scale changed pixels")
	}
}

func TestScaleAveragesUniformRegions(t *testing.T) {
	img := NewImage(4, 4)
	for y := 0; y < 4; y++ {
		for x := 0; x < 4; x++ {
			img.Set(x, y, 100, 150, 200)
		}
	}
	out := img.Scale(2, 2)
	r, g, b := out.At(1, 1)
	if r != 100 || g != 150 || b != 200 {
		t.Errorf("uniform scale pixel = %d,%d,%d", r, g, b)
	}
}

func TestToRGBAAndJPEG(t *testing.T) {
	img := Synthetic(120, 80, 5)
	rgba := img.ToRGBA()
	if rgba.Bounds().Dx() != 120 || rgba.Bounds().Dy() != 80 {
		t.Fatalf("bounds = %v", rgba.Bounds())
	}
	var buf bytes.Buffer
	if err := jpeg.Encode(&buf, rgba, &jpeg.Options{Quality: 75}); err != nil {
		t.Fatal(err)
	}
	if buf.Len() == 0 {
		t.Fatal("empty jpeg")
	}
	cfg, err := jpeg.DecodeConfig(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Width != 120 || cfg.Height != 80 {
		t.Errorf("jpeg dims = %dx%d", cfg.Width, cfg.Height)
	}
}

func TestSyntheticDeterministic(t *testing.T) {
	a := Synthetic(16, 16, 7)
	b := Synthetic(16, 16, 7)
	c := Synthetic(16, 16, 8)
	if !bytes.Equal(a.Pix, b.Pix) {
		t.Error("same seed produced different images")
	}
	if bytes.Equal(a.Pix, c.Pix) {
		t.Error("different seeds produced identical images")
	}
}

// TestQuickP6RoundTrip round-trips random small images.
func TestQuickP6RoundTrip(t *testing.T) {
	f := func(w8, h8 uint8, seed int64) bool {
		w, h := int(w8)%32+1, int(h8)%32+1
		img := Synthetic(w, h, seed)
		got, err := Decode(img.EncodeP6())
		return err == nil && got.Width == w && got.Height == h && bytes.Equal(got.Pix, img.Pix)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// TestQuickDecodeNeverPanics fuzzes the decoder lightly.
func TestQuickDecodeNeverPanics(t *testing.T) {
	f := func(data []byte) bool {
		_, _ = Decode(data)
		_, _ = Decode(append([]byte("P6\n"), data...))
		_, _ = Decode(append([]byte("P3\n"), data...))
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}
