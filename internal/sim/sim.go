// Package sim is a process-oriented discrete-event simulator for Flux
// programs, replacing the commercial CSIM simulator used in §5.1.
//
// CPUs are modeled as an m-server resource that each exec vertex must
// reserve for an exponentially distributed service time (parameterized by
// observed or estimated per-node means); atomicity constraints are
// reader-writer lock facilities held for the duration of the bracketed
// execution, exactly as the compiler-generated CSIM code of Figure 5
// does; conditional nodes branch with observed probabilities. Following
// the paper, session-scoped constraints are conservatively treated as
// globals, and disk/network resources are not modeled — appropriate for
// CPU-bound servers such as the image server the paper validates against.
package sim

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"github.com/flux-lang/flux/internal/core"
	"github.com/flux-lang/flux/internal/lang/ast"
)

// SourceParams describes one source's arrival process.
type SourceParams struct {
	// Rate is the arrival rate in flows per simulated second.
	Rate float64
	// Exponential selects exponential inter-arrival times; false gives
	// the deterministic 1/Rate spacing the paper's image-server load
	// tester uses ("one every 1/n seconds").
	Exponential bool
}

// Params parameterizes a simulation run.
type Params struct {
	// CPUs is the number of processors (servers of the CPU resource).
	CPUs int
	// Duration is the simulated time in seconds; Warmup seconds of
	// measurements are discarded (the paper ignores the first twenty
	// seconds of each two-minute run).
	Duration float64
	Warmup   float64
	// Seed makes runs reproducible.
	Seed int64

	// Sources maps source node name to its arrival process. Sources
	// absent from the map generate no flows.
	Sources map[string]SourceParams

	// NodeTime maps concrete node name to mean CPU service seconds
	// (observed from a profiling run or estimated, §5.1). Nodes absent
	// from the map cost zero CPU.
	NodeTime map[string]float64

	// BranchProb maps a conditional node name to per-case selection
	// probabilities (in case order, summing to 1). Absent nodes choose
	// uniformly.
	BranchProb map[string][]float64

	// ErrorProb maps a concrete node name to the probability its
	// execution fails (taking the error edge). Absent nodes never fail.
	ErrorProb map[string]float64

	// SessionCount, when positive, models session-scoped constraints
	// per session: each arriving flow draws a session uniformly from
	// [0, SessionCount) and contends only within it. Zero keeps the
	// paper's conservative treatment of session constraints as globals
	// (§5.1); per-session modeling is the enhancement §8 plans.
	SessionCount int

	// MaxInFlight bounds concurrently active flows; arrivals beyond the
	// bound are dropped (admission control). Zero means unbounded. Load
	// generators bound their outstanding requests, so matching the
	// simulator keeps overload predictions comparable: an unbounded
	// open-loop queue over a lock-then-CPU structure collapses instead
	// of saturating.
	MaxInFlight int
}

// Result reports a simulation's measurements (post-warmup).
type Result struct {
	Flows       int     // flows completing inside the measurement window
	Errored     int     // of which ended at the error terminal
	Dropped     int     // arrivals shed by MaxInFlight admission control
	Throughput  float64 // completions per simulated second
	MeanLatency float64 // seconds
	P50, P95    float64 // latency percentiles, seconds
	Utilization float64 // mean fraction of CPU capacity in use
}

func (r Result) String() string {
	return fmt.Sprintf("flows=%d errored=%d throughput=%.2f/s mean=%.4fs p50=%.4fs p95=%.4fs util=%.1f%%",
		r.Flows, r.Errored, r.Throughput, r.MeanLatency, r.P50, r.P95, 100*r.Utilization)
}

// Simulator drives one program's graphs through simulated time.
type Simulator struct {
	prog   *core.Program
	params Params

	now  float64
	seq  uint64
	heap eventHeap
	rng  *rand.Rand

	cpu   *resource
	locks map[string]*simLock

	latencies []float64
	flows     int
	errored   int
	inflight  int
	dropped   int
}

// New prepares a simulator for the program with the given parameters.
func New(prog *core.Program, params Params) *Simulator {
	if params.CPUs <= 0 {
		params.CPUs = 1
	}
	if params.Duration <= 0 {
		params.Duration = 60
	}
	s := &Simulator{
		prog:   prog,
		params: params,
		rng:    rand.New(rand.NewSource(params.Seed)),
		cpu:    &resource{cap: params.CPUs},
		locks:  make(map[string]*simLock),
	}
	return s
}

// schedule queues fn at absolute simulated time at.
func (s *Simulator) schedule(at float64, fn func()) {
	s.seq++
	s.heap.push(schedEvent{at: at, seq: s.seq, fn: fn})
}

// exp draws an exponential variate with the given mean.
func (s *Simulator) exp(mean float64) float64 {
	if mean <= 0 {
		return 0
	}
	return s.rng.ExpFloat64() * mean
}

// Run executes the simulation and returns the measurements.
func (s *Simulator) Run() Result {
	for name, sp := range s.params.Sources {
		g, ok := s.prog.Graphs[name]
		if !ok || sp.Rate <= 0 {
			continue
		}
		s.scheduleArrival(g, sp)
	}

	end := s.params.Duration
	for {
		ev, ok := s.heap.pop()
		if !ok || ev.at > end {
			break
		}
		s.now = ev.at
		ev.fn()
	}
	s.now = end
	s.cpu.sync(s.now)

	res := Result{Flows: len(s.latencies) + s.errored, Errored: s.errored, Dropped: s.dropped}
	window := s.params.Duration - s.params.Warmup
	if window > 0 {
		res.Throughput = float64(len(s.latencies)) / window
	}
	if len(s.latencies) > 0 {
		sorted := append([]float64(nil), s.latencies...)
		sort.Float64s(sorted)
		var sum float64
		for _, v := range sorted {
			sum += v
		}
		res.MeanLatency = sum / float64(len(sorted))
		res.P50 = percentile(sorted, 0.50)
		res.P95 = percentile(sorted, 0.95)
	}
	if s.params.Duration > 0 {
		res.Utilization = s.cpu.busyIntegral / (s.params.Duration * float64(s.cpu.cap))
	}
	return res
}

func percentile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(math.Ceil(q*float64(len(sorted)))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}

// scheduleArrival books the next flow arrival for a source.
func (s *Simulator) scheduleArrival(g *core.FlatGraph, sp SourceParams) {
	var gap float64
	if sp.Exponential {
		gap = s.exp(1 / sp.Rate)
	} else {
		gap = 1 / sp.Rate
	}
	s.schedule(s.now+gap, func() {
		defer s.scheduleArrival(g, sp)
		if s.params.MaxInFlight > 0 && s.inflight >= s.params.MaxInFlight {
			s.dropped++
			return
		}
		s.inflight++
		fp := &flowProc{sim: s, g: g, v: g.Entry, arrival: s.now}
		if s.params.SessionCount > 0 {
			fp.session = s.rng.Intn(s.params.SessionCount)
		}
		fp.advance()
	})
}

// flowProc is one simulated flow walking the flat graph.
type flowProc struct {
	sim     *Simulator
	g       *core.FlatGraph
	v       *core.FlatNode
	arrival float64
	// session is the flow's session id when SessionCount modeling is on.
	session int
	// held mirrors the runtime's lock stack for release bookkeeping.
	held []*simLock
	// consIdx is the resume position within an acquire vertex.
	consIdx int
}

// advance walks vertices until the flow must wait (for a CPU or a lock)
// or terminates.
func (fp *flowProc) advance() {
	s := fp.sim
	for {
		switch fp.v.Kind {
		case core.FlatExec:
			// Figure 5: reserve a processor, hold for an exponential
			// service time, release, move on.
			fp.sim.cpu.request(s, func() {
				service := s.exp(s.params.NodeTime[fp.v.Node.Name])
				s.schedule(s.now+service, func() {
					s.cpu.release(s)
					fp.afterExec()
				})
			})
			return

		case core.FlatBranch:
			fp.v = fp.chooseCase().To
			// continue walking

		case core.FlatAcquire:
			if !fp.acquireSet() {
				return // parked on a lock; grant resumes us
			}
			fp.v = fp.v.Out[0].To

		case core.FlatRelease:
			for range fp.v.Cons {
				fp.releaseTop()
			}
			fp.v = fp.v.Out[0].To

		case core.FlatExit:
			fp.finish(false)
			return

		case core.FlatError:
			fp.finish(true)
			return
		}
	}
}

// afterExec applies the post-service transition: error edge with
// probability ErrorProb, else the normal edge.
func (fp *flowProc) afterExec() {
	s := fp.sim
	if p := s.params.ErrorProb[fp.v.Node.Name]; p > 0 && fp.v.ErrEdge != nil && s.rng.Float64() < p {
		for len(fp.held) > 0 {
			fp.releaseTop()
		}
		fp.v = fp.v.ErrEdge.To
	} else {
		fp.v = fp.v.Out[0].To
	}
	fp.advance()
}

// chooseCase samples a dispatch case.
func (fp *flowProc) chooseCase() *core.FlatEdge {
	s := fp.sim
	edges := fp.v.Out
	probs := s.params.BranchProb[fp.v.Node.Name]
	r := s.rng.Float64()
	if len(probs) != len(edges) {
		// Uniform fallback.
		i := int(r * float64(len(edges)))
		if i >= len(edges) {
			i = len(edges) - 1
		}
		return edges[i]
	}
	var acc float64
	for i, p := range probs {
		acc += p
		if r < acc {
			return edges[i]
		}
	}
	return edges[len(edges)-1]
}

// acquireSet acquires the vertex's constraints in canonical order,
// resuming from consIdx. It reports whether the full set is held; when
// false, the flow is parked on a lock queue and will be resumed by the
// grant callback.
func (fp *flowProc) acquireSet() bool {
	v := fp.v
	for fp.consIdx < len(v.Cons) {
		c := v.Cons[fp.consIdx]
		l := fp.sim.lockForConstraint(c, fp.session)
		granted := l.acquire(fp, c.Mode == ast.Writer, func() {
			fp.consIdx++
			fp.held = append(fp.held, l)
			if fp.acquireSet() {
				fp.v = fp.v.Out[0].To
				fp.consIdx = 0
				fp.advance()
			}
		})
		if !granted {
			return false
		}
		fp.consIdx++
		fp.held = append(fp.held, l)
	}
	fp.consIdx = 0
	return true
}

func (fp *flowProc) releaseTop() {
	l := fp.held[len(fp.held)-1]
	fp.held = fp.held[:len(fp.held)-1]
	l.release(fp, fp.sim)
}

// finish records the flow's completion.
func (fp *flowProc) finish(errored bool) {
	s := fp.sim
	for len(fp.held) > 0 {
		fp.releaseTop()
	}
	if s.params.MaxInFlight > 0 {
		s.inflight--
	}
	if s.now < s.params.Warmup {
		return
	}
	if errored {
		s.errored++
		return
	}
	s.latencies = append(s.latencies, s.now-fp.arrival)
}

func (s *Simulator) lockFor(name string) *simLock {
	l, ok := s.locks[name]
	if !ok {
		l = &simLock{holders: make(map[*flowProc]int)}
		s.locks[name] = l
	}
	return l
}

// lockForConstraint resolves the lock instance for a constraint: a
// per-session instance when session modeling is enabled and the
// constraint is session-scoped, otherwise the global instance.
func (s *Simulator) lockForConstraint(c ast.Constraint, session int) *simLock {
	if c.Session && s.params.SessionCount > 0 {
		return s.lockFor(fmt.Sprintf("%s#%d", c.Name, session))
	}
	return s.lockFor(c.Name)
}
