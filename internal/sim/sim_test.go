package sim

import (
	"math"
	"testing"

	"github.com/flux-lang/flux/internal/core"
	"github.com/flux-lang/flux/internal/lang/parser"
)

func compileSrc(t *testing.T, src string) *core.Program {
	t.Helper()
	astProg, err := parser.Parse("sim.flux", src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	p, err := core.Build(astProg)
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	return p
}

const mm1Src = `
Arrive () => (int v);
Serve (int v) => ();
source Arrive => Flow;
Flow = Serve;
`

// TestMM1AgainstTheory validates the simulator core against the M/M/1
// queue: with arrival rate lambda and service rate mu, the theoretical
// mean sojourn time is 1/(mu-lambda). This is the strongest correctness
// anchor available for a DES.
func TestMM1AgainstTheory(t *testing.T) {
	p := compileSrc(t, mm1Src)
	lambda, mu := 50.0, 100.0
	s := New(p, Params{
		CPUs:     1,
		Duration: 400,
		Warmup:   40,
		Seed:     7,
		Sources:  map[string]SourceParams{"Arrive": {Rate: lambda, Exponential: true}},
		NodeTime: map[string]float64{"Serve": 1 / mu},
	})
	res := s.Run()
	want := 1 / (mu - lambda) // 20ms
	if math.Abs(res.MeanLatency-want)/want > 0.15 {
		t.Errorf("M/M/1 mean latency = %.4fs, theory %.4fs", res.MeanLatency, want)
	}
	if math.Abs(res.Throughput-lambda)/lambda > 0.1 {
		t.Errorf("throughput = %.2f, want ~%.2f", res.Throughput, lambda)
	}
	// Utilization should be ~lambda/mu = 0.5.
	if math.Abs(res.Utilization-0.5) > 0.08 {
		t.Errorf("utilization = %.3f, want ~0.5", res.Utilization)
	}
}

// TestMMcScaling: with m CPUs the system should sustain nearly m times
// the single-CPU saturation throughput — the capacity scaling that
// Figure 6 predicts for the image server.
func TestMMcScaling(t *testing.T) {
	p := compileSrc(t, mm1Src)
	serviceMean := 0.010 // 10ms/request -> 100/s per CPU
	for _, cpus := range []int{1, 2, 4} {
		offered := 3.0 * 100 * float64(cpus) // 3x overload
		s := New(p, Params{
			CPUs:     cpus,
			Duration: 60,
			Warmup:   6,
			Seed:     11,
			Sources:  map[string]SourceParams{"Arrive": {Rate: offered, Exponential: true}},
			NodeTime: map[string]float64{"Serve": serviceMean},
		})
		res := s.Run()
		capacity := float64(cpus) / serviceMean
		if res.Throughput < 0.9*capacity || res.Throughput > 1.1*capacity {
			t.Errorf("cpus=%d: saturated throughput = %.1f/s, capacity %.1f/s", cpus, res.Throughput, capacity)
		}
	}
}

// TestDeterministicSeeds: identical seeds give identical results; a
// different seed gives different latencies.
func TestDeterministicSeeds(t *testing.T) {
	p := compileSrc(t, mm1Src)
	mk := func(seed int64) Result {
		return New(p, Params{
			CPUs: 1, Duration: 50, Warmup: 5, Seed: seed,
			Sources:  map[string]SourceParams{"Arrive": {Rate: 40, Exponential: true}},
			NodeTime: map[string]float64{"Serve": 0.01},
		}).Run()
	}
	a, b, c := mk(3), mk(3), mk(4)
	if a != b {
		t.Errorf("same seed diverged: %+v vs %+v", a, b)
	}
	if a == c {
		t.Errorf("different seeds identical: %+v", a)
	}
}

const branchSrc = `
Arrive () => (int v);
Fast (int v) => (int v);
Slow (int v) => (int v);
Done (int v) => ();
source Arrive => Flow;
Flow = Route -> Done;
typedef fast IsFast;
Route:[fast] = Fast;
Route:[_] = Slow;
`

// TestBranchProbabilities: with a 90/10 split and very different service
// times, mean latency must sit near the weighted combination.
func TestBranchProbabilities(t *testing.T) {
	p := compileSrc(t, branchSrc)
	s := New(p, Params{
		CPUs: 4, Duration: 300, Warmup: 30, Seed: 5,
		Sources:    map[string]SourceParams{"Arrive": {Rate: 20, Exponential: true}},
		NodeTime:   map[string]float64{"Fast": 0.001, "Slow": 0.050},
		BranchProb: map[string][]float64{"Route": {0.9, 0.1}},
	})
	res := s.Run()
	// Expected service demand ~= 0.9*1ms + 0.1*50ms = 5.9ms; at rho
	// ~0.03 queueing is negligible, so mean latency should be close.
	want := 0.9*0.001 + 0.1*0.050
	if res.MeanLatency < 0.8*want || res.MeanLatency > 1.5*want {
		t.Errorf("mean latency = %.4fs, want near %.4fs", res.MeanLatency, want)
	}
}

const lockedSrc = `
Arrive () => (int v);
Critical (int v) => ();
source Arrive => Flow;
Flow = Critical;
atomic Critical:{mutex};
`

// TestWriterLockSerializes: a writer-constrained node cannot exceed
// 1/serviceMean completions per second no matter how many CPUs exist.
func TestWriterLockSerializes(t *testing.T) {
	p := compileSrc(t, lockedSrc)
	serviceMean := 0.005
	s := New(p, Params{
		CPUs: 8, Duration: 120, Warmup: 12, Seed: 9,
		Sources:  map[string]SourceParams{"Arrive": {Rate: 2000, Exponential: true}},
		NodeTime: map[string]float64{"Critical": serviceMean},
	})
	res := s.Run()
	limit := 1 / serviceMean // 200/s
	if res.Throughput > 1.1*limit {
		t.Errorf("throughput = %.1f/s exceeds lock-serialized limit %.1f/s", res.Throughput, limit)
	}
	if res.Throughput < 0.85*limit {
		t.Errorf("throughput = %.1f/s well below saturated limit %.1f/s", res.Throughput, limit)
	}
}

// TestReaderLockDoesNotSerialize: the same program with a reader
// constraint scales past the single-lock limit.
func TestReaderLockDoesNotSerialize(t *testing.T) {
	p := compileSrc(t, `
Arrive () => (int v);
Critical (int v) => ();
source Arrive => Flow;
Flow = Critical;
atomic Critical:{mutex?};
`)
	serviceMean := 0.005
	s := New(p, Params{
		CPUs: 8, Duration: 60, Warmup: 6, Seed: 9,
		Sources:  map[string]SourceParams{"Arrive": {Rate: 2000, Exponential: true}},
		NodeTime: map[string]float64{"Critical": serviceMean},
	})
	res := s.Run()
	if res.Throughput < 1.5/serviceMean {
		t.Errorf("reader throughput = %.1f/s; should scale beyond %.1f/s", res.Throughput, 1/serviceMean)
	}
}

// TestErrorProbabilityRoutesFlows: with a 30% error probability, about
// 30% of flows should end at the error terminal.
func TestErrorProbabilityRoutesFlows(t *testing.T) {
	p := compileSrc(t, mm1Src)
	s := New(p, Params{
		CPUs: 2, Duration: 200, Warmup: 0, Seed: 13,
		Sources:   map[string]SourceParams{"Arrive": {Rate: 50, Exponential: true}},
		NodeTime:  map[string]float64{"Serve": 0.001},
		ErrorProb: map[string]float64{"Serve": 0.3},
	})
	res := s.Run()
	frac := float64(res.Errored) / float64(res.Flows)
	if math.Abs(frac-0.3) > 0.05 {
		t.Errorf("error fraction = %.3f, want ~0.30", frac)
	}
}

// TestDeterministicArrivals: with deterministic arrivals below capacity
// and deterministic-ish service, throughput equals the offered rate.
func TestDeterministicArrivals(t *testing.T) {
	p := compileSrc(t, mm1Src)
	s := New(p, Params{
		CPUs: 1, Duration: 100, Warmup: 10, Seed: 1,
		Sources:  map[string]SourceParams{"Arrive": {Rate: 10}},
		NodeTime: map[string]float64{"Serve": 0.001},
	})
	res := s.Run()
	if math.Abs(res.Throughput-10) > 0.5 {
		t.Errorf("throughput = %.2f, want 10", res.Throughput)
	}
}

func TestPercentile(t *testing.T) {
	vals := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	if got := percentile(vals, 0.5); got != 5 {
		t.Errorf("p50 = %v", got)
	}
	if got := percentile(vals, 0.95); got != 10 {
		t.Errorf("p95 = %v", got)
	}
	if got := percentile(nil, 0.5); got != 0 {
		t.Errorf("empty percentile = %v", got)
	}
}

// TestSessionAwareConstraints exercises the §8 extension: with session
// modeling on, flows in different sessions do not contend on a
// session-scoped constraint, so throughput scales past the single-lock
// limit that the conservative global treatment imposes.
func TestSessionAwareConstraints(t *testing.T) {
	p := compileSrc(t, `
Arrive () => (int v);
Critical (int v) => ();
source Arrive => Flow;
Flow = Critical;
atomic Critical:{mutex(session)};
session Arrive SessOf;
`)
	serviceMean := 0.005
	base := Params{
		CPUs: 8, Duration: 60, Warmup: 6, Seed: 17,
		Sources:  map[string]SourceParams{"Arrive": {Rate: 2000, Exponential: true}},
		NodeTime: map[string]float64{"Critical": serviceMean},
	}

	conservative := base
	global := New(p, conservative).Run()
	limit := 1 / serviceMean // 200/s with the global lock
	if global.Throughput > 1.15*limit {
		t.Errorf("conservative treatment exceeded global-lock limit: %.1f/s > %.1f/s",
			global.Throughput, limit)
	}

	sessioned := base
	sessioned.SessionCount = 64
	perSession := New(p, sessioned).Run()
	if perSession.Throughput < 2*limit {
		t.Errorf("session-aware throughput = %.1f/s; should scale well past %.1f/s",
			perSession.Throughput, limit)
	}
}
