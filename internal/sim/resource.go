package sim

import "fmt"

// resource is an m-server resource with a FIFO queue — the CPU model of
// §5.1: "CPUs are modeled as resources that each Flux node acquires for a
// given amount of time"; adding servers models more processors.
type resource struct {
	cap  int
	busy int

	queue []func()

	// busyIntegral accumulates busy-server-seconds for utilization.
	busyIntegral float64
	lastChange   float64
}

// sync integrates busy time up to the current instant.
func (r *resource) sync(now float64) {
	r.busyIntegral += float64(r.busy) * (now - r.lastChange)
	r.lastChange = now
}

// request grants a server immediately (calling grant synchronously) or
// queues the grant callback FIFO.
func (r *resource) request(s *Simulator, grant func()) {
	if r.busy < r.cap {
		r.sync(s.now)
		r.busy++
		grant()
		return
	}
	r.queue = append(r.queue, grant)
}

// release frees a server and hands it to the next waiter, if any. The
// waiter's grant runs as a fresh event at the current time, keeping the
// event loop non-reentrant and deterministic.
func (r *resource) release(s *Simulator) {
	r.sync(s.now)
	r.busy--
	if len(r.queue) > 0 {
		grant := r.queue[0]
		r.queue = r.queue[1:]
		r.busy++
		s.schedule(s.now, grant)
	}
}

// simLock is a reader-writer lock facility with FIFO waiters and per-flow
// reentrancy, mirroring the runtime lock manager's semantics in simulated
// time.
type simLock struct {
	writer  *flowProc
	wdepth  int
	holders map[*flowProc]int // reader depths
	waiters []lockWaiter
}

type lockWaiter struct {
	fp    *flowProc
	write bool
	grant func()
}

// acquire grants immediately (returning true without calling grant) or
// parks the flow (queueing grant, returning false).
func (l *simLock) acquire(fp *flowProc, write bool, grant func()) bool {
	if l.writer == fp {
		l.wdepth++
		return true
	}
	if !write {
		if l.holders[fp] > 0 {
			l.holders[fp]++
			return true
		}
		if l.writer == nil && len(l.waiters) == 0 {
			l.holders[fp] = 1
			return true
		}
	} else {
		if l.holders[fp] > 0 {
			panic(fmt.Sprintf("sim: read-to-write upgrade; the compiler's promotion pass forbids this"))
		}
		if l.writer == nil && len(l.holders) == 0 && len(l.waiters) == 0 {
			l.writer = fp
			l.wdepth = 1
			return true
		}
	}
	l.waiters = append(l.waiters, lockWaiter{fp: fp, write: write, grant: grant})
	return false
}

// release undoes one acquisition and wakes eligible waiters in FIFO
// order: one writer, or a maximal batch of readers.
func (l *simLock) release(fp *flowProc, s *Simulator) {
	if l.writer == fp {
		l.wdepth--
		if l.wdepth > 0 {
			return
		}
		l.writer = nil
	} else {
		n, ok := l.holders[fp]
		if !ok {
			panic("sim: release of a lock not held")
		}
		if n == 1 {
			delete(l.holders, fp)
		} else {
			l.holders[fp] = n - 1
			return
		}
	}
	l.wake(s)
}

// wake grants the head of the queue when the lock state allows.
func (l *simLock) wake(s *Simulator) {
	for len(l.waiters) > 0 {
		head := l.waiters[0]
		if head.write {
			if l.writer != nil || len(l.holders) != 0 {
				return
			}
			l.writer = head.fp
			l.wdepth = 1
			l.waiters = l.waiters[1:]
			s.schedule(s.now, head.grant)
			return
		}
		if l.writer != nil {
			return
		}
		l.holders[head.fp]++
		l.waiters = l.waiters[1:]
		s.schedule(s.now, head.grant)
		// Keep granting consecutive readers.
	}
}
