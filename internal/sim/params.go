package sim

import (
	"time"

	"github.com/flux-lang/flux/internal/core"
	"github.com/flux-lang/flux/internal/profile"
)

// FromProfile derives simulation parameters from a profiling run, the
// workflow of §5.1: "the simulator can use observed parameters from a
// running system (per-node execution times, source node inter-arrival
// times, and observed branching probabilities)".
//
// The returned Params carry the observed node means and branch
// probabilities for every graph in the program; the caller supplies the
// arrival processes (typically the load level being predicted) and the
// CPU count.
func FromProfile(prog *core.Program, p *profile.Profiler) Params {
	params := Params{
		NodeTime:   make(map[string]float64),
		BranchProb: make(map[string][]float64),
		ErrorProb:  make(map[string]float64),
		Sources:    make(map[string]SourceParams),
	}
	for _, g := range prog.Graphs {
		for _, ns := range p.Nodes(g) {
			params.NodeTime[ns.Name] = ns.Mean().Seconds()
		}
		freq := p.EdgeFrequencies(g)
		for _, v := range g.Nodes {
			switch v.Kind {
			case core.FlatBranch:
				var total uint64
				for _, e := range v.Out {
					total += freq[e]
				}
				if total == 0 {
					continue
				}
				probs := make([]float64, len(v.Out))
				for i, e := range v.Out {
					probs[i] = float64(freq[e]) / float64(total)
				}
				params.BranchProb[v.Node.Name] = probs
			case core.FlatExec:
				if v.ErrEdge == nil {
					continue
				}
				errs := freq[v.ErrEdge]
				var total uint64 = errs
				for _, e := range v.Out {
					total += freq[e]
				}
				if total > 0 && errs > 0 {
					params.ErrorProb[v.Node.Name] = float64(errs) / float64(total)
				}
			}
		}
	}
	return params
}

// ScaleNodeTimes multiplies every node mean by f — handy for exploring
// "what if this node were twice as fast" questions before touching code.
func (p *Params) ScaleNodeTimes(f float64) {
	for k, v := range p.NodeTime {
		p.NodeTime[k] = v * f
	}
}

// SetUniformNodeTime assigns one mean service time to every listed node.
func (p *Params) SetUniformNodeTime(d time.Duration, nodes ...string) {
	if p.NodeTime == nil {
		p.NodeTime = make(map[string]float64)
	}
	for _, n := range nodes {
		p.NodeTime[n] = d.Seconds()
	}
}
