package loadgen

import (
	"bufio"
	"context"
	"fmt"
	"io"
	"net"
	"strconv"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// stubWebServer is a minimal scripted HTTP/1.1 responder: it answers
// every request with a fixed body and announces Connection: close on
// every closeEveryth response of a connection, then hangs up — exactly
// the server-side keep-alive termination the client must honor.
type stubWebServer struct {
	ln         net.Listener
	closeEvery int
	requests   atomic.Uint64
	posts      atomic.Uint64
}

func startStubWebServer(t *testing.T, closeEvery int) *stubWebServer {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	s := &stubWebServer{ln: ln, closeEvery: closeEvery}
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go s.serve(conn)
		}
	}()
	t.Cleanup(func() { ln.Close() })
	return s
}

func (s *stubWebServer) serve(conn net.Conn) {
	defer conn.Close()
	br := bufio.NewReader(conn)
	for served := 0; ; {
		line, err := br.ReadString('\n')
		if err != nil {
			return
		}
		fields := strings.Fields(strings.TrimSpace(line))
		if len(fields) != 3 {
			return
		}
		contentLen := 0
		clientClose := false
		for {
			h, err := br.ReadString('\n')
			if err != nil {
				return
			}
			h = strings.TrimSpace(h)
			if h == "" {
				break
			}
			k, v, ok := strings.Cut(h, ":")
			if !ok {
				continue
			}
			k, v = strings.TrimSpace(k), strings.TrimSpace(v)
			if strings.EqualFold(k, "Content-Length") {
				contentLen, _ = strconv.Atoi(v)
			}
			if strings.EqualFold(k, "Connection") && strings.EqualFold(v, "close") {
				clientClose = true
			}
		}
		if contentLen > 0 {
			if _, err := io.CopyN(io.Discard, br, int64(contentLen)); err != nil {
				return
			}
		}
		if fields[0] == "POST" {
			s.posts.Add(1)
		}
		s.requests.Add(1)
		served++
		closing := clientClose || (s.closeEvery > 0 && served >= s.closeEvery)
		body := "ok"
		hdr := ""
		if closing {
			hdr = "Connection: close\r\n"
		}
		fmt.Fprintf(conn, "HTTP/1.1 200 OK\r\nContent-Type: text/html\r\n%sContent-Length: %d\r\n\r\n%s",
			hdr, len(body), body)
		if closing {
			return
		}
	}
}

// TestKeepAliveClientHonorsServerClose drives the keep-alive client
// against a server that terminates every conversation after 4 requests:
// the client must reconnect (counted, not charged as an error) and keep
// the request stream flowing.
func TestKeepAliveClientHonorsServerClose(t *testing.T) {
	srv := startStubWebServer(t, 4)
	files := NewFileSet(1)
	res := RunWebLoad(context.Background(), WebClientConfig{
		Addr:            srv.ln.Addr().String(),
		Clients:         2,
		Files:           files,
		KeepAlive:       true,
		Duration:        400 * time.Millisecond,
		DynamicFraction: DefaultDynamicFraction,
		PostFraction:    1, // every dynamic request is a POST: framing must hold
		Seed:            5,
	})
	if res.Errors != 0 {
		t.Errorf("errors = %d, want 0 (server closes are announced)", res.Errors)
	}
	if res.Requests < 8 {
		t.Fatalf("requests = %d, want many", res.Requests)
	}
	// Every 4th request ends a connection; the client must have
	// reconnected roughly requests/4 times (the final in-flight
	// conversations may not have hit the cap).
	wantMin := res.Requests/4 - uint64(2)
	if res.Reconnects < wantMin {
		t.Errorf("reconnects = %d, want >= %d for %d requests", res.Reconnects, wantMin, res.Requests)
	}
	if srv.posts.Load() == 0 {
		t.Error("no POSTs reached the server")
	}
	if post := res.ByClass["post"]; post.Count == 0 {
		t.Error("no POST latencies recorded")
	}
}

// TestKeepAliveClientSingleConnection: against a server that never
// closes, a keep-alive client must hold exactly one connection for the
// whole run.
func TestKeepAliveClientSingleConnection(t *testing.T) {
	srv := startStubWebServer(t, 0) // never closes
	files := NewFileSet(1)
	res := RunWebLoad(context.Background(), WebClientConfig{
		Addr:      srv.ln.Addr().String(),
		Clients:   3,
		Files:     files,
		KeepAlive: true,
		Duration:  300 * time.Millisecond,
		Seed:      6,
	})
	if res.Errors != 0 {
		t.Errorf("errors = %d, want 0", res.Errors)
	}
	if res.Reconnects != 0 {
		t.Errorf("reconnects = %d, want 0 on a never-closing server", res.Reconnects)
	}
	if res.Requests == 0 {
		t.Fatal("no requests completed")
	}
}

// TestFreshConnectionSessionsStillClose: the default (fresh-connection)
// mode must keep the original shape — RequestsPerConn requests, the
// last announcing Connection: close.
func TestFreshConnectionSessionsStillClose(t *testing.T) {
	srv := startStubWebServer(t, 0)
	files := NewFileSet(1)
	res := RunWebLoad(context.Background(), WebClientConfig{
		Addr:            srv.ln.Addr().String(),
		Clients:         2,
		Files:           files,
		RequestsPerConn: 3,
		Duration:        300 * time.Millisecond,
		Seed:            7,
	})
	if res.Errors != 0 {
		t.Errorf("errors = %d, want 0", res.Errors)
	}
	if res.Requests == 0 {
		t.Fatal("no requests completed")
	}
}
