package loadgen

import (
	"bufio"
	"context"
	"fmt"
	"math/rand"
	"net"
	"sync"
	"time"

	"github.com/flux-lang/flux/internal/metrics"
)

// ImageClientConfig reproduces §5.1's image-server load tester: requests
// arrive at a fixed rate of one every 1/n seconds ("when configured to
// run with n clients"), each for a random one of eight scales of a
// random image.
type ImageClientConfig struct {
	Addr     string
	Rate     float64 // requests per second (the paper's n)
	Images   int     // library size (default 5)
	Duration time.Duration
	Warmup   time.Duration
	Seed     int64
	// MaxInFlight caps concurrent outstanding requests so an overloaded
	// server does not accumulate unbounded client goroutines (default
	// 4x rate).
	MaxInFlight int
}

// ImageResult reports an image load run.
type ImageResult struct {
	Requests   uint64
	Errors     uint64
	Throughput float64 // completions/sec over the measured window
	Latency    metrics.LatencySummary
}

func (r ImageResult) String() string {
	return fmt.Sprintf("reqs=%d errs=%d rate=%.2f/s latency{%s}", r.Requests, r.Errors, r.Throughput, r.Latency)
}

// RunImageLoad drives fixed-rate requests at an image server.
func RunImageLoad(ctx context.Context, cfg ImageClientConfig) ImageResult {
	if cfg.Images <= 0 {
		cfg.Images = 5
	}
	if cfg.MaxInFlight <= 0 {
		cfg.MaxInFlight = int(cfg.Rate*4) + 8
	}
	lat := metrics.NewLatencyRecorder()
	tput := metrics.NewThroughput()
	var errsMu sync.Mutex
	var errs uint64

	runCtx, cancel := context.WithTimeout(ctx, cfg.Duration)
	defer cancel()

	go func() {
		t := time.NewTimer(cfg.Warmup)
		defer t.Stop()
		select {
		case <-t.C:
			lat.Reset()
			tput.Reset()
		case <-runCtx.Done():
		}
	}()

	rng := rand.New(rand.NewSource(cfg.Seed))
	interval := time.Duration(float64(time.Second) / cfg.Rate)
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	sem := make(chan struct{}, cfg.MaxInFlight)
	var wg sync.WaitGroup

loop:
	for {
		select {
		case <-runCtx.Done():
			break loop
		case <-ticker.C:
		}
		img := rng.Intn(cfg.Images)
		scale := 1 + rng.Intn(8)
		select {
		case sem <- struct{}{}:
		default:
			// Server saturated and the in-flight window is full: the
			// request is dropped (an overload signal, counted as an
			// error).
			errsMu.Lock()
			errs++
			errsMu.Unlock()
			continue
		}
		wg.Add(1)
		go func(img, scale int) {
			defer wg.Done()
			defer func() { <-sem }()
			start := time.Now()
			n, err := fetchImage(runCtx, cfg.Addr, img, scale)
			if err != nil {
				errsMu.Lock()
				errs++
				errsMu.Unlock()
				return
			}
			lat.Record(time.Since(start))
			tput.Add(1, uint64(n))
		}(img, scale)
	}
	wg.Wait()

	res := ImageResult{Latency: lat.Summary(), Errors: errs}
	res.Requests, _ = tput.Totals()
	res.Throughput, _ = tput.Rates()
	return res
}

// fetchImage issues one GET /img<k>/<scale> and reads the JPEG response.
func fetchImage(ctx context.Context, addr string, img, scale int) (int, error) {
	d := net.Dialer{Timeout: 2 * time.Second}
	conn, err := d.DialContext(ctx, "tcp", addr)
	if err != nil {
		return 0, err
	}
	defer conn.Close()
	if deadline, ok := ctx.Deadline(); ok {
		conn.SetDeadline(deadline.Add(2 * time.Second))
	}
	if _, err := fmt.Fprintf(conn, "GET /img%d/%d HTTP/1.1\r\nHost: bench\r\n\r\n", img, scale); err != nil {
		return 0, err
	}
	n, status, _, err := readResponse(bufio.NewReader(conn))
	if err == nil && status != 200 {
		// A 503 from admission control (or any non-OK answer) is not a
		// served image; counting its body as a fetch would inflate
		// throughput exactly when the server is shedding.
		return 0, fmt.Errorf("loadgen: image server answered %d", status)
	}
	return n, err
}
