package loadgen

import (
	"context"
	"crypto/rand"
	"encoding/binary"
	"errors"
	mrand "math/rand"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"github.com/flux-lang/flux/internal/metrics"
	"github.com/flux-lang/flux/internal/torrent"
)

// swarmMsgKinds names the per-message-type counters: wire IDs 0..8 in
// order, then the keep-alive pseudo-kind.
var swarmMsgKinds = []string{
	"choke", "unchoke", "interested", "uninterested", "have",
	"bitfield", "request", "piece", "cancel", "keepalive",
}

// SwarmStats aggregates counters shared by every peer in a swarm run.
type SwarmStats struct {
	Completions atomic.Uint64 // full-file downloads finished
	Pieces      atomic.Uint64 // verified pieces downloaded
	BytesDown   atomic.Uint64 // piece payload bytes received
	BytesUp     atomic.Uint64 // piece payload bytes sent
	Errors      atomic.Uint64 // connection/protocol/verification failures

	msgs [10]atomic.Uint64

	// PieceLat records claim-to-verified latency per piece.
	PieceLat *metrics.LatencyRecorder
}

// NewSwarmStats returns an empty shared counter set.
func NewSwarmStats() *SwarmStats {
	return &SwarmStats{PieceLat: metrics.NewLatencyRecorder()}
}

func (s *SwarmStats) countMsg(id int) {
	switch {
	case id == -1:
		s.msgs[9].Add(1)
	case id >= 0 && id <= 8:
		s.msgs[id].Add(1)
	}
}

// Msgs snapshots the per-message-type receive counters.
func (s *SwarmStats) Msgs() map[string]uint64 {
	out := make(map[string]uint64, len(swarmMsgKinds))
	for i, k := range swarmMsgKinds {
		out[k] = s.msgs[i].Load()
	}
	return out
}

// ResetWindow zeroes every counter (warm-up trimming).
func (s *SwarmStats) ResetWindow() {
	s.Completions.Store(0)
	s.Pieces.Store(0)
	s.BytesDown.Store(0)
	s.BytesUp.Store(0)
	s.Errors.Store(0)
	for i := range s.msgs {
		s.msgs[i].Store(0)
	}
	s.PieceLat.Reset()
}

// SwarmPeerConfig tunes one swarm peer.
type SwarmPeerConfig struct {
	// Meta identifies the torrent.
	Meta *torrent.MetaInfo
	// Content, when non-nil, makes the peer a seeder.
	Content []byte
	// Bootstrap lists peer addresses to dial and keep dialed.
	Bootstrap []string
	// Pipeline bounds outstanding block requests per connection
	// (default 8).
	Pipeline int
	// ChokeInterval paces the tit-for-tat recomputation (default 1s).
	ChokeInterval time.Duration
	// MaxUnchoked bounds simultaneously unchoked connections: the
	// MaxUnchoked-1 fastest uploaders plus one optimistic slot
	// (default 4).
	MaxUnchoked int
	// KeepAliveInterval paces keep-alive frames on quiet connections
	// (default 15s).
	KeepAliveInterval time.Duration
	// RequestTimeout reaps a connection whose outstanding requests have
	// stalled (default 10s).
	RequestTimeout time.Duration
	// Seed seeds the peer's RNG (optimistic-unchoke rotation).
	Seed int64
	// Loop, when set, resets a completed leecher to an empty store and
	// redials its bootstrap set — a continuous stream of arriving
	// downloaders, keeping offered swarm load constant.
	Loop bool
	// Stats receives the peer's counters (required).
	Stats *SwarmStats
}

// SwarmPeer is a real BitTorrent peer for swarm load generation:
// handshake, bitfield exchange, the full choke/unchoke state machine,
// rarest-first piece selection over observed have/bitfield state,
// request pipelining with endgame cancels, and keep-alives. Leechers
// exchange verified pieces among themselves — every peer both serves
// and requests.
type SwarmPeer struct {
	cfg    SwarmPeerConfig
	ln     net.Listener
	ctx    context.Context
	cancel context.CancelFunc
	wg     sync.WaitGroup
	stats  *SwarmStats
	peerID [20]byte

	mu         sync.Mutex
	store      *torrent.Store
	conns      map[*swarmConn]bool
	claims     map[int]*swarmConn // piece -> conn it is requested on
	claimAt    map[int]time.Time
	avail      []int // per-piece availability over connected remotes
	optimistic *swarmConn
	chokeTicks int
	lastDial   map[string]time.Time
	closed     bool
	rng        *mrand.Rand
}

// NewSwarmPeer prepares a peer (listener bound, nothing running).
func NewSwarmPeer(cfg SwarmPeerConfig) (*SwarmPeer, error) {
	if cfg.Meta == nil || cfg.Stats == nil {
		return nil, errors.New("loadgen: swarm peer needs Meta and Stats")
	}
	if cfg.Pipeline <= 0 {
		cfg.Pipeline = 8
	}
	if cfg.ChokeInterval <= 0 {
		cfg.ChokeInterval = time.Second
	}
	if cfg.MaxUnchoked <= 0 {
		cfg.MaxUnchoked = 4
	}
	if cfg.KeepAliveInterval <= 0 {
		cfg.KeepAliveInterval = 15 * time.Second
	}
	if cfg.RequestTimeout <= 0 {
		cfg.RequestTimeout = 10 * time.Second
	}
	var store *torrent.Store
	var err error
	if cfg.Content != nil {
		store, err = torrent.NewSeeder(cfg.Meta, cfg.Content)
		if err != nil {
			return nil, err
		}
	} else {
		store = torrent.NewLeecher(cfg.Meta)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	p := &SwarmPeer{
		cfg:      cfg,
		ln:       ln,
		stats:    cfg.Stats,
		store:    store,
		conns:    make(map[*swarmConn]bool),
		claims:   make(map[int]*swarmConn),
		claimAt:  make(map[int]time.Time),
		avail:    make([]int, cfg.Meta.NumPieces()),
		lastDial: make(map[string]time.Time),
		rng:      mrand.New(mrand.NewSource(cfg.Seed)),
	}
	rand.Read(p.peerID[:])
	copy(p.peerID[:8], "-SWRM01-")
	return p, nil
}

// Addr returns the peer's listen address.
func (p *SwarmPeer) Addr() string { return p.ln.Addr().String() }

// Start launches the accept loop, the bootstrap dialer, and the
// choke/keep-alive/timeout tick loop.
func (p *SwarmPeer) Start(ctx context.Context) {
	p.ctx, p.cancel = context.WithCancel(ctx)
	p.wg.Add(2)
	go p.acceptLoop()
	go p.tickLoop()
}

// Close stops the peer and waits for its goroutines.
func (p *SwarmPeer) Close() {
	if p.cancel != nil {
		p.cancel()
	}
	p.ln.Close()
	p.mu.Lock()
	p.closed = true
	for c := range p.conns {
		c.shut()
	}
	p.mu.Unlock()
	p.wg.Wait()
}

// Complete reports whether the current store holds the whole file.
func (p *SwarmPeer) Complete() bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.store.Complete()
}

func (p *SwarmPeer) acceptLoop() {
	defer p.wg.Done()
	for {
		nc, err := p.ln.Accept()
		if err != nil {
			return
		}
		p.wg.Add(1)
		go func() {
			defer p.wg.Done()
			p.runConn(nc, "")
		}()
	}
}

// tickLoop drives everything periodic: redialing the bootstrap set
// (self-healing topology), the choke recomputation, keep-alives, and
// the stalled-request sweep.
func (p *SwarmPeer) tickLoop() {
	defer p.wg.Done()
	period := 100 * time.Millisecond
	if period > p.cfg.ChokeInterval {
		period = p.cfg.ChokeInterval
	}
	t := time.NewTicker(period)
	defer t.Stop()
	lastChoke := time.Now()
	for {
		select {
		case <-p.ctx.Done():
			return
		case <-t.C:
		}
		p.redialBootstrap()
		p.sweepStalled()
		if time.Since(lastChoke) >= p.cfg.ChokeInterval {
			lastChoke = time.Now()
			p.chokeTick()
		}
	}
}

// redialBootstrap dials any bootstrap address without a live outbound
// connection, with a per-address backoff.
func (p *SwarmPeer) redialBootstrap() {
	p.mu.Lock()
	var dial []string
	for _, addr := range p.cfg.Bootstrap {
		live := false
		for c := range p.conns {
			if c.dialAddr == addr {
				live = true
				break
			}
		}
		if !live && time.Since(p.lastDial[addr]) >= 500*time.Millisecond {
			p.lastDial[addr] = time.Now()
			dial = append(dial, addr)
		}
	}
	p.mu.Unlock()
	for _, addr := range dial {
		p.wg.Add(1)
		go func(addr string) {
			defer p.wg.Done()
			d := net.Dialer{Timeout: 3 * time.Second}
			nc, err := d.DialContext(p.ctx, "tcp", addr)
			if err != nil {
				p.stats.Errors.Add(1)
				return
			}
			p.runConn(nc, addr)
		}(addr)
	}
}

// sweepStalled closes connections whose oldest outstanding request has
// exceeded RequestTimeout — a dead or permanently choking remote; its
// claims release for other connections to pick up.
func (p *SwarmPeer) sweepStalled() {
	p.mu.Lock()
	defer p.mu.Unlock()
	for c := range p.conns {
		for _, t := range c.outstanding {
			if time.Since(t) > p.cfg.RequestTimeout {
				p.stats.Errors.Add(1)
				c.shut()
				break
			}
		}
	}
}

// chokeTick recomputes choking: tit-for-tat keeps the MaxUnchoked-1
// fastest uploaders unchoked, one optimistic slot rotates every third
// tick, everyone else is choked. Quiet connections get keep-alives.
func (p *SwarmPeer) chokeTick() {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.chokeTicks++
	type cand struct {
		c    *swarmConn
		rate uint64
	}
	var interested []cand
	for c := range p.conns {
		if time.Since(c.lastSend) >= p.cfg.KeepAliveInterval {
			c.queue(outMsg{keepalive: true})
		}
		if c.peerInterested {
			interested = append(interested, cand{c, c.bytesFrom - c.rateBase})
		}
		c.rateBase = c.bytesFrom
	}
	if p.optimistic == nil || !p.conns[p.optimistic] || p.chokeTicks%3 == 0 {
		var pool []*swarmConn
		for _, cd := range interested {
			if cd.c.amChoking && cd.c != p.optimistic {
				pool = append(pool, cd.c)
			}
		}
		if len(pool) > 0 {
			p.optimistic = pool[p.rng.Intn(len(pool))]
		}
	}
	slots := p.cfg.MaxUnchoked
	keep := make(map[*swarmConn]bool, slots)
	if p.optimistic != nil && p.conns[p.optimistic] {
		keep[p.optimistic] = true
		slots--
	}
	// Selection sort of the top uploaders — interested sets are small.
	for len(keep) < p.cfg.MaxUnchoked && slots > 0 {
		best := -1
		for i, cd := range interested {
			if !keep[cd.c] && (best < 0 || cd.rate > interested[best].rate) {
				best = i
			}
		}
		if best < 0 {
			break
		}
		keep[interested[best].c] = true
		slots--
	}
	for c := range p.conns {
		switch {
		case keep[c] && c.amChoking:
			c.amChoking = false
			c.queue(outMsg{id: 1}) // unchoke
		case !keep[c] && !c.amChoking && c.peerInterested:
			c.amChoking = true
			c.queue(outMsg{id: 0}) // choke
		}
	}
}

// --- per-connection state ----------------------------------------------------

type blockKey struct {
	piece int
	begin int
}

// outMsg is one queued outbound message. Piece payloads are not
// materialized here: block requests from the remote wait in reqQueue
// and are read from the store at send time, so a cancel can still
// remove them.
type outMsg struct {
	id        int
	payload   []byte
	keepalive bool
}

type blockReq struct {
	index, begin, length uint32
}

// swarmConn is one peer-to-peer connection and its protocol state, all
// guarded by the owning peer's mutex. One writer goroutine per
// connection drains ctl (control messages) then reqQueue (block serves),
// so a reader never blocks on its own peer's sends.
type swarmConn struct {
	p        *SwarmPeer
	nc       net.Conn
	dialAddr string // "" for inbound
	notify   chan struct{}

	remote         torrent.Bitfield
	amChoking      bool
	amInterested   bool
	peerChoking    bool
	peerInterested bool

	outstanding map[blockKey]time.Time // our requests awaiting blocks
	ctl         []outMsg
	reqQueue    []blockReq // remote's requests awaiting service
	bytesFrom   uint64
	rateBase    uint64
	lastSend    time.Time
	closed      bool
}

// queue appends a control message and kicks the writer (p.mu held).
func (c *swarmConn) queue(m outMsg) {
	c.ctl = append(c.ctl, m)
	c.kick()
}

func (c *swarmConn) kick() {
	select {
	case c.notify <- struct{}{}:
	default:
	}
}

// shut closes the connection once (p.mu held); the reader's exit runs
// the full cleanup.
func (c *swarmConn) shut() {
	if !c.closed {
		c.closed = true
		c.nc.Close()
		c.kick()
	}
}

// runConn performs the handshake and runs the connection to its end.
func (p *SwarmPeer) runConn(nc net.Conn, dialAddr string) {
	nc.SetDeadline(time.Now().Add(10 * time.Second))
	if err := writeBTHandshake(nc, p.cfg.Meta.InfoHash, p.peerID); err != nil {
		p.stats.Errors.Add(1)
		nc.Close()
		return
	}
	if err := readBTHandshake(nc, p.cfg.Meta.InfoHash); err != nil {
		p.stats.Errors.Add(1)
		nc.Close()
		return
	}
	nc.SetDeadline(time.Time{})

	c := &swarmConn{
		p:           p,
		nc:          nc,
		dialAddr:    dialAddr,
		notify:      make(chan struct{}, 1),
		remote:      torrent.NewBitfield(p.cfg.Meta.NumPieces()),
		amChoking:   true,
		peerChoking: true,
		outstanding: make(map[blockKey]time.Time),
		lastSend:    time.Now(),
	}
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		nc.Close()
		return
	}
	p.conns[c] = true
	c.queue(outMsg{id: 5, payload: []byte(p.store.Bitfield())})
	p.mu.Unlock()

	p.wg.Add(1)
	go func() {
		defer p.wg.Done()
		c.writerLoop()
	}()
	c.readLoop()
	p.dropConn(c)
}

// dropConn unregisters a dead connection: availability contributions,
// piece claims, and the optimistic slot all release.
func (p *SwarmPeer) dropConn(c *swarmConn) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if !p.conns[c] {
		return
	}
	delete(p.conns, c)
	c.shut()
	for i := range p.avail {
		if c.remote.Has(i) {
			p.avail[i]--
		}
	}
	p.releaseClaims(c)
	if p.optimistic == c {
		p.optimistic = nil
	}
}

// releaseClaims frees every piece claimed on c (p.mu held).
func (p *SwarmPeer) releaseClaims(c *swarmConn) {
	for piece, owner := range p.claims {
		if owner == c {
			delete(p.claims, piece)
			delete(p.claimAt, piece)
		}
	}
}

// writerLoop drains control messages, then serves one queued block
// request per round — reading the block from the store at send time so
// cancels remove work that has not been sent yet.
func (c *swarmConn) writerLoop() {
	p := c.p
	for {
		select {
		case <-c.notify:
		case <-p.ctx.Done():
			return
		}
		for {
			p.mu.Lock()
			if c.closed {
				p.mu.Unlock()
				return
			}
			var (
				m      outMsg
				hasMsg bool
				blk    []byte
				req    blockReq
				hasBlk bool
			)
			if len(c.ctl) > 0 {
				m, hasMsg = c.ctl[0], true
				c.ctl = c.ctl[1:]
			} else if len(c.reqQueue) > 0 {
				req = c.reqQueue[0]
				c.reqQueue = c.reqQueue[1:]
				b, err := p.store.ReadBlock(int(req.index), int64(req.begin), int64(req.length))
				if err == nil {
					blk, hasBlk = b, true
				}
				// A block we no longer hold (post-reset store) is
				// silently skipped; the remote's request times out into
				// its own sweep.
			}
			if hasMsg || hasBlk {
				c.lastSend = time.Now()
			}
			p.mu.Unlock()
			switch {
			case hasMsg && m.keepalive:
				if _, err := c.nc.Write([]byte{0, 0, 0, 0}); err != nil {
					return
				}
			case hasMsg:
				if err := writeBTMessage(c.nc, byte(m.id), m.payload); err != nil {
					return
				}
			case hasBlk:
				payload := make([]byte, 8+len(blk))
				binary.BigEndian.PutUint32(payload[0:4], req.index)
				binary.BigEndian.PutUint32(payload[4:8], req.begin)
				copy(payload[8:], blk)
				if err := writeBTMessage(c.nc, 7, payload); err != nil {
					return
				}
				p.stats.BytesUp.Add(uint64(len(blk)))
			default:
				// Both queues empty.
			}
			if !hasMsg && !hasBlk {
				break
			}
		}
	}
}

// readLoop consumes wire messages until the connection dies.
func (c *swarmConn) readLoop() {
	p := c.p
	for {
		id, payload, err := readBTMessage(c.nc)
		if err != nil {
			return
		}
		p.stats.countMsg(id)
		if err := p.handleMessage(c, id, payload); err != nil {
			p.stats.Errors.Add(1)
			return
		}
	}
}

// handleMessage advances the protocol state machine for one received
// message.
func (p *SwarmPeer) handleMessage(c *swarmConn, id int, payload []byte) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if c.closed {
		return nil
	}
	n := p.cfg.Meta.NumPieces()
	switch id {
	case -1: // keep-alive
	case 0: // choke: outstanding requests are void, claims release
		c.peerChoking = true
		c.outstanding = make(map[blockKey]time.Time)
		p.releaseClaims(c)
	case 1: // unchoke
		c.peerChoking = false
		p.fillPipeline(c)
	case 2:
		c.peerInterested = true
	case 3:
		c.peerInterested = false
	case 4: // have
		if len(payload) != 4 {
			return errors.New("loadgen: malformed have")
		}
		idx := int(binary.BigEndian.Uint32(payload))
		if idx >= n {
			return errors.New("loadgen: have out of range")
		}
		if !c.remote.Has(idx) {
			c.remote.Set(idx)
			p.avail[idx]++
		}
		p.updateInterest(c)
		p.fillPipeline(c)
	case 5: // bitfield
		bf := torrent.Bitfield(payload)
		if len(bf) != len(torrent.NewBitfield(n)) {
			return errors.New("loadgen: malformed bitfield")
		}
		for i := 0; i < n; i++ {
			if c.remote.Has(i) {
				p.avail[i]--
			}
		}
		c.remote = bf.Clone()
		for i := 0; i < n; i++ {
			if c.remote.Has(i) {
				p.avail[i]++
			}
		}
		p.updateInterest(c)
		p.fillPipeline(c)
	case 6: // request
		if len(payload) != 12 {
			return errors.New("loadgen: malformed request")
		}
		if c.amChoking || len(c.reqQueue) >= 512 {
			return nil // choked peers get nothing; absurd queues drop
		}
		req := blockReq{
			index:  binary.BigEndian.Uint32(payload[0:4]),
			begin:  binary.BigEndian.Uint32(payload[4:8]),
			length: binary.BigEndian.Uint32(payload[8:12]),
		}
		if int(req.index) >= n || req.length > torrent.BlockSize {
			return errors.New("loadgen: bad request bounds")
		}
		c.reqQueue = append(c.reqQueue, req)
		c.kick()
	case 7: // piece
		if len(payload) < 8 {
			return errors.New("loadgen: short piece message")
		}
		return p.onBlock(c, payload)
	case 8: // cancel
		if len(payload) != 12 {
			return errors.New("loadgen: malformed cancel")
		}
		idx := binary.BigEndian.Uint32(payload[0:4])
		begin := binary.BigEndian.Uint32(payload[4:8])
		for i, r := range c.reqQueue {
			if r.index == idx && r.begin == begin {
				c.reqQueue = append(c.reqQueue[:i], c.reqQueue[i+1:]...)
				break
			}
		}
	default:
		return errors.New("loadgen: unknown message id")
	}
	return nil
}

// onBlock stores one received block (p.mu held).
func (p *SwarmPeer) onBlock(c *swarmConn, payload []byte) error {
	piece := int(binary.BigEndian.Uint32(payload[0:4]))
	begin := int64(binary.BigEndian.Uint32(payload[4:8]))
	blk := payload[8:]
	delete(c.outstanding, blockKey{piece, int(begin)})
	c.bytesFrom += uint64(len(blk))
	p.stats.BytesDown.Add(uint64(len(blk)))
	done, err := p.store.WriteBlock(piece, begin, blk)
	if err != nil {
		if errors.Is(err, torrent.ErrBadPiece) {
			// Corrupt piece: drop the claim so another connection can
			// re-request it, and penalize the sender by closing it.
			delete(p.claims, piece)
			delete(p.claimAt, piece)
			return err
		}
		// Stale block for a piece we already completed (endgame
		// duplicate): ignore.
		return nil
	}
	if done {
		p.stats.Pieces.Add(1)
		if t, ok := p.claimAt[piece]; ok {
			p.stats.PieceLat.Record(time.Since(t))
		}
		delete(p.claims, piece)
		delete(p.claimAt, piece)
		// Cancel endgame duplicates still outstanding elsewhere and
		// announce the piece everywhere.
		for oc := range p.conns {
			for key := range oc.outstanding {
				if key.piece == piece {
					delete(oc.outstanding, key)
					cancel := make([]byte, 12)
					binary.BigEndian.PutUint32(cancel[0:4], uint32(piece))
					binary.BigEndian.PutUint32(cancel[4:8], uint32(key.begin))
					bl := p.store.NumBlocks(piece)
					for b := 0; b < bl; b++ {
						if bg, ln := p.store.BlockSpec(piece, b); bg == int64(key.begin) {
							binary.BigEndian.PutUint32(cancel[8:12], uint32(ln))
						}
					}
					oc.queue(outMsg{id: 8, payload: cancel})
				}
			}
			have := make([]byte, 4)
			binary.BigEndian.PutUint32(have, uint32(piece))
			oc.queue(outMsg{id: 4, payload: have})
		}
		if p.store.Complete() {
			p.stats.Completions.Add(1)
			if p.cfg.Loop {
				p.resetAsLeecher()
				return nil
			}
		}
	}
	p.fillPipeline(c)
	return nil
}

// resetAsLeecher empties the store and drops every connection; the tick
// loop redials the bootstrap set, so the peer rejoins the swarm as a
// fresh downloader (p.mu held).
func (p *SwarmPeer) resetAsLeecher() {
	p.store = torrent.NewLeecher(p.cfg.Meta)
	p.claims = make(map[int]*swarmConn)
	p.claimAt = make(map[int]time.Time)
	for c := range p.conns {
		c.shut()
	}
}

// updateInterest flips our interested state toward c based on whether
// it holds pieces we miss (p.mu held).
func (p *SwarmPeer) updateInterest(c *swarmConn) {
	want := false
	if !p.store.Complete() {
		for _, i := range p.store.Bitfield().Missing(p.cfg.Meta.NumPieces()) {
			if c.remote.Has(i) {
				want = true
				break
			}
		}
	}
	if want != c.amInterested {
		c.amInterested = want
		if want {
			c.queue(outMsg{id: 2}) // interested
		} else {
			c.queue(outMsg{id: 3}) // not interested
		}
	}
}

// fillPipeline keeps our request pipeline full on c: claim the rarest
// piece c holds that nobody is fetching and request all its blocks; in
// endgame (everything claimed) duplicate-request claimed pieces so one
// slow peer cannot stall completion (p.mu held).
func (p *SwarmPeer) fillPipeline(c *swarmConn) {
	if c.closed || c.peerChoking || !c.amInterested || p.store.Complete() {
		return
	}
	for len(c.outstanding) < p.cfg.Pipeline {
		piece, claimed, ok := p.pickPiece(c)
		if !ok {
			return
		}
		if claimed {
			p.claims[piece] = c
			p.claimAt[piece] = time.Now()
		}
		nb := p.store.NumBlocks(piece)
		for b := 0; b < nb; b++ {
			begin, length := p.store.BlockSpec(piece, b)
			key := blockKey{piece, int(begin)}
			if _, dup := c.outstanding[key]; dup {
				continue
			}
			c.outstanding[key] = time.Now()
			req := make([]byte, 12)
			binary.BigEndian.PutUint32(req[0:4], uint32(piece))
			binary.BigEndian.PutUint32(req[4:8], uint32(begin))
			binary.BigEndian.PutUint32(req[8:12], uint32(length))
			c.queue(outMsg{id: 6, payload: req})
		}
	}
}

// pickPiece selects the next piece to request on c: rarest-first over
// unclaimed missing pieces, choosing uniformly among ties — without the
// randomization every peer fetches pieces in the same global order and
// the whole swarm synchronizes on the last few pieces, which then exist
// only at the seed. Falls back to an endgame duplicate of a piece
// claimed elsewhere that c also holds. claimed reports whether the
// caller should record a fresh claim (p.mu held).
func (p *SwarmPeer) pickPiece(c *swarmConn) (piece int, claimed, ok bool) {
	missing := p.store.Bitfield().Missing(p.cfg.Meta.NumPieces())
	best := -1
	bestAvail := int(^uint(0) >> 1)
	ties := 0
	for _, i := range missing {
		if c.remote.Has(i) && p.claims[i] == nil {
			switch {
			case p.avail[i] < bestAvail:
				best, bestAvail, ties = i, p.avail[i], 1
			case p.avail[i] == bestAvail:
				// Reservoir-sample one of the equally-rare pieces.
				ties++
				if p.rng.Intn(ties) == 0 {
					best = i
				}
			}
		}
	}
	if best >= 0 {
		return best, true, true
	}
	// Endgame: every missing piece is claimed; duplicate one not
	// already outstanding here.
	for _, i := range missing {
		if !c.remote.Has(i) || p.claims[i] == c || p.claims[i] == nil {
			continue
		}
		dup := false
		for key := range c.outstanding {
			if key.piece == i {
				dup = true
				break
			}
		}
		if !dup {
			return i, false, true
		}
	}
	return 0, false, false
}
