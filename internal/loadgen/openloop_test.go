package loadgen

import (
	"bufio"
	"context"
	"fmt"
	"net"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestOpenLoopOfferedRate: the Poisson process must offer load at the
// configured rate (independent of service time), and the accounting
// must balance: every arrival is either served, shed somewhere, errored,
// or still in flight at the cutoff.
func TestOpenLoopOfferedRate(t *testing.T) {
	srv := startStubWebServer(t, 0)
	files := NewFileSet(1)
	const rate = 2000.0
	res := RunWebLoad(context.Background(), WebClientConfig{
		Addr:        srv.ln.Addr().String(),
		Files:       files,
		OfferedRate: rate,
		Duration:    500 * time.Millisecond,
		Seed:        11,
	})
	if res.Offered == 0 {
		t.Fatal("no arrivals generated")
	}
	// A stray error from a run-deadline race is tolerable; a systematic
	// failure mode is not.
	if res.Errors > res.Offered/100 {
		t.Errorf("errors = %d of %d offered", res.Errors, res.Offered)
	}
	// The measured offered rate tracks the configured one (generous
	// tolerance: Poisson variance plus CI scheduling noise).
	if res.OfferedRate < 0.6*rate || res.OfferedRate > 1.4*rate {
		t.Errorf("offered rate %.0f/s, want ~%.0f/s", res.OfferedRate, rate)
	}
	if res.Requests == 0 || res.Goodput == 0 {
		t.Fatalf("nothing served: %+v", res)
	}
	if res.AcceptedRate < res.Goodput {
		t.Errorf("accepted %.0f/s < goodput %.0f/s", res.AcceptedRate, res.Goodput)
	}
	// Arrivals can exceed completions (in-flight at cutoff) but never
	// the other way around.
	if res.Offered < res.Requests+res.Sheds+res.ClientSheds {
		t.Errorf("accounting: offered %d < served %d + sheds %d + clientsheds %d",
			res.Offered, res.Requests, res.Sheds, res.ClientSheds)
	}
}

// TestOpenLoopInFlightCap: against a server that accepts and never
// responds, the generator must hold exactly MaxInFlight requests open
// and shed every further arrival client-side — the generator cannot be
// melted by the server it is measuring.
func TestOpenLoopInFlightCap(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	var mu sync.Mutex
	var held []net.Conn
	t.Cleanup(func() {
		mu.Lock()
		defer mu.Unlock()
		for _, c := range held {
			c.Close()
		}
	})
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			mu.Lock()
			held = append(held, c) // never answered
			mu.Unlock()
		}
	}()

	files := NewFileSet(1)
	const cap = 8
	res := RunWebLoad(context.Background(), WebClientConfig{
		Addr:        ln.Addr().String(),
		Files:       files,
		OfferedRate: 2000,
		MaxInFlight: cap,
		Duration:    200 * time.Millisecond,
		Seed:        12,
	})
	if res.Offered < 100 {
		t.Fatalf("offered only %d arrivals", res.Offered)
	}
	if res.Requests != 0 {
		t.Errorf("served %d from a mute server", res.Requests)
	}
	// The first cap arrivals occupy the in-flight slots forever; every
	// later arrival must shed at the generator.
	if want := res.Offered - cap; res.ClientSheds != want {
		t.Errorf("client sheds = %d, want %d (offered %d − cap %d)",
			res.ClientSheds, want, res.Offered, cap)
	}
}

// TestOpenLoopGoodputHonesty: a server shedding everything with 503s
// must report accepted load but zero goodput — the split that keeps a
// shedding server from ever being read as "fast".
func TestOpenLoopGoodputHonesty(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go func(conn net.Conn) {
				defer conn.Close()
				br := bufio.NewReader(conn)
				for {
					line, err := br.ReadString('\n')
					if err != nil {
						return
					}
					if strings.TrimSpace(line) == "" { // end of headers
						fmt.Fprintf(conn, "HTTP/1.1 503 Service Unavailable\r\n"+
							"Content-Length: 0\r\nConnection: close\r\n\r\n")
						return
					}
				}
			}(conn)
		}
	}()

	files := NewFileSet(1)
	res := RunWebLoad(context.Background(), WebClientConfig{
		Addr:        ln.Addr().String(),
		Files:       files,
		OfferedRate: 1000,
		Duration:    300 * time.Millisecond,
		Seed:        13,
	})
	if res.Sheds == 0 {
		t.Fatal("no 503s recorded")
	}
	if res.Requests != 0 || res.Goodput != 0 {
		t.Errorf("an all-shedding server reported goodput: %+v", res)
	}
	if res.AcceptedRate == 0 {
		t.Error("accepted rate 0 despite answered 503s")
	}
	// If 503s were being charged as errors, Errors would track Sheds;
	// a stray deadline-race error must not fail the run.
	if res.Errors > res.Sheds/10 {
		t.Errorf("503s charged as errors: %d errors vs %d sheds", res.Errors, res.Sheds)
	}
}
