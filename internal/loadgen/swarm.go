package loadgen

import (
	"context"
	"fmt"
	mrand "math/rand"
	"time"

	"github.com/flux-lang/flux/internal/metrics"
	"github.com/flux-lang/flux/internal/torrent"
)

// SwarmConfig drives a swarm load run against a seeding server: Peers
// looping leechers join the torrent, bootstrap to the seed plus a few
// random neighbors (so leechers exchange verified pieces among
// themselves instead of only hammering the seed), and every completed
// download resets into a fresh arrival.
type SwarmConfig struct {
	// SeedAddr is the seeding server's peer address.
	SeedAddr string
	// Meta identifies the torrent.
	Meta *torrent.MetaInfo
	// Peers is the number of swarm peers to run.
	Peers int
	// Neighbors is how many other swarm peers each peer bootstraps to,
	// besides the seed (default 4; capped at Peers-1).
	Neighbors int
	// Duration and Warmup bound the run; counters reset after Warmup.
	Duration time.Duration
	Warmup   time.Duration
	// Seed seeds the topology and choke-rotation RNGs.
	Seed int64
	// Pipeline, ChokeInterval, MaxUnchoked, KeepAliveInterval,
	// RequestTimeout pass through to each peer (see SwarmPeerConfig).
	Pipeline          int
	ChokeInterval     time.Duration
	MaxUnchoked       int
	KeepAliveInterval time.Duration
	RequestTimeout    time.Duration
	// StopAfter, when nonzero, ends the run once that many downloads
	// complete (tests use it; benchmarks run the full duration).
	StopAfter uint64
}

// SwarmResult aggregates a swarm run.
type SwarmResult struct {
	Completions uint64 // full-file downloads finished
	Pieces      uint64 // verified pieces downloaded
	BytesDown   uint64
	BytesUp     uint64
	Errors      uint64
	CompPerSec  float64 // completions/sec over the measured window
	Mbps        float64 // download throughput over the measured window
	// PieceLatency is the claim-to-verified time per piece.
	PieceLatency metrics.LatencySummary
	// Msgs counts received messages per wire type across the swarm.
	Msgs map[string]uint64
}

func (r SwarmResult) String() string {
	return fmt.Sprintf("completions=%d pieces=%d errs=%d %.2f completions/s %.1f Mb/s piece{%s}",
		r.Completions, r.Pieces, r.Errors, r.CompPerSec, r.Mbps, r.PieceLatency)
}

// RunSwarm runs a full swarm against a seed and reports aggregates.
func RunSwarm(ctx context.Context, cfg SwarmConfig) (SwarmResult, error) {
	if cfg.Neighbors <= 0 {
		cfg.Neighbors = 4
	}
	if cfg.Neighbors > cfg.Peers-1 {
		cfg.Neighbors = cfg.Peers - 1
	}
	runCtx, cancel := context.WithTimeout(ctx, cfg.Duration)
	defer cancel()

	stats := NewSwarmStats()
	topo := mrand.New(mrand.NewSource(cfg.Seed))

	peers := make([]*SwarmPeer, 0, cfg.Peers)
	defer func() {
		for _, p := range peers {
			p.Close()
		}
	}()
	for i := 0; i < cfg.Peers; i++ {
		bootstrap := []string{cfg.SeedAddr}
		// Random neighbors among already-created peers: a connected
		// random graph, denser as the swarm grows.
		for _, j := range topo.Perm(i) {
			if len(bootstrap) > cfg.Neighbors {
				break
			}
			bootstrap = append(bootstrap, peers[j].Addr())
		}
		p, err := NewSwarmPeer(SwarmPeerConfig{
			Meta:              cfg.Meta,
			Bootstrap:         bootstrap,
			Pipeline:          cfg.Pipeline,
			ChokeInterval:     cfg.ChokeInterval,
			MaxUnchoked:       cfg.MaxUnchoked,
			KeepAliveInterval: cfg.KeepAliveInterval,
			RequestTimeout:    cfg.RequestTimeout,
			Seed:              cfg.Seed + int64(i)*7919,
			Loop:              true,
			Stats:             stats,
		})
		if err != nil {
			return SwarmResult{}, err
		}
		peers = append(peers, p)
		p.Start(runCtx)
	}

	// Warm-up trimming, then watch for StopAfter.
	warmup := time.NewTimer(cfg.Warmup)
	defer warmup.Stop()
	warmed := false
	poll := time.NewTicker(10 * time.Millisecond)
	defer poll.Stop()
	start := time.Now()
	for runCtx.Err() == nil {
		select {
		case <-warmup.C:
			stats.ResetWindow()
			warmed = true
			start = time.Now()
		case <-poll.C:
			if cfg.StopAfter > 0 && stats.Completions.Load() >= cfg.StopAfter {
				cancel()
			}
		case <-runCtx.Done():
		}
	}
	window := time.Since(start)
	if !warmed {
		window = time.Since(start)
	}

	res := SwarmResult{
		Completions:  stats.Completions.Load(),
		Pieces:       stats.Pieces.Load(),
		BytesDown:    stats.BytesDown.Load(),
		BytesUp:      stats.BytesUp.Load(),
		Errors:       stats.Errors.Load(),
		PieceLatency: stats.PieceLat.Summary(),
		Msgs:         stats.Msgs(),
	}
	if secs := window.Seconds(); secs > 0 {
		res.CompPerSec = float64(res.Completions) / secs
		res.Mbps = float64(res.BytesDown) * 8 / 1e6 / secs
	}
	return res, nil
}
