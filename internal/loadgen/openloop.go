package loadgen

import (
	"bufio"
	"context"
	"math/rand"
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// defaultMaxInFlight bounds the open-loop generator's concurrency when
// the config leaves it zero: enough to keep a saturated server busy,
// small enough that a melting server cannot balloon the harness into
// hundreds of thousands of parked goroutines.
const defaultMaxInFlight = 4096

// openLoopLoad drives a Poisson arrival process at cfg.OfferedRate
// requests/sec until ctx expires. This is open-loop load: the arrival
// schedule is computed up front from the exponential inter-arrival
// draw and never consults completions, so a slowing server faces the
// same offered rate — the condition under which an unbounded queue
// actually melts, and the condition the closed-loop modes can never
// produce (their clients wait for responses, throttling offered load
// to exactly the service rate).
//
// Each arrival is one independent single-request connection drawn from
// the SPECweb99-like mix. An arrival that finds MaxInFlight requests
// already outstanding is dropped at the generator and counted as a
// client-side shed — honest accounting for load the server never saw,
// and the bound that keeps the generator itself from melting.
func openLoopLoad(ctx context.Context, cfg WebClientConfig, rec *webRecorders) {
	maxInFlight := int64(cfg.MaxInFlight)
	if maxInFlight <= 0 {
		maxInFlight = defaultMaxInFlight
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	sampler := NewMixSampler(cfg.Files, cfg.Seed+1, cfg.DynamicFraction, cfg.PostFraction)

	var inFlight atomic.Int64
	var wg sync.WaitGroup
	timer := time.NewTimer(0)
	defer timer.Stop()
	if !timer.Stop() {
		<-timer.C
	}

	// The absolute next-arrival time advances by exponential draws only:
	// when the pacer falls behind (a burst of short gaps, or scheduler
	// hiccups) arrivals fire back-to-back until the schedule catches up,
	// rather than resynchronizing to "now" — resync would silently erase
	// offered load exactly when the system is struggling.
	next := time.Now()
	for {
		next = next.Add(time.Duration(rng.ExpFloat64() / cfg.OfferedRate * float64(time.Second)))
		if wait := time.Until(next); wait > 0 {
			timer.Reset(wait)
			select {
			case <-ctx.Done():
				wg.Wait()
				return
			case <-timer.C:
			}
		} else if ctx.Err() != nil {
			wg.Wait()
			return
		}

		rec.offered.Add(1)
		if inFlight.Load() >= maxInFlight {
			rec.clientSheds.Add(1)
			continue
		}
		inFlight.Add(1)
		wg.Add(1)
		// The mix is drawn on the pacer goroutine (the sampler is not
		// concurrency-safe); the request itself runs detached so a slow
		// response never perturbs the arrival schedule.
		op := sampler.Next()
		go func(op WebOp) {
			defer wg.Done()
			defer inFlight.Add(-1)
			openLoopRequest(ctx, cfg, op, rec)
		}(op)
	}
}

// openLoopRequest performs one arrival's conversation: dial, one
// request (announcing Connection: close), one response.
func openLoopRequest(ctx context.Context, cfg WebClientConfig, op WebOp, rec *webRecorders) {
	d := net.Dialer{Timeout: 2 * time.Second}
	start := time.Now()
	conn, err := d.DialContext(ctx, "tcp", cfg.Addr)
	if err != nil {
		// A dial cut off by the run deadline is the end of the run, not
		// a server failure.
		if ctx.Err() == nil {
			rec.errs.Add(1)
		}
		return
	}
	defer conn.Close()
	// Bound the conversation by the run deadline plus slack: a wedged
	// server fails the request instead of hanging the harness.
	if deadline, ok := ctx.Deadline(); ok {
		conn.SetDeadline(deadline.Add(2 * time.Second))
	}
	if err := writeOp(conn, op, true); err != nil {
		if ctx.Err() == nil {
			rec.errs.Add(1)
		}
		return
	}
	n, status, _, err := readResponse(bufio.NewReader(conn))
	if err != nil {
		if ctx.Err() == nil {
			rec.errs.Add(1)
		}
		return
	}
	if ctx.Err() != nil {
		return
	}
	if status == 503 {
		// Admission control shed this arrival: its own bucket, never an
		// error, never served latency. No backoff — open-loop arrivals
		// are independent by definition; the in-flight cap is what
		// bounds the generator.
		rec.sheds.Add(1)
		return
	}
	rec.record(op, time.Since(start), n)
}
