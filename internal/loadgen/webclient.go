package loadgen

import (
	"bufio"
	"context"
	"fmt"
	"io"
	"net"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"github.com/flux-lang/flux/internal/metrics"
)

// WebClientConfig parameterizes the SPECweb99-like load test of §4.2.
// Two connection disciplines are supported:
//
//   - Fresh-connection sessions (the default): each simulated client
//     issues RequestsPerConn requests over one HTTP/1.1 connection, then
//     reconnects — the harness shape of the original Figure 3 runs.
//   - KeepAlive: each client holds one persistent connection and issues
//     back-to-back requests for the whole run, reconnecting only when
//     the server signals `Connection: close` (or the connection fails).
//     This matches SPECweb99's persistent-connection conditions.
//
// Requests are drawn from the SPECweb99-like operation mix: static GETs
// split 35/50/14/1 over the four file classes, ad-rotation dynamic GETs,
// and form POSTs.
type WebClientConfig struct {
	Addr            string
	Clients         int
	Files           *FileSet
	RequestsPerConn int  // fresh-connection mode: requests per session (default 5)
	KeepAlive       bool // hold persistent connections for the whole run
	Duration        time.Duration
	Warmup          time.Duration // measurements before this are dropped
	DynamicFraction float64       // dynamic share of all requests (0 = all static)
	PostFraction    float64       // POST share of the dynamic requests
	Seed            int64

	// OfferedRate, when > 0, switches RunWebLoad to open-loop mode: a
	// Poisson arrival process offers OfferedRate requests/sec —
	// exponential inter-arrival times, each arrival an independent
	// single-request connection — REGARDLESS of how fast the server
	// completes them. Closed-loop clients (the modes above) cannot melt
	// a server: every client waits for its response before offering the
	// next request, so offered load sags exactly when the server slows.
	// Production traffic does not wait; open-loop is how the unbounded
	// control actually shows queue meltdown. Clients and KeepAlive are
	// ignored in this mode.
	OfferedRate float64

	// MaxInFlight bounds concurrent in-flight requests in open-loop
	// mode (default 4096), so the generator itself cannot melt: an
	// arrival finding the cap exhausted is dropped client-side and
	// counted in WebResult.ClientSheds — offered load the server never
	// saw, reported honestly instead of silently throttled.
	MaxInFlight int
}

// WebResult aggregates a load test run. The three rate fields keep the
// open-loop accounting honest: OfferedRate is what the arrival process
// generated, AcceptedRate is what the server answered (served + 503
// sheds), and Goodput is what it actually served — a server shedding
// 90% of its load reports a high AcceptedRate and a low Goodput, and
// can never be read as "fast" by hiding the sheds.
type WebResult struct {
	Requests   uint64
	Errors     uint64
	Bytes      uint64
	Sheds      uint64 // 503 answers from admission control (not errors)
	Reconnects uint64 // connections opened beyond each client's first
	Throughput float64
	Mbps       float64
	Latency    metrics.LatencySummary
	// ByClass breaks latency down per mix bucket: static0..static3 (the
	// four SPECweb99 file classes), dynamic, and post.
	ByClass map[string]metrics.LatencySummary

	// Open-loop accounting (zero in the closed-loop modes).
	Offered      uint64  // arrivals the Poisson process generated in the window
	ClientSheds  uint64  // arrivals dropped at the generator's in-flight cap
	OfferedRate  float64 // measured arrivals/sec
	AcceptedRate float64 // responses/sec: served + server sheds (503s)
	Goodput      float64 // served (non-503) requests/sec — the honest throughput
}

func (r WebResult) String() string {
	if r.Offered > 0 {
		return fmt.Sprintf("offered=%.0f/s accepted=%.0f/s goodput=%.0f/s sheds=%d clientsheds=%d errs=%d latency{%s}",
			r.OfferedRate, r.AcceptedRate, r.Goodput, r.Sheds, r.ClientSheds, r.Errors, r.Latency)
	}
	return fmt.Sprintf("reqs=%d errs=%d sheds=%d reconns=%d rate=%.1f/s %.1f Mb/s latency{%s}",
		r.Requests, r.Errors, r.Sheds, r.Reconnects, r.Throughput, r.Mbps, r.Latency)
}

// ClassBreakdown renders the per-bucket latency summaries in a stable
// order, for tables and logs.
func (r WebResult) ClassBreakdown() string {
	keys := make([]string, 0, len(r.ByClass))
	for k := range r.ByClass {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var sb strings.Builder
	for _, k := range keys {
		s := r.ByClass[k]
		if s.Count == 0 {
			continue
		}
		if sb.Len() > 0 {
			sb.WriteString("  ")
		}
		fmt.Fprintf(&sb, "%s{n=%d p50=%v p95=%v}", k, s.Count,
			s.P50.Round(time.Microsecond), s.P95.Round(time.Microsecond))
	}
	return sb.String()
}

// mixClasses are the latency buckets a run can record into.
var mixClasses = []string{"static0", "static1", "static2", "static3", "dynamic", "post"}

// webRecorders bundles the measurement state shared by all clients.
type webRecorders struct {
	lat         *metrics.LatencyRecorder
	byClass     map[string]*metrics.LatencyRecorder
	tput        *metrics.Throughput
	errs        atomic.Uint64
	sheds       atomic.Uint64
	reconns     atomic.Uint64
	offered     atomic.Uint64 // open-loop arrivals generated
	clientSheds atomic.Uint64 // open-loop arrivals dropped at the in-flight cap
	winStart    atomic.Int64  // measurement-window start, unix nanos
}

func newWebRecorders() *webRecorders {
	r := &webRecorders{
		lat:     metrics.NewLatencyRecorder(),
		byClass: make(map[string]*metrics.LatencyRecorder, len(mixClasses)),
		tput:    metrics.NewThroughput(),
	}
	for _, c := range mixClasses {
		r.byClass[c] = metrics.NewLatencyRecorder()
	}
	r.winStart.Store(time.Now().UnixNano())
	return r
}

// reset implements warm-up trimming: every reported counter restarts
// together, so errors and reconnects cover the same window as latency
// and throughput.
func (r *webRecorders) reset() {
	r.lat.Reset()
	for _, lr := range r.byClass {
		lr.Reset()
	}
	r.tput.Reset()
	r.errs.Store(0)
	r.sheds.Store(0)
	r.reconns.Store(0)
	r.offered.Store(0)
	r.clientSheds.Store(0)
	r.winStart.Store(time.Now().UnixNano())
}

// window returns the measurement window's elapsed time.
func (r *webRecorders) window() time.Duration {
	return time.Duration(time.Now().UnixNano() - r.winStart.Load())
}

func (r *webRecorders) record(op WebOp, d time.Duration, n int) {
	r.lat.Record(d)
	if lr, ok := r.byClass[op.Class]; ok {
		lr.Record(d)
	}
	r.tput.Add(1, uint64(n))
}

// RunWebLoad drives the configured client swarm against a server and
// reports throughput and latency, trimming the warm-up window as the
// paper's methodology does.
func RunWebLoad(ctx context.Context, cfg WebClientConfig) WebResult {
	if cfg.RequestsPerConn <= 0 {
		cfg.RequestsPerConn = 5
	}
	rec := newWebRecorders()
	var warmed sync.WaitGroup

	runCtx, cancel := context.WithTimeout(ctx, cfg.Duration)
	defer cancel()

	// Warm-up trimming: reset recorders when the warmup elapses.
	warmed.Add(1)
	go func() {
		defer warmed.Done()
		t := time.NewTimer(cfg.Warmup)
		defer t.Stop()
		select {
		case <-t.C:
			rec.reset()
		case <-runCtx.Done():
		}
	}()

	if cfg.OfferedRate > 0 {
		// Open-loop: one Poisson arrival process, independent of
		// completions, replaces the closed-loop client swarm.
		openLoopLoad(runCtx, cfg, rec)
		warmed.Wait()
		return collectResult(cfg, rec)
	}

	var wg sync.WaitGroup
	for c := 0; c < cfg.Clients; c++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			sampler := NewMixSampler(cfg.Files, cfg.Seed+int64(id)*7919,
				cfg.DynamicFraction, cfg.PostFraction)
			if cfg.KeepAlive {
				keepAliveClient(runCtx, cfg, sampler, rec)
				return
			}
			for runCtx.Err() == nil {
				if err := webSession(runCtx, cfg, sampler, rec); err != nil {
					// The pause keeps a dead server from spinning the
					// client loop; charging the error only if the run
					// survives it keeps shutdown races (a dial or read
					// cut off by the deadline) out of the error count.
					select {
					case <-runCtx.Done():
						return
					case <-time.After(5 * time.Millisecond):
					}
					rec.errs.Add(1)
				}
			}
		}(c)
	}
	wg.Wait()
	warmed.Wait()
	return collectResult(cfg, rec)
}

// collectResult assembles the report from the recorders, including the
// open-loop offered/accepted/served split when an arrival process ran.
func collectResult(cfg WebClientConfig, rec *webRecorders) WebResult {
	res := WebResult{
		Latency: rec.lat.Summary(),
		ByClass: make(map[string]metrics.LatencySummary, len(rec.byClass)),
	}
	for c, lr := range rec.byClass {
		res.ByClass[c] = lr.Summary()
	}
	res.Requests, res.Bytes = rec.tput.Totals()
	res.Throughput, res.Mbps = rec.tput.Rates()
	res.Errors = rec.errs.Load()
	res.Sheds = rec.sheds.Load()
	res.Reconnects = rec.reconns.Load()
	res.Offered = rec.offered.Load()
	res.ClientSheds = rec.clientSheds.Load()
	if win := rec.window().Seconds(); res.Offered > 0 && win > 0 {
		// All three rates share the recorder window, so the invariant
		// offered >= accepted >= goodput holds exactly (Throughput keeps
		// its own clock and could drift past AcceptedRate by epsilon).
		res.OfferedRate = float64(res.Offered) / win
		res.AcceptedRate = float64(res.Requests+res.Sheds) / win
		res.Goodput = float64(res.Requests) / win
	}
	return res
}

// keepAliveClient holds one persistent connection for the whole run,
// issuing back-to-back requests from the mix. It honors the server's
// `Connection: close` (reconnecting without charging an error) and
// reconnects after connection failures (charging one).
func keepAliveClient(ctx context.Context, cfg WebClientConfig, sampler *MixSampler, rec *webRecorders) {
	d := net.Dialer{Timeout: 2 * time.Second}
	first := true
	for ctx.Err() == nil {
		conn, err := d.DialContext(ctx, "tcp", cfg.Addr)
		if err != nil {
			// Pause before charging: a dial cut off by the run deadline
			// is the end of the run, not a server failure (the pause
			// also keeps a dead server from spinning the client loop).
			select {
			case <-ctx.Done():
				return
			case <-time.After(5 * time.Millisecond):
			}
			rec.errs.Add(1)
			continue
		}
		if !first {
			rec.reconns.Add(1)
		}
		first = false
		// Bound every read/write by the run deadline (plus slack for
		// in-flight responses): a wedged server must not hang the
		// harness past the run, only fail it.
		if deadline, ok := ctx.Deadline(); ok {
			conn.SetDeadline(deadline.Add(2 * time.Second))
		}
		br := bufio.NewReader(conn)
		for ctx.Err() == nil {
			op := sampler.Next()
			start := time.Now()
			if err := writeOp(conn, op, false); err != nil {
				if ctx.Err() == nil {
					rec.errs.Add(1)
				}
				break
			}
			n, status, srvClose, err := readResponse(br)
			if err != nil {
				if ctx.Err() == nil {
					rec.errs.Add(1)
				}
				break
			}
			if ctx.Err() != nil {
				break
			}
			if status == 503 {
				// Admission control shed this conversation: counted in
				// its own bucket, never as an error and never as served
				// latency — overload experiments read this number as
				// "load the server declined instead of queueing". A real
				// client backs off on 503 instead of hammering the
				// accept loop, so the harness does too; without the
				// pause, reconnect churn burns the very capacity the
				// shed freed.
				rec.sheds.Add(1)
				select {
				case <-ctx.Done():
				case <-time.After(25 * time.Millisecond):
				}
				break
			}
			rec.record(op, time.Since(start), n)
			if srvClose {
				// The server announced the close: not an error, just
				// the end of this conversation.
				break
			}
		}
		conn.Close()
	}
}

// webSession runs one fresh-connection conversation: N requests, then
// close (the original harness's clients disconnect and reconnect after
// five files).
func webSession(ctx context.Context, cfg WebClientConfig, sampler *MixSampler, rec *webRecorders) error {
	d := net.Dialer{Timeout: 2 * time.Second}
	conn, err := d.DialContext(ctx, "tcp", cfg.Addr)
	if err != nil {
		return err
	}
	defer conn.Close()
	// Bound the session by the run deadline: a wedged server fails the
	// session instead of hanging the harness.
	if deadline, ok := ctx.Deadline(); ok {
		conn.SetDeadline(deadline.Add(2 * time.Second))
	}
	br := bufio.NewReader(conn)

	for i := 0; i < cfg.RequestsPerConn; i++ {
		if ctx.Err() != nil {
			return nil
		}
		op := sampler.Next()
		start := time.Now()
		if err := writeOp(conn, op, i == cfg.RequestsPerConn-1); err != nil {
			return err
		}
		n, status, srvClose, err := readResponse(br)
		if err != nil {
			return err
		}
		if ctx.Err() != nil {
			return nil
		}
		if status == 503 {
			rec.sheds.Add(1)
			return nil
		}
		rec.record(op, time.Since(start), n)
		if srvClose {
			return nil
		}
	}
	return nil
}

// writeOp sends one request of the mix; last requests a close.
func writeOp(conn net.Conn, op WebOp, last bool) error {
	connHdr := "keep-alive"
	if last {
		connHdr = "close"
	}
	if op.Method == "POST" {
		_, err := fmt.Fprintf(conn,
			"POST %s HTTP/1.1\r\nHost: bench\r\nConnection: %s\r\nContent-Length: %d\r\n\r\n%s",
			op.Path, connHdr, len(op.Body), op.Body)
		return err
	}
	_, err := fmt.Fprintf(conn, "GET %s HTTP/1.1\r\nHost: bench\r\nConnection: %s\r\n\r\n",
		op.Path, connHdr)
	return err
}

// readResponse consumes one HTTP/1.1 response, returning the body size,
// the status code, and whether the server announced `Connection:
// close`.
func readResponse(br *bufio.Reader) (n, status int, srvClose bool, err error) {
	statusLine, err := br.ReadString('\n')
	if err != nil {
		return 0, 0, false, err
	}
	if !strings.HasPrefix(statusLine, "HTTP/1.1 ") {
		return 0, 0, false, fmt.Errorf("loadgen: bad status line %q", statusLine)
	}
	if fields := strings.Fields(statusLine); len(fields) >= 2 {
		status, _ = strconv.Atoi(fields[1])
	}
	contentLen := -1
	for {
		line, err := br.ReadString('\n')
		if err != nil {
			return 0, 0, false, err
		}
		line = strings.TrimSpace(line)
		if line == "" {
			break
		}
		k, v, ok := strings.Cut(line, ":")
		if !ok {
			continue
		}
		k, v = strings.TrimSpace(k), strings.TrimSpace(v)
		switch {
		case strings.EqualFold(k, "Content-Length"):
			contentLen, err = strconv.Atoi(v)
			if err != nil {
				return 0, 0, false, fmt.Errorf("loadgen: bad content length %q", v)
			}
		case strings.EqualFold(k, "Connection") && strings.EqualFold(v, "close"):
			srvClose = true
		}
	}
	if contentLen < 0 {
		return 0, 0, false, fmt.Errorf("loadgen: response without Content-Length")
	}
	if _, err := io.CopyN(io.Discard, br, int64(contentLen)); err != nil {
		return 0, 0, false, err
	}
	return contentLen, status, srvClose, nil
}
