package loadgen

import (
	"bufio"
	"context"
	"fmt"
	"io"
	"net"
	"strconv"
	"strings"
	"sync"
	"time"

	"github.com/flux-lang/flux/internal/metrics"
)

// WebClientConfig parameterizes the SPECweb99-like load test of §4.2:
// each simulated client issues five requests over one keep-alive
// HTTP/1.1 connection, then reconnects, with files chosen by the Zipf
// sampler.
type WebClientConfig struct {
	Addr            string
	Clients         int
	Files           *FileSet
	RequestsPerConn int           // default 5 (the paper's value)
	Duration        time.Duration // total run time
	Warmup          time.Duration // measurements before this are dropped
	DynamicFraction float64       // fraction of requests hitting /dynamic
	Seed            int64
}

// WebResult aggregates a load test run.
type WebResult struct {
	Requests   uint64
	Errors     uint64
	Bytes      uint64
	Throughput float64 // requests/sec over the measured window
	Mbps       float64
	Latency    metrics.LatencySummary
}

func (r WebResult) String() string {
	return fmt.Sprintf("reqs=%d errs=%d rate=%.1f/s %.1f Mb/s latency{%s}",
		r.Requests, r.Errors, r.Throughput, r.Mbps, r.Latency)
}

// RunWebLoad drives the configured client swarm against a server and
// reports throughput and latency, trimming the warm-up window as the
// paper's methodology does.
func RunWebLoad(ctx context.Context, cfg WebClientConfig) WebResult {
	if cfg.RequestsPerConn <= 0 {
		cfg.RequestsPerConn = 5
	}
	lat := metrics.NewLatencyRecorder()
	tput := metrics.NewThroughput()
	var errs sync.Map // goroutine id -> count
	var warmed sync.WaitGroup

	runCtx, cancel := context.WithTimeout(ctx, cfg.Duration)
	defer cancel()

	// Warm-up trimming: reset recorders when the warmup elapses.
	warmed.Add(1)
	go func() {
		defer warmed.Done()
		t := time.NewTimer(cfg.Warmup)
		defer t.Stop()
		select {
		case <-t.C:
			lat.Reset()
			tput.Reset()
		case <-runCtx.Done():
		}
	}()

	var wg sync.WaitGroup
	for c := 0; c < cfg.Clients; c++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			var errCount uint64
			defer errs.Store(id, errCount)
			sampler := NewRequestSampler(cfg.Files, cfg.Seed+int64(id)*7919)
			dynRng := NewRequestSampler(cfg.Files, cfg.Seed+int64(id)*104729+1)
			_ = dynRng
			for runCtx.Err() == nil {
				if err := webSession(runCtx, cfg, sampler, id, lat, tput); err != nil {
					errCount++
					// Brief pause so a dead server does not spin the
					// client loop.
					select {
					case <-runCtx.Done():
					case <-time.After(5 * time.Millisecond):
					}
				}
			}
		}(c)
	}
	wg.Wait()
	warmed.Wait()

	res := WebResult{Latency: lat.Summary()}
	res.Requests, res.Bytes = tput.Totals()
	res.Throughput, res.Mbps = tput.Rates()
	errs.Range(func(_, v any) bool {
		res.Errors += v.(uint64)
		return true
	})
	return res
}

// webSession runs one keep-alive connection: N requests, then close (the
// paper's clients disconnect and reconnect after five files).
func webSession(ctx context.Context, cfg WebClientConfig, sampler *RequestSampler, id int,
	lat *metrics.LatencyRecorder, tput *metrics.Throughput) error {

	d := net.Dialer{Timeout: 2 * time.Second}
	conn, err := d.DialContext(ctx, "tcp", cfg.Addr)
	if err != nil {
		return err
	}
	defer conn.Close()
	br := bufio.NewReader(conn)

	for i := 0; i < cfg.RequestsPerConn; i++ {
		if ctx.Err() != nil {
			return nil
		}
		path := sampler.Next()
		if cfg.DynamicFraction > 0 && sampler.rng.Float64() < cfg.DynamicFraction {
			path = "/dynamic?n=2000"
		}
		start := time.Now()
		if err := writeRequest(conn, path, i == cfg.RequestsPerConn-1); err != nil {
			return err
		}
		n, err := readResponse(br)
		if err != nil {
			return err
		}
		if ctx.Err() != nil {
			return nil
		}
		lat.Record(time.Since(start))
		tput.Add(1, uint64(n))
	}
	return nil
}

func writeRequest(conn net.Conn, path string, last bool) error {
	connHdr := "keep-alive"
	if last {
		connHdr = "close"
	}
	_, err := fmt.Fprintf(conn, "GET %s HTTP/1.1\r\nHost: bench\r\nConnection: %s\r\n\r\n", path, connHdr)
	return err
}

// readResponse consumes one HTTP/1.1 response, returning the body size.
func readResponse(br *bufio.Reader) (int, error) {
	status, err := br.ReadString('\n')
	if err != nil {
		return 0, err
	}
	if !strings.HasPrefix(status, "HTTP/1.1 ") {
		return 0, fmt.Errorf("loadgen: bad status line %q", status)
	}
	contentLen := -1
	for {
		line, err := br.ReadString('\n')
		if err != nil {
			return 0, err
		}
		line = strings.TrimSpace(line)
		if line == "" {
			break
		}
		if k, v, ok := strings.Cut(line, ":"); ok && strings.EqualFold(strings.TrimSpace(k), "Content-Length") {
			contentLen, err = strconv.Atoi(strings.TrimSpace(v))
			if err != nil {
				return 0, fmt.Errorf("loadgen: bad content length %q", v)
			}
		}
	}
	if contentLen < 0 {
		return 0, fmt.Errorf("loadgen: response without Content-Length")
	}
	if _, err := io.CopyN(io.Discard, br, int64(contentLen)); err != nil {
		return 0, err
	}
	return contentLen, nil
}
