package loadgen

import (
	"context"
	"crypto/rand"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	mrand "math/rand"
	"net"
	"sync"
	"time"

	"github.com/flux-lang/flux/internal/metrics"
	"github.com/flux-lang/flux/internal/torrent"
)

// BTClientConfig reproduces §4.3's BitTorrent benchmark: a series of
// clients continuously request randomly distributed pieces of the test
// file from one peer holding a complete copy; a client that finishes
// disconnects (and, here, immediately reconnects to keep the offered
// load constant, matching "simulates a series of clients continuously
// sending requests").
type BTClientConfig struct {
	Addr     string
	Meta     *torrent.MetaInfo
	Clients  int
	Duration time.Duration
	Warmup   time.Duration
	Seed     int64
	// Pipeline is the number of outstanding block requests per client
	// (default 8).
	Pipeline int
	// StopAfter, when nonzero, ends the run once that many downloads
	// complete (tests use it; benchmarks run the full duration).
	StopAfter uint64
}

// BTResult aggregates a BitTorrent load run.
type BTResult struct {
	Completions uint64 // full-file downloads finished
	Pieces      uint64 // verified pieces downloaded
	Bytes       uint64
	Errors      uint64
	CompPerSec  float64 // completions/sec over the measured window
	Mbps        float64 // network throughput
	// PieceLatency is the request-to-verified time per piece.
	PieceLatency metrics.LatencySummary
}

func (r BTResult) String() string {
	return fmt.Sprintf("completions=%d pieces=%d errs=%d %.2f completions/s %.1f Mb/s piece{%s}",
		r.Completions, r.Pieces, r.Errors, r.CompPerSec, r.Mbps, r.PieceLatency)
}

// RunBTLoad drives a downloader swarm against a seeding peer.
func RunBTLoad(ctx context.Context, cfg BTClientConfig) BTResult {
	if cfg.Pipeline <= 0 {
		cfg.Pipeline = 8
	}
	runCtx, cancel := context.WithTimeout(ctx, cfg.Duration)
	defer cancel()

	lat := metrics.NewLatencyRecorder()
	tput := metrics.NewThroughput()
	var mu sync.Mutex
	var completions, pieces, errors_ uint64

	go func() {
		t := time.NewTimer(cfg.Warmup)
		defer t.Stop()
		select {
		case <-t.C:
			lat.Reset()
			tput.Reset()
			mu.Lock()
			completions, pieces = 0, 0
			mu.Unlock()
		case <-runCtx.Done():
		}
	}()

	var wg sync.WaitGroup
	for c := 0; c < cfg.Clients; c++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			rng := mrand.New(mrand.NewSource(cfg.Seed + int64(id)*30011))
			for runCtx.Err() == nil {
				got, err := btDownload(runCtx, cfg, rng, lat, tput)
				mu.Lock()
				pieces += got
				if err != nil {
					if runCtx.Err() == nil {
						errors_++
					}
				} else {
					completions++
					if cfg.StopAfter > 0 && completions >= cfg.StopAfter {
						cancel()
					}
				}
				mu.Unlock()
				if err != nil {
					select {
					case <-runCtx.Done():
					case <-time.After(10 * time.Millisecond):
					}
				}
			}
		}(c)
	}
	wg.Wait()

	res := BTResult{PieceLatency: lat.Summary()}
	mu.Lock()
	res.Completions, res.Pieces, res.Errors = completions, pieces, errors_
	mu.Unlock()
	_, res.Bytes = tput.Totals()
	ops, mbps := tput.Rates()
	_ = ops
	res.Mbps = mbps
	window := cfg.Duration - cfg.Warmup
	if window > 0 {
		res.CompPerSec = float64(res.Completions) / window.Seconds()
	}
	return res
}

// btDownload performs one complete download over one connection,
// returning the number of verified pieces it fetched.
func btDownload(ctx context.Context, cfg BTClientConfig, rng *mrand.Rand,
	lat *metrics.LatencyRecorder, tput *metrics.Throughput) (uint64, error) {

	store := torrent.NewLeecher(cfg.Meta)
	d := net.Dialer{Timeout: 2 * time.Second}
	conn, err := d.DialContext(ctx, "tcp", cfg.Addr)
	if err != nil {
		return 0, err
	}
	defer conn.Close()
	if deadline, ok := ctx.Deadline(); ok {
		conn.SetDeadline(deadline.Add(time.Second))
	}

	var peerID [20]byte
	rand.Read(peerID[:])
	copy(peerID[:8], "-LGEN01-")
	if err := writeBTHandshake(conn, cfg.Meta.InfoHash, peerID); err != nil {
		return 0, err
	}
	if err := readBTHandshake(conn, cfg.Meta.InfoHash); err != nil {
		return 0, err
	}
	// Expect the seeder's bitfield, send interested.
	if err := writeBTMessage(conn, 2, nil); err != nil { // interested
		return 0, err
	}

	n := cfg.Meta.NumPieces()
	// Random piece order (the protocol's load-balancing behavior §4.3).
	order := rng.Perm(n)
	var got uint64

	type pendingPiece struct {
		start  time.Time
		blocks int
	}
	pending := map[int]*pendingPiece{}
	next := 0
	inflight := 0

	request := func(piece int) error {
		p := &pendingPiece{start: time.Now()}
		nb := store.NumBlocks(piece)
		for b := 0; b < nb; b++ {
			begin, length := store.BlockSpec(piece, b)
			payload := make([]byte, 12)
			binary.BigEndian.PutUint32(payload[0:4], uint32(piece))
			binary.BigEndian.PutUint32(payload[4:8], uint32(begin))
			binary.BigEndian.PutUint32(payload[8:12], uint32(length))
			if err := writeBTMessage(conn, 6, payload); err != nil { // request
				return err
			}
			p.blocks++
		}
		pending[piece] = p
		inflight += p.blocks
		return nil
	}

	for !store.Complete() {
		if ctx.Err() != nil {
			return got, ctx.Err()
		}
		// Keep the pipeline full.
		for next < n && inflight < cfg.Pipeline*4 {
			if err := request(order[next]); err != nil {
				return got, err
			}
			next++
		}
		id, payload, err := readBTMessage(conn)
		if err != nil {
			return got, err
		}
		switch id {
		case 7: // piece
			if len(payload) < 8 {
				return got, errors.New("loadgen: short piece message")
			}
			piece := int(binary.BigEndian.Uint32(payload[0:4]))
			begin := int64(binary.BigEndian.Uint32(payload[4:8]))
			blk := payload[8:]
			done, err := store.WriteBlock(piece, begin, blk)
			if err != nil {
				return got, err
			}
			inflight--
			tput.Add(0, uint64(len(blk)))
			if done {
				got++
				tput.Add(1, 0)
				if p := pending[piece]; p != nil {
					lat.Record(time.Since(p.start))
					delete(pending, piece)
				}
			}
		default:
			// bitfield, unchoke, have, keep-alive: no client action.
		}
	}
	return got, nil
}

// --- minimal wire helpers (client side, independent of the server's) --------

func writeBTHandshake(conn net.Conn, infoHash, peerID [20]byte) error {
	buf := make([]byte, 0, 68)
	buf = append(buf, 19)
	buf = append(buf, "BitTorrent protocol"...)
	buf = append(buf, make([]byte, 8)...)
	buf = append(buf, infoHash[:]...)
	buf = append(buf, peerID[:]...)
	_, err := conn.Write(buf)
	return err
}

func readBTHandshake(conn net.Conn, want [20]byte) error {
	buf := make([]byte, 68)
	if _, err := io.ReadFull(conn, buf); err != nil {
		return err
	}
	if buf[0] != 19 || string(buf[1:20]) != "BitTorrent protocol" {
		return errors.New("loadgen: bad handshake")
	}
	var got [20]byte
	copy(got[:], buf[28:48])
	if got != want {
		return errors.New("loadgen: info hash mismatch")
	}
	return nil
}

func writeBTMessage(conn net.Conn, id byte, payload []byte) error {
	frame := make([]byte, 5+len(payload))
	binary.BigEndian.PutUint32(frame[:4], uint32(1+len(payload)))
	frame[4] = id
	copy(frame[5:], payload)
	_, err := conn.Write(frame)
	return err
}

func readBTMessage(conn net.Conn) (id int, payload []byte, err error) {
	var lenBuf [4]byte
	if _, err = io.ReadFull(conn, lenBuf[:]); err != nil {
		return 0, nil, err
	}
	length := binary.BigEndian.Uint32(lenBuf[:])
	if length == 0 {
		return -1, nil, nil // keep-alive
	}
	if length > torrent.BlockSize+1024 {
		return 0, nil, fmt.Errorf("loadgen: oversized frame %d", length)
	}
	body := make([]byte, length)
	if _, err = io.ReadFull(conn, body); err != nil {
		return 0, nil, err
	}
	return int(body[0]), body[1:], nil
}
