package loadgen

import (
	"context"
	"encoding/binary"
	"math/rand"
	"net"
	"testing"
	"time"

	"github.com/flux-lang/flux/internal/torrent"
)

func swarmTorrent(t *testing.T, size int) (*torrent.MetaInfo, []byte) {
	t.Helper()
	rng := rand.New(rand.NewSource(11))
	data := make([]byte, size)
	rng.Read(data)
	meta, err := torrent.New("swarm.bin", "", data, 64*1024)
	if err != nil {
		t.Fatal(err)
	}
	return meta, data
}

// fakeSwarmConn builds an in-memory connection for selector tests; the
// peer's Close can shut it without touching a real socket.
func fakeSwarmConn(t *testing.T, p *SwarmPeer, remote torrent.Bitfield) *swarmConn {
	t.Helper()
	a, b := net.Pipe()
	t.Cleanup(func() { a.Close(); b.Close() })
	return &swarmConn{
		p: p, nc: a, remote: remote,
		notify:      make(chan struct{}, 1),
		outstanding: make(map[blockKey]time.Time),
	}
}

func waitFor(t *testing.T, d time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// TestSwarmPeersExchangePieces proves leechers exchange verified pieces
// among themselves: peer B bootstraps ONLY to leecher A (never to the
// seed), so every piece B completes was relayed through A.
func TestSwarmPeersExchangePieces(t *testing.T) {
	meta, data := swarmTorrent(t, 256*1024) // 4 pieces
	stats := NewSwarmStats()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	seed, err := NewSwarmPeer(SwarmPeerConfig{
		Meta: meta, Content: data, Stats: stats,
		ChokeInterval: 20 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer seed.Close()
	seed.Start(ctx)

	a, err := NewSwarmPeer(SwarmPeerConfig{
		Meta: meta, Bootstrap: []string{seed.Addr()}, Stats: stats,
		ChokeInterval: 20 * time.Millisecond, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	a.Start(ctx)

	b, err := NewSwarmPeer(SwarmPeerConfig{
		Meta: meta, Bootstrap: []string{a.Addr()}, Stats: stats,
		ChokeInterval: 20 * time.Millisecond, Seed: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	b.Start(ctx)

	waitFor(t, 30*time.Second, "A to complete", a.Complete)
	waitFor(t, 30*time.Second, "B to complete via A", b.Complete)

	if got := stats.Completions.Load(); got < 2 {
		t.Errorf("completions = %d, want >= 2", got)
	}
	if got := stats.Pieces.Load(); got < 2*uint64(meta.NumPieces()) {
		t.Errorf("pieces = %d, want >= %d", got, 2*meta.NumPieces())
	}
	msgs := stats.Msgs()
	for _, kind := range []string{"bitfield", "interested", "unchoke", "request", "piece", "have"} {
		if msgs[kind] == 0 {
			t.Errorf("no %q messages observed: %v", kind, msgs)
		}
	}
	if stats.PieceLat.Summary().Count == 0 {
		t.Error("no piece latencies recorded")
	}
}

// TestSwarmPickPieceRarestFirst exercises the piece selector directly:
// rarest available piece first (unique minima here; ties are broken
// randomly), claimed pieces skipped until endgame.
func TestSwarmPickPieceRarestFirst(t *testing.T) {
	meta, _ := swarmTorrent(t, 256*1024) // 4 pieces
	p, err := NewSwarmPeer(SwarmPeerConfig{Meta: meta, Stats: NewSwarmStats()})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	full := torrent.NewBitfield(meta.NumPieces())
	for i := 0; i < meta.NumPieces(); i++ {
		full.Set(i)
	}
	c := fakeSwarmConn(t, p, full)
	other := fakeSwarmConn(t, p, full.Clone())
	p.conns[c] = true
	p.conns[other] = true
	p.avail = []int{3, 0, 2, 1}

	piece, claimed, ok := p.pickPiece(c)
	if !ok || !claimed || piece != 1 {
		t.Fatalf("pickPiece = (%d, %v, %v), want rarest (1, true, true)", piece, claimed, ok)
	}
	p.claims[1] = other

	piece, claimed, ok = p.pickPiece(c)
	if !ok || !claimed || piece != 3 {
		t.Fatalf("pickPiece = (%d, %v, %v), want next-rarest (3, true, true)", piece, claimed, ok)
	}

	// All remaining pieces claimed elsewhere: endgame duplicates, no
	// fresh claim.
	for i := 0; i < meta.NumPieces(); i++ {
		p.claims[i] = other
	}
	piece, claimed, ok = p.pickPiece(c)
	if !ok || claimed {
		t.Fatalf("pickPiece = (%d, %v, %v), want endgame duplicate (_, false, true)", piece, claimed, ok)
	}

	// Claimed on c itself: not a duplicate candidate.
	for i := 0; i < meta.NumPieces(); i++ {
		p.claims[i] = c
	}
	if _, _, ok = p.pickPiece(c); ok {
		t.Fatal("pickPiece found work with every piece claimed on the same conn")
	}
}

// TestSwarmChokeClearsOutstanding checks the choke transition: a CHOKE
// from the remote voids outstanding requests and releases piece claims
// so other connections can pick them up.
func TestSwarmChokeClearsOutstanding(t *testing.T) {
	meta, _ := swarmTorrent(t, 256*1024)
	p, err := NewSwarmPeer(SwarmPeerConfig{Meta: meta, Stats: NewSwarmStats()})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	c := fakeSwarmConn(t, p, torrent.NewBitfield(meta.NumPieces()))
	c.outstanding[blockKey{piece: 1, begin: 0}] = time.Now()
	p.conns[c] = true
	p.claims[1] = c
	p.claimAt[1] = time.Now()

	if err := p.handleMessage(c, 0, nil); err != nil {
		t.Fatalf("choke: %v", err)
	}
	if !c.peerChoking {
		t.Error("peerChoking not set after choke")
	}
	if len(c.outstanding) != 0 {
		t.Errorf("outstanding not cleared: %v", c.outstanding)
	}
	if p.claims[1] == c {
		t.Error("claim not released on choke")
	}

	// UNCHOKE flips the state back.
	if err := p.handleMessage(c, 1, nil); err != nil {
		t.Fatalf("unchoke: %v", err)
	}
	if c.peerChoking {
		t.Error("peerChoking still set after unchoke")
	}
}

// TestSwarmRejectsCorruptBlocks runs a malicious seeder that serves
// garbage: the peer must reject every piece (hash mismatch), count
// errors, and never complete.
func TestSwarmRejectsCorruptBlocks(t *testing.T) {
	meta, _ := swarmTorrent(t, 128*1024) // 2 pieces
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		for {
			nc, err := ln.Accept()
			if err != nil {
				return
			}
			go serveCorrupt(nc, meta)
		}
	}()

	stats := NewSwarmStats()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	p, err := NewSwarmPeer(SwarmPeerConfig{
		Meta: meta, Bootstrap: []string{ln.Addr().String()}, Stats: stats,
		ChokeInterval: 20 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	p.Start(ctx)

	waitFor(t, 20*time.Second, "a corrupt block to be rejected", func() bool {
		return stats.Errors.Load() > 0
	})
	if p.Complete() {
		t.Error("peer completed from a corrupt seeder")
	}
	if stats.Pieces.Load() != 0 {
		t.Errorf("verified pieces = %d from a corrupt seeder, want 0", stats.Pieces.Load())
	}
}

// serveCorrupt handshakes, claims every piece, unchokes, and answers
// requests with garbage bytes.
func serveCorrupt(nc net.Conn, meta *torrent.MetaInfo) {
	defer nc.Close()
	var peerID [20]byte
	copy(peerID[:], "-EVIL01-corruptseed!")
	if err := writeBTHandshake(nc, meta.InfoHash, peerID); err != nil {
		return
	}
	if err := readBTHandshake(nc, meta.InfoHash); err != nil {
		return
	}
	full := torrent.NewBitfield(meta.NumPieces())
	for i := 0; i < meta.NumPieces(); i++ {
		full.Set(i)
	}
	if err := writeBTMessage(nc, 5, []byte(full)); err != nil {
		return
	}
	if err := writeBTMessage(nc, 1, nil); err != nil { // unchoke
		return
	}
	for {
		id, payload, err := readBTMessage(nc)
		if err != nil {
			return
		}
		if id != 6 || len(payload) != 12 {
			continue
		}
		length := binary.BigEndian.Uint32(payload[8:12])
		resp := make([]byte, 8+length)
		copy(resp[0:8], payload[0:8])
		for i := range resp[8:] {
			resp[8+i] = 0xAB // not the content
		}
		if err := writeBTMessage(nc, 7, resp); err != nil {
			return
		}
	}
}
