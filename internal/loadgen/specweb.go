// Package loadgen generates the paper's evaluation workloads: the
// SPECweb99-like static web mix (§4.2), the BitTorrent downloader swarm
// (§4.3), the 10 Hz game clients (§4.4), and the fixed-rate image-server
// clients (§5.1), together with the client drivers that measure
// throughput and latency against a running server.
package loadgen

import (
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"sync"
)

// FileSet is the synthetic static corpus of the SPECweb99-like benchmark:
// directories each holding four classes of files (nine files per class),
// with class sizes spanning 100 B to 900 KB. Contents are deterministic
// so repeated runs and concurrent clients agree. The whole set lives in
// memory, matching the paper's note that the working set fits in RAM and
// the benchmark primarily stresses CPU.
type FileSet struct {
	Dirs int

	mu    sync.Mutex
	cache map[string][]byte
	// diskDir, when non-empty, is the materialized on-disk mirror of the
	// corpus (see Materialize): the sendfile(2) serving path reads large
	// bodies from these files instead of user-space memory.
	diskDir string
}

// SPECweb99's four file classes: probability of selection and base size.
// Class sizes are base*(1..9); the published mix is 35% / 50% / 14% / 1%.
var classes = [4]struct {
	Prob float64
	Base int
}{
	{0.35, 100},
	{0.50, 1000},
	{0.14, 10000},
	{0.01, 100000},
}

// NewFileSet builds a corpus with the given directory count. Each
// directory holds ~5 MB, so 6 directories approximate the paper's ~32 MB
// working set; tests use fewer.
func NewFileSet(dirs int) *FileSet {
	if dirs <= 0 {
		dirs = 1
	}
	return &FileSet{Dirs: dirs, cache: make(map[string][]byte)}
}

// Path renders the canonical URL path for (dir, class, file).
func (fs *FileSet) Path(dir, class, file int) string {
	return fmt.Sprintf("/dir%d/class%d_%d.html", dir, class, file)
}

// Size returns the byte size of (class, file) per the class table;
// file is 1-based (1..9).
func (fs *FileSet) Size(class, file int) int {
	return classes[class].Base * file
}

// Lookup fetches a file's contents by path, or false for paths outside
// the corpus.
func (fs *FileSet) Lookup(path string) ([]byte, bool) {
	var dir, class, file int
	if _, err := fmt.Sscanf(path, "/dir%d/class%d_%d.html", &dir, &class, &file); err != nil {
		return nil, false
	}
	if dir < 0 || dir >= fs.Dirs || class < 0 || class > 3 || file < 1 || file > 9 {
		return nil, false
	}
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if data, ok := fs.cache[path]; ok {
		return data, true
	}
	data := synthesize(path, fs.Size(class, file))
	fs.cache[path] = data
	return data, true
}

// Materialize writes the whole corpus to dir — one flat file per URL
// path, deterministic contents identical to Lookup's — so servers can
// stream large static bodies with sendfile(2) instead of copying them
// through user space. Idempotent per FileSet; safe to call before
// handing the set to servers and load generators (their in-memory
// Lookup view is unchanged).
func (fs *FileSet) Materialize(dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	for d := 0; d < fs.Dirs; d++ {
		for c := 0; c < 4; c++ {
			for f := 1; f <= 9; f++ {
				urlPath := fs.Path(d, c, f)
				body, _ := fs.Lookup(urlPath)
				if err := os.WriteFile(filepath.Join(dir, diskName(urlPath)), body, 0o644); err != nil {
					return err
				}
			}
		}
	}
	fs.mu.Lock()
	fs.diskDir = dir
	fs.mu.Unlock()
	return nil
}

// DiskPath maps a corpus URL path to its materialized on-disk file and
// size, or ok=false when the corpus is not materialized or the path is
// outside it. Callers open the file per request: sendfile advances the
// descriptor's offset, so a shared handle cannot serve concurrently.
func (fs *FileSet) DiskPath(path string) (name string, size int64, ok bool) {
	fs.mu.Lock()
	dir := fs.diskDir
	fs.mu.Unlock()
	if dir == "" {
		return "", 0, false
	}
	var d, c, f int
	if _, err := fmt.Sscanf(path, "/dir%d/class%d_%d.html", &d, &c, &f); err != nil {
		return "", 0, false
	}
	if d < 0 || d >= fs.Dirs || c < 0 || c > 3 || f < 1 || f > 9 {
		return "", 0, false
	}
	return filepath.Join(dir, diskName(path)), int64(fs.Size(c, f)), true
}

// diskName flattens a corpus URL path into a single file name.
func diskName(urlPath string) string {
	return strings.ReplaceAll(strings.TrimPrefix(urlPath, "/"), "/", "_")
}

// TotalBytes returns the corpus size.
func (fs *FileSet) TotalBytes() int64 {
	var perDir int64
	for c := range classes {
		for f := 1; f <= 9; f++ {
			perDir += int64(fs.Size(c, f))
		}
	}
	return perDir * int64(fs.Dirs)
}

// synthesize produces deterministic pseudo-random printable content.
func synthesize(path string, size int) []byte {
	var seed int64
	for _, c := range path {
		seed = seed*131 + int64(c)
	}
	rng := rand.New(rand.NewSource(seed))
	data := make([]byte, size)
	const alphabet = "ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789 \n"
	for i := range data {
		data[i] = alphabet[rng.Intn(len(alphabet))]
	}
	return data
}

// RequestSampler draws request paths with SPECweb99-like popularity:
// directories by a Zipf distribution, classes by the published mix,
// files uniformly.
type RequestSampler struct {
	fs   *FileSet
	rng  *rand.Rand
	zipf *rand.Zipf
}

// NewRequestSampler seeds a sampler; distinct clients should use
// distinct seeds.
func NewRequestSampler(fs *FileSet, seed int64) *RequestSampler {
	rng := rand.New(rand.NewSource(seed))
	var zipf *rand.Zipf
	if fs.Dirs > 1 {
		// s=1.2, v=1 gives the gentle skew SPECweb attributes to
		// directory popularity.
		zipf = rand.NewZipf(rng, 1.2, 1, uint64(fs.Dirs-1))
	}
	return &RequestSampler{fs: fs, rng: rng, zipf: zipf}
}

// Next draws one request path.
func (s *RequestSampler) Next() string {
	path, _ := s.NextClass()
	return path
}

// NextClass draws one request path and reports which of the four
// SPECweb99 file classes it belongs to.
func (s *RequestSampler) NextClass() (path string, class int) {
	dir := 0
	if s.zipf != nil {
		dir = int(s.zipf.Uint64())
	}
	r := s.rng.Float64()
	class = 3
	acc := 0.0
	for c := 0; c < 4; c++ {
		acc += classes[c].Prob
		if r < acc {
			class = c
			break
		}
	}
	file := 1 + s.rng.Intn(9)
	return s.fs.Path(dir, class, file), class
}

// SPECweb99's full operation mix: roughly 70% of requests are static
// GETs (split 35/50/14/1 over the four file classes) and 30% are
// dynamic, of which most are ad-rotation-style dynamic GETs and a small
// share are form POSTs.
const (
	// DefaultDynamicFraction is the dynamic share of all requests.
	DefaultDynamicFraction = 0.30
	// DefaultPostFraction is the POST share of the dynamic requests.
	DefaultPostFraction = 0.16
)

// WebOp is one sampled operation of the SPECweb99-like mix.
type WebOp struct {
	Method string // "GET" or "POST"
	Path   string
	Body   string // POST form payload; empty for GETs
	Class  string // latency bucket: static0..static3, dynamic, post
}

// MixSampler draws the full §4.2 request mix: static GETs with the
// published class distribution, ad-rotation dynamic GETs, and form
// POSTs. Distinct clients should use distinct seeds; the sampled stream
// is deterministic per seed.
type MixSampler struct {
	static   *RequestSampler
	rng      *rand.Rand
	dynFrac  float64
	postFrac float64
	user     int
	seq      int
}

// NewMixSampler seeds a mix sampler. dynamicFraction is the share of
// requests that are dynamic (GET or POST); postFraction is the share of
// those dynamic requests that are POSTs. Negative values select the
// SPECweb99 defaults; zero disables that part of the mix.
func NewMixSampler(fs *FileSet, seed int64, dynamicFraction, postFraction float64) *MixSampler {
	if dynamicFraction < 0 {
		dynamicFraction = DefaultDynamicFraction
	}
	if postFraction < 0 {
		postFraction = DefaultPostFraction
	}
	rng := rand.New(rand.NewSource(seed ^ 0x5bd1e995))
	return &MixSampler{
		static:   NewRequestSampler(fs, seed),
		rng:      rng,
		dynFrac:  dynamicFraction,
		postFrac: postFraction,
		user:     rng.Intn(10000),
	}
}

// Next draws one operation from the mix.
func (m *MixSampler) Next() WebOp {
	if m.dynFrac > 0 && m.rng.Float64() < m.dynFrac {
		m.seq++
		if m.postFrac > 0 && m.rng.Float64() < m.postFrac {
			body := fmt.Sprintf("uid=%d&seq=%d&field=specweb", m.user, m.seq)
			return WebOp{Method: "POST", Path: "/post", Body: body, Class: "post"}
		}
		return WebOp{
			Method: "GET",
			Path:   fmt.Sprintf("/adrotate?u=%d&r=%d", m.user, m.seq),
			Class:  "dynamic",
		}
	}
	path, class := m.static.NextClass()
	return WebOp{Method: "GET", Path: path, Class: staticClassNames[class]}
}

// staticClassNames are the latency-bucket labels of the four file
// classes.
var staticClassNames = [4]string{"static0", "static1", "static2", "static3"}
