package loadgen

import (
	"bytes"
	"fmt"
	"os"
	"strings"
	"sync"
	"testing"
	"testing/quick"
)

func TestFileSetLookup(t *testing.T) {
	fs := NewFileSet(2)
	for dir := 0; dir < 2; dir++ {
		for class := 0; class < 4; class++ {
			for file := 1; file <= 9; file++ {
				path := fs.Path(dir, class, file)
				data, ok := fs.Lookup(path)
				if !ok {
					t.Fatalf("Lookup(%q) missing", path)
				}
				if len(data) != fs.Size(class, file) {
					t.Errorf("%q: size %d, want %d", path, len(data), fs.Size(class, file))
				}
			}
		}
	}
}

func TestFileSetMissingPaths(t *testing.T) {
	fs := NewFileSet(1)
	for _, path := range []string{
		"/",
		"/nope",
		"/dir1/class0_1.html", // dir out of range
		"/dir0/class4_1.html", // class out of range
		"/dir0/class0_0.html", // file out of range
		"/dir0/class0_10.html",
		"/dirX/class0_1.html",
	} {
		if _, ok := fs.Lookup(path); ok {
			t.Errorf("Lookup(%q) should miss", path)
		}
	}
}

func TestFileSetDeterministic(t *testing.T) {
	a := NewFileSet(1)
	b := NewFileSet(1)
	path := a.Path(0, 2, 5)
	da, _ := a.Lookup(path)
	db, _ := b.Lookup(path)
	if !bytes.Equal(da, db) {
		t.Error("content differs across instances")
	}
	// Cached lookups return identical content.
	da2, _ := a.Lookup(path)
	if !bytes.Equal(da, da2) {
		t.Error("content differs across lookups")
	}
}

func TestFileSetTotalBytes(t *testing.T) {
	fs := NewFileSet(1)
	// Per directory: sum over classes of base*(1+..+9) = 45*(100+1000+10000+100000).
	want := int64(45 * 111100)
	if got := fs.TotalBytes(); got != want {
		t.Errorf("TotalBytes = %d, want %d", got, want)
	}
	if got := NewFileSet(3).TotalBytes(); got != 3*want {
		t.Errorf("3-dir TotalBytes = %d, want %d", got, 3*want)
	}
}

func TestSamplerDistribution(t *testing.T) {
	fs := NewFileSet(4)
	s := NewRequestSampler(fs, 42)
	classCounts := make([]int, 4)
	dirCounts := make(map[int]int)
	const n = 20000
	for i := 0; i < n; i++ {
		path := s.Next()
		var dir, class, file int
		if _, err := fmt.Sscanf(path, "/dir%d/class%d_%d.html", &dir, &class, &file); err != nil {
			t.Fatalf("malformed path %q", path)
		}
		if _, ok := fs.Lookup(path); !ok {
			t.Fatalf("sampled path %q not in corpus", path)
		}
		classCounts[class]++
		dirCounts[dir]++
	}
	// Class mix ~ 35/50/14/1 (±5 points).
	wantFrac := []float64{0.35, 0.50, 0.14, 0.01}
	for c, count := range classCounts {
		frac := float64(count) / n
		if frac < wantFrac[c]-0.05 || frac > wantFrac[c]+0.05 {
			t.Errorf("class %d fraction = %.3f, want ~%.2f", c, frac, wantFrac[c])
		}
	}
	// Zipf: dir 0 must dominate dir 3.
	if dirCounts[0] <= dirCounts[3] {
		t.Errorf("zipf skew missing: dir0=%d dir3=%d", dirCounts[0], dirCounts[3])
	}
}

func TestSamplerSeedsIndependent(t *testing.T) {
	fs := NewFileSet(2)
	a := NewRequestSampler(fs, 1)
	b := NewRequestSampler(fs, 2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Next() == b.Next() {
			same++
		}
	}
	if same == 100 {
		t.Error("different seeds produced identical streams")
	}
}

// TestMixSamplerDistribution checks the full SPECweb99-like operation
// mix converges: the dynamic share, the POST share of dynamic, and —
// within the static share — the published 35/50/14/1 class split.
func TestMixSamplerDistribution(t *testing.T) {
	fs := NewFileSet(4)
	m := NewMixSampler(fs, 42, -1, -1) // negative: SPECweb99 defaults
	const n = 40000
	counts := make(map[string]int)
	var static, dynamic, post int
	for i := 0; i < n; i++ {
		op := m.Next()
		counts[op.Class]++
		switch op.Class {
		case "dynamic":
			dynamic++
			if op.Method != "GET" || !strings.HasPrefix(op.Path, "/adrotate") {
				t.Fatalf("dynamic op = %+v", op)
			}
		case "post":
			post++
			if op.Method != "POST" || op.Body == "" {
				t.Fatalf("post op = %+v", op)
			}
		default:
			static++
			if op.Method != "GET" {
				t.Fatalf("static op = %+v", op)
			}
			if _, ok := fs.Lookup(op.Path); !ok {
				t.Fatalf("static path %q not in corpus", op.Path)
			}
		}
	}

	// Dynamic (GET+POST) share ~ 30% (±2 points of all requests).
	dynFrac := float64(dynamic+post) / n
	if dynFrac < DefaultDynamicFraction-0.02 || dynFrac > DefaultDynamicFraction+0.02 {
		t.Errorf("dynamic share = %.3f, want ~%.2f", dynFrac, DefaultDynamicFraction)
	}
	// POST share of dynamic ~ 16% (±3 points).
	postFrac := float64(post) / float64(dynamic+post)
	if postFrac < DefaultPostFraction-0.03 || postFrac > DefaultPostFraction+0.03 {
		t.Errorf("post share of dynamic = %.3f, want ~%.2f", postFrac, DefaultPostFraction)
	}
	// Static classes ~ 35/50/14/1 of the static share (±3 points).
	wantFrac := []float64{0.35, 0.50, 0.14, 0.01}
	for c, want := range wantFrac {
		frac := float64(counts[staticClassNames[c]]) / float64(static)
		if frac < want-0.03 || frac > want+0.03 {
			t.Errorf("static class %d fraction = %.3f, want ~%.2f", c, frac, want)
		}
	}
}

// TestMixSamplerZeroFractionsAllStatic: zero fractions disable the
// dynamic mix entirely (the original static-only harness shape).
func TestMixSamplerZeroFractionsAllStatic(t *testing.T) {
	fs := NewFileSet(1)
	m := NewMixSampler(fs, 7, 0, 0)
	for i := 0; i < 2000; i++ {
		op := m.Next()
		if op.Method != "GET" || op.Class == "dynamic" || op.Class == "post" {
			t.Fatalf("op %d = %+v, want static GET", i, op)
		}
	}
}

// TestMixSamplerDeterministicPerSeed: the same seed replays the same
// operation stream (runs must be reproducible), and distinct seeds
// diverge.
func TestMixSamplerDeterministicPerSeed(t *testing.T) {
	fs := NewFileSet(2)
	a := NewMixSampler(fs, 99, -1, -1)
	b := NewMixSampler(fs, 99, -1, -1)
	for i := 0; i < 500; i++ {
		if a.Next() != b.Next() {
			t.Fatalf("same seed diverged at op %d", i)
		}
	}
	c := NewMixSampler(fs, 100, -1, -1)
	d := NewMixSampler(fs, 99, -1, -1)
	same := true
	for i := 0; i < 100; i++ {
		if c.Next() != d.Next() {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical streams")
	}
}

// TestFileSetConcurrentDeterministic: concurrent clients racing on the
// lazily-synthesized corpus must all observe identical contents (run
// under -race in CI, this also proves the cache fill is synchronized).
func TestFileSetConcurrentDeterministic(t *testing.T) {
	ref := NewFileSet(2)
	fs := NewFileSet(2)
	var paths []string
	for dir := 0; dir < 2; dir++ {
		for class := 0; class < 4; class++ {
			for file := 1; file <= 9; file++ {
				paths = append(paths, fs.Path(dir, class, file))
			}
		}
	}
	const workers = 8
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			// Each worker walks the paths at a different offset so
			// first-touch synthesis races across the whole corpus.
			for i := range paths {
				p := paths[(i+w*5)%len(paths)]
				got, ok := fs.Lookup(p)
				if !ok {
					errs <- fmt.Errorf("worker %d: %q missing", w, p)
					return
				}
				want, _ := ref.Lookup(p)
				if !bytes.Equal(got, want) {
					errs <- fmt.Errorf("worker %d: %q content differs", w, p)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// TestQuickSampledPathsAlwaysResolve: every sampled path resolves for
// arbitrary seeds and corpus sizes.
func TestQuickSampledPathsAlwaysResolve(t *testing.T) {
	f := func(seed int64, dirs uint8) bool {
		fs := NewFileSet(int(dirs%8) + 1)
		s := NewRequestSampler(fs, seed)
		for i := 0; i < 50; i++ {
			if _, ok := fs.Lookup(s.Next()); !ok {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// TestMaterializeDiskPath: the on-disk mirror must hold byte-identical
// bodies for every corpus path, DiskPath must agree with Lookup on
// sizes and membership, and an unmaterialized set must report no disk
// paths at all.
func TestMaterializeDiskPath(t *testing.T) {
	fs := NewFileSet(2)
	if _, _, ok := fs.DiskPath(fs.Path(0, 0, 1)); ok {
		t.Fatal("DiskPath ok before Materialize")
	}
	dir := t.TempDir()
	if err := fs.Materialize(dir); err != nil {
		t.Fatalf("Materialize: %v", err)
	}
	for d := 0; d < fs.Dirs; d++ {
		for c := 0; c < 4; c++ {
			for f := 1; f <= 9; f++ {
				p := fs.Path(d, c, f)
				name, size, ok := fs.DiskPath(p)
				if !ok {
					t.Fatalf("DiskPath(%s) not ok after Materialize", p)
				}
				want, _ := fs.Lookup(p)
				if size != int64(len(want)) {
					t.Fatalf("DiskPath(%s) size = %d, want %d", p, size, len(want))
				}
				got, err := os.ReadFile(name)
				if err != nil {
					t.Fatalf("read %s: %v", name, err)
				}
				if !bytes.Equal(got, want) {
					t.Fatalf("materialized %s differs from in-memory body", p)
				}
			}
		}
	}
	if _, _, ok := fs.DiskPath("/outside/corpus.html"); ok {
		t.Fatal("DiskPath ok for a path outside the corpus")
	}
}
