package loadgen

import (
	"bytes"
	"fmt"
	"testing"
	"testing/quick"
)

func TestFileSetLookup(t *testing.T) {
	fs := NewFileSet(2)
	for dir := 0; dir < 2; dir++ {
		for class := 0; class < 4; class++ {
			for file := 1; file <= 9; file++ {
				path := fs.Path(dir, class, file)
				data, ok := fs.Lookup(path)
				if !ok {
					t.Fatalf("Lookup(%q) missing", path)
				}
				if len(data) != fs.Size(class, file) {
					t.Errorf("%q: size %d, want %d", path, len(data), fs.Size(class, file))
				}
			}
		}
	}
}

func TestFileSetMissingPaths(t *testing.T) {
	fs := NewFileSet(1)
	for _, path := range []string{
		"/",
		"/nope",
		"/dir1/class0_1.html", // dir out of range
		"/dir0/class4_1.html", // class out of range
		"/dir0/class0_0.html", // file out of range
		"/dir0/class0_10.html",
		"/dirX/class0_1.html",
	} {
		if _, ok := fs.Lookup(path); ok {
			t.Errorf("Lookup(%q) should miss", path)
		}
	}
}

func TestFileSetDeterministic(t *testing.T) {
	a := NewFileSet(1)
	b := NewFileSet(1)
	path := a.Path(0, 2, 5)
	da, _ := a.Lookup(path)
	db, _ := b.Lookup(path)
	if !bytes.Equal(da, db) {
		t.Error("content differs across instances")
	}
	// Cached lookups return identical content.
	da2, _ := a.Lookup(path)
	if !bytes.Equal(da, da2) {
		t.Error("content differs across lookups")
	}
}

func TestFileSetTotalBytes(t *testing.T) {
	fs := NewFileSet(1)
	// Per directory: sum over classes of base*(1+..+9) = 45*(100+1000+10000+100000).
	want := int64(45 * 111100)
	if got := fs.TotalBytes(); got != want {
		t.Errorf("TotalBytes = %d, want %d", got, want)
	}
	if got := NewFileSet(3).TotalBytes(); got != 3*want {
		t.Errorf("3-dir TotalBytes = %d, want %d", got, 3*want)
	}
}

func TestSamplerDistribution(t *testing.T) {
	fs := NewFileSet(4)
	s := NewRequestSampler(fs, 42)
	classCounts := make([]int, 4)
	dirCounts := make(map[int]int)
	const n = 20000
	for i := 0; i < n; i++ {
		path := s.Next()
		var dir, class, file int
		if _, err := fmt.Sscanf(path, "/dir%d/class%d_%d.html", &dir, &class, &file); err != nil {
			t.Fatalf("malformed path %q", path)
		}
		if _, ok := fs.Lookup(path); !ok {
			t.Fatalf("sampled path %q not in corpus", path)
		}
		classCounts[class]++
		dirCounts[dir]++
	}
	// Class mix ~ 35/50/14/1 (±5 points).
	wantFrac := []float64{0.35, 0.50, 0.14, 0.01}
	for c, count := range classCounts {
		frac := float64(count) / n
		if frac < wantFrac[c]-0.05 || frac > wantFrac[c]+0.05 {
			t.Errorf("class %d fraction = %.3f, want ~%.2f", c, frac, wantFrac[c])
		}
	}
	// Zipf: dir 0 must dominate dir 3.
	if dirCounts[0] <= dirCounts[3] {
		t.Errorf("zipf skew missing: dir0=%d dir3=%d", dirCounts[0], dirCounts[3])
	}
}

func TestSamplerSeedsIndependent(t *testing.T) {
	fs := NewFileSet(2)
	a := NewRequestSampler(fs, 1)
	b := NewRequestSampler(fs, 2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Next() == b.Next() {
			same++
		}
	}
	if same == 100 {
		t.Error("different seeds produced identical streams")
	}
}

// TestQuickSampledPathsAlwaysResolve: every sampled path resolves for
// arbitrary seeds and corpus sizes.
func TestQuickSampledPathsAlwaysResolve(t *testing.T) {
	f := func(seed int64, dirs uint8) bool {
		fs := NewFileSet(int(dirs%8) + 1)
		s := NewRequestSampler(fs, seed)
		for i := 0; i < 50; i++ {
			if _, ok := fs.Lookup(s.Next()); !ok {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
