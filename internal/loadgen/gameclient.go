package loadgen

import (
	"context"
	"encoding/binary"
	"fmt"
	"math/rand"
	"net"
	"sync"
	"time"

	"github.com/flux-lang/flux/internal/metrics"
)

// GameClientConfig reproduces §4.4's load test: n players joining a Tag
// server and sending moves over UDP at 10 Hz while receiving state
// broadcasts. The measured quantity is the state inter-arrival time —
// the heartbeat the server must sustain — and the fraction of late
// heartbeats.
type GameClientConfig struct {
	Addr     string
	Players  int
	MoveHz   float64 // default 10
	Duration time.Duration
	Warmup   time.Duration
	Seed     int64
}

// GameResult reports a game load run.
type GameResult struct {
	StatesReceived uint64
	MovesSent      uint64
	JoinFailures   int
	// InterArrival summarizes the gap between consecutive state
	// broadcasts seen by clients (ideal: the 100ms heartbeat).
	InterArrival metrics.LatencySummary
}

func (r GameResult) String() string {
	return fmt.Sprintf("states=%d moves=%d joinFails=%d interarrival{%s}",
		r.StatesReceived, r.MovesSent, r.JoinFailures, r.InterArrival)
}

// RunGameLoad drives n simulated players against a game server.
func RunGameLoad(ctx context.Context, cfg GameClientConfig) GameResult {
	if cfg.MoveHz <= 0 {
		cfg.MoveHz = 10
	}
	runCtx, cancel := context.WithTimeout(ctx, cfg.Duration)
	defer cancel()

	lat := metrics.NewLatencyRecorder()
	var states, moves sync.Map
	joinFails := make(chan int, cfg.Players)

	go func() {
		t := time.NewTimer(cfg.Warmup)
		defer t.Stop()
		select {
		case <-t.C:
			lat.Reset()
		case <-runCtx.Done():
		}
	}()

	var wg sync.WaitGroup
	for p := 0; p < cfg.Players; p++ {
		wg.Add(1)
		go func(idx int) {
			defer wg.Done()
			st, mv, err := gamePlayer(runCtx, cfg, idx, lat)
			if err != nil {
				joinFails <- 1
				return
			}
			states.Store(idx, st)
			moves.Store(idx, mv)
		}(p)
	}
	wg.Wait()
	close(joinFails)

	res := GameResult{InterArrival: lat.Summary()}
	for range joinFails {
		res.JoinFailures++
	}
	states.Range(func(_, v any) bool { res.StatesReceived += v.(uint64); return true })
	moves.Range(func(_, v any) bool { res.MovesSent += v.(uint64); return true })
	return res
}

// gamePlayer joins, then moves at MoveHz while timing state broadcasts.
func gamePlayer(ctx context.Context, cfg GameClientConfig, idx int, lat *metrics.LatencyRecorder) (states, moves uint64, err error) {
	raddr, err := net.ResolveUDPAddr("udp", cfg.Addr)
	if err != nil {
		return 0, 0, err
	}
	conn, err := net.DialUDP("udp", nil, raddr)
	if err != nil {
		return 0, 0, err
	}
	defer conn.Close()
	rng := rand.New(rand.NewSource(cfg.Seed + int64(idx)*6151))

	// Join and wait for the ack carrying our id.
	var id uint32
	joined := false
	for attempt := 0; attempt < 5 && !joined; attempt++ {
		if _, err := conn.Write([]byte{1}); err != nil {
			return 0, 0, err
		}
		conn.SetReadDeadline(time.Now().Add(250 * time.Millisecond))
		buf := make([]byte, 64)
		for {
			n, err := conn.Read(buf)
			if err != nil {
				break // retry join
			}
			if n >= 9 && buf[0] == 3 {
				id = binary.LittleEndian.Uint32(buf[1:5])
				joined = true
				break
			}
		}
	}
	if !joined {
		return 0, 0, fmt.Errorf("loadgen: join timed out")
	}

	// Reader: time state broadcasts. The loop re-checks the context on
	// every iteration — a server that keeps broadcasting must not keep
	// the reader alive past the run window.
	readerDone := make(chan struct{})
	go func() {
		defer close(readerDone)
		buf := make([]byte, 64*1024)
		var last time.Time
		for ctx.Err() == nil {
			conn.SetReadDeadline(time.Now().Add(100 * time.Millisecond))
			n, err := conn.Read(buf)
			if err != nil {
				continue
			}
			if n >= 1 && buf[0] == 4 {
				now := time.Now()
				if !last.IsZero() {
					lat.Record(now.Sub(last))
				}
				last = now
				states++
			}
		}
	}()

	// Mover: send moves at the configured rate.
	ticker := time.NewTicker(time.Duration(float64(time.Second) / cfg.MoveHz))
	defer ticker.Stop()
	pkt := make([]byte, 7)
	pkt[0] = 2
	binary.LittleEndian.PutUint32(pkt[1:5], id)
	for {
		select {
		case <-ctx.Done():
			<-readerDone
			return states, moves, nil
		case <-ticker.C:
			pkt[5] = byte(int8(rng.Intn(7) - 3))
			pkt[6] = byte(int8(rng.Intn(7) - 3))
			if _, err := conn.Write(pkt); err == nil {
				moves++
			}
		}
	}
}
