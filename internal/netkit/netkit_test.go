package netkit

import (
	"context"
	"fmt"
	"io"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/flux-lang/flux/internal/runtime"
	"github.com/flux-lang/flux/internal/servers/httpkit"
)

// shedRecorder counts ConnShed events delivered through the Observer
// plane. Embedding a Gate (a full runtime.Observer) supplies the
// remaining plane methods, making this a runtime.ShedObserver.
type shedRecorder struct {
	*Gate
	mu    sync.Mutex
	sheds map[string]int
}

func newShedRecorder() *shedRecorder { return &shedRecorder{Gate: NewGate(0)} }

func (r *shedRecorder) ConnShed(server, reason string) {
	r.mu.Lock()
	if r.sheds == nil {
		r.sheds = make(map[string]int)
	}
	r.sheds[server+"/"+reason]++
	r.mu.Unlock()
}

func (r *shedRecorder) count(key string) int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.sheds[key]
}

var _ runtime.ShedObserver = (*shedRecorder)(nil)

func startPlane(t *testing.T, cfg Config) (*Plane, func()) {
	t.Helper()
	p, err := Listen(cfg)
	if err != nil {
		t.Fatalf("Listen: %v", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	if err := p.Start(ctx); err != nil {
		t.Fatalf("Start: %v", err)
	}
	return p, func() {
		cancel()
		shCtx, shCancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer shCancel()
		if err := p.Shutdown(shCtx); err != nil {
			t.Errorf("Shutdown: %v", err)
		}
	}
}

// TestPlaneAdmitsAndRecyclesConnections: admitted connections reach the
// Admit callback with working pooled reader state, across enough
// sequential connections to recycle the pools.
func TestPlaneAdmitsAndRecyclesConnections(t *testing.T) {
	p, stop := startPlane(t, Config{
		Admit: func(c *Conn) error {
			go func() {
				line, err := c.Reader().ReadString('\n')
				if err != nil {
					c.Close()
					return
				}
				fmt.Fprintf(c, "echo %s", line)
				c.Close()
			}()
			return nil
		},
	})
	defer stop()

	for i := 0; i < 50; i++ {
		conn, err := net.DialTimeout("tcp", p.Addr(), 2*time.Second)
		if err != nil {
			t.Fatal(err)
		}
		fmt.Fprintf(conn, "hello %d\n", i)
		out, err := io.ReadAll(conn)
		conn.Close()
		if err != nil {
			t.Fatalf("conn %d: %v", i, err)
		}
		if want := fmt.Sprintf("echo hello %d\n", i); string(out) != want {
			t.Fatalf("conn %d: got %q, want %q", i, out, want)
		}
	}
	st := p.Stats()
	if st.Accepted != 50 || st.Admitted != 50 || st.Shed != 0 {
		t.Errorf("stats = %+v, want 50 accepted/admitted, 0 shed", st)
	}
	if st.Live != 0 {
		t.Errorf("live = %d after all connections closed", st.Live)
	}
}

// TestPlaneShedsOnMaxConns: with a live-connection cap, excess accepts
// are answered with the shed response, counted, and routed through the
// Observer plane.
func TestPlaneShedsOnMaxConns(t *testing.T) {
	rec := newShedRecorder()
	release := make(chan struct{})
	p, stop := startPlane(t, Config{
		Name:         "capped",
		MaxConns:     1,
		ShedResponse: httpkit.Unavailable(),
		Observer:     rec,
		Admit: func(c *Conn) error {
			go func() {
				<-release
				c.Close()
			}()
			return nil
		},
	})
	defer stop()
	defer close(release)

	first, err := net.DialTimeout("tcp", p.Addr(), 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer first.Close()

	// Wait until the first connection is tracked before offering the
	// second (accept → admit is asynchronous to the dialer).
	deadline := time.Now().Add(2 * time.Second)
	for p.Stats().Live < 1 {
		if time.Now().After(deadline) {
			t.Fatal("first connection never tracked")
		}
		time.Sleep(time.Millisecond)
	}

	second, err := net.DialTimeout("tcp", p.Addr(), 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer second.Close()
	second.SetReadDeadline(time.Now().Add(5 * time.Second))
	resp, err := io.ReadAll(second)
	if err != nil {
		t.Fatalf("read shed response: %v", err)
	}
	if !strings.Contains(string(resp), "503") || !strings.Contains(string(resp), "Connection: close") {
		t.Errorf("shed response = %q, want 503 with Connection: close", resp)
	}
	if got := p.Stats().Shed; got != 1 {
		t.Errorf("shed count = %d, want 1", got)
	}
	if got := rec.count("capped/conn-limit"); got != 1 {
		t.Errorf("observer sheds = %d, want 1 (silent drop?)", got)
	}
}

// TestGateTripsOnWatermark: queue-depth samples above the watermark trip
// the gate; samples below clear it. The "steals" monotonic counter the
// steal engine reports through the same surface must be ignored.
func TestGateTripsOnWatermark(t *testing.T) {
	g := NewGate(10)
	if g.Overloaded() {
		t.Fatal("fresh gate overloaded")
	}
	g.QueueDepth(runtime.EventDriven, "events", 6)
	g.QueueDepth(runtime.EventDriven, "async", 4)
	if g.Overloaded() {
		t.Fatal("gate tripped at the watermark (must be strictly past)")
	}
	g.QueueDepth(runtime.EventDriven, "async", 5)
	if !g.Overloaded() {
		t.Fatal("gate did not trip past the watermark")
	}
	g.QueueDepth(runtime.WorkStealing, "steals", 1_000_000)
	g.QueueDepth(runtime.EventDriven, "events", 0)
	g.QueueDepth(runtime.EventDriven, "async", 0)
	if g.Overloaded() {
		t.Fatal("gate stuck overloaded (steals counter not excluded?)")
	}
}

// TestPlaneShedsWhileGateOverloaded: a tripped gate sheds fresh
// connections at accept.
func TestPlaneShedsWhileGateOverloaded(t *testing.T) {
	g := NewGate(1)
	admitted := make(chan *Conn, 16)
	p, stop := startPlane(t, Config{
		Gate:         g,
		ShedResponse: httpkit.Unavailable(),
		Admit: func(c *Conn) error {
			admitted <- c
			return nil
		},
	})
	defer stop()
	defer func() {
		for {
			select {
			case c := <-admitted:
				c.Close()
			default:
				return
			}
		}
	}()

	g.QueueDepth(runtime.EventDriven, "events", 100) // trip it
	conn, err := net.DialTimeout("tcp", p.Addr(), 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	resp, err := io.ReadAll(conn)
	if err != nil || !strings.Contains(string(resp), "503") {
		t.Fatalf("overloaded accept: resp %q err %v, want 503", resp, err)
	}

	g.QueueDepth(runtime.EventDriven, "events", 0) // clear it
	conn2, err := net.DialTimeout("tcp", p.Addr(), 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer conn2.Close()
	select {
	case c := <-admitted:
		c.Close()
	case <-time.After(5 * time.Second):
		t.Fatal("connection not admitted after gate cleared")
	}
}

// TestPlaneShutdownInterruptsBlockedReads: connections whose owners are
// blocked reading idle clients must be interrupted by Shutdown, so a
// graceful drain cannot hang on a silent keep-alive client.
func TestPlaneShutdownInterruptsBlockedReads(t *testing.T) {
	unblocked := make(chan error, 8)
	p, err := Listen(Config{
		Admit: func(c *Conn) error {
			go func() {
				_, err := c.Reader().ReadByte() // blocks: client never sends
				unblocked <- err
				c.Close()
			}()
			return nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	if err := p.Start(ctx); err != nil {
		t.Fatal(err)
	}

	const n = 4
	conns := make([]net.Conn, n)
	for i := range conns {
		if conns[i], err = net.DialTimeout("tcp", p.Addr(), 2*time.Second); err != nil {
			t.Fatal(err)
		}
		defer conns[i].Close()
	}
	deadline := time.Now().Add(2 * time.Second)
	for p.Stats().Live < n {
		if time.Now().After(deadline) {
			t.Fatalf("only %d of %d connections tracked", p.Stats().Live, n)
		}
		time.Sleep(time.Millisecond)
	}

	shCtx, shCancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer shCancel()
	if err := p.Shutdown(shCtx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	for i := 0; i < n; i++ {
		select {
		case err := <-unblocked:
			if err == nil {
				t.Error("blocked read returned nil after interrupt")
			}
		case <-time.After(5 * time.Second):
			t.Fatal("blocked read never interrupted by Shutdown")
		}
	}
}

// TestTrackRefusedWhileClosing: an accept that races shutdown must not
// be admitted — track reports the closing state so the accept loop
// sheds it (counted, observed) instead of handing Admit a socket the
// sweep has already doomed.
func TestTrackRefusedWhileClosing(t *testing.T) {
	rec := newShedRecorder()
	p, err := Listen(Config{
		Name:     "closing",
		Observer: rec,
		Admit:    func(c *Conn) error { c.Close(); return nil },
	})
	if err != nil {
		t.Fatal(err)
	}
	shCtx, shCancel := context.WithTimeout(context.Background(), time.Second)
	defer shCancel()
	if err := p.Shutdown(shCtx); err != nil {
		t.Fatal(err)
	}
	srv, cli := net.Pipe()
	defer cli.Close()
	c := newConn(p, srv)
	if p.track(c) {
		t.Fatal("track accepted a connection on a closing plane")
	}
	p.ShedConn(c, "closed")
	if got := p.Stats().Shed; got != 1 {
		t.Errorf("shed count = %d, want 1", got)
	}
	if got := rec.count("closing/closed"); got != 1 {
		t.Errorf("observer sheds = %d, want 1 (racing accept dropped silently)", got)
	}
}

// TestConnCloseIdempotent: double Close must not double-recycle pooled
// state (two goroutines would then share one Conn).
func TestConnCloseIdempotent(t *testing.T) {
	srv, cli := net.Pipe()
	defer cli.Close()
	c := newConn(nil, srv)
	if err := c.Close(); err != nil {
		t.Fatalf("first close: %v", err)
	}
	if err := c.Close(); err != nil {
		t.Fatalf("second close: %v", err)
	}
}
