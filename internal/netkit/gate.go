package netkit

import (
	"sync"
	"sync/atomic"
	"time"

	"github.com/flux-lang/flux/internal/core"
	"github.com/flux-lang/flux/internal/runtime"
)

// Gate is the bounded-admission controller: it implements
// runtime.Observer, watches the engines' periodic queue-depth samples,
// and reports overload once the aggregate backlog crosses its
// watermark — the SEDA-style signal (queue length) the paper's §3.2
// runtimes expose, read from the same Observer plane everything else
// uses. Attach the gate to the runtime with WithObserver (MultiObserver
// composes it with other observers, and attaching it is what turns
// queue sampling on) and to the Plane through Config.Gate; the plane
// then sheds fresh connections while Overloaded, and servers consult
// Overloaded to announce `Connection: close` on keep-alive responses so
// load drains instead of queueing unboundedly.
type Gate struct {
	watermark int

	// overloaded caches the comparison so the admission hot path is one
	// atomic load per accepted connection.
	overloaded atomic.Bool

	mu     sync.Mutex
	depths map[string]int
}

// NewGate returns a gate tripping when the engines' sampled queue
// depths sum past watermark. A watermark <= 0 never trips.
func NewGate(watermark int) *Gate {
	return &Gate{watermark: watermark}
}

// NewGateObserver is the admission-gate wiring every gated server
// repeats: it builds the gate (nil when watermark <= 0) and returns
// the observer to hand the runtime — the gate composed with obs, or
// obs unchanged without one. Composing by hand invites the typed-nil
// trap (MultiObserver cannot tell a nil *Gate from a live observer);
// this helper is the one place that gets it right.
func NewGateObserver(watermark int, obs runtime.Observer) (*Gate, runtime.Observer) {
	if watermark <= 0 {
		return nil, obs
	}
	g := NewGate(watermark)
	return g, runtime.MultiObserver(obs, g)
}

// Watermark returns the configured threshold.
func (g *Gate) Watermark() int { return g.watermark }

// Overloaded reports whether the last samples exceeded the watermark.
func (g *Gate) Overloaded() bool { return g.overloaded.Load() }

// QueueDepth implements runtime.Observer: each engine queue's latest
// sample replaces its previous one, and the aggregate is compared
// against the watermark. Counter streams riding the queue-depth
// surface (runtime.CounterQueue) are not backlogs and are excluded.
func (g *Gate) QueueDepth(kind runtime.EngineKind, queue string, depth int) {
	if runtime.CounterQueue(queue) {
		return
	}
	key := kind.String() + "/" + queue
	g.mu.Lock()
	if g.depths == nil {
		g.depths = make(map[string]int)
	}
	g.depths[key] = depth
	total := 0
	for _, d := range g.depths {
		total += d
	}
	// Published under the mutex: concurrent samplers must not store
	// out of order, or a stale overload verdict could stick.
	g.overloaded.Store(g.watermark > 0 && total > g.watermark)
	g.mu.Unlock()
}

// FlowDone implements runtime.Observer; flow terminals carry no backlog
// signal, so the gate ignores them.
func (g *Gate) FlowDone(*core.FlatGraph, uint64, runtime.FlowOutcome, time.Duration) {}

// NodeDone implements runtime.Observer and is ignored.
func (g *Gate) NodeDone(*core.FlatGraph, *core.FlatNode, time.Duration) {}

var _ runtime.Observer = (*Gate)(nil)
