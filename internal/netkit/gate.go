package netkit

import (
	"sync"
	"sync/atomic"
	"time"

	"github.com/flux-lang/flux/internal/core"
	"github.com/flux-lang/flux/internal/runtime"
)

// DepthTTL is how long a queue's last depth sample stays in the gate's
// aggregate without being refreshed. Engines sample every queue on a
// short period while they run, so a healthy stream refreshes far inside
// the TTL; a stream that stops — the engine drained, was swapped on a
// restart, or stopped sampling a retired dispatcher — ages out instead
// of contributing a stale depth to the overload verdict forever. Before
// aging existed, a single high sample from a dead queue could wedge the
// gate into permanent overload.
const DepthTTL = 2 * time.Second

// Gate is the bounded-admission controller: it implements
// runtime.Observer, watches the engines' periodic queue-depth samples,
// and reports overload once the aggregate backlog crosses its
// watermark — the SEDA-style signal (queue length) the paper's §3.2
// runtimes expose, read from the same Observer plane everything else
// uses. Attach the gate to the runtime with WithObserver (MultiObserver
// composes it with other observers, and attaching it is what turns
// queue sampling on) and to the Plane through Config.Gate; the plane
// then sheds fresh connections while Overloaded, and servers consult
// Overloaded to announce `Connection: close` on keep-alive responses so
// load drains instead of queueing unboundedly.
//
// The watermark is adjustable at runtime (SetWatermark): the SLO
// controller moves it to hold a latency target, re-evaluating the
// overload verdict against the samples already held.
type Gate struct {
	// watermark is atomic so the controller can retune it while the
	// samplers run; <= 0 never trips.
	watermark atomic.Int64

	// overloaded caches the comparison so the admission hot path is one
	// atomic load per accepted connection.
	overloaded atomic.Bool

	mu     sync.Mutex
	depths map[string]depthSample

	// now is the clock, swappable in tests to drive aging
	// deterministically.
	now func() time.Time
}

// depthSample is one queue's latest depth and when it arrived.
type depthSample struct {
	depth int
	at    time.Time
}

// NewGate returns a gate tripping when the engines' sampled queue
// depths sum past watermark. A watermark <= 0 never trips.
func NewGate(watermark int) *Gate {
	g := &Gate{now: time.Now}
	g.watermark.Store(int64(watermark))
	return g
}

// NewGateObserver is the admission-gate wiring every gated server
// repeats: it builds the gate (nil when watermark <= 0) and returns
// the observer to hand the runtime — the gate composed with obs, or
// obs unchanged without one. Composing by hand invites the typed-nil
// trap (MultiObserver cannot tell a nil *Gate from a live observer);
// this helper is the one place that gets it right.
func NewGateObserver(watermark int, obs runtime.Observer) (*Gate, runtime.Observer) {
	if watermark <= 0 {
		return nil, obs
	}
	g := NewGate(watermark)
	return g, runtime.MultiObserver(obs, g)
}

// Watermark returns the current threshold.
func (g *Gate) Watermark() int { return int(g.watermark.Load()) }

// SetWatermark retunes the threshold and re-evaluates the overload
// verdict against the samples already held, so admission reacts on the
// next accept instead of waiting out a sampling period.
func (g *Gate) SetWatermark(watermark int) {
	g.watermark.Store(int64(watermark))
	g.mu.Lock()
	g.recomputeLocked(g.now())
	g.mu.Unlock()
}

// Overloaded reports whether the last samples exceeded the watermark.
func (g *Gate) Overloaded() bool { return g.overloaded.Load() }

// Refresh re-ages the sample set against the clock without taking a
// new sample. The controller calls it every control step, so a stream
// whose engine stopped sampling entirely (drained, or swapped on a
// lifecycle transition) decays out of the verdict even with no live
// sampler left to trigger the pruning.
func (g *Gate) Refresh() {
	g.mu.Lock()
	g.recomputeLocked(g.now())
	g.mu.Unlock()
}

// QueueDepth implements runtime.Observer: each engine queue's latest
// sample replaces its previous one, and the aggregate is compared
// against the watermark. Counter streams riding the queue-depth
// surface (runtime.CounterQueue) are not backlogs and are excluded;
// queues that stop sampling age out of the aggregate after DepthTTL.
func (g *Gate) QueueDepth(kind runtime.EngineKind, queue string, depth int) {
	if runtime.CounterQueue(queue) {
		return
	}
	key := kind.String() + "/" + queue
	g.mu.Lock()
	if g.depths == nil {
		g.depths = make(map[string]depthSample)
	}
	now := g.now()
	g.depths[key] = depthSample{depth: depth, at: now}
	// Published under the mutex: concurrent samplers must not store
	// out of order, or a stale overload verdict could stick.
	g.recomputeLocked(now)
	g.mu.Unlock()
}

// recomputeLocked ages out stale streams, re-sums the rest, and
// publishes the overload verdict. Callers hold g.mu.
func (g *Gate) recomputeLocked(now time.Time) {
	total := 0
	for key, s := range g.depths {
		if now.Sub(s.at) > DepthTTL {
			delete(g.depths, key)
			continue
		}
		total += s.depth
	}
	wm := g.watermark.Load()
	g.overloaded.Store(wm > 0 && int64(total) > wm)
}

// FlowDone implements runtime.Observer; flow terminals carry no backlog
// signal, so the gate ignores them.
func (g *Gate) FlowDone(*core.FlatGraph, uint64, runtime.FlowOutcome, time.Duration) {}

// NodeDone implements runtime.Observer and is ignored.
func (g *Gate) NodeDone(*core.FlatGraph, *core.FlatNode, time.Duration) {}

var _ runtime.Observer = (*Gate)(nil)
