// Package netkit is the shared connection plane of the macro servers:
// one listener/accept loop, pooled per-connection state and read
// buffers, and an admission layer with explicit overload control.
//
// Before it existed, every server hand-rolled the same accept loop and
// buffered its connections through a private ready channel whose
// `default:` branch silently dropped work under pressure. The plane
// treats connection readiness as a first-class pipeline stage instead:
// accepted connections are admitted through a single callback — for the
// Flux servers, the runtime's external-admission path
// (runtime.SourceHandle.Inject) — and load beyond a queue-depth
// watermark (Gate) or a live-connection cap (Config.MaxConns) is shed
// with an explicit 503 and a ConnShed event on the Observer plane,
// never queued unboundedly and never dropped silently.
package netkit

import (
	"bufio"
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// readerSize is the pooled bufio.Reader's buffer size — one page, the
// same size the servers used to allocate per connection.
const readerSize = 4096

var (
	connPool   = sync.Pool{New: func() any { return new(Conn) }}
	readerPool = sync.Pool{New: func() any { return bufio.NewReaderSize(nil, readerSize) }}
)

// Conn is the pooled per-connection state every server shares: the
// network connection, its buffered reader, and keep-alive bookkeeping.
// A Conn has exactly one owner at a time — the flow or goroutine
// currently servicing it — and returns itself and its reader to the
// package pools on Close, so a steady stream of connections recycles
// state instead of allocating a fresh reader buffer per accept.
type Conn struct {
	nc    net.Conn
	br    *bufio.Reader
	plane *Plane

	// Served counts requests answered on this connection; the owner
	// increments it to enforce keep-alive caps.
	Served int

	// closed makes Close idempotent: only the first caller returns the
	// state to the pools, so a plane sweep racing the owning flow's own
	// close cannot double-recycle.
	closed atomic.Bool
}

// newConn wraps an accepted connection in pooled state.
func newConn(p *Plane, nc net.Conn) *Conn {
	c := connPool.Get().(*Conn)
	br := readerPool.Get().(*bufio.Reader)
	br.Reset(nc)
	c.nc = nc
	c.br = br
	c.plane = p
	c.Served = 0
	c.closed.Store(false)
	return c
}

// Reader returns the connection's pooled buffered reader.
func (c *Conn) Reader() *bufio.Reader { return c.br }

// NetConn returns the underlying network connection.
func (c *Conn) NetConn() net.Conn { return c.nc }

// Write writes directly to the underlying connection.
func (c *Conn) Write(p []byte) (int, error) { return c.nc.Write(p) }

// SetReadDeadline bounds reads through the connection (including the
// pooled reader). Owners set it before parsing a request so a client
// that trickles bytes or parks mid-request cannot pin the connection
// forever, and clear it (the zero time) once the request is framed.
func (c *Conn) SetReadDeadline(t time.Time) error { return c.nc.SetReadDeadline(t) }

// Close closes the connection and returns its pooled state. It is
// idempotent; the first call wins. The plane's live-connection tracking
// is released here, so MaxConns accounting follows ownership exactly.
func (c *Conn) Close() error {
	if !c.closed.CompareAndSwap(false, true) {
		return nil
	}
	err := c.nc.Close()
	if c.plane != nil {
		c.plane.untrack(c)
	}
	br := c.br
	c.br = nil
	c.nc = nil
	c.plane = nil
	c.Served = 0
	br.Reset(nil) // drop the conn reference before pooling the buffer
	readerPool.Put(br)
	connPool.Put(c)
	return err
}
