// Package netkit is the shared connection plane of the macro servers:
// one listener/accept loop, pooled per-connection state and read
// buffers, and an admission layer with explicit overload control.
//
// Before it existed, every server hand-rolled the same accept loop and
// buffered its connections through a private ready channel whose
// `default:` branch silently dropped work under pressure. The plane
// treats connection readiness as a first-class pipeline stage instead:
// accepted connections are admitted through a single callback — for the
// Flux servers, the runtime's external-admission path
// (runtime.SourceHandle.Inject) — and load beyond a queue-depth
// watermark (Gate) or a live-connection cap (Config.MaxConns) is shed
// with an explicit 503 and a ConnShed event on the Observer plane,
// never queued unboundedly and never dropped silently.
package netkit

import (
	"bufio"
	"fmt"
	"io"
	"net"
	"os"
	"sync"
	"sync/atomic"
	"time"
)

// readerSize is the pooled bufio.Reader's buffer size — one page, the
// same size the servers used to allocate per connection.
const readerSize = 4096

var (
	connPool   = sync.Pool{New: func() any { return new(Conn) }}
	readerPool = sync.Pool{New: func() any { return bufio.NewReaderSize(nil, readerSize) }}
)

// Conn is the pooled per-connection state every server shares: the
// network connection, its buffered reader, and keep-alive bookkeeping.
// A Conn has exactly one owner at a time — the flow or goroutine
// currently servicing it — and returns itself and its reader to the
// package pools on Close, so a steady stream of connections recycles
// state instead of allocating a fresh reader buffer per accept.
type Conn struct {
	nc    net.Conn
	br    *bufio.Reader
	plane *Plane

	// writeTimeout, when > 0, arms a write deadline before every write
	// through the Conn (Write, WriteVec, SendFile), so a dead or
	// zero-window client cannot pin the writing goroutine forever —
	// the write-side twin of the owners' read deadlines.
	writeTimeout time.Duration

	// vec and vecBack are the reusable two-element scatter list for
	// WriteVec; kept on the Conn (not a local) so net.Buffers.WriteTo —
	// which takes the slice's address and consumes it — never forces a
	// heap allocation on the static hot path.
	vec     net.Buffers
	vecBack [2][]byte

	// Served counts requests answered on this connection; the owner
	// increments it to enforce keep-alive caps.
	Served int

	// closed makes Close idempotent: only the first caller returns the
	// state to the pools, so a plane sweep racing the owning flow's own
	// close cannot double-recycle.
	closed atomic.Bool
}

// newConn wraps an accepted connection in pooled state.
func newConn(p *Plane, nc net.Conn) *Conn {
	c := connPool.Get().(*Conn)
	br := readerPool.Get().(*bufio.Reader)
	br.Reset(nc)
	c.nc = nc
	c.br = br
	c.plane = p
	c.Served = 0
	c.writeTimeout = 0
	if p != nil {
		c.writeTimeout = p.cfg.WriteTimeout
	}
	c.closed.Store(false)
	return c
}

// Reader returns the connection's pooled buffered reader.
func (c *Conn) Reader() *bufio.Reader { return c.br }

// NetConn returns the underlying network connection.
func (c *Conn) NetConn() net.Conn { return c.nc }

// Write writes directly to the underlying connection, under the plane's
// write deadline when one is configured.
func (c *Conn) Write(p []byte) (int, error) {
	c.armWriteDeadline()
	return c.nc.Write(p)
}

// armWriteDeadline starts the write-timeout clock for the next write.
// Deadlines are re-armed per write, so a slow but progressing client is
// bounded per response, not per connection lifetime.
func (c *Conn) armWriteDeadline() {
	if c.writeTimeout > 0 {
		_ = c.nc.SetWriteDeadline(time.Now().Add(c.writeTimeout))
	}
}

// SetWriteDeadline bounds writes through the connection directly;
// owners that manage their own per-message deadlines (the BitTorrent
// peer writer) use it instead of the plane-configured WriteTimeout.
func (c *Conn) SetWriteDeadline(t time.Time) error { return c.nc.SetWriteDeadline(t) }

// WriteVec writes head and body as one response frame, vectored: on a
// TCP connection both slices go to the kernel in a single writev(2), so
// the response is never assembled in user space — the zero-copy static
// path. Non-TCP connections degrade to sequential writes inside
// net.Buffers. The frame either goes out whole or the transport is torn
// down: a short write (a write deadline expiring on a stalled client
// mid-frame) closes the underlying socket immediately, so a later owner
// cannot resume the connection mid-frame and corrupt the keep-alive
// stream. The pooled Conn state itself stays with the owner, whose
// error path retires it through Close as usual.
func (c *Conn) WriteVec(head, body []byte) error {
	c.armWriteDeadline()
	c.vecBack[0], c.vecBack[1] = head, body
	c.vec = net.Buffers(c.vecBack[:])
	want := int64(len(head) + len(body))
	n, err := c.vec.WriteTo(c.nc)
	c.vec = nil
	c.vecBack[0], c.vecBack[1] = nil, nil
	if err == nil && n != want {
		err = io.ErrShortWrite
	}
	if err != nil {
		// Tear the transport down mid-frame: the conn must never carry
		// another response after a partial one.
		_ = c.nc.Close()
		return fmt.Errorf("netkit: vectored write %d/%d bytes: %w", n, want, err)
	}
	return nil
}

// SendFile writes head, then streams size bytes from f straight to the
// socket. On a TCP connection the body moves with sendfile(2) via
// TCPConn.ReadFrom — the bytes never enter user space — and elsewhere
// it degrades to io.Copy. Like WriteVec, a short transfer tears the
// transport down so the conn cannot be reused mid-frame.
func (c *Conn) SendFile(head []byte, f *os.File, size int64) error {
	c.armWriteDeadline()
	if len(head) > 0 {
		if n, err := c.nc.Write(head); err != nil {
			_ = c.nc.Close()
			return fmt.Errorf("netkit: sendfile header %d/%d bytes: %w", n, len(head), err)
		}
	}
	// An *io.LimitedReader wrapping an *os.File is the shape
	// TCPConn.ReadFrom recognizes for sendfile(2).
	lr := io.LimitedReader{R: f, N: size}
	var n int64
	var err error
	if tc, ok := c.nc.(*net.TCPConn); ok {
		n, err = tc.ReadFrom(&lr)
	} else {
		n, err = io.Copy(c.nc, &lr)
	}
	if err == nil && n != size {
		err = io.ErrShortWrite
	}
	if err != nil {
		_ = c.nc.Close()
		return fmt.Errorf("netkit: sendfile body %d/%d bytes: %w", n, size, err)
	}
	return nil
}

// SetReadDeadline bounds reads through the connection (including the
// pooled reader). Owners set it before parsing a request so a client
// that trickles bytes or parks mid-request cannot pin the connection
// forever, and clear it (the zero time) once the request is framed.
func (c *Conn) SetReadDeadline(t time.Time) error { return c.nc.SetReadDeadline(t) }

// Close closes the connection and returns its pooled state. It is
// idempotent; the first call wins. The plane's live-connection tracking
// is released here, so MaxConns accounting follows ownership exactly.
func (c *Conn) Close() error {
	if !c.closed.CompareAndSwap(false, true) {
		return nil
	}
	err := c.nc.Close()
	if c.plane != nil {
		c.plane.untrack(c)
	}
	br := c.br
	c.br = nil
	c.nc = nil
	c.plane = nil
	c.Served = 0
	br.Reset(nil) // drop the conn reference before pooling the buffer
	readerPool.Put(br)
	connPool.Put(c)
	return err
}
