package netkit

import (
	"context"
	"fmt"
	"slices"
	"sync"
	"sync/atomic"
	"time"

	"github.com/flux-lang/flux/internal/core"
	"github.com/flux-lang/flux/internal/runtime"
)

// ctrlRingSize is the served-latency window's capacity (a power of two
// so the writer masks instead of dividing). At 4096 samples the window
// holds ~0.5 s of traffic at 8k req/s — several control intervals —
// and costs 32 KB per controller.
const (
	ctrlRingSize = 4096
	ctrlRingMask = ctrlRingSize - 1
)

// ControllerConfig tunes an SLO controller. Only Target is required.
type ControllerConfig struct {
	// Target is the served-p95 SLO: the controller moves the admission
	// watermark so the p95 of completed flows holds at or under it.
	Target time.Duration

	// Interval is the control period (default 100ms): every interval
	// the controller digests the window and takes one AIMD step.
	Interval time.Duration

	// MinWatermark / MaxWatermark clamp the gate watermark (defaults 8
	// and 4096). The floor keeps a latency spike from strangling
	// admission entirely; the ceiling bounds the backlog a recovering
	// controller can re-admit.
	MinWatermark int
	MaxWatermark int

	// Step is the additive increase per interval while under the SLO
	// (default 8) — slow probing upward, the AI of AIMD.
	Step int

	// Backoff is the multiplicative decrease factor applied while over
	// the SLO (default 0.5) — fast retreat, the MD of AIMD.
	Backoff float64

	// Band is the hysteresis band as a fraction of Target (default
	// 0.15): within Target±Band the controller holds, so boundary noise
	// cannot flap the watermark.
	Band float64

	// MinSamples is the fewest window samples the controller will act
	// on (default 16); thinner windows hold the previous decision
	// rather than chase noise.
	MinSamples int

	// ConnCapFactor sets the plane's live-connection cap to
	// factor×watermark on every step (default 2, the PR 5 heuristic
	// bounding the admission burst a between-samples window lets
	// through); <= 0 leaves the plane cap alone.
	ConnCapFactor int

	// Kind labels the controller's trajectory streams on the
	// QueueDepth surface (the engine whose pipeline it steers).
	Kind runtime.EngineKind

	// Sink, when non-nil, receives the control trajectory: one sample
	// of each runtime.Ctrl* stream per step, so harnesses can print
	// watermark/p95/shed-rate over time alongside the backlogs.
	Sink runtime.Observer

	// Sheds, when non-nil, reads the cumulative shed count (typically
	// Plane.Stats().Shed) the controller differentiates into the
	// window's shed rate.
	Sheds func() uint64
}

func (cfg ControllerConfig) withDefaults() ControllerConfig {
	if cfg.Interval <= 0 {
		cfg.Interval = 100 * time.Millisecond
	}
	if cfg.MinWatermark <= 0 {
		cfg.MinWatermark = 8
	}
	if cfg.MaxWatermark <= 0 {
		cfg.MaxWatermark = 4096
	}
	if cfg.Step <= 0 {
		cfg.Step = 8
	}
	if cfg.Backoff <= 0 || cfg.Backoff >= 1 {
		cfg.Backoff = 0.5
	}
	if cfg.Band <= 0 {
		cfg.Band = 0.15
	}
	if cfg.MinSamples <= 0 {
		cfg.MinSamples = 16
	}
	if cfg.ConnCapFactor == 0 {
		cfg.ConnCapFactor = 2
	}
	return cfg
}

// Controller is the SLO-targeting admission controller: it closes the
// loop the static watermark leaves open. The Gate converts backlog
// into sheds, but picking its watermark by hand ties the latency bound
// to one machine and one workload; the controller instead measures
// served latency on the Observer plane — every completed flow's
// elapsed time lands in a fixed ring via FlowDone, allocation-free —
// and every Interval compares the window's p95 against the Target,
// stepping the watermark (and the plane's conn cap) with AIMD:
// multiplicative decrease while over the SLO, additive increase while
// under it, a hysteresis band between so boundary noise cannot flap
// admission. This is the SEDA adaptive-overload story run on the Flux
// pipeline: the runtime exposes the measurements, the controller
// reacts in the runtime.
//
// Attach it to the runtime with WithObserver (compose with
// MultiObserver alongside the Gate) and start its control loop with
// Start; Tick is the loop body, exported so tests drive synthetic
// time deterministically.
type Controller struct {
	cfg   ControllerConfig
	gate  *Gate
	plane *Plane // may be nil: tests steer a bare gate

	// ring holds the last ctrlRingSize served latencies in nanoseconds;
	// widx is the monotonic write cursor. FlowDone is the hot path: one
	// atomic add, one masked atomic store, no allocation.
	ring [ctrlRingSize]atomic.Int64
	widx atomic.Uint64

	// Control-loop state, owned by Tick (one goroutine / one test).
	lastIdx   uint64
	lastSheds uint64
	scratch   []int64

	started  atomic.Bool
	stopOnce sync.Once
	stop     chan struct{}
	done     chan struct{}
}

// Decision is one control step's outcome, returned by Tick for tests
// and trajectory displays.
type Decision struct {
	Samples   int           // served flows digested this step
	P95       time.Duration // the window's served p95 (0 if under MinSamples)
	ShedRate  float64       // sheds/sec over the step
	Watermark int           // gate watermark after the step
	ConnCap   int           // plane conn cap after the step (0 if unmanaged)
}

func (d Decision) String() string {
	return fmt.Sprintf("n=%d p95=%v sheds/s=%.0f wm=%d cap=%d",
		d.Samples, d.P95.Round(10*time.Microsecond), d.ShedRate, d.Watermark, d.ConnCap)
}

// NewController builds a controller steering gate (required) and plane
// (optional). The gate's current watermark is the starting point.
func NewController(cfg ControllerConfig, gate *Gate, plane *Plane) (*Controller, error) {
	if cfg.Target <= 0 {
		return nil, fmt.Errorf("netkit: controller needs a Target p95")
	}
	if gate == nil {
		return nil, fmt.Errorf("netkit: controller needs a gate to steer")
	}
	cfg = cfg.withDefaults()
	c := &Controller{
		cfg:     cfg,
		gate:    gate,
		plane:   plane,
		scratch: make([]int64, 0, ctrlRingSize),
		stop:    make(chan struct{}),
		done:    make(chan struct{}),
	}
	if cfg.Sheds == nil && plane != nil {
		c.cfg.Sheds = func() uint64 { return plane.Stats().Shed }
	}
	// Start inside the clamp: a hand-picked initial watermark outside
	// [min,max] would otherwise take many steps to re-enter it.
	c.applyWatermark(clamp(gate.Watermark(), cfg.MinWatermark, cfg.MaxWatermark))
	return c, nil
}

// BindPlane attaches a connection plane built after the controller —
// hosts must wire the controller into the runtime's observer chain
// before the runtime exists, and the plane can only be opened against
// the built runtime. Call before Start; a nil plane or a second bind
// is a no-op. Binding wires the shed counter (when not already set)
// and applies the current watermark's conn cap.
func (c *Controller) BindPlane(p *Plane) {
	if p == nil || c.plane != nil {
		return
	}
	c.plane = p
	if c.cfg.Sheds == nil {
		c.cfg.Sheds = func() uint64 { return p.Stats().Shed }
	}
	c.applyWatermark(c.gate.Watermark())
}

// FlowDone implements runtime.Observer: completed flows are served
// requests, and their elapsed time is the controller's input signal.
// Errored and dropped flows carry no service latency (a disconnecting
// client is not the server being slow) and are excluded.
func (c *Controller) FlowDone(_ *core.FlatGraph, _ uint64, outcome runtime.FlowOutcome, elapsed time.Duration) {
	if outcome != runtime.FlowCompleted {
		return
	}
	i := c.widx.Add(1) - 1
	c.ring[i&ctrlRingMask].Store(int64(elapsed))
}

// NodeDone implements runtime.Observer and is ignored.
func (c *Controller) NodeDone(*core.FlatGraph, *core.FlatNode, time.Duration) {}

// QueueDepth implements runtime.Observer and is ignored — backlog is
// the Gate's signal; the controller reads latency.
func (c *Controller) QueueDepth(runtime.EngineKind, string, int) {}

// Start launches the control loop; it stops when ctx is cancelled or
// Stop is called. Starting twice is a no-op.
func (c *Controller) Start(ctx context.Context) {
	if !c.started.CompareAndSwap(false, true) {
		return
	}
	go func() {
		defer close(c.done)
		t := time.NewTicker(c.cfg.Interval)
		defer t.Stop()
		last := time.Now()
		for {
			select {
			case <-ctx.Done():
				return
			case <-c.stop:
				return
			case now := <-t.C:
				c.Tick(now.Sub(last))
				last = now
			}
		}
	}()
}

// Stop halts the control loop (idempotent, safe before Start; the
// last decision's watermark and cap remain in force).
func (c *Controller) Stop() {
	c.stopOnce.Do(func() { close(c.stop) })
	if c.started.Load() {
		<-c.done
	}
}

// Tick runs one control step over the samples recorded since the last
// step, with elapsed the wall time they cover. It is the loop body of
// Start, exported so tests can drive synthetic latency through
// FlowDone and step deterministic time.
func (c *Controller) Tick(elapsed time.Duration) Decision {
	// Age the gate's sample set: an engine that stopped sampling
	// (drained, swapped on restart) must decay out of the overload
	// verdict even though no sampler is left to trigger pruning.
	c.gate.Refresh()

	var shedRate float64
	if c.cfg.Sheds != nil && elapsed > 0 {
		cur := c.cfg.Sheds()
		shedRate = float64(cur-c.lastSheds) / elapsed.Seconds()
		c.lastSheds = cur
	}

	// Digest the window: the samples written since the last step, up to
	// ring capacity (older ones were overwritten — the window is the
	// freshest ctrlRingSize either way). Concurrent writers may overwrite
	// a slot mid-copy; an occasional newer-than-window sample is noise
	// the hysteresis band absorbs.
	w := c.widx.Load()
	n := w - c.lastIdx
	if n > ctrlRingSize {
		n = ctrlRingSize
	}
	c.lastIdx = w
	c.scratch = c.scratch[:0]
	for i := w - n; i != w; i++ {
		c.scratch = append(c.scratch, c.ring[i&ctrlRingMask].Load())
	}

	d := Decision{Samples: int(n), Watermark: c.gate.Watermark()}
	if int(n) >= c.cfg.MinSamples {
		slices.Sort(c.scratch)
		d.P95 = time.Duration(quantileInt64(c.scratch, 0.95))
		target := float64(c.cfg.Target)
		switch p95 := float64(d.P95); {
		case p95 > target*(1+c.cfg.Band):
			// Over the SLO: multiplicative decrease, and always by at
			// least one so a small watermark cannot get stuck above the
			// floor.
			next := int(float64(d.Watermark) * c.cfg.Backoff)
			if next >= d.Watermark {
				next = d.Watermark - 1
			}
			d.Watermark = clamp(next, c.cfg.MinWatermark, c.cfg.MaxWatermark)
		case p95 < target*(1-c.cfg.Band):
			// Under the SLO: additive increase — probe for throughput,
			// recover after load drops.
			d.Watermark = clamp(d.Watermark+c.cfg.Step, c.cfg.MinWatermark, c.cfg.MaxWatermark)
		}
		// Within the band: hold. The dead zone is the hysteresis that
		// keeps boundary noise from flapping admission.
	}
	d.ShedRate = shedRate
	c.applyWatermark(d.Watermark)
	if c.plane != nil && c.cfg.ConnCapFactor > 0 {
		d.ConnCap = c.plane.MaxConns()
	}

	if sink := c.cfg.Sink; sink != nil {
		sink.QueueDepth(c.cfg.Kind, runtime.CtrlWatermark, d.Watermark)
		sink.QueueDepth(c.cfg.Kind, runtime.CtrlConnCap, d.ConnCap)
		sink.QueueDepth(c.cfg.Kind, runtime.CtrlWindowP95, int(d.P95.Microseconds()))
		sink.QueueDepth(c.cfg.Kind, runtime.CtrlShedRate, int(shedRate))
	}
	return d
}

// applyWatermark publishes a watermark decision to the gate and, when
// managed, the plane's conn cap.
func (c *Controller) applyWatermark(wm int) {
	if c.gate.Watermark() != wm {
		c.gate.SetWatermark(wm)
	}
	if c.plane != nil && c.cfg.ConnCapFactor > 0 {
		if cap := c.cfg.ConnCapFactor * wm; c.plane.MaxConns() != cap {
			c.plane.SetMaxConns(cap)
		}
	}
}

// quantileInt64 mirrors the metrics package's quantile convention on a
// sorted int64 slice.
func quantileInt64(sorted []int64, q float64) int64 {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(q*float64(len(sorted))+0.5) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}

func clamp(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

var _ runtime.Observer = (*Controller)(nil)
