package netkit

import (
	"context"
	"errors"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"github.com/flux-lang/flux/internal/runtime"
)

// ErrNotStarted is returned by lifecycle methods before Start.
var ErrNotStarted = errors.New("netkit: plane not started")

// ErrPlaneClosed is returned by AdoptAndAdmit once shutdown has begun.
var ErrPlaneClosed = errors.New("netkit: plane closed")

// errReuseportUnsupported marks a platform (or forced-fallback test)
// where SO_REUSEPORT accept sharding is unavailable.
var errReuseportUnsupported = errors.New("netkit: SO_REUSEPORT unavailable")

// Config tunes a connection plane.
type Config struct {
	// Addr is the TCP listen address (default "127.0.0.1:0").
	Addr string

	// Admit consumes one admitted connection — injecting it into a Flux
	// graph through a runtime.SourceHandle, spawning a goroutine, or
	// enqueueing it on a stage. An error sheds the connection with the
	// ShedResponse ("refused"); Admit must otherwise take ownership.
	Admit func(*Conn) error

	// Gate, when non-nil, sheds fresh connections while the engine
	// backlog it watches exceeds its watermark ("overload").
	Gate *Gate

	// MaxConns, when > 0, bounds live connections; accepts beyond it are
	// shed ("conn-limit"). This is the admission bound for servers with
	// no sampled queues (one goroutine per connection). The bound is
	// adjustable while the plane runs (SetMaxConns): the SLO controller
	// moves it together with the gate watermark.
	MaxConns int

	// ShedResponse is written to a shed connection before closing — for
	// the HTTP servers, httpkit.Unavailable() (a 503 announcing
	// Connection: close). Nil sheds close silently.
	ShedResponse []byte

	// WriteTimeout, when > 0, bounds every write through an admitted
	// Conn (Write, WriteVec, SendFile): a dead or zero-window client
	// stalls the response for at most this long before the write fails
	// and the owner's error path retires the connection. 0 preserves
	// the historical block-forever behavior.
	WriteTimeout time.Duration

	// ListenShards, when > 1, opens that many SO_REUSEPORT listeners on
	// the same address, each with its own accept loop — the kernel then
	// load-balances accepts across the shards, so connections stay
	// core-local from the accept queue onward (the per-core design the
	// steal engine has, extended to the socket layer). On platforms
	// without SO_REUSEPORT (or when the option is refused) the plane
	// falls back to a single listener and serves identically; Shards()
	// reports what was actually opened. 0 or 1 opens one listener.
	ListenShards int

	// Observer, when non-nil, receives a ConnShed event for every shed
	// (it also composes into the runtime observer plane; see
	// runtime.ShedObserver).
	Observer runtime.Observer

	// Name labels the plane's observer events (default the bound
	// address).
	Name string
}

// StatsSnapshot is a point-in-time copy of a plane's counters.
type StatsSnapshot struct {
	Accepted uint64 // connections returned by Accept
	Admitted uint64 // connections handed to Admit successfully
	Shed     uint64 // connections shed (overload, conn-limit, refused, closed)
	Live     int64  // connections currently tracked
}

// Plane is the shared listener/accept/admission implementation. It owns
// the listener and every live connection's membership: connections are
// tracked from admission until their Close, so shutdown can interrupt
// reads blocked on idle keep-alive clients (without this, a graceful
// drain would hang on the first silent client).
type Plane struct {
	cfg  Config
	name string
	// lns holds one listener per accept shard: a single listener in the
	// classic configuration, Config.ListenShards SO_REUSEPORT sockets on
	// the same address when sharding is enabled and the platform
	// supports it.
	lns []net.Listener

	accepted atomic.Uint64
	admitted atomic.Uint64
	shed     atomic.Uint64
	live     atomic.Int64

	// maxConns is the live-connection bound, initialized from
	// Config.MaxConns and retunable while the accept loop runs.
	maxConns atomic.Int64

	mu      sync.Mutex
	conns   map[*Conn]net.Conn
	closing bool

	closeOnce  sync.Once
	acceptDone chan struct{}
}

// Listen opens the plane's listener shards; Start begins accepting.
// With ListenShards > 1 it attempts SO_REUSEPORT sharding and falls
// back — silently, serving identically — to one listener when the
// platform or socket refuses the option.
func Listen(cfg Config) (*Plane, error) {
	if cfg.Addr == "" {
		cfg.Addr = "127.0.0.1:0"
	}
	var lns []net.Listener
	if cfg.ListenShards > 1 {
		lns, _ = listenReuseport(cfg.Addr, cfg.ListenShards)
	}
	if len(lns) == 0 {
		ln, err := net.Listen("tcp", cfg.Addr)
		if err != nil {
			return nil, err
		}
		lns = []net.Listener{ln}
	}
	name := cfg.Name
	if name == "" {
		name = lns[0].Addr().String()
	}
	p := &Plane{cfg: cfg, name: name, lns: lns, conns: make(map[*Conn]net.Conn)}
	p.maxConns.Store(int64(cfg.MaxConns))
	return p, nil
}

// Shards reports how many accept shards the plane actually opened (1
// when REUSEPORT sharding was not requested or not available).
func (p *Plane) Shards() int { return len(p.lns) }

// MaxConns returns the current live-connection bound (0 = unbounded).
func (p *Plane) MaxConns() int { return int(p.maxConns.Load()) }

// SetMaxConns retunes the live-connection bound; <= 0 removes it.
// Connections already admitted are never evicted — a lowered cap only
// sheds fresh accepts until attrition brings the live count under it.
func (p *Plane) SetMaxConns(n int) { p.maxConns.Store(int64(n)) }

// Addr returns the bound listen address (all shards share it).
func (p *Plane) Addr() string { return p.lns[0].Addr().String() }

// Stats returns the plane's counters.
func (p *Plane) Stats() StatsSnapshot {
	return StatsSnapshot{
		Accepted: p.accepted.Load(),
		Admitted: p.admitted.Load(),
		Shed:     p.shed.Load(),
		Live:     p.live.Load(),
	}
}

// Overloaded reports the gate's current overload state (false without a
// gate). Servers consult it per response to announce Connection: close
// while the engine backlog is past the watermark.
func (p *Plane) Overloaded() bool {
	return p.cfg.Gate != nil && p.cfg.Gate.Overloaded()
}

// Start launches the accept loop. The context governs the plane's
// lifetime: when it is cancelled the listener closes and every live
// connection is interrupted, exactly as Shutdown does.
func (p *Plane) Start(ctx context.Context) error {
	p.acceptDone = make(chan struct{})
	var loops sync.WaitGroup
	for _, ln := range p.lns {
		loops.Add(1)
		go func(ln net.Listener) {
			defer loops.Done()
			p.acceptLoop(ln)
		}(ln)
	}
	go func() {
		loops.Wait()
		close(p.acceptDone)
	}()
	go func() {
		select {
		case <-ctx.Done():
			p.beginShutdown()
		case <-p.acceptDone:
		}
	}()
	return nil
}

func (p *Plane) acceptLoop(ln net.Listener) {
	for {
		nc, err := ln.Accept()
		if err != nil {
			return // listener closed
		}
		p.accepted.Add(1)
		c := newConn(p, nc)
		maxConns := p.maxConns.Load()
		switch {
		case maxConns > 0 && p.live.Load() >= maxConns:
			p.ShedConn(c, "conn-limit")
		case p.cfg.Gate != nil && p.cfg.Gate.Overloaded():
			p.ShedConn(c, "overload")
		default:
			if !p.track(c) {
				// Accepted an instant after shutdown began: shed it
				// like any other refusal — counted and observed, never
				// handed to Admit on a doomed socket.
				p.ShedConn(c, "closed")
				continue
			}
			if err := p.cfg.Admit(c); err != nil {
				p.ShedConn(c, "refused")
			} else {
				p.admitted.Add(1)
			}
		}
	}
}

// AdoptAndAdmit wraps an outbound (dialed) connection in pooled Conn
// state, tracks it on the plane, and hands it to Admit — the symmetric
// entry point for connections the server initiated itself (a BitTorrent
// peer dialing into a swarm). Dialed connections bypass the gate and
// conn cap: the server chose to open them, so overload control belongs
// at the dial decision, not here. On any failure the connection is
// dropped and counted like a refused accept.
func (p *Plane) AdoptAndAdmit(nc net.Conn) error {
	c := newConn(p, nc)
	if !p.track(c) {
		p.dropConn(c, "closed")
		return ErrPlaneClosed
	}
	if err := p.cfg.Admit(c); err != nil {
		p.dropConn(c, "refused")
		return err
	}
	p.admitted.Add(1)
	return nil
}

// ShedConn sheds a connection the server cannot serve right now: the
// shed response (503 with Connection: close for the HTTP servers) is
// written, the connection closes, and the drop is counted and routed
// through the Observer plane — never a silent default-branch close.
func (p *Plane) ShedConn(c *Conn, reason string) {
	if p.cfg.ShedResponse != nil {
		if _, err := c.Write(p.cfg.ShedResponse); err == nil {
			p.shed.Add(1)
			runtime.ConnShed(p.cfg.Observer, p.name, reason)
			// Closing off the accept goroutine: the drain below can wait
			// on the client, and sheds are exactly when accepts must not
			// stall.
			go drainAndClose(c)
			return
		}
	}
	p.dropConn(c, reason)
}

// Bounds for draining a shed connection before closing it.
const (
	shedDrainLimit   = 64 << 10
	shedDrainTimeout = 500 * time.Millisecond
)

// drainAndClose half-closes a shed connection and consumes whatever
// request bytes the client already sent before closing it. Closing
// with unread bytes in the receive queue makes the kernel answer with
// RST, which can destroy the in-flight 503 on the client side — the
// shed would then surface as a read error and corrupt the very
// sheds-vs-errors split overload measurements depend on. The FIN from
// CloseWrite tells the client the response is complete; the bounded
// drain absorbs its pipeline until it hangs up.
func drainAndClose(c *Conn) {
	if tc, ok := c.nc.(*net.TCPConn); ok {
		_ = tc.CloseWrite()
	}
	_ = c.nc.SetReadDeadline(time.Now().Add(shedDrainTimeout))
	_, _ = io.CopyN(io.Discard, c.nc, shedDrainLimit)
	c.Close()
}

// DropConn sheds a connection without writing a response — the
// between-requests variant (no request is outstanding to answer, e.g. a
// keep-alive re-registration refused by a draining engine).
func (p *Plane) DropConn(c *Conn, reason string) {
	p.dropConn(c, reason)
}

func (p *Plane) dropConn(c *Conn, reason string) {
	p.shed.Add(1)
	c.Close()
	runtime.ConnShed(p.cfg.Observer, p.name, reason)
}

// CountShed records a shed without touching any connection — for sheds
// whose close is owned by the flow that detected them (a read-deadline
// timeout still runs its error terminal, and Close pools the conn, so
// the plane must not race it with a second close).
func (p *Plane) CountShed(reason string) {
	p.shed.Add(1)
	runtime.ConnShed(p.cfg.Observer, p.name, reason)
}

// track registers a connection as live, reporting false when the plane
// is already closing — an accept racing shutdown must be shed by the
// caller, not admitted onto a plane whose sweep has already run.
func (p *Plane) track(c *Conn) bool {
	p.mu.Lock()
	if p.closing {
		p.mu.Unlock()
		return false
	}
	p.conns[c] = c.nc
	p.mu.Unlock()
	p.live.Add(1)
	return true
}

// untrack releases a connection's membership (from Conn.Close).
func (p *Plane) untrack(c *Conn) {
	p.mu.Lock()
	_, ok := p.conns[c]
	if ok {
		delete(p.conns, c)
	}
	p.mu.Unlock()
	if ok {
		p.live.Add(-1)
	}
}

// beginShutdown closes the listener and interrupts every live
// connection: reads blocked on idle keep-alive clients fail, their
// flows run to their error terminals, and the runtime's drain can
// complete. Idempotent; owners still retire their Conn state through
// the usual Close.
func (p *Plane) beginShutdown() {
	p.closeOnce.Do(func() {
		for _, ln := range p.lns {
			ln.Close()
		}
		p.mu.Lock()
		p.closing = true
		ncs := make([]net.Conn, 0, len(p.conns))
		for _, nc := range p.conns {
			ncs = append(ncs, nc)
		}
		p.mu.Unlock()
		for _, nc := range ncs {
			nc.Close()
		}
	})
}

// Shutdown stops the plane: no more accepts, every live connection
// interrupted. It blocks until the accept loop retires or ctx expires.
// Safe to call concurrently, more than once, and even before Start (the
// listener still closes).
func (p *Plane) Shutdown(ctx context.Context) error {
	p.beginShutdown()
	if p.acceptDone == nil {
		return nil
	}
	select {
	case <-p.acceptDone:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Wait blocks until the accept loop has retired.
func (p *Plane) Wait() error {
	if p.acceptDone == nil {
		return ErrNotStarted
	}
	<-p.acceptDone
	return nil
}
