package netkit

import (
	"context"
	"net"

	"github.com/flux-lang/flux/internal/runtime"
)

// FluxPlane binds a Flux runtime server to a connection plane: the
// canonical wiring of a netkit-admitted Flux server, shared by the web
// and image servers so the admission path, shutdown ordering, and
// keep-alive re-registration policy live in exactly one place.
// Admission injects each accepted connection as a flow on the named
// source's graph through a pre-resolved SourceHandle — the runtime's
// external-admission fast path.
type FluxPlane struct {
	rt    *runtime.Server
	src   *runtime.SourceHandle
	plane *Plane
	gate  *Gate
}

// NewFluxPlane resolves the admission source on rt and opens the
// plane. cfg.Admit is owned by the binding (injection through the
// handle); cfg.Gate should come from NewGateObserver so the runtime's
// observer plane includes it and queue sampling runs.
func NewFluxPlane(rt *runtime.Server, source string, cfg Config) (*FluxPlane, error) {
	fp := &FluxPlane{rt: rt, gate: cfg.Gate}
	h, err := rt.Source(source)
	if err != nil {
		return nil, err
	}
	fp.src = h
	cfg.Admit = fp.admit
	if fp.plane, err = Listen(cfg); err != nil {
		return nil, err
	}
	return fp, nil
}

// admit injects a fresh connection into the graph — the only way flows
// enter a plane-fronted server.
func (fp *FluxPlane) admit(c *Conn) error {
	return fp.src.Inject(runtime.Record{c})
}

// AdmitDialed adopts an outbound connection the server dialed itself
// onto the plane and injects it through the same source fresh accepts
// take — so a peer-to-peer server's dialed and accepted connections
// share one admission path, one tracked-conn sweep, and one shed
// ledger.
func (fp *FluxPlane) AdmitDialed(nc net.Conn) error {
	return fp.plane.AdoptAndAdmit(nc)
}

// Reinject re-admits a live connection: keep-alive re-registration
// through the same Inject path fresh accepts take. A refusal (the
// server is draining) drops the connection through the plane, which
// counts and reports it.
func (fp *FluxPlane) Reinject(c *Conn) {
	if err := fp.src.Inject(runtime.Record{c}); err != nil {
		fp.plane.DropConn(c, "closed")
	}
}

// Addr returns the bound listen address.
func (fp *FluxPlane) Addr() string { return fp.plane.Addr() }

// Gate returns the admission gate (nil when unbounded).
func (fp *FluxPlane) Gate() *Gate { return fp.gate }

// Shards reports how many accept shards the plane opened.
func (fp *FluxPlane) Shards() int { return fp.plane.Shards() }

// Plane returns the underlying connection plane — the controller
// adapts its conn cap, and owners shed timed-out connections through
// it.
func (fp *FluxPlane) Plane() *Plane { return fp.plane }

// CountShed records a shed whose close is owned elsewhere — the path
// for server-side read timeouts (slow-loris heads, dead keep-alive
// peers), where the flow's own error terminal closes the connection
// and the plane must only account for it.
func (fp *FluxPlane) CountShed(reason string) { fp.plane.CountShed(reason) }

// Overloaded reports the gate's overload state (false without a gate).
func (fp *FluxPlane) Overloaded() bool { return fp.plane.Overloaded() }

// PlaneStats returns the plane's admission counters.
func (fp *FluxPlane) PlaneStats() StatsSnapshot { return fp.plane.Stats() }

// Start launches the runtime, then the accept loop — admission must be
// live before the first connection is injected.
func (fp *FluxPlane) Start(ctx context.Context) error {
	if err := fp.rt.Start(ctx); err != nil {
		return err
	}
	return fp.plane.Start(ctx)
}

// Shutdown stops the plane first — accepts stop and live connections
// are interrupted, so flows blocked reading idle keep-alive clients
// reach their error terminals — then the runtime stops admitting and
// drains in-flight flows until their terminals or ctx expires.
// Re-registrations racing the shutdown are refused by Inject and their
// connections dropped and counted.
func (fp *FluxPlane) Shutdown(ctx context.Context) error {
	err := fp.plane.Shutdown(ctx)
	if err2 := fp.rt.Shutdown(ctx); err == nil {
		err = err2
	}
	return err
}

// Wait blocks until the runtime's run ends and the accept loop has
// retired, returning the run's error.
func (fp *FluxPlane) Wait() error {
	err := fp.rt.Wait()
	_ = fp.plane.Wait()
	return err
}
