package netkit

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"net"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"github.com/flux-lang/flux/internal/servers/httpkit"
)

// tcpPair returns a connected loopback pair (server side first), both
// closed at test end.
func tcpPair(t testing.TB) (server, client net.Conn) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	done := make(chan struct{})
	go func() {
		defer close(done)
		client, err = net.Dial("tcp", ln.Addr().String())
	}()
	server, aerr := ln.Accept()
	<-done
	if err != nil || aerr != nil {
		t.Fatalf("pair: dial=%v accept=%v", err, aerr)
	}
	t.Cleanup(func() { server.Close(); client.Close() })
	return server, client
}

// TestWriteVecDeliversOneFrame: header and body written vectored arrive
// as the exact concatenation a contiguous write would have produced —
// the zero-copy path is wire-identical to the copy path.
func TestWriteVecDeliversOneFrame(t *testing.T) {
	server, client := tcpPair(t)
	c := newConn(nil, server)
	defer c.Close()

	body := bytes.Repeat([]byte("x"), 9000) // larger than one segment
	head := httpkit.StaticHeader(200, "OK", "text/html", len(body), false)
	errc := make(chan error, 1)
	go func() { errc <- c.WriteVec(head, body) }()

	want := append(append([]byte{}, head...), body...)
	got := make([]byte, len(want))
	if _, err := io.ReadFull(client, got); err != nil {
		t.Fatalf("read: %v", err)
	}
	if err := <-errc; err != nil {
		t.Fatalf("WriteVec: %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("vectored frame differs from contiguous render")
	}
}

// TestSendFileDeliversFile: a materialized body streams through
// SendFile (sendfile(2) on TCP) byte-identical to the source file,
// prefixed by the header blob.
func TestSendFileDeliversFile(t *testing.T) {
	server, client := tcpPair(t)
	c := newConn(nil, server)
	defer c.Close()

	body := bytes.Repeat([]byte("sendfile body "), 10000)
	name := filepath.Join(t.TempDir(), "body")
	if err := os.WriteFile(name, body, 0o644); err != nil {
		t.Fatal(err)
	}
	head := httpkit.StaticHeader(200, "OK", "text/html", len(body), true)

	errc := make(chan error, 1)
	go func() {
		f, err := os.Open(name)
		if err != nil {
			errc <- err
			return
		}
		defer f.Close()
		errc <- c.SendFile(head, f, int64(len(body)))
	}()

	want := append(append([]byte{}, head...), body...)
	got := make([]byte, len(want))
	if _, err := io.ReadFull(client, got); err != nil {
		t.Fatalf("read: %v", err)
	}
	if err := <-errc; err != nil {
		t.Fatalf("SendFile: %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("sendfile frame differs from source file")
	}
}

// TestWriteDeadlinePopsOnStalledClient: with a write timeout armed, a
// client that stops draining its socket fails the server's write with a
// timeout error instead of pinning the writer forever.
func TestWriteDeadlinePopsOnStalledClient(t *testing.T) {
	server, _ := tcpPair(t) // client never reads
	c := newConn(nil, server)
	defer c.Close()
	c.writeTimeout = 100 * time.Millisecond

	buf := make([]byte, 1<<20)
	deadline := time.Now().Add(10 * time.Second)
	var err error
	for time.Now().Before(deadline) {
		if _, err = c.Write(buf); err != nil {
			break
		}
	}
	var ne net.Error
	if !errors.As(err, &ne) || !ne.Timeout() {
		t.Fatalf("stalled write error = %v, want net.Error timeout", err)
	}
}

// blockingConn is a fake transport that accepts a bounded number of
// bytes and then fails with a timeout — a write deadline popping on a
// zero-window client mid-frame.
type blockingConn struct {
	limit  int
	wrote  bytes.Buffer
	closed bool
}

type fakeTimeout struct{}

func (fakeTimeout) Error() string   { return "i/o timeout" }
func (fakeTimeout) Timeout() bool   { return true }
func (fakeTimeout) Temporary() bool { return true }

func (b *blockingConn) Write(p []byte) (int, error) {
	room := b.limit - b.wrote.Len()
	if room <= 0 {
		return 0, fakeTimeout{}
	}
	if len(p) <= room {
		b.wrote.Write(p)
		return len(p), nil
	}
	b.wrote.Write(p[:room])
	return room, fakeTimeout{}
}

func (b *blockingConn) Read([]byte) (int, error)           { return 0, io.EOF }
func (b *blockingConn) Close() error                       { b.closed = true; return nil }
func (b *blockingConn) LocalAddr() net.Addr                { return &net.TCPAddr{} }
func (b *blockingConn) RemoteAddr() net.Addr               { return &net.TCPAddr{} }
func (b *blockingConn) SetDeadline(time.Time) error        { return nil }
func (b *blockingConn) SetReadDeadline(t time.Time) error  { return nil }
func (b *blockingConn) SetWriteDeadline(t time.Time) error { return nil }

// TestWriteVecShortWriteTearsDown: a frame that stalls partway must
// tear the transport down — the connection can never carry another
// response after a partial one — and surface the timeout to the caller
// so the owner can count the shed.
func TestWriteVecShortWriteTearsDown(t *testing.T) {
	head := []byte("HTTP/1.1 200 OK\r\nContent-Length: 5\r\n\r\n")
	fc := &blockingConn{limit: len(head) + 2} // dies mid-body
	c := newConn(nil, fc)

	err := c.WriteVec(head, []byte("hello"))
	if err == nil {
		t.Fatal("short write returned nil error")
	}
	var ne net.Error
	if !errors.As(err, &ne) || !ne.Timeout() {
		t.Fatalf("error = %v, want wrapped net.Error timeout", err)
	}
	if !fc.closed {
		t.Fatal("underlying transport left open after a partial frame")
	}
	// The pooled state still has exactly one owner close.
	c.Close()
}

// echoPlane serves one request line per connection, echoing it back.
func echoPlane(t *testing.T, cfg Config) *Plane {
	t.Helper()
	cfg.Admit = func(c *Conn) error {
		go func() {
			line, err := c.Reader().ReadString('\n')
			if err == nil {
				fmt.Fprintf(c, "echo %s", line)
			}
			c.Close()
		}()
		return nil
	}
	p, stop := startPlane(t, cfg)
	t.Cleanup(stop)
	return p
}

func dialEcho(t *testing.T, addr string, i int) {
	t.Helper()
	conn, err := net.DialTimeout("tcp", addr, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	fmt.Fprintf(conn, "hello %d\n", i)
	out, err := io.ReadAll(conn)
	if err != nil {
		t.Fatal(err)
	}
	if want := fmt.Sprintf("echo hello %d\n", i); string(out) != want {
		t.Fatalf("got %q, want %q", out, want)
	}
}

// TestListenShardsServe: with SO_REUSEPORT available the plane opens
// the requested shard count and serves across all of them.
func TestListenShardsServe(t *testing.T) {
	if !reuseportAvailable {
		t.Skip("SO_REUSEPORT unsupported on this platform")
	}
	p := echoPlane(t, Config{ListenShards: 3})
	if got := p.Shards(); got != 3 {
		t.Fatalf("Shards() = %d, want 3", got)
	}
	var wg sync.WaitGroup
	for i := 0; i < 30; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			dialEcho(t, p.Addr(), i)
		}(i)
	}
	wg.Wait()
	if st := p.Stats(); st.Accepted != 30 {
		t.Fatalf("accepted = %d, want 30", st.Accepted)
	}
}

// TestListenShardsFallback: without SO_REUSEPORT (forced via the test
// hook) the plane falls back to a single listener and serves
// identically — the cross-platform guarantee.
func TestListenShardsFallback(t *testing.T) {
	saved := reuseportAvailable
	reuseportAvailable = false
	defer func() { reuseportAvailable = saved }()

	p := echoPlane(t, Config{ListenShards: 3})
	if got := p.Shards(); got != 1 {
		t.Fatalf("Shards() = %d, want 1 (fallback)", got)
	}
	for i := 0; i < 10; i++ {
		dialEcho(t, p.Addr(), i)
	}
}

// BenchmarkStaticResponseWrite is the CI-gated static hot path: header
// blob lookup plus one vectored write per response. The allocation
// budget is zero — any per-response allocation is a regression the
// benchdiff gate fails.
func BenchmarkStaticResponseWrite(b *testing.B) {
	server, client := tcpPair(b)
	go io.Copy(io.Discard, client)
	c := newConn(nil, server)
	defer c.Close()

	body := bytes.Repeat([]byte("b"), 4096)
	b.SetBytes(int64(len(body)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		head := httpkit.StaticHeader(200, "OK", "text/html", len(body), false)
		if err := c.WriteVec(head, body); err != nil {
			b.Fatal(err)
		}
	}
}
