//go:build linux

package netkit

import (
	"context"
	"net"
	"syscall"
)

// soReusePort is SO_REUSEPORT on Linux (the frozen syscall package
// predates the option, so the constant lives here).
const soReusePort = 0xf

// reuseportAvailable gates the sharded-listener attempt; tests flip it
// off to exercise the single-listener fallback on platforms that do
// support SO_REUSEPORT.
var reuseportAvailable = true

// listenReuseport opens n TCP listeners on addr, each with SO_REUSEPORT
// set before bind so the kernel splits the accept queue across them.
// The first listener resolves an ephemeral port; the rest bind the
// resolved address. Any failure closes what was opened and reports the
// error — the caller falls back to a single ordinary listener.
func listenReuseport(addr string, n int) ([]net.Listener, error) {
	if !reuseportAvailable {
		return nil, errReuseportUnsupported
	}
	lc := net.ListenConfig{
		Control: func(network, address string, c syscall.RawConn) error {
			var serr error
			if err := c.Control(func(fd uintptr) {
				serr = syscall.SetsockoptInt(int(fd), syscall.SOL_SOCKET, soReusePort, 1)
			}); err != nil {
				return err
			}
			return serr
		},
	}
	lns := make([]net.Listener, 0, n)
	first, err := lc.Listen(context.Background(), "tcp", addr)
	if err != nil {
		return nil, err
	}
	lns = append(lns, first)
	bound := first.Addr().String()
	for len(lns) < n {
		ln, err := lc.Listen(context.Background(), "tcp", bound)
		if err != nil {
			for _, l := range lns {
				l.Close()
			}
			return nil, err
		}
		lns = append(lns, ln)
	}
	return lns, nil
}
