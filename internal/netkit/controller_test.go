package netkit

import (
	"context"
	"sync"
	"testing"
	"time"

	"github.com/flux-lang/flux/internal/core"
	"github.com/flux-lang/flux/internal/runtime"
)

// feedServed pushes n completed-flow latency samples through the
// controller's Observer hot path.
func feedServed(c *Controller, n int, d time.Duration) {
	for i := 0; i < n; i++ {
		c.FlowDone(nil, 0, runtime.FlowCompleted, d)
	}
}

// testController builds a controller over a fresh gate with small,
// round numbers the assertions below can predict exactly.
func testController(t *testing.T, initialWM int) (*Controller, *Gate) {
	t.Helper()
	g := NewGate(initialWM)
	c, err := NewController(ControllerConfig{
		Target:       30 * time.Millisecond,
		MinWatermark: 8,
		MaxWatermark: 512,
		Step:         8,
		Backoff:      0.5,
		Band:         0.15,
		MinSamples:   16,
	}, g, nil)
	if err != nil {
		t.Fatalf("NewController: %v", err)
	}
	return c, g
}

// TestControllerAIMDStepBounds: over the SLO the watermark halves per
// step and floors at MinWatermark; under it the watermark grows by
// exactly Step and caps at MaxWatermark.
func TestControllerAIMDStepBounds(t *testing.T) {
	c, g := testController(t, 256)

	// Multiplicative decrease: 256 → 128 → 64 → 32 → 16 → 8, floor 8.
	for _, want := range []int{128, 64, 32, 16, 8, 8, 8} {
		feedServed(c, 64, 100*time.Millisecond) // p95 far over 30ms
		d := c.Tick(100 * time.Millisecond)
		if d.Watermark != want || g.Watermark() != want {
			t.Fatalf("decrease: got wm %d (gate %d), want %d", d.Watermark, g.Watermark(), want)
		}
	}

	// Additive increase: 8 → 16 → 24 → ... capped at 512.
	for want := 16; want <= 512; want += 8 {
		feedServed(c, 64, time.Millisecond) // p95 far under 30ms
		if d := c.Tick(100 * time.Millisecond); d.Watermark != want {
			t.Fatalf("increase: got wm %d, want %d", d.Watermark, want)
		}
	}
	for i := 0; i < 3; i++ {
		feedServed(c, 64, time.Millisecond)
		if d := c.Tick(100 * time.Millisecond); d.Watermark != 512 {
			t.Fatalf("ceiling: got wm %d, want 512", d.Watermark)
		}
	}
}

// TestControllerHysteresisHolds: p95 noise inside the Target±Band dead
// zone must not move the watermark — the no-flapping guarantee.
func TestControllerHysteresisHolds(t *testing.T) {
	c, g := testController(t, 64)
	for i := 0; i < 20; i++ {
		// Alternate samples 10% under and 10% over target: the window
		// p95 lands ~1.1×target, inside the 15% band.
		for j := 0; j < 32; j++ {
			d := 27 * time.Millisecond
			if j%2 == 0 {
				d = 33 * time.Millisecond
			}
			feedServed(c, 1, d)
		}
		if dec := c.Tick(100 * time.Millisecond); dec.Watermark != 64 {
			t.Fatalf("tick %d: watermark moved to %d on boundary noise (p95 %v)",
				i, dec.Watermark, dec.P95)
		}
	}
	if g.Watermark() != 64 {
		t.Fatalf("gate watermark drifted to %d", g.Watermark())
	}
}

// TestControllerRecoveryAfterLoadDrop: a latency storm collapses the
// watermark; once load drops and served latency returns under the SLO,
// additive increase restores admission.
func TestControllerRecoveryAfterLoadDrop(t *testing.T) {
	c, _ := testController(t, 256)
	for i := 0; i < 6; i++ {
		feedServed(c, 64, 200*time.Millisecond)
		c.Tick(100 * time.Millisecond)
	}
	if wm := c.Tick(100 * time.Millisecond).Watermark; wm != 8 {
		t.Fatalf("storm: watermark %d, want floor 8", wm)
	}
	// Load drops: latency is healthy again. The controller must walk
	// back up, +Step per interval, until it re-reaches the ceiling.
	steps := 0
	for {
		feedServed(c, 64, 2*time.Millisecond)
		d := c.Tick(100 * time.Millisecond)
		steps++
		if d.Watermark == 512 {
			break
		}
		if steps > 100 {
			t.Fatalf("no recovery after %d steps (wm %d)", steps, d.Watermark)
		}
	}
	if want := (512 - 8) / 8; steps != want {
		t.Fatalf("recovery took %d steps, want exactly %d (additive step bound)", steps, want)
	}
}

// TestControllerHoldsUnderMinSamples: a thin window is noise, not
// signal — the previous decision stands.
func TestControllerHoldsUnderMinSamples(t *testing.T) {
	c, _ := testController(t, 64)
	feedServed(c, 15, 500*time.Millisecond) // under MinSamples=16, however slow
	d := c.Tick(100 * time.Millisecond)
	if d.Watermark != 64 || d.P95 != 0 {
		t.Fatalf("thin window acted: %+v", d)
	}
	if d.Samples != 15 {
		t.Fatalf("samples = %d, want 15", d.Samples)
	}
}

// TestControllerConnCapFollowsWatermark: with a plane attached, every
// watermark decision re-derives the live-connection cap.
func TestControllerConnCapFollowsWatermark(t *testing.T) {
	g := NewGate(64)
	p, err := Listen(Config{Admit: func(c *Conn) error { c.Close(); return nil }})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Shutdown(context.Background()) // never started: closes the listener only
	c, err := NewController(ControllerConfig{
		Target: 30 * time.Millisecond, MinWatermark: 8, MaxWatermark: 512,
		Step: 8, Backoff: 0.5, Band: 0.15, MinSamples: 16, ConnCapFactor: 2,
	}, g, p)
	if err != nil {
		t.Fatal(err)
	}
	if got := p.MaxConns(); got != 128 {
		t.Fatalf("initial cap %d, want 2×64", got)
	}
	feedServed(c, 64, 100*time.Millisecond)
	d := c.Tick(100 * time.Millisecond)
	if d.Watermark != 32 || d.ConnCap != 64 || p.MaxConns() != 64 {
		t.Fatalf("after decrease: %+v, plane cap %d", d, p.MaxConns())
	}
}

// trajectorySink records the controller's decision streams.
type trajectorySink struct {
	mu      sync.Mutex
	samples map[string][]int
}

func (s *trajectorySink) QueueDepth(_ runtime.EngineKind, queue string, depth int) {
	s.mu.Lock()
	if s.samples == nil {
		s.samples = make(map[string][]int)
	}
	s.samples[queue] = append(s.samples[queue], depth)
	s.mu.Unlock()
}
func (s *trajectorySink) FlowDone(_ *core.FlatGraph, _ uint64, _ runtime.FlowOutcome, _ time.Duration) {
}
func (s *trajectorySink) NodeDone(*core.FlatGraph, *core.FlatNode, time.Duration) {}

// TestControllerTrajectoryStreams: every step emits one sample of each
// ctrl/* stream to the sink, and the gate (sharing the observer plane)
// must not sum those gauges as backlog.
func TestControllerTrajectoryStreams(t *testing.T) {
	g := NewGate(64)
	sink := &trajectorySink{}
	c, err := NewController(ControllerConfig{
		Target: 30 * time.Millisecond, MinWatermark: 8, MaxWatermark: 512,
		Step: 8, Backoff: 0.5, Band: 0.15, MinSamples: 16,
		Sink: sink,
	}, g, nil)
	if err != nil {
		t.Fatal(err)
	}
	feedServed(c, 64, 100*time.Millisecond)
	c.Tick(100 * time.Millisecond)
	feedServed(c, 64, time.Millisecond)
	c.Tick(100 * time.Millisecond)

	sink.mu.Lock()
	defer sink.mu.Unlock()
	for _, stream := range []string{
		runtime.CtrlWatermark, runtime.CtrlConnCap, runtime.CtrlWindowP95, runtime.CtrlShedRate,
	} {
		if got := len(sink.samples[stream]); got != 2 {
			t.Errorf("stream %s: %d samples, want 2", stream, got)
		}
	}
	if wm := sink.samples[runtime.CtrlWatermark]; wm[0] != 32 || wm[1] != 40 {
		t.Errorf("watermark trajectory %v, want [32 40]", wm)
	}

	// The gate ignores controller gauges on the shared surface.
	g2 := NewGate(10)
	g2.QueueDepth(runtime.EventDriven, runtime.CtrlWindowP95, 1_000_000)
	if g2.Overloaded() {
		t.Error("gate summed a ctrl/* gauge as backlog")
	}
}

// TestControllerShedRate: the controller differentiates the cumulative
// shed counter into a per-second rate over the step window.
func TestControllerShedRate(t *testing.T) {
	g := NewGate(64)
	var sheds uint64
	c, err := NewController(ControllerConfig{
		Target: 30 * time.Millisecond, MinSamples: 16,
		Sheds: func() uint64 { return sheds },
	}, g, nil)
	if err != nil {
		t.Fatal(err)
	}
	sheds = 50
	if d := c.Tick(500 * time.Millisecond); d.ShedRate != 100 {
		t.Fatalf("shed rate %.1f, want 100/s", d.ShedRate)
	}
	if d := c.Tick(500 * time.Millisecond); d.ShedRate != 0 {
		t.Fatalf("shed rate %.1f after quiet window, want 0", d.ShedRate)
	}
}

// TestControllerFlowDoneZeroAlloc pins the acceptance criterion: the
// controller's FlowDone must add zero allocations to the flow-terminal
// hot path.
func TestControllerFlowDoneZeroAlloc(t *testing.T) {
	c, _ := testController(t, 64)
	allocs := testing.AllocsPerRun(1000, func() {
		c.FlowDone(nil, 0, runtime.FlowCompleted, 5*time.Millisecond)
	})
	if allocs != 0 {
		t.Fatalf("FlowDone allocates %.1f per call, want 0", allocs)
	}
}

// BenchmarkControllerFlowDone rides the benchdiff gate alongside
// BenchmarkInject: the served-latency ring write is the only cost the
// controller adds per flow terminal.
func BenchmarkControllerFlowDone(b *testing.B) {
	g := NewGate(64)
	c, err := NewController(ControllerConfig{Target: 30 * time.Millisecond}, g, nil)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.FlowDone(nil, 0, runtime.FlowCompleted, 5*time.Millisecond)
	}
}

// TestGateDepthStaleness is the regression test for the wedged-verdict
// bug: a queue that stops sampling (engine drained or swapped on a
// lifecycle transition) must age out of the aggregate instead of
// pinning the gate overloaded forever.
func TestGateDepthStaleness(t *testing.T) {
	g := NewGate(10)
	now := time.Unix(1000, 0)
	g.now = func() time.Time { return now }

	// A burst trips the gate, then that engine's sampler dies.
	g.QueueDepth(runtime.EventDriven, "events", 100)
	if !g.Overloaded() {
		t.Fatal("gate did not trip")
	}

	// A different, healthy queue keeps sampling low depths. Before
	// aging, the dead stream's 100 stayed in the sum forever and the
	// verdict could never clear.
	now = now.Add(DepthTTL + time.Second)
	g.QueueDepth(runtime.WorkStealing, "d0", 1)
	if g.Overloaded() {
		t.Fatal("stale queue sample wedged the overload verdict")
	}

	// Refresh alone (no live samplers at all — full engine swap) must
	// also decay the verdict.
	g.QueueDepth(runtime.WorkStealing, "d0", 100)
	if !g.Overloaded() {
		t.Fatal("gate did not re-trip")
	}
	now = now.Add(DepthTTL + time.Second)
	g.Refresh()
	if g.Overloaded() {
		t.Fatal("Refresh did not age out a dead engine's samples")
	}

	// A live stream refreshing inside the TTL is never aged.
	g.QueueDepth(runtime.EventDriven, "events", 100)
	now = now.Add(DepthTTL / 2)
	g.QueueDepth(runtime.EventDriven, "events", 100)
	now = now.Add(DepthTTL / 2)
	g.Refresh()
	if !g.Overloaded() {
		t.Fatal("live stream aged out inside its TTL")
	}
}

// TestGateSetWatermarkReevaluates: retuning the watermark re-judges the
// samples already held, so admission reacts before the next sample.
func TestGateSetWatermarkReevaluates(t *testing.T) {
	g := NewGate(100)
	g.QueueDepth(runtime.EventDriven, "events", 50)
	if g.Overloaded() {
		t.Fatal("tripped under watermark")
	}
	g.SetWatermark(40)
	if !g.Overloaded() {
		t.Fatal("lowered watermark did not re-trip on held samples")
	}
	g.SetWatermark(60)
	if g.Overloaded() {
		t.Fatal("raised watermark did not clear on held samples")
	}
}
