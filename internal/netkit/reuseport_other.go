//go:build !linux

package netkit

import "net"

// reuseportAvailable is false off Linux: accept sharding silently falls
// back to a single listener, and the plane serves identically.
var reuseportAvailable = false

// listenReuseport reports SO_REUSEPORT sharding unsupported; the plane
// falls back to one listener.
func listenReuseport(addr string, n int) ([]net.Listener, error) {
	return nil, errReuseportUnsupported
}
