package core

import (
	"reflect"
	"testing"
)

func TestPlacementPlanImageServer(t *testing.T) {
	p := compile(t, imageServerSrc)
	plan := p.PlacementPlan()

	// The cache constraint binds CheckCache, StoreInCache, Complete.
	var cacheGroup *PlacementGroup
	for i := range plan.Groups {
		for _, c := range plan.Groups[i].Constraints {
			if c == "cache" {
				cacheGroup = &plan.Groups[i]
			}
		}
	}
	if cacheGroup == nil {
		t.Fatalf("no cache group in %+v", plan)
	}
	want := []string{"CheckCache", "Complete", "StoreInCache"}
	if !reflect.DeepEqual(cacheGroup.Nodes, want) {
		t.Errorf("cache group = %v, want %v", cacheGroup.Nodes, want)
	}

	// Unconstrained nodes are free to place anywhere.
	free := map[string]bool{}
	for _, n := range plan.Free {
		free[n] = true
	}
	for _, n := range []string{"ReadRequest", "Compress", "Write", "ReadInFromDisk"} {
		if !free[n] {
			t.Errorf("%s should be free, plan = %+v", n, plan)
		}
	}
}

func TestPlacementTransitiveSharing(t *testing.T) {
	// A shares x with B; B shares y with C: all three co-locate.
	p := compile(t, `
Src () => (int v);
A (int v) => (int v);
B (int v) => (int v);
C (int v) => ();
source Src => F;
F = A -> B -> C;
atomic A:{x};
atomic B:{x, y};
atomic C:{y};
`)
	plan := p.PlacementPlan()
	if len(plan.Groups) != 1 {
		t.Fatalf("groups = %+v", plan.Groups)
	}
	if !reflect.DeepEqual(plan.Groups[0].Nodes, []string{"A", "B", "C"}) {
		t.Errorf("group nodes = %v", plan.Groups[0].Nodes)
	}
	if !reflect.DeepEqual(plan.Groups[0].Constraints, []string{"x", "y"}) {
		t.Errorf("group constraints = %v", plan.Groups[0].Constraints)
	}
}

func TestPlacementDisjointGroups(t *testing.T) {
	p := compile(t, `
Src () => (int v);
A (int v) => (int v);
B (int v) => (int v);
C (int v) => (int v);
D (int v) => ();
source Src => F;
F = A -> B -> C -> D;
atomic A:{x};
atomic B:{x};
atomic C:{y};
atomic D:{y};
`)
	plan := p.PlacementPlan()
	if len(plan.Groups) != 2 {
		t.Fatalf("groups = %+v", plan.Groups)
	}
	if !reflect.DeepEqual(plan.Groups[0].Nodes, []string{"A", "B"}) ||
		!reflect.DeepEqual(plan.Groups[1].Nodes, []string{"C", "D"}) {
		t.Errorf("groups = %+v", plan.Groups)
	}
}

func TestPlacementAbstractConstraintCoversBody(t *testing.T) {
	// A constraint on the abstract node binds every concrete node in
	// its body (the constraint spans their execution).
	p := compile(t, `
Src () => (int v);
A (int v) => (int v);
B (int v) => ();
source Src => F;
F = A -> B;
atomic F:{shared};
`)
	plan := p.PlacementPlan()
	if len(plan.Groups) != 1 {
		t.Fatalf("groups = %+v", plan.Groups)
	}
	if !reflect.DeepEqual(plan.Groups[0].Nodes, []string{"A", "B"}) {
		t.Errorf("group = %v", plan.Groups[0].Nodes)
	}
}
