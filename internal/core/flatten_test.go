package core

import (
	"strings"
	"testing"
	"testing/quick"
)

func imageGraph(t *testing.T) *FlatGraph {
	t.Helper()
	p := compile(t, imageServerSrc)
	g := p.Graphs["Listen"]
	if g == nil {
		t.Fatal("no graph for Listen")
	}
	return g
}

func TestFlattenImageServerShape(t *testing.T) {
	g := imageGraph(t)

	if g.Entry == nil || g.Exit == nil || g.ErrExit == nil {
		t.Fatal("missing terminals")
	}
	var execs, branches, acquires, releases int
	for _, v := range g.Nodes {
		switch v.Kind {
		case FlatExec:
			execs++
		case FlatBranch:
			branches++
		case FlatAcquire:
			acquires++
		case FlatRelease:
			releases++
		}
	}
	// Execs: ReadRequest, CheckCache, Write, Complete, ReadInFromDisk,
	// Compress, StoreInCache, FourOhFour (shared handler).
	if execs != 8 {
		t.Errorf("exec vertices = %d, want 8", execs)
	}
	if branches != 1 {
		t.Errorf("branch vertices = %d, want 1", branches)
	}
	// CheckCache, StoreInCache, Complete each have {cache}.
	if acquires != 3 || releases != 3 {
		t.Errorf("acquire/release = %d/%d, want 3/3", acquires, releases)
	}
}

// TestFlattenAssignsDenseIDs guards the invariant runtimes index their
// per-vertex dispatch tables by: every vertex's ID is its position in
// FlatGraph.Nodes, with no gaps, and edges only reference vertices of
// the same graph.
func TestFlattenAssignsDenseIDs(t *testing.T) {
	p := compile(t, imageServerSrc)
	for name, g := range p.Graphs {
		byID := make(map[int]*FlatNode, len(g.Nodes))
		for i, v := range g.Nodes {
			if v.ID != i {
				t.Fatalf("graph %q: Nodes[%d].ID = %d, want %d", name, i, v.ID, i)
			}
			byID[v.ID] = v
		}
		for _, v := range g.Nodes {
			for _, e := range v.Edges() {
				if byID[e.To.ID] != e.To {
					t.Fatalf("graph %q: edge from %q targets vertex outside the graph", name, v.Label())
				}
			}
		}
	}
}

func TestFlattenEntryIsReadRequest(t *testing.T) {
	g := imageGraph(t)
	if g.Entry.Kind != FlatExec || g.Entry.Node.Name != "ReadRequest" {
		t.Errorf("entry = %s %v", g.Entry.Kind, g.Entry.Node)
	}
}

func TestErrorEdgesRouteToHandlerOrTerminal(t *testing.T) {
	g := imageGraph(t)
	for _, v := range g.Nodes {
		if v.Kind != FlatExec {
			continue
		}
		if v.Node.Name == "FourOhFour" {
			// The handler terminates at ERROR either way, so its error
			// edge is folded into the normal edge.
			if v.ErrEdge != nil {
				t.Error("handler vertex should have no separate error edge")
			}
			if v.Out[0].To != g.ErrExit {
				t.Errorf("handler continues at %s, want ERROR", v.Out[0].To.Label())
			}
			continue
		}
		if v.ErrEdge == nil {
			t.Errorf("%s has no error edge", v.Label())
			continue
		}
		to := v.ErrEdge.To
		switch v.Node.Name {
		case "ReadInFromDisk":
			if to.Kind != FlatExec || to.Node.Name != "FourOhFour" {
				t.Errorf("ReadInFromDisk error edge goes to %s", to.Label())
			}
		default:
			if to != g.ErrExit {
				t.Errorf("%s error edge goes to %s, want ERROR", v.Node.Name, to.Label())
			}
		}
	}
}

func TestBranchEdges(t *testing.T) {
	g := imageGraph(t)
	var br *FlatNode
	for _, v := range g.Nodes {
		if v.Kind == FlatBranch {
			br = v
		}
	}
	if br == nil {
		t.Fatal("no branch vertex")
	}
	if len(br.Out) != 2 {
		t.Fatalf("branch out edges = %d", len(br.Out))
	}
	if br.Out[0].CaseIndex != 0 || br.Out[1].CaseIndex != 1 {
		t.Errorf("case indices = %d, %d", br.Out[0].CaseIndex, br.Out[1].CaseIndex)
	}
	// Case 0 (hit) passes through to Write's exec vertex.
	hit := br.Out[0].To
	if hit.Kind != FlatExec || hit.Node.Name != "Write" {
		t.Errorf("hit case continues at %s, want Write", hit.Label())
	}
	// Case 1 (miss) starts at ReadInFromDisk.
	miss := br.Out[1].To
	if miss.Kind != FlatExec || miss.Node.Name != "ReadInFromDisk" {
		t.Errorf("miss case starts at %s, want ReadInFromDisk", miss.Label())
	}
}

func TestAcquireReleaseBracketing(t *testing.T) {
	g := imageGraph(t)
	// Every acquire's successor chain must hit the matching release
	// before Exit, and acquire sets must equal release sets.
	for _, v := range g.Nodes {
		if v.Kind != FlatAcquire {
			continue
		}
		if len(v.Out) != 1 {
			t.Fatalf("acquire with %d out edges", len(v.Out))
		}
		ex := v.Out[0].To
		if ex.Kind != FlatExec {
			t.Errorf("acquire %s followed by %s", v.Label(), ex.Label())
			continue
		}
		rel := ex.Out[0].To
		if rel.Kind != FlatRelease {
			t.Errorf("exec %s followed by %s, want release", ex.Label(), rel.Label())
			continue
		}
		if consLabel(v.Cons) != consLabel(rel.Cons) {
			t.Errorf("acquire %s released as %s", consLabel(v.Cons), consLabel(rel.Cons))
		}
	}
}

func TestNumPathsImageServer(t *testing.T) {
	g := imageGraph(t)
	// Normal paths: hit (1) + miss (1) = 2. Error paths: one per exec
	// vertex that can fail along each route to it.
	//   ReadRequest error                      -> 1
	//   CheckCache error                       -> 1
	//   miss: ReadInFromDisk error -> handler  -> 1
	//   miss: Compress error                   -> 1
	//   miss: StoreInCache error               -> 1
	//   Write error (hit route + miss route)   -> 2
	//   Complete error (hit route + miss route)-> 2
	// Total = 2 + 9 = 11.
	if g.NumPaths != 11 {
		t.Errorf("NumPaths = %d, want 11", g.NumPaths)
	}
}

func TestDecodePathBijective(t *testing.T) {
	g := imageGraph(t)
	seen := make(map[string]uint64)
	for id := uint64(0); id < g.NumPaths; id++ {
		nodes := g.DecodePath(id)
		if nodes == nil {
			t.Fatalf("DecodePath(%d) = nil", id)
		}
		if nodes[0] != g.Entry {
			t.Errorf("path %d does not start at entry", id)
		}
		last := nodes[len(nodes)-1]
		if last.Kind != FlatExit && last.Kind != FlatError {
			t.Errorf("path %d ends at %s", id, last.Label())
		}
		// Verify the edge increments along the decoded path sum to id.
		var sum uint64
		for i := 0; i+1 < len(nodes); i++ {
			var found bool
			for _, e := range nodes[i].Edges() {
				if e.To == nodes[i+1] {
					// Decode picks the edge with the largest
					// increment <= remaining; matching the first
					// edge to the successor is sufficient here
					// because edges to the same vertex from one
					// node do not occur in flattened graphs.
					sum += e.Inc
					found = true
					break
				}
			}
			if !found {
				t.Fatalf("path %d has a non-edge %s -> %s", id, nodes[i].Label(), nodes[i+1].Label())
			}
		}
		if sum != id {
			t.Errorf("path %d increments sum to %d", id, sum)
		}
		label := g.PathLabel(id)
		if prev, dup := seen[label]; dup {
			t.Errorf("paths %d and %d share label %q", prev, id, label)
		}
		seen[label] = id
	}
	if g.DecodePath(g.NumPaths) != nil {
		t.Error("out-of-range path ID should decode to nil")
	}
}

func TestPathLabels(t *testing.T) {
	g := imageGraph(t)
	var hitLabel, missLabel bool
	for id := uint64(0); id < g.NumPaths; id++ {
		l := g.PathLabel(id)
		if !strings.HasPrefix(l, "Listen -> ") {
			t.Errorf("path label %q does not start at source", l)
		}
		if l == "Listen -> ReadRequest -> CheckCache -> Write -> Complete" {
			hitLabel = true
		}
		if l == "Listen -> ReadRequest -> CheckCache -> ReadInFromDisk -> Compress -> StoreInCache -> Write -> Complete" {
			missLabel = true
		}
	}
	if !hitLabel {
		t.Error("hit path label missing")
	}
	if !missLabel {
		t.Error("miss path label missing")
	}
}

func TestMultipleSourcesGetSeparateGraphs(t *testing.T) {
	p := compile(t, `
Listen () => (int s);
Timer () => (int s);
A (int s) => ();
source Listen => A;
source Timer => A;
`)
	if len(p.Graphs) != 2 {
		t.Fatalf("graphs = %d", len(p.Graphs))
	}
	if p.Graphs["Listen"].Source.Name != "Listen" || p.Graphs["Timer"].Source.Name != "Timer" {
		t.Error("graph sources mislabeled")
	}
}

func TestDuplicateSourceRejected(t *testing.T) {
	err := compileErr(t, `
Listen () => (int s);
A (int s) => ();
source Listen => A;
source Listen => A;
`)
	if !strings.Contains(err.Error(), "source more than once") {
		t.Errorf("error = %v", err)
	}
}

func TestSessionFuncAttachedToGraph(t *testing.T) {
	p := compile(t, `
Listen () => (int s);
A (int s) => ();
source Listen => A;
session Listen SessOf;
`)
	if got := p.Graphs["Listen"].SessionFunc; got != "SessOf" {
		t.Errorf("session func = %q", got)
	}
}

// TestPathIDsUniqueRandomShapes: property test that Ball-Larus numbering
// yields unique, in-range, decodable IDs over randomized branch shapes.
func TestPathIDsUniqueRandomShapes(t *testing.T) {
	f := func(nCases uint8, withHandler bool) bool {
		cases := int(nCases%4) + 1
		var sb strings.Builder
		sb.WriteString("Listen () => (int s);\n")
		sb.WriteString("Pre (int s) => (int s);\n")
		sb.WriteString("Post (int s) => ();\n")
		sb.WriteString("H404 (int s) => ();\n")
		for i := 0; i < cases; i++ {
			sb.WriteString("Work" + string(rune('A'+i)) + " (int s) => (int s);\n")
		}
		sb.WriteString("source Listen => F;\nF = Pre -> Disp -> Post;\n")
		sb.WriteString("typedef t0 P0;\n")
		for i := 0; i < cases; i++ {
			if i == cases-1 {
				sb.WriteString("Disp:[_] = Work" + string(rune('A'+i)) + ";\n")
			} else {
				sb.WriteString("Disp:[t0] = Work" + string(rune('A'+i)) + ";\n")
			}
		}
		if withHandler {
			sb.WriteString("handle error Pre => H404;\n")
		}
		astProg, err := parserQuick(sb.String())
		if err != nil {
			return false
		}
		p, err := Build(astProg)
		if err != nil {
			return false
		}
		g := p.Graphs["Listen"]
		if g.NumPaths == 0 {
			return false
		}
		seen := make(map[string]bool)
		for id := uint64(0); id < g.NumPaths; id++ {
			l := g.PathLabel(id)
			if l == "" || seen[l] {
				return false
			}
			seen[l] = true
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
