package core

// Ball-Larus path numbering (§5.2).
//
// Because Flux graphs are acyclic, the Ball-Larus algorithm assigns each
// edge an increment such that summing the increments along any
// entry-to-terminal path yields a unique integer in [0, NumPaths). A
// runtime profiles paths with a single addition per edge plus two timer
// reads per node; DecodePath recovers the vertex sequence from an ID for
// reporting.

// numberPaths computes edge increments and the graph's path count.
func numberPaths(g *FlatGraph) {
	if g.Entry == nil {
		g.NumPaths = 0
		return
	}
	counts := make(map[*FlatNode]uint64, len(g.Nodes))
	order := topoFrom(g.Entry)
	// Process in reverse topological order so successors are counted
	// before predecessors.
	for i := len(order) - 1; i >= 0; i-- {
		v := order[i]
		edges := v.Edges()
		if len(edges) == 0 {
			counts[v] = 1
			continue
		}
		var sum uint64
		for _, e := range edges {
			e.Inc = sum
			sum += counts[e.To]
		}
		counts[v] = sum
	}
	g.NumPaths = counts[g.Entry]
}

// topoFrom returns the vertices reachable from entry in topological order
// (entry first). The graph is guaranteed acyclic by the type checker.
func topoFrom(entry *FlatNode) []*FlatNode {
	var order []*FlatNode
	seen := make(map[*FlatNode]bool)
	var visit func(v *FlatNode)
	visit = func(v *FlatNode) {
		if seen[v] {
			return
		}
		seen[v] = true
		for _, e := range v.Edges() {
			visit(e.To)
		}
		order = append(order, v)
	}
	visit(entry)
	// Reverse the postorder to get a topological order.
	for i, j := 0, len(order)-1; i < j; i, j = i+1, j-1 {
		order[i], order[j] = order[j], order[i]
	}
	return order
}

// DecodePath recovers the vertex sequence for a Ball-Larus path ID. It
// returns nil if the ID is out of range.
func (g *FlatGraph) DecodePath(id uint64) []*FlatNode {
	if g.Entry == nil || id >= g.NumPaths {
		return nil
	}
	// Recompute per-vertex path counts; decode is a reporting operation,
	// not a hot path.
	counts := make(map[*FlatNode]uint64, len(g.Nodes))
	order := topoFrom(g.Entry)
	for i := len(order) - 1; i >= 0; i-- {
		v := order[i]
		edges := v.Edges()
		if len(edges) == 0 {
			counts[v] = 1
			continue
		}
		var sum uint64
		for _, e := range edges {
			sum += counts[e.To]
		}
		counts[v] = sum
	}

	var path []*FlatNode
	v := g.Entry
	rem := id
	for {
		path = append(path, v)
		edges := v.Edges()
		if len(edges) == 0 {
			return path
		}
		// Choose the last edge whose increment does not exceed the
		// remaining value.
		chosen := edges[0]
		for _, e := range edges {
			if e.Inc <= rem {
				chosen = e
			} else {
				break
			}
		}
		rem -= chosen.Inc
		v = chosen.To
	}
}

// PathLabel renders a decoded path as the sequence of executed node names
// with the source node prepended, matching the presentation in §5.2
// ("Listen → GetClients → ... → ERROR").
func (g *FlatGraph) PathLabel(id uint64) string {
	nodes := g.DecodePath(id)
	if nodes == nil {
		return ""
	}
	label := g.Source.Name
	for _, v := range nodes {
		switch v.Kind {
		case FlatExec:
			label += " -> " + v.Node.Name
		case FlatError:
			label += " -> ERROR"
		}
	}
	return label
}
