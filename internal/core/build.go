package core

import (
	"fmt"

	"github.com/flux-lang/flux/internal/lang/ast"
	"github.com/flux-lang/flux/internal/lang/token"
)

// Build runs the complete middle-end pipeline over a parsed program and
// returns the analyzed Program, ready for a runtime, simulator, profiler,
// or code generator. It corresponds to passes one through three of the
// compiler described in §3.1 plus flattening and path numbering.
func Build(prog *ast.Program) (*Program, error) {
	b := &builder{
		p: &Program{
			Name:     prog.File,
			Nodes:    make(map[string]*Node),
			Typedefs: make(map[string]*Typedef),
			Sessions: make(map[string]string),
			Graphs:   make(map[string]*FlatGraph),
		},
	}
	b.collect(prog)
	b.link(prog)
	if err := b.errs.Err(); err != nil {
		return nil, err
	}
	if err := typecheck(b.p); err != nil {
		return nil, err
	}
	if err := assignLocks(b.p); err != nil {
		return nil, err
	}
	if err := flattenAll(b.p); err != nil {
		return nil, err
	}
	return b.p, nil
}

type builder struct {
	p    *Program
	errs ErrorList
}

func (b *builder) errorf(pos token.Position, format string, args ...any) {
	b.errs = append(b.errs, &Error{Pos: pos, Msg: fmt.Sprintf(format, args...)})
}

// node returns the named node, creating a placeholder if necessary. The
// link phase reports placeholders that were never defined.
func (b *builder) node(name string, pos token.Position) *Node {
	if n, ok := b.p.Nodes[name]; ok {
		return n
	}
	n := &Node{Name: name, Kind: Concrete, Pos: pos}
	b.p.Nodes[name] = n
	b.p.Order = append(b.p.Order, name)
	return n
}

// collect performs the first pass: it registers every declared entity so
// that later references resolve regardless of declaration order.
func (b *builder) collect(prog *ast.Program) {
	defined := make(map[string]token.Position)
	declareDef := func(name string, pos token.Position, what string) bool {
		if prev, ok := defined[name]; ok {
			b.errorf(pos, "%s %q redeclared (previous declaration at %s)", what, name, prev)
			return false
		}
		defined[name] = pos
		return true
	}

	for _, d := range prog.Decls {
		switch d := d.(type) {
		case *ast.NodeSig:
			if !declareDef(d.Name, d.NamePos, "node") {
				continue
			}
			n := b.node(d.Name, d.NamePos)
			n.Kind = Concrete
			n.Pos = d.NamePos
			n.In = d.Inputs
			n.Out = d.Outputs
			n.hasSig = true

		case *ast.FlowDecl:
			if !declareDef(d.Name, d.NamePos, "node") {
				continue
			}
			n := b.node(d.Name, d.NamePos)
			n.Kind = Abstract
			n.Pos = d.NamePos

		case *ast.DispatchDecl:
			// Multiple cases share a name; only the first "defines" it.
			if prev, ok := defined[d.Name]; ok {
				if b.p.Nodes[d.Name] == nil || b.p.Nodes[d.Name].Kind != Conditional {
					b.errorf(d.NamePos, "node %q redeclared as conditional (previous declaration at %s)", d.Name, prev)
					continue
				}
			} else {
				defined[d.Name] = d.NamePos
			}
			n := b.node(d.Name, d.NamePos)
			n.Kind = Conditional
			n.Pos = d.NamePos

		case *ast.TypedefDecl:
			if prev, ok := b.p.Typedefs[d.Name]; ok {
				b.errorf(d.NamePos, "predicate type %q redeclared (previous declaration at %s)", d.Name, prev.Pos)
				continue
			}
			b.p.Typedefs[d.Name] = &Typedef{Name: d.Name, Func: d.Func, Pos: d.NamePos}
		}
	}
}

// link performs the second pass: it connects flows, dispatch cases,
// sources, error handlers, session functions and atomicity constraints to
// their nodes, reporting references to undefined entities.
func (b *builder) link(prog *ast.Program) {
	for _, d := range prog.Decls {
		switch d := d.(type) {
		case *ast.FlowDecl:
			n := b.p.Nodes[d.Name]
			if n.Kind != Abstract {
				continue // redeclaration already reported
			}
			for _, name := range d.Nodes {
				n.Body = append(n.Body, b.ref(name, d.NamePos))
			}

		case *ast.DispatchDecl:
			n := b.p.Nodes[d.Name]
			if n.Kind != Conditional {
				continue
			}
			c := &Case{Pattern: d.Pattern, Pos: d.NamePos}
			for _, name := range d.Body {
				c.Body = append(c.Body, b.ref(name, d.NamePos))
			}
			for _, e := range d.Pattern {
				if !e.Wildcard {
					if _, ok := b.p.Typedefs[e.Type]; !ok {
						b.errorf(e.ElemPos, "undefined predicate type %q in dispatch for %q", e.Type, d.Name)
					}
				}
			}
			n.Cases = append(n.Cases, c)

		case *ast.SourceDecl:
			src := b.ref(d.Source, d.SourcePos)
			tgt := b.ref(d.Target, d.SourcePos)
			if src == nil || tgt == nil {
				continue
			}
			b.p.Sources = append(b.p.Sources, &Source{Node: src, Target: tgt, Pos: d.SourcePos})

		case *ast.ErrorHandlerDecl:
			n := b.ref(d.Node, d.HandlePos)
			h := b.ref(d.Handler, d.HandlePos)
			if n == nil || h == nil {
				continue
			}
			if n == h {
				b.errorf(d.HandlePos, "node %q cannot handle its own errors", n.Name)
				continue
			}
			if n.Handler != nil {
				b.errorf(d.HandlePos, "node %q already has an error handler (%q)", n.Name, n.Handler.Name)
				continue
			}
			n.Handler = h

		case *ast.AtomicDecl:
			n := b.ref(d.Node, d.AtomicPos)
			if n == nil {
				continue
			}
			seen := make(map[string]bool)
			for _, c := range n.Declared {
				seen[c.Name] = true
			}
			for _, c := range d.Constraints {
				if seen[c.Name] {
					b.errorf(d.AtomicPos, "constraint %q repeated on node %q", c.Name, n.Name)
					continue
				}
				seen[c.Name] = true
				n.Declared = append(n.Declared, c)
			}

		case *ast.SessionDecl:
			if _, ok := b.p.Nodes[d.Source]; !ok {
				b.errorf(d.SessionPos, "session declaration references undefined node %q", d.Source)
				continue
			}
			if prev, ok := b.p.Sessions[d.Source]; ok {
				b.errorf(d.SessionPos, "source %q already has session function %q", d.Source, prev)
				continue
			}
			b.p.Sessions[d.Source] = d.Func
		}
	}

	if len(b.p.Sources) == 0 && b.errs.Err() == nil {
		b.errorf(token.Position{}, "program declares no source node")
	}
}

// ref resolves a node reference, reporting an error for undefined names.
func (b *builder) ref(name string, pos token.Position) *Node {
	n, ok := b.p.Nodes[name]
	if !ok {
		b.errorf(pos, "reference to undefined node %q", name)
		return nil
	}
	return n
}
