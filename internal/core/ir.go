// Package core implements the Flux compiler's middle end: the program
// graph intermediate representation, type checking, deadlock-free lock
// assignment, graph flattening, and Ball-Larus path numbering.
//
// The pipeline mirrors §3.1 of the paper:
//
//  1. Build links every node referenced in the program's data flows and
//     merges conditional (predicate-dispatch) flows.
//  2. Typecheck decorates nodes with input/output types, connects error
//     handlers, and verifies that each node's outputs match the inputs of
//     its successors.
//  3. AssignLocks imposes the canonical constraint ordering and hoists
//     out-of-order constraints to parent nodes until no out-of-order
//     constraint list remains (§3.1.1), then promotes reader acquisitions
//     that are later reacquired as writers.
//  4. Flatten expands every source's data flow into an acyclic executable
//     graph with explicit acquire/release/branch/error vertices.
//  5. NumberPaths runs the Ball-Larus algorithm over each flat graph so
//     runtimes can profile hot paths with one addition per edge (§5.2).
package core

import (
	"fmt"
	"sort"
	"strings"

	"github.com/flux-lang/flux/internal/lang/ast"
	"github.com/flux-lang/flux/internal/lang/token"
)

// NodeKind classifies nodes in the hierarchical program graph.
type NodeKind int

const (
	// Concrete nodes are implemented by user-supplied functions.
	Concrete NodeKind = iota
	// Abstract nodes are flows: chains of other nodes.
	Abstract
	// Conditional nodes dispatch on predicate types (§2.3).
	Conditional
)

func (k NodeKind) String() string {
	switch k {
	case Concrete:
		return "concrete"
	case Abstract:
		return "abstract"
	case Conditional:
		return "conditional"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// Node is a vertex in the hierarchical program graph.
type Node struct {
	Name string
	Kind NodeKind
	Pos  token.Position

	// In and Out are the resolved input and output types. For concrete
	// nodes they come from the declared signature; for abstract and
	// conditional nodes they are inferred during type checking.
	In  []ast.Param
	Out []ast.Param

	// Body is the flow chain for abstract nodes.
	Body []*Node

	// Cases are the dispatch alternatives for conditional nodes, in
	// declaration order (the order predicates are tried, §2.3).
	Cases []*Case

	// Handler, when non-nil, receives the flow if this node (or, for
	// abstract nodes, any node inside it without a nearer handler)
	// returns an error (§2.4).
	Handler *Node

	// Declared holds the constraints written in the program's atomic
	// declarations. Effective holds the constraint set after deadlock
	// avoidance, sorted in canonical (acquisition) order.
	Declared  []ast.Constraint
	Effective []ast.Constraint

	// hasSig records that a concrete signature was declared; resolved
	// types for abstract/conditional nodes are filled in by typecheck.
	hasSig bool
}

// IsSink reports whether the node produces no output.
func (n *Node) IsSink() bool { return len(n.Out) == 0 }

// Case is one alternative of a conditional node.
type Case struct {
	Pattern []ast.PatternElem
	Body    []*Node // empty means pass-through
	Pos     token.Position
}

// PassThrough reports whether the case forwards its input unchanged.
func (c *Case) PassThrough() bool { return len(c.Body) == 0 }

// Typedef binds a predicate type name to its boolean function (§2.3).
type Typedef struct {
	Name string // predicate type, e.g. "hit"
	Func string // user function, e.g. "TestInCache"
	Pos  token.Position
}

// Source pairs a source node with the flow it feeds (§2.1).
type Source struct {
	Node   *Node
	Target *Node
	Pos    token.Position
}

// Warning is a non-fatal compiler diagnostic, e.g. an early lock
// acquisition introduced by deadlock avoidance (§3.1.1).
type Warning struct {
	Pos token.Position
	Msg string
}

func (w Warning) String() string {
	if w.Pos.IsValid() {
		return w.Pos.String() + ": warning: " + w.Msg
	}
	return "warning: " + w.Msg
}

// Program is the fully analyzed Flux program.
type Program struct {
	Name  string
	Nodes map[string]*Node
	// Order lists node names in first-declaration order, for
	// deterministic iteration.
	Order    []string
	Sources  []*Source
	Typedefs map[string]*Typedef
	// Sessions maps a source node name to its session-id function (§2.5.1).
	Sessions map[string]string
	Warnings []Warning
	// Graphs holds the flattened, path-numbered executable graph for each
	// source, keyed by source node name.
	Graphs map[string]*FlatGraph
}

// Node returns the named node, or nil.
func (p *Program) Node(name string) *Node { return p.Nodes[name] }

// ConstraintNames returns the sorted set of distinct constraint names
// declared anywhere in the program.
func (p *Program) ConstraintNames() []string {
	set := make(map[string]bool)
	for _, name := range p.Order {
		for _, c := range p.Nodes[name].Declared {
			set[c.Name] = true
		}
	}
	names := make([]string, 0, len(set))
	for n := range set {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// ConcreteNodes returns the concrete nodes in declaration order.
func (p *Program) ConcreteNodes() []*Node {
	var out []*Node
	for _, name := range p.Order {
		if n := p.Nodes[name]; n.Kind == Concrete {
			out = append(out, n)
		}
	}
	return out
}

// Error is a positioned semantic diagnostic.
type Error struct {
	Pos token.Position
	Msg string
}

func (e *Error) Error() string {
	if e.Pos.IsValid() {
		return e.Pos.String() + ": " + e.Msg
	}
	return e.Msg
}

// ErrorList collects semantic diagnostics.
type ErrorList []*Error

func (l ErrorList) Error() string {
	switch len(l) {
	case 0:
		return "no errors"
	case 1:
		return l[0].Error()
	}
	var b strings.Builder
	b.WriteString(l[0].Error())
	fmt.Fprintf(&b, " (and %d more errors)", len(l)-1)
	return b.String()
}

// Err returns nil when the list is empty.
func (l ErrorList) Err() error {
	if len(l) == 0 {
		return nil
	}
	return l
}

func paramTypes(ps []ast.Param) []string {
	ts := make([]string, len(ps))
	for i, p := range ps {
		ts[i] = p.TypeKey()
	}
	return ts
}

func typesEqual(a, b []ast.Param) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].TypeKey() != b[i].TypeKey() {
			return false
		}
	}
	return true
}

func typeString(ps []ast.Param) string {
	return "(" + strings.Join(paramTypes(ps), ", ") + ")"
}
