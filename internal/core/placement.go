package core

import "sort"

// Cluster placement analysis — the future-work direction of §8:
// "Because concurrency constraints identify nodes that share state, we
// plan to use these constraints to guide the placement of nodes across a
// cluster to minimize communication."
//
// Nodes that share an atomicity constraint touch the same state and must
// be co-located (or pay distributed locking); nodes with no constraints
// can be placed anywhere. PlacementPlan computes the connected
// components of the node-constraint bipartite graph.

// Placement is a co-location plan for a Flux program's concrete nodes.
type Placement struct {
	// Groups lists sets of concrete nodes that must be co-located
	// because they transitively share constraints. Each group also
	// names the constraints binding it. Groups are sorted by first
	// node name; nodes and constraints within a group are sorted.
	Groups []PlacementGroup
	// Free lists concrete nodes with no constraints: they can run on
	// any cluster node.
	Free []string
}

// PlacementGroup is one co-location set.
type PlacementGroup struct {
	Nodes       []string
	Constraints []string
}

// PlacementPlan partitions the program's concrete nodes by shared
// constraints. Constraints attached to abstract or conditional nodes
// bind every concrete node inside them (the constraint is held across
// their execution).
func (p *Program) PlacementPlan() Placement {
	// Union-find over node names and constraint names (prefixed to
	// avoid collisions).
	parent := make(map[string]string)
	var find func(x string) string
	find = func(x string) string {
		if parent[x] == "" {
			parent[x] = x
			return x
		}
		if parent[x] != x {
			parent[x] = find(parent[x])
		}
		return parent[x]
	}
	union := func(a, b string) {
		ra, rb := find(a), find(b)
		if ra != rb {
			parent[ra] = rb
		}
	}

	nodeKey := func(n string) string { return "n:" + n }
	consKey := func(c string) string { return "c:" + c }

	// Attribute each node's effective constraints to the concrete
	// nodes that execute under them.
	var collect func(n *Node, inherited []string)
	seenWith := make(map[*Node]map[string]bool)
	collect = func(n *Node, inherited []string) {
		cs := append([]string(nil), inherited...)
		for _, c := range n.Effective {
			cs = append(cs, c.Name)
		}
		if n.Kind == Concrete {
			if seenWith[n] == nil {
				seenWith[n] = make(map[string]bool)
			}
			for _, c := range cs {
				if !seenWith[n][c] {
					seenWith[n][c] = true
					union(nodeKey(n.Name), consKey(c))
				}
			}
			// Register the node even when unconstrained.
			find(nodeKey(n.Name))
			return
		}
		for _, m := range n.Body {
			collect(m, cs)
		}
		for _, cse := range n.Cases {
			for _, m := range cse.Body {
				collect(m, cs)
			}
		}
	}
	for _, s := range p.Sources {
		collect(s.Node, nil)
		collect(s.Target, nil)
	}

	// Gather components.
	type comp struct {
		nodes, cons map[string]bool
	}
	comps := make(map[string]*comp)
	for x := range parent {
		root := find(x)
		c := comps[root]
		if c == nil {
			c = &comp{nodes: map[string]bool{}, cons: map[string]bool{}}
			comps[root] = c
		}
		if x[0] == 'n' {
			c.nodes[x[2:]] = true
		} else {
			c.cons[x[2:]] = true
		}
	}

	var plan Placement
	for _, c := range comps {
		nodes := setToSorted(c.nodes)
		cons := setToSorted(c.cons)
		if len(cons) == 0 {
			plan.Free = append(plan.Free, nodes...)
			continue
		}
		plan.Groups = append(plan.Groups, PlacementGroup{Nodes: nodes, Constraints: cons})
	}
	sort.Strings(plan.Free)
	sort.Slice(plan.Groups, func(i, j int) bool {
		return plan.Groups[i].Nodes[0] < plan.Groups[j].Nodes[0]
	})
	return plan
}

func setToSorted(s map[string]bool) []string {
	out := make([]string, 0, len(s))
	for k := range s {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
