package core

import (
	"sort"
	"strings"
	"testing"
	"testing/quick"

	"github.com/flux-lang/flux/internal/lang/ast"
	"github.com/flux-lang/flux/internal/lang/parser"
)

// TestPaperHoistExample reproduces the exact example of §3.1.1:
//
//	A = B;  C = D;
//	atomic A:{x}; atomic B:{y}; atomic C:{y}; atomic D:{x};
//
// A flow through C acquires y then x — out of canonical order — so the
// compiler must add x to C, yielding C:{x,y}.
func TestPaperHoistExample(t *testing.T) {
	p := compile(t, `
SrcA () => (int v);
SrcC () => (int v);
B (int v) => ();
D (int v) => ();
source SrcA => A;
source SrcC => C;
A = B;
C = D;
atomic A:{x};
atomic B:{y};
atomic C:{y};
atomic D:{x};
`)
	c := p.Node("C")
	names := constraintNames(c.Effective)
	if len(names) != 2 || names[0] != "x" || names[1] != "y" {
		t.Errorf("C effective constraints = %v, want [x y]", names)
	}
	// A and B keep their original sets.
	if got := constraintNames(p.Node("A").Effective); len(got) != 1 || got[0] != "x" {
		t.Errorf("A = %v", got)
	}
	if got := constraintNames(p.Node("B").Effective); len(got) != 1 || got[0] != "y" {
		t.Errorf("B = %v", got)
	}
	// A hoist must produce a warning (§3.1.1: "it generates a warning
	// message").
	var warned bool
	for _, w := range p.Warnings {
		if strings.Contains(w.Msg, "acquired early") {
			warned = true
		}
	}
	if !warned {
		t.Errorf("expected early-acquisition warning, got %v", p.Warnings)
	}
}

func constraintNames(cs []ast.Constraint) []string {
	names := make([]string, len(cs))
	for i, c := range cs {
		names[i] = c.Name
	}
	return names
}

// TestHoistCascades checks a two-level hoist: the out-of-order constraint
// must propagate up through nested abstract nodes until order is restored.
func TestHoistCascades(t *testing.T) {
	p := compile(t, `
Src () => (int v);
Leaf (int v) => ();
source Src => Outer;
Outer = Mid;
Mid = Inner;
Inner = Leaf;
atomic Outer:{z};
atomic Leaf:{a};
`)
	// Outer holds z; Leaf needs a with z held: out of order. a hoists to
	// Inner, still out of order (z held), then to Mid, then to Outer.
	// At Outer, {a,z} sorts canonically and the violation disappears.
	outer := p.Node("Outer")
	names := constraintNames(outer.Effective)
	if len(names) != 2 || names[0] != "a" || names[1] != "z" {
		t.Errorf("Outer constraints = %v, want [a z]", names)
	}
}

// TestNoHoistWhenInOrder verifies that canonically ordered acquisitions
// are left untouched and produce no warnings.
func TestNoHoistWhenInOrder(t *testing.T) {
	p := compile(t, `
Src () => (int v);
B (int v) => ();
source Src => A;
A = B;
atomic A:{a};
atomic B:{b};
`)
	if len(p.Warnings) != 0 {
		t.Errorf("unexpected warnings: %v", p.Warnings)
	}
	if got := constraintNames(p.Node("A").Effective); len(got) != 1 {
		t.Errorf("A gained constraints: %v", got)
	}
}

// TestReaderPromotedToWriter checks the reader/writer unification pass:
// holding a constraint as a reader while an inner node reacquires it as a
// writer promotes the outer acquisition.
func TestReaderPromotedToWriter(t *testing.T) {
	p := compile(t, `
Src () => (int v);
B (int v) => ();
source Src => A;
A = B;
atomic A:{cache?};
atomic B:{cache};
`)
	a := p.Node("A")
	if a.Effective[0].Mode != ast.Writer {
		t.Errorf("A's cache constraint = %v, want writer", a.Effective[0].Mode)
	}
	var warned bool
	for _, w := range p.Warnings {
		if strings.Contains(w.Msg, "promoted to writer") {
			warned = true
		}
	}
	if !warned {
		t.Errorf("expected promotion warning, got %v", p.Warnings)
	}
}

// TestWriterThenReaderNotChanged: reacquiring as a reader while holding as
// a writer is allowed and requires no change (§3.1.1).
func TestWriterThenReaderNotChanged(t *testing.T) {
	p := compile(t, `
Src () => (int v);
B (int v) => ();
source Src => A;
A = B;
atomic A:{cache};
atomic B:{cache?};
`)
	a := p.Node("A")
	if a.Effective[0].Mode != ast.Writer {
		t.Errorf("A mode = %v", a.Effective[0].Mode)
	}
	b := p.Node("B")
	if b.Effective[0].Mode != ast.Reader {
		t.Errorf("B mode = %v", b.Effective[0].Mode)
	}
}

// TestSequentialAcquisitionsNeedNoHoist: two sibling nodes acquiring
// different constraints release between executions, so no ordering
// conflict exists even when the second is canonically earlier.
func TestSequentialAcquisitionsNeedNoHoist(t *testing.T) {
	p := compile(t, `
Src () => (int v);
A (int v) => (int v);
B (int v) => ();
source Src => F;
F = A -> B;
atomic A:{z};
atomic B:{a};
`)
	if len(p.Warnings) != 0 {
		t.Errorf("unexpected warnings: %v", p.Warnings)
	}
	if got := constraintNames(p.Node("F").Effective); len(got) != 0 {
		t.Errorf("F gained constraints: %v", got)
	}
}

// TestHoistThroughConditional: a constraint needed inside a dispatch case
// hoists into the conditional node.
func TestHoistThroughConditional(t *testing.T) {
	p := compile(t, `
Src () => (int v);
A (int v) => (int v);
B (int v) => (int v);
Z (int v) => ();
source Src => F;
F = A -> H -> Z;
typedef fast IsFast;
H:[fast] = ;
H:[_] = B;
atomic F:{z};
atomic B:{a};
`)
	// F holds z for the whole flow; B (inside H's miss case) needs a.
	// a must propagate up: B -> H -> F.
	f := p.Node("F")
	names := constraintNames(f.Effective)
	if len(names) != 2 || names[0] != "a" || names[1] != "z" {
		t.Errorf("F constraints = %v, want [a z]", names)
	}
}

// lockOrderProperty is the deadlock-freedom invariant: after lock
// assignment, every acquisition along every execution path happens in
// canonical order (skipping reentrant reacquisitions). This is the
// property that makes the canonical-order argument sound.
func lockOrderProperty(p *Program) bool {
	roots := lockRoots(p)
	var ok = true
	var walk func(n *Node, held []string)
	walk = func(n *Node, held []string) {
		depth := len(held)
		for _, c := range n.Effective {
			already := false
			for _, h := range held {
				if h == c.Name {
					already = true
					break
				}
			}
			if already {
				continue
			}
			for _, h := range held {
				if h > c.Name {
					ok = false
				}
			}
			held = append(held, c.Name)
		}
		switch n.Kind {
		case Abstract:
			for _, m := range n.Body {
				walk(m, held)
			}
		case Conditional:
			for _, cs := range n.Cases {
				for _, m := range cs.Body {
					walk(m, held)
				}
			}
		}
		held = held[:depth]
		_ = held
	}
	for _, r := range roots {
		walk(r, nil)
	}
	return ok
}

// TestLockOrderPropertyRandomPrograms generates random constraint
// assignments over a fixed nested program shape and verifies that lock
// assignment always restores canonical order.
func TestLockOrderPropertyRandomPrograms(t *testing.T) {
	// The shape: Outer = A -> Mid -> B; Mid = C -> Inner; Inner = D.
	// Each of the six nodes gets a random subset of constraints {a..e}.
	f := func(masks [6]uint8) bool {
		names := []string{"Outer", "Mid", "Inner", "A", "B", "C"}
		consNames := []string{"a", "b", "c", "d", "e"}
		var sb strings.Builder
		sb.WriteString(`
Src () => (int v);
A (int v) => (int v);
B (int v) => ();
C (int v) => (int v);
D (int v) => (int v);
source Src => Outer;
Outer = A -> Mid -> B;
Mid = C -> Inner;
Inner = D;
`)
		for i, node := range names {
			var cs []string
			for bit, cn := range consNames {
				if masks[i]&(1<<bit) != 0 {
					cs = append(cs, cn)
				}
			}
			if len(cs) > 0 {
				sb.WriteString("atomic " + node + ":{" + strings.Join(cs, ", ") + "};\n")
			}
		}
		astProg, err := parser.Parse("quick.flux", sb.String())
		if err != nil {
			return false
		}
		p, err := Build(astProg)
		if err != nil {
			return false
		}
		return lockOrderProperty(p)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestEffectiveAlwaysSorted: every node's effective constraint set is in
// canonical order after assignment.
func TestEffectiveAlwaysSorted(t *testing.T) {
	p := compile(t, `
Src () => (int v);
B (int v) => ();
source Src => A;
A = B;
atomic A:{z, m, a};
atomic B:{q};
`)
	for _, name := range p.Order {
		n := p.Nodes[name]
		names := constraintNames(n.Effective)
		if !sort.StringsAreSorted(names) {
			t.Errorf("%s effective constraints not sorted: %v", name, names)
		}
	}
}
