package core

import (
	"fmt"
	"sort"

	"github.com/flux-lang/flux/internal/lang/ast"
)

// assignLocks performs the deadlock-avoidance pass of §3.1.1.
//
// Locks are acquired in a canonical order: alphabetically by constraint
// name. Each node acquires its (effective) constraints in that order,
// holds them for the duration of its execution — including, for abstract
// and conditional nodes, the execution of everything inside them — and
// releases them in reverse order (two-phase locking).
//
// Nesting can still acquire constraints out of canonical order: an outer
// node holding "y" whose inner node needs "x" acquires y before x. The
// compiler detects each such out-of-order acquisition by walking every
// execution path and hoists the late constraint into the parent of the
// node that requires it, forcing earlier acquisition. The process repeats
// until no out-of-order acquisition remains; each hoist emits a warning
// because early acquisition can reduce concurrency.
//
// A second pass finds constraints held as a reader and reacquired as a
// writer on the same path and promotes the first acquisition to a writer.
func assignLocks(p *Program) error {
	var errs ErrorList

	// Constraint identity is its name; a name must be consistently
	// session-scoped or global across all declarations.
	session := make(map[string]bool)
	seen := make(map[string]bool)
	for _, name := range p.Order {
		n := p.Nodes[name]
		for _, c := range n.Declared {
			if seen[c.Name] && session[c.Name] != c.Session {
				errs = append(errs, &Error{Pos: n.Pos, Msg: fmt.Sprintf(
					"constraint %q is declared both session-scoped and global", c.Name)})
			}
			seen[c.Name] = true
			session[c.Name] = c.Session
		}
	}
	if err := errs.Err(); err != nil {
		return err
	}

	// Start from the declared sets, canonically sorted.
	for _, name := range p.Order {
		n := p.Nodes[name]
		n.Effective = append([]ast.Constraint(nil), n.Declared...)
		sortConstraints(n.Effective)
	}

	roots := lockRoots(p)

	// Hoisting fixpoint. Each iteration either finds no violation and
	// stops, or adds one constraint to one node that lacked it; the
	// number of (node, constraint) pairs bounds the iteration count.
	maxIter := (len(p.Order) + 1) * (len(seen) + 1)
	for iter := 0; ; iter++ {
		if iter > maxIter {
			return ErrorList{{Msg: "internal error: lock hoisting did not converge"}}
		}
		v := findViolation(roots)
		if v == nil {
			break
		}
		hoisted := v.c
		v.parent.Effective = append(v.parent.Effective, hoisted)
		sortConstraints(v.parent.Effective)
		p.Warnings = append(p.Warnings, Warning{Pos: v.parent.Pos, Msg: fmt.Sprintf(
			"potential deadlock: constraint %q (required by %q) acquired early at %q to preserve canonical lock order",
			hoisted.Name, v.at.Name, v.parent.Name)})
	}

	// Reader/writer unification fixpoint (promotions cannot introduce
	// ordering violations; they only strengthen modes).
	for promoteReaders(p, roots) {
	}
	return nil
}

// sortConstraints orders a constraint set canonically (alphabetically).
func sortConstraints(cs []ast.Constraint) {
	sort.Slice(cs, func(i, j int) bool { return cs[i].Name < cs[j].Name })
}

// lockRoots returns the entry points for path enumeration: every source
// target plus any node not referenced inside another node (covers program
// fragments used in tests and tools).
func lockRoots(p *Program) []*Node {
	referenced := make(map[*Node]bool)
	for _, name := range p.Order {
		n := p.Nodes[name]
		for _, m := range n.Body {
			referenced[m] = true
		}
		for _, cs := range n.Cases {
			for _, m := range cs.Body {
				referenced[m] = true
			}
		}
	}
	var roots []*Node
	added := make(map[*Node]bool)
	for _, s := range p.Sources {
		for _, n := range []*Node{s.Node, s.Target} {
			if !added[n] {
				roots = append(roots, n)
				added[n] = true
			}
		}
	}
	for _, name := range p.Order {
		n := p.Nodes[name]
		if !referenced[n] && !added[n] {
			roots = append(roots, n)
			added[n] = true
		}
	}
	return roots
}

// violation reports one out-of-order acquisition: constraint c, required
// by node at, must be hoisted into parent.
type violation struct {
	c      ast.Constraint
	at     *Node
	parent *Node
}

// held tracks the lock state along one execution path.
type heldLock struct {
	c    ast.Constraint
	site *Node
}

// findViolation walks every execution path from every root and returns the
// first out-of-order acquisition found, or nil.
func findViolation(roots []*Node) *violation {
	w := &lockWalker{}
	for _, r := range roots {
		if v := w.walk(r, nil); v != nil {
			return v
		}
	}
	return nil
}

type lockWalker struct {
	held []heldLock
}

func (w *lockWalker) holds(name string) bool {
	for _, h := range w.held {
		if h.c.Name == name {
			return true
		}
	}
	return false
}

// walk explores node n with the current held set; ancestors is the chain
// of enclosing nodes on this path (immediate parent last). It returns the
// first violation found, restoring the held stack before returning.
func (w *lockWalker) walk(n *Node, ancestors []*Node) *violation {
	depth := len(w.held)
	defer func() { w.held = w.held[:depth] }()

	for _, c := range n.Effective {
		if w.holds(c.Name) {
			continue // reentrant acquisition (§3.1.1)
		}
		// Out-of-order: some held constraint is canonically after c.
		for _, h := range w.held {
			if h.c.Name > c.Name {
				if len(ancestors) == 0 {
					// A root's own set is sorted, so a violation here
					// means an inconsistent program; hoist to self is
					// meaningless. This cannot occur: the conflicting
					// holder h.site is an ancestor, so ancestors is
					// non-empty whenever held is.
					continue
				}
				return &violation{c: c, at: n, parent: ancestors[len(ancestors)-1]}
			}
		}
		w.held = append(w.held, heldLock{c: c, site: n})
	}

	anc := append(ancestors, n)
	switch n.Kind {
	case Abstract:
		for _, m := range n.Body {
			if v := w.walk(m, anc); v != nil {
				return v
			}
		}
	case Conditional:
		for _, cs := range n.Cases {
			for _, m := range cs.Body {
				if v := w.walk(m, anc); v != nil {
					return v
				}
			}
		}
	}
	return nil
}

// promoteReaders finds a constraint held as a reader and reacquired as a
// writer on the same path, promotes the first acquisition to a writer, and
// reports whether it changed anything.
func promoteReaders(p *Program, roots []*Node) bool {
	pw := &promoteWalker{p: p}
	for _, r := range roots {
		if pw.walk(r) {
			return true
		}
	}
	return false
}

type promoteWalker struct {
	p    *Program
	held []heldLock
}

// walk returns true as soon as it performs one promotion; the caller
// re-runs until quiescent.
func (w *promoteWalker) walk(n *Node) bool {
	depth := len(w.held)
	defer func() { w.held = w.held[:depth] }()

	for i := range n.Effective {
		c := n.Effective[i]
		reacq := false
		for hi := range w.held {
			h := &w.held[hi]
			if h.c.Name != c.Name {
				continue
			}
			reacq = true
			if h.c.Mode == ast.Reader && c.Mode == ast.Writer {
				// Promote the first acquisition site to writer.
				site := h.site
				for si := range site.Effective {
					if site.Effective[si].Name == c.Name {
						site.Effective[si].Mode = ast.Writer
					}
				}
				w.p.Warnings = append(w.p.Warnings, Warning{Pos: site.Pos, Msg: fmt.Sprintf(
					"constraint %q acquired as reader at %q but as writer at %q; first acquisition promoted to writer",
					c.Name, site.Name, n.Name)})
				return true
			}
			break
		}
		if !reacq {
			w.held = append(w.held, heldLock{c: c, site: n})
		}
	}

	switch n.Kind {
	case Abstract:
		for _, m := range n.Body {
			if w.walk(m) {
				return true
			}
		}
	case Conditional:
		for _, cs := range n.Cases {
			for _, m := range cs.Body {
				if w.walk(m) {
					return true
				}
			}
		}
	}
	return false
}
