package core

import (
	"fmt"
	"strings"

	"github.com/flux-lang/flux/internal/lang/token"
)

// typecheck decorates every node with resolved input/output types and
// verifies the program graph (§3.1, pass two):
//
//   - every node mentioned in a flow has a declared or inferable type;
//   - within each chain, the output type of a node matches the input type
//     of its successor;
//   - dispatch patterns have one element per input argument and name
//     declared predicate types;
//   - source nodes take no input and their output feeds the target;
//   - error handlers accept the protected node's input;
//   - the graph is acyclic.
type checker struct {
	p       *Program
	errs    ErrorList
	state   map[*Node]int // 0 unvisited, 1 visiting, 2 done
	visitTo []string      // stack of names for cycle diagnostics
}

const (
	unvisited = iota
	visiting
	done
)

func typecheck(p *Program) error {
	c := &checker{p: p, state: make(map[*Node]int)}

	// Resolve every node reachable from a source; then sweep the rest so
	// unused-but-broken declarations still produce diagnostics.
	for _, s := range p.Sources {
		c.resolve(s.Node)
		c.resolve(s.Target)
	}
	for _, name := range p.Order {
		c.resolve(p.Nodes[name])
	}

	for _, s := range p.Sources {
		c.checkSource(s)
	}
	for _, name := range p.Order {
		c.checkHandler(p.Nodes[name])
	}
	return c.errs.Err()
}

func (c *checker) errorf(pos token.Position, format string, args ...any) {
	c.errs = append(c.errs, &Error{Pos: pos, Msg: fmt.Sprintf(format, args...)})
}

// resolve computes n.In and n.Out, checking internal consistency. It
// detects cycles through abstract and conditional bodies.
func (c *checker) resolve(n *Node) {
	if n == nil {
		return
	}
	switch c.state[n] {
	case done:
		return
	case visiting:
		c.errorf(n.Pos, "cycle in program graph: %s", c.cyclePath(n.Name))
		return
	}
	c.state[n] = visiting
	c.visitTo = append(c.visitTo, n.Name)
	defer func() {
		c.visitTo = c.visitTo[:len(c.visitTo)-1]
		c.state[n] = done
	}()

	switch n.Kind {
	case Concrete:
		if !n.hasSig {
			// Placeholder created for an undefined reference; build
			// already reported it.
			return
		}
	case Abstract:
		c.resolveAbstract(n)
	case Conditional:
		c.resolveConditional(n)
	}
}

func (c *checker) cyclePath(name string) string {
	// Find the first occurrence of name in the visit stack and print the
	// loop from there.
	for i, v := range c.visitTo {
		if v == name {
			return strings.Join(append(c.visitTo[i:], name), " -> ")
		}
	}
	return name
}

// resolveAbstract types an abstract node from its body chain and verifies
// each internal connection.
func (c *checker) resolveAbstract(n *Node) {
	if len(n.Body) == 0 {
		c.errorf(n.Pos, "abstract node %q has an empty flow", n.Name)
		return
	}
	for _, m := range n.Body {
		c.resolve(m)
	}
	c.checkChain(n.Name, n.Body, n.Pos)
	n.In = n.Body[0].In
	n.Out = n.Body[len(n.Body)-1].Out
}

// resolveConditional types a conditional node from its non-empty cases and
// verifies pattern arity, predicate types, case body chains, and the
// agreement of all case types (§2.3).
func (c *checker) resolveConditional(n *Node) {
	if len(n.Cases) == 0 {
		c.errorf(n.Pos, "conditional node %q has no cases", n.Name)
		return
	}
	var first *Case
	for _, cs := range n.Cases {
		for _, m := range cs.Body {
			c.resolve(m)
		}
		if !cs.PassThrough() {
			c.checkChain(n.Name, cs.Body, cs.Pos)
			if first == nil {
				first = cs
			}
		}
	}
	if first == nil {
		c.errorf(n.Pos, "conditional node %q has only pass-through cases; its type cannot be inferred", n.Name)
		return
	}
	n.In = first.Body[0].In
	n.Out = first.Body[len(first.Body)-1].Out

	for _, cs := range n.Cases {
		if len(cs.Pattern) != len(n.In) {
			c.errorf(cs.Pos, "dispatch pattern for %q has %d elements, node takes %d arguments",
				n.Name, len(cs.Pattern), len(n.In))
		}
		if cs.PassThrough() {
			if !typesEqual(n.In, n.Out) {
				c.errorf(cs.Pos, "pass-through case of %q requires input type %s to equal output type %s",
					n.Name, typeString(n.In), typeString(n.Out))
			}
			continue
		}
		if !typesEqual(cs.Body[0].In, n.In) {
			c.errorf(cs.Pos, "case of %q has input type %s, want %s",
				n.Name, typeString(cs.Body[0].In), typeString(n.In))
		}
		if !typesEqual(cs.Body[len(cs.Body)-1].Out, n.Out) {
			c.errorf(cs.Pos, "case of %q has output type %s, want %s",
				n.Name, typeString(cs.Body[len(cs.Body)-1].Out), typeString(n.Out))
		}
	}

	// The final case should be a catch-all; a dispatch with no wildcard
	// row can drop flows at runtime. This mirrors the ordered matching of
	// §2.3 and is a warning, not an error.
	last := n.Cases[len(n.Cases)-1]
	allWild := true
	for _, e := range last.Pattern {
		if !e.Wildcard {
			allWild = false
			break
		}
	}
	if !allWild {
		c.p.Warnings = append(c.p.Warnings, Warning{
			Pos: last.Pos,
			Msg: fmt.Sprintf("conditional node %q has no catch-all case; unmatched flows are dropped", n.Name),
		})
	}
}

// checkChain verifies output->input agreement along a flow chain.
func (c *checker) checkChain(owner string, chain []*Node, pos token.Position) {
	for i := 0; i+1 < len(chain); i++ {
		a, b := chain[i], chain[i+1]
		if a.In == nil && a.Out == nil && a.Kind != Concrete {
			continue // resolution already failed; avoid cascading
		}
		if len(a.Out) == 0 {
			c.errorf(pos, "in flow %q, node %q is a sink but is followed by %q", owner, a.Name, b.Name)
			continue
		}
		if !typesEqual(a.Out, b.In) {
			c.errorf(pos, "in flow %q, output of %q is %s but input of %q is %s",
				owner, a.Name, typeString(a.Out), b.Name, typeString(b.In))
		}
	}
}

// checkSource verifies source arity and the source->target connection.
func (c *checker) checkSource(s *Source) {
	if s.Node.Kind != Concrete {
		c.errorf(s.Pos, "source %q must be a concrete node, not %s", s.Node.Name, s.Node.Kind)
		return
	}
	if len(s.Node.In) != 0 {
		c.errorf(s.Pos, "source node %q must take no inputs, has %s", s.Node.Name, typeString(s.Node.In))
	}
	if len(s.Node.Out) == 0 {
		c.errorf(s.Pos, "source node %q must produce output to initiate a flow", s.Node.Name)
	}
	if !typesEqual(s.Node.Out, s.Target.In) {
		c.errorf(s.Pos, "source %q produces %s but flow %q consumes %s",
			s.Node.Name, typeString(s.Node.Out), s.Target.Name, typeString(s.Target.In))
	}
}

// checkHandler verifies that an error handler consumes the protected
// node's input type — the data in hand when the node failed (§2.4).
func (c *checker) checkHandler(n *Node) {
	if n.Handler == nil {
		return
	}
	h := n.Handler
	if h.Kind != Concrete {
		c.errorf(h.Pos, "error handler %q for %q must be a concrete node", h.Name, n.Name)
		return
	}
	if !typesEqual(h.In, n.In) {
		c.errorf(h.Pos, "error handler %q takes %s but %q fails holding %s",
			h.Name, typeString(h.In), n.Name, typeString(n.In))
	}
}
