package core_test

// Golden-program tests: the four servers of Table 1 must compile
// cleanly, with the structural properties the paper describes. These run
// against the same FluxSource constants the servers execute, so any
// grammar or compiler regression that would break a shipped server
// breaks here first.

import (
	"strings"
	"testing"

	"github.com/flux-lang/flux/internal/core"
	"github.com/flux-lang/flux/internal/lang/parser"
	"github.com/flux-lang/flux/internal/servers/bittorrent"
	"github.com/flux-lang/flux/internal/servers/gameserver"
	"github.com/flux-lang/flux/internal/servers/imageserver"
	"github.com/flux-lang/flux/internal/servers/webserver"
)

func compileGolden(t *testing.T, name, src string) *core.Program {
	t.Helper()
	astProg, err := parser.Parse(name, src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	p, err := core.Build(astProg)
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	return p
}

func TestGoldenImageServer(t *testing.T) {
	p := compileGolden(t, "imageserver.flux", imageserver.FluxSource)
	if len(p.Sources) != 1 {
		t.Errorf("sources = %d", len(p.Sources))
	}
	if len(p.Warnings) != 0 {
		t.Errorf("unexpected warnings: %v", p.Warnings)
	}
	g := p.Graphs["Listen"]
	if g.NumPaths != 11 {
		t.Errorf("paths = %d, want 11", g.NumPaths)
	}
	if names := p.ConstraintNames(); len(names) != 1 || names[0] != "cache" {
		t.Errorf("constraints = %v", names)
	}
}

func TestGoldenWebServer(t *testing.T) {
	p := compileGolden(t, "webserver.flux", webserver.FluxSource)
	if len(p.Warnings) != 0 {
		t.Errorf("unexpected warnings: %v", p.Warnings)
	}
	g := p.Graphs["Listen"]
	// Three dispatch outcomes (dynamic / hit / miss), several handlers.
	if g.NumPaths < 10 {
		t.Errorf("paths = %d, want >= 10", g.NumPaths)
	}
	var labels []string
	for id := uint64(0); id < g.NumPaths; id++ {
		labels = append(labels, g.PathLabel(id))
	}
	all := strings.Join(labels, "\n")
	for _, want := range []string{"RunScript", "ReadFile -> StoreInCache", "FourOhFour", "Cleanup"} {
		if !strings.Contains(all, want) {
			t.Errorf("no path mentions %s:\n%s", want, all)
		}
	}
}

func TestGoldenBitTorrent(t *testing.T) {
	p := compileGolden(t, "bittorrent.flux", bittorrent.FluxSource)
	if len(p.Warnings) != 0 {
		t.Errorf("unexpected warnings: %v", p.Warnings)
	}
	if len(p.Sources) != 5 {
		t.Errorf("sources = %d, want 5 (Listen, Poll, 3 timers)", len(p.Sources))
	}
	// The message loop dispatches on ten predicate types plus catch-all.
	msg := p.Graphs["Poll"]
	if msg.NumPaths < 12 {
		t.Errorf("message-loop paths = %d", msg.NumPaths)
	}
	// Sessions: the Poll source carries the session function.
	if msg.SessionFunc != "PeerSession" {
		t.Errorf("session func = %q", msg.SessionFunc)
	}
	// The paper's famous empty-poll path must exist.
	var found bool
	for id := uint64(0); id < msg.NumPaths; id++ {
		if msg.PathLabel(id) == "Poll -> GetClients -> SelectSockets -> CheckSockets -> ERROR" {
			found = true
		}
	}
	if !found {
		t.Error("empty-poll ERROR path missing from the graph")
	}
}

func TestGoldenGameServer(t *testing.T) {
	p := compileGolden(t, "gameserver.flux", gameserver.FluxSource)
	if len(p.Warnings) != 0 {
		t.Errorf("unexpected warnings: %v", p.Warnings)
	}
	if len(p.Sources) != 2 {
		t.Errorf("sources = %d, want 2", len(p.Sources))
	}
	// Both flows share the "state" constraint.
	plan := p.PlacementPlan()
	var stateGroup *core.PlacementGroup
	for i := range plan.Groups {
		for _, c := range plan.Groups[i].Constraints {
			if c == "state" {
				stateGroup = &plan.Groups[i]
			}
		}
	}
	if stateGroup == nil {
		t.Fatalf("no state group: %+v", plan)
	}
	want := map[string]bool{"ApplyMove": true, "ComputeState": true}
	for _, n := range stateGroup.Nodes {
		delete(want, n)
	}
	if len(want) != 0 {
		t.Errorf("state group %v missing %v", stateGroup.Nodes, want)
	}
}
