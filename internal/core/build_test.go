package core

import (
	"strings"
	"testing"

	"github.com/flux-lang/flux/internal/lang/ast"
	"github.com/flux-lang/flux/internal/lang/parser"
)

// imageServerSrc is the complete Figure 2 program.
const imageServerSrc = `
Listen () => (int socket);
ReadRequest (int socket) => (int socket, bool close, image_tag *request);
CheckCache (int socket, bool close, image_tag *request)
  => (int socket, bool close, image_tag *request);
ReadInFromDisk (int socket, bool close, image_tag *request)
  => (int socket, bool close, image_tag *request, __u8 *rgb_data);
StoreInCache (int socket, bool close, image_tag *request)
  => (int socket, bool close, image_tag *request);
Compress (int socket, bool close, image_tag *request, __u8 *rgb_data)
  => (int socket, bool close, image_tag *request);
Write (int socket, bool close, image_tag *request)
  => (int socket, bool close, image_tag *request);
Complete (int socket, bool close, image_tag *request) => ();
FourOhFour (int socket, bool close, image_tag *request) => ();

source Listen => Image;
Image = ReadRequest -> CheckCache -> Handler -> Write -> Complete;

typedef hit TestInCache;
Handler:[_, _, hit] = ;
Handler:[_, _, _] = ReadInFromDisk -> Compress -> StoreInCache;

handle error ReadInFromDisk => FourOhFour;

atomic CheckCache:{cache};
atomic StoreInCache:{cache};
atomic Complete:{cache};
`

func compile(t *testing.T, src string) *Program {
	t.Helper()
	astProg, err := parser.Parse("test.flux", src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	p, err := Build(astProg)
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	return p
}

func compileErr(t *testing.T, src string) error {
	t.Helper()
	astProg, err := parser.Parse("test.flux", src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	_, err = Build(astProg)
	if err == nil {
		t.Fatal("expected a build error")
	}
	return err
}

func TestBuildImageServer(t *testing.T) {
	p := compile(t, imageServerSrc)

	if len(p.Sources) != 1 {
		t.Fatalf("sources = %d", len(p.Sources))
	}
	if p.Sources[0].Node.Name != "Listen" || p.Sources[0].Target.Name != "Image" {
		t.Errorf("source = %s => %s", p.Sources[0].Node.Name, p.Sources[0].Target.Name)
	}

	img := p.Node("Image")
	if img == nil || img.Kind != Abstract || len(img.Body) != 5 {
		t.Fatalf("Image node = %+v", img)
	}
	h := p.Node("Handler")
	if h == nil || h.Kind != Conditional || len(h.Cases) != 2 {
		t.Fatalf("Handler node = %+v", h)
	}
	if !h.Cases[0].PassThrough() {
		t.Error("hit case should be pass-through")
	}
	if len(h.Cases[1].Body) != 3 {
		t.Errorf("miss case body = %v", h.Cases[1].Body)
	}

	rd := p.Node("ReadInFromDisk")
	if rd.Handler == nil || rd.Handler.Name != "FourOhFour" {
		t.Errorf("error handler = %v", rd.Handler)
	}

	if len(p.Node("CheckCache").Declared) != 1 || p.Node("CheckCache").Declared[0].Name != "cache" {
		t.Errorf("CheckCache constraints = %v", p.Node("CheckCache").Declared)
	}
}

func TestTypeInference(t *testing.T) {
	p := compile(t, imageServerSrc)

	img := p.Node("Image")
	if got := typeString(img.In); got != "(int)" {
		t.Errorf("Image input = %s", got)
	}
	if len(img.Out) != 0 {
		t.Errorf("Image output = %s", typeString(img.Out))
	}

	h := p.Node("Handler")
	if got := typeString(h.In); got != "(int, bool, image_tag*)" {
		t.Errorf("Handler input = %s", got)
	}
	if got := typeString(h.Out); got != "(int, bool, image_tag*)" {
		t.Errorf("Handler output = %s", got)
	}
}

func TestUndefinedNodeReference(t *testing.T) {
	err := compileErr(t, `
Listen () => (int s);
source Listen => Missing;
`)
	if !strings.Contains(err.Error(), "undefined node") {
		t.Errorf("error = %v", err)
	}
}

func TestUndefinedPredicateType(t *testing.T) {
	err := compileErr(t, `
Listen () => (int s);
A (int s) => (int s);
B (int s) => (int s);
source Listen => Flow;
Flow = A -> H -> B;
H:[nosuchtype] = ;
H:[_] = A;
`)
	if !strings.Contains(err.Error(), "undefined predicate type") {
		t.Errorf("error = %v", err)
	}
}

func TestTypeMismatch(t *testing.T) {
	err := compileErr(t, `
Listen () => (int s);
A (int s) => (int s, bool b);
B (int s) => ();
source Listen => Flow;
Flow = A -> B;
`)
	if !strings.Contains(err.Error(), `output of "A"`) {
		t.Errorf("error = %v", err)
	}
}

func TestCycleRejected(t *testing.T) {
	err := compileErr(t, `
Listen () => (int s);
A (int s) => (int s);
source Listen => F;
F = A -> G;
G = A -> F;
`)
	if !strings.Contains(err.Error(), "cycle") {
		t.Errorf("error = %v", err)
	}
}

func TestSourceMustBeNullary(t *testing.T) {
	err := compileErr(t, `
Listen (int x) => (int s);
A (int s) => ();
source Listen => A;
`)
	if !strings.Contains(err.Error(), "must take no inputs") {
		t.Errorf("error = %v", err)
	}
}

func TestSinkInMiddleOfFlowRejected(t *testing.T) {
	err := compileErr(t, `
Listen () => (int s);
A (int s) => ();
B (int s) => ();
source Listen => F;
F = A -> B;
`)
	if !strings.Contains(err.Error(), "sink") {
		t.Errorf("error = %v", err)
	}
}

func TestHandlerTypeMismatch(t *testing.T) {
	err := compileErr(t, `
Listen () => (int s);
A (int s) => (int s);
H (bool b) => ();
source Listen => F;
F = A;
handle error A => H;
`)
	if !strings.Contains(err.Error(), "error handler") {
		t.Errorf("error = %v", err)
	}
}

func TestSelfHandlerRejected(t *testing.T) {
	err := compileErr(t, `
Listen () => (int s);
A (int s) => (int s);
source Listen => F;
F = A;
handle error A => A;
`)
	if !strings.Contains(err.Error(), "cannot handle its own errors") {
		t.Errorf("error = %v", err)
	}
}

func TestRedeclarationRejected(t *testing.T) {
	err := compileErr(t, `
Listen () => (int s);
Listen () => (int t);
A (int s) => ();
source Listen => A;
`)
	if !strings.Contains(err.Error(), "redeclared") {
		t.Errorf("error = %v", err)
	}
}

func TestNoSourceRejected(t *testing.T) {
	err := compileErr(t, `A () => (int s);`)
	if !strings.Contains(err.Error(), "no source") {
		t.Errorf("error = %v", err)
	}
}

func TestPassThroughTypeMismatch(t *testing.T) {
	err := compileErr(t, `
Listen () => (int s);
A (int s) => (int s, bool b);
B (int s, bool b) => (bool b);
C (bool b) => ();
source Listen => F;
F = A -> H -> C;
typedef p P;
H:[_, p] = ;
H:[_, _] = B;
`)
	if !strings.Contains(err.Error(), "pass-through") {
		t.Errorf("error = %v", err)
	}
}

func TestPatternArityMismatch(t *testing.T) {
	err := compileErr(t, `
Listen () => (int s);
A (int s) => (int s);
source Listen => F;
F = A -> H;
typedef p P;
H:[p, _] = ;
H:[_] = A;
`)
	if !strings.Contains(err.Error(), "pattern") {
		t.Errorf("error = %v", err)
	}
}

func TestNoCatchAllWarning(t *testing.T) {
	p := compile(t, `
Listen () => (int s);
A (int s) => (int s);
source Listen => F;
F = A -> H;
typedef p P;
H:[p] = A;
`)
	var found bool
	for _, w := range p.Warnings {
		if strings.Contains(w.Msg, "catch-all") {
			found = true
		}
	}
	if !found {
		t.Errorf("expected catch-all warning, got %v", p.Warnings)
	}
}

func TestConstraintModesParsedIntoIR(t *testing.T) {
	p := compile(t, `
Listen () => (int s);
A (int s) => (int s);
B (int s) => ();
source Listen => F;
F = A -> B;
atomic A:{stats?};
atomic B:{stats};
`)
	a := p.Node("A")
	if a.Effective[0].Mode != ast.Reader {
		t.Errorf("A mode = %v", a.Effective[0].Mode)
	}
	b := p.Node("B")
	if b.Effective[0].Mode != ast.Writer {
		t.Errorf("B mode = %v", b.Effective[0].Mode)
	}
}

func TestSessionScopeConflictRejected(t *testing.T) {
	err := compileErr(t, `
Listen () => (int s);
A (int s) => (int s);
B (int s) => ();
source Listen => F;
F = A -> B;
atomic A:{state(session)};
atomic B:{state};
`)
	if !strings.Contains(err.Error(), "session-scoped and global") {
		t.Errorf("error = %v", err)
	}
}

func TestConstraintNames(t *testing.T) {
	p := compile(t, imageServerSrc)
	names := p.ConstraintNames()
	if len(names) != 1 || names[0] != "cache" {
		t.Errorf("constraint names = %v", names)
	}
}

func TestConcreteNodes(t *testing.T) {
	p := compile(t, imageServerSrc)
	nodes := p.ConcreteNodes()
	if len(nodes) != 9 {
		t.Errorf("concrete nodes = %d", len(nodes))
	}
	if nodes[0].Name != "Listen" {
		t.Errorf("first concrete node = %s", nodes[0].Name)
	}
}
