package core

import (
	"fmt"

	"github.com/flux-lang/flux/internal/lang/ast"
)

// FlatKind classifies vertices of the flattened executable graph.
type FlatKind int

const (
	// FlatExec runs a concrete node's function.
	FlatExec FlatKind = iota
	// FlatBranch evaluates a conditional node's dispatch patterns in
	// order and follows the first matching case edge.
	FlatBranch
	// FlatAcquire acquires a constraint set in canonical order.
	FlatAcquire
	// FlatRelease releases a constraint set in reverse order.
	FlatRelease
	// FlatExit terminates a flow normally.
	FlatExit
	// FlatError terminates a flow after an error (handled or not).
	FlatError
)

func (k FlatKind) String() string {
	switch k {
	case FlatExec:
		return "exec"
	case FlatBranch:
		return "branch"
	case FlatAcquire:
		return "acquire"
	case FlatRelease:
		return "release"
	case FlatExit:
		return "exit"
	case FlatError:
		return "error"
	default:
		return fmt.Sprintf("flat(%d)", int(k))
	}
}

// FlatEdge is a directed edge of the flat graph. Inc carries the
// Ball-Larus increment added to a flow's path register when the edge is
// traversed.
type FlatEdge struct {
	From, To *FlatNode
	// CaseIndex identifies the dispatch case for branch out-edges; -1
	// otherwise.
	CaseIndex int
	// Err marks the error edge out of an exec vertex.
	Err bool
	Inc uint64
}

// FlatNode is a vertex of the flattened executable graph.
type FlatNode struct {
	// ID is the vertex's dense per-graph index: FlatGraph.Nodes[ID] is
	// this vertex. Runtimes rely on the density to build flat
	// per-vertex dispatch tables indexed by ID instead of maps keyed by
	// vertex pointer.
	ID   int
	Kind FlatKind
	// Node is the program-graph node this vertex came from: the concrete
	// node for exec, the conditional node for branch, and the owning
	// node for acquire/release. Nil for exit/error terminals.
	Node *Node
	// Cons is the constraint set for acquire/release vertices, in
	// acquisition order.
	Cons []ast.Constraint
	// Out lists ordinary out-edges: one for exec/acquire/release, one
	// per case for branch (in dispatch order), none for terminals.
	Out []*FlatEdge
	// ErrEdge, on exec vertices, is taken when the node function returns
	// an error. It leads to the innermost error handler's exec vertex,
	// or straight to the error terminal.
	ErrEdge *FlatEdge
}

// Label returns a display name for the vertex.
func (f *FlatNode) Label() string {
	switch f.Kind {
	case FlatExec:
		return f.Node.Name
	case FlatBranch:
		return f.Node.Name + "?"
	case FlatAcquire:
		return "acquire" + consLabel(f.Cons)
	case FlatRelease:
		return "release" + consLabel(f.Cons)
	case FlatExit:
		return "EXIT"
	case FlatError:
		return "ERROR"
	}
	return "?"
}

func consLabel(cs []ast.Constraint) string {
	s := "{"
	for i, c := range cs {
		if i > 0 {
			s += ","
		}
		s += c.String()
	}
	return s + "}"
}

// Edges enumerates every out-edge, error edge last. The order defines the
// Ball-Larus increment assignment and must be deterministic.
func (f *FlatNode) Edges() []*FlatEdge {
	if f.ErrEdge == nil {
		return f.Out
	}
	es := make([]*FlatEdge, 0, len(f.Out)+1)
	es = append(es, f.Out...)
	es = append(es, f.ErrEdge)
	return es
}

// FlatGraph is the executable form of one source's data flow: an acyclic
// graph of exec/branch/acquire/release vertices between a single entry
// and the exit/error terminals.
type FlatGraph struct {
	// Source is the source node whose outputs feed this graph.
	Source *Node
	// SessionFunc names the session-id function for session-scoped
	// constraints, or "" (§2.5.1).
	SessionFunc string
	Entry       *FlatNode
	Exit        *FlatNode
	ErrExit     *FlatNode
	// Nodes lists every vertex; Entry is Nodes[0] unless the flow is
	// empty. IDs index into this slice.
	Nodes []*FlatNode
	// NumPaths is the number of distinct root-to-terminal paths, i.e.
	// the Ball-Larus path-ID space (§5.2).
	NumPaths uint64

	program *Program
}

// Program returns the program this graph was flattened from.
func (g *FlatGraph) Program() *Program { return g.program }

func (g *FlatGraph) newNode(kind FlatKind, n *Node) *FlatNode {
	fn := &FlatNode{ID: len(g.Nodes), Kind: kind, Node: n}
	g.Nodes = append(g.Nodes, fn)
	return fn
}

func edge(from, to *FlatNode) *FlatEdge {
	return &FlatEdge{From: from, To: to, CaseIndex: -1}
}

// flattenAll builds and path-numbers one flat graph per source.
func flattenAll(p *Program) error {
	var errs ErrorList
	for _, s := range p.Sources {
		if _, dup := p.Graphs[s.Node.Name]; dup {
			errs = append(errs, &Error{Pos: s.Pos, Msg: fmt.Sprintf(
				"node %q declared as a source more than once", s.Node.Name)})
			continue
		}
		g := flatten(p, s)
		numberPaths(g)
		p.Graphs[s.Node.Name] = g
	}
	return errs.Err()
}

// flattener builds one flat graph; handler exec chains are shared so that
// many protected nodes can route errors to one handler vertex.
type flattener struct {
	g        *FlatGraph
	handlers map[*Node]*FlatNode
	// building guards against handler cycles (A handles B, B handles A):
	// a handler whose expansion is in progress routes errors straight to
	// the error terminal instead of recursing forever.
	building map[*Node]bool
}

func flatten(p *Program, s *Source) *FlatGraph {
	g := &FlatGraph{Source: s.Node, SessionFunc: p.Sessions[s.Node.Name], program: p}
	f := &flattener{g: g, handlers: make(map[*Node]*FlatNode), building: make(map[*Node]bool)}
	g.Exit = g.newNode(FlatExit, nil)
	g.ErrExit = g.newNode(FlatError, nil)
	g.Entry = f.build(s.Target, g.Exit, nil)
	return g
}

// build flattens node n so that normal completion continues to next.
// hstack is the stack of enclosing error handlers, innermost last.
func (f *flattener) build(n *Node, next *FlatNode, hstack []*Node) *FlatNode {
	// A constrained node executes inside an acquire/release bracket: the
	// whole expansion runs holding the constraint set (two-phase).
	inner := next
	var release *FlatNode
	if len(n.Effective) > 0 {
		release = f.g.newNode(FlatRelease, n)
		release.Cons = n.Effective
		release.Out = []*FlatEdge{edge(release, next)}
		inner = release
	}

	if n.Handler != nil {
		hstack = append(hstack[:len(hstack):len(hstack)], n.Handler)
	}

	var entry *FlatNode
	switch n.Kind {
	case Concrete:
		ex := f.g.newNode(FlatExec, n)
		ex.Out = []*FlatEdge{edge(ex, inner)}
		// Omit the error edge when it would parallel the normal edge
		// (a handler whose success and failure both terminate at the
		// error terminal); parallel edges would create distinct path
		// IDs for indistinguishable paths.
		if et := f.errTarget(n, hstack); et != inner {
			errEdge := edge(ex, et)
			errEdge.Err = true
			ex.ErrEdge = errEdge
		}
		entry = ex

	case Abstract:
		entry = f.buildChain(n.Body, inner, hstack)

	case Conditional:
		br := f.g.newNode(FlatBranch, n)
		for i, cs := range n.Cases {
			var to *FlatNode
			if cs.PassThrough() {
				to = inner
			} else {
				to = f.buildChain(cs.Body, inner, hstack)
			}
			e := edge(br, to)
			e.CaseIndex = i
			br.Out = append(br.Out, e)
		}
		entry = br
	}

	if release != nil {
		acq := f.g.newNode(FlatAcquire, n)
		acq.Cons = n.Effective
		acq.Out = []*FlatEdge{edge(acq, entry)}
		return acq
	}
	return entry
}

// buildChain flattens a sequential flow right-to-left.
func (f *flattener) buildChain(chain []*Node, next *FlatNode, hstack []*Node) *FlatNode {
	cur := next
	for i := len(chain) - 1; i >= 0; i-- {
		cur = f.build(chain[i], cur, hstack)
	}
	return cur
}

// errTarget resolves where an error in node n sends the flow: the node's
// own handler, else the innermost enclosing handler, else the error
// terminal. Handler vertices are shared per handler node.
func (f *flattener) errTarget(n *Node, hstack []*Node) *FlatNode {
	h := n.Handler
	if h == nil && len(hstack) > 0 {
		h = hstack[len(hstack)-1]
	}
	if h == nil {
		return f.g.ErrExit
	}
	if fe, ok := f.handlers[h]; ok {
		return fe
	}
	if f.building[h] {
		return f.g.ErrExit
	}
	// The handler runs and then the flow terminates on the error
	// terminal (§2.4). A failing handler also terminates.
	f.building[h] = true
	fe := f.build(h, f.g.ErrExit, nil)
	delete(f.building, h)
	f.handlers[h] = fe
	return fe
}
