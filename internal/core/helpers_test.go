package core

import (
	"github.com/flux-lang/flux/internal/lang/ast"
	"github.com/flux-lang/flux/internal/lang/parser"
)

// parserQuick parses Flux source for property tests, returning errors
// instead of failing a *testing.T (quick.Check closures have none).
func parserQuick(src string) (*ast.Program, error) {
	return parser.Parse("quick.flux", src)
}
