package metrics

import (
	"sync"
	"testing"
	"time"
)

func TestLatencySummary(t *testing.T) {
	r := NewLatencyRecorder()
	for i := 1; i <= 100; i++ {
		r.Record(time.Duration(i) * time.Millisecond)
	}
	s := r.Summary()
	if s.Count != 100 {
		t.Errorf("count = %d", s.Count)
	}
	if s.Mean != 50500*time.Microsecond {
		t.Errorf("mean = %v", s.Mean)
	}
	if s.Min != time.Millisecond || s.Max != 100*time.Millisecond {
		t.Errorf("min/max = %v/%v", s.Min, s.Max)
	}
	if s.P50 != 50*time.Millisecond {
		t.Errorf("p50 = %v", s.P50)
	}
	if s.P95 != 95*time.Millisecond {
		t.Errorf("p95 = %v", s.P95)
	}
	if s.P99 != 99*time.Millisecond {
		t.Errorf("p99 = %v", s.P99)
	}
}

func TestEmptySummary(t *testing.T) {
	s := NewLatencyRecorder().Summary()
	if s.Count != 0 || s.Mean != 0 || s.P95 != 0 {
		t.Errorf("empty summary = %+v", s)
	}
	if s.String() == "" {
		t.Error("String should render for empty summary")
	}
}

func TestReset(t *testing.T) {
	r := NewLatencyRecorder()
	r.Record(time.Second)
	r.Reset()
	if r.Count() != 0 {
		t.Error("reset did not clear samples")
	}
}

func TestConcurrentRecording(t *testing.T) {
	r := NewLatencyRecorder()
	var wg sync.WaitGroup
	for g := 0; g < 10; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				r.Record(time.Microsecond)
			}
		}()
	}
	wg.Wait()
	if r.Count() != 10000 {
		t.Errorf("count = %d", r.Count())
	}
}

func TestThroughput(t *testing.T) {
	tp := NewThroughput()
	tp.Add(10, 1000)
	tp.Add(5, 500)
	ops, bytes := tp.Totals()
	if ops != 15 || bytes != 1500 {
		t.Errorf("totals = %d, %d", ops, bytes)
	}
	opsRate, mbps := tp.Rates()
	if opsRate <= 0 || mbps <= 0 {
		t.Errorf("rates = %f, %f", opsRate, mbps)
	}
	tp.Reset()
	ops, bytes = tp.Totals()
	if ops != 0 || bytes != 0 {
		t.Errorf("after reset: %d, %d", ops, bytes)
	}
}

func TestSummarizeSingleton(t *testing.T) {
	s := Summarize([]time.Duration{42 * time.Millisecond})
	if s.Mean != 42*time.Millisecond || s.P50 != 42*time.Millisecond ||
		s.P99 != 42*time.Millisecond || s.Min != s.Max {
		t.Errorf("singleton summary = %+v", s)
	}
}
