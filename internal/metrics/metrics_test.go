package metrics

import (
	"sync"
	"testing"
	"time"
)

func TestLatencySummary(t *testing.T) {
	r := NewLatencyRecorder()
	for i := 1; i <= 100; i++ {
		r.Record(time.Duration(i) * time.Millisecond)
	}
	s := r.Summary()
	if s.Count != 100 {
		t.Errorf("count = %d", s.Count)
	}
	if s.Mean != 50500*time.Microsecond {
		t.Errorf("mean = %v", s.Mean)
	}
	if s.Min != time.Millisecond || s.Max != 100*time.Millisecond {
		t.Errorf("min/max = %v/%v", s.Min, s.Max)
	}
	if s.P50 != 50*time.Millisecond {
		t.Errorf("p50 = %v", s.P50)
	}
	if s.P95 != 95*time.Millisecond {
		t.Errorf("p95 = %v", s.P95)
	}
	if s.P99 != 99*time.Millisecond {
		t.Errorf("p99 = %v", s.P99)
	}
}

func TestEmptySummary(t *testing.T) {
	s := NewLatencyRecorder().Summary()
	if s.Count != 0 || s.Mean != 0 || s.P95 != 0 {
		t.Errorf("empty summary = %+v", s)
	}
	if s.String() == "" {
		t.Error("String should render for empty summary")
	}
}

func TestReset(t *testing.T) {
	r := NewLatencyRecorder()
	r.Record(time.Second)
	r.Reset()
	if r.Count() != 0 {
		t.Error("reset did not clear samples")
	}
}

func TestConcurrentRecording(t *testing.T) {
	r := NewLatencyRecorder()
	var wg sync.WaitGroup
	for g := 0; g < 10; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				r.Record(time.Microsecond)
			}
		}()
	}
	wg.Wait()
	if r.Count() != 10000 {
		t.Errorf("count = %d", r.Count())
	}
}

func TestThroughput(t *testing.T) {
	tp := NewThroughput()
	tp.Add(10, 1000)
	tp.Add(5, 500)
	ops, bytes := tp.Totals()
	if ops != 15 || bytes != 1500 {
		t.Errorf("totals = %d, %d", ops, bytes)
	}
	opsRate, mbps := tp.Rates()
	if opsRate <= 0 || mbps <= 0 {
		t.Errorf("rates = %f, %f", opsRate, mbps)
	}
	tp.Reset()
	ops, bytes = tp.Totals()
	if ops != 0 || bytes != 0 {
		t.Errorf("after reset: %d, %d", ops, bytes)
	}
}

func TestSummarizeSingleton(t *testing.T) {
	s := Summarize([]time.Duration{42 * time.Millisecond})
	if s.Mean != 42*time.Millisecond || s.P50 != 42*time.Millisecond ||
		s.P99 != 42*time.Millisecond || s.Min != s.Max {
		t.Errorf("singleton summary = %+v", s)
	}
}

// TestReservoirBoundsMemory is the regression test for the recorder's
// storage: a 10M-sample run must hold exactly the reservoir cap in
// memory while keeping count, mean, and extrema exact and quantiles
// statistically sound (Vitter's algorithm R gives every sample equal
// inclusion probability).
func TestReservoirBoundsMemory(t *testing.T) {
	if testing.Short() {
		t.Skip("10M samples")
	}
	r := NewLatencyRecorder()
	const n = 10_000_000
	for i := 1; i <= n; i++ {
		// Uniform 1..10s in milliseconds steps keeps expected quantiles
		// trivial: pX ≈ X% of the range.
		r.Record(time.Duration(i%10000+1) * time.Millisecond)
	}
	if got := r.Count(); got != n {
		t.Fatalf("count = %d, want %d", got, n)
	}
	r.mu.Lock()
	stored := len(r.samples)
	capd := cap(r.samples)
	r.mu.Unlock()
	if stored != latencyReservoir {
		t.Fatalf("stored samples = %d, want %d", stored, latencyReservoir)
	}
	if capd > 2*latencyReservoir {
		t.Fatalf("reservoir capacity grew to %d", capd)
	}

	s := r.Summary()
	if s.Count != n {
		t.Errorf("summary count = %d", s.Count)
	}
	if s.Min != time.Millisecond || s.Max != 10*time.Second {
		t.Errorf("min/max = %v/%v", s.Min, s.Max)
	}
	// Exact mean from running sum, not the reservoir.
	wantMean := 5000500 * time.Microsecond
	if diff := s.Mean - wantMean; diff < -time.Millisecond || diff > time.Millisecond {
		t.Errorf("mean = %v, want ~%v", s.Mean, wantMean)
	}
	// Quantiles estimated from the reservoir: within 2% of truth.
	checks := []struct {
		got, want time.Duration
	}{
		{s.P50, 5 * time.Second},
		{s.P95, 9500 * time.Millisecond},
		{s.P99, 9900 * time.Millisecond},
	}
	for _, c := range checks {
		lo := c.want - c.want/50
		hi := c.want + c.want/50
		if c.got < lo || c.got > hi {
			t.Errorf("quantile = %v, want within 2%% of %v", c.got, c.want)
		}
	}
}
