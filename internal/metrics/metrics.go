// Package metrics provides the measurement plumbing the benchmark harness
// uses: a concurrent latency recorder with percentiles and a windowed
// throughput counter, with warm-up trimming matching the paper's
// methodology (runs of two minutes ignoring the first twenty seconds).
package metrics

import (
	"fmt"
	"sort"
	"sync"
	"time"
)

// latencyReservoir bounds a LatencyRecorder's stored samples. Up to
// this many samples the recorder is exact; past it, reservoir sampling
// (Vitter's algorithm R) keeps a uniform subset for the percentiles
// while count/sum/min/max stay exact. 32768 samples hold percentile
// error well under the bucket noise of any run this harness does, and
// cap the recorder at 256 KB however long an open-loop run offers load
// — the old recorder appended every sample forever and grew without
// bound.
const latencyReservoir = 1 << 15

// LatencyRecorder accumulates latency samples from many goroutines in
// bounded memory: exact aggregate statistics, reservoir-sampled
// percentiles.
type LatencyRecorder struct {
	mu       sync.Mutex
	count    uint64
	sum      time.Duration
	min, max time.Duration
	samples  []time.Duration // the reservoir; every sample while count <= cap
	rng      uint64          // xorshift64 state for reservoir replacement
}

// NewLatencyRecorder returns an empty recorder.
func NewLatencyRecorder() *LatencyRecorder {
	return &LatencyRecorder{}
}

// Record adds one sample.
func (r *LatencyRecorder) Record(d time.Duration) {
	r.mu.Lock()
	r.count++
	r.sum += d
	if r.count == 1 || d < r.min {
		r.min = d
	}
	if d > r.max {
		r.max = d
	}
	if len(r.samples) < latencyReservoir {
		r.samples = append(r.samples, d)
	} else {
		// Algorithm R: replace a random slot with probability cap/count,
		// keeping the reservoir a uniform sample of everything seen.
		if j := r.next() % r.count; j < latencyReservoir {
			r.samples[j] = d
		}
	}
	r.mu.Unlock()
}

// next steps the recorder's xorshift64 state (deterministic per
// recorder, so tests are stable). Callers hold r.mu.
func (r *LatencyRecorder) next() uint64 {
	x := r.rng
	if x == 0 {
		x = 0x9E3779B97F4A7C15
	}
	x ^= x << 13
	x ^= x >> 7
	x ^= x << 17
	r.rng = x
	return x
}

// Count returns the number of recorded samples (not the bounded subset
// retained for percentiles).
func (r *LatencyRecorder) Count() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return int(r.count)
}

// Reset discards all samples (warm-up trimming).
func (r *LatencyRecorder) Reset() {
	r.mu.Lock()
	r.count, r.sum, r.min, r.max = 0, 0, 0, 0
	r.samples = r.samples[:0]
	r.mu.Unlock()
}

// Summary computes the distribution statistics. Count, Mean, Min, and
// Max are exact for every recorded sample; the percentiles are computed
// over the reservoir — identical to the full set until the reservoir
// cap, a uniform approximation past it.
func (r *LatencyRecorder) Summary() LatencySummary {
	r.mu.Lock()
	count, sum, min, max := r.count, r.sum, r.min, r.max
	samples := append([]time.Duration(nil), r.samples...)
	r.mu.Unlock()
	s := Summarize(samples)
	s.Count = int(count)
	if count > 0 {
		s.Mean = sum / time.Duration(count)
		s.Min, s.Max = min, max
	}
	return s
}

// LatencySummary is a latency distribution digest.
type LatencySummary struct {
	Count         int
	Mean          time.Duration
	Min, Max      time.Duration
	P50, P95, P99 time.Duration
}

// Summarize digests a sample set.
func Summarize(samples []time.Duration) LatencySummary {
	s := LatencySummary{Count: len(samples)}
	if len(samples) == 0 {
		return s
	}
	sorted := append([]time.Duration(nil), samples...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	var sum time.Duration
	for _, v := range sorted {
		sum += v
	}
	s.Mean = sum / time.Duration(len(sorted))
	s.Min = sorted[0]
	s.Max = sorted[len(sorted)-1]
	s.P50 = quantile(sorted, 0.50)
	s.P95 = quantile(sorted, 0.95)
	s.P99 = quantile(sorted, 0.99)
	return s
}

func quantile(sorted []time.Duration, q float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(q*float64(len(sorted))+0.5) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}

func (s LatencySummary) String() string {
	return fmt.Sprintf("n=%d mean=%v p50=%v p95=%v p99=%v max=%v",
		s.Count, s.Mean.Round(time.Microsecond), s.P50.Round(time.Microsecond),
		s.P95.Round(time.Microsecond), s.P99.Round(time.Microsecond), s.Max.Round(time.Microsecond))
}

// Throughput tracks completed operations and bytes over a measurement
// window.
type Throughput struct {
	mu    sync.Mutex
	ops   uint64
	bytes uint64
	start time.Time
}

// NewThroughput starts a measurement window now.
func NewThroughput() *Throughput {
	return &Throughput{start: time.Now()}
}

// Add records n completed operations carrying b payload bytes.
func (t *Throughput) Add(n, b uint64) {
	t.mu.Lock()
	t.ops += n
	t.bytes += b
	t.mu.Unlock()
}

// Reset restarts the window (warm-up trimming).
func (t *Throughput) Reset() {
	t.mu.Lock()
	t.ops, t.bytes = 0, 0
	t.start = time.Now()
	t.mu.Unlock()
}

// Rates returns operations/sec and megabits/sec since the window start.
func (t *Throughput) Rates() (opsPerSec, mbps float64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	elapsed := time.Since(t.start).Seconds()
	if elapsed <= 0 {
		return 0, 0
	}
	return float64(t.ops) / elapsed, float64(t.bytes) * 8 / 1e6 / elapsed
}

// Totals returns the raw counters.
func (t *Throughput) Totals() (ops, bytes uint64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.ops, t.bytes
}
