// Package metrics provides the measurement plumbing the benchmark harness
// uses: a concurrent latency recorder with percentiles and a windowed
// throughput counter, with warm-up trimming matching the paper's
// methodology (runs of two minutes ignoring the first twenty seconds).
package metrics

import (
	"fmt"
	"sort"
	"sync"
	"time"
)

// LatencyRecorder accumulates latency samples from many goroutines.
type LatencyRecorder struct {
	mu      sync.Mutex
	samples []time.Duration
}

// NewLatencyRecorder returns an empty recorder.
func NewLatencyRecorder() *LatencyRecorder {
	return &LatencyRecorder{}
}

// Record adds one sample.
func (r *LatencyRecorder) Record(d time.Duration) {
	r.mu.Lock()
	r.samples = append(r.samples, d)
	r.mu.Unlock()
}

// Count returns the number of samples.
func (r *LatencyRecorder) Count() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.samples)
}

// Reset discards all samples (warm-up trimming).
func (r *LatencyRecorder) Reset() {
	r.mu.Lock()
	r.samples = r.samples[:0]
	r.mu.Unlock()
}

// Summary computes the distribution statistics.
func (r *LatencyRecorder) Summary() LatencySummary {
	r.mu.Lock()
	samples := append([]time.Duration(nil), r.samples...)
	r.mu.Unlock()
	return Summarize(samples)
}

// LatencySummary is a latency distribution digest.
type LatencySummary struct {
	Count         int
	Mean          time.Duration
	Min, Max      time.Duration
	P50, P95, P99 time.Duration
}

// Summarize digests a sample set.
func Summarize(samples []time.Duration) LatencySummary {
	s := LatencySummary{Count: len(samples)}
	if len(samples) == 0 {
		return s
	}
	sorted := append([]time.Duration(nil), samples...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	var sum time.Duration
	for _, v := range sorted {
		sum += v
	}
	s.Mean = sum / time.Duration(len(sorted))
	s.Min = sorted[0]
	s.Max = sorted[len(sorted)-1]
	s.P50 = quantile(sorted, 0.50)
	s.P95 = quantile(sorted, 0.95)
	s.P99 = quantile(sorted, 0.99)
	return s
}

func quantile(sorted []time.Duration, q float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(q*float64(len(sorted))+0.5) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}

func (s LatencySummary) String() string {
	return fmt.Sprintf("n=%d mean=%v p50=%v p95=%v p99=%v max=%v",
		s.Count, s.Mean.Round(time.Microsecond), s.P50.Round(time.Microsecond),
		s.P95.Round(time.Microsecond), s.P99.Round(time.Microsecond), s.Max.Round(time.Microsecond))
}

// Throughput tracks completed operations and bytes over a measurement
// window.
type Throughput struct {
	mu    sync.Mutex
	ops   uint64
	bytes uint64
	start time.Time
}

// NewThroughput starts a measurement window now.
func NewThroughput() *Throughput {
	return &Throughput{start: time.Now()}
}

// Add records n completed operations carrying b payload bytes.
func (t *Throughput) Add(n, b uint64) {
	t.mu.Lock()
	t.ops += n
	t.bytes += b
	t.mu.Unlock()
}

// Reset restarts the window (warm-up trimming).
func (t *Throughput) Reset() {
	t.mu.Lock()
	t.ops, t.bytes = 0, 0
	t.start = time.Now()
	t.mu.Unlock()
}

// Rates returns operations/sec and megabits/sec since the window start.
func (t *Throughput) Rates() (opsPerSec, mbps float64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	elapsed := time.Since(t.start).Seconds()
	if elapsed <= 0 {
		return 0, 0
	}
	return float64(t.ops) / elapsed, float64(t.bytes) * 8 / 1e6 / elapsed
}

// Totals returns the raw counters.
func (t *Throughput) Totals() (ops, bytes uint64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.ops, t.bytes
}
