package metrics

import (
	"context"
	"sync/atomic"
	"testing"
	"time"

	"github.com/flux-lang/flux/internal/core"
	"github.com/flux-lang/flux/internal/lang/parser"
	"github.com/flux-lang/flux/internal/runtime"
)

// TestFlowObserverEndToEnd attaches the observer to a live server and
// checks latency samples, completion throughput, and queue watermarks
// arrive through the unified plane.
func TestFlowObserverEndToEnd(t *testing.T) {
	astProg, err := parser.Parse("t.flux", `
Gen () => (int v);
Work (int v) => (int v);
Sink (int v) => ();
source Gen => F;
F = Work -> Sink;
`)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := core.Build(astProg)
	if err != nil {
		t.Fatal(err)
	}
	var n atomic.Int64
	b := runtime.NewBindings().
		BindSource("Gen", func(fl *runtime.Flow) (runtime.Record, error) {
			if n.Add(1) > 40 {
				return nil, runtime.ErrStop
			}
			return runtime.Record{1}, nil
		}).
		BindNode("Work", func(fl *runtime.Flow, in runtime.Record) (runtime.Record, error) {
			time.Sleep(100 * time.Microsecond)
			return in, nil
		}).
		BindNode("Sink", func(fl *runtime.Flow, in runtime.Record) (runtime.Record, error) {
			return nil, nil
		})
	obs := NewFlowObserver()
	s, err := runtime.New(prog, b,
		runtime.WithEngine(runtime.ThreadPool),
		runtime.WithPoolSize(2),
		runtime.WithObserver(obs),
		runtime.WithQueueSampleInterval(time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	sum := obs.Latency.Summary()
	if sum.Count != 40 {
		t.Errorf("latency samples = %d, want 40", sum.Count)
	}
	if sum.P50 < 100*time.Microsecond {
		t.Errorf("p50 = %v, want >= node sleep", sum.P50)
	}
	if ops, _ := obs.Completed.Totals(); ops != 40 {
		t.Errorf("completed ops = %d, want 40", ops)
	}
	// With a 2-worker pool and a fast source, the admission queue backed
	// up; at least one sample should have caught a non-zero depth. (Not
	// asserted strictly — sampling is time-based — but the watermark
	// accessor must at least be readable.)
	_ = obs.MaxQueueDepth("threadpool/admission")

	obs.Reset()
	if obs.Latency.Count() != 0 {
		t.Error("Reset left latency samples")
	}
}
