package metrics

import (
	"sync"
	"time"

	"github.com/flux-lang/flux/internal/core"
	"github.com/flux-lang/flux/internal/runtime"
)

// FlowObserver bridges the runtime's unified Observer plane into this
// package's measurement plumbing — the replacement for the ad-hoc
// wiring where harnesses sampled Stats counters and timed requests
// client-side. Attached with WithObserver, it records:
//
//   - per-flow latency (every outcome) into a LatencyRecorder,
//   - completed-flow throughput into a Throughput window, and
//   - per-queue depth high-water marks from the engines' samplers.
//
// All methods are safe for concurrent use. Zero-valued fields are
// skipped, so a harness can attach only the recorders it needs.
type FlowObserver struct {
	// Latency, when non-nil, receives every flow's elapsed time.
	Latency *LatencyRecorder
	// Completed, when non-nil, counts flows reaching the exit terminal
	// (one op, zero bytes; byte accounting stays with the harness).
	Completed *Throughput

	mu       sync.Mutex
	maxDepth map[string]int
}

// NewFlowObserver returns an observer recording latency and completion
// throughput.
func NewFlowObserver() *FlowObserver {
	return &FlowObserver{Latency: NewLatencyRecorder(), Completed: NewThroughput()}
}

// FlowDone implements runtime.Observer.
func (o *FlowObserver) FlowDone(_ *core.FlatGraph, _ uint64, outcome runtime.FlowOutcome, elapsed time.Duration) {
	if o.Latency != nil {
		o.Latency.Record(elapsed)
	}
	if o.Completed != nil && outcome == runtime.FlowCompleted {
		o.Completed.Add(1, 0)
	}
}

// NodeDone implements runtime.Observer; node-level timing belongs to the
// path profiler, so it is ignored here.
func (o *FlowObserver) NodeDone(*core.FlatGraph, *core.FlatNode, time.Duration) {}

// QueueDepth implements runtime.Observer, keeping a high-water mark per
// engine queue — the overload signal a capacity planner reads.
func (o *FlowObserver) QueueDepth(kind runtime.EngineKind, queue string, depth int) {
	key := kind.String() + "/" + queue
	o.mu.Lock()
	if o.maxDepth == nil {
		o.maxDepth = make(map[string]int)
	}
	if depth > o.maxDepth[key] {
		o.maxDepth[key] = depth
	}
	o.mu.Unlock()
}

// MaxQueueDepth returns the high-water mark recorded for an engine's
// queue ("threadpool/admission", "event/events", "event/async").
func (o *FlowObserver) MaxQueueDepth(key string) int {
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.maxDepth[key]
}

// Reset clears all recorders (warm-up trimming).
func (o *FlowObserver) Reset() {
	if o.Latency != nil {
		o.Latency.Reset()
	}
	if o.Completed != nil {
		o.Completed.Reset()
	}
	o.mu.Lock()
	o.maxDepth = nil
	o.mu.Unlock()
}

// The compile-time check that FlowObserver plugs into the plane.
var _ runtime.Observer = (*FlowObserver)(nil)
