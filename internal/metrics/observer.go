package metrics

import (
	"sync"
	"time"

	"github.com/flux-lang/flux/internal/core"
	"github.com/flux-lang/flux/internal/runtime"
)

// FlowObserver bridges the runtime's unified Observer plane into this
// package's measurement plumbing — the replacement for the ad-hoc
// wiring where harnesses sampled Stats counters and timed requests
// client-side. Attached with WithObserver, it records:
//
//   - per-flow latency (every outcome) into a LatencyRecorder,
//   - completed-flow throughput into a Throughput window, and
//   - per-queue depth high-water marks from the engines' samplers.
//
// All methods are safe for concurrent use. Zero-valued fields are
// skipped, so a harness can attach only the recorders it needs.
type FlowObserver struct {
	// Latency, when non-nil, receives every flow's elapsed time.
	Latency *LatencyRecorder
	// Completed, when non-nil, counts flows reaching the exit terminal
	// (one op, zero bytes; byte accounting stays with the harness).
	Completed *Throughput

	mu       sync.Mutex
	maxDepth map[string]int
	sheds    map[string]uint64
}

// NewFlowObserver returns an observer recording latency and completion
// throughput.
func NewFlowObserver() *FlowObserver {
	return &FlowObserver{Latency: NewLatencyRecorder(), Completed: NewThroughput()}
}

// FlowDone implements runtime.Observer.
func (o *FlowObserver) FlowDone(_ *core.FlatGraph, _ uint64, outcome runtime.FlowOutcome, elapsed time.Duration) {
	if o.Latency != nil {
		o.Latency.Record(elapsed)
	}
	if o.Completed != nil && outcome == runtime.FlowCompleted {
		o.Completed.Add(1, 0)
	}
}

// NodeDone implements runtime.Observer; node-level timing belongs to the
// path profiler, so it is ignored here.
func (o *FlowObserver) NodeDone(*core.FlatGraph, *core.FlatNode, time.Duration) {}

// QueueDepth implements runtime.Observer, keeping a high-water mark per
// engine queue — the overload signal a capacity planner reads.
func (o *FlowObserver) QueueDepth(kind runtime.EngineKind, queue string, depth int) {
	key := kind.String() + "/" + queue
	o.mu.Lock()
	if o.maxDepth == nil {
		o.maxDepth = make(map[string]int)
	}
	if depth > o.maxDepth[key] {
		o.maxDepth[key] = depth
	}
	o.mu.Unlock()
}

// MaxQueueDepth returns the high-water mark recorded for an engine's
// queue ("threadpool/admission", "event/events", "event/async").
func (o *FlowObserver) MaxQueueDepth(key string) int {
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.maxDepth[key]
}

// ConnShed implements runtime.ShedObserver, counting connection-plane
// admission drops per server and reason — the overload-control events
// that used to disappear in silent `default: close()` branches.
func (o *FlowObserver) ConnShed(server, reason string) {
	key := server + "/" + reason
	o.mu.Lock()
	if o.sheds == nil {
		o.sheds = make(map[string]uint64)
	}
	o.sheds[key]++
	o.mu.Unlock()
}

// Sheds returns the total connection sheds recorded, and ShedCount the
// count for one server/reason key.
func (o *FlowObserver) Sheds() uint64 {
	o.mu.Lock()
	defer o.mu.Unlock()
	var total uint64
	for _, n := range o.sheds {
		total += n
	}
	return total
}

// ShedCount returns the sheds recorded under one "server/reason" key.
func (o *FlowObserver) ShedCount(key string) uint64 {
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.sheds[key]
}

// Reset clears all recorders (warm-up trimming).
func (o *FlowObserver) Reset() {
	if o.Latency != nil {
		o.Latency.Reset()
	}
	if o.Completed != nil {
		o.Completed.Reset()
	}
	o.mu.Lock()
	o.maxDepth = nil
	o.sheds = nil
	o.mu.Unlock()
}

// The compile-time checks that FlowObserver plugs into the plane,
// including the connection-shed extension.
var (
	_ runtime.Observer     = (*FlowObserver)(nil)
	_ runtime.ShedObserver = (*FlowObserver)(nil)
)
