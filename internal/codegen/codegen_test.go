package codegen

import (
	"strings"
	"testing"

	"github.com/flux-lang/flux/internal/core"
	"github.com/flux-lang/flux/internal/lang/parser"
)

const src = `
Listen () => (int s);
ReadRequest (int s) => (int s, bool c);
Fast (int s, bool c) => (int s, bool c);
Slow (int s, bool c) => (int s, bool c);
Done (int s, bool c) => ();
H404 (int s) => ();
source Listen => Flow;
Flow = ReadRequest -> Route -> Done;
typedef fast IsFast;
Route:[_, fast] = Fast;
Route:[_, _] = Slow;
handle error ReadRequest => H404;
atomic Fast:{cache?};
atomic Slow:{cache};
session Listen SessOf;
`

func compile(t *testing.T) *core.Program {
	t.Helper()
	astProg, err := parser.Parse("gen.flux", src)
	if err != nil {
		t.Fatal(err)
	}
	p, err := core.Build(astProg)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestStubs(t *testing.T) {
	out := Stubs(compile(t), "mysrv")
	for _, want := range []string{
		"package mysrv",
		"func listen(fl *runtime.Flow) (runtime.Record, error)",
		"func readRequest(fl *runtime.Flow, in runtime.Record)",
		"func isFast(v any) bool",
		"func sessOf(rec runtime.Record) uint64",
		`BindSource("Listen", listen)`,
		`BindNode("Done", done)`,
		`BindPredicate("IsFast", isFast)`,
		`BindSession("SessOf", sessOf)`,
		"func BuildBindings() *runtime.Bindings",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("stubs missing %q", want)
		}
	}
}

func TestDOT(t *testing.T) {
	out := DOT(compile(t))
	for _, want := range []string{
		"digraph flux",
		`label="source Listen"`,
		"shape=box",     // exec vertices
		"shape=diamond", // the Route branch
		"style=dashed",  // error edges
		"ERROR",
		`label="case 0"`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("dot missing %q:\n%s", want, out)
		}
	}
}

func TestSimulatorSource(t *testing.T) {
	out := SimulatorSource(compile(t))
	for _, want := range []string{
		"void ReadRequest()",
		"processor->reserve();",
		"hold(exponential(CPU_TIME_FAST));",
		"processor->release();",
		"rw_read_lock(cache);",  // Fast has a reader constraint
		"rw_write_lock(cache);", // Slow has a writer constraint
		"rw_write_unlock(cache);",
		"// Call the next Node",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("simulator source missing %q:\n%s", want, out)
		}
	}
}

func TestStubsCompileShape(t *testing.T) {
	// The generated file must at least be balanced Go-ish text: every
	// stub ends with a closing brace and the bindings chain is intact.
	out := Stubs(compile(t), "x")
	if strings.Count(out, "{") != strings.Count(out, "}") {
		t.Error("unbalanced braces in generated stubs")
	}
	if !strings.HasSuffix(strings.TrimSpace(out), "}") {
		t.Error("stubs do not end with BuildBindings closing brace")
	}
}
