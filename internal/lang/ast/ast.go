// Package ast declares the abstract syntax tree for Flux programs.
//
// A Flux program is a flat list of declarations (there is no nesting and no
// statement language): concrete node type signatures, source declarations,
// abstract node flows, predicate typedefs, predicate-dispatch cases, error
// handlers, and atomicity constraints. See §2 of the paper.
package ast

import (
	"strings"

	"github.com/flux-lang/flux/internal/lang/token"
)

// Program is the root of the AST: every declaration in source order.
type Program struct {
	File  string
	Decls []Decl
}

// Decl is a top-level Flux declaration.
type Decl interface {
	Pos() token.Position
	declNode()
}

// Param is a single typed argument in a node signature, e.g. "int socket"
// or "image_tag *request". Pointer stars are folded into the type name
// ("image_tag*") so type equality is a plain string comparison.
type Param struct {
	Type     string
	Name     string
	ParamPos token.Position
}

// TypeKey returns the canonical type spelling used in type checking.
func (p Param) TypeKey() string { return p.Type }

func (p Param) String() string {
	if p.Name == "" {
		return p.Type
	}
	return p.Type + " " + p.Name
}

// NodeSig declares a concrete node's type signature:
//
//	ReadRequest (int socket) => (int socket, bool close, image_tag *request);
type NodeSig struct {
	Name    string
	Inputs  []Param
	Outputs []Param
	NamePos token.Position
}

func (d *NodeSig) Pos() token.Position { return d.NamePos }
func (d *NodeSig) declNode()           {}

func (d *NodeSig) String() string {
	var b strings.Builder
	b.WriteString(d.Name)
	b.WriteString(" (")
	writeParams(&b, d.Inputs)
	b.WriteString(") => (")
	writeParams(&b, d.Outputs)
	b.WriteString(");")
	return b.String()
}

func writeParams(b *strings.Builder, ps []Param) {
	for i, p := range ps {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(p.String())
	}
}

// SourceDecl declares a source node and the flow it feeds:
//
//	source Listen => Image;
type SourceDecl struct {
	Source    string
	Target    string
	SourcePos token.Position
}

func (d *SourceDecl) Pos() token.Position { return d.SourcePos }
func (d *SourceDecl) declNode()           {}
func (d *SourceDecl) String() string {
	return "source " + d.Source + " => " + d.Target + ";"
}

// FlowDecl defines an abstract node as a chain of nodes:
//
//	Image = ReadRequest -> CheckCache -> Handler -> Write -> Complete;
type FlowDecl struct {
	Name    string
	Nodes   []string
	NamePos token.Position
}

func (d *FlowDecl) Pos() token.Position { return d.NamePos }
func (d *FlowDecl) declNode()           {}
func (d *FlowDecl) String() string {
	return d.Name + " = " + strings.Join(d.Nodes, " -> ") + ";"
}

// PatternElem is one element of a dispatch pattern: either the wildcard
// ("_" or "*") or a predicate type name.
type PatternElem struct {
	Wildcard bool
	Type     string // predicate type name when !Wildcard
	ElemPos  token.Position
}

func (e PatternElem) String() string {
	if e.Wildcard {
		return "_"
	}
	return e.Type
}

// DispatchDecl is one case of a predicate-typed conditional node:
//
//	Handler:[_, _, hit] = ;
//	Handler:[_, _, _]   = ReadInFromDisk -> Compress -> StoreInCache;
//
// Cases for the same node name are tried in declaration order; an empty
// body is the identity flow (output passes straight through).
type DispatchDecl struct {
	Name    string
	Pattern []PatternElem
	Body    []string // empty means pass-through
	NamePos token.Position
}

func (d *DispatchDecl) Pos() token.Position { return d.NamePos }
func (d *DispatchDecl) declNode()           {}
func (d *DispatchDecl) String() string {
	var b strings.Builder
	b.WriteString(d.Name)
	b.WriteString(":[")
	for i, e := range d.Pattern {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(e.String())
	}
	b.WriteString("] = ")
	b.WriteString(strings.Join(d.Body, " -> "))
	b.WriteString(";")
	return b.String()
}

// TypedefDecl binds a predicate type name to a user-supplied boolean
// function:
//
//	typedef hit TestInCache;
type TypedefDecl struct {
	Name    string // predicate type, e.g. "hit"
	Func    string // boolean function, e.g. "TestInCache"
	NamePos token.Position
}

func (d *TypedefDecl) Pos() token.Position { return d.NamePos }
func (d *TypedefDecl) declNode()           {}
func (d *TypedefDecl) String() string      { return "typedef " + d.Name + " " + d.Func + ";" }

// ErrorHandlerDecl routes a node's non-nil error return to a handler node:
//
//	handle error ReadInFromDisk => FourOhFour;
type ErrorHandlerDecl struct {
	Node      string
	Handler   string
	HandlePos token.Position
}

func (d *ErrorHandlerDecl) Pos() token.Position { return d.HandlePos }
func (d *ErrorHandlerDecl) declNode()           {}
func (d *ErrorHandlerDecl) String() string {
	return "handle error " + d.Node + " => " + d.Handler + ";"
}

// ConstraintMode distinguishes reader from writer atomicity constraints.
type ConstraintMode int

const (
	// Writer is the default: exclusive access (paper §2.5, "!" optional).
	Writer ConstraintMode = iota
	// Reader allows concurrent execution with other readers ("?").
	Reader
)

func (m ConstraintMode) String() string {
	if m == Reader {
		return "reader"
	}
	return "writer"
}

// Constraint is one named atomicity constraint with its mode and scope.
type Constraint struct {
	Name    string
	Mode    ConstraintMode
	Session bool // per-session scope: name(session)
}

func (c Constraint) String() string {
	s := c.Name
	if c.Session {
		s += "(session)"
	}
	if c.Mode == Reader {
		s += "?"
	}
	return s
}

// AtomicDecl attaches atomicity constraints to a node (concrete or
// abstract):
//
//	atomic CheckCache:{cache};
//	atomic Stats:{stats?, log};
type AtomicDecl struct {
	Node        string
	Constraints []Constraint
	AtomicPos   token.Position
}

func (d *AtomicDecl) Pos() token.Position { return d.AtomicPos }
func (d *AtomicDecl) declNode()           {}
func (d *AtomicDecl) String() string {
	parts := make([]string, len(d.Constraints))
	for i, c := range d.Constraints {
		parts[i] = c.String()
	}
	return "atomic " + d.Node + ":{" + strings.Join(parts, ", ") + "};"
}

// SessionDecl names the user-supplied session-id function applied to a
// source node's output (paper §2.5.1):
//
//	session BitTorrent SessionOf;
//
// This declaration is an extension point: the paper describes the session
// function in prose; we give it concrete syntax so programs are
// self-contained.
type SessionDecl struct {
	Source     string // source node whose output is hashed
	Func       string // session id function name
	SessionPos token.Position
}

func (d *SessionDecl) Pos() token.Position { return d.SessionPos }
func (d *SessionDecl) declNode()           {}
func (d *SessionDecl) String() string      { return "session " + d.Source + " " + d.Func + ";" }

// String renders the whole program in canonical syntax, one declaration
// per line. Parsing the output yields an equivalent AST (round-trip
// property, exercised in tests).
func (p *Program) String() string {
	var b strings.Builder
	for _, d := range p.Decls {
		type stringer interface{ String() string }
		if s, ok := d.(stringer); ok {
			b.WriteString(s.String())
			b.WriteByte('\n')
		}
	}
	return b.String()
}

// NodesReferenced returns the set of node names mentioned anywhere in the
// program's flows, dispatches, sources, and handlers. Useful for tools.
func (p *Program) NodesReferenced() map[string]bool {
	refs := make(map[string]bool)
	for _, d := range p.Decls {
		switch d := d.(type) {
		case *SourceDecl:
			refs[d.Source] = true
			refs[d.Target] = true
		case *FlowDecl:
			refs[d.Name] = true
			for _, n := range d.Nodes {
				refs[n] = true
			}
		case *DispatchDecl:
			refs[d.Name] = true
			for _, n := range d.Body {
				refs[n] = true
			}
		case *ErrorHandlerDecl:
			refs[d.Node] = true
			refs[d.Handler] = true
		}
	}
	return refs
}
