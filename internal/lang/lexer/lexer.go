// Package lexer implements a hand-written scanner for Flux source text.
//
// The scanner is byte-oriented (Flux source is ASCII in practice) and never
// allocates per token beyond the literal string. It recognizes both comment
// styles, tracks line/column positions, and reports malformed input as
// Invalid tokens carrying the offending text so the parser can produce a
// positioned diagnostic rather than panicking.
package lexer

import (
	"github.com/flux-lang/flux/internal/lang/token"
)

// Lexer scans Flux source text into tokens.
type Lexer struct {
	src  string
	file string

	off  int // current byte offset
	line int
	col  int

	keepComments bool
}

// Option configures a Lexer.
type Option func(*Lexer)

// KeepComments makes the lexer emit Comment tokens instead of skipping them.
// The parser never asks for this; tools (formatters, doc extractors) do.
func KeepComments() Option {
	return func(l *Lexer) { l.keepComments = true }
}

// New returns a Lexer over src. The file name is used only for positions.
func New(file, src string, opts ...Option) *Lexer {
	l := &Lexer{src: src, file: file, line: 1, col: 1}
	for _, o := range opts {
		o(l)
	}
	return l
}

func (l *Lexer) pos() token.Position {
	return token.Position{File: l.file, Line: l.line, Column: l.col, Offset: l.off}
}

func (l *Lexer) peek() byte {
	if l.off >= len(l.src) {
		return 0
	}
	return l.src[l.off]
}

func (l *Lexer) peek2() byte {
	if l.off+1 >= len(l.src) {
		return 0
	}
	return l.src[l.off+1]
}

func (l *Lexer) advance() byte {
	c := l.src[l.off]
	l.off++
	if c == '\n' {
		l.line++
		l.col = 1
	} else {
		l.col++
	}
	return c
}

func isLetter(c byte) bool {
	return 'a' <= c && c <= 'z' || 'A' <= c && c <= 'Z'
}

func isDigit(c byte) bool { return '0' <= c && c <= '9' }

func isIdentByte(c byte) bool { return isLetter(c) || isDigit(c) || c == '_' }

// Next returns the next token. At end of input it returns EOF forever.
func (l *Lexer) Next() token.Token {
	for {
		l.skipSpace()
		if l.off >= len(l.src) {
			return token.Token{Kind: token.EOF, Pos: l.pos()}
		}
		start := l.pos()
		c := l.peek()

		// Comments.
		if c == '/' && l.peek2() == '/' {
			lit := l.scanLineComment()
			if l.keepComments {
				return token.Token{Kind: token.Comment, Lit: lit, Pos: start}
			}
			continue
		}
		if c == '/' && l.peek2() == '*' {
			lit, ok := l.scanBlockComment()
			if !ok {
				return token.Token{Kind: token.Invalid, Lit: lit, Pos: start}
			}
			if l.keepComments {
				return token.Token{Kind: token.Comment, Lit: lit, Pos: start}
			}
			continue
		}

		// Identifiers and keywords. A lone '_' is the wildcard token;
		// '_' followed by ident bytes is an identifier (e.g. _private).
		if isLetter(c) || c == '_' {
			lit := l.scanIdent()
			if lit == "_" {
				return token.Token{Kind: token.Underscore, Lit: lit, Pos: start}
			}
			return token.Token{Kind: token.Lookup(lit), Lit: lit, Pos: start}
		}

		if isDigit(c) {
			return token.Token{Kind: token.Int, Lit: l.scanNumber(), Pos: start}
		}

		if c == '"' {
			lit, ok := l.scanString()
			kind := token.String
			if !ok {
				kind = token.Invalid
			}
			return token.Token{Kind: kind, Lit: lit, Pos: start}
		}

		// Operators.
		l.advance()
		switch c {
		case '-':
			if l.peek() == '>' {
				l.advance()
				return token.Token{Kind: token.Arrow, Lit: "->", Pos: start}
			}
			return token.Token{Kind: token.Invalid, Lit: "-", Pos: start}
		case '=':
			if l.peek() == '>' {
				l.advance()
				return token.Token{Kind: token.DoubleArr, Lit: "=>", Pos: start}
			}
			return token.Token{Kind: token.Assign, Lit: "=", Pos: start}
		case ':':
			return token.Token{Kind: token.Colon, Lit: ":", Pos: start}
		case ';':
			return token.Token{Kind: token.Semicolon, Lit: ";", Pos: start}
		case ',':
			return token.Token{Kind: token.Comma, Lit: ",", Pos: start}
		case '(':
			return token.Token{Kind: token.LParen, Lit: "(", Pos: start}
		case ')':
			return token.Token{Kind: token.RParen, Lit: ")", Pos: start}
		case '[':
			return token.Token{Kind: token.LBracket, Lit: "[", Pos: start}
		case ']':
			return token.Token{Kind: token.RBracket, Lit: "]", Pos: start}
		case '{':
			return token.Token{Kind: token.LBrace, Lit: "{", Pos: start}
		case '}':
			return token.Token{Kind: token.RBrace, Lit: "}", Pos: start}
		case '?':
			return token.Token{Kind: token.Question, Lit: "?", Pos: start}
		case '!':
			return token.Token{Kind: token.Bang, Lit: "!", Pos: start}
		case '*':
			return token.Token{Kind: token.Star, Lit: "*", Pos: start}
		default:
			return token.Token{Kind: token.Invalid, Lit: string(c), Pos: start}
		}
	}
}

func (l *Lexer) skipSpace() {
	for l.off < len(l.src) {
		switch l.src[l.off] {
		case ' ', '\t', '\r', '\n':
			l.advance()
		default:
			return
		}
	}
}

func (l *Lexer) scanIdent() string {
	start := l.off
	for l.off < len(l.src) && isIdentByte(l.src[l.off]) {
		l.advance()
	}
	return l.src[start:l.off]
}

func (l *Lexer) scanNumber() string {
	start := l.off
	for l.off < len(l.src) && isDigit(l.src[l.off]) {
		l.advance()
	}
	return l.src[start:l.off]
}

// scanString scans a double-quoted string with no escapes (Flux has no
// string operations; strings exist for future pragma use). Returns the
// contents without quotes; ok is false on an unterminated string.
func (l *Lexer) scanString() (lit string, ok bool) {
	l.advance() // opening quote
	start := l.off
	for l.off < len(l.src) {
		if l.src[l.off] == '"' {
			lit = l.src[start:l.off]
			l.advance()
			return lit, true
		}
		if l.src[l.off] == '\n' {
			break
		}
		l.advance()
	}
	return l.src[start:l.off], false
}

func (l *Lexer) scanLineComment() string {
	start := l.off
	for l.off < len(l.src) && l.src[l.off] != '\n' {
		l.advance()
	}
	return l.src[start:l.off]
}

func (l *Lexer) scanBlockComment() (lit string, terminated bool) {
	start := l.off
	l.advance() // '/'
	l.advance() // '*'
	for l.off < len(l.src) {
		if l.src[l.off] == '*' && l.peek2() == '/' {
			l.advance()
			l.advance()
			return l.src[start:l.off], true
		}
		l.advance()
	}
	return l.src[start:l.off], false
}

// All scans the remaining input and returns every token up to and including
// EOF. It is a convenience for tests and tools.
func (l *Lexer) All() []token.Token {
	var toks []token.Token
	for {
		t := l.Next()
		toks = append(toks, t)
		if t.Kind == token.EOF {
			return toks
		}
	}
}
