package lexer

import (
	"testing"

	"github.com/flux-lang/flux/internal/lang/token"
)

func kinds(toks []token.Token) []token.Kind {
	ks := make([]token.Kind, len(toks))
	for i, t := range toks {
		ks[i] = t.Kind
	}
	return ks
}

func TestScanSimpleDeclaration(t *testing.T) {
	src := "source Listen => Image;"
	toks := New("t.flux", src).All()
	want := []token.Kind{
		token.Source, token.Ident, token.DoubleArr, token.Ident,
		token.Semicolon, token.EOF,
	}
	got := kinds(toks)
	if len(got) != len(want) {
		t.Fatalf("got %d tokens %v, want %d", len(got), got, len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("token %d = %v, want %v", i, got[i], want[i])
		}
	}
	if toks[1].Lit != "Listen" || toks[3].Lit != "Image" {
		t.Errorf("identifier literals wrong: %v", toks)
	}
}

func TestScanSignature(t *testing.T) {
	src := "ReadRequest (int socket) => (int socket, bool close, image_tag *request);"
	toks := New("", src).All()
	want := []token.Kind{
		token.Ident, token.LParen, token.Ident, token.Ident, token.RParen,
		token.DoubleArr, token.LParen,
		token.Ident, token.Ident, token.Comma,
		token.Ident, token.Ident, token.Comma,
		token.Ident, token.Star, token.Ident,
		token.RParen, token.Semicolon, token.EOF,
	}
	got := kinds(toks)
	if len(got) != len(want) {
		t.Fatalf("token count = %d (%v), want %d", len(got), got, len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("token %d = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestScanOperators(t *testing.T) {
	src := "-> => = : ; , ( ) [ ] { } ? ! * _"
	want := []token.Kind{
		token.Arrow, token.DoubleArr, token.Assign, token.Colon,
		token.Semicolon, token.Comma, token.LParen, token.RParen,
		token.LBracket, token.RBracket, token.LBrace, token.RBrace,
		token.Question, token.Bang, token.Star, token.Underscore, token.EOF,
	}
	got := kinds(New("", src).All())
	if len(got) != len(want) {
		t.Fatalf("got %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("token %d = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestUnderscoreIdentifiers(t *testing.T) {
	toks := New("", "__u8 _x _").All()
	if toks[0].Kind != token.Ident || toks[0].Lit != "__u8" {
		t.Errorf("__u8 = %v", toks[0])
	}
	if toks[1].Kind != token.Ident || toks[1].Lit != "_x" {
		t.Errorf("_x = %v", toks[1])
	}
	if toks[2].Kind != token.Underscore {
		t.Errorf("_ = %v", toks[2])
	}
}

func TestCommentsSkippedByDefault(t *testing.T) {
	src := "// line comment\nfoo /* block\ncomment */ bar"
	toks := New("", src).All()
	got := kinds(toks)
	want := []token.Kind{token.Ident, token.Ident, token.EOF}
	if len(got) != len(want) {
		t.Fatalf("got %v", toks)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("token %d = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestCommentsKept(t *testing.T) {
	src := "// hello\nfoo"
	toks := New("", src, KeepComments()).All()
	if toks[0].Kind != token.Comment {
		t.Fatalf("expected comment first, got %v", toks[0])
	}
	if toks[0].Lit != "// hello" {
		t.Errorf("comment literal = %q", toks[0].Lit)
	}
}

func TestPositions(t *testing.T) {
	src := "a\n  bb\n"
	toks := New("f.flux", src).All()
	if toks[0].Pos.Line != 1 || toks[0].Pos.Column != 1 {
		t.Errorf("a at %v", toks[0].Pos)
	}
	if toks[1].Pos.Line != 2 || toks[1].Pos.Column != 3 {
		t.Errorf("bb at %v", toks[1].Pos)
	}
	if toks[1].Pos.File != "f.flux" {
		t.Errorf("file = %q", toks[1].Pos.File)
	}
}

func TestUnterminatedBlockComment(t *testing.T) {
	toks := New("", "/* never ends").All()
	if toks[0].Kind != token.Invalid {
		t.Errorf("expected invalid token, got %v", toks[0])
	}
}

func TestUnterminatedString(t *testing.T) {
	toks := New("", `"no closing quote`).All()
	if toks[0].Kind != token.Invalid {
		t.Errorf("expected invalid token, got %v", toks[0])
	}
}

func TestString(t *testing.T) {
	toks := New("", `"hello world"`).All()
	if toks[0].Kind != token.String || toks[0].Lit != "hello world" {
		t.Errorf("string token = %v", toks[0])
	}
}

func TestNumbers(t *testing.T) {
	toks := New("", "42 007").All()
	if toks[0].Kind != token.Int || toks[0].Lit != "42" {
		t.Errorf("42 = %v", toks[0])
	}
	if toks[1].Kind != token.Int || toks[1].Lit != "007" {
		t.Errorf("007 = %v", toks[1])
	}
}

func TestInvalidByte(t *testing.T) {
	toks := New("", "@").All()
	if toks[0].Kind != token.Invalid || toks[0].Lit != "@" {
		t.Errorf("@ = %v", toks[0])
	}
}

func TestLoneMinus(t *testing.T) {
	toks := New("", "-").All()
	if toks[0].Kind != token.Invalid {
		t.Errorf("- = %v", toks[0])
	}
}

func TestEOFIsSticky(t *testing.T) {
	l := New("", "")
	for i := 0; i < 3; i++ {
		if tok := l.Next(); tok.Kind != token.EOF {
			t.Fatalf("call %d: expected EOF, got %v", i, tok)
		}
	}
}

func TestFigure1AbbreviatedSyntax(t *testing.T) {
	// Figure 1 of the paper uses '?' as the flow connector.
	src := "Image = ReadRequest? CheckCache ? Handler ?Write? Complete;"
	toks := New("", src).All()
	var qs, ids int
	for _, tok := range toks {
		switch tok.Kind {
		case token.Question:
			qs++
		case token.Ident:
			ids++
		}
	}
	if qs != 4 {
		t.Errorf("question marks = %d, want 4", qs)
	}
	if ids != 6 { // Image + 5 node names
		t.Errorf("identifiers = %d, want 6", ids)
	}
}
