// Package parser implements a recursive-descent parser for Flux source.
//
// The parser accepts the canonical syntax of Figure 2 in the paper and the
// abbreviated syntax of Figure 1 (where "?" joins nodes in a flow and the
// colon before a dispatch pattern is omitted). It recovers from errors at
// declaration boundaries (";") so one malformed declaration does not mask
// diagnostics in the rest of the file.
package parser

import (
	"errors"
	"fmt"
	"strings"

	"github.com/flux-lang/flux/internal/lang/ast"
	"github.com/flux-lang/flux/internal/lang/lexer"
	"github.com/flux-lang/flux/internal/lang/token"
)

// Error is a single positioned parse diagnostic.
type Error struct {
	Pos token.Position
	Msg string
}

func (e *Error) Error() string { return e.Pos.String() + ": " + e.Msg }

// ErrorList collects every diagnostic produced during a parse.
type ErrorList []*Error

func (l ErrorList) Error() string {
	switch len(l) {
	case 0:
		return "no errors"
	case 1:
		return l[0].Error()
	}
	var b strings.Builder
	b.WriteString(l[0].Error())
	fmt.Fprintf(&b, " (and %d more errors)", len(l)-1)
	return b.String()
}

// Err returns the list as an error, or nil when empty.
func (l ErrorList) Err() error {
	if len(l) == 0 {
		return nil
	}
	return l
}

// AsErrorList extracts an ErrorList from an error returned by Parse.
func AsErrorList(err error) (ErrorList, bool) {
	var l ErrorList
	if errors.As(err, &l) {
		return l, true
	}
	return nil, false
}

type parser struct {
	lex  *lexer.Lexer
	tok  token.Token // current token
	errs ErrorList
}

// Parse parses a complete Flux program. On failure it returns the partial
// program along with an ErrorList describing every problem found.
func Parse(file, src string) (*ast.Program, error) {
	p := &parser{lex: lexer.New(file, src)}
	p.next()
	prog := &ast.Program{File: file}
	for p.tok.Kind != token.EOF {
		d := p.parseDecl()
		if d != nil {
			prog.Decls = append(prog.Decls, d)
		}
	}
	return prog, p.errs.Err()
}

func (p *parser) next() { p.tok = p.lex.Next() }

func (p *parser) errorf(pos token.Position, format string, args ...any) {
	p.errs = append(p.errs, &Error{Pos: pos, Msg: fmt.Sprintf(format, args...)})
}

// expect consumes a token of the given kind or records an error. It returns
// the consumed token (or the current one on mismatch, without consuming).
func (p *parser) expect(k token.Kind) token.Token {
	t := p.tok
	if t.Kind != k {
		p.errorf(t.Pos, "expected %s, found %s", k, t)
		return t
	}
	p.next()
	return t
}

// sync skips tokens until just past the next ';' (or EOF), the declaration
// boundary used for error recovery.
func (p *parser) sync() {
	for p.tok.Kind != token.EOF {
		if p.tok.Kind == token.Semicolon {
			p.next()
			return
		}
		p.next()
	}
}

func (p *parser) parseDecl() ast.Decl {
	switch p.tok.Kind {
	case token.Source:
		return p.parseSource()
	case token.Typedef:
		return p.parseTypedef()
	case token.Atomic:
		return p.parseAtomic()
	case token.Handle:
		return p.parseHandle()
	case token.Session:
		return p.parseSession()
	case token.Ident:
		return p.parseNamedDecl()
	default:
		p.errorf(p.tok.Pos, "expected declaration, found %s", p.tok)
		p.sync()
		return nil
	}
}

// parseSource parses: source Name (=>|?) Target ;
func (p *parser) parseSource() ast.Decl {
	pos := p.tok.Pos
	p.next() // 'source'
	name := p.expect(token.Ident)
	if p.tok.Kind == token.DoubleArr || p.tok.Kind == token.Question || p.tok.Kind == token.Arrow {
		p.next()
	} else {
		p.errorf(p.tok.Pos, "expected => after source node name, found %s", p.tok)
		p.sync()
		return nil
	}
	target := p.expect(token.Ident)
	p.expect(token.Semicolon)
	return &ast.SourceDecl{Source: name.Lit, Target: target.Lit, SourcePos: pos}
}

// parseTypedef parses: typedef Name Func ;
func (p *parser) parseTypedef() ast.Decl {
	pos := p.tok.Pos
	p.next() // 'typedef'
	name := p.expect(token.Ident)
	fn := p.expect(token.Ident)
	p.expect(token.Semicolon)
	return &ast.TypedefDecl{Name: name.Lit, Func: fn.Lit, NamePos: pos}
}

// parseHandle parses: handle error Node => Handler ;
func (p *parser) parseHandle() ast.Decl {
	pos := p.tok.Pos
	p.next() // 'handle'
	p.expect(token.Error)
	node := p.expect(token.Ident)
	p.expect(token.DoubleArr)
	handler := p.expect(token.Ident)
	p.expect(token.Semicolon)
	return &ast.ErrorHandlerDecl{Node: node.Lit, Handler: handler.Lit, HandlePos: pos}
}

// parseSession parses: session Source Func ;
func (p *parser) parseSession() ast.Decl {
	pos := p.tok.Pos
	p.next() // 'session'
	src := p.expect(token.Ident)
	fn := p.expect(token.Ident)
	p.expect(token.Semicolon)
	return &ast.SessionDecl{Source: src.Lit, Func: fn.Lit, SessionPos: pos}
}

// parseAtomic parses: atomic Node : { constraint (, constraint)* } ;
func (p *parser) parseAtomic() ast.Decl {
	pos := p.tok.Pos
	p.next() // 'atomic'
	node := p.expect(token.Ident)
	p.expect(token.Colon)
	p.expect(token.LBrace)
	var cs []ast.Constraint
	for {
		c, ok := p.parseConstraint()
		if !ok {
			p.sync()
			return nil
		}
		cs = append(cs, c)
		if p.tok.Kind != token.Comma {
			break
		}
		p.next()
	}
	p.expect(token.RBrace)
	p.expect(token.Semicolon)
	return &ast.AtomicDecl{Node: node.Lit, Constraints: cs, AtomicPos: pos}
}

// parseConstraint parses: Name [ '(' session ')' ] [ '?' | '!' ]
func (p *parser) parseConstraint() (ast.Constraint, bool) {
	if p.tok.Kind != token.Ident {
		p.errorf(p.tok.Pos, "expected constraint name, found %s", p.tok)
		return ast.Constraint{}, false
	}
	c := ast.Constraint{Name: p.tok.Lit}
	p.next()
	if p.tok.Kind == token.LParen {
		p.next()
		if p.tok.Kind != token.Session {
			p.errorf(p.tok.Pos, "expected 'session' in constraint scope, found %s", p.tok)
			return ast.Constraint{}, false
		}
		p.next()
		p.expect(token.RParen)
		c.Session = true
	}
	switch p.tok.Kind {
	case token.Question:
		c.Mode = ast.Reader
		p.next()
	case token.Bang:
		c.Mode = ast.Writer
		p.next()
	}
	return c, true
}

// parseNamedDecl handles the three declaration forms that begin with a bare
// identifier:
//
//	Name ( params ) => ( params ) ;      concrete node signature
//	Name = chain ;                        abstract node flow
//	Name [:] [ pattern ] = chain? ;       predicate dispatch case
func (p *parser) parseNamedDecl() ast.Decl {
	name := p.tok
	p.next()
	switch p.tok.Kind {
	case token.LParen:
		return p.parseSig(name)
	case token.Assign:
		p.next()
		nodes, ok := p.parseChain(true)
		if !ok {
			p.sync()
			return nil
		}
		p.expect(token.Semicolon)
		return &ast.FlowDecl{Name: name.Lit, Nodes: nodes, NamePos: name.Pos}
	case token.Colon, token.LBracket:
		if p.tok.Kind == token.Colon {
			p.next()
		}
		return p.parseDispatch(name)
	default:
		p.errorf(p.tok.Pos, "expected '(', '=', ':' or '[' after %q, found %s", name.Lit, p.tok)
		p.sync()
		return nil
	}
}

// parseSig parses the remainder of a concrete node signature after the name:
// ( params ) => ( params ) ;
func (p *parser) parseSig(name token.Token) ast.Decl {
	inputs, ok := p.parseParamList()
	if !ok {
		p.sync()
		return nil
	}
	p.expect(token.DoubleArr)
	outputs, ok := p.parseParamList()
	if !ok {
		p.sync()
		return nil
	}
	p.expect(token.Semicolon)
	return &ast.NodeSig{Name: name.Lit, Inputs: inputs, Outputs: outputs, NamePos: name.Pos}
}

// parseParamList parses: '(' [ param (',' param)* ] ')'
func (p *parser) parseParamList() ([]ast.Param, bool) {
	if p.tok.Kind != token.LParen {
		p.errorf(p.tok.Pos, "expected '(', found %s", p.tok)
		return nil, false
	}
	p.next()
	var params []ast.Param
	if p.tok.Kind == token.RParen {
		p.next()
		return params, true
	}
	for {
		prm, ok := p.parseParam()
		if !ok {
			return nil, false
		}
		params = append(params, prm)
		if p.tok.Kind == token.Comma {
			p.next()
			continue
		}
		break
	}
	if p.tok.Kind != token.RParen {
		p.errorf(p.tok.Pos, "expected ')' or ',', found %s", p.tok)
		return nil, false
	}
	p.next()
	return params, true
}

// parseParam parses a C-style parameter: Type ['*'...] [Name]. The pointer
// stars fold into the type name, so "image_tag *request" has type
// "image_tag*" and name "request".
func (p *parser) parseParam() (ast.Param, bool) {
	if p.tok.Kind != token.Ident {
		p.errorf(p.tok.Pos, "expected parameter type, found %s", p.tok)
		return ast.Param{}, false
	}
	prm := ast.Param{Type: p.tok.Lit, ParamPos: p.tok.Pos}
	p.next()
	for p.tok.Kind == token.Star {
		prm.Type += "*"
		p.next()
	}
	if p.tok.Kind == token.Ident {
		prm.Name = p.tok.Lit
		p.next()
	}
	return prm, true
}

// parseChain parses a flow body: a sequence of node names joined by "->" or
// "?". With allowEmpty, an immediately following ';' yields an empty chain
// (the dispatch pass-through case "Handler:[...] = ;").
func (p *parser) parseChain(allowEmpty bool) ([]string, bool) {
	var nodes []string
	if p.tok.Kind == token.Semicolon {
		if allowEmpty {
			return nodes, true
		}
		p.errorf(p.tok.Pos, "empty flow")
		return nil, false
	}
	for {
		if p.tok.Kind != token.Ident {
			p.errorf(p.tok.Pos, "expected node name, found %s", p.tok)
			return nil, false
		}
		nodes = append(nodes, p.tok.Lit)
		p.next()
		if p.tok.Kind == token.Arrow || p.tok.Kind == token.Question {
			p.next()
			continue
		}
		return nodes, true
	}
}

// parseDispatch parses the remainder of a dispatch case after "Name:" or
// "Name": [ pattern ] = chain? ;
func (p *parser) parseDispatch(name token.Token) ast.Decl {
	if p.tok.Kind != token.LBracket {
		p.errorf(p.tok.Pos, "expected '[' to open dispatch pattern, found %s", p.tok)
		p.sync()
		return nil
	}
	p.next()
	var pat []ast.PatternElem
	for {
		switch p.tok.Kind {
		case token.Underscore, token.Star:
			pat = append(pat, ast.PatternElem{Wildcard: true, ElemPos: p.tok.Pos})
			p.next()
		case token.Ident:
			pat = append(pat, ast.PatternElem{Type: p.tok.Lit, ElemPos: p.tok.Pos})
			p.next()
		default:
			p.errorf(p.tok.Pos, "expected pattern element, found %s", p.tok)
			p.sync()
			return nil
		}
		if p.tok.Kind == token.Comma {
			p.next()
			continue
		}
		break
	}
	if p.tok.Kind != token.RBracket {
		p.errorf(p.tok.Pos, "expected ']' to close dispatch pattern, found %s", p.tok)
		p.sync()
		return nil
	}
	p.next()
	p.expect(token.Assign)
	body, ok := p.parseChain(true)
	if !ok {
		p.sync()
		return nil
	}
	p.expect(token.Semicolon)
	return &ast.DispatchDecl{Name: name.Lit, Pattern: pat, Body: body, NamePos: name.Pos}
}
