package parser

import (
	"strings"
	"testing"

	"github.com/flux-lang/flux/internal/lang/ast"
)

// imageServerSrc is the complete image-compression server of Figure 2.
const imageServerSrc = `
// concrete node signatures
Listen () => (int socket);

ReadRequest (int socket)
  => (int socket, bool close, image_tag *request);

CheckCache (int socket, bool close, image_tag *request)
  => (int socket, bool close, image_tag *request);

ReadInFromDisk (int socket, bool close, image_tag *request)
  => (int socket, bool close, image_tag *request, __u8 *rgb_data);

StoreInCache (int socket, bool close, image_tag *request)
  => (int socket, bool close, image_tag *request);

Compress (int socket, bool close, image_tag *request, __u8 *rgb_data)
  => (int socket, bool close, image_tag *request);

Write (int socket, bool close, image_tag *request)
  => (int socket, bool close, image_tag *request);

Complete (int socket, bool close, image_tag *request) => ();

FourOhFour (int socket, bool close, image_tag *request) => ();

// source node
source Listen => Image;

// abstract node
Image = ReadRequest -> CheckCache -> Handler -> Write -> Complete;

// predicate type & dispatch
typedef hit TestInCache;
Handler:[_, _, hit] = ;
Handler:[_, _, _] = ReadInFromDisk -> Compress -> StoreInCache;

// error handler
handle error ReadInFromDisk => FourOhFour;

// atomicity constraints
atomic CheckCache:{cache};
atomic StoreInCache:{cache};
atomic Complete:{cache};
`

func mustParse(t *testing.T, src string) *ast.Program {
	t.Helper()
	prog, err := Parse("test.flux", src)
	if err != nil {
		t.Fatalf("Parse failed: %v", err)
	}
	return prog
}

func TestParseImageServer(t *testing.T) {
	prog := mustParse(t, imageServerSrc)

	var sigs, sources, flows, dispatches, typedefs, handlers, atomics int
	for _, d := range prog.Decls {
		switch d.(type) {
		case *ast.NodeSig:
			sigs++
		case *ast.SourceDecl:
			sources++
		case *ast.FlowDecl:
			flows++
		case *ast.DispatchDecl:
			dispatches++
		case *ast.TypedefDecl:
			typedefs++
		case *ast.ErrorHandlerDecl:
			handlers++
		case *ast.AtomicDecl:
			atomics++
		}
	}
	if sigs != 9 {
		t.Errorf("signatures = %d, want 9", sigs)
	}
	if sources != 1 || flows != 1 || dispatches != 2 || typedefs != 1 || handlers != 1 {
		t.Errorf("sources=%d flows=%d dispatches=%d typedefs=%d handlers=%d",
			sources, flows, dispatches, typedefs, handlers)
	}
	if atomics != 3 {
		t.Errorf("atomics = %d, want 3", atomics)
	}
}

func TestParseSignatureShapes(t *testing.T) {
	prog := mustParse(t, imageServerSrc)
	for _, d := range prog.Decls {
		sig, ok := d.(*ast.NodeSig)
		if !ok {
			continue
		}
		switch sig.Name {
		case "Listen":
			if len(sig.Inputs) != 0 || len(sig.Outputs) != 1 {
				t.Errorf("Listen: %d in, %d out", len(sig.Inputs), len(sig.Outputs))
			}
			if sig.Outputs[0].Type != "int" || sig.Outputs[0].Name != "socket" {
				t.Errorf("Listen output = %+v", sig.Outputs[0])
			}
		case "ReadRequest":
			if len(sig.Outputs) != 3 {
				t.Fatalf("ReadRequest outputs = %d", len(sig.Outputs))
			}
			if sig.Outputs[2].Type != "image_tag*" || sig.Outputs[2].Name != "request" {
				t.Errorf("pointer param = %+v", sig.Outputs[2])
			}
		case "Complete":
			if len(sig.Outputs) != 0 {
				t.Errorf("Complete should be a sink, outputs = %d", len(sig.Outputs))
			}
		case "ReadInFromDisk":
			if sig.Outputs[3].Type != "__u8*" {
				t.Errorf("rgb_data type = %q", sig.Outputs[3].Type)
			}
		}
	}
}

func TestParseDispatchCases(t *testing.T) {
	prog := mustParse(t, imageServerSrc)
	var cases []*ast.DispatchDecl
	for _, d := range prog.Decls {
		if dd, ok := d.(*ast.DispatchDecl); ok {
			cases = append(cases, dd)
		}
	}
	if len(cases) != 2 {
		t.Fatalf("dispatch cases = %d", len(cases))
	}
	hit := cases[0]
	if len(hit.Pattern) != 3 || hit.Pattern[2].Type != "hit" || hit.Pattern[2].Wildcard {
		t.Errorf("hit pattern = %v", hit.Pattern)
	}
	if !hit.Pattern[0].Wildcard || !hit.Pattern[1].Wildcard {
		t.Errorf("wildcards missing: %v", hit.Pattern)
	}
	if len(hit.Body) != 0 {
		t.Errorf("hit body should be empty, got %v", hit.Body)
	}
	miss := cases[1]
	want := []string{"ReadInFromDisk", "Compress", "StoreInCache"}
	if len(miss.Body) != len(want) {
		t.Fatalf("miss body = %v", miss.Body)
	}
	for i := range want {
		if miss.Body[i] != want[i] {
			t.Errorf("miss body[%d] = %q, want %q", i, miss.Body[i], want[i])
		}
	}
}

func TestParseAbbreviatedFigure1Syntax(t *testing.T) {
	src := `
source Listen ? Image;
Image = ReadRequest? CheckCache ? Handler ?Write? Complete;
Handler [_, _, hit] = ;
Handler [_, _, _] = ReadInFromDisk ? Compress ? StoreInCache;
`
	prog := mustParse(t, src)
	if len(prog.Decls) != 4 {
		t.Fatalf("decls = %d: %v", len(prog.Decls), prog.Decls)
	}
	flow := prog.Decls[1].(*ast.FlowDecl)
	if len(flow.Nodes) != 5 {
		t.Errorf("flow nodes = %v", flow.Nodes)
	}
	disp := prog.Decls[2].(*ast.DispatchDecl)
	if disp.Name != "Handler" || len(disp.Pattern) != 3 {
		t.Errorf("dispatch = %+v", disp)
	}
}

func TestParseStarWildcards(t *testing.T) {
	// Figure 7 writes patterns with stars: HandleMessage:[*,*,piece,*,*] = Piece;
	src := `HandleMessage:[*, *, piece, *, *] = Piece;`
	prog := mustParse(t, src)
	d := prog.Decls[0].(*ast.DispatchDecl)
	if len(d.Pattern) != 5 {
		t.Fatalf("pattern = %v", d.Pattern)
	}
	if !d.Pattern[0].Wildcard || d.Pattern[2].Type != "piece" {
		t.Errorf("pattern = %v", d.Pattern)
	}
}

func TestParseConstraintModes(t *testing.T) {
	src := `
atomic A:{cache?};
atomic B:{cache!};
atomic C:{cache};
atomic D:{a?, b!, c};
atomic E:{state(session)};
atomic F:{state(session)?};
`
	prog := mustParse(t, src)
	get := func(i int) *ast.AtomicDecl { return prog.Decls[i].(*ast.AtomicDecl) }

	if c := get(0).Constraints[0]; c.Mode != ast.Reader {
		t.Errorf("A: mode = %v", c.Mode)
	}
	if c := get(1).Constraints[0]; c.Mode != ast.Writer {
		t.Errorf("B: mode = %v", c.Mode)
	}
	if c := get(2).Constraints[0]; c.Mode != ast.Writer {
		t.Errorf("C: default mode = %v", c.Mode)
	}
	if cs := get(3).Constraints; len(cs) != 3 || cs[0].Mode != ast.Reader || cs[1].Mode != ast.Writer {
		t.Errorf("D: constraints = %v", cs)
	}
	if c := get(4).Constraints[0]; !c.Session {
		t.Errorf("E: session flag missing: %+v", c)
	}
	if c := get(5).Constraints[0]; !c.Session || c.Mode != ast.Reader {
		t.Errorf("F: %+v", c)
	}
}

func TestParseSessionDecl(t *testing.T) {
	prog := mustParse(t, "session Listen SessionOf;")
	d := prog.Decls[0].(*ast.SessionDecl)
	if d.Source != "Listen" || d.Func != "SessionOf" {
		t.Errorf("session decl = %+v", d)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		name string
		src  string
		want string // substring of first diagnostic
	}{
		{"missing semicolon", "source Listen => Image", "expected ;"},
		{"bad decl start", "-> foo;", "expected declaration"},
		{"bad source", "source Listen Image;", "expected =>"},
		{"unclosed params", "Foo (int x => ();", "expected ')'"},
		{"bad pattern", "Handler:[<] = ;", "expected pattern element"},
		{"bad constraint", "atomic A:{42};", "expected constraint name"},
		{"empty flow rejected midchain", "A = B -> ;", "expected node name"},
		{"bad session scope", "atomic A:{x(writer)};", "expected 'session'"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Parse("bad.flux", tc.src)
			if err == nil {
				t.Fatal("expected a parse error")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("error %q does not contain %q", err.Error(), tc.want)
			}
		})
	}
}

func TestErrorRecoveryFindsMultipleErrors(t *testing.T) {
	src := `
source Listen Image;
typedef hit TestInCache;
atomic A:{42};
`
	_, err := Parse("multi.flux", src)
	list, ok := AsErrorList(err)
	if !ok {
		t.Fatalf("expected ErrorList, got %T", err)
	}
	if len(list) < 2 {
		t.Errorf("expected >=2 diagnostics, got %d: %v", len(list), list)
	}
	// The valid typedef between the two bad declarations must still parse.
	prog, _ := Parse("multi.flux", src)
	var sawTypedef bool
	for _, d := range prog.Decls {
		if td, ok := d.(*ast.TypedefDecl); ok && td.Name == "hit" {
			sawTypedef = true
		}
	}
	if !sawTypedef {
		t.Error("recovery lost the valid typedef declaration")
	}
}

func TestRoundTrip(t *testing.T) {
	prog := mustParse(t, imageServerSrc)
	text := prog.String()
	prog2, err := Parse("roundtrip.flux", text)
	if err != nil {
		t.Fatalf("re-parse of printed program failed: %v\n%s", err, text)
	}
	if got, want := prog2.String(), text; got != want {
		t.Errorf("round-trip mismatch:\n--- first print\n%s\n--- second print\n%s", want, got)
	}
	if len(prog2.Decls) != len(prog.Decls) {
		t.Errorf("decl count changed: %d -> %d", len(prog.Decls), len(prog2.Decls))
	}
}

func TestNodesReferenced(t *testing.T) {
	prog := mustParse(t, imageServerSrc)
	refs := prog.NodesReferenced()
	for _, n := range []string{"Listen", "Image", "ReadRequest", "Handler", "FourOhFour"} {
		if !refs[n] {
			t.Errorf("%s not referenced", n)
		}
	}
	if refs["TestInCache"] {
		t.Error("predicate function should not count as a node reference")
	}
}

func TestErrorListFormatting(t *testing.T) {
	var l ErrorList
	if l.Error() != "no errors" {
		t.Errorf("empty list error = %q", l.Error())
	}
	if l.Err() != nil {
		t.Error("empty list should yield nil error")
	}
	_, err := Parse("x.flux", "source a b; source c d;")
	list, _ := AsErrorList(err)
	if len(list) >= 2 && !strings.Contains(list.Error(), "more errors") {
		t.Errorf("multi-error summary = %q", list.Error())
	}
}
