package parser

import (
	"strings"
	"testing"
	"testing/quick"

	"github.com/flux-lang/flux/internal/lang/ast"
)

// TestQuickParseNeverPanics feeds arbitrary byte soup to the parser; it
// must return (possibly with errors) rather than panic.
func TestQuickParseNeverPanics(t *testing.T) {
	f := func(src string) bool {
		_, _ = Parse("fuzz.flux", src)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// TestQuickParseFluxLikeInput fuzzes with token fragments that resemble
// real Flux programs, hitting deeper parser paths than raw bytes do.
func TestQuickParseFluxLikeInput(t *testing.T) {
	fragments := []string{
		"source", "typedef", "atomic", "handle", "error", "session",
		"A", "B", "flow", "(", ")", "[", "]", "{", "}", "=>", "->", "=",
		";", ",", ":", "?", "!", "_", "*", "int", "bool", "x", "y",
		"//c\n", "/*c*/", "\"s\"", "42",
	}
	f := func(picks []uint8) bool {
		var sb strings.Builder
		for _, p := range picks {
			sb.WriteString(fragments[int(p)%len(fragments)])
			sb.WriteByte(' ')
		}
		_, _ = Parse("fuzz2.flux", sb.String())
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// TestQuickRoundTripGeneratedPrograms builds random well-formed programs,
// prints them, re-parses, and requires structural equality — the
// generator/printer/parser triangle.
func TestQuickRoundTripGeneratedPrograms(t *testing.T) {
	f := func(nodes uint8, withDispatch, withHandler, withAtomic bool) bool {
		n := int(nodes%5) + 1
		var sb strings.Builder
		sb.WriteString("Gen () => (int v);\n")
		for i := 0; i < n; i++ {
			sb.WriteString(nodeName(i) + " (int v) => (int v);\n")
		}
		sb.WriteString("Snk (int v) => ();\n")
		sb.WriteString("source Gen => F;\nF = ")
		for i := 0; i < n; i++ {
			sb.WriteString(nodeName(i) + " -> ")
		}
		if withDispatch {
			sb.WriteString("D -> ")
		}
		sb.WriteString("Snk;\n")
		if withDispatch {
			sb.WriteString("typedef p P;\nD:[p] = ;\nD:[_] = ;\n")
		}
		if withHandler {
			sb.WriteString("H (int v) => ();\nhandle error " + nodeName(0) + " => H;\n")
		}
		if withAtomic {
			sb.WriteString("atomic " + nodeName(0) + ":{c1, c2?};\n")
		}
		src := sb.String()
		p1, err := Parse("gen.flux", src)
		if err != nil {
			t.Logf("first parse failed:\n%s\n%v", src, err)
			return false
		}
		printed := p1.String()
		p2, err := Parse("gen2.flux", printed)
		if err != nil {
			t.Logf("re-parse failed:\n%s\n%v", printed, err)
			return false
		}
		if len(p1.Decls) != len(p2.Decls) {
			return false
		}
		return p1.String() == p2.String()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func nodeName(i int) string { return "N" + string(rune('A'+i)) }

// TestDeepNestingDoesNotOverflow parses a long chain; the parser is
// iterative over declarations, so arbitrarily long programs must work.
func TestDeepNestingDoesNotOverflow(t *testing.T) {
	var sb strings.Builder
	sb.WriteString("Gen () => (int v);\n")
	const n = 5000
	for i := 0; i < n; i++ {
		name := nodeChainName(i)
		sb.WriteString(name + " (int v) => (int v);\n")
	}
	sb.WriteString("source Gen => F;\nF = ")
	for i := 0; i < n; i++ {
		if i > 0 {
			sb.WriteString(" -> ")
		}
		sb.WriteString(nodeChainName(i))
	}
	sb.WriteString(";\n")
	prog, err := Parse("deep.flux", sb.String())
	if err != nil {
		t.Fatal(err)
	}
	var flow *ast.FlowDecl
	for _, d := range prog.Decls {
		if f, ok := d.(*ast.FlowDecl); ok {
			flow = f
		}
	}
	if flow == nil || len(flow.Nodes) != n {
		t.Fatalf("chain length = %v", flow)
	}
}

func nodeChainName(i int) string {
	const letters = "ABCDEFGHIJKLMNOPQRSTUVWXYZ"
	name := "N"
	for i >= 0 {
		name += string(letters[i%26])
		i = i/26 - 1
	}
	return name
}
