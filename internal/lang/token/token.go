// Package token defines the lexical tokens of the Flux coordination
// language and positions within Flux source text.
//
// The token set follows the grammar used in Burns et al., "Flux: A Language
// for Programming High-Performance Servers" (USENIX ATC 2006), Figure 2.
// Both surface syntaxes that appear in the paper are supported: the
// canonical one ("source Listen => Image;", "A -> B", "Handler:[_, _, hit]")
// and the abbreviated abstract-figure one ("A ? B", "Handler [_, _, hit]").
package token

import "fmt"

// Kind identifies the lexical class of a token.
type Kind int

// Token kinds. The zero value is Invalid so that an uninitialized Token is
// never mistaken for a meaningful one.
const (
	Invalid Kind = iota

	// Special tokens.
	EOF
	Comment // // line comment or /* block comment */ (carried only when requested)

	// Identifiers and literals.
	Ident  // ReadRequest, image_tag, hit
	Int    // 42 (used in session hash widths and future extensions)
	String // "..." reserved for future pragmas

	// Keywords.
	Source  // source
	Typedef // typedef
	Atomic  // atomic
	Handle  // handle
	Error   // error
	Session // session (inside constraint scope parens)

	// Operators and delimiters.
	Arrow      // ->
	DoubleArr  // =>
	Assign     // =
	Colon      // :
	Semicolon  // ;
	Comma      // ,
	LParen     // (
	RParen     // )
	LBracket   // [
	RBracket   // ]
	LBrace     // {
	RBrace     // }
	Question   // ?   (reader marker, also legacy flow arrow)
	Bang       // !   (writer marker)
	Underscore // _   (wildcard pattern)
	Star       // *   (pointer in C type names, wildcard in Fig. 7 patterns)
)

var kindNames = map[Kind]string{
	Invalid:    "invalid",
	EOF:        "EOF",
	Comment:    "comment",
	Ident:      "identifier",
	Int:        "int",
	String:     "string",
	Source:     "source",
	Typedef:    "typedef",
	Atomic:     "atomic",
	Handle:     "handle",
	Error:      "error",
	Session:    "session",
	Arrow:      "->",
	DoubleArr:  "=>",
	Assign:     "=",
	Colon:      ":",
	Semicolon:  ";",
	Comma:      ",",
	LParen:     "(",
	RParen:     ")",
	LBracket:   "[",
	RBracket:   "]",
	LBrace:     "{",
	RBrace:     "}",
	Question:   "?",
	Bang:       "!",
	Underscore: "_",
	Star:       "*",
}

// String returns a human-readable name for the kind, suitable for
// diagnostics ("expected ';', found identifier").
func (k Kind) String() string {
	if s, ok := kindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("kind(%d)", int(k))
}

// keywords maps keyword spellings to kinds. "session" is contextual: the
// lexer always reports it as Session and the parser treats it as an
// identifier outside constraint-scope position.
var keywords = map[string]Kind{
	"source":  Source,
	"typedef": Typedef,
	"atomic":  Atomic,
	"handle":  Handle,
	"error":   Error,
	"session": Session,
}

// Lookup returns the keyword kind for an identifier spelling, or Ident.
func Lookup(ident string) Kind {
	if k, ok := keywords[ident]; ok {
		return k
	}
	return Ident
}

// IsKeyword reports whether the kind is a reserved word.
func (k Kind) IsKeyword() bool { return k >= Source && k <= Session }

// Position is a line/column location in a Flux source file. Lines and
// columns are 1-based; a zero Position means "unknown".
type Position struct {
	File   string
	Line   int
	Column int
	Offset int // byte offset, 0-based
}

// IsValid reports whether the position carries location information.
func (p Position) IsValid() bool { return p.Line > 0 }

// String renders the position as file:line:col, omitting empty parts.
func (p Position) String() string {
	if !p.IsValid() {
		return "-"
	}
	if p.File == "" {
		return fmt.Sprintf("%d:%d", p.Line, p.Column)
	}
	return fmt.Sprintf("%s:%d:%d", p.File, p.Line, p.Column)
}

// Token is a single lexical token with its source position and literal text.
type Token struct {
	Kind Kind
	Lit  string // literal text as it appeared in the source
	Pos  Position
}

// String renders the token for diagnostics.
func (t Token) String() string {
	switch t.Kind {
	case Ident, Int, String, Comment:
		return fmt.Sprintf("%s(%q)", t.Kind, t.Lit)
	default:
		return t.Kind.String()
	}
}
