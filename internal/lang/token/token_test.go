package token

import "testing"

func TestLookupKeywords(t *testing.T) {
	cases := map[string]Kind{
		"source":  Source,
		"typedef": Typedef,
		"atomic":  Atomic,
		"handle":  Handle,
		"error":   Error,
		"session": Session,
		"Listen":  Ident,
		"hit":     Ident,
		"Source":  Ident, // keywords are case-sensitive
	}
	for lit, want := range cases {
		if got := Lookup(lit); got != want {
			t.Errorf("Lookup(%q) = %v, want %v", lit, got, want)
		}
	}
}

func TestKindString(t *testing.T) {
	if Arrow.String() != "->" {
		t.Errorf("Arrow.String() = %q", Arrow.String())
	}
	if DoubleArr.String() != "=>" {
		t.Errorf("DoubleArr.String() = %q", DoubleArr.String())
	}
	if Kind(9999).String() == "" {
		t.Error("unknown kind should still render")
	}
}

func TestIsKeyword(t *testing.T) {
	for _, k := range []Kind{Source, Typedef, Atomic, Handle, Error, Session} {
		if !k.IsKeyword() {
			t.Errorf("%v should be a keyword", k)
		}
	}
	for _, k := range []Kind{Ident, Arrow, EOF, LBrace} {
		if k.IsKeyword() {
			t.Errorf("%v should not be a keyword", k)
		}
	}
}

func TestPositionString(t *testing.T) {
	p := Position{File: "img.flux", Line: 3, Column: 7}
	if got := p.String(); got != "img.flux:3:7" {
		t.Errorf("Position.String() = %q", got)
	}
	p.File = ""
	if got := p.String(); got != "3:7" {
		t.Errorf("Position.String() without file = %q", got)
	}
	var zero Position
	if zero.IsValid() {
		t.Error("zero position should be invalid")
	}
	if zero.String() != "-" {
		t.Errorf("zero Position.String() = %q", zero.String())
	}
}

func TestTokenString(t *testing.T) {
	tok := Token{Kind: Ident, Lit: "Listen"}
	if got := tok.String(); got != `identifier("Listen")` {
		t.Errorf("Token.String() = %q", got)
	}
	tok = Token{Kind: Semicolon, Lit: ";"}
	if got := tok.String(); got != ";" {
		t.Errorf("Token.String() = %q", got)
	}
}
