package telemetry

import (
	"context"
	"sync/atomic"
	"testing"
	"time"

	"github.com/flux-lang/flux/internal/core"
	"github.com/flux-lang/flux/internal/lang/parser"
	"github.com/flux-lang/flux/internal/runtime"
)

const pipelineSrc = `
Gen () => (int v);
Double (int v) => (int v);
Sink (int v) => ();
source Gen => Flow;
Flow = Double -> Sink;
`

// compileProgram builds a fresh program (and therefore fresh *FlatGraph
// identities) from pipelineSrc.
func compileProgram(t *testing.T) *core.Program {
	t.Helper()
	astProg, err := parser.Parse("telemetry_test.flux", pipelineSrc)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	p, err := core.Build(astProg)
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	return p
}

func flowGraph(t *testing.T, p *core.Program) *core.FlatGraph {
	t.Helper()
	g := p.Graphs["Gen"]
	if g == nil {
		for _, gg := range p.Graphs {
			g = gg
			break
		}
	}
	if g == nil {
		t.Fatal("no flat graph")
	}
	return g
}

// TestTelemetryAggregation drives every observer entry point by hand
// and checks the snapshot: flow histogram totals, outcome counters,
// node histograms, stream windows, sheds, and conn registration.
func TestTelemetryAggregation(t *testing.T) {
	tel := New()
	g := flowGraph(t, compileProgram(t))

	for i := 0; i < 10; i++ {
		tel.FlowDone(g, 0, runtime.FlowCompleted, time.Millisecond)
	}
	tel.FlowDone(g, 0, runtime.FlowErrored, 2*time.Millisecond)
	tel.FlowDone(g, 0, runtime.FlowDropped, 3*time.Millisecond)
	tel.NodeDone(g, g.Nodes[0], 50*time.Microsecond)
	tel.QueueDepth(runtime.ThreadPool, "admission", 7)
	tel.QueueDepth(runtime.ThreadPool, "admission", 9)
	tel.ConnShed("webserver", "overload")
	tel.ConnShed("webserver", "overload")
	tel.ConnShed("webserver", "conn-limit")
	tel.RegisterConns("webserver", func() ConnStats {
		return ConnStats{Accepted: 5, Admitted: 4, Shed: 1, Live: 2}
	})

	s := tel.Snapshot()
	if len(s.Graphs) != 1 {
		t.Fatalf("graphs = %d, want 1", len(s.Graphs))
	}
	gs := s.Graphs[0]
	if gs.Graph != g.Source.Name || gs.Instances != 1 {
		t.Errorf("graph %q instances %d", gs.Graph, gs.Instances)
	}
	if gs.Flows.Count != 12 {
		t.Errorf("flow count = %d, want 12", gs.Flows.Count)
	}
	if gs.Outcomes["completed"] != 10 || gs.Outcomes["errored"] != 1 || gs.Outcomes["dropped"] != 1 {
		t.Errorf("outcomes = %v", gs.Outcomes)
	}
	if len(gs.Nodes) != 1 || gs.Nodes[0].Hist.Count != 1 {
		t.Errorf("nodes = %+v", gs.Nodes)
	}

	if len(s.Streams) != 1 {
		t.Fatalf("streams = %d, want 1", len(s.Streams))
	}
	ss := s.Streams[0]
	if ss.Queue != "admission" || ss.Last != 9 || len(ss.Samples) != 2 || ss.Counter {
		t.Errorf("stream = %+v", ss)
	}

	if len(s.Sheds) != 2 {
		t.Fatalf("sheds = %+v", s.Sheds)
	}
	// Sorted server then reason: conn-limit before overload.
	if s.Sheds[0].Reason != "conn-limit" || s.Sheds[0].Count != 1 ||
		s.Sheds[1].Reason != "overload" || s.Sheds[1].Count != 2 {
		t.Errorf("sheds = %+v", s.Sheds)
	}
	if tel.ShedTotal() != 3 {
		t.Errorf("shed total = %d", tel.ShedTotal())
	}

	if len(s.Conns) != 1 || s.Conns[0].Stats.Accepted != 5 || s.Conns[0].Stats.Live != 2 {
		t.Errorf("conns = %+v", s.Conns)
	}
}

// TestSnapshotMergesInstancesByName: two graph instances compiled from
// the same source merge into one logical graph in the snapshot — the
// shape a benchmark sweep produces by starting many servers of the
// same program.
func TestSnapshotMergesInstancesByName(t *testing.T) {
	tel := New()
	g1 := flowGraph(t, compileProgram(t))
	g2 := flowGraph(t, compileProgram(t))
	if g1 == g2 {
		t.Fatal("expected distinct graph instances")
	}
	tel.FlowDone(g1, 0, runtime.FlowCompleted, time.Millisecond)
	tel.FlowDone(g2, 0, runtime.FlowCompleted, 2*time.Millisecond)
	tel.NodeDone(g1, g1.Nodes[0], time.Microsecond)
	tel.NodeDone(g2, g2.Nodes[0], time.Microsecond)

	s := tel.Snapshot()
	if len(s.Graphs) != 1 {
		t.Fatalf("graphs = %d, want 1 merged", len(s.Graphs))
	}
	gs := s.Graphs[0]
	if gs.Instances != 2 || gs.Flows.Count != 2 {
		t.Errorf("instances = %d flows = %d", gs.Instances, gs.Flows.Count)
	}
	// The two instances' same-labelled node histograms merge.
	if len(gs.Nodes) != 1 || gs.Nodes[0].Hist.Count != 2 {
		t.Errorf("merged nodes = %+v", gs.Nodes)
	}
}

// TestCtrlStreams: only ctrl/* streams surface, with full windows.
func TestCtrlStreams(t *testing.T) {
	tel := New()
	tel.QueueDepth(runtime.EventDriven, runtime.CtrlWatermark, 64)
	tel.QueueDepth(runtime.EventDriven, runtime.CtrlWatermark, 32)
	tel.QueueDepth(runtime.EventDriven, runtime.CtrlWindowP95, 1500)
	tel.QueueDepth(runtime.EventDriven, "admission", 7)
	tel.QueueDepth(runtime.EventDriven, runtime.QueueSteals, 3)

	ctrl := tel.CtrlStreams()
	if len(ctrl) != 2 {
		t.Fatalf("ctrl streams = %d, want 2", len(ctrl))
	}
	if ctrl[0].Queue != runtime.CtrlWindowP95 || ctrl[1].Queue != runtime.CtrlWatermark {
		t.Errorf("ctrl order = %q, %q", ctrl[0].Queue, ctrl[1].Queue)
	}
	if ctrl[1].Last != 32 || len(ctrl[1].Samples) != 2 {
		t.Errorf("watermark window = %+v", ctrl[1])
	}
}

// TestTraceSampling: with 1-in-1 sampling every terminal lands in the
// ring; completed flows carry a rendered path label, dropped flows do
// not (their register is a partial route, not a path).
func TestTraceSampling(t *testing.T) {
	tel := NewSampled(1)
	g := flowGraph(t, compileProgram(t))
	tel.FlowDone(g, 0, runtime.FlowCompleted, time.Millisecond)
	tel.FlowDone(g, 0, runtime.FlowDropped, time.Millisecond)

	traces := tel.Traces()
	if len(traces) != 2 {
		t.Fatalf("traces = %d, want 2", len(traces))
	}
	if traces[0].Path == "" || traces[0].Outcome != "completed" {
		t.Errorf("completed trace = %+v", traces[0])
	}
	if traces[1].Path != "" || traces[1].Outcome != "dropped" {
		t.Errorf("dropped trace = %+v", traces[1])
	}

	// Sampling disabled: no traces.
	none := NewSampled(0)
	none.FlowDone(g, 0, runtime.FlowCompleted, time.Millisecond)
	if got := none.Traces(); len(got) != 0 {
		t.Errorf("unsampled traces = %d", len(got))
	}
}

// TestObserverPathZeroAlloc: after first-sight registration, every
// record-path entry point — FlowDone (including its 1-in-1 trace
// write), NodeDone, QueueDepth, ConnShed — is allocation-free.
func TestObserverPathZeroAlloc(t *testing.T) {
	tel := NewSampled(1)
	g := flowGraph(t, compileProgram(t))
	// Warm the copy-on-write registries.
	tel.FlowDone(g, 0, runtime.FlowCompleted, time.Millisecond)
	tel.NodeDone(g, g.Nodes[0], time.Microsecond)
	tel.QueueDepth(runtime.ThreadPool, "admission", 1)
	tel.ConnShed("webserver", "overload")

	if n := testing.AllocsPerRun(1000, func() {
		tel.FlowDone(g, 0, runtime.FlowCompleted, time.Millisecond)
	}); n != 0 {
		t.Errorf("FlowDone allocates %v/op", n)
	}
	if n := testing.AllocsPerRun(1000, func() {
		tel.NodeDone(g, g.Nodes[0], time.Microsecond)
	}); n != 0 {
		t.Errorf("NodeDone allocates %v/op", n)
	}
	if n := testing.AllocsPerRun(1000, func() {
		tel.QueueDepth(runtime.ThreadPool, "admission", 5)
	}); n != 0 {
		t.Errorf("QueueDepth allocates %v/op", n)
	}
	if n := testing.AllocsPerRun(1000, func() {
		tel.ConnShed("webserver", "overload")
	}); n != 0 {
		t.Errorf("ConnShed allocates %v/op", n)
	}
}

// TestTelemetryOnAllEngines runs a real server on every registered
// engine with a telemetry plane attached — the cross-engine smoke the
// race job executes with -race.
func TestTelemetryOnAllEngines(t *testing.T) {
	kinds := []runtime.EngineKind{
		runtime.ThreadPerFlow, runtime.ThreadPool, runtime.EventDriven, runtime.WorkStealing,
	}
	for _, kind := range kinds {
		t.Run(kind.String(), func(t *testing.T) {
			tel := NewSampled(1)
			p := compileProgram(t)
			var i atomic.Int64
			b := runtime.NewBindings().
				BindSource("Gen", func(fl *runtime.Flow) (runtime.Record, error) {
					v := i.Add(1)
					if v > 200 {
						return nil, runtime.ErrStop
					}
					return runtime.Record{int(v)}, nil
				}).
				BindNode("Double", func(fl *runtime.Flow, in runtime.Record) (runtime.Record, error) {
					return runtime.Record{in[0].(int) * 2}, nil
				}).
				BindNode("Sink", func(fl *runtime.Flow, in runtime.Record) (runtime.Record, error) {
					return nil, nil
				})
			srv, err := runtime.New(p, b,
				runtime.WithEngine(kind),
				runtime.WithObserver(tel),
				runtime.WithQueueSampleInterval(time.Millisecond),
			)
			if err != nil {
				t.Fatal(err)
			}
			ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
			defer cancel()
			if err := srv.Run(ctx); err != nil {
				t.Fatal(err)
			}
			s := tel.Snapshot()
			if len(s.Graphs) != 1 || s.Graphs[0].Outcomes["completed"] != 200 {
				t.Fatalf("snapshot graphs = %+v", s.Graphs)
			}
			if len(s.Graphs[0].Nodes) == 0 {
				t.Error("no node histograms recorded")
			}
			if len(tel.Traces()) == 0 {
				t.Error("no traces sampled at 1-in-1")
			}
		})
	}
}

// BenchmarkTelemetryFlowDone is the benchdiff-gated record path: it
// must report 0 allocs/op.
func BenchmarkTelemetryFlowDone(b *testing.B) {
	tel := New()
	astProg, err := parser.Parse("bench.flux", pipelineSrc)
	if err != nil {
		b.Fatal(err)
	}
	p, err := core.Build(astProg)
	if err != nil {
		b.Fatal(err)
	}
	var g *core.FlatGraph
	for _, gg := range p.Graphs {
		g = gg
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tel.FlowDone(g, uint64(i)&3, runtime.FlowCompleted, time.Millisecond)
	}
}

// BenchmarkTelemetryNodeDone measures the per-node record path.
func BenchmarkTelemetryNodeDone(b *testing.B) {
	tel := New()
	astProg, err := parser.Parse("bench.flux", pipelineSrc)
	if err != nil {
		b.Fatal(err)
	}
	p, err := core.Build(astProg)
	if err != nil {
		b.Fatal(err)
	}
	var g *core.FlatGraph
	for _, gg := range p.Graphs {
		g = gg
	}
	n := g.Nodes[0]
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tel.NodeDone(g, n, time.Microsecond)
	}
}
