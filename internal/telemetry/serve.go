package telemetry

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"sort"
	"strings"
	"time"

	"github.com/flux-lang/flux/internal/profile"
)

// Ops is the running ops endpoint: one HTTP listener carrying the
// telemetry plane's live views.
//
//	/metrics                Prometheus text exposition
//	/debug/pprof/*          net/http/pprof (profile, heap, goroutine, ...)
//	/debug/flux/summary     the full Snapshot (fluxtop's feed)
//	/debug/flux/paths       the path profiler's ranked hot paths
//	/debug/flux/nodes       per-node latency histograms
//	/debug/flux/ctrl        SLO-controller trajectory windows
//	/debug/flux/sheds       shed counters and trajectories
//	/debug/flux/conns       connection-plane admission counters
//	/debug/flux/traces      sampled flow traces
type Ops struct {
	t    *Telemetry
	prof *profile.Profiler
	ln   net.Listener
	srv  *http.Server
}

// ServeOption configures the ops endpoint.
type ServeOption func(*Ops)

// WithProfiler attaches a path profiler; /debug/flux/paths serves its
// structured snapshot (the same one the text reports render).
func WithProfiler(p *profile.Profiler) ServeOption {
	return func(o *Ops) { o.prof = p }
}

// Serve opens the ops listener on addr (":0" picks a port; see Addr)
// and serves until Close. The handlers only read the telemetry plane's
// lock-free aggregate, so scraping a loaded server is safe.
func Serve(addr string, t *Telemetry, opts ...ServeOption) (*Ops, error) {
	if addr == "" {
		addr = "127.0.0.1:0"
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	o := &Ops{t: t, ln: ln}
	for _, opt := range opts {
		opt(o)
	}

	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", o.handleMetrics)
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/debug/flux/summary", o.handleJSON(func() any { return t.Snapshot() }))
	mux.HandleFunc("/debug/flux/paths", o.handlePaths)
	mux.HandleFunc("/debug/flux/nodes", o.handleJSON(func() any {
		s := t.snapshot(false, false)
		return s.Graphs
	}))
	mux.HandleFunc("/debug/flux/ctrl", o.handleJSON(func() any { return t.CtrlStreams() }))
	mux.HandleFunc("/debug/flux/sheds", o.handleJSON(func() any {
		s := t.snapshot(true, false)
		return s.Sheds
	}))
	mux.HandleFunc("/debug/flux/conns", o.handleJSON(func() any {
		s := t.snapshot(false, false)
		return s.Conns
	}))
	mux.HandleFunc("/debug/flux/dynpages", o.handleJSON(func() any {
		s := t.snapshot(false, false)
		return s.DynPages
	}))
	mux.HandleFunc("/debug/flux/traces", o.handleJSON(func() any { return t.Traces() }))

	o.srv = &http.Server{Handler: mux}
	go func() { _ = o.srv.Serve(ln) }()
	return o, nil
}

// Addr returns the bound listen address.
func (o *Ops) Addr() string { return o.ln.Addr().String() }

// Close stops the listener and in-flight handlers.
func (o *Ops) Close() error { return o.srv.Close() }

func (o *Ops) handleJSON(fn func() any) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(fn())
	}
}

// handlePaths serves the path profiler's structured snapshot — the
// §5.2 hot-path report as data instead of text. Without a profiler it
// serves an empty report (telemetry alone does not aggregate by path;
// the profiler owns that).
func (o *Ops) handlePaths(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	var rep profile.Report
	if o.prof != nil {
		rep = o.prof.Snapshot(profile.ByCount, 0)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(rep)
}

// --- Prometheus text exposition ---------------------------------------------

// handleMetrics renders the aggregate in Prometheus text exposition
// format (version 0.0.4): per-graph flow histograms and outcome
// counters, per-node latency summaries, queue-depth gauges, ctrl/*
// trajectory gauges, shed counters, and connection-plane counters.
func (o *Ops) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s := o.t.snapshot(false, false)
	var b strings.Builder

	fmt.Fprintf(&b, "# HELP flux_uptime_seconds Time since the telemetry plane was created.\n")
	fmt.Fprintf(&b, "# TYPE flux_uptime_seconds gauge\n")
	fmt.Fprintf(&b, "flux_uptime_seconds %g\n", s.UptimeSeconds)

	// Flow outcome counters.
	fmt.Fprintf(&b, "# HELP flux_flows_total Flow terminals by graph and outcome.\n")
	fmt.Fprintf(&b, "# TYPE flux_flows_total counter\n")
	for _, g := range s.Graphs {
		for _, out := range []string{"completed", "errored", "dropped"} {
			fmt.Fprintf(&b, "flux_flows_total{graph=%q,outcome=%q} %d\n", g.Graph, out, g.Outcomes[out])
		}
	}

	// Per-graph flow latency histograms.
	fmt.Fprintf(&b, "# HELP flux_flow_latency_seconds Flow latency by graph (all outcomes).\n")
	fmt.Fprintf(&b, "# TYPE flux_flow_latency_seconds histogram\n")
	for _, g := range s.Graphs {
		writeHistogram(&b, "flux_flow_latency_seconds", fmt.Sprintf("graph=%q", g.Graph), g.Flows)
	}

	// Per-node latency summaries (quantiles, not full histograms — a
	// graph has dozens of vertices and the scrape should stay readable).
	fmt.Fprintf(&b, "# HELP flux_node_latency_seconds Node execution latency by graph and node.\n")
	fmt.Fprintf(&b, "# TYPE flux_node_latency_seconds summary\n")
	for _, g := range s.Graphs {
		for _, n := range g.Nodes {
			base := fmt.Sprintf("graph=%q,node=%q", g.Graph, n.Node)
			fmt.Fprintf(&b, "flux_node_latency_seconds{%s,quantile=\"0.5\"} %g\n", base, n.Hist.Quantile(0.50).Seconds())
			fmt.Fprintf(&b, "flux_node_latency_seconds{%s,quantile=\"0.95\"} %g\n", base, n.Hist.Quantile(0.95).Seconds())
			fmt.Fprintf(&b, "flux_node_latency_seconds_sum{%s} %g\n", base, time.Duration(n.Hist.Sum).Seconds())
			fmt.Fprintf(&b, "flux_node_latency_seconds_count{%s} %d\n", base, n.Hist.Count)
		}
	}

	// Queue-depth gauges (backlogs) and stream gauges (counters riding
	// the same surface: steals, msg/*), plus ctrl/* trajectory gauges.
	var depths, streams, ctrls []StreamSnapshot
	for _, ss := range s.Streams {
		switch {
		case strings.HasPrefix(ss.Queue, "ctrl/"):
			ctrls = append(ctrls, ss)
		case ss.Counter:
			streams = append(streams, ss)
		default:
			depths = append(depths, ss)
		}
	}
	fmt.Fprintf(&b, "# HELP flux_queue_depth Latest sampled depth of an engine queue.\n")
	fmt.Fprintf(&b, "# TYPE flux_queue_depth gauge\n")
	for _, ss := range depths {
		fmt.Fprintf(&b, "flux_queue_depth{engine=%q,queue=%q} %d\n", ss.Engine, ss.Queue, ss.Last)
	}
	fmt.Fprintf(&b, "# HELP flux_stream_value Latest value of a counter stream riding the queue-depth surface.\n")
	fmt.Fprintf(&b, "# TYPE flux_stream_value gauge\n")
	for _, ss := range streams {
		fmt.Fprintf(&b, "flux_stream_value{engine=%q,stream=%q} %d\n", ss.Engine, ss.Queue, ss.Last)
	}
	fmt.Fprintf(&b, "# HELP flux_ctrl Latest SLO-controller trajectory value by signal.\n")
	fmt.Fprintf(&b, "# TYPE flux_ctrl gauge\n")
	for _, ss := range ctrls {
		fmt.Fprintf(&b, "flux_ctrl{engine=%q,signal=%q} %d\n", ss.Engine, strings.TrimPrefix(ss.Queue, "ctrl/"), ss.Last)
	}

	// Shed counters.
	fmt.Fprintf(&b, "# HELP flux_conn_sheds_total Connections shed by server and reason.\n")
	fmt.Fprintf(&b, "# TYPE flux_conn_sheds_total counter\n")
	for _, sh := range s.Sheds {
		fmt.Fprintf(&b, "flux_conn_sheds_total{server=%q,reason=%q} %d\n", sh.Server, sh.Reason, sh.Count)
	}

	// Connection-plane counters.
	fmt.Fprintf(&b, "# HELP flux_plane_connections_total Connection-plane admission counters by plane and state.\n")
	fmt.Fprintf(&b, "# TYPE flux_plane_connections_total counter\n")
	for _, c := range s.Conns {
		fmt.Fprintf(&b, "flux_plane_connections_total{plane=%q,state=\"accepted\"} %d\n", c.Name, c.Stats.Accepted)
		fmt.Fprintf(&b, "flux_plane_connections_total{plane=%q,state=\"admitted\"} %d\n", c.Name, c.Stats.Admitted)
		fmt.Fprintf(&b, "flux_plane_connections_total{plane=%q,state=\"shed\"} %d\n", c.Name, c.Stats.Shed)
	}
	// Dynamic-page dispatch counters.
	if len(s.DynPages) > 0 {
		fmt.Fprintf(&b, "# HELP flux_dynamic_pages_total Dynamic renders by server and dispatch path.\n")
		fmt.Fprintf(&b, "# TYPE flux_dynamic_pages_total counter\n")
		for _, d := range s.DynPages {
			fmt.Fprintf(&b, "flux_dynamic_pages_total{server=%q,path=\"compiled\"} %d\n", d.Name, d.Stats.Compiled)
			fmt.Fprintf(&b, "flux_dynamic_pages_total{server=%q,path=\"interpreted\"} %d\n", d.Name, d.Stats.Interpreted)
			fmt.Fprintf(&b, "flux_dynamic_pages_total{server=%q,path=\"frag_hit\"} %d\n", d.Name, d.Stats.FragHits)
			fmt.Fprintf(&b, "flux_dynamic_pages_total{server=%q,path=\"frag_miss\"} %d\n", d.Name, d.Stats.FragMisses)
		}
	}

	fmt.Fprintf(&b, "# HELP flux_plane_live_connections Live connections tracked per plane.\n")
	fmt.Fprintf(&b, "# TYPE flux_plane_live_connections gauge\n")
	for _, c := range s.Conns {
		fmt.Fprintf(&b, "flux_plane_live_connections{plane=%q} %d\n", c.Name, c.Stats.Live)
	}

	_, _ = w.Write([]byte(b.String()))
}

// writeHistogram renders one HistSnapshot as a Prometheus histogram:
// cumulative buckets over the non-empty bounds (ascending le values are
// all the format requires), then +Inf, _sum, and _count.
func writeHistogram(b *strings.Builder, name, labels string, h HistSnapshot) {
	sort.Slice(h.Buckets, func(i, j int) bool { return h.Buckets[i].Idx < h.Buckets[j].Idx })
	var cum uint64
	for _, bk := range h.Buckets {
		cum += bk.N
		le := time.Duration(bk.UpperNanos()).Seconds()
		fmt.Fprintf(b, "%s_bucket{%s,le=\"%g\"} %d\n", name, labels, le, cum)
	}
	fmt.Fprintf(b, "%s_bucket{%s,le=\"+Inf\"} %d\n", name, labels, h.Count)
	fmt.Fprintf(b, "%s_sum{%s} %g\n", name, labels, time.Duration(h.Sum).Seconds())
	fmt.Fprintf(b, "%s_count{%s} %d\n", name, labels, h.Count)
}
