package telemetry

import "sync/atomic"

// counterStripes is the stripe count of a Counter — enough that flows
// hashing to different stripes (by path ID, graph, or reason) rarely
// contend on one cache line, small enough that summing stays trivial.
const counterStripes = 8

// counterCell pads each stripe to its own cache line so concurrent
// adders on different stripes never false-share.
type counterCell struct {
	v atomic.Uint64
	_ [7]uint64
}

// Counter is a sharded atomic counter: Add spreads writers across
// cache-line-padded stripes selected by a caller-supplied hint (the
// flow's path ID, a reason hash — anything roughly uniform), and Value
// sums them. The zero value is ready; no method allocates.
type Counter struct {
	cells [counterStripes]counterCell
}

// Add increments the counter by n on the hint's stripe.
func (c *Counter) Add(hint uint64, n uint64) {
	c.cells[hint&(counterStripes-1)].v.Add(n)
}

// Value sums the stripes. Concurrent adders may land mid-sum; the
// result is a consistent lower bound, exact once writers quiesce.
func (c *Counter) Value() uint64 {
	var total uint64
	for i := range c.cells {
		total += c.cells[i].v.Load()
	}
	return total
}

// strhash is FNV-1a over a short string — the stripe/bucket hint for
// string-keyed counters (shed reasons, server names), inlined to stay
// allocation-free.
func strhash(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}
