package telemetry

import (
	"math/bits"
	"sync/atomic"
	"time"
)

// The histogram's bucket layout is logarithmic with linear subdivision:
// each power-of-two octave of nanoseconds is split into 2^histSubBits
// equal sub-buckets, so relative resolution is bounded at
// 1/2^histSubBits (12.5%) across the whole range — from 1ns to ~584
// years — in a fixed 4KB of atomics. This is the HdrHistogram shape cut
// down to what a latency plane needs: a lock-free, allocation-free
// Record and a mergeable snapshot.
const (
	histSubBits = 3
	histSubMask = (1 << histSubBits) - 1
	// histBuckets covers every (octave, sub-bucket) pair of a uint64.
	histBuckets = 64 << histSubBits
)

// Histogram is a fixed-size log-bucketed latency histogram. The zero
// value is ready to use; Record is safe for any number of concurrent
// writers and never allocates — it is the always-on aggregation behind
// the Observer plane's FlowDone/NodeDone hot path.
type Histogram struct {
	count   atomic.Uint64
	sum     atomic.Int64
	max     atomic.Int64
	min     atomic.Int64 // stored as -(v+1) so zero means "unset"
	buckets [histBuckets]atomic.Uint64
}

// bucketIndex maps a nanosecond value to its bucket.
func bucketIndex(v uint64) int {
	if v < 1<<histSubBits {
		// The first sub-octave values index directly (their leading bit
		// sits inside the sub-bucket field).
		return int(v)
	}
	exp := bits.Len64(v) - 1 // position of the leading bit
	sub := (v >> (uint(exp) - histSubBits)) & histSubMask
	return ((exp - histSubBits) << histSubBits) + int(sub) + (1 << histSubBits)
}

// bucketUpper returns the inclusive upper bound (in nanoseconds) of a
// bucket — the value quantile estimation reports for samples landing in
// it.
func bucketUpper(i int) uint64 {
	if i < 1<<histSubBits {
		return uint64(i)
	}
	i -= 1 << histSubBits
	exp := uint(i >> histSubBits)
	base := uint64(1<<histSubBits) + uint64(i&histSubMask) + 1
	if base > ^uint64(0)>>exp {
		// The top octaves' bounds exceed uint64; saturate.
		return ^uint64(0)
	}
	return base<<exp - 1
}

// Record adds one duration sample. Non-positive samples count into the
// zero bucket (a flow can legitimately take under the clock's
// resolution).
func (h *Histogram) Record(d time.Duration) { h.RecordNanos(int64(d)) }

// RecordNanos adds one sample in nanoseconds.
func (h *Histogram) RecordNanos(v int64) {
	if v < 0 {
		v = 0
	}
	h.count.Add(1)
	h.sum.Add(v)
	h.buckets[bucketIndex(uint64(v))].Add(1)
	for {
		cur := h.max.Load()
		if v <= cur || h.max.CompareAndSwap(cur, v) {
			break
		}
	}
	for {
		// Smaller values store closer to -1, so "not a new min" is <=.
		cur := h.min.Load()
		if (cur != 0 && -(v+1) <= cur) || h.min.CompareAndSwap(cur, -(v+1)) {
			break
		}
	}
}

// HistBucket is one non-empty bucket of a snapshot: the bucket's index
// in the fixed layout and its sample count. Bounds are recovered from
// the index, so snapshots stay compact in JSON.
type HistBucket struct {
	Idx int    `json:"idx"`
	N   uint64 `json:"n"`
}

// UpperNanos returns the bucket's inclusive upper bound in nanoseconds.
func (b HistBucket) UpperNanos() uint64 { return bucketUpper(b.Idx) }

// HistSnapshot is a point-in-time copy of a histogram: totals plus the
// non-empty buckets in index order. It serializes to JSON for the
// /debug/flux endpoints and merges with other snapshots of the same
// layout (the /metrics exposition merges per-graph histograms that share
// a source name).
type HistSnapshot struct {
	Count   uint64       `json:"count"`
	Sum     int64        `json:"sumNanos"`
	Min     int64        `json:"minNanos"`
	Max     int64        `json:"maxNanos"`
	Buckets []HistBucket `json:"buckets,omitempty"`
}

// Snapshot copies the histogram. Concurrent writers may land between
// bucket reads; the skew is at most the traffic of one pass and washes
// out of any windowed view.
func (h *Histogram) Snapshot() HistSnapshot {
	s := HistSnapshot{
		Count: h.count.Load(),
		Sum:   h.sum.Load(),
		Max:   h.max.Load(),
	}
	if m := h.min.Load(); m != 0 {
		s.Min = -m - 1
	}
	for i := range h.buckets {
		if n := h.buckets[i].Load(); n > 0 {
			s.Buckets = append(s.Buckets, HistBucket{Idx: i, N: n})
		}
	}
	return s
}

// Mean returns the average recorded duration.
func (s HistSnapshot) Mean() time.Duration {
	if s.Count == 0 {
		return 0
	}
	return time.Duration(s.Sum / int64(s.Count))
}

// Quantile estimates the q-quantile (0 < q <= 1) as the upper bound of
// the bucket where the cumulative count crosses it — accurate to the
// bucket resolution (12.5%).
func (s HistSnapshot) Quantile(q float64) time.Duration {
	if s.Count == 0 {
		return 0
	}
	rank := uint64(q*float64(s.Count) + 0.5)
	if rank < 1 {
		rank = 1
	}
	var cum uint64
	for _, b := range s.Buckets {
		cum += b.N
		if cum >= rank {
			up := b.UpperNanos()
			if int64(up) > s.Max && s.Max > 0 {
				return time.Duration(s.Max) // never report past the observed max
			}
			return time.Duration(up)
		}
	}
	return time.Duration(s.Max)
}

// Merge folds other into s, bucket-wise. Both snapshots must come from
// this package's layout.
func (s HistSnapshot) Merge(other HistSnapshot) HistSnapshot {
	if other.Count == 0 {
		return s
	}
	if s.Count == 0 {
		return other
	}
	out := HistSnapshot{Count: s.Count + other.Count, Sum: s.Sum + other.Sum, Min: s.Min, Max: s.Max}
	if other.Min < out.Min {
		out.Min = other.Min
	}
	if other.Max > out.Max {
		out.Max = other.Max
	}
	var dense [histBuckets]uint64
	for _, b := range s.Buckets {
		dense[b.Idx] += b.N
	}
	for _, b := range other.Buckets {
		dense[b.Idx] += b.N
	}
	for i, n := range dense {
		if n > 0 {
			out.Buckets = append(out.Buckets, HistBucket{Idx: i, N: n})
		}
	}
	return out
}
