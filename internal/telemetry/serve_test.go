package telemetry

import (
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"github.com/flux-lang/flux/internal/profile"
	"github.com/flux-lang/flux/internal/runtime"
)

func get(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read %s: %v", url, err)
	}
	return resp.StatusCode, string(body)
}

// TestServeEndpoints stands up the ops listener on an ephemeral port
// and exercises every route: the Prometheus exposition, the JSON debug
// views, and the pprof index.
func TestServeEndpoints(t *testing.T) {
	tel := NewSampled(1)
	g := flowGraph(t, compileProgram(t))
	prof := profile.New()

	tel.FlowDone(g, 0, runtime.FlowCompleted, 3*time.Millisecond)
	tel.FlowDone(g, 0, runtime.FlowErrored, time.Millisecond)
	tel.NodeDone(g, g.Nodes[0], 40*time.Microsecond)
	tel.QueueDepth(runtime.ThreadPool, "admission", 5)
	tel.QueueDepth(runtime.ThreadPool, runtime.QueueSteals, 12)
	tel.QueueDepth(runtime.EventDriven, runtime.CtrlWatermark, 64)
	tel.ConnShed("webserver", "overload")
	tel.RegisterConns("webserver", func() ConnStats {
		return ConnStats{Accepted: 10, Admitted: 8, Shed: 2, Live: 1}
	})
	tel.RegisterDynPages("webserver", func() DynPageStats {
		return DynPageStats{Compiled: 40, Interpreted: 2, FragHits: 1, FragMisses: 1}
	})
	prof.FlowDone(g, 0, 3*time.Millisecond)

	ops, err := Serve("127.0.0.1:0", tel, WithProfiler(prof))
	if err != nil {
		t.Fatal(err)
	}
	defer ops.Close()
	base := "http://" + ops.Addr()

	code, body := get(t, base+"/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics status %d", code)
	}
	for _, want := range []string{
		"flux_uptime_seconds",
		`flux_flows_total{graph="` + g.Source.Name + `",outcome="completed"} 1`,
		`outcome="errored"} 1`,
		"flux_flow_latency_seconds_bucket",
		`le="+Inf"`,
		"flux_flow_latency_seconds_count",
		"flux_node_latency_seconds",
		`quantile="0.95"`,
		`flux_queue_depth{engine="threadpool",queue="admission"} 5`,
		`flux_stream_value{engine="threadpool",stream="steals"} 12`,
		`flux_ctrl{engine="event",signal="watermark"} 64`,
		`flux_conn_sheds_total{server="webserver",reason="overload"} 1`,
		`flux_plane_connections_total{plane="webserver",state="accepted"} 10`,
		`flux_plane_live_connections{plane="webserver"} 1`,
		`flux_dynamic_pages_total{server="webserver",path="compiled"} 40`,
		`flux_dynamic_pages_total{server="webserver",path="interpreted"} 2`,
		`flux_dynamic_pages_total{server="webserver",path="frag_hit"} 1`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
	// Counter streams (steals, ctrl/*) must not leak into queue depth.
	if strings.Contains(body, `flux_queue_depth{engine="threadpool",queue="steals"}`) {
		t.Error("/metrics exposes steals as a queue depth")
	}

	// Summary JSON round-trips through the public snapshot type.
	code, body = get(t, base+"/debug/flux/summary")
	if code != http.StatusOK {
		t.Fatalf("/debug/flux/summary status %d", code)
	}
	var snap Snapshot
	if err := json.Unmarshal([]byte(body), &snap); err != nil {
		t.Fatalf("summary decode: %v", err)
	}
	if len(snap.Graphs) != 1 || snap.Graphs[0].Flows.Count != 2 {
		t.Errorf("summary graphs = %+v", snap.Graphs)
	}
	if len(snap.Traces) != 2 {
		t.Errorf("summary traces = %d", len(snap.Traces))
	}

	// Paths comes from the profiler's structured snapshot.
	code, body = get(t, base+"/debug/flux/paths")
	if code != http.StatusOK {
		t.Fatalf("/debug/flux/paths status %d", code)
	}
	var rep profile.Report
	if err := json.Unmarshal([]byte(body), &rep); err != nil {
		t.Fatalf("paths decode: %v", err)
	}
	if len(rep.Graphs) != 1 || rep.Graphs[0].Flows != 1 {
		t.Errorf("paths report = %+v", rep)
	}

	for _, route := range []string{
		"/debug/flux/nodes", "/debug/flux/ctrl", "/debug/flux/sheds",
		"/debug/flux/conns", "/debug/flux/dynpages", "/debug/flux/traces",
		"/debug/pprof/",
	} {
		if code, _ := get(t, base+route); code != http.StatusOK {
			t.Errorf("%s status %d", route, code)
		}
	}

	// ctrl view carries only ctrl/* streams.
	_, body = get(t, base+"/debug/flux/ctrl")
	var ctrl []StreamSnapshot
	if err := json.Unmarshal([]byte(body), &ctrl); err != nil {
		t.Fatalf("ctrl decode: %v", err)
	}
	if len(ctrl) != 1 || ctrl[0].Queue != runtime.CtrlWatermark {
		t.Errorf("ctrl = %+v", ctrl)
	}
}

// TestServeWithoutProfiler: /debug/flux/paths degrades to an empty
// report instead of failing when no profiler is attached.
func TestServeWithoutProfiler(t *testing.T) {
	ops, err := Serve("127.0.0.1:0", New())
	if err != nil {
		t.Fatal(err)
	}
	defer ops.Close()
	code, body := get(t, "http://"+ops.Addr()+"/debug/flux/paths")
	if code != http.StatusOK {
		t.Fatalf("paths status %d", code)
	}
	var rep profile.Report
	if err := json.Unmarshal([]byte(body), &rep); err != nil {
		t.Fatalf("decode: %v", err)
	}
	if len(rep.Graphs) != 0 {
		t.Errorf("expected empty report, got %+v", rep)
	}
}
