package telemetry

import "sync"

// seriesCap bounds every windowed time series: at the engines' 5–100ms
// sampling cadence, 1024 points hold seconds to minutes of history —
// the live-inspection window fluxtop and the JSON endpoints render.
const seriesCap = 1024

// Sample is one (time, value) point of a windowed series.
type Sample struct {
	At int64 `json:"at"` // unix nanoseconds
	V  int64 `json:"v"`
}

// Series is a fixed-capacity ring of time-stamped values: the windowed
// form of a queue-depth stream, a ctrl/* trajectory, or a shed-rate
// curve. Appends past capacity overwrite the oldest point, so memory is
// bounded for any run length. A mutex (not atomics) guards it: series
// feed from sampler ticks and control steps, never from the per-flow
// hot path.
type Series struct {
	mu    sync.Mutex
	buf   [seriesCap]Sample
	next  int
	n     int
	total uint64 // appends ever, including overwritten
}

// Append records one point.
func (s *Series) Append(at, v int64) {
	s.mu.Lock()
	s.buf[s.next] = Sample{At: at, V: v}
	s.next = (s.next + 1) % seriesCap
	if s.n < seriesCap {
		s.n++
	}
	s.total++
	s.mu.Unlock()
}

// AppendCoalesced records the point unless the previous one is younger
// than minGap nanoseconds, in which case it overwrites it — bounding
// the append rate of evented streams (per-shed counters) without
// losing the latest value.
func (s *Series) AppendCoalesced(at, v, minGap int64) {
	s.mu.Lock()
	if s.n > 0 {
		lastIdx := (s.next - 1 + seriesCap) % seriesCap
		if at-s.buf[lastIdx].At < minGap {
			s.buf[lastIdx] = Sample{At: at, V: v}
			s.mu.Unlock()
			return
		}
	}
	s.buf[s.next] = Sample{At: at, V: v}
	s.next = (s.next + 1) % seriesCap
	if s.n < seriesCap {
		s.n++
	}
	s.total++
	s.mu.Unlock()
}

// Snapshot copies the window oldest-first.
func (s *Series) Snapshot() []Sample {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]Sample, s.n)
	start := (s.next - s.n + seriesCap) % seriesCap
	for i := 0; i < s.n; i++ {
		out[i] = s.buf[(start+i)%seriesCap]
	}
	return out
}

// Last returns the most recent point, if any.
func (s *Series) Last() (Sample, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.n == 0 {
		return Sample{}, false
	}
	return s.buf[(s.next-1+seriesCap)%seriesCap], true
}

// Total returns how many points were ever appended (the window may hold
// fewer).
func (s *Series) Total() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.total
}
