// Package telemetry is the always-on aggregation layer behind the
// runtime's Observer plane — the live form of the signals the benchmark
// harness only renders post-run. It turns the plane's event surface
// into continuously queryable state:
//
//   - per-graph flow-latency histograms and outcome counters (FlowDone),
//   - per-node latency histograms (NodeDone),
//   - windowed time-series rings for every queue-depth stream,
//     including the SLO controller's ctrl/* trajectory and the protocol
//     msg/* counters (QueueDepth),
//   - per-server/reason shed counters with coalesced trajectories
//     (ConnShed), and
//   - 1-in-N sampled flow traces keyed by Ball-Larus path ID.
//
// The record path is allocation-free and lock-free (histogram and
// counter updates are atomics; only the 1-in-N trace write takes a
// mutex), so a Telemetry can ride every experiment by default without
// disturbing the PR 1 zero-allocation hot path it observes. Serve
// exposes the aggregate over HTTP: Prometheus text on /metrics,
// net/http/pprof under /debug/pprof/, and JSON snapshots under
// /debug/flux/ — the endpoints cmd/fluxtop renders live.
package telemetry

import (
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"github.com/flux-lang/flux/internal/core"
	"github.com/flux-lang/flux/internal/runtime"
)

// DefaultTraceSample is the default flow-trace sampling period: one
// trace per N flow terminals.
const DefaultTraceSample = 128

// traceCap bounds the sampled-trace ring.
const traceCap = 256

// graphTel is one graph's aggregation state. Nodes are indexed by
// FlatNode.ID — the same dense-table trick the runtime's dispatch uses,
// so NodeDone is an array index, not a map probe.
type graphTel struct {
	g     *core.FlatGraph
	name  string
	flow  Histogram
	byOut [3]Counter // completed, errored, dropped
	nodes []Histogram
}

// streamKey identifies one queue-depth stream without string
// concatenation (QueueDepth must not allocate per sample on a hot
// sampler).
type streamKey struct {
	kind  runtime.EngineKind
	queue string
}

// shedKey identifies one shed counter.
type shedKey struct {
	server string
	reason string
}

// flowTrace is one sampled flow terminal, stored pointer-and-scalar so
// sampling never allocates; labels are rendered at snapshot time.
type flowTrace struct {
	g       *core.FlatGraph
	pathID  uint64
	outcome runtime.FlowOutcome
	elapsed time.Duration
	at      int64
}

// Telemetry implements runtime.Observer and runtime.ShedObserver over
// the aggregation state above. One Telemetry may observe any number of
// servers concurrently — graphs, streams, and shed keys register
// themselves on first sight through copy-on-write maps, so the steady
// state is a single atomic pointer load and an immutable map lookup.
type Telemetry struct {
	start time.Time

	graphs  atomic.Pointer[map[*core.FlatGraph]*graphTel]
	streams atomic.Pointer[map[streamKey]*Series]
	sheds   atomic.Pointer[map[shedKey]*Counter]
	shedSer atomic.Pointer[map[shedKey]*Series]
	regMu   sync.Mutex // serializes copy-on-write registration

	shedTotal Counter

	traceEvery uint64
	traceCtr   atomic.Uint64
	traceMu    sync.Mutex
	traceBuf   [traceCap]flowTrace
	traceNext  int
	traceN     int

	connMu  sync.Mutex
	connSrc []connSource

	dynMu  sync.Mutex
	dynSrc []dynSource
}

// ConnStats mirrors a connection plane's admission counters for the ops
// endpoints (netkit.StatsSnapshot, without the import).
type ConnStats struct {
	Accepted uint64 `json:"accepted"`
	Admitted uint64 `json:"admitted"`
	Shed     uint64 `json:"shed"`
	Live     int64  `json:"live"`
}

type connSource struct {
	name string
	fn   func() ConnStats
}

// DynPageStats mirrors a web server's dynamic-dispatch counters
// (fscript.DynStats, without the import): how its FScript renders were
// served. A healthy server shows Compiled racing ahead; Interpreted
// climbing means the compiled path is stale or disabled and the
// interpreter tax is being paid.
type DynPageStats struct {
	Compiled    uint64 `json:"compiled"`
	Interpreted uint64 `json:"interpreted"`
	FragHits    uint64 `json:"frag_hits"`
	FragMisses  uint64 `json:"frag_misses"`
}

type dynSource struct {
	name string
	fn   func() DynPageStats
}

// New returns an empty telemetry plane sampling one flow trace per
// DefaultTraceSample terminals. Attach it to servers as an Observer
// (flux.WithTelemetry, or each macro server's Config.Telemetry).
func New() *Telemetry {
	return NewSampled(DefaultTraceSample)
}

// NewSampled returns a telemetry plane tracing one flow per every
// flow terminals; every <= 0 disables trace sampling.
func NewSampled(every int) *Telemetry {
	t := &Telemetry{start: time.Now()}
	if every > 0 {
		t.traceEvery = uint64(every)
	}
	empty := make(map[*core.FlatGraph]*graphTel)
	t.graphs.Store(&empty)
	emptyS := make(map[streamKey]*Series)
	t.streams.Store(&emptyS)
	emptyC := make(map[shedKey]*Counter)
	t.sheds.Store(&emptyC)
	emptySS := make(map[shedKey]*Series)
	t.shedSer.Store(&emptySS)
	return t
}

// graph returns the graph's aggregation state, registering it on first
// sight. The fast path is one atomic load and one immutable-map lookup.
func (t *Telemetry) graph(g *core.FlatGraph) *graphTel {
	if gt := (*t.graphs.Load())[g]; gt != nil {
		return gt
	}
	t.regMu.Lock()
	defer t.regMu.Unlock()
	cur := *t.graphs.Load()
	if gt := cur[g]; gt != nil {
		return gt
	}
	gt := &graphTel{g: g, name: g.Source.Name, nodes: make([]Histogram, len(g.Nodes))}
	next := make(map[*core.FlatGraph]*graphTel, len(cur)+1)
	for k, v := range cur {
		next[k] = v
	}
	next[g] = gt
	t.graphs.Store(&next)
	return gt
}

// FlowDone implements runtime.Observer: the flow's latency lands in the
// graph's histogram, its outcome in a striped counter (striped by path
// ID, so concurrent terminals on different paths spread), and every
// 1-in-N flows a trace sample in the ring. Allocation-free.
func (t *Telemetry) FlowDone(g *core.FlatGraph, pathID uint64, outcome runtime.FlowOutcome, elapsed time.Duration) {
	gt := t.graph(g)
	gt.flow.Record(elapsed)
	o := int(outcome)
	if o < 0 || o > 2 {
		o = 1
	}
	gt.byOut[o].Add(pathID, 1)
	if t.traceEvery > 0 && t.traceCtr.Add(1)%t.traceEvery == 0 {
		now := time.Now().UnixNano()
		t.traceMu.Lock()
		t.traceBuf[t.traceNext] = flowTrace{g: g, pathID: pathID, outcome: outcome, elapsed: elapsed, at: now}
		t.traceNext = (t.traceNext + 1) % traceCap
		if t.traceN < traceCap {
			t.traceN++
		}
		t.traceMu.Unlock()
	}
}

// NodeDone implements runtime.Observer: one array-indexed histogram
// record. Allocation-free.
func (t *Telemetry) NodeDone(g *core.FlatGraph, v *core.FlatNode, elapsed time.Duration) {
	gt := t.graph(g)
	if v.ID < len(gt.nodes) {
		gt.nodes[v.ID].Record(elapsed)
	}
}

// QueueDepth implements runtime.Observer: every stream on the
// queue-depth surface — engine backlogs, the steal counter, ctrl/*
// trajectories, msg/* protocol counters — lands in its own windowed
// series ring.
func (t *Telemetry) QueueDepth(kind runtime.EngineKind, queue string, depth int) {
	key := streamKey{kind: kind, queue: queue}
	s := (*t.streams.Load())[key]
	if s == nil {
		t.regMu.Lock()
		cur := *t.streams.Load()
		if s = cur[key]; s == nil {
			s = &Series{}
			next := make(map[streamKey]*Series, len(cur)+1)
			for k, v := range cur {
				next[k] = v
			}
			next[key] = s
			t.streams.Store(&next)
		}
		t.regMu.Unlock()
	}
	s.Append(time.Now().UnixNano(), int64(depth))
}

// shedCoalesce bounds the shed trajectories' append rate: under a shed
// storm the latest cumulative count overwrites the previous point
// instead of churning the ring.
const shedCoalesce = int64(100 * time.Millisecond)

// ConnShed implements runtime.ShedObserver: one striped-counter
// increment per shed, plus a coalesced trajectory point so the ops
// endpoints can show sheds over time, not just totals.
func (t *Telemetry) ConnShed(server, reason string) {
	key := shedKey{server: server, reason: reason}
	hint := strhash(reason)
	t.shedTotal.Add(hint, 1)
	c := (*t.sheds.Load())[key]
	ser := (*t.shedSer.Load())[key]
	if c == nil || ser == nil {
		t.regMu.Lock()
		curC := *t.sheds.Load()
		if c = curC[key]; c == nil {
			c = &Counter{}
			nextC := make(map[shedKey]*Counter, len(curC)+1)
			for k, v := range curC {
				nextC[k] = v
			}
			nextC[key] = c
			t.sheds.Store(&nextC)
		}
		curS := *t.shedSer.Load()
		if ser = curS[key]; ser == nil {
			ser = &Series{}
			nextS := make(map[shedKey]*Series, len(curS)+1)
			for k, v := range curS {
				nextS[k] = v
			}
			nextS[key] = ser
			t.shedSer.Store(&nextS)
		}
		t.regMu.Unlock()
	}
	c.Add(hint, 1)
	ser.AppendCoalesced(time.Now().UnixNano(), int64(c.Value()), shedCoalesce)
}

// RegisterConns registers a connection plane's stats function under a
// name; the ops endpoints poll it for the live admission counters. The
// function must stay safe to call after the plane shuts down (netkit's
// Stats reads atomics, so it is).
func (t *Telemetry) RegisterConns(name string, fn func() ConnStats) {
	if fn == nil {
		return
	}
	t.connMu.Lock()
	t.connSrc = append(t.connSrc, connSource{name: name, fn: fn})
	t.connMu.Unlock()
}

// RegisterDynPages registers a server's dynamic-dispatch stats function
// under a name; the ops endpoints poll it like RegisterConns.
func (t *Telemetry) RegisterDynPages(name string, fn func() DynPageStats) {
	if fn == nil {
		return
	}
	t.dynMu.Lock()
	t.dynSrc = append(t.dynSrc, dynSource{name: name, fn: fn})
	t.dynMu.Unlock()
}

// ShedTotal returns the total sheds recorded across all servers.
func (t *Telemetry) ShedTotal() uint64 { return t.shedTotal.Value() }

// --- snapshots --------------------------------------------------------------

// NodeSnapshot is one node's aggregated latency view.
type NodeSnapshot struct {
	Node string       `json:"node"`
	Hist HistSnapshot `json:"hist"`
}

// GraphSnapshot aggregates every observed graph instance sharing one
// source name (a benchmark sweep starts many servers from the same
// program; their flows are one logical stream).
type GraphSnapshot struct {
	Graph     string            `json:"graph"`
	Instances int               `json:"instances"`
	Flows     HistSnapshot      `json:"flows"`
	Outcomes  map[string]uint64 `json:"outcomes"`
	Nodes     []NodeSnapshot    `json:"nodes"`
}

// StreamSnapshot is one queue-depth stream's window.
type StreamSnapshot struct {
	Engine  string   `json:"engine"`
	Queue   string   `json:"queue"`
	Counter bool     `json:"counter"` // a counter/gauge stream, not a backlog
	Last    int64    `json:"last"`
	Samples []Sample `json:"samples,omitempty"`
}

// Name renders the stream's canonical "<engine>/<queue>" name.
func (s StreamSnapshot) Name() string { return s.Engine + "/" + s.Queue }

// ShedSnapshot is one server/reason shed counter and its trajectory.
type ShedSnapshot struct {
	Server  string   `json:"server"`
	Reason  string   `json:"reason"`
	Count   uint64   `json:"count"`
	Samples []Sample `json:"samples,omitempty"`
}

// ConnSnapshot is one registered connection plane's live counters.
type ConnSnapshot struct {
	Name  string    `json:"name"`
	Stats ConnStats `json:"stats"`
}

// DynPageSnapshot is one registered server's dynamic-dispatch counters.
type DynPageSnapshot struct {
	Name  string       `json:"name"`
	Stats DynPageStats `json:"stats"`
}

// TraceSnapshot is one sampled flow trace, rendered for reading.
type TraceSnapshot struct {
	At      int64  `json:"at"`
	Graph   string `json:"graph"`
	PathID  uint64 `json:"pathId"`
	Path    string `json:"path,omitempty"`
	Outcome string `json:"outcome"`
	Elapsed int64  `json:"elapsedNanos"`
}

// Snapshot is the full telemetry state at one instant — the payload of
// /debug/flux/summary and the input to fluxtop's renderer.
type Snapshot struct {
	At            int64             `json:"at"`
	UptimeSeconds float64           `json:"uptimeSeconds"`
	Graphs        []GraphSnapshot   `json:"graphs"`
	Streams       []StreamSnapshot  `json:"streams"`
	Sheds         []ShedSnapshot    `json:"sheds"`
	Conns         []ConnSnapshot    `json:"conns"`
	DynPages      []DynPageSnapshot `json:"dynPages,omitempty"`
	Traces        []TraceSnapshot   `json:"traces,omitempty"`
}

// withSeries controls whether a snapshot carries full series windows or
// just last values (the /metrics exposition needs only the latter).
func (t *Telemetry) snapshot(withSeries, withTraces bool) Snapshot {
	now := time.Now()
	s := Snapshot{At: now.UnixNano(), UptimeSeconds: now.Sub(t.start).Seconds()}

	// Graphs, merged by source name.
	byName := make(map[string]*GraphSnapshot)
	for _, gt := range *t.graphs.Load() {
		gs := byName[gt.name]
		if gs == nil {
			gs = &GraphSnapshot{Graph: gt.name, Outcomes: make(map[string]uint64)}
			byName[gt.name] = gs
		}
		gs.Instances++
		gs.Flows = gs.Flows.Merge(gt.flow.Snapshot())
		for o := 0; o < 3; o++ {
			gs.Outcomes[runtime.FlowOutcome(o).String()] += gt.byOut[o].Value()
		}
		nodeByName := make(map[string]int, len(gs.Nodes))
		for i := range gs.Nodes {
			nodeByName[gs.Nodes[i].Node] = i
		}
		for i := range gt.nodes {
			hs := gt.nodes[i].Snapshot()
			if hs.Count == 0 {
				continue
			}
			label := gt.g.Nodes[i].Label()
			if j, ok := nodeByName[label]; ok {
				gs.Nodes[j].Hist = gs.Nodes[j].Hist.Merge(hs)
			} else {
				nodeByName[label] = len(gs.Nodes)
				gs.Nodes = append(gs.Nodes, NodeSnapshot{Node: label, Hist: hs})
			}
		}
	}
	for _, gs := range byName {
		sort.Slice(gs.Nodes, func(i, j int) bool {
			if gs.Nodes[i].Hist.Sum != gs.Nodes[j].Hist.Sum {
				return gs.Nodes[i].Hist.Sum > gs.Nodes[j].Hist.Sum
			}
			return gs.Nodes[i].Node < gs.Nodes[j].Node
		})
		s.Graphs = append(s.Graphs, *gs)
	}
	sort.Slice(s.Graphs, func(i, j int) bool { return s.Graphs[i].Graph < s.Graphs[j].Graph })

	// Queue-depth streams.
	for key, ser := range *t.streams.Load() {
		ss := StreamSnapshot{Engine: key.kind.String(), Queue: key.queue, Counter: runtime.CounterQueue(key.queue)}
		if last, ok := ser.Last(); ok {
			ss.Last = last.V
		}
		if withSeries {
			ss.Samples = ser.Snapshot()
		}
		s.Streams = append(s.Streams, ss)
	}
	sort.Slice(s.Streams, func(i, j int) bool { return s.Streams[i].Name() < s.Streams[j].Name() })

	// Sheds.
	shedSer := *t.shedSer.Load()
	for key, c := range *t.sheds.Load() {
		sh := ShedSnapshot{Server: key.server, Reason: key.reason, Count: c.Value()}
		if withSeries {
			if ser := shedSer[key]; ser != nil {
				sh.Samples = ser.Snapshot()
			}
		}
		s.Sheds = append(s.Sheds, sh)
	}
	sort.Slice(s.Sheds, func(i, j int) bool {
		if s.Sheds[i].Server != s.Sheds[j].Server {
			return s.Sheds[i].Server < s.Sheds[j].Server
		}
		return s.Sheds[i].Reason < s.Sheds[j].Reason
	})

	// Connection planes, summed per name (a sweep registers one plane
	// per server start; the logical server is the sum).
	t.connMu.Lock()
	connByName := make(map[string]*ConnSnapshot)
	var connOrder []string
	for _, src := range t.connSrc {
		cs := connByName[src.name]
		if cs == nil {
			cs = &ConnSnapshot{Name: src.name}
			connByName[src.name] = cs
			connOrder = append(connOrder, src.name)
		}
		st := src.fn()
		cs.Stats.Accepted += st.Accepted
		cs.Stats.Admitted += st.Admitted
		cs.Stats.Shed += st.Shed
		cs.Stats.Live += st.Live
	}
	t.connMu.Unlock()
	sort.Strings(connOrder)
	for _, name := range connOrder {
		s.Conns = append(s.Conns, *connByName[name])
	}

	// Dynamic-page dispatch, summed per name like the planes.
	t.dynMu.Lock()
	dynByName := make(map[string]*DynPageSnapshot)
	var dynOrder []string
	for _, src := range t.dynSrc {
		ds := dynByName[src.name]
		if ds == nil {
			ds = &DynPageSnapshot{Name: src.name}
			dynByName[src.name] = ds
			dynOrder = append(dynOrder, src.name)
		}
		st := src.fn()
		ds.Stats.Compiled += st.Compiled
		ds.Stats.Interpreted += st.Interpreted
		ds.Stats.FragHits += st.FragHits
		ds.Stats.FragMisses += st.FragMisses
	}
	t.dynMu.Unlock()
	sort.Strings(dynOrder)
	for _, name := range dynOrder {
		s.DynPages = append(s.DynPages, *dynByName[name])
	}

	if withTraces {
		s.Traces = t.Traces()
	}
	return s
}

// Snapshot captures the full telemetry state, including series windows
// and sampled traces.
func (t *Telemetry) Snapshot() Snapshot { return t.snapshot(true, true) }

// Traces renders the sampled-trace ring, oldest first.
func (t *Telemetry) Traces() []TraceSnapshot {
	t.traceMu.Lock()
	raw := make([]flowTrace, 0, t.traceN)
	start := (t.traceNext - t.traceN + traceCap) % traceCap
	for i := 0; i < t.traceN; i++ {
		raw = append(raw, t.traceBuf[(start+i)%traceCap])
	}
	t.traceMu.Unlock()
	out := make([]TraceSnapshot, len(raw))
	for i, tr := range raw {
		ts := TraceSnapshot{
			At:      tr.at,
			Graph:   tr.g.Source.Name,
			PathID:  tr.pathID,
			Outcome: tr.outcome.String(),
			Elapsed: int64(tr.elapsed),
		}
		// A dropped flow's register is partial — it names a route prefix,
		// not a complete path, so a label would lie.
		if tr.outcome != runtime.FlowDropped && tr.pathID < tr.g.NumPaths {
			ts.Path = tr.g.PathLabel(tr.pathID)
		}
		out[i] = ts
	}
	return out
}

// CtrlStreams returns the controller-trajectory streams (ctrl/* on the
// queue-depth surface), with full windows — what exp_overload prints
// and /debug/flux/ctrl serves.
func (t *Telemetry) CtrlStreams() []StreamSnapshot {
	var out []StreamSnapshot
	for key, ser := range *t.streams.Load() {
		if !strings.HasPrefix(key.queue, runtime.CtrlStreamPrefix) {
			continue
		}
		ss := StreamSnapshot{Engine: key.kind.String(), Queue: key.queue, Counter: true, Samples: ser.Snapshot()}
		if last, ok := ser.Last(); ok {
			ss.Last = last.V
		}
		out = append(out, ss)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name() < out[j].Name() })
	return out
}

// The compile-time checks that Telemetry covers the whole plane.
var (
	_ runtime.Observer     = (*Telemetry)(nil)
	_ runtime.ShedObserver = (*Telemetry)(nil)
)
