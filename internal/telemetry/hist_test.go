package telemetry

import (
	"math/rand"
	"testing"
	"time"
)

// TestBucketLayout pins the bucket function's invariants: indices are
// monotone in the value, every value lands at or below its bucket's
// upper bound, and the bound of the previous bucket sits strictly
// below the value — together, 12.5% relative resolution everywhere.
func TestBucketLayout(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	values := []uint64{0, 1, 2, 7, 8, 9, 15, 16, 17, 255, 256, 1 << 20, 1<<63 - 1, 1 << 63}
	for i := 0; i < 10000; i++ {
		values = append(values, rng.Uint64()>>uint(rng.Intn(64)))
	}
	prev := -1
	for _, v := range values {
		idx := bucketIndex(v)
		if idx < 0 || idx >= histBuckets {
			t.Fatalf("bucketIndex(%d) = %d out of range", v, idx)
		}
		if up := bucketUpper(idx); up < v {
			t.Fatalf("bucketUpper(bucketIndex(%d)) = %d < value", v, up)
		}
		if idx > 0 {
			if lo := bucketUpper(idx - 1); lo >= v {
				t.Fatalf("value %d not above previous bucket bound %d (idx %d)", v, lo, idx)
			}
		}
		_ = prev
	}
	// Monotone upper bounds; the unreachable top octaves saturate at
	// MaxUint64 and may repeat it.
	for i := 1; i < histBuckets; i++ {
		lo, hi := bucketUpper(i-1), bucketUpper(i)
		if hi < lo || (hi == lo && hi != ^uint64(0)) {
			t.Fatalf("bucketUpper not increasing at %d: %d <= %d", i, hi, lo)
		}
	}
}

// TestHistogramAggregates: count/sum/min/max are exact, quantiles are
// within one bucket (12.5%) of the true value, and negatives clamp.
func TestHistogramAggregates(t *testing.T) {
	var h Histogram
	for i := 1; i <= 1000; i++ {
		h.Record(time.Duration(i) * time.Microsecond)
	}
	h.Record(-5) // clamps into the zero bucket
	s := h.Snapshot()
	if s.Count != 1001 {
		t.Errorf("count = %d", s.Count)
	}
	if s.Min != 0 {
		t.Errorf("min = %d, want 0 (clamped negative)", s.Min)
	}
	if s.Max != int64(1000*time.Microsecond) {
		t.Errorf("max = %d", s.Max)
	}
	wantSum := int64(1000*1001/2) * int64(time.Microsecond)
	if s.Sum != wantSum {
		t.Errorf("sum = %d, want %d", s.Sum, wantSum)
	}
	for _, q := range []float64{0.5, 0.95, 0.99} {
		got := s.Quantile(q).Seconds()
		want := q * 1000 * 1e-6
		if got < want*0.99 || got > want*1.13 {
			t.Errorf("q%.2f = %vs, want within +12.5%% of %vs", q, got, want)
		}
	}
}

// TestHistogramMinZeroSample: a first sample of exactly zero must be
// reported as the min (zero is a legitimate value, not "unset").
func TestHistogramMinZeroSample(t *testing.T) {
	var h Histogram
	h.Record(0)
	h.Record(time.Millisecond)
	s := h.Snapshot()
	if s.Min != 0 {
		t.Errorf("min = %d, want 0", s.Min)
	}
	if s.Max != int64(time.Millisecond) {
		t.Errorf("max = %d", s.Max)
	}
}

// TestHistogramQuantileClampsToMax: bucket upper bounds past the
// observed max must not leak into quantile estimates.
func TestHistogramQuantileClampsToMax(t *testing.T) {
	var h Histogram
	h.Record(1000000) // 1ms, bucket upper bound > 1ms
	if got := h.Snapshot().Quantile(1.0); got > time.Millisecond {
		t.Errorf("q100 = %v > observed max 1ms", got)
	}
}

// TestHistogramMerge: merged snapshots sum counts bucket-wise and
// combine extrema.
func TestHistogramMerge(t *testing.T) {
	var a, b Histogram
	a.Record(time.Microsecond)
	a.Record(2 * time.Microsecond)
	b.Record(time.Millisecond)
	m := a.Snapshot().Merge(b.Snapshot())
	if m.Count != 3 {
		t.Errorf("merged count = %d", m.Count)
	}
	if m.Min != int64(time.Microsecond) || m.Max != int64(time.Millisecond) {
		t.Errorf("merged extrema = %d/%d", m.Min, m.Max)
	}
	var n uint64
	for _, bk := range m.Buckets {
		n += bk.N
	}
	if n != 3 {
		t.Errorf("merged bucket total = %d", n)
	}
	// Merging with empty is identity in both directions.
	if got := m.Merge(HistSnapshot{}); got.Count != 3 {
		t.Errorf("merge with empty = %d", got.Count)
	}
	if got := (HistSnapshot{}).Merge(m); got.Count != 3 {
		t.Errorf("empty merge = %d", got.Count)
	}
}

// TestHistogramRecordNoAlloc: the record path must never allocate — it
// rides every FlowDone/NodeDone.
func TestHistogramRecordNoAlloc(t *testing.T) {
	var h Histogram
	if n := testing.AllocsPerRun(1000, func() { h.Record(123456) }); n != 0 {
		t.Errorf("Record allocates %v/op", n)
	}
}
