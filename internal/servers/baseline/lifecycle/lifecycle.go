// Package lifecycle wraps a blocking Run(ctx) server in the
// Start/Shutdown/Wait lifecycle the Flux servers expose, so benchmark
// harnesses drive baselines and Flux servers uniformly. Embed Runner in
// the server and implement Start as a call to Go.
package lifecycle

import (
	"context"
	"errors"
)

// ErrNotStarted is returned by Shutdown and Wait before Go.
var ErrNotStarted = errors.New("baseline: server not started")

// Runner holds the background-run state. The zero value is ready; it is
// single-run, like the Flux runtime's server.
type Runner struct {
	cancel context.CancelFunc
	done   chan struct{}
	runErr error
}

// Go launches run in the background under a cancellable child of ctx.
// The server then serves until ctx is cancelled or Shutdown is called.
func (l *Runner) Go(ctx context.Context, run func(context.Context) error) error {
	runCtx, cancel := context.WithCancel(ctx)
	l.cancel = cancel
	l.done = make(chan struct{})
	go func() {
		defer close(l.done)
		err := run(runCtx)
		if ctx.Err() == nil && errors.Is(err, context.Canceled) {
			err = nil // deliberate Shutdown reads as a clean run
		}
		l.runErr = err
	}()
	return nil
}

// Shutdown stops the run and waits for it to finish, bounded by ctx.
func (l *Runner) Shutdown(ctx context.Context) error {
	if l.cancel == nil {
		return ErrNotStarted
	}
	l.cancel()
	select {
	case <-l.done:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Wait blocks until the run ends and returns its error.
func (l *Runner) Wait() error {
	if l.done == nil {
		return ErrNotStarted
	}
	<-l.done
	return l.runErr
}
