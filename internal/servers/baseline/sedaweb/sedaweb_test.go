package sedaweb

import (
	"context"
	"testing"
	"time"

	"github.com/flux-lang/flux/internal/loadgen"
)

func TestStagedServerServesCorpus(t *testing.T) {
	files := loadgen.NewFileSet(1)
	s, err := New(Config{Files: files, WorkersPerStage: 4})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() {
		defer close(done)
		_ = s.Run(ctx)
	}()
	defer func() {
		cancel()
		select {
		case <-done:
		case <-time.After(5 * time.Second):
			t.Error("server did not stop")
		}
	}()

	res := loadgen.RunWebLoad(context.Background(), loadgen.WebClientConfig{
		Addr:     s.Addr(),
		Clients:  4,
		Files:    files,
		Duration: 400 * time.Millisecond,
		Warmup:   50 * time.Millisecond,
		Seed:     10,
	})
	if res.Requests == 0 {
		t.Fatalf("no requests served: %+v", res)
	}
	if s.Served() == 0 {
		t.Error("server counted no requests")
	}
}

func TestAdmissionControlSheds(t *testing.T) {
	files := loadgen.NewFileSet(1)
	// A single worker per stage with depth-1 queues under many clients
	// must shed connections rather than wedge.
	s, err := New(Config{Files: files, WorkersPerStage: 1, QueueDepth: 1})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() {
		defer close(done)
		_ = s.Run(ctx)
	}()
	defer func() {
		cancel()
		<-done
	}()

	loadgen.RunWebLoad(context.Background(), loadgen.WebClientConfig{
		Addr:     s.Addr(),
		Clients:  16,
		Files:    files,
		Duration: 400 * time.Millisecond,
		Warmup:   0,
		Seed:     11,
	})
	if s.Served() == 0 {
		t.Error("no requests served at all")
	}
	// Shedding is likely but not guaranteed at this scale; the test
	// asserts the server survived overload, which Served() covers.
	t.Logf("served=%d shed=%d", s.Served(), s.Shed())
}
