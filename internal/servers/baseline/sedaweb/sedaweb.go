// Package sedaweb is the staged event-driven comparison web server
// standing in for Haboob (the SEDA web server the paper benchmarks
// against in §4.2). Requests move through fixed stages — read, cache
// lookup, file read, send — each with a bounded event queue and its own
// small worker pool, the SEDA architecture. Under overload, queues fill
// and admission sheds connections, which is the behavior that costs
// Haboob throughput in Figure 3.
//
// Connections are accepted by the shared connection plane
// (internal/netkit); a full read queue refuses admission and the plane
// sheds with an explicit 503, and stage-to-stage overflows shed through
// the same plane — counted and routed to the Observer plane instead of
// silently closed.
package sedaweb

import (
	"context"
	"errors"
	"fmt"
	"net"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"github.com/flux-lang/flux/internal/lfu"
	"github.com/flux-lang/flux/internal/loadgen"
	"github.com/flux-lang/flux/internal/netkit"
	"github.com/flux-lang/flux/internal/runtime"
	"github.com/flux-lang/flux/internal/servers/baseline/lifecycle"
	"github.com/flux-lang/flux/internal/servers/httpkit"
	"github.com/flux-lang/flux/internal/servers/webserver/fscript"
)

// Config tunes the staged server.
type Config struct {
	Addr       string
	Files      *loadgen.FileSet
	CacheBytes int64
	// QueueDepth bounds each stage queue (default 512).
	QueueDepth int
	// WorkersPerStage sizes each stage pool (default 4).
	WorkersPerStage int
	// MaxKeepAlive bounds requests per connection (default 100).
	MaxKeepAlive int
	// ScriptWork is the loop bound handed to dynamic pages (default
	// 2000), matching the Flux web server's knob.
	ScriptWork int
	// Observer, when non-nil, receives the plane's shed events
	// (runtime.ShedObserver).
	Observer runtime.Observer
	// WriteTimeout, when > 0, bounds every response write; a dead or
	// zero-window client fails the write and the shed is counted.
	WriteTimeout time.Duration
	// ListenShards, when > 1, opens that many SO_REUSEPORT accept
	// shards; platforms without SO_REUSEPORT fall back to one listener.
	ListenShards int
}

// event is the unit passed between stages: one connection awaiting its
// next action.
type event struct {
	conn   *netkit.Conn
	method string
	path   string
	query  string
	body   []byte
	keep   bool
	// resp is a fully rendered reply (dynamic pages, POSTs); static is a
	// bare static body sent zero-copy with the shared header blob.
	resp   []byte
	static []byte
}

// Server is the staged baseline web server.
type Server struct {
	cfg   Config
	plane *netkit.Plane
	cache *lfu.Locked
	pages *fscript.BenchPages

	readQ  chan *event
	lookQ  chan *event
	fileQ  chan *event
	sendQ  chan *event
	served atomic.Uint64

	lifecycle.Runner
}

// New opens the listener and builds the stage queues.
func New(cfg Config) (*Server, error) {
	if cfg.Files == nil {
		cfg.Files = loadgen.NewFileSet(1)
	}
	if cfg.CacheBytes <= 0 {
		cfg.CacheBytes = 64 << 20
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 512
	}
	if cfg.WorkersPerStage <= 0 {
		cfg.WorkersPerStage = 4
	}
	if cfg.MaxKeepAlive <= 0 {
		cfg.MaxKeepAlive = 100
	}
	if cfg.ScriptWork <= 0 {
		cfg.ScriptWork = 2000
	}
	pages, err := fscript.NewBenchPages()
	if err != nil {
		return nil, fmt.Errorf("sedaweb: dynamic templates: %w", err)
	}
	s := &Server{
		cfg:   cfg,
		cache: lfu.NewLocked(cfg.CacheBytes),
		pages: pages,
		readQ: make(chan *event, cfg.QueueDepth),
		lookQ: make(chan *event, cfg.QueueDepth),
		fileQ: make(chan *event, cfg.QueueDepth),
		sendQ: make(chan *event, cfg.QueueDepth),
	}
	s.plane, err = netkit.Listen(netkit.Config{
		Addr:         cfg.Addr,
		Admit:        s.admit,
		ShedResponse: httpkit.Unavailable(),
		WriteTimeout: cfg.WriteTimeout,
		ListenShards: cfg.ListenShards,
		Observer:     cfg.Observer,
		Name:         "sedaweb",
	})
	if err != nil {
		return nil, err
	}
	return s, nil
}

// Addr returns the bound address.
func (s *Server) Addr() string { return s.plane.Addr() }

// Served returns requests answered.
func (s *Server) Served() uint64 { return s.served.Load() }

// Shed returns the number of shed (overload-dropped) connections,
// admission refusals included — the plane counts every shed path.
func (s *Server) Shed() uint64 { return s.plane.Stats().Shed }

// PlaneStats exposes the connection plane's admission counters.
func (s *Server) PlaneStats() netkit.StatsSnapshot { return s.plane.Stats() }

// admit applies SEDA admission control at the front door: a full read
// queue refuses the connection, and the plane answers 503.
func (s *Server) admit(c *netkit.Conn) error {
	select {
	case s.readQ <- &event{conn: c}:
		return nil
	default:
		return fmt.Errorf("sedaweb: read queue full")
	}
}

// Run starts the stage pools and serves until the context is
// cancelled. Stage workers stop on cancellation; events in flight at
// shutdown are dropped, as a staged server's queues would be, and the
// plane closes their connections.
func (s *Server) Run(ctx context.Context) error {
	var wg sync.WaitGroup
	stage := func(in chan *event, fn func(*event)) {
		for i := 0; i < s.cfg.WorkersPerStage; i++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					select {
					case ev := <-in:
						fn(ev)
					case <-ctx.Done():
						return
					}
				}
			}()
		}
	}
	stage(s.readQ, s.readStage)
	stage(s.lookQ, s.lookupStage)
	stage(s.fileQ, s.fileStage)
	stage(s.sendQ, s.sendStage)

	if err := s.plane.Start(ctx); err != nil {
		return err
	}
	_ = s.plane.Wait()
	wg.Wait()
	return ctx.Err()
}

// enqueue applies SEDA admission control between stages: a full queue
// sheds the event through the plane (503, counted, observed).
func (s *Server) enqueue(q chan *event, ev *event) {
	select {
	case q <- ev:
	default:
		s.plane.ShedConn(ev.conn, "stage-full")
	}
}

func (s *Server) readStage(ev *event) {
	br := ev.conn.Reader()
	line, err := httpkit.ReadLine(br)
	if err != nil {
		ev.conn.Close()
		return
	}
	fields := strings.Fields(strings.TrimSpace(line))
	if len(fields) != 3 {
		ev.conn.Close()
		return
	}
	ev.method = fields[0]
	keep, contentLen, err := httpkit.ReadHeaders(br)
	if err != nil {
		ev.conn.Close()
		return
	}
	ev.keep = keep
	ev.body, err = httpkit.ReadBody(br, contentLen)
	if err != nil {
		ev.conn.Close()
		return
	}
	ev.path, ev.query = fields[1], ""
	if i := strings.IndexByte(ev.path, '?'); i >= 0 {
		ev.path, ev.query = ev.path[:i], ev.path[i+1:]
	}
	s.enqueue(s.lookQ, ev)
}

func (s *Server) lookupStage(ev *event) {
	// Dynamic work and POSTs skip the cache and run in the file/handler
	// stage's pool, like Haboob's dynamic-page stage.
	if ev.method == "POST" || strings.HasPrefix(ev.path, "/dynamic") || strings.HasPrefix(ev.path, "/adrotate") {
		s.enqueue(s.fileQ, ev)
		return
	}
	if body, ok := s.cache.Get(ev.path); ok {
		s.cache.Release(ev.path)
		ev.static = body
		s.enqueue(s.sendQ, ev)
		return
	}
	s.enqueue(s.fileQ, ev)
}

func (s *Server) fileStage(ev *event) {
	switch {
	case ev.method == "POST":
		ev.resp = httpkit.RenderPostConfirm(ev.path, len(ev.body))
	case strings.HasPrefix(ev.path, "/dynamic"), strings.HasPrefix(ev.path, "/adrotate"):
		buf := fscript.GetBuf()
		out, err := s.pages.RenderTo(buf.B, ev.path, ev.query, int64(s.cfg.ScriptWork))
		buf.B = out[:0]
		if err != nil {
			fscript.PutBuf(buf)
			ev.conn.Close()
			return
		}
		ev.resp = render(200, "OK", out)
		fscript.PutBuf(buf)
	default:
		body, ok := s.cfg.Files.Lookup(ev.path)
		if !ok {
			notFound := []byte("<html><body><h1>404 Not Found</h1></body></html>")
			_ = ev.conn.WriteVec(httpkit.StaticHeader(404, "Not Found", "text/html", len(notFound), true), notFound)
			ev.conn.Close()
			return
		}
		ev.static = body
		s.cache.Put(ev.path, ev.static)
		s.cache.Release(ev.path)
	}
	s.enqueue(s.sendQ, ev)
}

func (s *Server) sendStage(ev *event) {
	closing := !ev.keep || ev.conn.Served+1 >= s.cfg.MaxKeepAlive
	var err error
	if ev.static != nil {
		err = ev.conn.WriteVec(httpkit.StaticHeader(200, "OK", "text/html", len(ev.static), closing), ev.static)
	} else {
		resp := ev.resp
		if closing {
			resp = withClose(resp)
		}
		_, err = ev.conn.Write(resp)
	}
	if err != nil {
		var ne net.Error
		if errors.As(err, &ne) && ne.Timeout() {
			s.plane.CountShed("write-timeout")
		}
		ev.conn.Close()
		return
	}
	s.served.Add(1)
	ev.conn.Served++
	if closing {
		ev.conn.Close()
		return
	}
	ev.resp, ev.static = nil, nil
	s.enqueue(s.readQ, ev)
}

func render(code int, status string, body []byte) []byte {
	return httpkit.Render(code, status, "text/html", body)
}

// withClose announces the close on a connection's final response.
func withClose(resp []byte) []byte { return httpkit.WithCloseHeader(resp) }
