// Package sedaweb is the staged event-driven comparison web server
// standing in for Haboob (the SEDA web server the paper benchmarks
// against in §4.2). Requests move through fixed stages — read, cache
// lookup, file read, send — each with a bounded event queue and its own
// small worker pool, the SEDA architecture. Under overload, queues fill
// and admission sheds connections, which is the behavior that costs
// Haboob throughput in Figure 3.
package sedaweb

import (
	"bufio"
	"context"
	"fmt"
	"net"
	"strings"
	"sync"
	"sync/atomic"

	"github.com/flux-lang/flux/internal/lfu"
	"github.com/flux-lang/flux/internal/loadgen"
	"github.com/flux-lang/flux/internal/servers/baseline/lifecycle"
	"github.com/flux-lang/flux/internal/servers/httpkit"
	"github.com/flux-lang/flux/internal/servers/webserver/fscript"
)

// Config tunes the staged server.
type Config struct {
	Addr       string
	Files      *loadgen.FileSet
	CacheBytes int64
	// QueueDepth bounds each stage queue (default 512).
	QueueDepth int
	// WorkersPerStage sizes each stage pool (default 4).
	WorkersPerStage int
	// MaxKeepAlive bounds requests per connection (default 100).
	MaxKeepAlive int
	// ScriptWork is the loop bound handed to dynamic pages (default
	// 2000), matching the Flux web server's knob.
	ScriptWork int
}

// event is the unit passed between stages: one connection awaiting its
// next action.
type event struct {
	conn   net.Conn
	br     *bufio.Reader
	method string
	path   string
	query  string
	body   []byte
	keep   bool
	served int
	resp   []byte
}

// Server is the staged baseline web server.
type Server struct {
	cfg   Config
	ln    net.Listener
	cache *lfu.Locked
	pages *fscript.BenchPages

	readQ  chan *event
	lookQ  chan *event
	fileQ  chan *event
	sendQ  chan *event
	served atomic.Uint64
	shed   atomic.Uint64

	lifecycle.Runner
}

// New opens the listener and builds the stage queues.
func New(cfg Config) (*Server, error) {
	if cfg.Addr == "" {
		cfg.Addr = "127.0.0.1:0"
	}
	if cfg.Files == nil {
		cfg.Files = loadgen.NewFileSet(1)
	}
	if cfg.CacheBytes <= 0 {
		cfg.CacheBytes = 64 << 20
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 512
	}
	if cfg.WorkersPerStage <= 0 {
		cfg.WorkersPerStage = 4
	}
	if cfg.MaxKeepAlive <= 0 {
		cfg.MaxKeepAlive = 100
	}
	if cfg.ScriptWork <= 0 {
		cfg.ScriptWork = 2000
	}
	pages, err := fscript.NewBenchPages()
	if err != nil {
		return nil, fmt.Errorf("sedaweb: dynamic templates: %w", err)
	}
	ln, err := net.Listen("tcp", cfg.Addr)
	if err != nil {
		return nil, err
	}
	return &Server{
		cfg:   cfg,
		ln:    ln,
		cache: lfu.NewLocked(cfg.CacheBytes),
		pages: pages,
		readQ: make(chan *event, cfg.QueueDepth),
		lookQ: make(chan *event, cfg.QueueDepth),
		fileQ: make(chan *event, cfg.QueueDepth),
		sendQ: make(chan *event, cfg.QueueDepth),
	}, nil
}

// Addr returns the bound address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Served returns requests answered; Shed returns connections dropped by
// admission control.
func (s *Server) Served() uint64 { return s.served.Load() }

// Shed returns the number of shed (overload-dropped) events.
func (s *Server) Shed() uint64 { return s.shed.Load() }

// Run starts the stage pools and accepts connections. Stage workers
// stop on context cancellation; events in flight at shutdown are
// dropped, as a staged server's queues would be.
func (s *Server) Run(ctx context.Context) error {
	var wg sync.WaitGroup
	stage := func(in chan *event, fn func(*event)) {
		for i := 0; i < s.cfg.WorkersPerStage; i++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					select {
					case ev := <-in:
						fn(ev)
					case <-ctx.Done():
						return
					}
				}
			}()
		}
	}
	stage(s.readQ, s.readStage)
	stage(s.lookQ, s.lookupStage)
	stage(s.fileQ, s.fileStage)
	stage(s.sendQ, s.sendStage)

	go func() {
		<-ctx.Done()
		s.ln.Close()
	}()

	for {
		conn, err := s.ln.Accept()
		if err != nil {
			break
		}
		ev := &event{conn: conn, br: bufio.NewReader(conn)}
		s.enqueue(s.readQ, ev)
	}
	wg.Wait()
	return ctx.Err()
}

// enqueue applies SEDA admission control: a full queue sheds the event.
func (s *Server) enqueue(q chan *event, ev *event) {
	select {
	case q <- ev:
	default:
		s.shed.Add(1)
		ev.conn.Close()
	}
}

func (s *Server) readStage(ev *event) {
	line, err := httpkit.ReadLine(ev.br)
	if err != nil {
		ev.conn.Close()
		return
	}
	fields := strings.Fields(strings.TrimSpace(line))
	if len(fields) != 3 {
		ev.conn.Close()
		return
	}
	ev.method = fields[0]
	keep, contentLen, err := httpkit.ReadHeaders(ev.br)
	if err != nil {
		ev.conn.Close()
		return
	}
	ev.keep = keep
	ev.body, err = httpkit.ReadBody(ev.br, contentLen)
	if err != nil {
		ev.conn.Close()
		return
	}
	ev.path, ev.query = fields[1], ""
	if i := strings.IndexByte(ev.path, '?'); i >= 0 {
		ev.path, ev.query = ev.path[:i], ev.path[i+1:]
	}
	s.enqueue(s.lookQ, ev)
}

func (s *Server) lookupStage(ev *event) {
	// Dynamic work and POSTs skip the cache and run in the file/handler
	// stage's pool, like Haboob's dynamic-page stage.
	if ev.method == "POST" || strings.HasPrefix(ev.path, "/dynamic") || strings.HasPrefix(ev.path, "/adrotate") {
		s.enqueue(s.fileQ, ev)
		return
	}
	if resp, ok := s.cache.Get(ev.path); ok {
		s.cache.Release(ev.path)
		ev.resp = resp
		s.enqueue(s.sendQ, ev)
		return
	}
	s.enqueue(s.fileQ, ev)
}

func (s *Server) fileStage(ev *event) {
	switch {
	case ev.method == "POST":
		ev.resp = httpkit.RenderPostConfirm(ev.path, len(ev.body))
	case strings.HasPrefix(ev.path, "/dynamic"), strings.HasPrefix(ev.path, "/adrotate"):
		out, err := s.pages.Render(ev.path, ev.query, int64(s.cfg.ScriptWork))
		if err != nil {
			ev.conn.Close()
			return
		}
		ev.resp = render(200, "OK", []byte(out))
	default:
		body, ok := s.cfg.Files.Lookup(ev.path)
		if !ok {
			notFound := []byte("<html><body><h1>404 Not Found</h1></body></html>")
			ev.conn.Write(withClose(render(404, "Not Found", notFound)))
			ev.conn.Close()
			return
		}
		ev.resp = render(200, "OK", body)
		s.cache.Put(ev.path, ev.resp)
		s.cache.Release(ev.path)
	}
	s.enqueue(s.sendQ, ev)
}

func (s *Server) sendStage(ev *event) {
	closing := !ev.keep || ev.served+1 >= s.cfg.MaxKeepAlive
	resp := ev.resp
	if closing {
		resp = withClose(resp)
	}
	if _, err := ev.conn.Write(resp); err != nil {
		ev.conn.Close()
		return
	}
	s.served.Add(1)
	ev.served++
	if closing {
		ev.conn.Close()
		return
	}
	ev.resp = nil
	s.enqueue(s.readQ, ev)
}

func render(code int, status string, body []byte) []byte {
	return httpkit.Render(code, status, "text/html", body)
}

// withClose announces the close on a connection's final response.
func withClose(resp []byte) []byte { return httpkit.WithCloseHeader(resp) }
