// Package sedaweb is the staged event-driven comparison web server
// standing in for Haboob (the SEDA web server the paper benchmarks
// against in §4.2). Requests move through fixed stages — read, cache
// lookup, file read, send — each with a bounded event queue and its own
// small worker pool, the SEDA architecture. Under overload, queues fill
// and admission sheds connections, which is the behavior that costs
// Haboob throughput in Figure 3.
package sedaweb

import (
	"bufio"
	"context"
	"fmt"
	"net"
	"strings"
	"sync"
	"sync/atomic"

	"github.com/flux-lang/flux/internal/lfu"
	"github.com/flux-lang/flux/internal/loadgen"
	"github.com/flux-lang/flux/internal/servers/baseline/lifecycle"
)

// Config tunes the staged server.
type Config struct {
	Addr       string
	Files      *loadgen.FileSet
	CacheBytes int64
	// QueueDepth bounds each stage queue (default 512).
	QueueDepth int
	// WorkersPerStage sizes each stage pool (default 4).
	WorkersPerStage int
	// MaxKeepAlive bounds requests per connection (default 100).
	MaxKeepAlive int
}

// event is the unit passed between stages: one connection awaiting its
// next action.
type event struct {
	conn   net.Conn
	br     *bufio.Reader
	path   string
	keep   bool
	served int
	resp   []byte
}

// Server is the staged baseline web server.
type Server struct {
	cfg   Config
	ln    net.Listener
	cache *lfu.Locked

	readQ  chan *event
	lookQ  chan *event
	fileQ  chan *event
	sendQ  chan *event
	served atomic.Uint64
	shed   atomic.Uint64

	lifecycle.Runner
}

// New opens the listener and builds the stage queues.
func New(cfg Config) (*Server, error) {
	if cfg.Addr == "" {
		cfg.Addr = "127.0.0.1:0"
	}
	if cfg.Files == nil {
		cfg.Files = loadgen.NewFileSet(1)
	}
	if cfg.CacheBytes <= 0 {
		cfg.CacheBytes = 64 << 20
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 512
	}
	if cfg.WorkersPerStage <= 0 {
		cfg.WorkersPerStage = 4
	}
	if cfg.MaxKeepAlive <= 0 {
		cfg.MaxKeepAlive = 100
	}
	ln, err := net.Listen("tcp", cfg.Addr)
	if err != nil {
		return nil, err
	}
	return &Server{
		cfg:   cfg,
		ln:    ln,
		cache: lfu.NewLocked(cfg.CacheBytes),
		readQ: make(chan *event, cfg.QueueDepth),
		lookQ: make(chan *event, cfg.QueueDepth),
		fileQ: make(chan *event, cfg.QueueDepth),
		sendQ: make(chan *event, cfg.QueueDepth),
	}, nil
}

// Addr returns the bound address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Served returns requests answered; Shed returns connections dropped by
// admission control.
func (s *Server) Served() uint64 { return s.served.Load() }

// Shed returns the number of shed (overload-dropped) events.
func (s *Server) Shed() uint64 { return s.shed.Load() }

// Run starts the stage pools and accepts connections. Stage workers
// stop on context cancellation; events in flight at shutdown are
// dropped, as a staged server's queues would be.
func (s *Server) Run(ctx context.Context) error {
	var wg sync.WaitGroup
	stage := func(in chan *event, fn func(*event)) {
		for i := 0; i < s.cfg.WorkersPerStage; i++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					select {
					case ev := <-in:
						fn(ev)
					case <-ctx.Done():
						return
					}
				}
			}()
		}
	}
	stage(s.readQ, s.readStage)
	stage(s.lookQ, s.lookupStage)
	stage(s.fileQ, s.fileStage)
	stage(s.sendQ, s.sendStage)

	go func() {
		<-ctx.Done()
		s.ln.Close()
	}()

	for {
		conn, err := s.ln.Accept()
		if err != nil {
			break
		}
		ev := &event{conn: conn, br: bufio.NewReader(conn)}
		s.enqueue(s.readQ, ev)
	}
	wg.Wait()
	return ctx.Err()
}

// enqueue applies SEDA admission control: a full queue sheds the event.
func (s *Server) enqueue(q chan *event, ev *event) {
	select {
	case q <- ev:
	default:
		s.shed.Add(1)
		ev.conn.Close()
	}
}

func (s *Server) readStage(ev *event) {
	line, err := ev.br.ReadString('\n')
	if err != nil {
		ev.conn.Close()
		return
	}
	fields := strings.Fields(strings.TrimSpace(line))
	if len(fields) != 3 {
		ev.conn.Close()
		return
	}
	ev.keep = true
	for {
		h, err := ev.br.ReadString('\n')
		if err != nil {
			ev.conn.Close()
			return
		}
		h = strings.TrimSpace(h)
		if h == "" {
			break
		}
		if k, v, ok := strings.Cut(h, ":"); ok &&
			strings.EqualFold(strings.TrimSpace(k), "Connection") &&
			strings.EqualFold(strings.TrimSpace(v), "close") {
			ev.keep = false
		}
	}
	ev.path = fields[1]
	if i := strings.IndexByte(ev.path, '?'); i >= 0 {
		ev.path = ev.path[:i]
	}
	s.enqueue(s.lookQ, ev)
}

func (s *Server) lookupStage(ev *event) {
	if resp, ok := s.cache.Get(ev.path); ok {
		s.cache.Release(ev.path)
		ev.resp = resp
		s.enqueue(s.sendQ, ev)
		return
	}
	s.enqueue(s.fileQ, ev)
}

func (s *Server) fileStage(ev *event) {
	body, ok := s.cfg.Files.Lookup(ev.path)
	if !ok {
		notFound := []byte("<html><body><h1>404 Not Found</h1></body></html>")
		ev.conn.Write(render(404, "Not Found", notFound))
		ev.conn.Close()
		return
	}
	ev.resp = render(200, "OK", body)
	s.cache.Put(ev.path, ev.resp)
	s.cache.Release(ev.path)
	s.enqueue(s.sendQ, ev)
}

func (s *Server) sendStage(ev *event) {
	if _, err := ev.conn.Write(ev.resp); err != nil {
		ev.conn.Close()
		return
	}
	s.served.Add(1)
	ev.served++
	if !ev.keep || ev.served >= s.cfg.MaxKeepAlive {
		ev.conn.Close()
		return
	}
	ev.resp = nil
	s.enqueue(s.readQ, ev)
}

func render(code int, status string, body []byte) []byte {
	head := fmt.Sprintf("HTTP/1.1 %d %s\r\nContent-Type: text/html\r\nContent-Length: %d\r\n\r\n",
		code, status, len(body))
	return append([]byte(head), body...)
}
