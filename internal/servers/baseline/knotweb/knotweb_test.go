package knotweb

import (
	"context"
	"testing"
	"time"

	"github.com/flux-lang/flux/internal/loadgen"
)

func TestServesCorpus(t *testing.T) {
	files := loadgen.NewFileSet(1)
	s, err := New(Config{Files: files})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() {
		defer close(done)
		_ = s.Run(ctx)
	}()
	defer func() {
		cancel()
		select {
		case <-done:
		case <-time.After(5 * time.Second):
			t.Error("server did not stop")
		}
	}()

	res := loadgen.RunWebLoad(context.Background(), loadgen.WebClientConfig{
		Addr:     s.Addr(),
		Clients:  4,
		Files:    files,
		Duration: 400 * time.Millisecond,
		Warmup:   50 * time.Millisecond,
		Seed:     9,
	})
	if res.Requests == 0 {
		t.Fatalf("no requests served: %+v", res)
	}
	if s.Served() == 0 {
		t.Error("server counted no requests")
	}
}
