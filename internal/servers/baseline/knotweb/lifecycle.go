package knotweb

import "context"

// Start runs the server in the background, mirroring the Flux servers'
// Start/Shutdown/Wait lifecycle (Shutdown and Wait are promoted from
// the embedded lifecycle.Runner) so harnesses drive either uniformly.
func (s *Server) Start(ctx context.Context) error {
	return s.Runner.Go(ctx, s.Run)
}
