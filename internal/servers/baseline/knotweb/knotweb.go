// Package knotweb is the hand-written comparison web server standing in
// for knot (the Capriccio threaded web server the paper benchmarks
// against in §4.2). One goroutine per connection serves HTTP/1.1
// keep-alive requests from the same SPECweb-like corpus, with a
// mutex-guarded LFU response cache — the conventional design Flux is
// measured against. Dynamic pages (/dynamic, /adrotate) and form POSTs
// run through the same FScript interpreter as the Flux web server, so
// the mixed-workload comparison measures server architecture, not
// dynamic-content engines.
package knotweb

import (
	"bufio"
	"context"
	"fmt"
	"net"
	"strings"
	"sync"
	"sync/atomic"

	"github.com/flux-lang/flux/internal/lfu"
	"github.com/flux-lang/flux/internal/loadgen"
	"github.com/flux-lang/flux/internal/servers/baseline/lifecycle"
	"github.com/flux-lang/flux/internal/servers/httpkit"
	"github.com/flux-lang/flux/internal/servers/webserver/fscript"
)

// Config tunes the baseline server.
type Config struct {
	Addr       string
	Files      *loadgen.FileSet
	CacheBytes int64
	// MaxKeepAlive bounds requests per connection (default 100).
	MaxKeepAlive int
	// ScriptWork is the loop bound handed to dynamic pages (default
	// 2000), matching the Flux web server's knob.
	ScriptWork int
}

// Server is the threaded baseline web server.
type Server struct {
	cfg    Config
	ln     net.Listener
	cache  *lfu.Locked
	pages  *fscript.BenchPages
	served atomic.Uint64

	lifecycle.Runner
}

// New opens the listener.
func New(cfg Config) (*Server, error) {
	if cfg.Addr == "" {
		cfg.Addr = "127.0.0.1:0"
	}
	if cfg.Files == nil {
		cfg.Files = loadgen.NewFileSet(1)
	}
	if cfg.CacheBytes <= 0 {
		cfg.CacheBytes = 64 << 20
	}
	if cfg.MaxKeepAlive <= 0 {
		cfg.MaxKeepAlive = 100
	}
	if cfg.ScriptWork <= 0 {
		cfg.ScriptWork = 2000
	}
	pages, err := fscript.NewBenchPages()
	if err != nil {
		return nil, fmt.Errorf("knotweb: dynamic templates: %w", err)
	}
	ln, err := net.Listen("tcp", cfg.Addr)
	if err != nil {
		return nil, err
	}
	return &Server{cfg: cfg, ln: ln, cache: lfu.NewLocked(cfg.CacheBytes), pages: pages}, nil
}

// Addr returns the bound address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Served returns the number of requests answered.
func (s *Server) Served() uint64 { return s.served.Load() }

// Run accepts connections until the context is cancelled, one goroutine
// per connection.
func (s *Server) Run(ctx context.Context) error {
	go func() {
		<-ctx.Done()
		s.ln.Close()
	}()
	var wg sync.WaitGroup
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			wg.Wait()
			return ctx.Err()
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			s.serveConn(conn)
		}()
	}
}

func (s *Server) serveConn(conn net.Conn) {
	defer conn.Close()
	br := bufio.NewReader(conn)
	for served := 0; served < s.cfg.MaxKeepAlive; served++ {
		line, err := httpkit.ReadLine(br)
		if err != nil {
			return
		}
		fields := strings.Fields(strings.TrimSpace(line))
		if len(fields) != 3 {
			return
		}
		method := fields[0]
		keepAlive, contentLen, err := httpkit.ReadHeaders(br)
		if err != nil {
			return
		}
		body, err := httpkit.ReadBody(br, contentLen)
		if err != nil {
			return
		}
		path, query := fields[1], ""
		if i := strings.IndexByte(path, '?'); i >= 0 {
			path, query = path[:i], path[i+1:]
		}
		closing := !keepAlive || served+1 >= s.cfg.MaxKeepAlive

		var resp []byte
		switch {
		case method == "POST":
			resp = httpkit.RenderPostConfirm(path, len(body))
		case strings.HasPrefix(path, "/dynamic"), strings.HasPrefix(path, "/adrotate"):
			out, err := s.pages.Render(path, query, int64(s.cfg.ScriptWork))
			if err != nil {
				return
			}
			resp = render(200, "OK", []byte(out))
		default:
			var ok bool
			if resp, ok = s.cache.Get(path); ok {
				s.cache.Release(path)
			} else {
				fileBody, found := s.cfg.Files.Lookup(path)
				if !found {
					notFound := []byte("<html><body><h1>404 Not Found</h1></body></html>")
					conn.Write(withClose(render(404, "Not Found", notFound)))
					return
				}
				resp = render(200, "OK", fileBody)
				s.cache.Put(path, resp)
				s.cache.Release(path)
			}
		}
		if closing {
			resp = withClose(resp)
		}
		if _, err := conn.Write(resp); err != nil {
			return
		}
		s.served.Add(1)
		if closing {
			return
		}
	}
}

func render(code int, status string, body []byte) []byte {
	return httpkit.Render(code, status, "text/html", body)
}

// withClose announces the close on a connection's final response.
func withClose(resp []byte) []byte { return httpkit.WithCloseHeader(resp) }
