// Package knotweb is the hand-written comparison web server standing in
// for knot (the Capriccio threaded web server the paper benchmarks
// against in §4.2). One goroutine per connection serves HTTP/1.1
// keep-alive requests from the same SPECweb-like corpus, with a
// mutex-guarded LFU response cache — the conventional design Flux is
// measured against. Dynamic pages (/dynamic, /adrotate) and form POSTs
// run through the same FScript interpreter as the Flux web server, so
// the mixed-workload comparison measures server architecture, not
// dynamic-content engines.
//
// Connections are accepted by the shared connection plane
// (internal/netkit) — the same accept loop, pooled per-connection
// state, and shed accounting the Flux servers use — with MaxConns as
// the threaded design's admission bound: a goroutine-per-connection
// server has no queue to watch, so overload control caps concurrent
// connections and sheds the excess with a 503.
package knotweb

import (
	"context"
	"errors"
	"fmt"
	"net"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"github.com/flux-lang/flux/internal/lfu"
	"github.com/flux-lang/flux/internal/loadgen"
	"github.com/flux-lang/flux/internal/netkit"
	"github.com/flux-lang/flux/internal/runtime"
	"github.com/flux-lang/flux/internal/servers/baseline/lifecycle"
	"github.com/flux-lang/flux/internal/servers/httpkit"
	"github.com/flux-lang/flux/internal/servers/webserver/fscript"
)

// Config tunes the baseline server.
type Config struct {
	Addr       string
	Files      *loadgen.FileSet
	CacheBytes int64
	// MaxKeepAlive bounds requests per connection (default 100).
	MaxKeepAlive int
	// ScriptWork is the loop bound handed to dynamic pages (default
	// 2000), matching the Flux web server's knob.
	ScriptWork int
	// MaxConns, when > 0, bounds concurrent connections; accepts beyond
	// it are shed with a 503 — the thread-per-connection server's
	// admission control. 0 admits unboundedly.
	MaxConns int
	// Observer, when non-nil, receives the plane's shed events
	// (runtime.ShedObserver).
	Observer runtime.Observer
	// WriteTimeout, when > 0, bounds every response write; a dead or
	// zero-window client fails the write and the shed is counted.
	WriteTimeout time.Duration
	// ListenShards, when > 1, opens that many SO_REUSEPORT accept
	// shards; platforms without SO_REUSEPORT fall back to one listener.
	ListenShards int
}

// Server is the threaded baseline web server.
type Server struct {
	cfg    Config
	plane  *netkit.Plane
	cache  *lfu.Locked
	pages  *fscript.BenchPages
	served atomic.Uint64
	conns  sync.WaitGroup

	lifecycle.Runner
}

// New opens the listener.
func New(cfg Config) (*Server, error) {
	if cfg.Files == nil {
		cfg.Files = loadgen.NewFileSet(1)
	}
	if cfg.CacheBytes <= 0 {
		cfg.CacheBytes = 64 << 20
	}
	if cfg.MaxKeepAlive <= 0 {
		cfg.MaxKeepAlive = 100
	}
	if cfg.ScriptWork <= 0 {
		cfg.ScriptWork = 2000
	}
	pages, err := fscript.NewBenchPages()
	if err != nil {
		return nil, fmt.Errorf("knotweb: dynamic templates: %w", err)
	}
	s := &Server{cfg: cfg, cache: lfu.NewLocked(cfg.CacheBytes), pages: pages}
	s.plane, err = netkit.Listen(netkit.Config{
		Addr:         cfg.Addr,
		Admit:        s.admit,
		MaxConns:     cfg.MaxConns,
		ShedResponse: httpkit.Unavailable(),
		WriteTimeout: cfg.WriteTimeout,
		ListenShards: cfg.ListenShards,
		Observer:     cfg.Observer,
		Name:         "knotweb",
	})
	if err != nil {
		return nil, err
	}
	return s, nil
}

// Addr returns the bound address.
func (s *Server) Addr() string { return s.plane.Addr() }

// Served returns the number of requests answered.
func (s *Server) Served() uint64 { return s.served.Load() }

// PlaneStats exposes the connection plane's admission counters.
func (s *Server) PlaneStats() netkit.StatsSnapshot { return s.plane.Stats() }

// admit services an admitted connection on its own goroutine — the
// knot design.
func (s *Server) admit(c *netkit.Conn) error {
	s.conns.Add(1)
	go func() {
		defer s.conns.Done()
		s.serveConn(c)
	}()
	return nil
}

// Run accepts connections until the context is cancelled. Shutdown
// interrupts reads blocked on idle keep-alive clients (the plane closes
// every live connection), so the wait below cannot hang on a silent
// client.
func (s *Server) Run(ctx context.Context) error {
	if err := s.plane.Start(ctx); err != nil {
		return err
	}
	_ = s.plane.Wait()
	s.conns.Wait()
	return ctx.Err()
}

func (s *Server) serveConn(c *netkit.Conn) {
	defer c.Close()
	br := c.Reader()
	for c.Served < s.cfg.MaxKeepAlive {
		line, err := httpkit.ReadLine(br)
		if err != nil {
			return
		}
		fields := strings.Fields(strings.TrimSpace(line))
		if len(fields) != 3 {
			return
		}
		method := fields[0]
		keepAlive, contentLen, err := httpkit.ReadHeaders(br)
		if err != nil {
			return
		}
		body, err := httpkit.ReadBody(br, contentLen)
		if err != nil {
			return
		}
		path, query := fields[1], ""
		if i := strings.IndexByte(path, '?'); i >= 0 {
			path, query = path[:i], path[i+1:]
		}
		closing := !keepAlive || c.Served+1 >= s.cfg.MaxKeepAlive

		// Static bodies take the zero-copy path (cached bare body, shared
		// header blob, one writev); rendered pages keep the contiguous
		// write — the same split as the Flux web server, so the baseline
		// comparison measures architecture, not write syscalls.
		var resp, staticBody []byte
		switch {
		case method == "POST":
			resp = httpkit.RenderPostConfirm(path, len(body))
		case strings.HasPrefix(path, "/dynamic"), strings.HasPrefix(path, "/adrotate"):
			buf := fscript.GetBuf()
			out, err := s.pages.RenderTo(buf.B, path, query, int64(s.cfg.ScriptWork))
			buf.B = out[:0]
			if err != nil {
				fscript.PutBuf(buf)
				return
			}
			resp = render(200, "OK", out)
			fscript.PutBuf(buf)
		default:
			var ok bool
			if staticBody, ok = s.cache.Get(path); ok {
				s.cache.Release(path)
			} else {
				fileBody, found := s.cfg.Files.Lookup(path)
				if !found {
					notFound := []byte("<html><body><h1>404 Not Found</h1></body></html>")
					_ = c.WriteVec(httpkit.StaticHeader(404, "Not Found", "text/html", len(notFound), true), notFound)
					return
				}
				staticBody = fileBody
				s.cache.Put(path, staticBody)
				s.cache.Release(path)
			}
		}
		if staticBody != nil {
			err = c.WriteVec(httpkit.StaticHeader(200, "OK", "text/html", len(staticBody), closing), staticBody)
		} else {
			if closing {
				resp = withClose(resp)
			}
			_, err = c.Write(resp)
		}
		if err != nil {
			var ne net.Error
			if errors.As(err, &ne) && ne.Timeout() {
				s.plane.CountShed("write-timeout")
			}
			return
		}
		s.served.Add(1)
		c.Served++
		if closing {
			return
		}
	}
}

func render(code int, status string, body []byte) []byte {
	return httpkit.Render(code, status, "text/html", body)
}

// withClose announces the close on a connection's final response.
func withClose(resp []byte) []byte { return httpkit.WithCloseHeader(resp) }
