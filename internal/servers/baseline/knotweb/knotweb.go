// Package knotweb is the hand-written comparison web server standing in
// for knot (the Capriccio threaded web server the paper benchmarks
// against in §4.2). One goroutine per connection serves HTTP/1.1
// keep-alive requests from the same SPECweb-like corpus, with a
// mutex-guarded LFU response cache — the conventional design Flux is
// measured against.
package knotweb

import (
	"bufio"
	"context"
	"fmt"
	"net"
	"strings"
	"sync"
	"sync/atomic"

	"github.com/flux-lang/flux/internal/lfu"
	"github.com/flux-lang/flux/internal/loadgen"
	"github.com/flux-lang/flux/internal/servers/baseline/lifecycle"
)

// Config tunes the baseline server.
type Config struct {
	Addr       string
	Files      *loadgen.FileSet
	CacheBytes int64
	// MaxKeepAlive bounds requests per connection (default 100).
	MaxKeepAlive int
}

// Server is the threaded baseline web server.
type Server struct {
	cfg    Config
	ln     net.Listener
	cache  *lfu.Locked
	served atomic.Uint64

	lifecycle.Runner
}

// New opens the listener.
func New(cfg Config) (*Server, error) {
	if cfg.Addr == "" {
		cfg.Addr = "127.0.0.1:0"
	}
	if cfg.Files == nil {
		cfg.Files = loadgen.NewFileSet(1)
	}
	if cfg.CacheBytes <= 0 {
		cfg.CacheBytes = 64 << 20
	}
	if cfg.MaxKeepAlive <= 0 {
		cfg.MaxKeepAlive = 100
	}
	ln, err := net.Listen("tcp", cfg.Addr)
	if err != nil {
		return nil, err
	}
	return &Server{cfg: cfg, ln: ln, cache: lfu.NewLocked(cfg.CacheBytes)}, nil
}

// Addr returns the bound address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Served returns the number of requests answered.
func (s *Server) Served() uint64 { return s.served.Load() }

// Run accepts connections until the context is cancelled, one goroutine
// per connection.
func (s *Server) Run(ctx context.Context) error {
	go func() {
		<-ctx.Done()
		s.ln.Close()
	}()
	var wg sync.WaitGroup
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			wg.Wait()
			return ctx.Err()
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			s.serveConn(conn)
		}()
	}
}

func (s *Server) serveConn(conn net.Conn) {
	defer conn.Close()
	br := bufio.NewReader(conn)
	for served := 0; served < s.cfg.MaxKeepAlive; served++ {
		line, err := br.ReadString('\n')
		if err != nil {
			return
		}
		fields := strings.Fields(strings.TrimSpace(line))
		if len(fields) != 3 {
			return
		}
		keepAlive := true
		for {
			h, err := br.ReadString('\n')
			if err != nil {
				return
			}
			h = strings.TrimSpace(h)
			if h == "" {
				break
			}
			if k, v, ok := strings.Cut(h, ":"); ok &&
				strings.EqualFold(strings.TrimSpace(k), "Connection") &&
				strings.EqualFold(strings.TrimSpace(v), "close") {
				keepAlive = false
			}
		}
		path := fields[1]
		if i := strings.IndexByte(path, '?'); i >= 0 {
			path = path[:i]
		}
		resp, ok := s.cache.Get(path)
		if ok {
			s.cache.Release(path)
		} else {
			body, found := s.cfg.Files.Lookup(path)
			if !found {
				notFound := []byte("<html><body><h1>404 Not Found</h1></body></html>")
				conn.Write(render(404, "Not Found", notFound))
				return
			}
			resp = render(200, "OK", body)
			s.cache.Put(path, resp)
			s.cache.Release(path)
		}
		if _, err := conn.Write(resp); err != nil {
			return
		}
		s.served.Add(1)
		if !keepAlive {
			return
		}
	}
}

func render(code int, status string, body []byte) []byte {
	head := fmt.Sprintf("HTTP/1.1 %d %s\r\nContent-Type: text/html\r\nContent-Length: %d\r\n\r\n",
		code, status, len(body))
	return append([]byte(head), body...)
}
