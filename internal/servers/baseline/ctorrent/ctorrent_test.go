package ctorrent

import (
	"context"
	"math/rand"
	"testing"
	"time"

	"github.com/flux-lang/flux/internal/loadgen"
	"github.com/flux-lang/flux/internal/torrent"
)

func TestSeedsCompleteDownloads(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	data := make([]byte, 256*1024)
	rng.Read(data)
	meta, err := torrent.New("bench.bin", "", data, 64*1024)
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(Config{Meta: meta, Content: data})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() {
		defer close(done)
		_ = s.Run(ctx)
	}()
	defer func() {
		cancel()
		select {
		case <-done:
		case <-time.After(5 * time.Second):
			t.Error("server did not stop")
		}
	}()

	res := loadgen.RunBTLoad(context.Background(), loadgen.BTClientConfig{
		Addr: s.Addr(), Meta: meta,
		Clients:   2,
		Duration:  10 * time.Second,
		Seed:      5,
		StopAfter: 1,
	})
	if res.Completions == 0 {
		t.Fatalf("no completions: %+v", res)
	}
	if s.BytesServed() == 0 || s.BlocksServed() == 0 {
		t.Error("seeder served nothing")
	}
}

func TestRejectsWrongInfoHash(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	data := make([]byte, 64*1024)
	rng.Read(data)
	meta, _ := torrent.New("a.bin", "", data, 64*1024)
	other, _ := torrent.New("b.bin", "", append(data, 1), 64*1024)

	s, err := New(Config{Meta: meta, Content: data})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() {
		defer close(done)
		_ = s.Run(ctx)
	}()
	defer func() {
		cancel()
		<-done
	}()

	res := loadgen.RunBTLoad(context.Background(), loadgen.BTClientConfig{
		Addr: s.Addr(), Meta: other,
		Clients:  1,
		Duration: 300 * time.Millisecond,
		Seed:     6,
	})
	if res.Completions != 0 {
		t.Error("download with wrong info hash completed")
	}
}
