// Package ctorrent is the hand-written comparison BitTorrent seeder
// standing in for CTorrent (the C implementation the paper benchmarks
// against in §4.3). Each peer connection is serviced by a dedicated
// goroutine running a tight read-handle-respond loop over the shared
// piece store — the conventional design, with the paper's benchmark
// modifications (every peer unchoked, no unchoke limit).
package ctorrent

import (
	"context"
	"crypto/rand"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"

	"github.com/flux-lang/flux/internal/servers/baseline/lifecycle"
	"github.com/flux-lang/flux/internal/torrent"
)

// Config tunes the baseline seeder.
type Config struct {
	Addr    string
	Meta    *torrent.MetaInfo
	Content []byte
}

// Server is the baseline seeder.
type Server struct {
	cfg    Config
	ln     net.Listener
	store  *torrent.Store
	peerID [20]byte

	bytesOut atomic.Uint64
	served   atomic.Uint64

	lifecycle.Runner
}

// New opens the listener over a complete piece store.
func New(cfg Config) (*Server, error) {
	if cfg.Addr == "" {
		cfg.Addr = "127.0.0.1:0"
	}
	if cfg.Meta == nil || cfg.Content == nil {
		return nil, errors.New("ctorrent: Meta and Content are required")
	}
	store, err := torrent.NewSeeder(cfg.Meta, cfg.Content)
	if err != nil {
		return nil, err
	}
	ln, err := net.Listen("tcp", cfg.Addr)
	if err != nil {
		return nil, err
	}
	s := &Server{cfg: cfg, ln: ln, store: store}
	if _, err := rand.Read(s.peerID[:]); err != nil {
		ln.Close()
		return nil, err
	}
	copy(s.peerID[:8], "-CTLIKE-")
	return s, nil
}

// Addr returns the bound address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// BytesServed totals piece payload bytes sent.
func (s *Server) BytesServed() uint64 { return s.bytesOut.Load() }

// BlocksServed counts piece messages sent.
func (s *Server) BlocksServed() uint64 { return s.served.Load() }

// Run accepts and serves peers until the context is cancelled.
func (s *Server) Run(ctx context.Context) error {
	go func() {
		<-ctx.Done()
		s.ln.Close()
	}()
	var wg sync.WaitGroup
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			wg.Wait()
			return ctx.Err()
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer conn.Close()
			s.servePeer(conn)
		}()
	}
}

func (s *Server) servePeer(conn net.Conn) {
	// Handshake.
	if err := s.writeHandshake(conn); err != nil {
		return
	}
	if err := s.readHandshake(conn); err != nil {
		return
	}
	// Bitfield.
	bf := s.store.Bitfield()
	if err := writeMessage(conn, 5, bf); err != nil {
		return
	}
	// Serve requests forever.
	for {
		id, payload, err := readMessage(conn)
		if err != nil {
			return
		}
		switch id {
		case 2: // interested -> unchoke (benchmark modification)
			if err := writeMessage(conn, 1, nil); err != nil {
				return
			}
		case 6: // request
			if len(payload) != 12 {
				return
			}
			index := binary.BigEndian.Uint32(payload[0:4])
			begin := binary.BigEndian.Uint32(payload[4:8])
			length := binary.BigEndian.Uint32(payload[8:12])
			if length > torrent.BlockSize {
				return
			}
			blk, err := s.store.ReadBlock(int(index), int64(begin), int64(length))
			if err != nil {
				return
			}
			resp := make([]byte, 8+len(blk))
			binary.BigEndian.PutUint32(resp[0:4], index)
			binary.BigEndian.PutUint32(resp[4:8], begin)
			copy(resp[8:], blk)
			if err := writeMessage(conn, 7, resp); err != nil {
				return
			}
			s.bytesOut.Add(uint64(len(blk)))
			s.served.Add(1)
		default:
			// choke/unchoke/have/bitfield/cancel/keep-alive: ignored
			// by a pure seeder.
		}
	}
}

func (s *Server) writeHandshake(conn net.Conn) error {
	buf := make([]byte, 0, 68)
	buf = append(buf, 19)
	buf = append(buf, "BitTorrent protocol"...)
	buf = append(buf, make([]byte, 8)...)
	buf = append(buf, s.cfg.Meta.InfoHash[:]...)
	buf = append(buf, s.peerID[:]...)
	_, err := conn.Write(buf)
	return err
}

func (s *Server) readHandshake(conn net.Conn) error {
	buf := make([]byte, 68)
	if _, err := io.ReadFull(conn, buf); err != nil {
		return err
	}
	if buf[0] != 19 || string(buf[1:20]) != "BitTorrent protocol" {
		return errors.New("ctorrent: bad handshake")
	}
	var got [20]byte
	copy(got[:], buf[28:48])
	if got != s.cfg.Meta.InfoHash {
		return errors.New("ctorrent: info hash mismatch")
	}
	return nil
}

func writeMessage(conn net.Conn, id byte, payload []byte) error {
	frame := make([]byte, 5+len(payload))
	binary.BigEndian.PutUint32(frame[:4], uint32(1+len(payload)))
	frame[4] = id
	copy(frame[5:], payload)
	_, err := conn.Write(frame)
	return err
}

func readMessage(conn net.Conn) (id int, payload []byte, err error) {
	var lenBuf [4]byte
	if _, err = io.ReadFull(conn, lenBuf[:]); err != nil {
		return 0, nil, err
	}
	length := binary.BigEndian.Uint32(lenBuf[:])
	if length == 0 {
		return -1, nil, nil
	}
	if length > torrent.BlockSize+1024 {
		return 0, nil, fmt.Errorf("ctorrent: oversized frame %d", length)
	}
	body := make([]byte, length)
	if _, err = io.ReadFull(conn, body); err != nil {
		return 0, nil, err
	}
	return int(body[0]), body[1:], nil
}
