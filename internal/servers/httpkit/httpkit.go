// Package httpkit holds the minimal HTTP/1.1 plumbing shared by the
// Flux web server and the hand-written baseline servers (knotweb,
// sedaweb): response rendering, the Connection: close announcement, and
// the request-parsing hardening limits. Sharing them keeps the macro
// benchmark's servers byte-compatible on the wire — the comparison must
// measure server architecture, nothing else — and keeps a hardening fix
// from having to land in three places.
package httpkit

import (
	"bufio"
	"bytes"
	"fmt"
	"io"
	"strconv"
	"strings"
	"sync"
)

// Request-parser hardening limits: a request exceeding them is
// malformed and the connection is dropped, so one hostile client cannot
// balloon a server's memory.
const (
	// MaxHeaderLines bounds the header count per request.
	MaxHeaderLines = 64
	// MaxBodyBytes bounds the Content-Length a request may declare.
	MaxBodyBytes = 1 << 20
	// MaxLineBytes bounds one request or header line.
	MaxLineBytes = 8 << 10
)

// ReadLine reads one \n-terminated line, refusing lines longer than
// MaxLineBytes: unlike bufio.Reader.ReadString, a hostile stream with
// no newline fails at the cap instead of accumulating without bound.
func ReadLine(br *bufio.Reader) (string, error) {
	var sb strings.Builder
	for {
		frag, err := br.ReadSlice('\n')
		sb.Write(frag)
		if sb.Len() > MaxLineBytes {
			return "", fmt.Errorf("httpkit: line exceeds %d bytes", MaxLineBytes)
		}
		if err == nil {
			return sb.String(), nil
		}
		if err != bufio.ErrBufferFull {
			return "", err
		}
	}
}

// ReadHeaders consumes header lines through the terminating blank line,
// honoring the two headers these servers speak: `Connection: close` and
// `Content-Length` (validated against MaxBodyBytes). Line length and
// header count are both capped.
func ReadHeaders(br *bufio.Reader) (keepAlive bool, contentLen int, err error) {
	keepAlive = true
	sawContentLen := false
	for n := 0; ; n++ {
		if n >= MaxHeaderLines {
			return false, 0, fmt.Errorf("httpkit: more than %d header lines", MaxHeaderLines)
		}
		h, err := ReadLine(br)
		if err != nil {
			return false, 0, err
		}
		h = strings.TrimSpace(h)
		if h == "" {
			return keepAlive, contentLen, nil
		}
		k, v, ok := strings.Cut(h, ":")
		if !ok {
			continue
		}
		k, v = strings.TrimSpace(k), strings.TrimSpace(v)
		switch {
		case strings.EqualFold(k, "Connection"):
			if strings.EqualFold(v, "close") {
				keepAlive = false
			}
		case strings.EqualFold(k, "Content-Length"):
			cl, err := strconv.Atoi(v)
			if err != nil || cl < 0 {
				return false, 0, fmt.Errorf("httpkit: bad content length %q", v)
			}
			if cl > MaxBodyBytes {
				return false, 0, fmt.Errorf("httpkit: content length %d exceeds limit", cl)
			}
			// Duplicate Content-Length headers with conflicting values are
			// the request-smuggling shape: two parsers on the path framing
			// the body differently. Last-wins silently accepted them
			// before; now only byte-identical repeats pass (RFC 7230 §3.3.2
			// allows collapsing those).
			if sawContentLen && cl != contentLen {
				return false, 0, fmt.Errorf("httpkit: conflicting content lengths %d and %d", contentLen, cl)
			}
			sawContentLen = true
			contentLen = cl
		}
	}
}

// ReadBody consumes a Content-Length-delimited body (nil when none is
// declared). ReadHeaders has already validated the length.
func ReadBody(br *bufio.Reader, contentLen int) ([]byte, error) {
	if contentLen <= 0 {
		return nil, nil
	}
	body := make([]byte, contentLen)
	if _, err := io.ReadFull(br, body); err != nil {
		return nil, err
	}
	return body, nil
}

// Render builds a complete HTTP/1.1 response.
func Render(code int, status, ctype string, body []byte) []byte {
	head := fmt.Sprintf("HTTP/1.1 %d %s\r\nContent-Type: %s\r\nContent-Length: %d\r\n\r\n",
		code, status, ctype, len(body))
	out := make([]byte, 0, len(head)+len(body))
	out = append(out, head...)
	out = append(out, body...)
	return out
}

// headerKey identifies one immutable header blob: static responses reuse
// a tiny set of (code, content type, length) combinations, so the blobs
// are rendered once and shared forever.
type headerKey struct {
	code       int
	status     string
	ctype      string
	contentLen int
	closing    bool // Connection: close baked in
}

var (
	headerMu    sync.RWMutex
	headerBlobs = map[headerKey][]byte{}
)

// StaticHeader returns the pre-serialized header block for a response of
// the given shape — byte-identical to the head Render produces (and,
// with close set, to what WithCloseHeader inserts), so the zero-copy and
// copy paths stay wire-compatible. Blobs are immutable and cached
// per (code, status, ctype, length, close): the hot path is one
// read-locked map lookup with no allocation. Callers must treat the
// returned slice as read-only.
func StaticHeader(code int, status, ctype string, contentLen int, close bool) []byte {
	key := headerKey{code: code, status: status, ctype: ctype, contentLen: contentLen, closing: close}
	headerMu.RLock()
	blob := headerBlobs[key]
	headerMu.RUnlock()
	if blob != nil {
		return blob
	}
	head := fmt.Sprintf("HTTP/1.1 %d %s\r\nContent-Type: %s\r\nContent-Length: %d\r\n",
		code, status, ctype, contentLen)
	if close {
		head += "Connection: close\r\n"
	}
	head += "\r\n"
	blob = []byte(head)
	headerMu.Lock()
	// First writer wins so every caller shares one blob.
	if prev, ok := headerBlobs[key]; ok {
		blob = prev
	} else {
		headerBlobs[key] = blob
	}
	headerMu.Unlock()
	return blob
}

// RenderPostConfirm builds the POST confirmation response every server
// answers form submissions with; byte-for-byte parity keeps the macro
// comparison measuring architecture only.
func RenderPostConfirm(path string, bodyLen int) []byte {
	page := fmt.Sprintf("<html><body><p>POST %s: received %d bytes</p></body></html>", path, bodyLen)
	return Render(200, "OK", "text/html", []byte(page))
}

// unavailable is the canned overload answer, rendered once: admission
// control sheds with an explicit 503 announcing Connection: close, so
// clients back off and reconnect instead of hanging on a silent drop.
var unavailable = WithCloseHeader(Render(503, "Service Unavailable", "text/html",
	[]byte("<html><body><h1>503 Service Unavailable</h1></body></html>")))

// Unavailable returns the shared 503 shed response (read-only; callers
// only write it to a socket).
func Unavailable() []byte { return unavailable }

// WithCloseHeader copies a rendered response with a Connection: close
// header inserted before the blank line, announcing the close so
// keep-alive clients reconnect instead of failing. Responses cached and
// shared between connections stay header-free; the copy happens only on
// a connection's final response.
func WithCloseHeader(resp []byte) []byte {
	i := bytes.Index(resp, []byte("\r\n\r\n"))
	if i < 0 {
		return resp
	}
	const hdr = "Connection: close\r\n"
	out := make([]byte, 0, len(resp)+len(hdr))
	out = append(out, resp[:i+2]...)
	out = append(out, hdr...)
	out = append(out, resp[i+2:]...)
	return out
}
