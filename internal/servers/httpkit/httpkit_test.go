package httpkit

import (
	"bufio"
	"bytes"
	"strings"
	"testing"
)

func TestRenderFraming(t *testing.T) {
	resp := Render(200, "OK", "text/html", []byte("hello"))
	s := string(resp)
	if !strings.HasPrefix(s, "HTTP/1.1 200 OK\r\n") {
		t.Errorf("status line wrong: %q", s)
	}
	if !strings.Contains(s, "Content-Length: 5\r\n") {
		t.Errorf("content length wrong: %q", s)
	}
	if !strings.HasSuffix(s, "\r\n\r\nhello") {
		t.Errorf("body framing wrong: %q", s)
	}
}

func TestWithCloseHeader(t *testing.T) {
	orig := Render(200, "OK", "text/html", []byte("body"))
	before := append([]byte(nil), orig...)
	closed := WithCloseHeader(orig)
	if !bytes.Equal(orig, before) {
		t.Error("WithCloseHeader mutated its input (cached responses must stay clean)")
	}
	s := string(closed)
	if !strings.Contains(s, "\r\nConnection: close\r\n") {
		t.Errorf("close header missing: %q", s)
	}
	if !strings.HasSuffix(s, "\r\n\r\nbody") {
		t.Errorf("body framing broken: %q", s)
	}
	// Malformed input (no blank line) passes through untouched.
	if got := WithCloseHeader([]byte("junk")); string(got) != "junk" {
		t.Errorf("malformed passthrough = %q", got)
	}
}

// TestReadHeadersDuplicateContentLength: conflicting duplicate
// Content-Length headers are the classic request-smuggling shape and
// must be rejected; identical repeats are legal (RFC 7230 §3.3.2) and
// collapse to one value.
func TestReadHeadersDuplicateContentLength(t *testing.T) {
	read := func(headers string) (bool, int, error) {
		br := bufio.NewReader(strings.NewReader(headers))
		return ReadHeaders(br)
	}
	if _, _, err := read("Content-Length: 5\r\nContent-Length: 6\r\n\r\n"); err == nil {
		t.Error("conflicting Content-Length headers accepted")
	}
	_, n, err := read("Content-Length: 5\r\nContent-Length: 5\r\n\r\n")
	if err != nil {
		t.Errorf("identical repeated Content-Length rejected: %v", err)
	}
	if n != 5 {
		t.Errorf("content length = %d, want 5", n)
	}
	if _, n, err = read("Content-Length: 7\r\n\r\n"); err != nil || n != 7 {
		t.Errorf("single Content-Length: n=%d err=%v", n, err)
	}
}

// TestStaticHeaderParity: the pre-serialized header blob must be
// byte-identical to Render's head — the zero-copy path may never
// change the wire format — including the Connection: close variant,
// which must match WithCloseHeader's insertion exactly.
func TestStaticHeaderParity(t *testing.T) {
	body := []byte("hello world")
	rendered := Render(200, "OK", "text/html", body)
	head := StaticHeader(200, "OK", "text/html", len(body), false)
	if got := append(append([]byte{}, head...), body...); !bytes.Equal(got, rendered) {
		t.Errorf("StaticHeader+body = %q, Render = %q", got, rendered)
	}
	closedRendered := WithCloseHeader(rendered)
	closedHead := StaticHeader(200, "OK", "text/html", len(body), true)
	if got := append(append([]byte{}, closedHead...), body...); !bytes.Equal(got, closedRendered) {
		t.Errorf("closing StaticHeader+body = %q, WithCloseHeader(Render) = %q", got, closedRendered)
	}
}

// TestStaticHeaderInterned: repeated lookups return the same backing
// blob — the hot path is a map read, not a render.
func TestStaticHeaderInterned(t *testing.T) {
	a := StaticHeader(200, "OK", "text/html", 4096, false)
	b := StaticHeader(200, "OK", "text/html", 4096, false)
	if &a[0] != &b[0] {
		t.Error("StaticHeader re-rendered an interned header")
	}
	if allocs := testing.AllocsPerRun(100, func() {
		_ = StaticHeader(200, "OK", "text/html", 4096, false)
	}); allocs != 0 {
		t.Errorf("interned lookup allocates %v per call", allocs)
	}
}
