package httpkit

import (
	"bytes"
	"strings"
	"testing"
)

func TestRenderFraming(t *testing.T) {
	resp := Render(200, "OK", "text/html", []byte("hello"))
	s := string(resp)
	if !strings.HasPrefix(s, "HTTP/1.1 200 OK\r\n") {
		t.Errorf("status line wrong: %q", s)
	}
	if !strings.Contains(s, "Content-Length: 5\r\n") {
		t.Errorf("content length wrong: %q", s)
	}
	if !strings.HasSuffix(s, "\r\n\r\nhello") {
		t.Errorf("body framing wrong: %q", s)
	}
}

func TestWithCloseHeader(t *testing.T) {
	orig := Render(200, "OK", "text/html", []byte("body"))
	before := append([]byte(nil), orig...)
	closed := WithCloseHeader(orig)
	if !bytes.Equal(orig, before) {
		t.Error("WithCloseHeader mutated its input (cached responses must stay clean)")
	}
	s := string(closed)
	if !strings.Contains(s, "\r\nConnection: close\r\n") {
		t.Errorf("close header missing: %q", s)
	}
	if !strings.HasSuffix(s, "\r\n\r\nbody") {
		t.Errorf("body framing broken: %q", s)
	}
	// Malformed input (no blank line) passes through untouched.
	if got := WithCloseHeader([]byte("junk")); string(got) != "junk" {
		t.Errorf("malformed passthrough = %q", got)
	}
}
