// Package gameserver is the paper's heartbeat client/server application
// (§4.4): a multiplayer game of Tag over UDP. The server holds the shared
// game state, applies client moves, enforces the rules — players cannot
// leave the board; a tagged player becomes the new "it" and teleports to
// a random location — and broadcasts the full state to every player at
// 10 Hz heartbeats.
//
// Two Flux flows share the state under one atomicity constraint: the
// input flow (Receive -> ParsePacket -> ApplyMove) and the turn flow
// (Heartbeat -> ComputeState -> Broadcast), exactly the delay-sensitive
// structure the paper describes.
package gameserver

import (
	"context"
	"encoding/binary"
	"fmt"
	"math/rand"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"github.com/flux-lang/flux/internal/core"
	"github.com/flux-lang/flux/internal/lang/parser"
	"github.com/flux-lang/flux/internal/runtime"
	"github.com/flux-lang/flux/internal/telemetry"
)

// FluxSource is the game server's Flux program.
const FluxSource = `
// concrete node signatures
Receive () => (packet *pkt);
ParsePacket (packet *pkt) => (packet *pkt);
ApplyMove (packet *pkt) => ();
DropPacket (packet *pkt) => ();
Heartbeat () => (int tick);
ComputeState (int tick) => (int tick, snapshot *snap);
Broadcast (int tick, snapshot *snap) => ();

// input flow: client joins and moves
source Receive => Input;
Input = ParsePacket -> ApplyMove;

// turn flow: the 10 Hz heartbeat
source Heartbeat => Turn;
Turn = ComputeState -> Broadcast;

// malformed datagrams are dropped
handle error ParsePacket => DropPacket;

// both flows touch the shared game state
atomic ApplyMove:{state};
atomic ComputeState:{state};
`

// Message types of the wire protocol (all little-endian).
const (
	MsgJoin      = 1 // client -> server: {type}
	MsgMove      = 2 // client -> server: {type, id u32, dx i8, dy i8}
	MsgJoinAck   = 3 // server -> client: {type, id u32, w u16, h u16}
	MsgState     = 4 // server -> client: {type, tick u32, it u32, n u16, n x {id u32, x i16, y i16}}
	tagRadius    = 1
	maxMoveSpeed = 3
)

// Config tunes the server.
type Config struct {
	// Addr is the UDP listen address (default "127.0.0.1:0").
	Addr string
	// Width, Height bound the board (default 512x512).
	Width, Height int
	// Heartbeat is the turn interval (default 100ms — the paper's
	// 10 Hz).
	Heartbeat time.Duration
	// Seed drives teleport placement.
	Seed int64
	// Engine, PoolSize, SourceTimeout, Profiler configure the runtime.
	Engine        runtime.EngineKind
	PoolSize      int
	SourceTimeout time.Duration
	Profiler      runtime.Profiler
	// Observer, when non-nil, joins the runtime's observer plane: flow
	// terminals (moves and turns) and queue depths.
	Observer runtime.Observer
	// Telemetry, when non-nil, rides the observer plane alongside
	// Observer (composed, never replacing it). The game server has no
	// TCP connection plane, so no admission counters register.
	Telemetry *telemetry.Telemetry
}

type player struct {
	id   uint32
	x, y int16
	addr *net.UDPAddr
}

// packet is one received datagram.
type packet struct {
	data []byte
	addr *net.UDPAddr

	// parsed form
	kind   byte
	id     uint32
	dx, dy int8
}

// snapshot is a rendered state broadcast plus its recipients.
type snapshot struct {
	payload []byte
	addrs   []*net.UDPAddr
}

// Server is a runnable Flux game server.
type Server struct {
	cfg  Config
	prog *core.Program
	rt   *runtime.Server
	conn *net.UDPConn
	rng  *rand.Rand

	// Game state: guarded by the Flux "state" constraint, not a mutex —
	// that is the point of §2.5.
	players map[uint32]*player
	it      uint32
	nextID  uint32

	ticks     atomic.Uint64
	tickNanos atomic.Uint64 // cumulative state-computation time

	// broadcastPkts / broadcastErrs count per-recipient sends, a
	// diagnostic surfaced by BroadcastStats.
	broadcastPkts    atomic.Uint64
	broadcastErrs    atomic.Uint64
	lastBroadcastErr atomic.Value // string

	stopOnce sync.Once
	stop     chan struct{}

	heartbeatTick runtime.SourceFunc
}

// New compiles the program and binds the UDP socket.
func New(cfg Config) (*Server, error) {
	if cfg.Addr == "" {
		cfg.Addr = "127.0.0.1:0"
	}
	if cfg.Width <= 0 {
		cfg.Width = 512
	}
	if cfg.Height <= 0 {
		cfg.Height = 512
	}
	if cfg.Heartbeat <= 0 {
		cfg.Heartbeat = 100 * time.Millisecond
	}

	astProg, err := parser.Parse("gameserver.flux", FluxSource)
	if err != nil {
		return nil, fmt.Errorf("gameserver: parse: %w", err)
	}
	prog, err := core.Build(astProg)
	if err != nil {
		return nil, fmt.Errorf("gameserver: compile: %w", err)
	}

	udpAddr, err := net.ResolveUDPAddr("udp", cfg.Addr)
	if err != nil {
		return nil, err
	}
	conn, err := net.ListenUDP("udp", udpAddr)
	if err != nil {
		return nil, err
	}

	s := &Server{
		cfg:           cfg,
		prog:          prog,
		conn:          conn,
		rng:           rand.New(rand.NewSource(cfg.Seed)),
		players:       make(map[uint32]*player),
		heartbeatTick: runtime.IntervalSource(cfg.Heartbeat),
	}

	b := runtime.NewBindings().
		BindSource("Receive", s.receive).
		BindSource("Heartbeat", s.heartbeat).
		BindNode("ParsePacket", s.parsePacket).
		BindNode("ApplyMove", s.applyMove).
		BindNode("DropPacket", func(fl *runtime.Flow, in runtime.Record) (runtime.Record, error) {
			return nil, nil
		}).
		BindNode("ComputeState", s.computeState).
		BindNode("Broadcast", s.broadcast).
		MarkBlocking("Broadcast")

	if cfg.Telemetry != nil {
		cfg.Observer = runtime.MultiObserver(cfg.Observer, cfg.Telemetry)
	}
	rt, err := runtime.New(prog, b,
		runtime.WithEngine(cfg.Engine),
		runtime.WithPoolSize(cfg.PoolSize),
		runtime.WithSourceTimeout(cfg.SourceTimeout),
		runtime.WithProfiler(cfg.Profiler),
		runtime.WithObserver(cfg.Observer),
	)
	if err != nil {
		conn.Close()
		return nil, err
	}
	s.rt = rt
	return s, nil
}

// Addr returns the bound UDP address.
func (s *Server) Addr() string { return s.conn.LocalAddr().String() }

// Program exposes the compiled program.
func (s *Server) Program() *core.Program { return s.prog }

// Stats exposes runtime counters.
func (s *Server) Stats() *runtime.Stats { return s.rt.Stats() }

// TickStats reports completed turns and the mean state-computation time
// per turn (the delay-sensitive quantity of §4.4: how long the server
// takes to update the game state given all players' moves).
func (s *Server) TickStats() (turns uint64, meanTurn time.Duration) {
	n := s.ticks.Load()
	if n == 0 {
		return 0, 0
	}
	return n, time.Duration(s.tickNanos.Load() / n)
}

// Start launches the Flux runtime over the UDP socket; the server then
// serves until the context is cancelled or Shutdown is called.
func (s *Server) Start(ctx context.Context) error {
	if err := s.rt.Start(ctx); err != nil {
		return err
	}
	s.stop = make(chan struct{})
	go func() {
		select {
		case <-ctx.Done():
		case <-s.stop:
		}
		s.conn.Close()
	}()
	return nil
}

// Shutdown gracefully stops the server: the socket closes (unblocking
// the receive source), sources stop, and in-flight flows drain until
// their terminals or ctx expires.
func (s *Server) Shutdown(ctx context.Context) error {
	if s.stop == nil {
		return runtime.ErrNotStarted
	}
	s.stopOnce.Do(func() { close(s.stop) })
	return s.rt.Shutdown(ctx)
}

// Wait blocks until the run ends and returns its error.
func (s *Server) Wait() error { return s.rt.Wait() }

// Run serves until the context is cancelled: Start followed by Wait.
func (s *Server) Run(ctx context.Context) error {
	if err := s.Start(ctx); err != nil {
		return err
	}
	return s.Wait()
}

// --- node implementations --------------------------------------------------

// receive reads one datagram, honoring the event engine's poll deadline.
func (s *Server) receive(fl *runtime.Flow) (runtime.Record, error) {
	buf := make([]byte, 64)
	deadline := time.Time{}
	if fl.SourceTimeout > 0 {
		deadline = time.Now().Add(fl.SourceTimeout)
	}
	if err := s.conn.SetReadDeadline(deadline); err != nil {
		return nil, runtime.ErrStop
	}
	n, addr, err := s.conn.ReadFromUDP(buf)
	if err != nil {
		if fl.Ctx.Err() != nil {
			return nil, fl.Ctx.Err()
		}
		if ne, ok := err.(net.Error); ok && ne.Timeout() {
			return nil, runtime.ErrNoData
		}
		return nil, runtime.ErrStop // socket closed
	}
	return runtime.Record{&packet{data: buf[:n], addr: addr}}, nil
}

// heartbeat ticks at the configured rate; the deadline-aware interval
// source keeps the event engine's dispatcher responsive between turns.
func (s *Server) heartbeat(fl *runtime.Flow) (runtime.Record, error) {
	return s.heartbeatTick(fl)
}

// parsePacket validates and decodes a datagram; malformed input errors
// to DropPacket.
func (s *Server) parsePacket(fl *runtime.Flow, in runtime.Record) (runtime.Record, error) {
	p := in[0].(*packet)
	if len(p.data) < 1 {
		return nil, fmt.Errorf("gameserver: empty packet")
	}
	p.kind = p.data[0]
	switch p.kind {
	case MsgJoin:
		// no payload
	case MsgMove:
		if len(p.data) < 7 {
			return nil, fmt.Errorf("gameserver: short move packet (%d bytes)", len(p.data))
		}
		p.id = binary.LittleEndian.Uint32(p.data[1:5])
		p.dx = int8(p.data[5])
		p.dy = int8(p.data[6])
		if p.dx > maxMoveSpeed || p.dx < -maxMoveSpeed || p.dy > maxMoveSpeed || p.dy < -maxMoveSpeed {
			return nil, fmt.Errorf("gameserver: illegal move speed %d,%d", p.dx, p.dy)
		}
	default:
		return nil, fmt.Errorf("gameserver: unknown packet type %d", p.kind)
	}
	return in, nil
}

// applyMove mutates the shared state under the "state" constraint.
func (s *Server) applyMove(fl *runtime.Flow, in runtime.Record) (runtime.Record, error) {
	p := in[0].(*packet)
	switch p.kind {
	case MsgJoin:
		s.nextID++
		id := s.nextID
		pl := &player{
			id:   id,
			x:    int16(s.rng.Intn(s.cfg.Width)),
			y:    int16(s.rng.Intn(s.cfg.Height)),
			addr: p.addr,
		}
		s.players[id] = pl
		if len(s.players) == 1 {
			s.it = id // first player starts as "it"
		}
		ack := make([]byte, 9)
		ack[0] = MsgJoinAck
		binary.LittleEndian.PutUint32(ack[1:5], id)
		binary.LittleEndian.PutUint16(ack[5:7], uint16(s.cfg.Width))
		binary.LittleEndian.PutUint16(ack[7:9], uint16(s.cfg.Height))
		_, _ = s.conn.WriteToUDP(ack, p.addr)

	case MsgMove:
		pl, ok := s.players[p.id]
		if !ok {
			return nil, nil // stale id; ignore
		}
		// Boundary rule: players cannot move beyond the game world.
		pl.x = clamp(pl.x+int16(p.dx), 0, int16(s.cfg.Width-1))
		pl.y = clamp(pl.y+int16(p.dy), 0, int16(s.cfg.Height-1))
	}
	return nil, nil
}

func clamp(v, lo, hi int16) int16 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// computeState applies the tag rule and renders the broadcast, under the
// same "state" constraint as ApplyMove.
func (s *Server) computeState(fl *runtime.Flow, in runtime.Record) (runtime.Record, error) {
	start := time.Now()
	// Tag rule: if "it" is within tagRadius of another player, that
	// player becomes the new "it" and teleports to a random location.
	if it, ok := s.players[s.it]; ok {
		for id, pl := range s.players {
			if id == s.it {
				continue
			}
			dx, dy := int(pl.x)-int(it.x), int(pl.y)-int(it.y)
			if dx*dx+dy*dy <= tagRadius*tagRadius {
				s.it = id
				pl.x = int16(s.rng.Intn(s.cfg.Width))
				pl.y = int16(s.rng.Intn(s.cfg.Height))
				break
			}
		}
	}
	// Render the state packet.
	n := len(s.players)
	payload := make([]byte, 11+8*n)
	payload[0] = MsgState
	binary.LittleEndian.PutUint32(payload[1:5], uint32(in[0].(int)))
	binary.LittleEndian.PutUint32(payload[5:9], s.it)
	binary.LittleEndian.PutUint16(payload[9:11], uint16(n))
	addrs := make([]*net.UDPAddr, 0, n)
	off := 11
	for _, pl := range s.players {
		binary.LittleEndian.PutUint32(payload[off:off+4], pl.id)
		binary.LittleEndian.PutUint16(payload[off+4:off+6], uint16(pl.x))
		binary.LittleEndian.PutUint16(payload[off+6:off+8], uint16(pl.y))
		off += 8
		addrs = append(addrs, pl.addr)
	}
	s.tickNanos.Add(uint64(time.Since(start)))
	return runtime.Record{in[0], &snapshot{payload: payload, addrs: addrs}}, nil
}

// broadcast sends the snapshot to every player; it runs outside the
// state constraint (the snapshot is immutable), so input processing
// proceeds while packets drain.
func (s *Server) broadcast(fl *runtime.Flow, in runtime.Record) (runtime.Record, error) {
	snap := in[1].(*snapshot)
	for _, addr := range snap.addrs {
		if _, err := s.conn.WriteToUDP(snap.payload, addr); err != nil {
			s.broadcastErrs.Add(1)
			s.lastBroadcastErr.Store(err.Error())
		} else {
			s.broadcastPkts.Add(1)
		}
	}
	s.ticks.Add(1)
	return nil, nil
}

// BroadcastStats reports per-recipient state sends and send errors.
func (s *Server) BroadcastStats() (sent, errs uint64) {
	return s.broadcastPkts.Load(), s.broadcastErrs.Load()
}

// LastBroadcastError returns the most recent send error text, or "".
func (s *Server) LastBroadcastError() string {
	if v := s.lastBroadcastErr.Load(); v != nil {
		return v.(string)
	}
	return ""
}
