package gameserver

import (
	"context"
	"encoding/binary"
	"net"
	"testing"
	"time"

	"github.com/flux-lang/flux/internal/loadgen"
	"github.com/flux-lang/flux/internal/runtime"
)

func startServer(t *testing.T, cfg Config) (*Server, string, func()) {
	t.Helper()
	s, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() {
		defer close(done)
		_ = s.Run(ctx)
	}()
	stop := func() {
		cancel()
		select {
		case <-done:
		case <-time.After(10 * time.Second):
			t.Error("server did not stop")
		}
	}
	return s, s.Addr(), stop
}

// dial joins the game and returns the conn and assigned id.
func dial(t *testing.T, addr string) (*net.UDPConn, uint32) {
	t.Helper()
	raddr, err := net.ResolveUDPAddr("udp", addr)
	if err != nil {
		t.Fatal(err)
	}
	conn, err := net.DialUDP("udp", nil, raddr)
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 64)
	for attempt := 0; attempt < 10; attempt++ {
		if _, err := conn.Write([]byte{MsgJoin}); err != nil {
			t.Fatal(err)
		}
		conn.SetReadDeadline(time.Now().Add(200 * time.Millisecond))
		n, err := conn.Read(buf)
		if err != nil {
			continue
		}
		if n >= 9 && buf[0] == MsgJoinAck {
			return conn, binary.LittleEndian.Uint32(buf[1:5])
		}
	}
	conn.Close()
	t.Fatal("join failed")
	return nil, 0
}

// readState waits for the next state broadcast.
func readState(t *testing.T, conn *net.UDPConn) (tick, it uint32, players map[uint32][2]int16) {
	t.Helper()
	buf := make([]byte, 64*1024)
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		conn.SetReadDeadline(time.Now().Add(300 * time.Millisecond))
		n, err := conn.Read(buf)
		if err != nil {
			continue
		}
		if n < 11 || buf[0] != MsgState {
			continue
		}
		tick = binary.LittleEndian.Uint32(buf[1:5])
		it = binary.LittleEndian.Uint32(buf[5:9])
		count := int(binary.LittleEndian.Uint16(buf[9:11]))
		players = make(map[uint32][2]int16, count)
		off := 11
		for i := 0; i < count && off+8 <= n; i++ {
			id := binary.LittleEndian.Uint32(buf[off : off+4])
			x := int16(binary.LittleEndian.Uint16(buf[off+4 : off+6]))
			y := int16(binary.LittleEndian.Uint16(buf[off+6 : off+8]))
			players[id] = [2]int16{x, y}
			off += 8
		}
		return tick, it, players
	}
	t.Fatal("no state broadcast received")
	return 0, 0, nil
}

func TestJoinAndBroadcast(t *testing.T) {
	_, addr, stop := startServer(t, Config{Heartbeat: 20 * time.Millisecond, Engine: runtime.ThreadPerFlow})
	defer stop()
	conn, id := dial(t, addr)
	defer conn.Close()
	_, it, players := readState(t, conn)
	if _, ok := players[id]; !ok {
		t.Errorf("player %d missing from state %v", id, players)
	}
	if it != id {
		t.Errorf("single player should be it: it=%d id=%d", it, id)
	}
}

func TestMovesApplied(t *testing.T) {
	_, addr, stop := startServer(t, Config{Heartbeat: 20 * time.Millisecond, Engine: runtime.ThreadPool, PoolSize: 4})
	defer stop()
	conn, id := dial(t, addr)
	defer conn.Close()

	_, _, before := readState(t, conn)
	start := before[id]

	// March east 10 times at +3.
	pkt := make([]byte, 7)
	pkt[0] = MsgMove
	binary.LittleEndian.PutUint32(pkt[1:5], id)
	pkt[5] = byte(int8(3))
	pkt[6] = 0
	for i := 0; i < 10; i++ {
		conn.Write(pkt)
		time.Sleep(2 * time.Millisecond)
	}
	// Allow a couple of heartbeats for the state to reflect the moves.
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		_, _, players := readState(t, conn)
		if pos, ok := players[id]; ok && pos[0] > start[0] {
			return
		}
	}
	t.Error("moves never reflected in the broadcast state")
}

func TestBoundaryClamping(t *testing.T) {
	_, addr, stop := startServer(t, Config{
		Width: 32, Height: 32,
		Heartbeat: 10 * time.Millisecond,
		Engine:    runtime.ThreadPerFlow,
	})
	defer stop()
	conn, id := dial(t, addr)
	defer conn.Close()

	pkt := make([]byte, 7)
	pkt[0] = MsgMove
	binary.LittleEndian.PutUint32(pkt[1:5], id)
	pkt[5] = byte(int8(3))
	pkt[6] = byte(int8(3))
	for i := 0; i < 100; i++ {
		conn.Write(pkt)
	}
	time.Sleep(100 * time.Millisecond)
	_, _, players := readState(t, conn)
	pos := players[id]
	if pos[0] < 0 || pos[0] > 31 || pos[1] < 0 || pos[1] > 31 {
		t.Errorf("player escaped the board: %v", pos)
	}
}

func TestMalformedPacketsDropped(t *testing.T) {
	s, addr, stop := startServer(t, Config{Heartbeat: 50 * time.Millisecond, Engine: runtime.ThreadPerFlow})
	defer stop()
	raddr, _ := net.ResolveUDPAddr("udp", addr)
	conn, _ := net.DialUDP("udp", nil, raddr)
	defer conn.Close()
	conn.Write([]byte{99, 1, 2})                      // unknown type
	conn.Write([]byte{MsgMove, 1})                    // short move
	conn.Write([]byte{MsgMove, 1, 2, 3, 4, 120, 120}) // illegal speed
	// Give the server a moment to process.
	time.Sleep(100 * time.Millisecond)
	if s.Stats().Snapshot().Errored == 0 {
		t.Error("malformed packets did not take the error path")
	}
}

func TestTagTransfersIt(t *testing.T) {
	// Tiny board forces proximity quickly.
	_, addr, stop := startServer(t, Config{
		Width: 2, Height: 2,
		Heartbeat: 10 * time.Millisecond,
		Engine:    runtime.ThreadPool, PoolSize: 4,
	})
	defer stop()
	connA, idA := dial(t, addr)
	defer connA.Close()
	connB, idB := dial(t, addr)
	defer connB.Close()

	// On a 2x2 board with clamped random walks, the players must
	// eventually collide and transfer "it".
	pktA := make([]byte, 7)
	pktA[0] = MsgMove
	binary.LittleEndian.PutUint32(pktA[1:5], idA)
	pktB := make([]byte, 7)
	pktB[0] = MsgMove
	binary.LittleEndian.PutUint32(pktB[1:5], idB)

	deadline := time.Now().Add(5 * time.Second)
	var seenIts []uint32
	for time.Now().Before(deadline) {
		// Both players march to the same corner, guaranteeing a tag.
		pktA[5], pktA[6] = byte(int8(1)), byte(int8(1))
		pktB[5], pktB[6] = byte(int8(1)), byte(int8(1))
		connA.Write(pktA)
		connB.Write(pktB)
		_, it, _ := readState(t, connA)
		if len(seenIts) == 0 || seenIts[len(seenIts)-1] != it {
			seenIts = append(seenIts, it)
		}
		if len(seenIts) >= 2 {
			return // "it" changed hands at least once
		}
	}
	t.Errorf("it never transferred; seen %v", seenIts)
}

func TestHeartbeatCadence(t *testing.T) {
	if testing.Short() {
		t.Skip("timing test")
	}
	s, addr, stop := startServer(t, Config{Heartbeat: 25 * time.Millisecond, Engine: runtime.ThreadPerFlow})
	defer stop()

	res := loadgen.RunGameLoad(context.Background(), loadgen.GameClientConfig{
		Addr:     addr,
		Players:  4,
		MoveHz:   40,
		Duration: 700 * time.Millisecond,
		Warmup:   100 * time.Millisecond,
		Seed:     3,
	})
	if res.JoinFailures > 0 {
		t.Fatalf("join failures: %d", res.JoinFailures)
	}
	if res.StatesReceived == 0 || res.MovesSent == 0 {
		t.Fatalf("no traffic: %+v", res)
	}
	// Mean inter-arrival should track the heartbeat (generous bounds
	// for CI noise).
	if res.InterArrival.Count > 0 {
		mean := res.InterArrival.Mean
		if mean < 10*time.Millisecond || mean > 80*time.Millisecond {
			t.Errorf("state inter-arrival mean = %v, want ~25ms", mean)
		}
	}
	turns, meanTurn := s.TickStats()
	if turns == 0 {
		t.Error("no turns recorded")
	}
	if meanTurn > 25*time.Millisecond {
		t.Errorf("mean turn compute = %v exceeds heartbeat", meanTurn)
	}
}

// TestEventEngineBroadcastsUnderLoad is the regression test for the
// heartbeat-starvation bug: under a steady stream of client moves, the
// event engine's turn flow must keep acquiring the state constraint
// (fair lock grants) and clients must keep receiving broadcasts.
func TestEventEngineBroadcastsUnderLoad(t *testing.T) {
	s, addr, stop := startServer(t, Config{
		Heartbeat:     50 * time.Millisecond,
		Engine:        runtime.EventDriven,
		SourceTimeout: 5 * time.Millisecond,
	})
	defer stop()

	res := loadgen.RunGameLoad(context.Background(), loadgen.GameClientConfig{
		Addr: addr, Players: 8, MoveHz: 20,
		Duration: 1200 * time.Millisecond, Warmup: 200 * time.Millisecond, Seed: 8,
	})
	if res.JoinFailures > 0 {
		t.Fatalf("join failures: %d", res.JoinFailures)
	}
	if res.StatesReceived == 0 {
		t.Fatal("clients received no state broadcasts (heartbeat starved)")
	}
	sent, errs := s.BroadcastStats()
	if sent == 0 {
		t.Fatalf("no broadcast packets sent (errs=%d)", errs)
	}
	turns, _ := s.TickStats()
	// 1.2s at 50ms per turn is ~24 turns; demand at least a third.
	if turns < 8 {
		t.Errorf("turns = %d, want >= 8", turns)
	}
}
