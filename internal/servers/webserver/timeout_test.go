package webserver

// Tests for the fault-hardening deadlines: a client that dials and
// trickles (or stalls) its request head must be disconnected and
// counted, not left pinning a worker — and the SLO controller must be
// wired end to end when a TargetP95 is configured.

import (
	"bufio"
	"fmt"
	"io"
	"net"
	"testing"
	"time"

	"github.com/flux-lang/flux/internal/loadgen"
	"github.com/flux-lang/flux/internal/metrics"
	"github.com/flux-lang/flux/internal/runtime"
)

// waitClosed reads until the server closes the connection, failing the
// test if it stays open past the deadline.
func waitClosed(t *testing.T, conn net.Conn, within time.Duration) {
	t.Helper()
	_ = conn.SetReadDeadline(time.Now().Add(within))
	if _, err := io.Copy(io.Discard, conn); err != nil {
		t.Fatalf("server did not close the connection within %v: %v", within, err)
	}
}

// waitShed polls until the observer has recorded a shed under key.
func waitShed(t *testing.T, obs *metrics.FlowObserver, key string) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if obs.ShedCount(key) > 0 {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("no shed recorded under %q", key)
}

// TestSlowLorisHeaderTimeout holds a half-written request line open.
// The header deadline must pop, the connection must be closed, and the
// shed must be counted under webserver/timeout — then the server must
// still serve well-behaved clients.
func TestSlowLorisHeaderTimeout(t *testing.T) {
	files := loadgen.NewFileSet(1)
	obs := metrics.NewFlowObserver()
	_, addr, stop := startServer(t, Config{
		Files:         files,
		Engine:        runtime.ThreadPerFlow,
		HeaderTimeout: 150 * time.Millisecond,
		Observer:      obs,
	})
	defer stop()

	conn, err := net.DialTimeout("tcp", addr, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	// Half a request line, never finished: the loris.
	if _, err := fmt.Fprintf(conn, "GET /dir00000/cla"); err != nil {
		t.Fatal(err)
	}
	waitClosed(t, conn, 5*time.Second)
	waitShed(t, obs, "webserver/timeout")

	// The worker the loris would have pinned is free to serve.
	if status, _ := get(t, addr, files.Path(0, 0, 1)); status != 200 {
		t.Errorf("post-loris request: status = %d", status)
	}
}

// TestKeepAliveIdleTimeout completes one keep-alive request, then goes
// silent. The idle deadline must reap the dead conversation and count
// it — distinct from the client hanging up (an un-counted Discard).
func TestKeepAliveIdleTimeout(t *testing.T) {
	files := loadgen.NewFileSet(1)
	obs := metrics.NewFlowObserver()
	_, addr, stop := startServer(t, Config{
		Files:       files,
		Engine:      runtime.ThreadPerFlow,
		IdleTimeout: 150 * time.Millisecond,
		Observer:    obs,
	})
	defer stop()

	conn, err := net.DialTimeout("tcp", addr, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	br := bufio.NewReader(conn)
	fmt.Fprintf(conn, "GET %s HTTP/1.1\r\nHost: t\r\n\r\n", files.Path(0, 0, 1))
	status, srvClose, _, err := readFullResponse(br)
	if err != nil || status != 200 || srvClose {
		t.Fatalf("first request: status %d close %v err %v", status, srvClose, err)
	}

	// Silence. The server, not the test, ends the conversation.
	waitClosed(t, conn, 5*time.Second)
	waitShed(t, obs, "webserver/timeout")
}

// TestAdaptiveControllerWiring boots the server with a TargetP95 and
// verifies the control loop is actually closed: a gate exists at the
// default starting watermark, the plane's conn cap tracks 2× it, the
// trajectory streams reach the configured observer, and requests are
// served normally underneath.
func TestAdaptiveControllerWiring(t *testing.T) {
	files := loadgen.NewFileSet(1)
	obs := metrics.NewFlowObserver()
	srv, addr, stop := startServer(t, Config{
		Files:     files,
		Engine:    runtime.EventDriven,
		TargetP95: 30 * time.Millisecond,
		Observer:  obs,
	})
	defer stop()

	if srv.Controller() == nil {
		t.Fatal("no controller with TargetP95 set")
	}
	if srv.Gate() == nil {
		t.Fatal("no gate with TargetP95 set")
	}
	if wm := srv.Gate().Watermark(); wm != 64 {
		t.Errorf("initial watermark = %d, want the default 64", wm)
	}
	if cap, wm := srv.cp.Plane().MaxConns(), srv.Gate().Watermark(); cap != 2*wm {
		t.Errorf("conn cap = %d, want 2×watermark = %d", cap, 2*wm)
	}

	if status, _ := get(t, addr, files.Path(0, 0, 1)); status != 200 {
		t.Fatalf("status = %d", status)
	}

	// Within a couple of control intervals the trajectory streams land
	// on the observer's queue-depth surface.
	deadline := time.Now().Add(5 * time.Second)
	key := runtime.EventDriven.String() + "/" + runtime.CtrlWatermark
	for time.Now().Before(deadline) {
		if obs.MaxQueueDepth(key) >= 64 {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("no %s trajectory reached the observer (max=%d)", key, obs.MaxQueueDepth(key))
}
