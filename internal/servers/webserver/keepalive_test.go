package webserver

import (
	"bufio"
	"fmt"
	"io"
	"net"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/flux-lang/flux/internal/loadgen"
	"github.com/flux-lang/flux/internal/runtime"
)

// readFullResponse consumes one HTTP/1.1 response from br, returning
// the status code, whether the server announced Connection: close, and
// the body.
func readFullResponse(br *bufio.Reader) (status int, srvClose bool, body string, err error) {
	statusLine, err := br.ReadString('\n')
	if err != nil {
		return 0, false, "", err
	}
	fields := strings.Fields(statusLine)
	if len(fields) < 2 {
		return 0, false, "", fmt.Errorf("bad status line %q", statusLine)
	}
	status, _ = strconv.Atoi(fields[1])
	clen := -1
	for {
		line, err := br.ReadString('\n')
		if err != nil {
			return 0, false, "", err
		}
		line = strings.TrimSpace(line)
		if line == "" {
			break
		}
		k, v, ok := strings.Cut(line, ":")
		if !ok {
			continue
		}
		k, v = strings.TrimSpace(k), strings.TrimSpace(v)
		if strings.EqualFold(k, "Content-Length") {
			clen, _ = strconv.Atoi(v)
		}
		if strings.EqualFold(k, "Connection") && strings.EqualFold(v, "close") {
			srvClose = true
		}
	}
	if clen < 0 {
		return 0, false, "", fmt.Errorf("response without Content-Length")
	}
	buf := make([]byte, clen)
	if _, err := io.ReadFull(br, buf); err != nil {
		return 0, false, "", err
	}
	return status, srvClose, string(buf), nil
}

// TestKeepAlivePipelinedSequence issues N sequential requests on one
// connection across every engine, mixing static, dynamic, and POST, and
// verifies each response arrives in order with correct framing.
func TestKeepAlivePipelinedSequence(t *testing.T) {
	files := loadgen.NewFileSet(1)
	for _, kind := range []runtime.EngineKind{
		runtime.ThreadPerFlow, runtime.ThreadPool, runtime.EventDriven, runtime.WorkStealing,
	} {
		t.Run(kind.String(), func(t *testing.T) {
			_, addr, stop := startServer(t, Config{
				Files:         files,
				Engine:        kind,
				PoolSize:      4,
				SourceTimeout: 2 * time.Millisecond,
			})
			defer stop()

			conn, err := net.DialTimeout("tcp", addr, 2*time.Second)
			if err != nil {
				t.Fatal(err)
			}
			defer conn.Close()
			br := bufio.NewReader(conn)

			for i := 1; i <= 9; i++ {
				var wantBody string
				switch i % 3 {
				case 0: // POST
					payload := fmt.Sprintf("seq=%d", i)
					fmt.Fprintf(conn, "POST /post HTTP/1.1\r\nHost: t\r\nContent-Length: %d\r\n\r\n%s",
						len(payload), payload)
					wantBody = fmt.Sprintf("received %d bytes", len(payload))
				case 1: // static GET
					path := files.Path(0, 0, i%9+1)
					fmt.Fprintf(conn, "GET %s HTTP/1.1\r\nHost: t\r\n\r\n", path)
					want, _ := files.Lookup(path)
					wantBody = string(want)
				case 2: // dynamic GET
					fmt.Fprintf(conn, "GET /adrotate?u=7&r=%d HTTP/1.1\r\nHost: t\r\n\r\n", i)
					wantBody = "ad="
				}
				status, srvClose, body, err := readFullResponse(br)
				if err != nil {
					t.Fatalf("request %d: %v", i, err)
				}
				if status != 200 {
					t.Fatalf("request %d: status %d", i, status)
				}
				if srvClose {
					t.Fatalf("request %d: unexpected Connection: close", i)
				}
				if !strings.Contains(body, wantBody) {
					t.Fatalf("request %d: body %q missing %q", i, truncate(body), wantBody)
				}
			}
		})
	}
}

func truncate(s string) string {
	if len(s) > 120 {
		return s[:120] + "..."
	}
	return s
}

// TestConnectionCloseHonoredMidStream sends several keep-alive requests
// and then one with Connection: close: the server must announce the
// close on that response and end the conversation there.
func TestConnectionCloseHonoredMidStream(t *testing.T) {
	files := loadgen.NewFileSet(1)
	_, addr, stop := startServer(t, Config{Files: files, Engine: runtime.ThreadPool, PoolSize: 4})
	defer stop()

	conn, err := net.DialTimeout("tcp", addr, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	br := bufio.NewReader(conn)
	path := files.Path(0, 0, 1)

	for i := 0; i < 2; i++ {
		fmt.Fprintf(conn, "GET %s HTTP/1.1\r\nHost: t\r\n\r\n", path)
		status, srvClose, _, err := readFullResponse(br)
		if err != nil || status != 200 {
			t.Fatalf("request %d: status %d err %v", i, status, err)
		}
		if srvClose {
			t.Fatalf("request %d: premature Connection: close", i)
		}
	}
	fmt.Fprintf(conn, "GET %s HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n", path)
	status, srvClose, _, err := readFullResponse(br)
	if err != nil || status != 200 {
		t.Fatalf("final request: status %d err %v", status, err)
	}
	if !srvClose {
		t.Error("final response did not announce Connection: close")
	}
	// The connection must actually be closed: the next read sees EOF.
	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	if _, err := br.ReadByte(); err != io.EOF {
		t.Errorf("connection still open after Connection: close (read err %v)", err)
	}
}

// TestMaxKeepAliveCapEnforced configures a small per-connection request
// cap and verifies the server announces the close on the capped
// response and then hangs up.
func TestMaxKeepAliveCapEnforced(t *testing.T) {
	const maxReq = 3
	files := loadgen.NewFileSet(1)
	_, addr, stop := startServer(t, Config{
		Files:        files,
		Engine:       runtime.ThreadPool,
		PoolSize:     4,
		MaxKeepAlive: maxReq,
	})
	defer stop()

	conn, err := net.DialTimeout("tcp", addr, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	br := bufio.NewReader(conn)
	path := files.Path(0, 0, 1)

	for i := 1; i <= maxReq; i++ {
		fmt.Fprintf(conn, "GET %s HTTP/1.1\r\nHost: t\r\n\r\n", path)
		status, srvClose, _, err := readFullResponse(br)
		if err != nil || status != 200 {
			t.Fatalf("request %d: status %d err %v", i, status, err)
		}
		if i < maxReq && srvClose {
			t.Fatalf("request %d: close announced before the cap", i)
		}
		if i == maxReq && !srvClose {
			t.Errorf("request %d: cap reached but close not announced", i)
		}
	}
	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	if _, err := br.ReadByte(); err != io.EOF {
		t.Errorf("connection still open past MaxKeepAlive (read err %v)", err)
	}
}

// TestStealEngineKeepAliveReregistrationStress hammers the steal engine
// with concurrent keep-alive conversations. Every Complete re-registers
// its connection with the Listen source, so the sharded sources,
// injection queue, and deques all churn at once; run under -race (the
// CI race job includes this package) it is the re-registration data-race
// probe the engine's own microtests cannot provide.
func TestStealEngineKeepAliveReregistrationStress(t *testing.T) {
	files := loadgen.NewFileSet(1)
	_, addr, stop := startServer(t, Config{
		Files:         files,
		Engine:        runtime.WorkStealing,
		SourceTimeout: 2 * time.Millisecond,
		ScriptWork:    50, // keep dynamic requests cheap under -race
	})
	defer stop()

	const clients = 8
	const perClient = 25
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			conn, err := net.DialTimeout("tcp", addr, 2*time.Second)
			if err != nil {
				errs <- err
				return
			}
			defer conn.Close()
			br := bufio.NewReader(conn)
			for i := 0; i < perClient; i++ {
				var err error
				if i%5 == 4 {
					_, err = fmt.Fprintf(conn, "GET /dynamic?n=50 HTTP/1.1\r\nHost: t\r\n\r\n")
				} else {
					_, err = fmt.Fprintf(conn, "GET %s HTTP/1.1\r\nHost: t\r\n\r\n", files.Path(0, 0, i%9+1))
				}
				if err != nil {
					errs <- fmt.Errorf("client %d request %d: %w", id, i, err)
					return
				}
				status, srvClose, _, err := readFullResponse(br)
				if err != nil || status != 200 {
					errs <- fmt.Errorf("client %d request %d: status %d err %v", id, i, status, err)
					return
				}
				if srvClose {
					errs <- fmt.Errorf("client %d request %d: premature close", id, i)
					return
				}
			}
		}(c)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}
