package webserver

import (
	"bufio"
	"bytes"
	"strings"
	"testing"
)

// FuzzReadRequest feeds arbitrary byte streams to the HTTP/1.1 request
// parser, draining up to a keep-alive conversation's worth of requests
// from each. The parser must never panic, and every request it accepts
// must satisfy the invariants the downstream graph nodes rely on:
// a GET/POST method, a non-empty path, a bounded body, and consistent
// post/dynamic classification.
//
// Seed corpus: testdata/fuzz/FuzzReadRequest. Run
// `go test -fuzz=FuzzReadRequest ./internal/servers/webserver/` to
// explore beyond it.
func FuzzReadRequest(f *testing.F) {
	seeds := []string{
		"GET /dir0/class0_1.html HTTP/1.1\r\nHost: t\r\nConnection: keep-alive\r\n\r\n",
		"GET /dynamic?n=10 HTTP/1.1\r\n\r\n",
		"GET /adrotate?u=3&r=9 HTTP/1.1\r\nConnection: close\r\n\r\n",
		"POST /post HTTP/1.1\r\nHost: t\r\nContent-Length: 5\r\n\r\nab=cd",
		"POST /post HTTP/1.1\r\nContent-Length: -1\r\n\r\n",
		"POST /post HTTP/1.1\r\nContent-Length: 1048577\r\n\r\n",
		"POST /post HTTP/1.1\r\nContent-Length: 5\r\nContent-Length: 6\r\n\r\nab=cd",
		"POST /post HTTP/1.1\r\nContent-Length: 5\r\nContent-Length: 5\r\n\r\nab=cd",
		"GET /a HTTP/1.1\r\n\r\nGET /b HTTP/1.1\r\nConnection: close\r\n\r\n",
		"DELETE /x HTTP/1.1\r\n\r\n",
		"GET /half",
		"GET / SPDY/9\r\n\r\n",
		"GET  HTTP/1.1\r\n\r\n",
		strings.Repeat("X-Pad: y\r\n", 70),
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		br := bufio.NewReader(bytes.NewReader(data))
		for i := 0; i < 16; i++ {
			req, err := ParseRequest(br)
			if err != nil {
				return // malformed or exhausted: the server discards the conn
			}
			if req.Method != "GET" && req.Method != "POST" {
				t.Fatalf("accepted method %q", req.Method)
			}
			if req.Path == "" {
				t.Fatal("accepted empty path")
			}
			if len(req.Body) > MaxBodyBytes {
				t.Fatalf("body %d bytes exceeds cap", len(req.Body))
			}
			if req.post != (req.Method == "POST") {
				t.Fatalf("post flag %v disagrees with method %q", req.post, req.Method)
			}
			if req.post && !req.dynamic {
				t.Fatal("POST not classified dynamic: it would hit the response cache")
			}
			if len(req.Body) > 0 && !req.post {
				t.Fatalf("GET retained a %d-byte body", len(req.Body))
			}
		}
	})
}
