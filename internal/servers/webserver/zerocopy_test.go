package webserver

// Tests for the zero-copy static path: writev/sendfile responses must
// be wire-identical to the legacy copy path, SO_REUSEPORT sharding must
// serve transparently, and a client that stops draining its socket
// (write-side slow loris) must be torn down and counted.

import (
	"fmt"
	"io"
	"net"
	goruntime "runtime"
	"testing"
	"time"

	"github.com/flux-lang/flux/internal/loadgen"
	"github.com/flux-lang/flux/internal/metrics"
	"github.com/flux-lang/flux/internal/runtime"
)

// rawGet fetches one URL and returns the entire raw byte stream the
// server produced, status line and headers included.
func rawGet(t *testing.T, addr, path string) []byte {
	t.Helper()
	conn, err := net.DialTimeout("tcp", addr, 2*time.Second)
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer conn.Close()
	fmt.Fprintf(conn, "GET %s HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n", path)
	out, err := io.ReadAll(conn)
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	return out
}

// TestZeroCopyWireParity: the writev path and the legacy contiguous
// path must produce byte-identical responses — headers, framing, body.
func TestZeroCopyWireParity(t *testing.T) {
	files := loadgen.NewFileSet(1)
	_, zcAddr, zcStop := startServer(t, Config{Files: files, Engine: runtime.ThreadPerFlow})
	defer zcStop()
	_, cpAddr, cpStop := startServer(t, Config{Files: files, Engine: runtime.ThreadPerFlow, CopyWrites: true})
	defer cpStop()

	for _, path := range []string{files.Path(0, 0, 1), files.Path(0, 2, 9), "/no/such/file"} {
		zc := rawGet(t, zcAddr, path)
		cp := rawGet(t, cpAddr, path)
		if string(zc) != string(cp) {
			t.Errorf("%s: zero-copy response (%d bytes) differs from copy response (%d bytes)", path, len(zc), len(cp))
		}
	}
}

// TestSendfileServesLargeBody: with the corpus materialized, a class-3
// body crosses the sendfile threshold and must still arrive
// byte-identical to the in-memory corpus.
func TestSendfileServesLargeBody(t *testing.T) {
	files := loadgen.NewFileSet(1)
	if err := files.Materialize(t.TempDir()); err != nil {
		t.Fatalf("Materialize: %v", err)
	}
	s, addr, stop := startServer(t, Config{Files: files, Engine: runtime.ThreadPerFlow})
	defer stop()

	path := files.Path(0, 3, 9) // 900 KB, well past the 64 KB threshold
	status, body := get(t, addr, path)
	if status != 200 {
		t.Fatalf("status = %d", status)
	}
	want, _ := files.Lookup(path)
	if body != string(want) {
		t.Fatalf("sendfile body mismatch: got %d bytes, want %d", len(body), len(want))
	}
	// Sendfile-served bodies bypass the response cache: a repeat request
	// must be another miss, not a hit on a cached copy.
	if _, _ = get(t, addr, path); func() uint64 { h, _, _ := s.CacheStats(); return h }() != 0 {
		t.Error("large body found in the response cache; sendfile path must bypass it")
	}
}

// TestWriteTimeoutShedsStalledClient pipelines several large keep-alive
// GETs and never reads a byte. Once the kernel buffers fill, the write
// deadline must pop, the connection must be torn down, and the shed
// must be counted under webserver/write-timeout on the Observer plane.
func TestWriteTimeoutShedsStalledClient(t *testing.T) {
	files := loadgen.NewFileSet(1)
	obs := metrics.NewFlowObserver()
	_, addr, stop := startServer(t, Config{
		Files:        files,
		Engine:       runtime.ThreadPerFlow,
		WriteTimeout: 200 * time.Millisecond,
		Observer:     obs,
	})
	defer stop()

	conn, err := net.DialTimeout("tcp", addr, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	// 16 pipelined 900 KB responses (~14 MB) overwhelm any loopback
	// socket buffering; the client reads none of it.
	path := files.Path(0, 3, 9)
	for i := 0; i < 16; i++ {
		fmt.Fprintf(conn, "GET %s HTTP/1.1\r\nHost: t\r\n\r\n", path)
	}
	waitShed(t, obs, "webserver/write-timeout")

	// The worker the stalled client held is free again.
	if status, _ := get(t, addr, files.Path(0, 0, 1)); status != 200 {
		t.Errorf("post-stall request: status = %d", status)
	}
}

// TestListenShardsServe: a sharded server serves normally; on Linux the
// plane must actually have opened the requested shard count, elsewhere
// the single-listener fallback serves identically.
func TestListenShardsServe(t *testing.T) {
	files := loadgen.NewFileSet(1)
	s, addr, stop := startServer(t, Config{Files: files, Engine: runtime.ThreadPool, PoolSize: 4, ListenShards: 2})
	defer stop()

	if got := s.cp.Shards(); goruntime.GOOS == "linux" && got != 2 {
		t.Errorf("Shards() = %d, want 2 on linux", got)
	} else if got < 1 {
		t.Errorf("Shards() = %d, want >= 1", got)
	}
	for i := 0; i < 20; i++ {
		path := files.Path(0, 0, 1+i%9)
		status, body := get(t, addr, path)
		want, _ := files.Lookup(path)
		if status != 200 || body != string(want) {
			t.Fatalf("request %d: status=%d len=%d", i, status, len(body))
		}
	}
}
