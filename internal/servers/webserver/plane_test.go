package webserver

// Tests for the connection plane: Inject-driven admission under
// overload (503 sheds, Connection: close on keep-alive responses, shed
// events on the Observer plane) and graceful shutdown while keep-alive
// clients are mid-conversation on every engine.

import (
	"bufio"
	"context"
	"fmt"
	"io"
	"net"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/flux-lang/flux/internal/loadgen"
	"github.com/flux-lang/flux/internal/metrics"
	"github.com/flux-lang/flux/internal/runtime"
)

// TestOverloadShedsAndAnnouncesClose drives the admission gate directly
// (its queue-depth surface is public) and verifies the three overload
// behaviors: established keep-alive conversations get Connection: close,
// fresh connections get an explicit 503, and every shed is counted on
// the plane and routed through the Observer plane — nothing silent.
func TestOverloadShedsAndAnnouncesClose(t *testing.T) {
	files := loadgen.NewFileSet(1)
	obs := metrics.NewFlowObserver()
	srv, addr, stop := startServer(t, Config{
		Files:          files,
		Engine:         runtime.EventDriven,
		SourceTimeout:  2 * time.Millisecond,
		AdmitWatermark: 50,
		Observer:       obs,
	})
	defer stop()
	path := files.Path(0, 0, 1)

	// An established keep-alive conversation before overload.
	connA, err := net.DialTimeout("tcp", addr, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer connA.Close()
	brA := bufio.NewReader(connA)
	fmt.Fprintf(connA, "GET %s HTTP/1.1\r\nHost: t\r\n\r\n", path)
	status, srvClose, _, err := readFullResponse(brA)
	if err != nil || status != 200 || srvClose {
		t.Fatalf("pre-overload request: status %d close %v err %v", status, srvClose, err)
	}

	// Trip the gate: a sampled backlog past the watermark. The fake
	// queue name never collides with the engine's own samples, so the
	// overload holds until cleared below.
	srv.Gate().QueueDepth(runtime.EventDriven, "test-backlog", 1000)
	if !srv.Gate().Overloaded() {
		t.Fatal("gate not overloaded after sample past watermark")
	}

	// The established conversation is shed gracefully: served, but with
	// the close announced so the client stops queueing load here.
	fmt.Fprintf(connA, "GET %s HTTP/1.1\r\nHost: t\r\n\r\n", path)
	status, srvClose, _, err = readFullResponse(brA)
	if err != nil || status != 200 {
		t.Fatalf("overloaded keep-alive request: status %d err %v", status, err)
	}
	if !srvClose {
		t.Error("overloaded keep-alive response did not announce Connection: close")
	}
	connA.SetReadDeadline(time.Now().Add(5 * time.Second))
	if _, err := brA.ReadByte(); err != io.EOF {
		t.Errorf("connection still open after overload close (read err %v)", err)
	}

	// Fresh connections are answered 503 and closed.
	connB, err := net.DialTimeout("tcp", addr, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer connB.Close()
	connB.SetReadDeadline(time.Now().Add(5 * time.Second))
	resp, err := io.ReadAll(connB)
	if err != nil {
		t.Fatalf("read shed response: %v", err)
	}
	if !strings.Contains(string(resp), "503") || !strings.Contains(string(resp), "Connection: close") {
		t.Errorf("shed response = %q, want 503 with Connection: close", truncate(string(resp)))
	}

	// The shed is counted — on the plane and on the Observer plane.
	if got := srv.PlaneStats().Shed; got < 1 {
		t.Errorf("plane shed count = %d, want >= 1", got)
	}
	if got := obs.ShedCount("webserver/overload"); got < 1 {
		t.Errorf("observer sheds = %d, want >= 1 (shed dropped silently?)", got)
	}

	// Clearing the backlog restores admission.
	srv.Gate().QueueDepth(runtime.EventDriven, "test-backlog", 0)
	deadline := time.Now().Add(5 * time.Second)
	for srv.Gate().Overloaded() {
		if time.Now().After(deadline) {
			t.Fatal("gate stuck overloaded after backlog cleared")
		}
		time.Sleep(time.Millisecond)
	}
	status, _ = get(t, addr, path)
	if status != 200 {
		t.Errorf("post-overload request: status %d", status)
	}
}

// TestShutdownWhileInjecting shuts the server down on every engine while
// keep-alive clients are mid-conversation — some actively issuing
// requests (their Complete nodes are re-injecting into a draining
// runtime), some idle (their ReadRequest flows are blocked on the
// socket). Shutdown must interrupt both kinds promptly, and the refused
// re-registrations must surface as counted sheds, not hangs.
func TestShutdownWhileInjecting(t *testing.T) {
	files := loadgen.NewFileSet(1)
	for _, kind := range []runtime.EngineKind{
		runtime.ThreadPerFlow, runtime.ThreadPool, runtime.EventDriven, runtime.WorkStealing,
	} {
		t.Run(kind.String(), func(t *testing.T) {
			srv, err := New(Config{
				Files:         files,
				Engine:        kind,
				PoolSize:      4,
				SourceTimeout: 2 * time.Millisecond,
				ScriptWork:    50,
			})
			if err != nil {
				t.Fatal(err)
			}
			ctx, cancel := context.WithCancel(context.Background())
			defer cancel()
			if err := srv.Start(ctx); err != nil {
				t.Fatal(err)
			}
			addr := srv.Addr()

			// Busy clients: back-to-back mixed keep-alive requests until
			// the server goes away.
			var served atomic.Int64
			var wg sync.WaitGroup
			for c := 0; c < 4; c++ {
				wg.Add(1)
				go func(id int) {
					defer wg.Done()
					conn, err := net.DialTimeout("tcp", addr, 2*time.Second)
					if err != nil {
						return
					}
					defer conn.Close()
					conn.SetDeadline(time.Now().Add(20 * time.Second))
					br := bufio.NewReader(conn)
					for i := 0; ; i++ {
						if i%4 == 3 {
							_, err = fmt.Fprintf(conn, "GET /adrotate?u=%d&r=%d HTTP/1.1\r\nHost: t\r\n\r\n", id, i)
						} else {
							_, err = fmt.Fprintf(conn, "GET %s HTTP/1.1\r\nHost: t\r\n\r\n", files.Path(0, 0, i%9+1))
						}
						if err != nil {
							return
						}
						status, srvClose, _, err := readFullResponse(br)
						if err != nil || status != 200 {
							return // server shutting down
						}
						served.Add(1)
						if srvClose {
							return
						}
					}
				}(c)
			}
			// Idle clients: connected, never sending — their flows are
			// blocked in ReadRequest and only the plane's shutdown sweep
			// can release them.
			var idle []net.Conn
			for c := 0; c < 3; c++ {
				conn, err := net.DialTimeout("tcp", addr, 2*time.Second)
				if err != nil {
					t.Fatal(err)
				}
				idle = append(idle, conn)
			}
			defer func() {
				for _, c := range idle {
					c.Close()
				}
			}()

			// Let traffic ramp, then shut down mid-stream.
			deadline := time.Now().Add(5 * time.Second)
			for served.Load() < 8 && time.Now().Before(deadline) {
				time.Sleep(time.Millisecond)
			}
			shCtx, shCancel := context.WithTimeout(context.Background(), 10*time.Second)
			defer shCancel()
			start := time.Now()
			if err := srv.Shutdown(shCtx); err != nil {
				t.Errorf("Shutdown: %v", err)
			}
			if err := srv.Wait(); err != nil && err != ctx.Err() {
				t.Errorf("Wait: %v", err)
			}
			if elapsed := time.Since(start); elapsed > 8*time.Second {
				t.Errorf("shutdown took %v with clients mid-conversation", elapsed)
			}
			wg.Wait()

			// Every started flow reached a terminal: nothing leaked in
			// the drain.
			st := srv.Stats().Snapshot()
			if got := st.Completed + st.Errored + st.Dropped; got != st.Started {
				t.Errorf("terminals = %d, started = %d: flows lost in shutdown", got, st.Started)
			}
			if served.Load() == 0 {
				t.Error("no requests served before shutdown (test raced)")
			}
		})
	}
}
