package webserver

import (
	"bufio"
	"context"
	"fmt"
	"io"
	"net"
	"strconv"
	"strings"
	"testing"
	"time"

	"github.com/flux-lang/flux/internal/loadgen"
	"github.com/flux-lang/flux/internal/profile"
	"github.com/flux-lang/flux/internal/runtime"
)

// startServer boots a web server on an ephemeral port and returns its
// address plus a shutdown func.
func startServer(t *testing.T, cfg Config) (*Server, string, func()) {
	t.Helper()
	s, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() {
		defer close(done)
		_ = s.Run(ctx)
	}()
	stop := func() {
		cancel()
		select {
		case <-done:
		case <-time.After(10 * time.Second):
			t.Error("server did not stop")
		}
	}
	return s, s.Addr(), stop
}

// get fetches one URL over a fresh connection.
func get(t *testing.T, addr, path string) (status int, body string) {
	t.Helper()
	conn, err := net.DialTimeout("tcp", addr, 2*time.Second)
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer conn.Close()
	fmt.Fprintf(conn, "GET %s HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n", path)
	br := bufio.NewReader(conn)
	statusLine, err := br.ReadString('\n')
	if err != nil {
		t.Fatalf("status: %v", err)
	}
	fields := strings.Fields(statusLine)
	if len(fields) < 2 {
		t.Fatalf("bad status line %q", statusLine)
	}
	status, _ = strconv.Atoi(fields[1])
	clen := -1
	for {
		line, err := br.ReadString('\n')
		if err != nil {
			t.Fatalf("headers: %v", err)
		}
		line = strings.TrimSpace(line)
		if line == "" {
			break
		}
		if k, v, ok := strings.Cut(line, ":"); ok && strings.EqualFold(k, "Content-Length") {
			clen, _ = strconv.Atoi(strings.TrimSpace(v))
		}
	}
	buf := make([]byte, clen)
	if _, err := io.ReadFull(br, buf); err != nil {
		t.Fatalf("body: %v", err)
	}
	return status, string(buf)
}

func TestServesStaticFile(t *testing.T) {
	files := loadgen.NewFileSet(1)
	_, addr, stop := startServer(t, Config{Files: files, Engine: runtime.ThreadPerFlow})
	defer stop()

	path := files.Path(0, 1, 3)
	status, body := get(t, addr, path)
	if status != 200 {
		t.Fatalf("status = %d", status)
	}
	want, _ := files.Lookup(path)
	if body != string(want) {
		t.Errorf("body mismatch: got %d bytes, want %d", len(body), len(want))
	}
}

func TestNotFound(t *testing.T) {
	_, addr, stop := startServer(t, Config{Engine: runtime.ThreadPerFlow})
	defer stop()
	status, body := get(t, addr, "/no/such/file")
	if status != 404 {
		t.Errorf("status = %d", status)
	}
	if !strings.Contains(body, "404") {
		t.Errorf("body = %q", body)
	}
}

func TestDynamicPage(t *testing.T) {
	_, addr, stop := startServer(t, Config{Engine: runtime.ThreadPerFlow})
	defer stop()
	status, body := get(t, addr, "/dynamic?n=10")
	if status != 200 {
		t.Fatalf("status = %d", status)
	}
	// sum of i*i % 97 for i=1..10 = 1+4+9+16+25+36+49+64+81+3 = 288.
	if !strings.Contains(body, "work=10") || !strings.Contains(body, "checksum=288") {
		t.Errorf("body = %q", body)
	}
}

func TestKeepAliveServesMultipleRequests(t *testing.T) {
	files := loadgen.NewFileSet(1)
	_, addr, stop := startServer(t, Config{Files: files, Engine: runtime.ThreadPool, PoolSize: 4})
	defer stop()

	conn, err := net.DialTimeout("tcp", addr, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	br := bufio.NewReader(conn)
	for i := 1; i <= 5; i++ {
		path := files.Path(0, 0, i)
		fmt.Fprintf(conn, "GET %s HTTP/1.1\r\nHost: t\r\n\r\n", path)
		status, err := br.ReadString('\n')
		if err != nil {
			t.Fatalf("request %d: %v", i, err)
		}
		if !strings.Contains(status, "200") {
			t.Fatalf("request %d: status %q", i, status)
		}
		clen := -1
		for {
			line, err := br.ReadString('\n')
			if err != nil {
				t.Fatal(err)
			}
			if strings.TrimSpace(line) == "" {
				break
			}
			if k, v, ok := strings.Cut(strings.TrimSpace(line), ":"); ok && strings.EqualFold(k, "Content-Length") {
				clen, _ = strconv.Atoi(strings.TrimSpace(v))
			}
		}
		if _, err := io.CopyN(io.Discard, br, int64(clen)); err != nil {
			t.Fatal(err)
		}
	}
}

func TestCacheHitPath(t *testing.T) {
	files := loadgen.NewFileSet(1)
	s, addr, stop := startServer(t, Config{Files: files, Engine: runtime.ThreadPerFlow})
	defer stop()

	path := files.Path(0, 0, 1)
	get(t, addr, path) // miss, fills cache
	get(t, addr, path) // hit
	hits, misses, _ := s.CacheStats()
	if hits < 1 {
		t.Errorf("cache hits = %d, want >= 1", hits)
	}
	if misses < 1 {
		t.Errorf("cache misses = %d", misses)
	}
}

func TestAllEnginesServe(t *testing.T) {
	files := loadgen.NewFileSet(1)
	for _, kind := range []runtime.EngineKind{runtime.ThreadPerFlow, runtime.ThreadPool, runtime.EventDriven} {
		t.Run(kind.String(), func(t *testing.T) {
			_, addr, stop := startServer(t, Config{
				Files:         files,
				Engine:        kind,
				PoolSize:      4,
				SourceTimeout: 2 * time.Millisecond,
			})
			defer stop()
			status, _ := get(t, addr, files.Path(0, 1, 1))
			if status != 200 {
				t.Errorf("status = %d", status)
			}
		})
	}
}

func TestLoadGeneratorAgainstServer(t *testing.T) {
	if testing.Short() {
		t.Skip("load test")
	}
	files := loadgen.NewFileSet(1)
	s, addr, stop := startServer(t, Config{Files: files, Engine: runtime.ThreadPool, PoolSize: 16})
	defer stop()

	res := loadgen.RunWebLoad(context.Background(), loadgen.WebClientConfig{
		Addr:     addr,
		Clients:  8,
		Files:    files,
		Duration: 500 * time.Millisecond,
		Warmup:   50 * time.Millisecond,
		Seed:     42,
	})
	if res.Requests == 0 {
		t.Fatal("no requests completed")
	}
	if res.Latency.Count == 0 {
		t.Fatal("no latencies recorded")
	}
	if st := s.Stats().Snapshot(); st.Completed == 0 {
		t.Error("server saw no completed flows")
	}
}

func TestPathProfileOfWebServer(t *testing.T) {
	files := loadgen.NewFileSet(1)
	prof := profile.New()
	s, addr, stop := startServer(t, Config{Files: files, Engine: runtime.ThreadPerFlow, Profiler: prof})
	defer stop()

	path := files.Path(0, 0, 2)
	get(t, addr, path)
	get(t, addr, path)
	get(t, addr, "/dynamic?n=10")
	stop()

	g := s.Program().Graphs["Listen"]
	rows := prof.HotPaths(g, profile.ByCount, 0)
	if len(rows) == 0 {
		t.Fatal("no paths recorded")
	}
	var sawMiss, sawHit, sawDyn bool
	for _, r := range rows {
		if strings.Contains(r.Label, "ReadFile") {
			sawMiss = true
		}
		if strings.Contains(r.Label, "RunScript") {
			sawDyn = true
		}
		if r.Label == "Listen -> ReadRequest -> CheckCache -> SendResponse -> Complete" {
			sawHit = true
		}
	}
	if !sawMiss || !sawHit || !sawDyn {
		t.Errorf("paths missing (miss=%v hit=%v dyn=%v):\n%s",
			sawMiss, sawHit, sawDyn, prof.Report(g, profile.ByCount, 10))
	}
}

// TestAbruptClientDisconnects injects clients that vanish mid-exchange:
// after the storm the server must still serve normally and the cache
// must not be wedged by leaked references (the Cleanup handler's job).
func TestAbruptClientDisconnects(t *testing.T) {
	files := loadgen.NewFileSet(1)
	_, addr, stop := startServer(t, Config{
		Files:      files,
		Engine:     runtime.ThreadPool,
		PoolSize:   8,
		CacheBytes: 4096, // small: leaked references would wedge eviction
	})
	defer stop()

	path := files.Path(0, 0, 1)
	for i := 0; i < 50; i++ {
		conn, err := net.DialTimeout("tcp", addr, time.Second)
		if err != nil {
			t.Fatal(err)
		}
		switch i % 3 {
		case 0:
			// Send a request and slam the connection without reading.
			fmt.Fprintf(conn, "GET %s HTTP/1.1\r\nHost: t\r\n\r\n", path)
		case 1:
			// Half a request line.
			fmt.Fprintf(conn, "GET /half")
		case 2:
			// Nothing at all.
		}
		conn.Close()
	}

	// The server must still answer correctly afterwards.
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		status, body := get(t, addr, path)
		want, _ := files.Lookup(path)
		if status == 200 && body == string(want) {
			// Eviction must still work: fetch other files through the
			// tiny cache.
			for f := 2; f <= 5; f++ {
				p2 := files.Path(0, 0, f)
				if st, _ := get(t, addr, p2); st != 200 {
					t.Fatalf("post-storm fetch of %s: status %d", p2, st)
				}
			}
			return
		}
	}
	t.Fatal("server wedged after abrupt disconnects")
}
