package webserver

import (
	"bufio"
	"fmt"
	"strings"
	"testing"
)

func parse(t *testing.T, raw string) (*Request, error) {
	t.Helper()
	return ParseRequest(bufio.NewReader(strings.NewReader(raw)))
}

func TestParseRequestLimits(t *testing.T) {
	cases := []struct {
		name string
		raw  string
	}{
		{"oversized request line", "GET /" + strings.Repeat("a", MaxLineBytes) + " HTTP/1.1\r\n\r\n"},
		{"oversized header line", "GET / HTTP/1.1\r\nX-Pad: " + strings.Repeat("a", MaxLineBytes) + "\r\n\r\n"},
		{"too many headers", "GET / HTTP/1.1\r\n" + strings.Repeat("X-Pad: y\r\n", MaxHeaderLines+1) + "\r\n"},
		{"oversized body", fmt.Sprintf("POST /post HTTP/1.1\r\nContent-Length: %d\r\n\r\n", MaxBodyBytes+1)},
		{"negative body", "POST /post HTTP/1.1\r\nContent-Length: -1\r\n\r\n"},
		{"bad method", "DELETE /x HTTP/1.1\r\n\r\n"},
		{"bad protocol", "GET / SPDY/9\r\n\r\n"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := parse(t, tc.raw); err == nil {
				t.Error("accepted, want rejection")
			}
		})
	}
}

func TestParseRequestKeepsFraming(t *testing.T) {
	// Two pipelined requests, the first with a body: the second must
	// parse from exactly where the first ended.
	raw := "POST /post HTTP/1.1\r\nContent-Length: 4\r\n\r\nabcd" +
		"GET /dir0/class0_1.html HTTP/1.1\r\nConnection: close\r\n\r\n"
	br := bufio.NewReader(strings.NewReader(raw))
	first, err := ParseRequest(br)
	if err != nil {
		t.Fatal(err)
	}
	if !first.post || string(first.Body) != "abcd" {
		t.Errorf("first = %+v body %q", first, first.Body)
	}
	second, err := ParseRequest(br)
	if err != nil {
		t.Fatal(err)
	}
	if second.Method != "GET" || second.Path != "/dir0/class0_1.html" || second.KeepAlive {
		t.Errorf("second = %+v", second)
	}
}

func TestParseRequestGETBodyConsumedNotKept(t *testing.T) {
	raw := "GET /x HTTP/1.1\r\nContent-Length: 3\r\n\r\nxyz" +
		"GET /y HTTP/1.1\r\n\r\n"
	br := bufio.NewReader(strings.NewReader(raw))
	first, err := ParseRequest(br)
	if err != nil {
		t.Fatal(err)
	}
	if len(first.Body) != 0 {
		t.Errorf("GET kept body %q", first.Body)
	}
	second, err := ParseRequest(br)
	if err != nil {
		t.Fatal(err)
	}
	if second.Path != "/y" {
		t.Errorf("framing broken after GET body: %+v", second)
	}
}
