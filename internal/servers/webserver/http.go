package webserver

import (
	"bufio"
	"fmt"
	"strings"

	"github.com/flux-lang/flux/internal/servers/httpkit"
)

// Parser hardening limits (shared with the baseline servers via
// httpkit): a request that exceeds them is malformed and the connection
// is discarded, so one hostile client cannot balloon the server's
// memory.
const (
	// MaxHeaderLines bounds the header count per request.
	MaxHeaderLines = httpkit.MaxHeaderLines
	// MaxBodyBytes bounds the Content-Length a request may declare.
	MaxBodyBytes = httpkit.MaxBodyBytes
	// MaxLineBytes bounds one request or header line.
	MaxLineBytes = httpkit.MaxLineBytes
)

// ParseRequest reads one HTTP/1.1 request — request line, headers, and
// the Content-Length-delimited body when one is declared — from br. It
// is the framing step of every keep-alive round: after a successful
// return the reader is positioned exactly at the next request. It is a
// standalone function (not a Server method) so the fuzz harness can
// drive it directly.
func ParseRequest(br *bufio.Reader) (*Request, error) {
	line, err := httpkit.ReadLine(br)
	if err != nil {
		return nil, err // EOF, reset, or oversized: handled by Discard
	}
	fields := strings.Fields(strings.TrimSpace(line))
	if len(fields) != 3 {
		return nil, fmt.Errorf("webserver: malformed request line %q", line)
	}
	req := &Request{Method: fields[0]}
	switch req.Method {
	case "GET", "POST":
	default:
		return nil, fmt.Errorf("webserver: unsupported method %q", req.Method)
	}
	if !strings.HasPrefix(fields[2], "HTTP/1.") {
		return nil, fmt.Errorf("webserver: unsupported protocol %q", fields[2])
	}
	if i := strings.IndexByte(fields[1], '?'); i >= 0 {
		req.Path, req.Query = fields[1][:i], fields[1][i+1:]
	} else {
		req.Path = fields[1]
	}

	keepAlive, contentLen, err := httpkit.ReadHeaders(br)
	if err != nil {
		return nil, err
	}
	req.KeepAlive = keepAlive

	// Consume the declared body whatever the method, so keep-alive
	// framing survives; only POSTs keep it.
	body, err := httpkit.ReadBody(br, contentLen)
	if err != nil {
		return nil, err
	}
	if req.Method == "POST" {
		req.Body = body
	}

	req.post = req.Method == "POST"
	// POSTs are dynamic too: they bypass the response cache entirely.
	req.dynamic = req.post ||
		strings.HasPrefix(req.Path, "/dynamic") || strings.HasPrefix(req.Path, "/adrotate")
	req.cacheKey = req.Path
	return req, nil
}
