// Package webserver is the paper's HTTP/1.1 web server (§4.2) written as
// a Flux program: a 15-line coordination layer over sequential node
// functions. It serves the SPECweb99-like static corpus with an LFU
// response cache under Flux atomicity constraints, and dynamic pages
// through the FScript interpreter (the PHP substitute).
//
// Connection admission runs on the shared connection plane
// (internal/netkit): the plane's accept loop wraps each connection in
// pooled state and admits it through the runtime's external-admission
// path (Server.Inject via a pre-resolved SourceHandle), and keep-alive
// re-registration goes back through the same path — the Listen source
// exists only as the graph's root. With an admission watermark set, the
// plane watches the engine's queue-depth samples and sheds load past it:
// fresh connections get an explicit 503, keep-alive responses announce
// Connection: close, and every shed is counted on the Observer plane.
package webserver

import (
	"context"
	"errors"
	"fmt"
	"net"
	"os"
	"time"

	"github.com/flux-lang/flux/internal/core"
	"github.com/flux-lang/flux/internal/lang/parser"
	"github.com/flux-lang/flux/internal/lfu"
	"github.com/flux-lang/flux/internal/loadgen"
	"github.com/flux-lang/flux/internal/netkit"
	"github.com/flux-lang/flux/internal/runtime"
	"github.com/flux-lang/flux/internal/servers/httpkit"
	"github.com/flux-lang/flux/internal/servers/webserver/fscript"
	"github.com/flux-lang/flux/internal/telemetry"
)

// FluxSource is the web server's Flux program. Its shape follows the
// image server of Figure 2: a source, one abstract node, a three-way
// predicate dispatch (dynamic page, cache hit, cache miss), error
// handlers, and a cache constraint spanning the three cache-touching
// nodes.
const FluxSource = `
// concrete node signatures
Listen () => (conn c);
ReadRequest (conn c) => (conn c, bool close, http_req *req);
CheckCache (conn c, bool close, http_req *req) => (conn c, bool close, http_req *req);
ReadFile (conn c, bool close, http_req *req) => (conn c, bool close, http_req *req);
StoreInCache (conn c, bool close, http_req *req) => (conn c, bool close, http_req *req);
RunScript (conn c, bool close, http_req *req) => (conn c, bool close, http_req *req);
HandlePost (conn c, bool close, http_req *req) => (conn c, bool close, http_req *req);
SendResponse (conn c, bool close, http_req *req) => (conn c, bool close, http_req *req);
Complete (conn c, bool close, http_req *req) => ();
Discard (conn c) => ();
FourOhFour (conn c, bool close, http_req *req) => ();
Cleanup (conn c, bool close, http_req *req) => ();

// request flow
source Listen => Page;
Page = ReadRequest -> CheckCache -> Handler -> SendResponse -> Complete;

// predicate dispatch: POSTs run the form handler, dynamic pages run the
// script engine, cache hits pass through, misses read and cache the file
typedef post TestPost;
typedef dynamic TestDynamic;
typedef hit TestInCache;
Handler:[_, _, post] = HandlePost;
Handler:[_, _, dynamic] = RunScript;
Handler:[_, _, hit] = ;
Handler:[_, _, _] = ReadFile -> StoreInCache;

// error handling
handle error ReadRequest => Discard;
handle error ReadFile => FourOhFour;
handle error SendResponse => Cleanup;

// atomicity constraints guard the shared response cache
atomic CheckCache:{cache};
atomic StoreInCache:{cache};
atomic Complete:{cache};
atomic Cleanup:{cache};
`

// Request is the per-request state flowing through the graph (the
// paper's http_req struct).
type Request struct {
	Method    string
	Path      string
	Query     string
	Body      []byte // POST payload (Content-Length-delimited)
	KeepAlive bool

	post     bool
	dynamic  bool
	hit      bool
	stored   bool // this flow inserted the cache entry (owns one reference)
	cacheKey string
	// response is the fully rendered reply — the dynamic/POST fallback
	// path, and every response in CopyWrites mode.
	response []byte
	// body is a static response's payload, served zero-copy: the header
	// comes from httpkit's shared blob cache and body goes out in the
	// same writev(2), never assembled into a contiguous response.
	body []byte
	// fileName/fileSize describe a large static body served from the
	// materialized corpus with sendfile(2); body stays nil.
	fileName string
	fileSize int64
}

// Config tunes the server.
type Config struct {
	// Addr is the TCP listen address (default "127.0.0.1:0").
	Addr string
	// Files is the static corpus (default: 1-directory SPECweb set).
	Files *loadgen.FileSet
	// CacheBytes bounds the response cache (default 64 MB).
	CacheBytes int64
	// Engine selects the Flux runtime (§3.2).
	Engine runtime.EngineKind
	// PoolSize is the worker count for the thread-pool engine.
	PoolSize int
	// SourceTimeout is the event engine's source polling deadline.
	SourceTimeout time.Duration
	// Profiler, when non-nil, receives path/node observations.
	Profiler runtime.Profiler
	// Observer, when non-nil, joins the runtime's observer plane: flow
	// terminals, queue depths, and the connection plane's shed events.
	Observer runtime.Observer
	// Telemetry, when non-nil, rides the observer plane alongside
	// Observer (composed, never replacing it) and receives the
	// connection plane's admission counters under the server's name.
	Telemetry *telemetry.Telemetry
	// MaxKeepAlive bounds requests per connection (default 100).
	MaxKeepAlive int
	// ScriptWork is the loop bound handed to dynamic pages (default
	// 2000), controlling per-request CPU like the paper's PHP pages.
	ScriptWork int
	// Dispatch selects how dynamic pages render. The zero value is
	// compiled-first (native Go generated by fluxc -fscript, with the
	// interpreter as fallback); experiments force the interpreter —
	// with or without the fragment cache — to measure the tax.
	Dispatch fscript.Dispatch
	// AdmitWatermark, when > 0, bounds admission: once the engine's
	// sampled queue depths sum past it, fresh connections are shed with
	// a 503 and keep-alive responses announce Connection: close until
	// the backlog drains. 0 admits unboundedly (the pre-overload-control
	// behavior).
	AdmitWatermark int
	// MaxConns, when > 0, caps live connections; accepts beyond it are
	// shed with a 503. The queue-depth watermark reacts to backlog with
	// sampling lag, so a reconnect burst in a between-samples window can
	// overshoot it; the cap bounds that burst.
	MaxConns int
	// QueueSample overrides the queue-depth sampling period (default
	// 5ms with an AdmitWatermark — admission control needs a fresh
	// signal — else the runtime's 100ms).
	QueueSample time.Duration
	// TargetP95, when > 0, puts admission under the SLO controller
	// instead of a hand-picked bound: served latency is measured on the
	// Observer plane (completed flows' elapsed time) and every control
	// interval the watermark — and the connection cap, 2× it — takes one
	// AIMD step to hold the window's p95 at the target. AdmitWatermark
	// becomes merely the starting point (default 64 when unset).
	TargetP95 time.Duration
	// HeaderTimeout, when > 0, bounds reading a fresh connection's
	// request head: a client that dials and trickles bytes (slow loris)
	// is disconnected and counted as a shed instead of pinning a worker
	// forever.
	HeaderTimeout time.Duration
	// IdleTimeout, when > 0, bounds the wait for the next request on a
	// keep-alive connection; dead peers are reaped and counted the same
	// way.
	IdleTimeout time.Duration
	// WriteTimeout, when > 0, bounds every response write: a dead or
	// zero-window client (write-side slow loris) stalls a response for
	// at most this long before the write fails, the connection is torn
	// down, and the shed is counted — the write-side twin of
	// HeaderTimeout/IdleTimeout.
	WriteTimeout time.Duration
	// ListenShards, when > 1, opens that many SO_REUSEPORT accept
	// shards (one accept loop each) so accepted connections spread
	// across cores at the socket layer — pair it with the steal
	// engine's dispatcher count. Platforms without SO_REUSEPORT fall
	// back to a single listener and serve identically.
	ListenShards int
	// CopyWrites forces the legacy render path — every response
	// assembled contiguously (fmt-rendered header + body copy) and
	// written with a single Write — instead of the zero-copy
	// writev/sendfile path. It exists for the copy-vs-zero-copy
	// experiment; production configurations leave it false.
	CopyWrites bool
	// SendfileFrom is the body size (bytes) from which static responses
	// stream via sendfile(2) — requires the FileSet to be Materialized;
	// smaller bodies and unmaterialized corpora use the writev path.
	// Default 64 KB; negative disables sendfile entirely.
	SendfileFrom int
}

// Server is a runnable Flux web server, driven through the same
// lifecycle as the runtime underneath: Start, Shutdown, Wait — or Run.
type Server struct {
	cfg   Config
	prog  *core.Program
	rt    *runtime.Server
	cp    *netkit.FluxPlane
	ctrl  *netkit.Controller
	cache *lfu.Cache
	pages *fscript.BenchPages
}

// New compiles the Flux program, binds the node implementations, and
// opens the listener. Call Run to serve.
func New(cfg Config) (*Server, error) {
	if cfg.Files == nil {
		cfg.Files = loadgen.NewFileSet(1)
	}
	if cfg.CacheBytes <= 0 {
		cfg.CacheBytes = 64 << 20
	}
	if cfg.MaxKeepAlive <= 0 {
		cfg.MaxKeepAlive = 100
	}
	if cfg.ScriptWork <= 0 {
		cfg.ScriptWork = 2000
	}
	if cfg.SendfileFrom == 0 {
		cfg.SendfileFrom = 64 << 10
	}
	if cfg.TargetP95 > 0 && cfg.AdmitWatermark <= 0 {
		cfg.AdmitWatermark = 64 // the controller's starting point, not a tuning decision
	}
	if cfg.QueueSample <= 0 && cfg.AdmitWatermark > 0 {
		cfg.QueueSample = 5 * time.Millisecond
	}

	astProg, err := parser.Parse("webserver.flux", FluxSource)
	if err != nil {
		return nil, fmt.Errorf("webserver: parse: %w", err)
	}
	prog, err := core.Build(astProg)
	if err != nil {
		return nil, fmt.Errorf("webserver: compile: %w", err)
	}

	pages, err := fscript.NewBenchPages()
	if err != nil {
		return nil, fmt.Errorf("webserver: dynamic templates: %w", err)
	}
	pages.SetDispatch(cfg.Dispatch)

	s := &Server{
		cfg:   cfg,
		prog:  prog,
		cache: lfu.New(cfg.CacheBytes),
		pages: pages,
	}
	if cfg.Telemetry != nil {
		cfg.Observer = runtime.MultiObserver(cfg.Observer, cfg.Telemetry)
	}
	gate, obs := netkit.NewGateObserver(cfg.AdmitWatermark, cfg.Observer)
	if cfg.TargetP95 > 0 {
		// The controller joins the observer chain now (FlowDone is its
		// input signal) and meets the plane after the runtime exists.
		ctrl, err := netkit.NewController(netkit.ControllerConfig{
			Target: cfg.TargetP95,
			// Tighter than the netkit defaults: a 50ms period detects an
			// overshoot one window after it starts, and probing up by 4
			// admits a burst small enough that its queueing delay stays
			// inside the SLO band instead of spiking served p95 (the AIMD
			// limit cycle's amplitude is the up-step's queueing cost).
			Interval: 50 * time.Millisecond,
			Step:     4,
			Kind:     cfg.Engine,
			Sink:     cfg.Observer,
		}, gate, nil)
		if err != nil {
			return nil, fmt.Errorf("webserver: %w", err)
		}
		s.ctrl = ctrl
		obs = runtime.MultiObserver(obs, ctrl)
	}

	b := runtime.NewBindings().
		BindSource("Listen", s.listen).
		BindNode("ReadRequest", s.readRequest).
		BindNode("CheckCache", s.checkCache).
		BindNode("ReadFile", s.readFile).
		BindNode("StoreInCache", s.storeInCache).
		BindNode("RunScript", s.runScript).
		BindNode("HandlePost", s.handlePost).
		BindNode("SendResponse", s.sendResponse).
		BindNode("Complete", s.complete).
		BindNode("Discard", s.discard).
		BindNode("FourOhFour", s.fourOhFour).
		BindNode("Cleanup", s.cleanup).
		BindPredicate("TestPost", func(v any) bool { return v.(*Request).post }).
		BindPredicate("TestDynamic", func(v any) bool { return v.(*Request).dynamic }).
		BindPredicate("TestInCache", func(v any) bool { return v.(*Request).hit }).
		// Dynamic pages and POSTs burn interpreter CPU, so they ride the
		// blocking path with the socket I/O nodes: the event engine
		// offloads them instead of stalling its dispatcher.
		MarkBlocking("ReadRequest", "SendResponse", "RunScript", "HandlePost")

	rt, err := runtime.New(prog, b,
		runtime.WithEngine(cfg.Engine),
		runtime.WithPoolSize(cfg.PoolSize),
		runtime.WithSourceTimeout(cfg.SourceTimeout),
		runtime.WithProfiler(cfg.Profiler),
		runtime.WithObserver(obs),
		runtime.WithQueueSampleInterval(cfg.QueueSample),
		// Admission is external (the connection plane injects every
		// flow), so the server must outlive its instantly-exhausted
		// source.
		runtime.WithKeepAlive(),
	)
	if err != nil {
		return nil, err
	}
	s.rt = rt
	s.cp, err = netkit.NewFluxPlane(rt, "Listen", netkit.Config{
		Addr:         cfg.Addr,
		Gate:         gate,
		MaxConns:     cfg.MaxConns,
		ShedResponse: httpkit.Unavailable(),
		WriteTimeout: cfg.WriteTimeout,
		ListenShards: cfg.ListenShards,
		Observer:     obs,
		Name:         "webserver",
	})
	if err != nil {
		return nil, err
	}
	if s.ctrl != nil {
		s.ctrl.BindPlane(s.cp.Plane())
	}
	if cfg.Telemetry != nil {
		pl := s.cp.Plane()
		cfg.Telemetry.RegisterConns("webserver", func() telemetry.ConnStats {
			st := pl.Stats()
			return telemetry.ConnStats{Accepted: st.Accepted, Admitted: st.Admitted, Shed: st.Shed, Live: st.Live}
		})
		cfg.Telemetry.RegisterDynPages("webserver", func() telemetry.DynPageStats {
			st := pages.DynStats()
			return telemetry.DynPageStats{Compiled: st.Compiled, Interpreted: st.Interpreted, FragHits: st.FragHits, FragMisses: st.FragMisses}
		})
	}
	return s, nil
}

// Addr returns the bound listen address.
func (s *Server) Addr() string { return s.cp.Addr() }

// Program exposes the compiled Flux program (for DOT output, simulation,
// and profiling reports).
func (s *Server) Program() *core.Program { return s.prog }

// Pages exposes the dynamic-page engine (dispatch mode and counters,
// for the benchmark harness's compiled-path assertion).
func (s *Server) Pages() *fscript.BenchPages { return s.pages }

// Stats exposes the runtime's flow counters.
func (s *Server) Stats() *runtime.Stats { return s.rt.Stats() }

// PlaneStats exposes the connection plane's admission counters.
func (s *Server) PlaneStats() netkit.StatsSnapshot { return s.cp.PlaneStats() }

// Gate exposes the admission gate (nil without an AdmitWatermark) —
// the overload signal, for harnesses and tests.
func (s *Server) Gate() *netkit.Gate { return s.cp.Gate() }

// Controller exposes the SLO controller (nil without a TargetP95).
func (s *Server) Controller() *netkit.Controller { return s.ctrl }

// CacheStats exposes hit/miss/eviction counters.
func (s *Server) CacheStats() (hits, misses, evictions uint64) { return s.cache.Stats() }

// Start launches the Flux runtime, the connection plane's accept loop,
// and (with a TargetP95) the SLO control loop, returning once all are
// running. The server then serves until the context is cancelled or
// Shutdown is called.
func (s *Server) Start(ctx context.Context) error {
	if err := s.cp.Start(ctx); err != nil {
		return err
	}
	if s.ctrl != nil {
		s.ctrl.Start(ctx)
	}
	return nil
}

// Shutdown gracefully stops the server: the plane stops accepting and
// interrupts every live connection (so flows blocked reading idle
// keep-alive clients reach their error terminals), then the Flux
// runtime stops admitting and drains in-flight flows until their
// terminals or ctx expires. Keep-alive re-registrations racing the
// shutdown are refused by Inject and their connections dropped — and
// counted, via the Observer plane. The control loop stops first — a
// controller stepping the watermark while the plane drains would fight
// the shutdown.
func (s *Server) Shutdown(ctx context.Context) error {
	if s.ctrl != nil {
		s.ctrl.Stop()
	}
	return s.cp.Shutdown(ctx)
}

// Wait blocks until the run ends and returns its error.
func (s *Server) Wait() error { return s.cp.Wait() }

// Run serves until the context is cancelled: Start followed by Wait.
func (s *Server) Run(ctx context.Context) error {
	if err := s.Start(ctx); err != nil {
		return err
	}
	return s.Wait()
}

// --- node implementations --------------------------------------------------

// listen is the graph's source node. The connection plane owns accept
// and admission: every flow — fresh connection or keep-alive
// re-registration — enters through Inject on this source's graph, so
// the source itself retires immediately and the runtime's keep-alive
// mode holds the server open for injections.
func (s *Server) listen(fl *runtime.Flow) (runtime.Record, error) {
	return nil, runtime.ErrStop
}

// readRequest parses one HTTP/1.1 request from the connection. The
// connection's last response is decided here: the client asked to
// close, the keep-alive cap is reached, or the admission gate reports
// overload — in which case announcing Connection: close sheds this
// conversation instead of queueing its future requests unboundedly.
func (s *Server) readRequest(fl *runtime.Flow, in runtime.Record) (runtime.Record, error) {
	c := in[0].(*netkit.Conn)
	// Slow-loris hardening: a fresh connection gets HeaderTimeout to
	// deliver its request head, a keep-alive conversation IdleTimeout to
	// produce its next request. Either deadline popping is the server's
	// decision, not the client's failure — counted as a shed before the
	// error route (Discard) closes the connection.
	limit := s.cfg.HeaderTimeout
	if c.Served > 0 {
		limit = s.cfg.IdleTimeout
	}
	if limit > 0 {
		_ = c.SetReadDeadline(time.Now().Add(limit))
	}
	req, err := ParseRequest(c.Reader())
	if err != nil {
		var ne net.Error
		if errors.As(err, &ne) && ne.Timeout() {
			s.cp.CountShed("timeout")
		}
		return nil, err // EOF, reset, timeout, or malformed: handled by Discard
	}
	if limit > 0 {
		_ = c.SetReadDeadline(time.Time{})
	}
	closeAfter := !req.KeepAlive || c.Served+1 >= s.cfg.MaxKeepAlive || s.cp.Overloaded()
	return runtime.Record{c, closeAfter, req}, nil
}

// checkCache looks up the static body for static paths; the "cache"
// constraint serializes it against StoreInCache and Complete. The cache
// holds bare bodies, not rendered responses: the header is a shared
// immutable blob chosen at send time, so hits and misses serve the same
// bytes with no per-response assembly.
func (s *Server) checkCache(fl *runtime.Flow, in runtime.Record) (runtime.Record, error) {
	req := in[2].(*Request)
	if req.dynamic {
		return in, nil
	}
	if body, ok := s.cache.Get(req.cacheKey); ok {
		req.hit = true
		req.body = body
	}
	return in, nil
}

// readFile fetches the static file, failing (to FourOhFour) on unknown
// paths. Large bodies from a materialized corpus are flagged for
// sendfile(2) and bypass the response cache — the kernel's page cache
// already holds them, so caching a user-space copy would only pay the
// copy tax back.
func (s *Server) readFile(fl *runtime.Flow, in runtime.Record) (runtime.Record, error) {
	req := in[2].(*Request)
	body, ok := s.cfg.Files.Lookup(req.Path)
	if !ok {
		return nil, fmt.Errorf("webserver: no such file %q", req.Path)
	}
	if !s.cfg.CopyWrites && s.cfg.SendfileFrom > 0 && len(body) >= s.cfg.SendfileFrom {
		if name, size, ok := s.cfg.Files.DiskPath(req.Path); ok {
			req.fileName, req.fileSize = name, size
			return in, nil
		}
	}
	req.body = body
	return in, nil
}

// storeInCache publishes the static body (sendfile-served bodies are
// never cached; their flows carry no body).
func (s *Server) storeInCache(fl *runtime.Flow, in runtime.Record) (runtime.Record, error) {
	req := in[2].(*Request)
	if req.body != nil {
		s.cache.Put(req.cacheKey, req.body)
		req.stored = true
	}
	return in, nil
}

// runScript renders a dynamic page through FScript: the CPU-burning
// work page under /dynamic, the SPECweb99-style ad-rotation page under
// /adrotate. The page renders into a pooled buffer — compiled-first,
// so the common case appends straight HTML with no interpreter in the
// path and no per-request allocation beyond the response itself.
func (s *Server) runScript(fl *runtime.Flow, in runtime.Record) (runtime.Record, error) {
	req := in[2].(*Request)
	buf := fscript.GetBuf()
	out, err := s.pages.RenderTo(buf.B, req.Path, req.Query, int64(s.cfg.ScriptWork))
	buf.B = out[:0]
	if err != nil {
		fscript.PutBuf(buf)
		return nil, err
	}
	req.response = renderResponse(200, "OK", "text/html", out)
	fscript.PutBuf(buf)
	return in, nil
}

// handlePost answers a form POST: the SPECweb99 analogue logs the
// submission server-side and returns a small confirmation page.
func (s *Server) handlePost(fl *runtime.Flow, in runtime.Record) (runtime.Record, error) {
	req := in[2].(*Request)
	req.response = httpkit.RenderPostConfirm(req.Path, len(req.Body))
	return in, nil
}

// sendResponse writes the response to the client. Static bodies take
// the zero-copy path: the immutable header blob and the cached body go
// out in one writev(2), and large materialized bodies stream with
// sendfile(2) — the bytes never assembled into a contiguous response.
// Rendered responses (dynamic pages, POSTs) and CopyWrites mode keep
// the single contiguous Write. When this is the connection's last
// response, Connection: close is announced (baked into the static
// header variant; copied in on rendered responses) so keep-alive
// clients reconnect instead of failing. A write deadline popping means
// a dead or zero-window client: the connection is torn down by the
// plane-level write path and the shed is counted here.
func (s *Server) sendResponse(fl *runtime.Flow, in runtime.Record) (runtime.Record, error) {
	c := in[0].(*netkit.Conn)
	closeAfter := in[1].(bool)
	req := in[2].(*Request)
	var err error
	switch {
	case req.response != nil:
		resp := req.response
		if closeAfter {
			resp = withCloseHeader(resp)
		}
		_, err = c.Write(resp)
	case req.fileName != "":
		head := httpkit.StaticHeader(200, "OK", "text/html", int(req.fileSize), closeAfter)
		var f *os.File
		if f, err = os.Open(req.fileName); err == nil {
			err = c.SendFile(head, f, req.fileSize)
			f.Close()
		}
	case req.body != nil:
		head := httpkit.StaticHeader(200, "OK", "text/html", len(req.body), closeAfter)
		if s.cfg.CopyWrites {
			// The experiment's "before" arm: one user-space copy into a
			// contiguous response, one Write.
			resp := make([]byte, 0, len(head)+len(req.body))
			resp = append(append(resp, head...), req.body...)
			_, err = c.Write(resp)
		} else {
			err = c.WriteVec(head, req.body)
		}
	default:
		return nil, errors.New("webserver: no response rendered")
	}
	if err != nil {
		var ne net.Error
		if errors.As(err, &ne) && ne.Timeout() {
			s.cp.CountShed("write-timeout")
		}
		return nil, err
	}
	return in, nil
}

// withCloseHeader announces the close on a connection's final response
// (cached responses stay header-free; httpkit copies).
func withCloseHeader(resp []byte) []byte { return httpkit.WithCloseHeader(resp) }

// complete releases the cache reference and either closes the connection
// or re-registers it for the next keep-alive request — through the same
// Inject path fresh connections take, so external admission is the one
// and only way into the graph. A refused re-registration (the server is
// draining) drops the connection through the plane, which counts it.
func (s *Server) complete(fl *runtime.Flow, in runtime.Record) (runtime.Record, error) {
	c := in[0].(*netkit.Conn)
	closeAfter := in[1].(bool)
	req := in[2].(*Request)
	if req.hit || req.stored {
		s.cache.Release(req.cacheKey)
	}
	c.Served++
	if closeAfter {
		c.Close()
		return nil, nil
	}
	s.cp.Reinject(c)
	return nil, nil
}

// discard closes a connection whose request could not be read (client
// disconnect ends every keep-alive conversation this way).
func (s *Server) discard(fl *runtime.Flow, in runtime.Record) (runtime.Record, error) {
	in[0].(*netkit.Conn).Close()
	return nil, nil
}

// cleanup releases the flow's cache reference and closes the connection
// when the response could not be delivered; without it a vanished client
// would leak a reference count and pin the entry in the cache forever.
func (s *Server) cleanup(fl *runtime.Flow, in runtime.Record) (runtime.Record, error) {
	c := in[0].(*netkit.Conn)
	req := in[2].(*Request)
	if req.hit || req.stored {
		s.cache.Release(req.cacheKey)
	}
	c.Close()
	return nil, nil
}

// fourOhFour answers unknown paths and closes (with the close
// announced, so a keep-alive client reconnects cleanly).
func (s *Server) fourOhFour(fl *runtime.Flow, in runtime.Record) (runtime.Record, error) {
	c := in[0].(*netkit.Conn)
	body := []byte("<html><body><h1>404 Not Found</h1></body></html>")
	_ = c.WriteVec(httpkit.StaticHeader(404, "Not Found", "text/html", len(body), true), body)
	c.Close()
	return nil, nil
}

// renderResponse builds a complete HTTP/1.1 response.
func renderResponse(code int, status, ctype string, body []byte) []byte {
	return httpkit.Render(code, status, ctype, body)
}
