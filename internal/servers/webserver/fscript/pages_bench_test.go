package fscript

import "testing"

// The dynamic-page dispatch benchmarks, run at the macro benchmark's
// default work=2000. The compiled path is the tentpole: native Go, zero
// allocations; the interpreted path is the seed behavior it replaces;
// the cached path is the interpreter behind the LFU fragment cache (the
// non-compilable fallback configuration).

func benchRender(b *testing.B, mode Dispatch) {
	pages, err := NewBenchPages()
	if err != nil {
		b.Fatal(err)
	}
	pages.SetDispatch(mode)
	if mode == DispatchCompiled && !pages.CompiledActive() {
		b.Fatal("compiled path inactive (stale pages_compiled.go?)")
	}
	buf := GetBuf()
	defer PutBuf(buf)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out, err := pages.RenderTo(buf.B, "/dynamic", "", 2000)
		if err != nil {
			b.Fatal(err)
		}
		buf.B = out[:0]
	}
}

func BenchmarkDynamicPageCompiled(b *testing.B)    { benchRender(b, DispatchCompiled) }
func BenchmarkDynamicPageInterpreted(b *testing.B) { benchRender(b, DispatchInterpretRaw) }
func BenchmarkDynamicPageFragCached(b *testing.B)  { benchRender(b, DispatchInterpret) }

// BenchmarkDynamicAdCompiled exercises the three-input page with query
// parsing in the path, as the servers run it.
func BenchmarkDynamicAdCompiled(b *testing.B) {
	pages, err := NewBenchPages()
	if err != nil {
		b.Fatal(err)
	}
	buf := GetBuf()
	defer PutBuf(buf)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out, err := pages.RenderTo(buf.B, "/adrotate", "u=7", 2000)
		if err != nil {
			b.Fatal(err)
		}
		buf.B = out[:0]
	}
}

// BenchmarkQueryParam pins the allocation-free parameter scan.
func BenchmarkQueryParam(b *testing.B) {
	query := "class=2&n=2000&u=42&session=9f3"
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if QueryParam(query, "u") != "42" {
			b.Fatal("wrong value")
		}
	}
}
