package fscript

import (
	"bytes"
	"errors"
	"math/rand"
	"strconv"
	"testing"

	"github.com/flux-lang/flux/internal/lfu"
)

// interpretPage runs the AST interpreter with the given int bindings.
func interpretPage(t *testing.T, p *Page, stepLimit int64, vars map[string]int64) ([]byte, error) {
	t.Helper()
	var env Env
	env.StepLimit = stepLimit
	for k, v := range vars {
		env.SetInt(k, v)
	}
	return p.ExecuteInto(&env, nil)
}

// compilePage runs the registered compiled form with the same bindings.
func compilePage(t *testing.T, src string, stepLimit int64, vars map[string]int64) ([]byte, error) {
	t.Helper()
	fn, ok := CompiledFor(src)
	if !ok {
		t.Fatalf("no compiled form registered (stale pages_compiled.go? run go generate)")
	}
	var env Env
	env.StepLimit = stepLimit
	for k, v := range vars {
		env.SetInt(k, v)
	}
	return fn(&env, nil)
}

// TestCompiledRegistered is the cheap staleness tripwire: both benchmark
// templates must resolve in the registry, which keys on the exact
// template bytes pages_compiled.go was generated from.
func TestCompiledRegistered(t *testing.T) {
	if _, ok := CompiledFor(BenchWorkPage); !ok {
		t.Error("BenchWorkPage has no compiled form: pages_compiled.go is stale")
	}
	if _, ok := CompiledFor(BenchAdPage); !ok {
		t.Error("BenchAdPage has no compiled form: pages_compiled.go is stale")
	}
}

// TestCompiledParitySweep drives both benchmark pages through the
// interpreter and the compiled form over a randomized seeded sweep of
// (work, user, rot) — including zero, negative, and large values — and
// requires byte-identical output.
func TestCompiledParitySweep(t *testing.T) {
	work, err := Parse(BenchWorkPage)
	if err != nil {
		t.Fatal(err)
	}
	ad, err := Parse(BenchAdPage)
	if err != nil {
		t.Fatal(err)
	}

	rng := rand.New(rand.NewSource(42))
	works := []int64{0, 1, 2, 7, 97, 1000}
	users := []int64{0, 1, -1, -2, -9, 7, 8, -8, 1 << 40, -(1 << 40)}
	rots := []int64{0, 1, 2, 7, 8, 9, -3, 1 << 20}
	for i := 0; i < 200; i++ {
		works = append(works, rng.Int63n(3000))
		users = append(users, rng.Int63()-rng.Int63())
		rots = append(rots, rng.Int63n(1<<30))
	}

	for i := range works {
		w := works[i%len(works)]
		u := users[i%len(users)]
		r := rots[i%len(rots)]

		want, err := interpretPage(t, work, 0, map[string]int64{"work": w})
		if err != nil {
			t.Fatalf("interpret work(%d): %v", w, err)
		}
		got, err := compilePage(t, BenchWorkPage, 0, map[string]int64{"work": w})
		if err != nil {
			t.Fatalf("compiled work(%d): %v", w, err)
		}
		if !bytes.Equal(want, got) {
			t.Fatalf("work page diverged at work=%d:\ninterp: %q\ncompiled: %q", w, want, got)
		}

		vars := map[string]int64{"work": w, "user": u, "rot": r}
		want, err = interpretPage(t, ad, 0, vars)
		if err != nil {
			t.Fatalf("interpret ad(%d,%d,%d): %v", w, u, r, err)
		}
		got, err = compilePage(t, BenchAdPage, 0, vars)
		if err != nil {
			t.Fatalf("compiled ad(%d,%d,%d): %v", w, u, r, err)
		}
		if !bytes.Equal(want, got) {
			t.Fatalf("ad page diverged at work=%d user=%d rot=%d:\ninterp: %q\ncompiled: %q", w, u, r, want, got)
		}
	}
}

// TestCompiledStepLimitParity sweeps tight step budgets across the abort
// boundary: for every budget the compiled form and the interpreter must
// agree on whether the page aborts, and on the bytes when it does not.
func TestCompiledStepLimitParity(t *testing.T) {
	work, err := Parse(BenchWorkPage)
	if err != nil {
		t.Fatal(err)
	}
	for limit := int64(1); limit < 80; limit++ {
		want, ierr := interpretPage(t, work, limit, map[string]int64{"work": 10})
		got, cerr := compilePage(t, BenchWorkPage, limit, map[string]int64{"work": 10})
		if (ierr != nil) != (cerr != nil) {
			t.Fatalf("limit=%d: interpreter err=%v, compiled err=%v", limit, ierr, cerr)
		}
		if ierr != nil {
			if !errors.Is(ierr, ErrStepLimit) || !errors.Is(cerr, ErrStepLimit) {
				t.Fatalf("limit=%d: wrong abort errors: %v / %v", limit, ierr, cerr)
			}
			continue
		}
		if !bytes.Equal(want, got) {
			t.Fatalf("limit=%d: output diverged", limit)
		}
	}
}

// TestCompiledDeclinesBeforeOutput: a compiled page whose env is missing
// an input (or holds a string where an integer was compiled) must return
// ErrNotCompiled without appending anything, so the caller's fallback
// starts from a clean buffer.
func TestCompiledDeclinesBeforeOutput(t *testing.T) {
	fn, ok := CompiledFor(BenchAdPage)
	if !ok {
		t.Fatal("no compiled ad page")
	}
	var env Env
	env.SetInt("work", 5) // user, rot missing
	prefix := []byte("sentinel")
	out, err := fn(&env, prefix)
	if !errors.Is(err, ErrNotCompiled) {
		t.Fatalf("err = %v, want ErrNotCompiled", err)
	}
	if !bytes.Equal(out, prefix) {
		t.Fatalf("compiled page wrote before declining: %q", out)
	}

	env.Reset()
	env.SetInt("work", 5)
	env.SetInt("user", 1)
	env.Set("rot", StrVal("7")) // string where an int was compiled
	out, err = fn(&env, prefix)
	if !errors.Is(err, ErrNotCompiled) {
		t.Fatalf("string-typed input: err = %v, want ErrNotCompiled", err)
	}
	if !bytes.Equal(out, prefix) {
		t.Fatalf("compiled page wrote before declining: %q", out)
	}
}

// TestRenderFallbackOnUncompilable: when the compiled form declines at
// runtime, render must fall back to the interpreter and produce its
// exact output — the regression guard for the uncompilable-script path.
func TestRenderFallbackOnUncompilable(t *testing.T) {
	b, err := NewBenchPages()
	if err != nil {
		t.Fatal(err)
	}
	// Force the compiled work page to decline every call.
	declines := 0
	b.workC = func(env *Env, out []byte) ([]byte, error) {
		declines++
		return out, ErrNotCompiled
	}
	out, err := b.Render("/dynamic", "n=10", 2000)
	if err != nil {
		t.Fatal(err)
	}
	p, err := Parse(BenchWorkPage)
	if err != nil {
		t.Fatal(err)
	}
	want, err := interpretPage(t, p, 0, map[string]int64{"work": 10})
	if err != nil {
		t.Fatal(err)
	}
	if out != string(want) {
		t.Fatalf("fallback output diverged:\ngot:  %q\nwant: %q", out, want)
	}
	if declines != 1 {
		t.Fatalf("compiled stub called %d times, want 1", declines)
	}
	st := b.DynStats()
	if st.Compiled != 0 || st.Interpreted != 1 || st.FragMisses != 1 {
		t.Fatalf("stats after fallback = %+v", st)
	}
	// Second render of the same inputs: served from the fragment cache,
	// never reaching the interpreter again.
	out2, err := b.Render("/dynamic", "n=10", 2000)
	if err != nil {
		t.Fatal(err)
	}
	if out2 != out {
		t.Fatal("cached fallback output diverged")
	}
	if st := b.DynStats(); st.FragHits != 1 || st.Interpreted != 1 {
		t.Fatalf("stats after cached fallback = %+v", st)
	}
}

// TestRenderCompiledCounts: the default dispatch serves from the
// compiled path and counts it.
func TestRenderCompiledCounts(t *testing.T) {
	b, err := NewBenchPages()
	if err != nil {
		t.Fatal(err)
	}
	if !b.CompiledActive() {
		t.Fatal("compiled path inactive")
	}
	if _, err := b.Render("/dynamic", "n=10", 2000); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Render("/adrotate", "u=3&n=10", 2000); err != nil {
		t.Fatal(err)
	}
	st := b.DynStats()
	if st.Compiled != 2 || st.Interpreted != 0 {
		t.Fatalf("stats = %+v, want 2 compiled", st)
	}
}

// TestFragmentCacheBuckets pins the cache-key correctness subtlety: the
// ad page consumes the rotation only through (user+rot)%8 in Go's
// truncated-modulo semantics, so congruent sums of different sign are
// DIFFERENT ads and must occupy different cache entries, while equal
// residues share one.
func TestFragmentCacheBuckets(t *testing.T) {
	b, err := NewBenchPages()
	if err != nil {
		t.Fatal(err)
	}
	b.SetDispatch(DispatchInterpret)

	render := func(work, user, rot int64) string {
		out, err := b.render(b.ad, nil, nil, work, user, rot, true)
		if err != nil {
			t.Fatal(err)
		}
		return string(out)
	}

	// (-3+1)%8 = -2 and (5+1)%8 = 6 are congruent mod 8 but render
	// different ads; a key on a normalized residue would alias them.
	neg := render(5, -3, 1)
	pos := render(5, 5, 1)
	if neg == pos {
		t.Fatal("negative and positive residues aliased in the fragment cache")
	}
	if h, m, _ := b.frag.Stats(); h != 0 || m != 2 {
		t.Fatalf("hits=%d misses=%d, want 0/2", h, m)
	}

	// Same user, different rot with equal residue: (7+1)%8 = (7+9)%8 =
	// 0, identical page, one cache entry — the second render is a hit.
	a := render(5, 7, 1)
	bb := render(5, 7, 9)
	if a != bb {
		t.Fatal("equal residues rendered differently")
	}
	if h, _, _ := b.frag.Stats(); h != 1 {
		t.Fatalf("hits=%d, want 1 (rot must fold into the residue)", h)
	}
}

// TestFragmentCacheEviction: a fragment cache bounded below the working
// set must evict (counters say so) while every render stays correct.
func TestFragmentCacheEviction(t *testing.T) {
	b, err := NewBenchPages()
	if err != nil {
		t.Fatal(err)
	}
	b.SetDispatch(DispatchInterpret)
	b.frag = lfu.NewLocked(256) // a few fragments at most

	p, err := Parse(BenchWorkPage)
	if err != nil {
		t.Fatal(err)
	}
	for w := int64(1); w <= 64; w++ {
		got, err := b.render(b.work, nil, nil, w, 0, 0, false)
		if err != nil {
			t.Fatal(err)
		}
		want, err := interpretPage(t, p, 0, map[string]int64{"work": w})
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("work=%d: evicting cache corrupted output", w)
		}
	}
	if _, _, ev := b.frag.Stats(); ev == 0 {
		t.Fatal("no evictions despite a cache far below the working set")
	}
}

// TestRenderToAppends: RenderTo must append after existing bytes on
// every dispatch path.
func TestRenderToAppends(t *testing.T) {
	for _, mode := range []Dispatch{DispatchCompiled, DispatchInterpret, DispatchInterpretRaw} {
		b, err := NewBenchPages()
		if err != nil {
			t.Fatal(err)
		}
		b.SetDispatch(mode)
		for i := 0; i < 2; i++ { // second round hits the fragment cache
			out, err := b.RenderTo([]byte("prefix-"), "/adrotate", "u=1&n=3", 2000)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.HasPrefix(out, []byte("prefix-<html>")) {
				t.Fatalf("mode %v: RenderTo clobbered the prefix: %q", mode, out[:20])
			}
		}
	}
}

// TestQueryParamZeroAlloc pins the satellite: parameter extraction on
// the dynamic hot path must not allocate.
func TestQueryParamZeroAlloc(t *testing.T) {
	query := "a=1&n=2000&u=42&z=9"
	if got := QueryParam(query, "n"); got != "2000" {
		t.Fatalf("QueryParam = %q", got)
	}
	if got := QueryParam(query, "u"); got != "42" {
		t.Fatalf("QueryParam = %q", got)
	}
	if got := QueryParam(query, "missing"); got != "" {
		t.Fatalf("QueryParam = %q", got)
	}
	if got := QueryParam("", "n"); got != "" {
		t.Fatalf("QueryParam on empty = %q", got)
	}
	allocs := testing.AllocsPerRun(100, func() {
		if QueryParam(query, "u") != "42" {
			t.Fatal("wrong value")
		}
	})
	if allocs != 0 {
		t.Fatalf("QueryParam allocates %.1f per call, want 0", allocs)
	}
}

// TestCompiledRenderZeroAlloc pins the tentpole's allocation contract:
// a compiled render through pooled env and buffer allocates nothing.
func TestCompiledRenderZeroAlloc(t *testing.T) {
	b, err := NewBenchPages()
	if err != nil {
		t.Fatal(err)
	}
	if !b.CompiledActive() {
		t.Fatal("compiled path inactive")
	}
	query := "u=7&n=200"
	buf := GetBuf()
	defer PutBuf(buf)
	allocs := testing.AllocsPerRun(100, func() {
		out, err := b.RenderTo(buf.B, "/adrotate", query, 2000)
		if err != nil {
			t.Fatal(err)
		}
		buf.B = out[:0]
	})
	if allocs != 0 {
		t.Fatalf("compiled render allocates %.1f per request, want 0", allocs)
	}
}

// TestRenderWorkCap: the n query parameter is capped so a client cannot
// demand unbounded CPU.
func TestRenderWorkCap(t *testing.T) {
	b, err := NewBenchPages()
	if err != nil {
		t.Fatal(err)
	}
	out, err := b.Render("/dynamic", "n="+strconv.FormatInt(1<<40, 10), 7)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains([]byte(out), []byte("work=7")) {
		t.Fatalf("oversized n was not rejected: %q", out)
	}
}
