<html><head><title>flux dynamic</title></head><body>
<?fs
total = 0;
for i = 1 to work {
  total = total + i * i % 97;
}
echo "<p>work="; echo work; echo " checksum="; echo total; echo "</p>";
?>
</body></html>
