package fscript

import (
	"strings"
	"testing"
)

func run(t *testing.T, src string, vars map[string]Value) string {
	t.Helper()
	p, err := Parse(src)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	out, err := p.Execute(vars)
	if err != nil {
		t.Fatalf("Execute: %v", err)
	}
	return out
}

func TestPlainTemplate(t *testing.T) {
	if got := run(t, "<html>static</html>", nil); got != "<html>static</html>" {
		t.Errorf("got %q", got)
	}
}

func TestEcho(t *testing.T) {
	if got := run(t, `<?fs echo "hi"; echo 42; ?>`, nil); got != "hi42" {
		t.Errorf("got %q", got)
	}
}

func TestVariablesAndArithmetic(t *testing.T) {
	src := `<?fs x = 3; y = x * 4 + 2; echo y; ?>`
	if got := run(t, src, nil); got != "14" {
		t.Errorf("got %q", got)
	}
}

func TestPrecedence(t *testing.T) {
	if got := run(t, `<?fs echo 2 + 3 * 4; ?>`, nil); got != "14" {
		t.Errorf("got %q", got)
	}
	if got := run(t, `<?fs echo (2 + 3) * 4; ?>`, nil); got != "20" {
		t.Errorf("got %q", got)
	}
}

func TestForLoop(t *testing.T) {
	src := `<?fs total = 0; for i = 1 to n { total = total + i; } echo total; ?>`
	if got := run(t, src, map[string]Value{"n": IntVal(10)}); got != "55" {
		t.Errorf("got %q", got)
	}
}

func TestNestedLoops(t *testing.T) {
	src := `<?fs c = 0; for i = 1 to 3 { for j = 1 to 4 { c = c + 1; } } echo c; ?>`
	if got := run(t, src, nil); got != "12" {
		t.Errorf("got %q", got)
	}
}

func TestIfElse(t *testing.T) {
	src := `<?fs if n > 5 { echo "big"; } else { echo "small"; } ?>`
	if got := run(t, src, map[string]Value{"n": IntVal(10)}); got != "big" {
		t.Errorf("got %q", got)
	}
	if got := run(t, src, map[string]Value{"n": IntVal(2)}); got != "small" {
		t.Errorf("got %q", got)
	}
}

func TestStringConcat(t *testing.T) {
	src := `<?fs greeting = "hello " + name; echo greeting; ?>`
	if got := run(t, src, map[string]Value{"name": StrVal("world")}); got != "hello world" {
		t.Errorf("got %q", got)
	}
}

func TestStringComparison(t *testing.T) {
	src := `<?fs if name == "admin" { echo 1; } else { echo 0; } ?>`
	if got := run(t, src, map[string]Value{"name": StrVal("admin")}); got != "1" {
		t.Errorf("got %q", got)
	}
}

func TestMixedLiteralAndScript(t *testing.T) {
	src := `<h1><?fs echo title; ?></h1><p><?fs for i=1 to 2 { echo "x"; } ?></p>`
	if got := run(t, src, map[string]Value{"title": StrVal("T")}); got != "<h1>T</h1><p>xx</p>" {
		t.Errorf("got %q", got)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		`<?fs echo "unterminated ?>`,
		`<?fs for i = 1 { } ?>`,
		`<?fs x = ; ?>`,
		`<?fs if { } ?>`,
		`<?fs @ ?>`,
		`<?fs x = 1`,
		`<?fs for i = 1 to 3 { echo i; ?>`,
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) should fail", src)
		}
	}
}

func TestRuntimeErrors(t *testing.T) {
	cases := []struct {
		src  string
		want string
	}{
		{`<?fs echo 1/0; ?>`, "division by zero"},
		{`<?fs echo 1%0; ?>`, "modulo by zero"},
		{`<?fs echo nope; ?>`, "undefined variable"},
		{`<?fs echo "a" * "b"; ?>`, "not defined on strings"},
		{`<?fs for i = "a" to 3 { } ?>`, "bounds must be integers"},
	}
	for _, tc := range cases {
		p, err := Parse(tc.src)
		if err != nil {
			t.Fatalf("Parse(%q): %v", tc.src, err)
		}
		_, err = p.Execute(nil)
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("Execute(%q) error = %v, want %q", tc.src, err, tc.want)
		}
	}
}

func TestStepLimitHalts(t *testing.T) {
	src := `<?fs x = 0; for i = 1 to 100000000 { x = x + 1; } ?>`
	p, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Execute(nil); err == nil || !strings.Contains(err.Error(), "step limit") {
		t.Errorf("error = %v, want step limit", err)
	}
}

func TestReusablePage(t *testing.T) {
	p, err := Parse(`<?fs echo n * 2; ?>`)
	if err != nil {
		t.Fatal(err)
	}
	for i := int64(1); i <= 3; i++ {
		out, err := p.Execute(map[string]Value{"n": IntVal(i)})
		if err != nil {
			t.Fatal(err)
		}
		if want := i * 2; out != strings.TrimSpace(string(rune('0'+want))) {
			// Simpler check via Sprintf:
			if out != itoa(want) {
				t.Errorf("run %d: got %q", i, out)
			}
		}
	}
}

func itoa(v int64) string {
	if v == 0 {
		return "0"
	}
	var b []byte
	for v > 0 {
		b = append([]byte{byte('0' + v%10)}, b...)
		v /= 10
	}
	return string(b)
}

func TestComparisonOperators(t *testing.T) {
	cases := map[string]string{
		`<?fs echo 3 <= 3; ?>`: "1",
		`<?fs echo 3 >= 4; ?>`: "0",
		`<?fs echo 3 != 4; ?>`: "1",
		`<?fs echo 3 == 4; ?>`: "0",
	}
	for src, want := range cases {
		if got := run(t, src, nil); got != want {
			t.Errorf("%s = %q, want %q", src, got, want)
		}
	}
}
