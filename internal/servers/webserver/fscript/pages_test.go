package fscript

import (
	"strings"
	"testing"
)

func TestBenchWorkPageExecutes(t *testing.T) {
	p, err := Parse(BenchWorkPage)
	if err != nil {
		t.Fatal(err)
	}
	out, err := p.Execute(map[string]Value{"work": IntVal(10)})
	if err != nil {
		t.Fatal(err)
	}
	// sum of i*i % 97 for i=1..10 = 288.
	if !strings.Contains(out, "work=10") || !strings.Contains(out, "checksum=288") {
		t.Errorf("output = %q", out)
	}
}

func TestBenchAdPageRotates(t *testing.T) {
	p, err := Parse(BenchAdPage)
	if err != nil {
		t.Fatal(err)
	}
	render := func(user, rot int64) string {
		out, err := p.Execute(map[string]Value{
			"work": IntVal(5), "user": IntVal(user), "rot": IntVal(rot),
		})
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	// The ad is (user + rot) % 8: same inputs render identically,
	// advancing the rotation counter changes the selected ad.
	if render(3, 1) != render(3, 1) {
		t.Error("same user/rot rendered differently")
	}
	if !strings.Contains(render(3, 1), "ad=4") {
		t.Errorf("ad selection wrong: %q", render(3, 1))
	}
	if !strings.Contains(render(3, 2), "ad=5") {
		t.Errorf("rotation did not advance: %q", render(3, 2))
	}
	if render(0, 0) == render(0, 1) {
		t.Error("rotation counter had no effect")
	}
}
