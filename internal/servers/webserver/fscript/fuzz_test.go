package fscript_test

import (
	"bytes"
	"testing"

	"github.com/flux-lang/flux/internal/servers/webserver/fscript"
)

// fuzzStepLimit keeps hostile scripts cheap: MaxSteps is 10M, far too
// slow per fuzz iteration, so executions run under a tight budget (the
// Env.StepLimit override exists for exactly this).
const fuzzStepLimit = 2000

// FuzzParsePage throws arbitrary template bytes at the parser: it must
// never panic, and anything it accepts must execute (under the small
// step budget) without panicking.
func FuzzParsePage(f *testing.F) {
	f.Add(fscript.BenchWorkPage)
	f.Add(fscript.BenchAdPage)
	f.Add("plain html, no script")
	f.Add("<?fs echo 1; ?>")
	f.Add("<?fs x = 1; for i = 1 to x { echo i; } ?>")
	f.Add(`<?fs if a == "s" { echo "yes"; } else { echo a + 1; } ?>`)
	f.Add("<?fs")              // unterminated block
	f.Add("<?fs x = ; ?>")     // parse error
	f.Add("<?fs echo \"un ?>") // unterminated string

	f.Fuzz(func(t *testing.T, src string) {
		p, err := fscript.Parse(src)
		if err != nil {
			return
		}
		env := fscript.GetEnv()
		defer fscript.PutEnv(env)
		env.StepLimit = fuzzStepLimit
		env.SetInt("work", 3)
		env.SetInt("n", 2)
		_, _ = p.ExecuteInto(env, nil)
	})
}

// FuzzExecute drives accepted scripts with fuzzed integer inputs: no
// panics, and execution must be deterministic — two runs with the same
// env agree byte for byte (and on the error verdict).
func FuzzExecute(f *testing.F) {
	f.Add(fscript.BenchWorkPage, int64(10), int64(0), int64(1))
	f.Add(fscript.BenchAdPage, int64(5), int64(-3), int64(9))
	f.Add("<?fs total = 0; for i = 1 to work { total = total + i / (user + 1); } echo total; ?>", int64(4), int64(-1), int64(0))
	f.Add("<?fs echo work % user; ?>", int64(7), int64(0), int64(0))
	f.Add("<?fs for i = 1 to 100 { for j = 1 to 100 { x = x + 1; } } ?>", int64(0), int64(0), int64(0))

	f.Fuzz(func(t *testing.T, src string, work, user, rot int64) {
		p, err := fscript.Parse(src)
		if err != nil {
			return
		}
		run := func() ([]byte, error) {
			env := fscript.GetEnv()
			defer fscript.PutEnv(env)
			env.StepLimit = fuzzStepLimit
			env.SetInt("work", work)
			env.SetInt("user", user)
			env.SetInt("rot", rot)
			return p.ExecuteInto(env, nil)
		}
		out1, err1 := run()
		out2, err2 := run()
		if (err1 != nil) != (err2 != nil) {
			t.Fatalf("nondeterministic error verdict: %v vs %v", err1, err2)
		}
		if err1 == nil && !bytes.Equal(out1, out2) {
			t.Fatalf("nondeterministic output: %q vs %q", out1, out2)
		}
	})
}
