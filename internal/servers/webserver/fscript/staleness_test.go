// The staleness test lives in an external test package because the
// compiler backend imports fscript: fscript_test may import both sides
// of that edge, the in-package tests may not.
package fscript_test

import (
	"go/format"
	"os"
	"testing"

	"github.com/flux-lang/flux/internal/servers/webserver/fscript"
	"github.com/flux-lang/flux/internal/servers/webserver/fscript/compile"
)

// TestPagesCompiledNotStale regenerates the compiled pages from the
// embedded templates and requires the checked-in pages_compiled.go to
// match byte for byte — the loud failure behind the silent registry-miss
// fallback. On failure: go generate ./internal/servers/webserver/fscript
func TestPagesCompiledNotStale(t *testing.T) {
	gen, err := compile.File("fscript", []compile.Template{
		{FuncName: compile.FuncNameFor("bench_work.fs"), Source: fscript.BenchWorkPage},
		{FuncName: compile.FuncNameFor("bench_ad.fs"), Source: fscript.BenchAdPage},
	})
	if err != nil {
		t.Fatal(err)
	}
	want, err := format.Source([]byte(gen))
	if err != nil {
		t.Fatalf("regenerated source does not format: %v", err)
	}
	got, err := os.ReadFile("pages_compiled.go")
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != string(want) {
		t.Fatal("pages_compiled.go is stale: run `go generate ./internal/servers/webserver/fscript`")
	}
}
