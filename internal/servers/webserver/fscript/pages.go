package fscript

import (
	"strconv"
	"strings"
	"sync/atomic"
)

// The benchmark's dynamic pages. They live here — not in the Flux web
// server — because the hand-written baseline servers (knotweb, sedaweb)
// must serve the very same pages through the very same interpreter for
// the SPECweb99-like mixed workload to compare server architectures
// rather than dynamic-content engines.

// BenchWorkPage is the CPU-burning dynamic page served under /dynamic:
// a bounded loop whose bound (`work`) controls per-request CPU like the
// paper's PHP pages.
const BenchWorkPage = `<html><head><title>flux dynamic</title></head><body>
<?fs
total = 0;
for i = 1 to work {
  total = total + i * i % 97;
}
echo "<p>work="; echo work; echo " checksum="; echo total; echo "</p>";
?>
</body></html>
`

// BenchAdPage is the SPECweb99-style ad-rotation page served under
// /adrotate: the ad is selected from the requesting user's id and the
// server's rotation counter, then the same bounded loop burns the
// per-request CPU of a dynamic GET.
const BenchAdPage = `<html><head><title>flux ads</title></head><body>
<?fs
ad = (user + rot) % 8;
total = 0;
for i = 1 to work {
  total = total + (i + ad) * i % 89;
}
echo "<p>ad="; echo ad; echo " user="; echo user; echo " checksum="; echo total; echo "</p>";
?>
</body></html>
`

// BenchPages bundles the parsed benchmark pages with the server-side
// ad-rotation counter, so every web server (Flux or baseline) renders
// dynamic requests through one code path.
type BenchPages struct {
	work *Page
	ad   *Page
	rot  atomic.Uint64 // bumped per ad-rotation request
}

// NewBenchPages parses both benchmark templates.
func NewBenchPages() (*BenchPages, error) {
	work, err := Parse(BenchWorkPage)
	if err != nil {
		return nil, err
	}
	ad, err := Parse(BenchAdPage)
	if err != nil {
		return nil, err
	}
	return &BenchPages{work: work, ad: ad}, nil
}

// Render serves a dynamic GET: the ad-rotation page for /adrotate paths
// (user from the `u` query parameter, rotation from the shared
// counter), the CPU-burning work page otherwise. defaultWork is the
// loop bound unless the `n` query parameter overrides it (capped at
// 1e6). Safe for concurrent use.
func (b *BenchPages) Render(path, query string, defaultWork int64) (string, error) {
	work := defaultWork
	if v := QueryParam(query, "n"); v != "" {
		if n, err := strconv.ParseInt(v, 10, 64); err == nil && n > 0 && n <= 1_000_000 {
			work = n
		}
	}
	if strings.HasPrefix(path, "/adrotate") {
		var user int64
		if v := QueryParam(query, "u"); v != "" {
			user, _ = strconv.ParseInt(v, 10, 64)
		}
		return b.ad.Execute(map[string]Value{
			"work": IntVal(work),
			"user": IntVal(user),
			"rot":  IntVal(int64(b.rot.Add(1))),
		})
	}
	return b.work.Execute(map[string]Value{"work": IntVal(work)})
}

// QueryParam extracts one key from a raw query string.
func QueryParam(query, key string) string {
	for _, kv := range strings.Split(query, "&") {
		if k, v, ok := strings.Cut(kv, "="); ok && k == key {
			return v
		}
	}
	return ""
}
