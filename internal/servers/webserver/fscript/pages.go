package fscript

import (
	_ "embed"
	"strconv"
	"strings"
	"sync/atomic"

	"github.com/flux-lang/flux/internal/lfu"
)

// The benchmark's dynamic pages. They live here — not in the Flux web
// server — because the hand-written baseline servers (knotweb, sedaweb)
// must serve the very same pages through the very same engine for the
// SPECweb99-like mixed workload to compare server architectures rather
// than dynamic-content engines.
//
// The templates are files (embedded below) so `fluxc -fscript` compiles
// exactly the bytes the servers parse; pages_compiled.go is the checked
// in output.

//go:generate go run github.com/flux-lang/flux/cmd/fluxc -fscript -pkg fscript -o pages_compiled.go bench_work.fs bench_ad.fs

// BenchWorkPage is the CPU-burning dynamic page served under /dynamic:
// a bounded loop whose bound (`work`) controls per-request CPU like the
// paper's PHP pages.
//
//go:embed bench_work.fs
var BenchWorkPage string

// BenchAdPage is the SPECweb99-style ad-rotation page served under
// /adrotate: the ad is selected from the requesting user's id and the
// server's rotation counter, then the same bounded loop burns the
// per-request CPU of a dynamic GET.
//
//go:embed bench_ad.fs
var BenchAdPage string

// Dispatch selects how BenchPages renders a dynamic request.
type Dispatch int32

const (
	// DispatchCompiled (the default) runs the template's registered
	// CompiledPage and falls back to the interpreter — behind the
	// fragment cache — for unknown templates or uncovered inputs.
	DispatchCompiled Dispatch = iota
	// DispatchInterpret forces the interpreter but keeps the fragment
	// cache in front of it (the non-compilable configuration).
	DispatchInterpret
	// DispatchInterpretRaw forces the bare interpreter with no cache —
	// the seed behavior, kept for the before/after comparison.
	DispatchInterpretRaw
)

// String names the dispatch mode for harness output.
func (d Dispatch) String() string {
	switch d {
	case DispatchCompiled:
		return "compiled"
	case DispatchInterpret:
		return "interpreted+cache"
	default:
		return "interpreted"
	}
}

// DynStats counts how dynamic renders were served; the ops endpoint
// exports them so a live server shows whether the interpreter tax is
// being paid.
type DynStats struct {
	Compiled    uint64 `json:"compiled"`    // served by a CompiledPage
	Interpreted uint64 `json:"interpreted"` // served by the AST interpreter
	FragHits    uint64 `json:"frag_hits"`   // served from the fragment cache
	FragMisses  uint64 `json:"frag_misses"` // interpreted, then cached
}

// BenchPages bundles the parsed benchmark pages with the server-side
// ad-rotation counter, so every web server (Flux or baseline) renders
// dynamic requests through one code path: compiled-first, with the AST
// interpreter — behind an LFU fragment cache — as the fallback for
// anything the compiler did not cover.
type BenchPages struct {
	work, ad   *Page
	workC, adC CompiledPage // nil when no compiled form is registered
	rot        atomic.Uint64
	mode       atomic.Int32 // Dispatch

	// frag caches interpreter output keyed on the exact inputs a render
	// consumed: (template, work) for the work page, (template, work,
	// user, rot-bucket) for the ad page — the rotation counter enters
	// the page only through (user+rot)%8, so that residue is the key.
	frag *lfu.Locked

	compiled, interpreted, fragHits, fragMisses atomic.Uint64
}

// FragmentCacheBytes bounds the dynamic fragment cache. Rendered
// fragments are ~100 bytes; 1 MB holds every (work, user, ad-bucket)
// combination a benchmark sweep generates while still exercising LFU
// eviction under adversarial `n=` query spreads.
const FragmentCacheBytes = 1 << 20

// NewBenchPages parses both benchmark templates and picks up their
// compiled forms from the registry (pages_compiled.go registers them at
// init; if it is stale or missing, the pages silently interpret).
func NewBenchPages() (*BenchPages, error) {
	work, err := Parse(BenchWorkPage)
	if err != nil {
		return nil, err
	}
	ad, err := Parse(BenchAdPage)
	if err != nil {
		return nil, err
	}
	b := &BenchPages{
		work: work,
		ad:   ad,
		frag: lfu.NewLocked(FragmentCacheBytes),
	}
	b.workC, _ = CompiledFor(BenchWorkPage)
	b.adC, _ = CompiledFor(BenchAdPage)
	return b, nil
}

// SetDispatch overrides the render dispatch mode (experiments compare
// compiled vs interpreted vs cached; production keeps the default).
func (b *BenchPages) SetDispatch(d Dispatch) { b.mode.Store(int32(d)) }

// CompiledActive reports whether both benchmark templates have compiled
// forms registered and the dispatch mode will use them — the `-exp web`
// harness asserts this so a stale pages_compiled.go fails CI instead of
// silently re-paying the interpreter tax.
func (b *BenchPages) CompiledActive() bool {
	return Dispatch(b.mode.Load()) == DispatchCompiled && b.workC != nil && b.adC != nil
}

// DynStats snapshots the dynamic dispatch counters.
func (b *BenchPages) DynStats() DynStats {
	return DynStats{
		Compiled:    b.compiled.Load(),
		Interpreted: b.interpreted.Load(),
		FragHits:    b.fragHits.Load(),
		FragMisses:  b.fragMisses.Load(),
	}
}

// FragStats exposes the fragment cache's hit/miss/eviction counters.
func (b *BenchPages) FragStats() (hits, misses, evictions uint64) { return b.frag.Stats() }

// Render serves a dynamic GET, returning the page as a string. It is
// the convenience wrapper around RenderTo; hot paths call RenderTo with
// a pooled buffer instead.
func (b *BenchPages) Render(path, query string, defaultWork int64) (string, error) {
	out, err := b.RenderTo(nil, path, query, defaultWork)
	if err != nil {
		return "", err
	}
	return string(out), nil
}

// RenderTo serves a dynamic GET, appending the page to out and
// returning the extended slice: the ad-rotation page for /adrotate
// paths (user from the `u` query parameter, rotation from the shared
// counter), the CPU-burning work page otherwise. defaultWork is the
// loop bound unless the `n` query parameter overrides it (capped at
// 1e6). Dispatch is compiled-first with the interpreter (fragment
// cached) as fallback. Safe for concurrent use.
func (b *BenchPages) RenderTo(out []byte, path, query string, defaultWork int64) ([]byte, error) {
	work := defaultWork
	if v := QueryParam(query, "n"); v != "" {
		if n, err := strconv.ParseInt(v, 10, 64); err == nil && n > 0 && n <= 1_000_000 {
			work = n
		}
	}
	if strings.HasPrefix(path, "/adrotate") {
		var user int64
		if v := QueryParam(query, "u"); v != "" {
			user, _ = strconv.ParseInt(v, 10, 64)
		}
		rot := int64(b.rot.Add(1))
		return b.render(b.ad, b.adC, out, work, user, rot, true)
	}
	return b.render(b.work, b.workC, out, work, 0, 0, false)
}

// render dispatches one page execution. adPage selects the variable set
// and the fragment key shape.
func (b *BenchPages) render(p *Page, c CompiledPage, out []byte, work, user, rot int64, adPage bool) ([]byte, error) {
	mode := Dispatch(b.mode.Load())
	base := len(out)

	if mode == DispatchCompiled && c != nil {
		env := GetEnv()
		env.SetInt("work", work)
		if adPage {
			env.SetInt("user", user)
			env.SetInt("rot", rot)
		}
		res, err := c(env, out)
		PutEnv(env)
		if err == nil {
			b.compiled.Add(1)
			return res, nil
		}
		if err != ErrNotCompiled {
			return res, err
		}
		out = out[:base] // compiled path declined before writing; fall back
	}

	if mode != DispatchInterpretRaw {
		// Fragment cache in front of the interpreter. The key encodes
		// every input the page's output depends on, with the rotation
		// reduced to the residue the script consumes ((user+rot)%8 in Go
		// semantics, matching the page exactly).
		var kb [48]byte
		key := kb[:0]
		if adPage {
			key = append(key, 'a', '|')
			key = strconv.AppendInt(key, work, 10)
			key = append(key, '|')
			key = strconv.AppendInt(key, user, 10)
			key = append(key, '|')
			key = strconv.AppendInt(key, (user+rot)%8, 10)
		} else {
			key = append(key, 'w', '|')
			key = strconv.AppendInt(key, work, 10)
		}
		k := string(key)
		if frag, ok := b.frag.Get(k); ok {
			out = append(out, frag...)
			b.frag.Release(k)
			b.fragHits.Add(1)
			return out, nil
		}
		res, err := b.interpret(p, out, work, user, rot, adPage)
		if err != nil {
			return res, err
		}
		frag := make([]byte, len(res)-base)
		copy(frag, res[base:])
		b.frag.Put(k, frag)
		b.frag.Release(k)
		b.fragMisses.Add(1)
		b.interpreted.Add(1)
		return res, nil
	}

	res, err := b.interpret(p, out, work, user, rot, adPage)
	if err == nil {
		b.interpreted.Add(1)
	}
	return res, err
}

// interpret runs the AST interpreter with a pooled env.
func (b *BenchPages) interpret(p *Page, out []byte, work, user, rot int64, adPage bool) ([]byte, error) {
	env := GetEnv()
	env.SetInt("work", work)
	if adPage {
		env.SetInt("user", user)
		env.SetInt("rot", rot)
	}
	res, err := p.ExecuteInto(env, out)
	PutEnv(env)
	return res, err
}

// QueryParam extracts one key from a raw query string. It walks the
// query with strings.Cut instead of splitting, so it allocates nothing
// — it runs on every dynamic request.
func QueryParam(query, key string) string {
	for query != "" {
		var kv string
		kv, query, _ = strings.Cut(query, "&")
		if k, v, ok := strings.Cut(kv, "="); ok && k == key {
			return v
		}
	}
	return ""
}
