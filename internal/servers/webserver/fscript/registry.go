package fscript

import (
	"errors"
	"sync"
)

// CompiledPage is a template lowered to native Go by the fscript/compile
// backend: variables are int64 locals, loops are native for loops, and
// echo appends straight into out. It must render byte-for-byte what the
// interpreter renders for the same env — the parity sweep in
// compiled_parity_test.go enforces it — and return ErrNotCompiled when
// the env's inputs fall outside what was compiled (a missing or
// string-typed variable), so the caller can fall back to interpreting.
type CompiledPage func(env *Env, out []byte) ([]byte, error)

// ErrNotCompiled is returned by a CompiledPage whose runtime inputs are
// not covered by the compiled code; callers must fall back to the
// interpreter (which produces the authoritative result, including its
// errors).
var ErrNotCompiled = errors.New("fscript: inputs not covered by compiled page")

// The registry maps exact template source text to its compiled form.
// Generated code (pages_compiled.go, emitted by `fluxc -fscript`)
// registers at init with the source snapshot it was generated from: if
// a template is edited without regenerating, the lookup simply misses
// and the interpreter serves it — correct output, and the staleness
// test plus the `-exp web` compiled-path assertion fail loudly.
var (
	compiledMu  sync.RWMutex
	compiledReg = make(map[string]CompiledPage)
)

// RegisterCompiled installs a compiled page for the exact template
// source. Later registrations for the same source win.
func RegisterCompiled(src string, fn CompiledPage) {
	compiledMu.Lock()
	compiledReg[src] = fn
	compiledMu.Unlock()
}

// CompiledFor returns the compiled form of a template, if one was
// registered for byte-identical source.
func CompiledFor(src string) (CompiledPage, bool) {
	compiledMu.RLock()
	fn, ok := compiledReg[src]
	compiledMu.RUnlock()
	return fn, ok
}

// Buf is a pooled page output builder. It is a pointer-shaped wrapper
// (not a bare []byte) so Get/Put never box a slice header — the render
// hot path stays allocation-free.
type Buf struct{ B []byte }

var bufPool = sync.Pool{
	New: func() any { return &Buf{B: make([]byte, 0, 4096)} },
}

// GetBuf returns an empty pooled output buffer.
func GetBuf() *Buf {
	b := bufPool.Get().(*Buf)
	b.B = b.B[:0]
	return b
}

// PutBuf recycles a buffer obtained from GetBuf (growth is kept).
func PutBuf(b *Buf) { bufPool.Put(b) }

// envPool recycles Envs across requests; with it the interpreted
// fallback binds its variables with zero allocations too.
var envPool = sync.Pool{New: func() any { return new(Env) }}

// GetEnv returns an empty pooled Env.
func GetEnv() *Env { return envPool.Get().(*Env) }

// PutEnv recycles an Env.
func PutEnv(e *Env) {
	e.Reset()
	e.StepLimit = 0
	envPool.Put(e)
}
