<html><head><title>flux ads</title></head><body>
<?fs
ad = (user + rot) % 8;
total = 0;
for i = 1 to work {
  total = total + (i + ad) * i % 89;
}
echo "<p>ad="; echo ad; echo " user="; echo user; echo " checksum="; echo total; echo "</p>";
?>
</body></html>
